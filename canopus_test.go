package canopus_test

import (
	"testing"
	"time"

	"canopus"
	"canopus/internal/workload"
)

func TestSimClusterPublicAPI(t *testing.T) {
	c := canopus.MustSimCluster(canopus.SimOptions{Racks: 2, NodesPerRack: 3})
	var readVal []byte
	c.At(time.Millisecond, func() {
		c.Submit(0, canopus.OpWrite, 5, []byte("v"), nil)
		c.Submit(3, canopus.OpWrite, 6, []byte("w"), nil)
	})
	c.At(200*time.Millisecond, func() {
		c.Submit(0, canopus.OpRead, 6, nil, func(val []byte, ok bool) {
			if !ok {
				t.Error("read rejected")
			}
			readVal = val
		})
	})
	c.RunUntil(time.Second)
	if string(readVal) != "w" {
		t.Fatalf("read = %q", readVal)
	}
	for id := canopus.NodeID(0); int(id) < c.NumNodes(); id++ {
		if string(c.StoreOf(id).Read(5)) != "v" {
			t.Fatalf("node %v missing key 5", id)
		}
	}
}

func TestSimClusterDelete(t *testing.T) {
	c := canopus.MustSimCluster(canopus.SimOptions{Racks: 2, NodesPerRack: 3})
	var afterDelete []byte
	deleted := false
	c.At(time.Millisecond, func() {
		c.Submit(0, canopus.OpWrite, 5, []byte("v"), nil)
	})
	c.At(200*time.Millisecond, func() {
		c.Submit(2, canopus.OpDelete, 5, nil, func(_ []byte, ok bool) { deleted = ok })
	})
	c.At(400*time.Millisecond, func() {
		c.Submit(4, canopus.OpRead, 5, nil, func(val []byte, ok bool) {
			afterDelete = val
		})
	})
	c.RunUntil(time.Second)
	if !deleted {
		t.Fatal("delete not acknowledged")
	}
	if afterDelete != nil {
		t.Fatalf("read after delete = %q, want nil", afterDelete)
	}
	for id := canopus.NodeID(0); int(id) < c.NumNodes(); id++ {
		if c.StoreOf(id).Read(5) != nil {
			t.Fatalf("node %v still holds deleted key", id)
		}
	}
}

func TestSimClusterLegacyRequestAPI(t *testing.T) {
	// The low-level event-loop surface: caller-owned Request identity
	// with node-level reply hooks.
	c := canopus.MustSimCluster(canopus.SimOptions{Racks: 2, NodesPerRack: 3})
	var readVal []byte
	c.OnReply(0, func(req *canopus.Request, val []byte) {
		if req.Op == canopus.OpRead {
			readVal = val
		}
	})
	c.At(time.Millisecond, func() {
		c.SubmitRequest(0, canopus.Write(1, 1, 5, []byte("v")))
	})
	c.At(200*time.Millisecond, func() { c.SubmitRequest(0, canopus.Read(1, 2, 5)) })
	c.RunUntil(time.Second)
	if string(readVal) != "v" {
		t.Fatalf("read = %q", readVal)
	}
}

func TestNewSimClusterRejectsBadShapes(t *testing.T) {
	if _, err := canopus.NewSimCluster(canopus.SimOptions{Racks: -1}); err == nil {
		t.Fatal("negative racks accepted")
	}
	if _, err := canopus.NewSimCluster(canopus.SimOptions{
		Racks: 3, NodesPerRack: 2,
		WANRTT: make([][]time.Duration, 2), // 2x? matrix for 3 racks
	}); err == nil {
		t.Fatal("mismatched WANRTT accepted")
	}
	if _, err := canopus.NewCoordCluster(canopus.SimOptions{NodesPerRack: -3}); err == nil {
		t.Fatal("coordination cluster accepted negative shape")
	}
}

func TestSimClusterWAN(t *testing.T) {
	rtt := [][]time.Duration{
		{0, 100 * time.Millisecond},
		{100 * time.Millisecond, 0},
	}
	c := canopus.MustSimCluster(canopus.SimOptions{
		Racks: 2, NodesPerRack: 3, WANRTT: rtt,
		Node: canopus.Config{CycleInterval: 5 * time.Millisecond, MaxInFlight: 64},
	})
	c.At(time.Millisecond, func() { c.Submit(0, canopus.OpWrite, 1, []byte("x"), nil) })
	c.RunUntil(2 * time.Second)
	if string(c.StoreOf(5).Read(1)) != "x" {
		t.Fatal("WAN replication failed")
	}
}

func TestCrashAndRejoinPublicAPI(t *testing.T) {
	c := canopus.MustSimCluster(canopus.SimOptions{Racks: 2, NodesPerRack: 3})
	c.At(time.Millisecond, func() { c.Submit(0, canopus.OpWrite, 1, []byte("a"), nil) })
	c.At(300*time.Millisecond, func() { c.Crash(5) })
	c.At(500*time.Millisecond, func() {
		// A submit aimed at the crashed node is rejected, not lost.
		c.Submit(5, canopus.OpWrite, 9, []byte("x"), func(_ []byte, ok bool) {
			if ok {
				t.Error("crashed node served a write")
			}
		})
	})
	c.At(800*time.Millisecond, func() { c.Submit(0, canopus.OpWrite, 2, []byte("b"), nil) })
	c.At(1500*time.Millisecond, func() { c.RestartAsJoiner(5) })
	c.At(3*time.Second, func() { c.Submit(0, canopus.OpWrite, 3, []byte("c"), nil) })
	c.RunUntil(6 * time.Second)
	st := c.StoreOf(5)
	for k, want := range map[uint64]string{1: "a", 2: "b", 3: "c"} {
		if got := string(st.Read(k)); got != want {
			t.Fatalf("rejoined node key %d = %q, want %q", k, got, want)
		}
	}
}

// TestSessionSurvivesRejoinStateTransfer pins the join-protocol session
// transfer: a node restarted with total state loss receives the
// replicated dedup table in its JoinReply, so a retried committed
// mutation submitted AT the rejoined node still classifies as a
// duplicate instead of re-applying.
func TestSessionSurvivesRejoinStateTransfer(t *testing.T) {
	c := canopus.MustSimCluster(canopus.SimOptions{Racks: 2, NodesPerRack: 3})
	var sess uint64
	c.At(time.Millisecond, func() {
		c.RegisterSession(0, func(id uint64, ok bool) {
			if !ok {
				t.Error("registration refused")
			}
			sess = id
		})
	})
	c.At(300*time.Millisecond, func() {
		c.SubmitSession(0, sess, 1, canopus.OpWrite, 5, []byte("first"), nil)
	})
	c.At(600*time.Millisecond, func() { c.Crash(5) })
	c.At(1500*time.Millisecond, func() { c.RestartAsJoiner(5) })
	dupAcked := false
	c.At(3*time.Second, func() {
		// The reply-loss retry, aimed at the node that lost all state.
		c.SubmitSession(5, sess, 1, canopus.OpWrite, 5, []byte("second"), func(_ []byte, ok bool) {
			dupAcked = ok
		})
	})
	c.RunUntil(6 * time.Second)
	if !dupAcked {
		t.Fatal("rejoined node refused the duplicate (session table lost in transfer)")
	}
	for id := canopus.NodeID(0); int(id) < c.NumNodes(); id++ {
		if got := string(c.StoreOf(id).Read(5)); got != "first" {
			t.Fatalf("node %v = %q: duplicate re-applied after rejoin", id, got)
		}
	}
}

func TestCoordClusterPublicAPI(t *testing.T) {
	c := canopus.MustCoordCluster(canopus.SimOptions{Racks: 2, NodesPerRack: 3})
	var got string
	c.At(time.Millisecond, func() {
		c.Server(0).Set("/cfg", []byte("on"), func(n *canopus.ZNode) {
			c.Server(3).Get("/cfg", func(n *canopus.ZNode) {
				if n != nil {
					got = string(n.Data)
				}
			})
		})
	})
	c.RunUntil(time.Second)
	if got != "on" {
		t.Fatalf("linearizable get = %q", got)
	}
}

// TestSimClusterCloseCompletesSubmits pins the serve-mode shutdown
// contract: every Submit's done fires even when Close races the pump —
// queued operations are rejected (ok=false), not dropped.
func TestSimClusterCloseCompletesSubmits(t *testing.T) {
	c := canopus.MustSimCluster(canopus.SimOptions{Racks: 1, NodesPerRack: 3})
	c.Serve()
	const n = 200
	results := make(chan bool, n+1)
	go func() {
		for i := 0; i < n; i++ {
			c.Submit(i%3, canopus.OpWrite, uint64(i), []byte("x"), func(_ []byte, ok bool) {
				results <- ok
			})
		}
	}()
	c.Close()
	// Submits after Close are rejected immediately, too.
	c.Submit(0, canopus.OpWrite, 999, nil, func(_ []byte, ok bool) { results <- ok })
	deadline := time.After(5 * time.Second)
	for i := 0; i < n+1; i++ {
		select {
		case <-results:
		case <-deadline:
			t.Fatalf("only %d of %d done callbacks fired across Close", i, n+1)
		}
	}
}

// TestSimClusterCloseCompletesInjected pins the other half of the
// shutdown contract: an operation injected into the simulation but
// unable to ever commit (its super-leaf lost quorum) still gets its
// done callback — rejected by the stall detection or, at the latest,
// by Close draining the in-flight completion table.
func TestSimClusterCloseCompletesInjected(t *testing.T) {
	c := canopus.MustSimCluster(canopus.SimOptions{Racks: 1, NodesPerRack: 3})
	// Crash a majority before serving: node 0 will stall as soon as the
	// failure detector runs, and nothing it accepted can commit.
	c.Crash(1)
	c.Crash(2)
	c.Serve()
	done := make(chan bool, 1)
	c.Submit(0, canopus.OpWrite, 1, []byte("x"), func(_ []byte, ok bool) { done <- ok })
	time.Sleep(50 * time.Millisecond) // let the pump inject it and detect the failures
	c.Close()
	select {
	case ok := <-done:
		if ok {
			t.Fatal("uncommittable operation reported success")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("injected operation's done never fired across Close")
	}
}

// TestWorkloadDriverBothBackends is the unified-API acceptance check:
// the same closed-loop workload driver, handed the same []workload.Doer
// adapter over the canopus.Cluster interface, runs unmodified against a
// simulated cluster (in serve mode) and a live loopback cluster.
func TestWorkloadDriverBothBackends(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-clock load run")
	}
	drive := func(t *testing.T, c canopus.Cluster) {
		t.Helper()
		defer c.Close()
		conns := make([]workload.Doer, c.NumNodes())
		for i := range conns {
			conns[i] = canopus.NodeConn{C: c, Node: i}
		}
		res := workload.RunLive(workload.LiveConfig{
			Concurrency: 8,
			Duration:    500 * time.Millisecond,
			Warmup:      100 * time.Millisecond,
			WriteRatio:  0.5,
			Seed:        3,
		}, conns)
		if res.Offered == 0 {
			t.Fatal("no requests offered")
		}
		if res.Completed != res.Offered || res.Failed != 0 {
			t.Fatalf("offered %d, completed %d, failed %d", res.Offered, res.Completed, res.Failed)
		}
	}

	t.Run("sim", func(t *testing.T) {
		c := canopus.MustSimCluster(canopus.SimOptions{Racks: 1, NodesPerRack: 3})
		c.Serve()
		drive(t, c)
	})
	t.Run("live", func(t *testing.T) {
		c, err := canopus.StartLiveCluster(canopus.LiveOptions{
			Nodes: 3,
			Node:  canopus.Config{CycleInterval: 2 * time.Millisecond, TickInterval: 2 * time.Millisecond},
		})
		if err != nil {
			t.Fatal(err)
		}
		drive(t, c)
	})
}

// TestSessionExactlyOnceBothBackends asserts the replicated-session
// guarantee holds identically behind the one SessionCluster interface:
// on both backends, re-submitting a committed mutation with its
// original (session, seq) — the reply-loss retry, reproduced directly —
// acknowledges from the dedup table without re-applying, and an unknown
// session is refused rather than silently applied.
func TestSessionExactlyOnceBothBackends(t *testing.T) {
	drive := func(t *testing.T, c canopus.SessionCluster, read func(node int, key uint64) []byte) {
		t.Helper()
		defer c.Close()

		wait := func(what string, ch chan []byte) []byte {
			t.Helper()
			select {
			case v := <-ch:
				return v
			case <-time.After(10 * time.Second):
				t.Fatalf("%s never completed", what)
				return nil
			}
		}
		regCh := make(chan []byte, 1)
		var sess uint64
		c.RegisterSession(0, func(id uint64, ok bool) {
			if !ok {
				t.Error("session registration refused")
			}
			sess = id
			regCh <- nil
		})
		wait("registration", regCh)
		if sess == 0 {
			t.Fatal("no session ID committed")
		}

		done := make(chan []byte, 1)
		okCh := make(chan bool, 2)
		c.SubmitSession(0, sess, 1, canopus.OpWrite, 7, []byte("first"), func(_ []byte, ok bool) {
			okCh <- ok
			done <- nil
		})
		wait("first submission", done)

		// The reply-loss retry: same (session, seq), different node, and
		// — to make a re-apply visible — a different payload. The dedup
		// table must acknowledge without applying.
		c.SubmitSession(1, sess, 1, canopus.OpWrite, 7, []byte("second"), func(_ []byte, ok bool) {
			okCh <- ok
			done <- nil
		})
		wait("duplicate submission", done)
		for i := 0; i < 2; i++ {
			if !<-okCh {
				t.Fatal("session submission refused")
			}
		}
		// Let the duplicate's cycle reach every replica before checking
		// their states (commits land asynchronously across nodes).
		time.Sleep(100 * time.Millisecond)
		for node := 0; node < c.NumNodes(); node++ {
			if got := string(read(node, 7)); got != "first" {
				t.Fatalf("node %d = %q: duplicate submission was re-applied", node, got)
			}
		}

		// An unknown session must be refused, not silently applied.
		bogus := sess ^ 0x5a5a
		c.SubmitSession(2, bogus, 1, canopus.OpWrite, 8, []byte("x"), func(_ []byte, ok bool) {
			if ok {
				t.Error("unknown session accepted")
			}
			done <- nil
		})
		wait("unknown-session submission", done)
		time.Sleep(100 * time.Millisecond)
		if v := read(0, 8); v != nil {
			t.Fatalf("unknown session mutated state: %q", v)
		}
	}

	t.Run("sim", func(t *testing.T) {
		c := canopus.MustSimCluster(canopus.SimOptions{Racks: 1, NodesPerRack: 3})
		c.Serve()
		drive(t, c, func(node int, key uint64) []byte {
			// The pump owns the simulation context; a Stale read through
			// the interface observes the node's committed state safely.
			ch := make(chan []byte, 1)
			c.Submit(node, canopus.OpRead, key, nil, func(val []byte, ok bool) {
				v := make([]byte, len(val))
				copy(v, val)
				if val == nil {
					v = nil
				}
				ch <- v
			})
			select {
			case v := <-ch:
				return v
			case <-time.After(10 * time.Second):
				t.Fatal("read never completed")
				return nil
			}
		})
	})
	t.Run("live", func(t *testing.T) {
		c, err := canopus.StartLiveCluster(canopus.LiveOptions{
			Nodes: 3,
			Node:  canopus.Config{CycleInterval: 2 * time.Millisecond, TickInterval: 2 * time.Millisecond},
		})
		if err != nil {
			t.Fatal(err)
		}
		drive(t, c, func(node int, key uint64) []byte {
			var v []byte
			c.Runner(node).Invoke(func() {
				if val := c.Store(node).Read(key); val != nil {
					v = append([]byte(nil), val...)
				}
			})
			return v
		})
	})
}
