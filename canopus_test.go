package canopus_test

import (
	"testing"
	"time"

	"canopus"
)

func TestSimClusterPublicAPI(t *testing.T) {
	c := canopus.NewSimCluster(canopus.SimOptions{Racks: 2, NodesPerRack: 3})
	var readVal []byte
	c.OnReply(0, func(req *canopus.Request, val []byte) {
		if req.Op == canopus.OpRead {
			readVal = val
		}
	})
	c.At(time.Millisecond, func() {
		c.Submit(0, canopus.Write(1, 1, 5, []byte("v")))
		c.Submit(3, canopus.Write(2, 1, 6, []byte("w")))
	})
	c.At(200*time.Millisecond, func() { c.Submit(0, canopus.Read(1, 2, 6)) })
	c.RunUntil(time.Second)
	if string(readVal) != "w" {
		t.Fatalf("read = %q", readVal)
	}
	for id := canopus.NodeID(0); int(id) < c.NumNodes(); id++ {
		if string(c.StoreOf(id).Read(5)) != "v" {
			t.Fatalf("node %v missing key 5", id)
		}
	}
}

func TestSimClusterWAN(t *testing.T) {
	rtt := [][]time.Duration{
		{0, 100 * time.Millisecond},
		{100 * time.Millisecond, 0},
	}
	c := canopus.NewSimCluster(canopus.SimOptions{
		Racks: 2, NodesPerRack: 3, WANRTT: rtt,
		Node: canopus.Config{CycleInterval: 5 * time.Millisecond, MaxInFlight: 64},
	})
	c.At(time.Millisecond, func() { c.Submit(0, canopus.Write(1, 1, 1, []byte("x"))) })
	c.RunUntil(2 * time.Second)
	if string(c.StoreOf(5).Read(1)) != "x" {
		t.Fatal("WAN replication failed")
	}
}

func TestCrashAndRejoinPublicAPI(t *testing.T) {
	c := canopus.NewSimCluster(canopus.SimOptions{Racks: 2, NodesPerRack: 3})
	c.At(time.Millisecond, func() { c.Submit(0, canopus.Write(1, 1, 1, []byte("a"))) })
	c.At(300*time.Millisecond, func() { c.Crash(5) })
	c.At(800*time.Millisecond, func() { c.Submit(0, canopus.Write(1, 2, 2, []byte("b"))) })
	c.At(1500*time.Millisecond, func() { c.RestartAsJoiner(5) })
	c.At(3*time.Second, func() { c.Submit(0, canopus.Write(1, 3, 3, []byte("c"))) })
	c.RunUntil(6 * time.Second)
	st := c.StoreOf(5)
	for k, want := range map[uint64]string{1: "a", 2: "b", 3: "c"} {
		if got := string(st.Read(k)); got != want {
			t.Fatalf("rejoined node key %d = %q, want %q", k, got, want)
		}
	}
}

func TestCoordClusterPublicAPI(t *testing.T) {
	c := canopus.NewCoordCluster(canopus.SimOptions{Racks: 2, NodesPerRack: 3})
	var got string
	c.At(time.Millisecond, func() {
		c.Server(0).Set("/cfg", []byte("on"), func(n *canopus.ZNode) {
			c.Server(3).Get("/cfg", func(n *canopus.ZNode) {
				if n != nil {
					got = string(n.Data)
				}
			})
		})
	})
	c.RunUntil(time.Second)
	if got != "on" {
		t.Fatalf("linearizable get = %q", got)
	}
}
