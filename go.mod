module canopus

go 1.24
