// Package admin is the typed Go client for a canopus node's HTTP admin
// gateway (internal/adminsrv): health probes, the /status JSON document,
// digest extraction for convergence checks, snapshot triggering, chaos
// injection, and a one-shot Prometheus scrape parsed into a flat map.
// The gateway and this client share the wire types defined here, so the
// JSON contract has exactly one definition.
package admin

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"
)

// Health is the /healthz body. Status is "ok" once the node serves
// clients, "recovering" while WAL replay still runs (the gateway binds
// before recovery starts, mirroring the client port's bind-early
// pattern).
type Health struct {
	Status string `json:"status"`
}

// SuperLeaf is one super-leaf's membership in the node's current view.
// Evicted marks a leaf whose membership the committed view saw go empty
// (an eviction tombstone landing): it is excluded from the LOT merge
// until a member rejoins. EvictedAt is the committing cycle.
type SuperLeaf struct {
	Index     int     `json:"index"`
	Members   []int32 `json:"members"`
	Alive     []int32 `json:"alive"`
	Failed    bool    `json:"failed"`
	Evicted   bool    `json:"evicted,omitempty"`
	EvictedAt uint64  `json:"evicted_at,omitempty"`
}

// Durability is the /status durability block; absent when the node runs
// without a WAL.
type Durability struct {
	DurableCycle  uint64 `json:"durable_cycle"`
	Syncs         uint64 `json:"syncs"`
	SyncedRecords uint64 `json:"synced_records"`
	LastBatch     uint64 `json:"last_batch"`
	Snapshots     uint64 `json:"snapshots"`
}

// Status is the /status body: one node's operational snapshot. The
// digests are the sharded store's rolling state/log digests rendered as
// fixed-width hex; two nodes whose Applied cycles match must have equal
// digest strings.
type Status struct {
	Node    int32  `json:"node"`
	Phase   string `json:"phase"` // "ok" or "recovering"
	Started uint64 `json:"started_cycle"`
	Ordered uint64 `json:"ordered_cycle"`
	Applied uint64 `json:"applied_cycle"`
	Stalled bool   `json:"stalled"`
	// Degraded carries the liveness detector's verdict: "stalled" while
	// the node sees no commit progress past its configured StallThreshold
	// (e.g. the minority side of a partition) or has hard-halted; empty
	// when healthy or when detection is disabled. /healthz mirrors it as
	// "degraded: stalled" with a 503.
	Degraded string `json:"degraded,omitempty"`
	// Watchers counts the live watch registrations on the node's event
	// hub (0 when the event plane is disabled).
	Watchers int `json:"watchers,omitempty"`
	// StateDigest and LogDigest are coherent with Applied: all three are
	// read at one commit boundary.
	StateDigest string      `json:"state_digest"`
	LogDigest   string      `json:"log_digest"`
	Membership  []SuperLeaf `json:"membership,omitempty"`
	Durability  *Durability `json:"durability,omitempty"`
}

// Digest is the (cycle, state, log) triple convergence checks compare —
// the same data the legacy text DIGEST verb returns.
type Digest struct {
	Cycle uint64
	State uint64
	Log   uint64
}

// Client talks to one node's admin gateway.
type Client struct {
	base string
	hc   *http.Client
}

// New creates a client for the gateway at addr — a bare host:port or a
// full http:// URL.
func New(addr string) *Client {
	base := addr
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	base = strings.TrimRight(base, "/")
	return &Client{
		base: base,
		hc:   &http.Client{Timeout: 10 * time.Second},
	}
}

func (c *Client) get(ctx context.Context, path string, out any) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+path, nil)
	if err != nil {
		return err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 16<<20))
	if err != nil {
		return err
	}
	// /healthz deliberately serves 503 with a JSON body while the node
	// recovers; decode it rather than failing so pollers can watch the
	// phase change.
	if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusServiceUnavailable {
		return fmt.Errorf("admin: GET %s: %s: %s", path, resp.Status, strings.TrimSpace(string(body)))
	}
	return json.Unmarshal(body, out)
}

func (c *Client) post(ctx context.Context, path string, body io.Reader) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+path, body)
	if err != nil {
		return err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	msg, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
	if resp.StatusCode >= 300 {
		return fmt.Errorf("admin: POST %s: %s: %s", path, resp.Status, strings.TrimSpace(string(msg)))
	}
	return nil
}

// Health fetches /healthz. A "recovering" status is not an error; a
// connection failure is.
func (c *Client) Health(ctx context.Context) (Health, error) {
	var h Health
	err := c.get(ctx, "/healthz", &h)
	return h, err
}

// Status fetches /status.
func (c *Client) Status(ctx context.Context) (Status, error) {
	var s Status
	err := c.get(ctx, "/status", &s)
	return s, err
}

// Digest fetches /status and extracts the convergence triple. It fails
// if the node is still recovering (the digests are not yet meaningful).
func (c *Client) Digest(ctx context.Context) (Digest, error) {
	s, err := c.Status(ctx)
	if err != nil {
		return Digest{}, err
	}
	if s.Phase != "ok" {
		return Digest{}, fmt.Errorf("admin: node %d is %s", s.Node, s.Phase)
	}
	state, err := strconv.ParseUint(s.StateDigest, 16, 64)
	if err != nil {
		return Digest{}, fmt.Errorf("admin: bad state digest %q: %w", s.StateDigest, err)
	}
	logd, err := strconv.ParseUint(s.LogDigest, 16, 64)
	if err != nil {
		return Digest{}, fmt.Errorf("admin: bad log digest %q: %w", s.LogDigest, err)
	}
	return Digest{Cycle: s.Applied, State: state, Log: logd}, nil
}

// TriggerSnapshot asks the node to snapshot at its next group commit
// (POST /snapshot). It returns an error when the node has no WAL.
func (c *Client) TriggerSnapshot(ctx context.Context) error {
	return c.post(ctx, "/snapshot", nil)
}

// Chaos injects a fault action (POST /chaos) — only honored when the
// server was started with chaos enabled.
func (c *Client) Chaos(ctx context.Context, action string) error {
	return c.post(ctx, "/chaos", strings.NewReader(`{"action":`+strconv.Quote(action)+`}`))
}

// Metrics scrapes /metrics once and parses the Prometheus text into a
// flat map keyed `name{labels}` (the exact series line prefix; unlabeled
// series are keyed by bare name). Histogram series appear under their
// _bucket/_sum/_count names like any other.
func (c *Client) Metrics(ctx context.Context) (map[string]float64, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/metrics", nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("admin: GET /metrics: %s", resp.Status)
	}
	return ParseMetrics(resp.Body)
}

// ParseMetrics parses Prometheus text exposition into a series map. It
// handles the subset the registry emits: comment lines, and one
// `name{labels} value` or `name value` sample per line.
func ParseMetrics(r io.Reader) (map[string]float64, error) {
	out := make(map[string]float64)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64<<10), 16<<20)
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 || line[0] == '#' {
			continue
		}
		// The value follows the last space outside braces; labels may
		// contain escaped spaces only inside quotes, which the registry
		// never emits, so the final space split is sound for our encoder.
		i := bytes.LastIndexByte(line, ' ')
		if i < 0 {
			continue
		}
		v, err := strconv.ParseFloat(string(line[i+1:]), 64)
		if err != nil {
			return nil, fmt.Errorf("admin: bad sample line %q: %w", line, err)
		}
		out[string(bytes.TrimSpace(line[:i]))] = v
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}
