package canopus

import (
	"time"

	"canopus/internal/core"
	"canopus/internal/netsim"
	"canopus/internal/wire"
	"canopus/internal/zk"
)

// Coordination re-exports the ZooKeeper-like layer ("ZKCanopus" when the
// engine is Canopus — the paper's §8.1.2 system).
type (
	// ZNode is one entry of the coordination tree.
	ZNode = zk.ZNode
	// ZKServer is one coordination-service node.
	ZKServer = zk.Server
	// ZKTree is the replicated znode state machine.
	ZKTree = zk.Tree
)

// CoordCluster is a simulated ZKCanopus deployment: Canopus consensus
// under a znode tree, with linearizable reads.
type CoordCluster struct {
	Sim     *netsim.Sim
	Runner  *netsim.Runner
	servers []*ZKServer
	trees   []*ZKTree
	nodes   []*core.Node
}

// NewCoordCluster builds a simulated ZKCanopus deployment with the same
// topology options as NewSimCluster, returning an error for invalid
// tree shapes.
func NewCoordCluster(opts SimOptions) (*CoordCluster, error) {
	base, err := NewSimCluster(opts) // reuse topology/tree wiring, then swap state machines
	if err != nil {
		return nil, err
	}
	c := &CoordCluster{Sim: base.Sim, Runner: base.Runner}
	for i := 0; i < base.NumNodes(); i++ {
		id := NodeID(i)
		cfg := opts.Node
		cfg.Tree = base.Tree
		cfg.Self = id
		tree := zk.NewTree()
		node := core.NewNode(cfg, tree, core.Callbacks{})
		server := zk.NewServer(tree, node, uint64(i)+1, true /* linearizable reads */)
		node.SetOnReply(func(req *wire.Request, val []byte) { server.Complete(req, val) })
		c.servers = append(c.servers, server)
		c.trees = append(c.trees, tree)
		c.nodes = append(c.nodes, node)
		base.Runner.Restart(id, node)
	}
	return c, nil
}

// MustCoordCluster is NewCoordCluster, panicking on invalid options.
func MustCoordCluster(opts SimOptions) *CoordCluster {
	c, err := NewCoordCluster(opts)
	if err != nil {
		panic(err)
	}
	return c
}

// Server returns node id's coordination server.
func (c *CoordCluster) Server(id NodeID) *ZKServer { return c.servers[id] }

// TreeOf returns node id's local znode replica.
func (c *CoordCluster) TreeOf(id NodeID) *ZKTree { return c.trees[id] }

// At schedules fn at a virtual time.
func (c *CoordCluster) At(t time.Duration, fn func()) { c.Sim.At(t, fn) }

// RunUntil advances virtual time.
func (c *CoordCluster) RunUntil(t time.Duration) { c.Sim.RunUntil(t) }
