// Package canopus is a Go implementation of Canopus, the scalable,
// topology-aware, massively parallel consensus protocol of Rizvi, Wong
// and Keshav (CoNEXT 2017), together with every substrate it depends on:
// a Leaf-Only Tree overlay, Raft-based reliable broadcast inside
// super-leaves, a discrete-event datacenter/WAN network simulator, the
// EPaxos and Zab/ZooKeeper baselines the paper evaluates against, and a
// ZooKeeper-like coordination layer ("ZKCanopus").
//
// The root package is a thin facade: protocol types are aliases of the
// internal implementations, plus convenience constructors for simulated
// clusters (deterministic, virtual time) and live TCP clusters — both
// behind the one Cluster interface every driver in this repository
// consumes:
//
//	cluster := canopus.MustSimCluster(canopus.SimOptions{Racks: 2, NodesPerRack: 3})
//	cluster.Serve() // wall-clock mode: Submit from any goroutine
//	defer cluster.Close()
//	done := make(chan []byte, 1)
//	cluster.Submit(0, canopus.OpWrite, 42, []byte("hello"), func(val []byte, ok bool) {
//	    done <- val
//	})
//	<-done
//
// Network applications should use the typed, context-aware client in
// canopus/client against a live deployment (StartLiveCluster here, or
// cmd/canopus-server processes).
package canopus

import (
	"fmt"
	"sync"
	"time"

	"canopus/internal/core"
	"canopus/internal/events"
	"canopus/internal/kvstore"
	"canopus/internal/lot"
	"canopus/internal/netsim"
	"canopus/internal/wire"
)

// Protocol identifiers and request types.
type (
	// NodeID identifies one Canopus participant.
	NodeID = wire.NodeID
	// Request is one client key-value operation.
	Request = wire.Request
	// Op is a request kind (OpRead / OpWrite / OpDelete).
	Op = wire.Op
	// Batch is an ordered request set (the protocol's unit of ordering).
	Batch = wire.Batch
)

// Re-exported constants.
const (
	// OpRead marks a key read.
	OpRead = wire.OpRead
	// OpWrite marks a key write.
	OpWrite = wire.OpWrite
	// OpDelete marks a key removal.
	OpDelete = wire.OpDelete
	// OpTxn marks a guarded multi-op transaction (body in Request.Val).
	OpTxn = wire.OpTxn
	// NoNode is the "no node" sentinel.
	NoNode = wire.NoNode
)

// Event-plane types: the committed change stream and the guarded
// transaction vocabulary, shared by both backends and canopus/recipes.
type (
	// Event is one committed key change (a put with its value, or a
	// delete with a nil value).
	Event = wire.Event
	// Txn is a guarded atomic multi-op transaction body.
	Txn = wire.Txn
	// TxnGuard is one transaction precondition.
	TxnGuard = wire.TxnGuard
	// TxnOp is one transaction write or delete.
	TxnOp = wire.TxnOp
	// TxnResult is a transaction's committed-order verdict.
	TxnResult = wire.TxnResult
	// WatchSpec selects the keys a watch observes and its resume cycle.
	WatchSpec = events.Spec
	// WatchSink consumes one watch's notifications; see events.Sink for
	// the no-blocking and overflow contract.
	WatchSink = events.Sink
	// WatchNotification is one delivery to a WatchSink.
	WatchNotification = events.Notification
	// EventHub fans one node's committed change stream out to watchers.
	EventHub = events.Hub
)

// Transaction guard kinds.
const (
	// GuardValueEq passes iff the key's value is byte-equal to the
	// guard's (nil means "key is absent").
	GuardValueEq = wire.GuardValueEq
	// GuardCycleLE passes iff the key's last-modified cycle is at most
	// the guard's.
	GuardCycleLE = wire.GuardCycleLE
)

// ErrWatchOverflow reports a watch that cannot be (or stay) gap-free;
// see events.ErrWatchOverflow.
var ErrWatchOverflow = events.ErrWatchOverflow

// AppendTxn appends the wire encoding of t to b — the body an OpTxn
// request (or EventCluster.SubmitTxn) carries.
func AppendTxn(b []byte, t *Txn) []byte { return wire.AppendTxn(b, t) }

// ParseTxnResult decodes the verdict an OpTxn completion returns.
func ParseTxnResult(b []byte) (TxnResult, error) { return wire.ParseTxnResult(b) }

// Core protocol types.
type (
	// Config parameterizes a Canopus node; see internal/core.Config for
	// field documentation.
	Config = core.Config
	// Node is one Canopus protocol participant.
	Node = core.Node
	// Callbacks observe node progress.
	Callbacks = core.Callbacks
	// StateMachine is the replicated application state interface.
	StateMachine = core.StateMachine
	// Tree is the Leaf-Only Tree overlay.
	Tree = lot.Tree
	// TreeConfig shapes a LOT.
	TreeConfig = lot.Config
	// Store is the standard key-value state machine.
	Store = kvstore.Store
)

// NewTree builds a Leaf-Only Tree from super-leaf memberships.
func NewTree(cfg TreeConfig) (*Tree, error) { return lot.New(cfg) }

// NewNode builds a Canopus node (see core.NewNode).
func NewNode(cfg Config, sm StateMachine, cbs Callbacks) *Node {
	return core.NewNode(cfg, sm, cbs)
}

// NewJoiner builds a node that re-enters a running deployment through
// the join protocol.
func NewJoiner(cfg Config, sm StateMachine, cbs Callbacks) *Node {
	return core.NewJoiner(cfg, sm, cbs)
}

// NewStore creates an empty key-value state machine.
func NewStore() *Store { return kvstore.New() }

// Write builds a write request.
func Write(client, seq, key uint64, val []byte) Request {
	return Request{Client: client, Seq: seq, Op: OpWrite, Key: key, Val: val}
}

// Read builds a read request.
func Read(client, seq, key uint64) Request {
	return Request{Client: client, Seq: seq, Op: OpRead, Key: key}
}

// Delete builds a delete request.
func Delete(client, seq, key uint64) Request {
	return Request{Client: client, Seq: seq, Op: OpDelete, Key: key}
}

// SimOptions shapes a simulated deployment.
type SimOptions struct {
	// Racks and NodesPerRack lay out a single datacenter; each rack is
	// one super-leaf.
	Racks        int
	NodesPerRack int
	// WANRTT, when non-nil, turns each "rack" into a datacenter with the
	// given round-trip matrix (one row/column per rack).
	WANRTT [][]time.Duration
	// Node overrides fields of every node's Config (Tree/Self are set by
	// the cluster).
	Node Config
	// Seed makes the run reproducible (default 1).
	Seed int64
}

func (o *SimOptions) fill() error {
	if o.Racks == 0 {
		o.Racks = 2
	}
	if o.NodesPerRack == 0 {
		o.NodesPerRack = 3
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.Racks < 0 || o.NodesPerRack < 0 {
		return fmt.Errorf("canopus: negative topology (%d racks x %d nodes)", o.Racks, o.NodesPerRack)
	}
	if o.WANRTT != nil {
		if len(o.WANRTT) != o.Racks {
			return fmt.Errorf("canopus: WANRTT has %d rows for %d racks", len(o.WANRTT), o.Racks)
		}
		for i, row := range o.WANRTT {
			if len(row) != o.Racks {
				return fmt.Errorf("canopus: WANRTT row %d has %d columns for %d racks", i, len(row), o.Racks)
			}
		}
	}
	return nil
}

// driverClient is the reserved Request.Client identity carrying
// interface-submitted operations (Cluster.Submit); replies to it are
// routed to per-request callbacks instead of the per-node OnReply hook.
const driverClient = 1<<63 - 1

// SimCluster is an in-process simulated Canopus deployment running on
// virtual time: deterministic, instantaneous, no sockets. It is the
// quickest way to experiment with the protocol and what the examples and
// tests build on.
//
// Two driving modes:
//
//   - Event-loop mode (default): schedule work with At, submit from
//     inside those callbacks, advance time with RunUntil. Deterministic
//     and replayable.
//   - Serve mode: call Serve once and the cluster pumps virtual time on
//     a background goroutine; Submit then works from any goroutine, so
//     wall-clock drivers (internal/workload's live drivers, or any code
//     written against the Cluster interface) run unmodified against the
//     simulator. Not deterministic (arrival order depends on the
//     scheduler); do not mix with At/RunUntil.
type SimCluster struct {
	Sim    *netsim.Sim
	Runner *netsim.Runner
	Tree   *Tree
	nodes  []*Node
	stores []*Store
	hubs   []*EventHub

	onReply map[NodeID]func(req *Request, val []byte)
	// dones routes driverClient completions back to Submit callbacks;
	// touched only from the simulation context (event loop or pump).
	dones     map[uint64]func(val []byte, ok bool)
	driverSeq uint64
	// sessDones routes session-scoped completions (SubmitSession) by the
	// replicated (session, seq) identity; touched only from the
	// simulation context, like dones.
	sessDones map[simSessKey]func(val []byte, ok bool)
	// regPending tracks in-flight RegisterSession completions so a
	// serve-mode Close can still honor their done contract.
	regPending map[uint64]func(id uint64, ok bool)
	regCtr     uint64

	mu      sync.Mutex
	serving bool
	closed  bool // Close was called on a serving cluster
	queue   []queuedOp
	wake    chan struct{} // rings the pump when work is queued
	stop    chan struct{}
	stopped chan struct{}
}

// simSessKey identifies one in-flight session-scoped operation.
type simSessKey struct{ session, seq uint64 }

// queuedOp kinds (serve-mode pump queue).
const (
	queuedSubmit  uint8 = iota // plain Submit
	queuedReg                  // RegisterSession
	queuedSession              // SubmitSession
	queuedCall                 // Invoke
)

// queuedOp is one Submit/RegisterSession/SubmitSession awaiting
// injection by the serve-mode pump. The arguments are kept (rather than
// a closure) so a shutdown can still honor the done contract with
// ok=false.
type queuedOp struct {
	kind    uint8
	node    int
	op      Op
	key     uint64
	val     []byte
	session uint64
	seq     uint64
	done    func(val []byte, ok bool)
	regDone func(id uint64, ok bool)
	fn      func() // queuedCall body
	drop    func() // queuedCall shutdown notice
}

// fail honors the done contract on a shutdown path.
func (q *queuedOp) fail() {
	switch {
	case q.kind == queuedReg:
		if q.regDone != nil {
			q.regDone(0, false)
		}
	case q.kind == queuedCall:
		if q.drop != nil {
			q.drop()
		}
	default:
		if q.done != nil {
			q.done(nil, false)
		}
	}
}

// inject runs in the simulation context.
func (q *queuedOp) inject(c *SimCluster) {
	switch q.kind {
	case queuedCall:
		q.fn()
	case queuedReg:
		c.registerNow(q.node, q.regDone)
	case queuedSession:
		c.submitSessionNow(q.node, q.session, q.seq, q.op, q.key, q.val, q.done)
	default:
		c.submitNow(q.node, q.op, q.key, q.val, q.done)
	}
}

// NewSimCluster builds and registers a full simulated deployment with a
// logged KV store per node. It returns an error for invalid tree shapes
// (negative sizes, mismatched WANRTT matrices).
func NewSimCluster(opts SimOptions) (*SimCluster, error) {
	if err := opts.fill(); err != nil {
		return nil, err
	}
	sim := netsim.NewSim()
	var topo *netsim.Topology
	if opts.WANRTT != nil {
		oneway := make([][]time.Duration, opts.Racks)
		for i := range oneway {
			oneway[i] = make([]time.Duration, opts.Racks)
			for j := range oneway[i] {
				if i != j {
					oneway[i][j] = opts.WANRTT[i][j] / 2
				}
			}
		}
		topo = netsim.MultiDC(opts.Racks, opts.NodesPerRack, netsim.Params{WANDelay: oneway})
	} else {
		topo = netsim.SingleDC(opts.Racks, opts.NodesPerRack, netsim.Params{})
	}
	runner := netsim.NewRunner(sim, topo, netsim.DefaultCosts(), opts.Seed)

	sls := make([][]NodeID, opts.Racks)
	for r := 0; r < opts.Racks; r++ {
		sls[r] = topo.RackMembers(r)
	}
	tree, err := lot.New(lot.Config{SuperLeaves: sls})
	if err != nil {
		return nil, fmt.Errorf("canopus: %w", err)
	}

	c := &SimCluster{
		Sim: sim, Runner: runner, Tree: tree,
		onReply:    make(map[NodeID]func(req *Request, val []byte)),
		dones:      make(map[uint64]func(val []byte, ok bool)),
		sessDones:  make(map[simSessKey]func(val []byte, ok bool)),
		regPending: make(map[uint64]func(id uint64, ok bool)),
	}
	for i := 0; i < topo.NumNodes(); i++ {
		cfg := opts.Node
		cfg.Tree = tree
		cfg.Self = NodeID(i)
		// The simulator always runs the serial commit path: deterministic
		// virtual-time replay is the whole point of this backend, and a
		// background apply executor would break it. Live deployments
		// (StartLiveCluster) default to the parallel pipeline instead.
		cfg.ApplyWorkers = 0
		st := kvstore.New()
		n := core.NewNode(cfg, st, Callbacks{})
		c.installDispatcher(NodeID(i), n)
		hub := events.NewHub(events.Options{})
		n.SetOnEvents(hub.Publish)
		c.nodes = append(c.nodes, n)
		c.stores = append(c.stores, st)
		c.hubs = append(c.hubs, hub)
		runner.Register(NodeID(i), n)
	}
	return c, nil
}

// MustSimCluster is NewSimCluster, panicking on invalid options —
// convenient in tests and examples with known-good shapes.
func MustSimCluster(opts SimOptions) *SimCluster {
	c, err := NewSimCluster(opts)
	if err != nil {
		panic(err)
	}
	return c
}

// installDispatcher owns a node's OnReply: driver-submitted requests
// complete their per-request callbacks, session-scoped requests route by
// their replicated (session, seq) identity, everything else flows to the
// per-node OnReply hook.
func (c *SimCluster) installDispatcher(id NodeID, n *Node) {
	n.SetOnReply(func(req *Request, val []byte) {
		if req.Client == driverClient {
			if done, ok := c.dones[req.Seq]; ok {
				delete(c.dones, req.Seq)
				done(val, true)
			}
			return
		}
		if wire.IsSessionID(req.Client) {
			k := simSessKey{req.Client, req.Seq}
			if done, ok := c.sessDones[k]; ok {
				delete(c.sessDones, k)
				done(val, true)
			}
			return
		}
		if fn := c.onReply[id]; fn != nil {
			fn(req, val)
		}
	})
	n.SetOnSessionReject(func(req *Request) {
		k := simSessKey{req.Client, req.Seq}
		if done, ok := c.sessDones[k]; ok {
			delete(c.sessDones, k)
			done(nil, false)
		}
	})
}

// Node returns the protocol node with the given ID.
func (c *SimCluster) Node(id NodeID) *Node { return c.nodes[id] }

// StoreOf returns node id's local replica state.
func (c *SimCluster) StoreOf(id NodeID) *Store { return c.stores[id] }

// NumNodes returns the deployment size.
func (c *SimCluster) NumNodes() int { return len(c.nodes) }

// OnReply installs a completion callback for node id's requests injected
// with SubmitRequest. Must be called before the simulation runs past the
// node's first request.
func (c *SimCluster) OnReply(id NodeID, fn func(req *Request, val []byte)) {
	c.onReply[id] = fn
}

// At schedules fn at an absolute virtual time; use it to inject client
// requests from the simulation's event loop (event-loop mode only).
func (c *SimCluster) At(t time.Duration, fn func()) { c.Sim.At(t, fn) }

// SubmitRequest delivers one raw client request to node id with
// caller-owned Client/Seq identity; replies arrive at the node's OnReply
// hook. Call from inside At (event-loop mode). Most callers want Submit.
func (c *SimCluster) SubmitRequest(id NodeID, req Request) { c.nodes[id].Submit(req) }

// Submit implements Cluster: it asynchronously executes one keyed
// operation at node's replica and invokes done (from the simulation
// context — it must not block) with the read value (nil for mutations
// and misses) and whether the operation was served. In event-loop mode
// call it from inside At; after Serve it is safe from any goroutine.
func (c *SimCluster) Submit(node int, op Op, key uint64, val []byte, done func(val []byte, ok bool)) {
	c.dispatch(queuedOp{kind: queuedSubmit, node: node, op: op, key: key, val: val, done: done})
}

// RegisterSession implements SessionCluster: it commits a fresh
// replicated client session through node's replica. done is invoked
// from the simulation context with the session ID every replica now
// knows; ok=false means the node could not commit it (crashed, stalled,
// or the cluster closed). In event-loop mode call it from inside At;
// after Serve it is safe from any goroutine.
func (c *SimCluster) RegisterSession(node int, done func(id uint64, ok bool)) {
	c.dispatch(queuedOp{kind: queuedReg, node: node, regDone: done})
}

// SubmitSession implements SessionCluster: one session-scoped keyed
// operation with a caller-chosen per-session sequence number. A mutation
// re-submitted with a (session, seq) that already committed — the
// reply-loss retry — completes with the cached result instead of
// applying twice, at any node. done runs from the simulation context;
// ok=false means the node is crashed or stalled, or the session is
// expired/unknown.
func (c *SimCluster) SubmitSession(node int, session, seq uint64, op Op, key uint64, val []byte, done func(val []byte, ok bool)) {
	c.dispatch(queuedOp{kind: queuedSession, node: node, session: session, seq: seq, op: op, key: key, val: val, done: done})
}

// dispatch routes one operation to the simulation context: queued for
// the pump in serve mode, run inline otherwise.
func (c *SimCluster) dispatch(q queuedOp) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		q.fail()
		return
	}
	if c.serving {
		c.queue = append(c.queue, q)
		c.mu.Unlock()
		select {
		case c.wake <- struct{}{}:
		default:
		}
		return
	}
	c.mu.Unlock()
	q.inject(c)
}

// submitNow runs in the simulation context.
func (c *SimCluster) submitNow(node int, op Op, key uint64, val []byte, done func(val []byte, ok bool)) {
	n := c.nodes[node]
	if !c.Runner.Alive(NodeID(node)) || n.Stalled() {
		if done != nil {
			done(nil, false)
		}
		return
	}
	c.driverSeq++
	if done != nil {
		c.dones[c.driverSeq] = done
	}
	n.Submit(Request{Client: driverClient, Seq: c.driverSeq, Op: op, Key: key, Val: val})
}

// registerNow runs in the simulation context.
func (c *SimCluster) registerNow(node int, done func(id uint64, ok bool)) {
	n := c.nodes[node]
	if !c.Runner.Alive(NodeID(node)) || n.Stalled() {
		if done != nil {
			done(0, false)
		}
		return
	}
	if done == nil {
		n.RegisterSession(nil)
		return
	}
	c.regCtr++
	key := c.regCtr
	c.regPending[key] = done
	n.RegisterSession(func(id uint64, ok bool) {
		if d, live := c.regPending[key]; live {
			delete(c.regPending, key)
			d(id, ok)
		}
	})
}

// submitSessionNow runs in the simulation context. Reads carry no dedup
// identity (they are idempotent) and take the plain driver path.
func (c *SimCluster) submitSessionNow(node int, session, seq uint64, op Op, key uint64, val []byte, done func(val []byte, ok bool)) {
	if !op.Mutates() {
		c.submitNow(node, op, key, val, done)
		return
	}
	n := c.nodes[node]
	if !c.Runner.Alive(NodeID(node)) || n.Stalled() {
		if done != nil {
			done(nil, false)
		}
		return
	}
	k := simSessKey{session, seq}
	if old, ok := c.sessDones[k]; ok {
		old(nil, false) // superseded by a re-submission of the same identity
	}
	if done != nil {
		c.sessDones[k] = done
	} else {
		delete(c.sessDones, k)
	}
	n.Submit(Request{Client: session, Seq: seq, Op: op, Key: key, Val: val})
}

// Endpoint implements Cluster. The simulator has no network endpoints;
// drive it through Submit.
func (c *SimCluster) Endpoint(node int) string { return "" }

// Invoke runs fn in the simulation context and returns once it has run:
// immediately on an event-loop-mode cluster, through the pump queue in
// serve mode so fn never races concurrently-advancing virtual time. It
// reports whether fn ran (false only when the cluster closed first).
// Use it to inject faults or inspect node state while the cluster is
// being driven from other goroutines.
func (c *SimCluster) Invoke(fn func()) bool {
	ran := make(chan bool, 1)
	c.dispatch(queuedOp{
		kind: queuedCall,
		fn:   func() { fn(); ran <- true },
		drop: func() { ran <- false },
	})
	return <-ran
}

// Serve switches the cluster into wall-clock mode: a background pump
// continuously advances virtual time and drains queued Submit calls, so
// the deployment behaves like a (very fast) live cluster to concurrent
// callers. Do not mix with At/RunUntil after calling Serve.
func (c *SimCluster) Serve() {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.serving {
		return
	}
	c.serving = true
	c.wake = make(chan struct{}, 1)
	c.stop = make(chan struct{})
	c.stopped = make(chan struct{})
	go c.pump()
}

// pump is the serve-mode driver: inject queued submissions at the
// current virtual instant, then advance time one slice. On shutdown it
// rejects (done(nil, false)) anything still queued, so the Submit
// contract — done always fires — holds across Close.
func (c *SimCluster) pump() {
	defer close(c.stopped)
	const step = time.Millisecond // virtual time per iteration
	idle := time.NewTimer(time.Hour)
	idle.Stop()
	defer idle.Stop()
	for {
		select {
		case <-c.stop:
			c.mu.Lock()
			q := c.queue
			c.queue = nil
			c.mu.Unlock()
			for i := range q {
				q[i].fail()
			}
			// Operations already injected into the simulation but not
			// yet committed will never complete (time stops here):
			// reject them too. Safe without further locking — this
			// goroutine is the only simulation context in serve mode,
			// and it is exiting.
			for seq, done := range c.dones {
				delete(c.dones, seq)
				done(nil, false)
			}
			for k, done := range c.sessDones {
				delete(c.sessDones, k)
				done(nil, false)
			}
			for k, done := range c.regPending {
				delete(c.regPending, k)
				done(0, false)
			}
			return
		default:
		}
		c.mu.Lock()
		q := c.queue
		c.queue = nil
		c.mu.Unlock()
		now := c.Sim.Now()
		for _, op := range q {
			op := op
			c.Sim.At(now, func() { op.inject(c) })
		}
		c.Sim.RunUntil(now + step)
		if len(q) == 0 {
			// No new work: park until a Submit rings the wake channel or
			// a tick passes — the tick keeps virtual time advancing (at
			// roughly wall speed) for in-flight completions and timers
			// without spinning a core, even when an in-flight operation
			// can never complete (e.g. its node stalled).
			idle.Reset(time.Millisecond)
			select {
			case <-c.stop:
				// Loop back: the stop branch at the top owns the drain.
			case <-c.wake:
			case <-idle.C:
			}
			if !idle.Stop() {
				select {
				case <-idle.C:
				default:
				}
			}
		}
	}
}

// Close implements Cluster: it stops the serve-mode pump (if running)
// and rejects queued or later Submits with ok=false. The simulation
// itself holds no external resources; on an event-loop-mode cluster
// Close is a no-op.
func (c *SimCluster) Close() error {
	c.mu.Lock()
	if !c.serving {
		c.mu.Unlock()
		return nil
	}
	c.serving = false
	c.closed = true
	stop, stopped := c.stop, c.stopped
	c.mu.Unlock()
	close(stop)
	<-stopped
	return nil
}

// RunUntil advances virtual time (event-loop mode).
func (c *SimCluster) RunUntil(t time.Duration) { c.Sim.RunUntil(t) }

// Crash fails node id crash-stop.
func (c *SimCluster) Crash(id NodeID) { c.Runner.Crash(id) }

// RestartAsJoiner restarts a crashed node with fresh state; it re-enters
// through the join protocol.
func (c *SimCluster) RestartAsJoiner(id NodeID) *Node {
	cfg := Config{Tree: c.Tree, Self: id}
	st := kvstore.New()
	n := core.NewJoiner(cfg, st, Callbacks{})
	c.installDispatcher(id, n)
	// A fresh hub for the rejoined node: its first published cycle marks
	// everything before it evicted, so watches cannot resume across the
	// crash with a silent gap.
	hub := events.NewHub(events.Options{})
	n.SetOnEvents(hub.Publish)
	c.nodes[id] = n
	c.stores[id] = st
	c.hubs[id] = hub
	c.Runner.Restart(id, n)
	return n
}

// Hub returns node id's event hub.
func (c *SimCluster) Hub(id NodeID) *EventHub { return c.hubs[id] }

// Watch registers a watch on node's event hub, implementing the
// EventCluster interface. The sink runs in the simulation context and
// must not block; see events.Hub.Watch for the resume and overflow
// contract.
func (c *SimCluster) Watch(node int, spec WatchSpec, sink WatchSink) (uint64, error) {
	return c.hubs[node].Watch(spec, sink)
}

// Unwatch cancels a watch registered through Watch.
func (c *SimCluster) Unwatch(node int, id uint64) {
	c.hubs[node].Cancel(id)
}

// SubmitTxn executes one multi-op transaction at node's replica,
// implementing the EventCluster interface. body is the encoded
// transaction (AppendTxn); done receives the encoded TxnResult. A
// non-zero session makes the txn exactly-once across retries via the
// replicated (session, seq) identity; session 0 submits at-most-once
// under the driver identity. done runs from the simulation context and
// must not block.
func (c *SimCluster) SubmitTxn(node int, session, seq uint64, body []byte, done func(val []byte, ok bool)) {
	if session == 0 {
		c.dispatch(queuedOp{kind: queuedSubmit, node: node, op: OpTxn, val: body, done: done})
		return
	}
	c.dispatch(queuedOp{kind: queuedSession, node: node, session: session, seq: seq, op: OpTxn, val: body, done: done})
}
