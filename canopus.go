// Package canopus is a Go implementation of Canopus, the scalable,
// topology-aware, massively parallel consensus protocol of Rizvi, Wong
// and Keshav (CoNEXT 2017), together with every substrate it depends on:
// a Leaf-Only Tree overlay, Raft-based reliable broadcast inside
// super-leaves, a discrete-event datacenter/WAN network simulator, the
// EPaxos and Zab/ZooKeeper baselines the paper evaluates against, and a
// ZooKeeper-like coordination layer ("ZKCanopus").
//
// The root package is a thin facade: protocol types are aliases of the
// internal implementations, plus convenience constructors for simulated
// clusters (deterministic, virtual time) and live TCP clusters.
//
//	cluster := canopus.NewSimCluster(canopus.SimOptions{Racks: 2, NodesPerRack: 3})
//	cluster.At(time.Millisecond, func() {
//	    cluster.Submit(0, canopus.Write(1, 1, 42, []byte("hello")))
//	})
//	cluster.RunUntil(time.Second)
package canopus

import (
	"time"

	"canopus/internal/core"
	"canopus/internal/kvstore"
	"canopus/internal/lot"
	"canopus/internal/netsim"
	"canopus/internal/wire"
)

// Protocol identifiers and request types.
type (
	// NodeID identifies one Canopus participant.
	NodeID = wire.NodeID
	// Request is one client key-value operation.
	Request = wire.Request
	// Op is a request kind (OpRead / OpWrite).
	Op = wire.Op
	// Batch is an ordered request set (the protocol's unit of ordering).
	Batch = wire.Batch
)

// Re-exported constants.
const (
	// OpRead marks a key read.
	OpRead = wire.OpRead
	// OpWrite marks a key write.
	OpWrite = wire.OpWrite
	// NoNode is the "no node" sentinel.
	NoNode = wire.NoNode
)

// Core protocol types.
type (
	// Config parameterizes a Canopus node; see internal/core.Config for
	// field documentation.
	Config = core.Config
	// Node is one Canopus protocol participant.
	Node = core.Node
	// Callbacks observe node progress.
	Callbacks = core.Callbacks
	// StateMachine is the replicated application state interface.
	StateMachine = core.StateMachine
	// Tree is the Leaf-Only Tree overlay.
	Tree = lot.Tree
	// TreeConfig shapes a LOT.
	TreeConfig = lot.Config
	// Store is the standard key-value state machine.
	Store = kvstore.Store
)

// NewTree builds a Leaf-Only Tree from super-leaf memberships.
func NewTree(cfg TreeConfig) (*Tree, error) { return lot.New(cfg) }

// NewNode builds a Canopus node (see core.NewNode).
func NewNode(cfg Config, sm StateMachine, cbs Callbacks) *Node {
	return core.NewNode(cfg, sm, cbs)
}

// NewJoiner builds a node that re-enters a running deployment through
// the join protocol.
func NewJoiner(cfg Config, sm StateMachine, cbs Callbacks) *Node {
	return core.NewJoiner(cfg, sm, cbs)
}

// NewStore creates an empty key-value state machine.
func NewStore() *Store { return kvstore.New() }

// Write builds a write request.
func Write(client, seq, key uint64, val []byte) Request {
	return Request{Client: client, Seq: seq, Op: OpWrite, Key: key, Val: val}
}

// Read builds a read request.
func Read(client, seq, key uint64) Request {
	return Request{Client: client, Seq: seq, Op: OpRead, Key: key}
}

// SimOptions shapes a simulated deployment.
type SimOptions struct {
	// Racks and NodesPerRack lay out a single datacenter; each rack is
	// one super-leaf.
	Racks        int
	NodesPerRack int
	// WANRTT, when non-nil, turns each "rack" into a datacenter with the
	// given round-trip matrix (one row/column per rack).
	WANRTT [][]time.Duration
	// Node overrides fields of every node's Config (Tree/Self are set by
	// the cluster).
	Node Config
	// Seed makes the run reproducible (default 1).
	Seed int64
}

// SimCluster is an in-process simulated Canopus deployment running on
// virtual time: deterministic, instantaneous, no sockets. It is the
// quickest way to experiment with the protocol and what the examples and
// tests build on.
type SimCluster struct {
	Sim    *netsim.Sim
	Runner *netsim.Runner
	Tree   *Tree
	nodes  []*Node
	stores []*Store
}

// NewSimCluster builds and registers a full simulated deployment with a
// logged KV store per node.
func NewSimCluster(opts SimOptions) *SimCluster {
	if opts.Racks == 0 {
		opts.Racks = 2
	}
	if opts.NodesPerRack == 0 {
		opts.NodesPerRack = 3
	}
	if opts.Seed == 0 {
		opts.Seed = 1
	}
	sim := netsim.NewSim()
	var topo *netsim.Topology
	if opts.WANRTT != nil {
		oneway := make([][]time.Duration, opts.Racks)
		for i := range oneway {
			oneway[i] = make([]time.Duration, opts.Racks)
			for j := range oneway[i] {
				if i != j {
					oneway[i][j] = opts.WANRTT[i][j] / 2
				}
			}
		}
		topo = netsim.MultiDC(opts.Racks, opts.NodesPerRack, netsim.Params{WANDelay: oneway})
	} else {
		topo = netsim.SingleDC(opts.Racks, opts.NodesPerRack, netsim.Params{})
	}
	runner := netsim.NewRunner(sim, topo, netsim.DefaultCosts(), opts.Seed)

	sls := make([][]NodeID, opts.Racks)
	for r := 0; r < opts.Racks; r++ {
		sls[r] = topo.RackMembers(r)
	}
	tree, err := lot.New(lot.Config{SuperLeaves: sls})
	if err != nil {
		panic(err) // impossible for the shapes NewSimCluster builds
	}

	c := &SimCluster{Sim: sim, Runner: runner, Tree: tree}
	for i := 0; i < topo.NumNodes(); i++ {
		cfg := opts.Node
		cfg.Tree = tree
		cfg.Self = NodeID(i)
		st := kvstore.New()
		n := core.NewNode(cfg, st, Callbacks{})
		c.nodes = append(c.nodes, n)
		c.stores = append(c.stores, st)
		runner.Register(NodeID(i), n)
	}
	return c
}

// Node returns the protocol node with the given ID.
func (c *SimCluster) Node(id NodeID) *Node { return c.nodes[id] }

// StoreOf returns node id's local replica state.
func (c *SimCluster) StoreOf(id NodeID) *Store { return c.stores[id] }

// NumNodes returns the deployment size.
func (c *SimCluster) NumNodes() int { return len(c.nodes) }

// OnReply installs a completion callback on node id. Must be called
// before the simulation runs past the node's first request.
func (c *SimCluster) OnReply(id NodeID, fn func(req *Request, val []byte)) {
	c.nodes[id].SetOnReply(fn)
}

// At schedules fn at an absolute virtual time; use it to inject client
// requests from the simulation's event loop.
func (c *SimCluster) At(t time.Duration, fn func()) { c.Sim.At(t, fn) }

// Submit delivers one client request to node id (call from inside At).
func (c *SimCluster) Submit(id NodeID, req Request) { c.nodes[id].Submit(req) }

// RunUntil advances virtual time.
func (c *SimCluster) RunUntil(t time.Duration) { c.Sim.RunUntil(t) }

// Crash fails node id crash-stop.
func (c *SimCluster) Crash(id NodeID) { c.Runner.Crash(id) }

// RestartAsJoiner restarts a crashed node with fresh state; it re-enters
// through the join protocol.
func (c *SimCluster) RestartAsJoiner(id NodeID) *Node {
	cfg := Config{Tree: c.Tree, Self: id}
	st := kvstore.New()
	n := core.NewJoiner(cfg, st, Callbacks{})
	c.nodes[id] = n
	c.stores[id] = st
	c.Runner.Restart(id, n)
	return n
}
