package recipes

import (
	"bytes"
	"context"
	"errors"
	"sync"
)

// Mutex is a distributed mutual-exclusion lock over one key. Acquiring
// writes the holder's session token as an ephemeral value: exactly one
// contender's compare-and-swap commits per vacancy, and a holder that
// crashes (or loses its session) releases automatically when the
// session idle-expires through consensus — the waiters' watches fire on
// the expiry cycle's delete and the lock is re-acquired without any
// operator action.
//
// A Mutex value is not tied to a goroutine; the usual discipline
// applies (the locker unlocks). Lock is idempotent while held by the
// same session.
type Mutex struct {
	b   Backend
	key uint64

	mu  sync.Mutex
	tok []byte // token written by the last successful acquisition
}

// NewMutex returns a mutex over key on b. Distinct keys are independent
// locks; all contenders must agree on the key.
func NewMutex(b Backend, key uint64) *Mutex {
	return &Mutex{b: b, key: key}
}

// setToken records the value this handle wrote into the key, so Unlock
// guards on what was actually written even if the backend's session
// (and thus SessionToken) was transparently replaced mid-acquisition.
func (m *Mutex) setToken(tok []byte) {
	m.mu.Lock()
	m.tok = append(m.tok[:0], tok...)
	m.mu.Unlock()
}

func (m *Mutex) token(ctx context.Context) ([]byte, error) {
	m.mu.Lock()
	tok := append([]byte(nil), m.tok...)
	m.mu.Unlock()
	if tok != nil {
		return tok, nil
	}
	return m.b.SessionToken(ctx)
}

// Lock blocks until this backend's session holds the lock or ctx ends.
func (m *Mutex) Lock(ctx context.Context) error {
	for {
		// Re-read the token every attempt: if the backend's session
		// idle-expired while we waited, the replacement session is the
		// identity that must own the acquisition.
		token, err := m.b.SessionToken(ctx)
		if err != nil {
			return err
		}
		// Arm the watch before trying: a release committed in any cycle
		// after this point is guaranteed to wake us.
		w, err := m.b.WatchKey(ctx, m.key)
		if err != nil {
			return err
		}
		res, err := m.b.Txn(ctx,
			[]TxnGuard{guardAbsent(m.key)},
			[]TxnOp{putEphemeral(m.key, token)})
		if err != nil && !errors.Is(err, ErrUncertain) {
			w.Close()
			return err
		}
		if err == nil && res.Committed {
			w.Close()
			m.setToken(token)
			return nil
		}
		// Held — or (on ErrUncertain) possibly acquired by an earlier
		// retry of our own transaction. The key's value settles it.
		val, gerr := m.b.Get(ctx, m.key)
		if gerr != nil {
			w.Close()
			return gerr
		}
		if bytes.Equal(val, token) {
			w.Close()
			m.setToken(token)
			return nil
		}
		if val != nil {
			// Someone else holds it; sleep until the key changes.
			err = w.Wait(ctx)
		} else {
			err = ctx.Err() // vacant: retry the CAS immediately
		}
		w.Close()
		if err != nil {
			return err
		}
	}
}

// TryLock attempts one acquisition without waiting. It returns true
// when this backend's session now holds (or already held) the lock.
func (m *Mutex) TryLock(ctx context.Context) (bool, error) {
	token, err := m.b.SessionToken(ctx)
	if err != nil {
		return false, err
	}
	res, err := m.b.Txn(ctx,
		[]TxnGuard{guardAbsent(m.key)},
		[]TxnOp{putEphemeral(m.key, token)})
	if err != nil && !errors.Is(err, ErrUncertain) {
		return false, err
	}
	if err == nil && res.Committed {
		m.setToken(token)
		return true, nil
	}
	val, gerr := m.b.Get(ctx, m.key)
	if gerr != nil {
		return false, gerr
	}
	if bytes.Equal(val, token) {
		m.setToken(token)
		return true, nil
	}
	return false, nil
}

// Unlock releases the lock. It fails with ErrNotHeld when this handle
// does not hold it — never touching another contender's acquisition.
func (m *Mutex) Unlock(ctx context.Context) error {
	token, err := m.token(ctx)
	if err != nil {
		return err
	}
	for {
		res, err := m.b.Txn(ctx,
			[]TxnGuard{guardValueEq(m.key, token)},
			[]TxnOp{del(m.key)})
		if errors.Is(err, ErrUncertain) {
			// An earlier retry of this delete may have committed. If the
			// key no longer carries our token, the release happened (or
			// expiry beat us to it) — either way the lock is not ours.
			val, gerr := m.b.Get(ctx, m.key)
			if gerr != nil {
				return gerr
			}
			if bytes.Equal(val, token) {
				continue // still held by us: the delete did not commit
			}
			return nil
		}
		if err != nil {
			return err
		}
		if !res.Committed {
			return ErrNotHeld
		}
		return nil
	}
}
