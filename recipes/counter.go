package recipes

import (
	"context"
	"encoding/binary"
	"fmt"
)

// Counter is a replicated signed counter over one key, updated by
// optimistic compare-and-swap: each Add re-reads the committed value
// and retries until its guarded transaction commits, so concurrent
// increments from any number of clients never lose updates. The value
// is stored as 8 big-endian bytes; an absent key counts as zero.
type Counter struct {
	b   Backend
	key uint64
}

// NewCounter returns a counter over key on b.
func NewCounter(b Backend, key uint64) *Counter {
	return &Counter{b: b, key: key}
}

func decodeCount(val []byte) (int64, error) {
	if val == nil {
		return 0, nil
	}
	if len(val) != 8 {
		return 0, fmt.Errorf("recipes: counter value is %d bytes, want 8", len(val))
	}
	return int64(binary.BigEndian.Uint64(val)), nil
}

func encodeCount(v int64) []byte {
	return binary.BigEndian.AppendUint64(nil, uint64(v))
}

// Add atomically adds delta and returns the resulting value. Add
// surfaces ErrUncertain as-is: an increment is not self-identifying, so
// a blind retry after an ambiguous failure could double-count — the
// caller decides whether the operation is re-issuable.
func (c *Counter) Add(ctx context.Context, delta int64) (int64, error) {
	for {
		cur, err := c.b.Get(ctx, c.key)
		if err != nil {
			return 0, err
		}
		n, err := decodeCount(cur)
		if err != nil {
			return 0, err
		}
		next := n + delta
		res, err := c.b.Txn(ctx,
			[]TxnGuard{guardValueEq(c.key, cur)},
			[]TxnOp{put(c.key, encodeCount(next))})
		if err != nil {
			return 0, err
		}
		if res.Committed {
			return next, nil
		}
		// Lost the race: somebody committed between our read and our
		// guard's cycle. Re-read and retry.
		if err := ctx.Err(); err != nil {
			return 0, err
		}
	}
}

// Value returns the counter's committed value.
func (c *Counter) Value(ctx context.Context) (int64, error) {
	val, err := c.b.Get(ctx, c.key)
	if err != nil {
		return 0, err
	}
	return decodeCount(val)
}
