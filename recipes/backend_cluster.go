package recipes

import (
	"context"
	"encoding/binary"
	"fmt"
	"sync"
	"sync/atomic"

	"canopus"
)

// clusterBackend adapts one node of an in-process canopus.EventCluster
// (the simulator in Serve mode, or a live cluster driven locally) to
// the recipes Backend port. It registers one replicated session lazily
// and numbers its transactions from an atomic counter, so the same
// exactly-once identity scheme the network client uses applies here.
type clusterBackend struct {
	c    canopus.EventCluster
	node int

	seq     atomic.Uint64
	mu      sync.Mutex
	session uint64
}

// FromCluster builds a Backend over node's replica of c. Each
// FromCluster call owns a distinct replicated session: two backends on
// the same node are two independent lock holders. The cluster must be
// drivable from arbitrary goroutines (SimCluster requires Serve mode).
func FromCluster(c canopus.EventCluster, node int) Backend {
	return &clusterBackend{c: c, node: node}
}

func (b *clusterBackend) ensureSession(ctx context.Context) (uint64, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.session != 0 {
		return b.session, nil
	}
	type reg struct {
		id uint64
		ok bool
	}
	ch := make(chan reg, 1)
	b.c.RegisterSession(b.node, func(id uint64, ok bool) {
		ch <- reg{id, ok}
	})
	select {
	case r := <-ch:
		if !r.ok {
			return 0, fmt.Errorf("%w: session registration failed", ErrUnavailable)
		}
		b.session = r.id
		return r.id, nil
	case <-ctx.Done():
		return 0, ctx.Err()
	}
}

func (b *clusterBackend) Get(ctx context.Context, key uint64) ([]byte, error) {
	type res struct {
		val []byte
		ok  bool
	}
	ch := make(chan res, 1)
	b.c.Submit(b.node, canopus.OpRead, key, nil, func(val []byte, ok bool) {
		// The value bytes are only valid during the callback.
		ch <- res{append([]byte(nil), val...), ok}
	})
	select {
	case r := <-ch:
		if !r.ok {
			return nil, fmt.Errorf("%w: read not served", ErrUnavailable)
		}
		if len(r.val) == 0 {
			return nil, nil // absent (reads return nil for misses)
		}
		return r.val, nil
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

func (b *clusterBackend) Txn(ctx context.Context, guards []TxnGuard, ops []TxnOp) (Verdict, error) {
	body := canopus.AppendTxn(nil, &canopus.Txn{Guards: guards, Ops: ops})
	// A rejected submission (node stalled, or the idle session expired
	// and was reclaimed) was deterministically not applied anywhere, so
	// one retry under a fresh session is always safe — including for
	// non-idempotent payloads.
	for attempt := 0; ; attempt++ {
		sess, err := b.ensureSession(ctx)
		if err != nil {
			return Verdict{}, err
		}
		type res struct {
			val []byte
			ok  bool
		}
		ch := make(chan res, 1)
		b.c.SubmitTxn(b.node, sess, b.seq.Add(1), body, func(val []byte, ok bool) {
			ch <- res{append([]byte(nil), val...), ok}
		})
		select {
		case r := <-ch:
			if !r.ok {
				if attempt == 0 {
					b.mu.Lock()
					if b.session == sess {
						b.session = 0 // force re-registration
					}
					b.mu.Unlock()
					continue
				}
				return Verdict{}, fmt.Errorf("%w: txn not served", ErrUnavailable)
			}
			w, err := canopus.ParseTxnResult(r.val)
			if err != nil {
				return Verdict{}, err
			}
			v := Verdict{Committed: w.Committed, FailedGuard: -1}
			if !w.Committed {
				v.FailedGuard = int(w.Failed)
			}
			return v, nil
		case <-ctx.Done():
			return Verdict{}, ctx.Err()
		}
	}
}

func (b *clusterBackend) WatchKey(ctx context.Context, key uint64) (Waiter, error) {
	cw := &clusterWaiter{b: b, ch: make(chan struct{}, 1)}
	id, err := b.c.Watch(b.node, canopus.WatchSpec{Key: key, PrefixBits: 64}, func(n canopus.WatchNotification) bool {
		// Any notification — a matching change or the terminal overflow
		// notice — is a wakeup; the recipes re-read committed state. The
		// one-slot channel never blocks this sink (it runs on the node's
		// apply path).
		select {
		case cw.ch <- struct{}{}:
		default:
		}
		return true
	})
	if err != nil {
		// The only registration failure is a resume overflow, which a
		// live-only watch cannot hit; surface it anyway.
		return nil, err
	}
	cw.id = id
	return cw, nil
}

func (b *clusterBackend) SessionToken(ctx context.Context) ([]byte, error) {
	sess, err := b.ensureSession(ctx)
	if err != nil {
		return nil, err
	}
	return binary.BigEndian.AppendUint64(nil, sess), nil
}

type clusterWaiter struct {
	b  *clusterBackend
	id uint64
	ch chan struct{}
}

func (cw *clusterWaiter) Wait(ctx context.Context) error {
	select {
	case <-cw.ch:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

func (cw *clusterWaiter) Close() { cw.b.c.Unwatch(cw.b.node, cw.id) }
