package recipes

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"

	"canopus"
	"canopus/client"
)

// clientBackend adapts a canopus/client.Client — the live TCP path —
// to the recipes Backend port. Transactions ride the client's
// replicated session (exactly-once across failover), and watches are
// the client's resume-by-cycle watches, so recipes inherit the
// client's failover transparency.
type clientBackend struct {
	cl *client.Client
}

// FromClient builds a Backend over a connected client. The client's
// replicated session is the recipes' ownership identity: everything a
// Mutex or Election acquires through this backend is released when the
// client's session ends (EndSession, Close, or idle expiry after a
// crash).
func FromClient(cl *client.Client) Backend {
	return &clientBackend{cl: cl}
}

func (b *clientBackend) Get(ctx context.Context, key uint64) ([]byte, error) {
	val, err := b.cl.Get(ctx, key)
	if errors.Is(err, client.ErrNotFound) {
		return nil, nil
	}
	return val, err
}

func (b *clientBackend) Txn(ctx context.Context, guards []TxnGuard, ops []TxnOp) (Verdict, error) {
	t := client.NewTxn()
	for _, g := range guards {
		switch g.Kind {
		case canopus.GuardValueEq:
			t.IfValueEq(g.Key, g.Val)
		case canopus.GuardCycleLE:
			t.IfCycleLE(g.Key, g.Cycle)
		default:
			return Verdict{}, fmt.Errorf("recipes: unknown guard kind %d", g.Kind)
		}
	}
	for _, op := range ops {
		switch {
		case op.Op == canopus.OpDelete:
			t.Delete(op.Key)
		case op.Ephemeral:
			t.PutEphemeral(op.Key, op.Val)
		default:
			t.Put(op.Key, op.Val)
		}
	}
	res, err := b.cl.Txn(ctx, t)
	if errors.Is(err, client.ErrSessionExpired) {
		// The final submission was not applied, but an earlier failover
		// retry may have committed under the now-expired session. Map to
		// the recipes' uncertainty sentinel; self-identifying recipes
		// re-read the key and settle it.
		return Verdict{}, fmt.Errorf("%w: %v", ErrUncertain, err)
	}
	if err != nil {
		return Verdict{}, err
	}
	return Verdict{Committed: res.Committed, FailedGuard: res.FailedGuard}, nil
}

func (b *clientBackend) WatchKey(ctx context.Context, key uint64) (Waiter, error) {
	w, err := b.cl.Watch(ctx, key)
	if err != nil {
		return nil, err
	}
	return &clientWaiter{w: w}, nil
}

func (b *clientBackend) SessionToken(ctx context.Context) ([]byte, error) {
	sess, err := b.cl.EnsureSession(ctx)
	if err != nil {
		return nil, err
	}
	return binary.BigEndian.AppendUint64(nil, sess), nil
}

type clientWaiter struct{ w *client.Watch }

func (cw *clientWaiter) Wait(ctx context.Context) error {
	select {
	case _, ok := <-cw.w.Events():
		if ok {
			return nil
		}
		if err := cw.w.Err(); err != nil && !errors.Is(err, client.ErrWatchOverflow) {
			return err
		}
		// Overflow just means "you fell behind": the caller re-reads
		// committed state before deciding anything, so treat it as a
		// wakeup.
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

func (cw *clientWaiter) Close() { cw.w.Close() }
