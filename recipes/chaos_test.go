package recipes_test

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"canopus"
	"canopus/client"
	"canopus/internal/core"
	"canopus/internal/livecluster"
	"canopus/internal/netsim"
	"canopus/internal/wire"
	"canopus/recipes"
)

// TestMutexCrashedHolderExpires is the crash-recovery story the mutex
// recipe exists for: the holder's node is killed with the lock held, and
// the waiter acquires it anyway — the holder's replicated session
// idle-expires through consensus, the expiry cycle deletes its ephemeral
// acquisition, and the waiter's pre-armed watch fires on that delete.
// No operator action, no unlock from the dead holder.
func TestMutexCrashedHolderExpires(t *testing.T) {
	cluster, err := livecluster.Start(livecluster.Config{
		Nodes: 3,
		Node: core.Config{
			CycleInterval: 2 * time.Millisecond, TickInterval: time.Millisecond,
			// Small idle bound so the dead holder's session expires within
			// tens of driven cycles rather than thousands.
			SessionIdleCycles: 64,
		},
		Seed: 41,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Stop(5 * time.Second)

	dial := func(eps ...string) *client.Client {
		t.Helper()
		cl, err := client.New(client.Config{Endpoints: eps, RequestTimeout: 10 * time.Second})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { cl.Close() })
		return cl
	}
	// The holder is pinned to node 0 — when that node dies, so does the
	// holder's connectivity (a real crashed process). The waiter and the
	// traffic driver live on the survivors.
	holder := dial(cluster.ClientAddr(0))
	waiter := dial(cluster.ClientAddr(1), cluster.ClientAddr(2))
	driver := dial(cluster.ClientAddr(2), cluster.ClientAddr(1))

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	const lockKey = 700
	mHold := recipes.NewMutex(recipes.FromClient(holder), lockKey)
	if err := mHold.Lock(ctx); err != nil {
		t.Fatal(err)
	}

	mWait := recipes.NewMutex(recipes.FromClient(waiter), lockKey)
	acquired := make(chan error, 1)
	go func() { acquired <- mWait.Lock(ctx) }()

	// Let the waiter arm its watch and lose its CAS before the crash.
	time.Sleep(50 * time.Millisecond)
	select {
	case err := <-acquired:
		t.Fatalf("waiter acquired a held lock (err=%v)", err)
	default:
	}

	cluster.Crash(0)

	// Cycles are self-clocked: with no traffic there are no commits, and
	// session idle expiry is measured in committed cycles. Background
	// reads stand in for the rest of the workload and keep the clock
	// running.
	driveDone := make(chan struct{})
	defer close(driveDone)
	go func() {
		for {
			select {
			case <-driveDone:
				return
			default:
			}
			rctx, rcancel := context.WithTimeout(ctx, 5*time.Second)
			_, _ = driver.Get(rctx, 999) // ignore errors during takeover
			rcancel()
			time.Sleep(2 * time.Millisecond)
		}
	}()

	select {
	case err := <-acquired:
		if err != nil {
			t.Fatalf("waiter failed to acquire after holder crash: %v", err)
		}
	case <-time.After(60 * time.Second):
		t.Fatal("holder's session never expired: waiter still blocked")
	}
	if err := mWait.Unlock(ctx); err != nil {
		t.Fatalf("new holder's Unlock: %v", err)
	}
}

// TestElectionUniquenessUnderPartition cuts the elected leader's node
// off from every other node and asserts the two safety properties that
// make the recipe usable: leadership transfers to a connected candidate
// once the old leader's session expires, and no observation ever sees
// the deposed leader again after the new one is first observed — at
// most one leader at every committed cycle, before, during, and after
// the partition.
func TestElectionUniquenessUnderPartition(t *testing.T) {
	c := canopus.MustSimCluster(canopus.SimOptions{
		Racks: 2, NodesPerRack: 3,
		Node: canopus.Config{
			CycleInterval: time.Millisecond, TickInterval: time.Millisecond,
			SessionIdleCycles: 64,
		},
		Seed: 29,
	})
	c.Serve()
	defer c.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	const key = 800
	alice := recipes.NewElection(recipes.FromCluster(c, 0), key, []byte("alice"))
	bob := recipes.NewElection(recipes.FromCluster(c, 3), key, []byte("bob"))
	observer := recipes.NewElection(recipes.FromCluster(c, 4), key, []byte("observer"))

	if err := alice.Campaign(ctx); err != nil {
		t.Fatal(err)
	}
	if name, err := observer.Leader(ctx); err != nil || !bytes.Equal(name, []byte("alice")) {
		t.Fatalf("Leader = %q, %v; want alice", name, err)
	}

	elected := make(chan error, 1)
	go func() { elected <- bob.Campaign(ctx) }()
	time.Sleep(50 * time.Millisecond) // let bob arm his watch and lose the CAS

	// Cut node 0 — alice's node — off from the rest of the deployment.
	// Its super-leaf peers retain quorum, depose it, and cycles resume
	// without it; alice can no longer reach consensus at all. Invoke runs
	// the injection in the simulation context, so it cannot race the
	// serve-mode pump.
	if !c.Invoke(func() {
		c.Runner.InstallFaults(netsim.FaultPlan{
			Partitions: []netsim.PartitionFault{{
				At: c.Sim.Now(),
				A:  []wire.NodeID{0},
				B:  []wire.NodeID{1, 2, 3, 4, 5},
			}},
		}, nil)
	}) {
		t.Fatal("fault injection dropped")
	}

	// Observe from a connected node until the handover completes. The
	// polling reads double as the background traffic that keeps cycles —
	// and with them the idle-expiry clock — advancing. Safety: once bob
	// is observed leading, alice must never be observed again.
	sawBob := false
	deadline := time.After(60 * time.Second)
	for done := false; !done; {
		select {
		case err := <-elected:
			if err != nil {
				t.Fatalf("bob's campaign failed: %v", err)
			}
			done = true
		case <-deadline:
			t.Fatal("bob never elected after the partition")
		default:
		}
		rctx, rcancel := context.WithTimeout(ctx, 2*time.Second)
		name, err := observer.Leader(rctx)
		rcancel()
		if err == nil {
			switch {
			case bytes.Equal(name, []byte("bob")):
				sawBob = true
			case bytes.Equal(name, []byte("alice")):
				if sawBob {
					t.Fatal("alice observed leading after bob took over")
				}
			}
		}
		time.Sleep(2 * time.Millisecond)
	}

	if lead, err := bob.IsLeader(ctx); err != nil || !lead {
		t.Fatalf("bob IsLeader = %v, %v", lead, err)
	}
	if name, err := observer.Leader(ctx); err != nil || !bytes.Equal(name, []byte("bob")) {
		t.Fatalf("Leader = %q, %v; want bob", name, err)
	}
	// The deposed leader cannot even resign: its node is outside the
	// deployment and none of its submissions can commit.
	rctx, rcancel := context.WithTimeout(ctx, time.Second)
	defer rcancel()
	if err := alice.Resign(rctx); err == nil {
		t.Fatal("partitioned ex-leader resigned successfully")
	} else if errors.Is(err, recipes.ErrNotHeld) {
		// Acceptable too: a rejection that proves the txn did not apply.
	}
}

// TestMutexContendedWholeLeafPartition is the leaf-granular mutex story:
// the lock holder's entire rack is cut off mid-hold. The survivors evict
// the dark super-leaf (LeafTimeout), consensus resumes without it, the
// holder's replicated session idle-expires, and the contenders take the
// lock over — each handoff exactly once, never two holders in the
// critical section. After the heal one of the evicted rack's nodes
// rejoins through the join protocol and must be able to take the same
// lock: readmission restores full service, not just membership.
func TestMutexContendedWholeLeafPartition(t *testing.T) {
	c := canopus.MustSimCluster(canopus.SimOptions{
		Racks: 3, NodesPerRack: 3,
		Node: canopus.Config{
			CycleInterval: 2 * time.Millisecond, TickInterval: time.Millisecond,
			SessionIdleCycles: 64,
			// Evictions armed: without LeafTimeout the cut rack wedges
			// the merge forever and no session can expire at all.
			LeafTimeout:  300 * time.Millisecond,
			FetchTimeout: 50 * time.Millisecond,
		},
		Seed: 37,
	})
	c.Serve()
	defer c.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()

	const lockKey = 900
	// Holder on the doomed rack; contenders spread over the survivors.
	holderBackend := recipes.FromCluster(c, 6)
	holder := recipes.NewMutex(holderBackend, lockKey)
	if err := holder.Lock(ctx); err != nil {
		t.Fatal(err)
	}

	// Keep the holder's session refreshed until the cut: idle expiry is
	// 64 cycles of *virtual* time, the serve-mode pump free-runs
	// virtual time at CPU speed, and only session-bound mutations touch
	// the activity clock (reads are sessionless). Back-to-back no-op
	// writes through the holder's own session bound the refresh gap to
	// one commit round-trip; the session must die because the rack goes
	// dark, not because the holder sat quietly before the fault.
	keepDone := make(chan struct{})
	go func() {
		for {
			select {
			case <-keepDone:
				return
			default:
			}
			kctx, kcancel := context.WithTimeout(ctx, time.Second)
			_, _ = holderBackend.Txn(kctx, nil,
				[]recipes.TxnOp{{Op: canopus.OpWrite, Key: 998, Val: []byte("ka")}})
			kcancel()
		}
	}()

	// Background reads keep cycles (and the idle-expiry clock) running.
	driveDone := make(chan struct{})
	defer close(driveDone)
	go func() {
		driver := recipes.FromCluster(c, 4)
		for {
			select {
			case <-driveDone:
				return
			default:
			}
			rctx, rcancel := context.WithTimeout(ctx, 5*time.Second)
			_, _ = driver.Get(rctx, 999)
			rcancel()
			time.Sleep(2 * time.Millisecond)
		}
	}()

	// Three contenders; inCS asserts mutual exclusion at every handoff.
	var inCS atomic.Int32
	acquired := make(chan int, 3)
	errs := make(chan error, 3)
	for i, node := range []int{0, 1, 3} {
		i, node := i, node
		m := recipes.NewMutex(recipes.FromCluster(c, node), lockKey)
		go func() {
			if err := m.Lock(ctx); err != nil {
				errs <- fmt.Errorf("contender %d: %w", i, err)
				return
			}
			if n := inCS.Add(1); n != 1 {
				errs <- fmt.Errorf("contender %d entered with %d holders in the critical section", i, n)
				return
			}
			time.Sleep(5 * time.Millisecond)
			inCS.Add(-1)
			acquired <- i
			if err := m.Unlock(ctx); err != nil {
				errs <- fmt.Errorf("contender %d unlock: %w", i, err)
			}
		}()
	}

	// Let the contenders lose their CAS and arm watches, then cut the
	// holder's whole rack off. Heal well after the eviction settles.
	time.Sleep(100 * time.Millisecond)
	select {
	case err := <-errs:
		t.Fatal(err)
	case i := <-acquired:
		t.Fatalf("contender %d acquired a held lock before the fault", i)
	default:
	}
	if !c.Invoke(func() {
		now := c.Sim.Now()
		c.Runner.InstallFaults(netsim.FaultPlan{
			Partitions: []netsim.PartitionFault{
				netsim.LeafPartition(now, now+2*time.Second,
					[]wire.NodeID{6, 7, 8},
					[]wire.NodeID{0, 1, 2, 3, 4, 5}),
			},
		}, nil)
	}) {
		t.Fatal("fault injection dropped")
	}
	close(keepDone)

	// All three contenders must eventually pass through the critical
	// section: the first by session-expiry takeover, the rest by normal
	// handoff. Any mutual-exclusion violation surfaces on errs.
	got := map[int]bool{}
	for len(got) < 3 {
		select {
		case err := <-errs:
			t.Fatal(err)
		case i := <-acquired:
			if got[i] {
				t.Fatalf("contender %d acquired twice", i)
			}
			got[i] = true
		case <-time.After(90 * time.Second):
			t.Fatalf("handoff stalled: %d of 3 contenders served", len(got))
		}
	}

	// Post-heal: rejoin one evicted-rack node and take the lock from it.
	// (Crash first — the healed node is a stalled zombie, and eviction
	// restart semantics are crash + fresh joiner.)
	if !c.Invoke(func() {
		c.Crash(7)
		c.RestartAsJoiner(7)
	}) {
		t.Fatal("rejoin injection dropped")
	}
	rejoined := recipes.NewMutex(recipes.FromCluster(c, 7), lockKey)
	deadline := time.Now().Add(90 * time.Second)
	for {
		rctx, rcancel := context.WithTimeout(ctx, 2*time.Second)
		err := rejoined.Lock(rctx)
		rcancel()
		if err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("rejoined node never acquired the lock: %v", err)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if err := rejoined.Unlock(ctx); err != nil {
		t.Fatalf("rejoined node's unlock: %v", err)
	}
}
