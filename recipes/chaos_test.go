package recipes_test

import (
	"bytes"
	"context"
	"errors"
	"testing"
	"time"

	"canopus"
	"canopus/client"
	"canopus/internal/core"
	"canopus/internal/livecluster"
	"canopus/internal/netsim"
	"canopus/internal/wire"
	"canopus/recipes"
)

// TestMutexCrashedHolderExpires is the crash-recovery story the mutex
// recipe exists for: the holder's node is killed with the lock held, and
// the waiter acquires it anyway — the holder's replicated session
// idle-expires through consensus, the expiry cycle deletes its ephemeral
// acquisition, and the waiter's pre-armed watch fires on that delete.
// No operator action, no unlock from the dead holder.
func TestMutexCrashedHolderExpires(t *testing.T) {
	cluster, err := livecluster.Start(livecluster.Config{
		Nodes: 3,
		Node: core.Config{
			CycleInterval: 2 * time.Millisecond, TickInterval: time.Millisecond,
			// Small idle bound so the dead holder's session expires within
			// tens of driven cycles rather than thousands.
			SessionIdleCycles: 64,
		},
		Seed: 41,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Stop(5 * time.Second)

	dial := func(eps ...string) *client.Client {
		t.Helper()
		cl, err := client.New(client.Config{Endpoints: eps, RequestTimeout: 10 * time.Second})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { cl.Close() })
		return cl
	}
	// The holder is pinned to node 0 — when that node dies, so does the
	// holder's connectivity (a real crashed process). The waiter and the
	// traffic driver live on the survivors.
	holder := dial(cluster.ClientAddr(0))
	waiter := dial(cluster.ClientAddr(1), cluster.ClientAddr(2))
	driver := dial(cluster.ClientAddr(2), cluster.ClientAddr(1))

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	const lockKey = 700
	mHold := recipes.NewMutex(recipes.FromClient(holder), lockKey)
	if err := mHold.Lock(ctx); err != nil {
		t.Fatal(err)
	}

	mWait := recipes.NewMutex(recipes.FromClient(waiter), lockKey)
	acquired := make(chan error, 1)
	go func() { acquired <- mWait.Lock(ctx) }()

	// Let the waiter arm its watch and lose its CAS before the crash.
	time.Sleep(50 * time.Millisecond)
	select {
	case err := <-acquired:
		t.Fatalf("waiter acquired a held lock (err=%v)", err)
	default:
	}

	cluster.Crash(0)

	// Cycles are self-clocked: with no traffic there are no commits, and
	// session idle expiry is measured in committed cycles. Background
	// reads stand in for the rest of the workload and keep the clock
	// running.
	driveDone := make(chan struct{})
	defer close(driveDone)
	go func() {
		for {
			select {
			case <-driveDone:
				return
			default:
			}
			rctx, rcancel := context.WithTimeout(ctx, 5*time.Second)
			_, _ = driver.Get(rctx, 999) // ignore errors during takeover
			rcancel()
			time.Sleep(2 * time.Millisecond)
		}
	}()

	select {
	case err := <-acquired:
		if err != nil {
			t.Fatalf("waiter failed to acquire after holder crash: %v", err)
		}
	case <-time.After(60 * time.Second):
		t.Fatal("holder's session never expired: waiter still blocked")
	}
	if err := mWait.Unlock(ctx); err != nil {
		t.Fatalf("new holder's Unlock: %v", err)
	}
}

// TestElectionUniquenessUnderPartition cuts the elected leader's node
// off from every other node and asserts the two safety properties that
// make the recipe usable: leadership transfers to a connected candidate
// once the old leader's session expires, and no observation ever sees
// the deposed leader again after the new one is first observed — at
// most one leader at every committed cycle, before, during, and after
// the partition.
func TestElectionUniquenessUnderPartition(t *testing.T) {
	c := canopus.MustSimCluster(canopus.SimOptions{
		Racks: 2, NodesPerRack: 3,
		Node: canopus.Config{
			CycleInterval: time.Millisecond, TickInterval: time.Millisecond,
			SessionIdleCycles: 64,
		},
		Seed: 29,
	})
	c.Serve()
	defer c.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	const key = 800
	alice := recipes.NewElection(recipes.FromCluster(c, 0), key, []byte("alice"))
	bob := recipes.NewElection(recipes.FromCluster(c, 3), key, []byte("bob"))
	observer := recipes.NewElection(recipes.FromCluster(c, 4), key, []byte("observer"))

	if err := alice.Campaign(ctx); err != nil {
		t.Fatal(err)
	}
	if name, err := observer.Leader(ctx); err != nil || !bytes.Equal(name, []byte("alice")) {
		t.Fatalf("Leader = %q, %v; want alice", name, err)
	}

	elected := make(chan error, 1)
	go func() { elected <- bob.Campaign(ctx) }()
	time.Sleep(50 * time.Millisecond) // let bob arm his watch and lose the CAS

	// Cut node 0 — alice's node — off from the rest of the deployment.
	// Its super-leaf peers retain quorum, depose it, and cycles resume
	// without it; alice can no longer reach consensus at all. Invoke runs
	// the injection in the simulation context, so it cannot race the
	// serve-mode pump.
	if !c.Invoke(func() {
		c.Runner.InstallFaults(netsim.FaultPlan{
			Partitions: []netsim.PartitionFault{{
				At: c.Sim.Now(),
				A:  []wire.NodeID{0},
				B:  []wire.NodeID{1, 2, 3, 4, 5},
			}},
		}, nil)
	}) {
		t.Fatal("fault injection dropped")
	}

	// Observe from a connected node until the handover completes. The
	// polling reads double as the background traffic that keeps cycles —
	// and with them the idle-expiry clock — advancing. Safety: once bob
	// is observed leading, alice must never be observed again.
	sawBob := false
	deadline := time.After(60 * time.Second)
	for done := false; !done; {
		select {
		case err := <-elected:
			if err != nil {
				t.Fatalf("bob's campaign failed: %v", err)
			}
			done = true
		case <-deadline:
			t.Fatal("bob never elected after the partition")
		default:
		}
		rctx, rcancel := context.WithTimeout(ctx, 2*time.Second)
		name, err := observer.Leader(rctx)
		rcancel()
		if err == nil {
			switch {
			case bytes.Equal(name, []byte("bob")):
				sawBob = true
			case bytes.Equal(name, []byte("alice")):
				if sawBob {
					t.Fatal("alice observed leading after bob took over")
				}
			}
		}
		time.Sleep(2 * time.Millisecond)
	}

	if lead, err := bob.IsLeader(ctx); err != nil || !lead {
		t.Fatalf("bob IsLeader = %v, %v", lead, err)
	}
	if name, err := observer.Leader(ctx); err != nil || !bytes.Equal(name, []byte("bob")) {
		t.Fatalf("Leader = %q, %v; want bob", name, err)
	}
	// The deposed leader cannot even resign: its node is outside the
	// deployment and none of its submissions can commit.
	rctx, rcancel := context.WithTimeout(ctx, time.Second)
	defer rcancel()
	if err := alice.Resign(rctx); err == nil {
		t.Fatal("partitioned ex-leader resigned successfully")
	} else if errors.Is(err, recipes.ErrNotHeld) {
		// Acceptable too: a rejection that proves the txn did not apply.
	}
}
