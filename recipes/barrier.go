package recipes

import "context"

// Barrier is a single-use rendezvous over one key: Arrive increments
// the key's counter and blocks until n parties have arrived. The count
// survives individual crashes (it is a plain, non-ephemeral value);
// each party must call Arrive exactly once.
type Barrier struct {
	c *Counter
	n int64
}

// NewBarrier returns a barrier at key awaiting n parties. All parties
// must agree on key and n.
func NewBarrier(b Backend, key uint64, n int) *Barrier {
	return &Barrier{c: NewCounter(b, key), n: int64(n)}
}

// Arrive registers this party and blocks until all n have arrived or
// ctx ends.
func (bar *Barrier) Arrive(ctx context.Context) error {
	if got, err := bar.c.Add(ctx, 1); err != nil {
		return err
	} else if got >= bar.n {
		return nil
	}
	for {
		// Watch-before-read: an arrival committed after the watch is
		// armed wakes us, so the final count is never missed.
		w, err := bar.c.b.WatchKey(ctx, bar.c.key)
		if err != nil {
			return err
		}
		got, err := bar.c.Value(ctx)
		if err == nil && got >= bar.n {
			w.Close()
			return nil
		}
		if err == nil {
			err = w.Wait(ctx)
		}
		w.Close()
		if err != nil {
			return err
		}
	}
}
