// Package recipes builds classic distributed-coordination primitives —
// mutual exclusion, leader election, counters and barriers — on the
// Canopus event plane: guarded multi-op transactions, ordered change
// watches, and replicated client sessions.
//
// Every recipe follows the same correctness pattern the globally
// committed cycle order makes cheap:
//
//   - acquire/update is one guarded transaction (compare-and-swap
//     against the committed state of a single cycle), so exactly one
//     contender wins no matter how many race;
//   - waiting is watch-before-retry: a watch on the contended key is
//     registered *before* the transaction, so a release committed in
//     any later cycle is guaranteed to wake the waiter — no polling, no
//     lost-wakeup window;
//   - ownership is written as an ephemeral value bound to the owner's
//     replicated session, so a crashed owner releases automatically
//     when its session idle-expires through consensus.
//
// Recipes are written against the small Backend port, with two
// adapters: FromClient wraps a canopus/client.Client (live TCP
// deployments), FromCluster wraps any canopus.EventCluster node (the
// in-process simulator or a live cluster driven locally). The recipe
// code is identical on both.
package recipes

import (
	"context"
	"errors"

	"canopus"
)

// Transaction vocabulary, re-exported from the root package so recipe
// backends can be implemented without reaching into internals.
type (
	// TxnGuard is one transaction precondition.
	TxnGuard = canopus.TxnGuard
	// TxnOp is one transaction write or delete.
	TxnOp = canopus.TxnOp
)

// Guard and op constructors recipes build their transactions from.

func guardAbsent(key uint64) TxnGuard {
	return TxnGuard{Kind: canopus.GuardValueEq, Key: key}
}

func guardValueEq(key uint64, val []byte) TxnGuard {
	return TxnGuard{Kind: canopus.GuardValueEq, Key: key, Val: val}
}

func putEphemeral(key uint64, val []byte) TxnOp {
	return TxnOp{Op: canopus.OpWrite, Key: key, Val: val, Ephemeral: true}
}

func put(key uint64, val []byte) TxnOp {
	return TxnOp{Op: canopus.OpWrite, Key: key, Val: val}
}

func del(key uint64) TxnOp {
	return TxnOp{Op: canopus.OpDelete, Key: key}
}

// ErrNotHeld reports a release (Unlock, Resign) by a caller that does
// not hold the lock or leadership — it was never acquired, was already
// released, or was lost to session expiry.
var ErrNotHeld = errors.New("recipes: not held")

// ErrUnavailable reports that the backend could not serve the
// operation (node crashed, stalled, draining, or session rejected).
var ErrUnavailable = errors.New("recipes: backend unavailable")

// ErrUncertain reports a transaction whose fate is unknowable: the final
// submission was rejected, but an earlier one may have committed before
// the backend's session expired (the dedup state that could tell is
// gone). Recipes whose transactions are self-identifying — a lock
// acquire writes the holder's token, so re-reading the key settles what
// happened — recover from this internally. Recipes that are not
// (Counter.Add: a retry after a silent commit would double-count)
// surface it and let the caller decide.
var ErrUncertain = errors.New("recipes: transaction outcome uncertain")

// Verdict is a transaction's committed-order outcome.
type Verdict struct {
	// Committed reports that every guard held and all ops applied.
	Committed bool
	// FailedGuard is the index of the first guard that did not hold;
	// -1 when Committed.
	FailedGuard int
}

// Waiter is one armed change watch on a single key. It is registered
// (and its resume point pinned) before the constructor returns, so a
// change committed after construction is never missed.
type Waiter interface {
	// Wait blocks until the key changes in a cycle committed after the
	// Waiter was armed, the watch dies (overflow — the caller re-checks
	// state anyway), or ctx ends. A nil return means "re-examine the
	// key"; it deliberately does not say what changed.
	Wait(ctx context.Context) error
	// Close releases the watch registration.
	Close()
}

// Backend is the minimal coordination surface recipes run on: committed
// reads, guarded transactions under a replicated session, and armed
// change watches. Implementations: FromClient, FromCluster.
type Backend interface {
	// Get returns key's committed value, nil when the key is absent.
	Get(ctx context.Context, key uint64) ([]byte, error)
	// Txn executes one guarded transaction bound to the backend's
	// replicated session (exactly-once across internal retries).
	Txn(ctx context.Context, guards []TxnGuard, ops []TxnOp) (Verdict, error)
	// WatchKey arms a change watch on key before returning.
	WatchKey(ctx context.Context, key uint64) (Waiter, error)
	// SessionToken returns a stable, deployment-unique byte identity
	// derived from the backend's replicated session, registering the
	// session first if needed. Recipes write it into lock and leader
	// keys as the fencing value.
	SessionToken(ctx context.Context) ([]byte, error)
}
