package recipes

import (
	"bytes"
	"context"
	"errors"
)

// Election is leader election over one key: the leader's name sits in
// the key as an ephemeral value bound to its session. At most one
// candidate leads at any committed cycle (the key holds one value);
// a crashed leader is deposed automatically by session expiry, and
// every waiting candidate races for the vacancy through the same
// watch-then-CAS pattern as Mutex.
type Election struct {
	b    Backend
	key  uint64
	name []byte
}

// NewElection returns a candidate handle for the election at key. name
// identifies this candidate to observers (Leader returns it) and MUST
// be unique among candidates — reusing a name would let one candidate
// resign another's leadership.
func NewElection(b Backend, key uint64, name []byte) *Election {
	return &Election{b: b, key: key, name: append([]byte(nil), name...)}
}

// Campaign blocks until this candidate is elected or ctx ends.
func (e *Election) Campaign(ctx context.Context) error {
	for {
		w, err := e.b.WatchKey(ctx, e.key)
		if err != nil {
			return err
		}
		res, err := e.b.Txn(ctx,
			[]TxnGuard{guardAbsent(e.key)},
			[]TxnOp{putEphemeral(e.key, e.name)})
		if err != nil && !errors.Is(err, ErrUncertain) {
			w.Close()
			return err
		}
		if err == nil && res.Committed {
			w.Close()
			return nil
		}
		// Lost — or (on ErrUncertain) possibly elected by an earlier
		// retry of our own transaction; the name in the key settles it.
		val, gerr := e.b.Get(ctx, e.key)
		if gerr != nil {
			w.Close()
			return gerr
		}
		if bytes.Equal(val, e.name) {
			w.Close()
			return nil // already leading
		}
		if val != nil {
			err = w.Wait(ctx)
		} else {
			err = ctx.Err() // vacant: retry the CAS immediately
		}
		w.Close()
		if err != nil {
			return err
		}
	}
}

// Leader returns the current leader's name, or nil when the post is
// vacant.
func (e *Election) Leader(ctx context.Context) ([]byte, error) {
	return e.b.Get(ctx, e.key)
}

// IsLeader reports whether this candidate currently leads.
func (e *Election) IsLeader(ctx context.Context) (bool, error) {
	val, err := e.b.Get(ctx, e.key)
	if err != nil {
		return false, err
	}
	return bytes.Equal(val, e.name), nil
}

// Resign vacates leadership. ErrNotHeld means this candidate was not
// the leader (never elected, already resigned, or deposed by expiry).
func (e *Election) Resign(ctx context.Context) error {
	for {
		res, err := e.b.Txn(ctx,
			[]TxnGuard{guardValueEq(e.key, e.name)},
			[]TxnOp{del(e.key)})
		if errors.Is(err, ErrUncertain) {
			// An earlier retry of this delete may have committed; if the
			// key no longer names us, the resignation happened.
			val, gerr := e.b.Get(ctx, e.key)
			if gerr != nil {
				return gerr
			}
			if bytes.Equal(val, e.name) {
				continue
			}
			return nil
		}
		if err != nil {
			return err
		}
		if !res.Committed {
			return ErrNotHeld
		}
		return nil
	}
}
