package recipes_test

import (
	"bytes"
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"canopus"
	"canopus/recipes"
)

// startSim boots a serve-mode simulated deployment: six nodes in two
// super-leaves, fast cycles. Recipes drive it through FromCluster
// backends exactly as they would drive a live deployment through
// FromClient.
func startSim(t *testing.T, seed int64) *canopus.SimCluster {
	t.Helper()
	c := canopus.MustSimCluster(canopus.SimOptions{
		Racks: 2, NodesPerRack: 3,
		Node: canopus.Config{CycleInterval: time.Millisecond, TickInterval: time.Millisecond},
		Seed: seed,
	})
	c.Serve()
	t.Cleanup(func() { c.Close() })
	return c
}

func testCtx(t *testing.T) context.Context {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	t.Cleanup(cancel)
	return ctx
}

// TestMutexMutualExclusion races contenders on different nodes through
// Lock/Unlock and asserts no two ever sit in the critical section at
// once — the committed cycle order admits exactly one CAS per vacancy.
func TestMutexMutualExclusion(t *testing.T) {
	c := startSim(t, 11)
	ctx := testCtx(t)

	const key = 100
	nodes := []int{0, 1, 3, 4}
	const rounds = 4

	var inside atomic.Int32
	var acquired atomic.Int32
	var wg sync.WaitGroup
	for _, node := range nodes {
		m := recipes.NewMutex(recipes.FromCluster(c, node), key)
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				if err := m.Lock(ctx); err != nil {
					t.Errorf("Lock: %v", err)
					return
				}
				if n := inside.Add(1); n != 1 {
					t.Errorf("%d holders in the critical section", n)
				}
				acquired.Add(1)
				time.Sleep(time.Millisecond)
				inside.Add(-1)
				if err := m.Unlock(ctx); err != nil {
					t.Errorf("Unlock: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if got, want := acquired.Load(), int32(len(nodes)*rounds); got != want {
		t.Fatalf("acquired %d times, want %d", got, want)
	}
}

// TestMutexTryLockAndNotHeld pins the non-blocking path and the release
// safety rule: TryLock on a held lock fails without waiting, and Unlock
// by a non-holder is refused (it never deletes another session's
// acquisition).
func TestMutexTryLockAndNotHeld(t *testing.T) {
	c := startSim(t, 13)
	ctx := testCtx(t)

	const key = 200
	m1 := recipes.NewMutex(recipes.FromCluster(c, 0), key)
	m2 := recipes.NewMutex(recipes.FromCluster(c, 3), key)

	if err := m1.Lock(ctx); err != nil {
		t.Fatal(err)
	}
	if ok, err := m2.TryLock(ctx); err != nil || ok {
		t.Fatalf("TryLock on held lock = %v, %v; want false", ok, err)
	}
	if err := m2.Unlock(ctx); !errors.Is(err, recipes.ErrNotHeld) {
		t.Fatalf("Unlock by non-holder = %v, want ErrNotHeld", err)
	}
	// Lock is idempotent while held.
	if err := m1.Lock(ctx); err != nil {
		t.Fatalf("re-Lock while holding: %v", err)
	}
	if err := m1.Unlock(ctx); err != nil {
		t.Fatal(err)
	}
	if ok, err := m2.TryLock(ctx); err != nil || !ok {
		t.Fatalf("TryLock on free lock = %v, %v; want true", ok, err)
	}
	if err := m2.Unlock(ctx); err != nil {
		t.Fatal(err)
	}
}

// TestCounterConcurrentAdds hammers one counter from four nodes and
// asserts no increment is ever lost: every Add is a guarded CAS that
// only commits against the value it read.
func TestCounterConcurrentAdds(t *testing.T) {
	c := startSim(t, 17)
	ctx := testCtx(t)

	const key = 300
	nodes := []int{0, 1, 3, 4}
	const perNode = 10

	var wg sync.WaitGroup
	for _, node := range nodes {
		ctr := recipes.NewCounter(recipes.FromCluster(c, node), key)
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perNode; i++ {
				if _, err := ctr.Add(ctx, 1); err != nil {
					t.Errorf("Add: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()

	ctr := recipes.NewCounter(recipes.FromCluster(c, 5), key)
	got, err := ctr.Value(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if want := int64(len(nodes) * perNode); got != want {
		t.Fatalf("counter = %d, want %d (lost updates)", got, want)
	}
}

// TestElectionHandover runs a full leadership lifecycle: a candidate
// wins, a second blocks campaigning, resignation hands over, and a
// resigned candidate's Resign reports ErrNotHeld.
func TestElectionHandover(t *testing.T) {
	c := startSim(t, 19)
	ctx := testCtx(t)

	const key = 400
	alice := recipes.NewElection(recipes.FromCluster(c, 0), key, []byte("alice"))
	bob := recipes.NewElection(recipes.FromCluster(c, 3), key, []byte("bob"))

	if err := alice.Campaign(ctx); err != nil {
		t.Fatal(err)
	}
	if lead, err := alice.IsLeader(ctx); err != nil || !lead {
		t.Fatalf("IsLeader after win = %v, %v", lead, err)
	}

	elected := make(chan error, 1)
	go func() { elected <- bob.Campaign(ctx) }()

	// bob must stay a candidate while alice leads.
	select {
	case err := <-elected:
		t.Fatalf("bob elected while alice leads (err=%v)", err)
	case <-time.After(50 * time.Millisecond):
	}

	observer := recipes.NewElection(recipes.FromCluster(c, 5), key, []byte("observer"))
	if name, err := observer.Leader(ctx); err != nil || !bytes.Equal(name, []byte("alice")) {
		t.Fatalf("Leader = %q, %v; want alice", name, err)
	}

	if err := alice.Resign(ctx); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-elected:
		if err != nil {
			t.Fatalf("bob's campaign failed: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("bob never elected after alice resigned")
	}
	if lead, err := bob.IsLeader(ctx); err != nil || !lead {
		t.Fatalf("bob IsLeader = %v, %v", lead, err)
	}
	if err := alice.Resign(ctx); !errors.Is(err, recipes.ErrNotHeld) {
		t.Fatalf("second Resign = %v, want ErrNotHeld", err)
	}
	if name, err := observer.Leader(ctx); err != nil || !bytes.Equal(name, []byte("bob")) {
		t.Fatalf("Leader = %q, %v; want bob", name, err)
	}
}

// TestBarrierReleasesAll parks n-1 parties on a rendezvous and asserts
// the nth arrival releases every one of them.
func TestBarrierReleasesAll(t *testing.T) {
	c := startSim(t, 23)
	ctx := testCtx(t)

	const key = 500
	nodes := []int{0, 1, 3}

	done := make(chan error, len(nodes))
	for i, node := range nodes {
		bar := recipes.NewBarrier(recipes.FromCluster(c, node), key, len(nodes))
		delay := time.Duration(i) * 20 * time.Millisecond
		go func() {
			time.Sleep(delay) // stagger so early parties really park
			done <- bar.Arrive(ctx)
		}()
	}
	for range nodes {
		select {
		case err := <-done:
			if err != nil {
				t.Fatalf("Arrive: %v", err)
			}
		case <-time.After(30 * time.Second):
			t.Fatal("barrier never released all parties")
		}
	}
}
