package canopus

import (
	"canopus/internal/livecluster"
)

// Cluster is the backend-independent handle on a running Canopus
// deployment: the simulator (*SimCluster, after Serve) and the live
// loopback-TCP deployment (*LiveCluster) both implement it, so
// workloads, harnesses and applications written against this interface
// run unmodified on either.
//
// Submit is the in-process path: one keyed operation, executed at the
// chosen node's replica, completed through a callback. Endpoint exposes
// the node's client-port address for network clients (canopus/client);
// backends without sockets return "".
type Cluster interface {
	// NumNodes returns the deployment size.
	NumNodes() int
	// Submit asynchronously executes one keyed operation at node's
	// replica. done is invoked from the backend's execution context (the
	// simulator's event loop, or a live node's commit apply executor) —
	// it must not block — with the read value (nil for mutations and
	// misses) and whether the operation was served; ok=false means the
	// node is stalled, draining or crashed. The value bytes are only
	// valid during the callback.
	Submit(node int, op Op, key uint64, val []byte, done func(val []byte, ok bool))
	// Endpoint returns node's client-port address, or "" when the
	// backend is not reachable over the network.
	Endpoint(node int) string
	// Close tears the deployment down.
	Close() error
}

// SessionCluster extends Cluster with replicated client sessions — the
// exactly-once mutation surface. RegisterSession commits a session ID
// through a consensus cycle; SubmitSession executes one keyed operation
// under that session with a caller-chosen per-session sequence number.
// Re-submitting a mutation with a (session, seq) that already committed
// (the reply-loss retry) completes with the cached committed result
// instead of applying twice — at any node, because the dedup table is
// part of every replica's state machine. Both backends implement it;
// network clients get the same guarantee transparently through
// canopus/client.
type SessionCluster interface {
	Cluster
	// RegisterSession commits a fresh session through node's replica.
	// done runs from the backend's execution context (it must not block)
	// with the replicated session ID; ok=false means the node could not
	// commit it (stalled, crashed, draining, or closed).
	RegisterSession(node int, done func(id uint64, ok bool))
	// SubmitSession executes one operation under (session, seq). done
	// follows the Submit contract; additionally ok=false is returned for
	// an expired or never-registered session (the mutation was NOT
	// applied). Mutations of one session must use distinct seqs;
	// re-using a seq marks a retry of the same operation. Reads carry no
	// dedup identity.
	SubmitSession(node int, session, seq uint64, op Op, key uint64, val []byte, done func(val []byte, ok bool))
}

// EventCluster extends SessionCluster with the event plane: guarded
// multi-op transactions and ordered change watches. Both backends
// implement it; canopus/recipes builds its coordination primitives
// (mutex, election, counters, barriers) on this surface, so the same
// recipe code runs on the simulator and on a live deployment.
type EventCluster interface {
	SessionCluster
	// SubmitTxn executes one encoded transaction (AppendTxn) at node's
	// replica. done follows the Submit contract and receives the encoded
	// TxnResult (ParseTxnResult). A non-zero session makes the txn
	// exactly-once across retries; session 0 submits at-most-once.
	SubmitTxn(node int, session, seq uint64, body []byte, done func(val []byte, ok bool))
	// Watch registers a change watch on node's event hub. The sink runs
	// on the backend's execution context and must not block; see
	// events.Hub.Watch for the resume and overflow contract.
	Watch(node int, spec WatchSpec, sink WatchSink) (uint64, error)
	// Unwatch cancels a watch registered through Watch.
	Unwatch(node int, id uint64)
}

// Interface conformance: both backends stay behind the one API.
var (
	_ Cluster        = (*SimCluster)(nil)
	_ Cluster        = (*LiveCluster)(nil)
	_ SessionCluster = (*SimCluster)(nil)
	_ SessionCluster = (*LiveCluster)(nil)
	_ EventCluster   = (*SimCluster)(nil)
	_ EventCluster   = (*LiveCluster)(nil)
)

// NodeConn adapts one node of a Cluster to the asynchronous Do shape
// the internal/workload live drivers consume, so one load generator
// drives simulated and live backends alike:
//
//	conns := make([]workload.Doer, c.NumNodes())
//	for i := range conns { conns[i] = canopus.NodeConn{C: c, Node: i} }
type NodeConn struct {
	C    Cluster
	Node int
}

// Do submits one operation and reports completion success.
func (nc NodeConn) Do(op Op, key uint64, val []byte, done func(ok bool)) {
	nc.C.Submit(nc.Node, op, key, val, func(_ []byte, ok bool) { done(ok) })
}

// LiveOptions shapes a live loopback deployment (see
// internal/livecluster.Config: node count or explicit super-leaves, a
// per-node protocol Config template, seed and log sink).
type LiveOptions = livecluster.Config

// LiveCluster is a running live deployment: real TCP sockets on
// loopback, the same engines and client ports cmd/canopus-server runs.
// Connect a canopus/client.Client to its Endpoint addresses, or drive
// it in-process through the Cluster interface.
type LiveCluster = livecluster.Cluster

// StartLiveCluster boots a live loopback deployment: listeners first
// (so every node knows every address), then nodes, then client ports.
func StartLiveCluster(opts LiveOptions) (*LiveCluster, error) {
	return livecluster.Start(opts)
}
