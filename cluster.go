package canopus

import (
	"canopus/internal/livecluster"
)

// Cluster is the backend-independent handle on a running Canopus
// deployment: the simulator (*SimCluster, after Serve) and the live
// loopback-TCP deployment (*LiveCluster) both implement it, so
// workloads, harnesses and applications written against this interface
// run unmodified on either.
//
// Submit is the in-process path: one keyed operation, executed at the
// chosen node's replica, completed through a callback. Endpoint exposes
// the node's client-port address for network clients (canopus/client);
// backends without sockets return "".
type Cluster interface {
	// NumNodes returns the deployment size.
	NumNodes() int
	// Submit asynchronously executes one keyed operation at node's
	// replica. done is invoked from the backend's execution context — it
	// must not block — with the read value (nil for mutations and
	// misses) and whether the operation was served; ok=false means the
	// node is stalled, draining or crashed.
	Submit(node int, op Op, key uint64, val []byte, done func(val []byte, ok bool))
	// Endpoint returns node's client-port address, or "" when the
	// backend is not reachable over the network.
	Endpoint(node int) string
	// Close tears the deployment down.
	Close() error
}

// Interface conformance: both backends stay behind the one API.
var (
	_ Cluster = (*SimCluster)(nil)
	_ Cluster = (*LiveCluster)(nil)
)

// NodeConn adapts one node of a Cluster to the asynchronous Do shape
// the internal/workload live drivers consume, so one load generator
// drives simulated and live backends alike:
//
//	conns := make([]workload.Doer, c.NumNodes())
//	for i := range conns { conns[i] = canopus.NodeConn{C: c, Node: i} }
type NodeConn struct {
	C    Cluster
	Node int
}

// Do submits one operation and reports completion success.
func (nc NodeConn) Do(op Op, key uint64, val []byte, done func(ok bool)) {
	nc.C.Submit(nc.Node, op, key, val, func(_ []byte, ok bool) { done(ok) })
}

// LiveOptions shapes a live loopback deployment (see
// internal/livecluster.Config: node count or explicit super-leaves, a
// per-node protocol Config template, seed and log sink).
type LiveOptions = livecluster.Config

// LiveCluster is a running live deployment: real TCP sockets on
// loopback, the same engines and client ports cmd/canopus-server runs.
// Connect a canopus/client.Client to its Endpoint addresses, or drive
// it in-process through the Cluster interface.
type LiveCluster = livecluster.Cluster

// StartLiveCluster boots a live loopback deployment: listeners first
// (so every node knows every address), then nodes, then client ports.
func StartLiveCluster(opts LiveOptions) (*LiveCluster, error) {
	return livecluster.Start(opts)
}
