// Georeplicated: a seven-datacenter replicated ledger over the paper's
// Table 1 latencies (Ireland, California, Virginia, Tokyo, Oregon,
// Sydney, Frankfurt), with pipelining deep enough to hide 300ms round
// trips (§7.1). Each datacenter appends entries concurrently; the ledger
// commits in one global order on all 21 replicas.
package main

import (
	"fmt"
	"time"

	"canopus"
)

// Table 1 round-trip latencies (ms) between the paper's EC2 regions.
var regions = []string{"IR", "CA", "VA", "TK", "OR", "SY", "FF"}
var rttMS = [7][7]float64{
	{0.2, 133, 66, 243, 154, 295, 22},
	{133, 0.2, 60, 113, 20, 168, 145},
	{66, 60, 0.25, 145, 80, 226, 89},
	{243, 113, 145, 0.13, 100, 103, 226},
	{154, 20, 80, 100, 0.26, 161, 156},
	{295, 168, 226, 103, 161, 0.2, 322},
	{22, 145, 89, 226, 156, 322, 0.23},
}

func main() {
	rtt := make([][]time.Duration, 7)
	for i := range rtt {
		rtt[i] = make([]time.Duration, 7)
		for j := range rtt[i] {
			rtt[i][j] = time.Duration(rttMS[i][j] * float64(time.Millisecond))
		}
	}
	cluster := canopus.MustSimCluster(canopus.SimOptions{
		Racks:        7,
		NodesPerRack: 3,
		WANRTT:       rtt,
		Node: canopus.Config{
			CycleInterval: 5 * time.Millisecond, // the paper's WAN setting
			MaxInFlight:   256,                  // pipeline across ~300ms RTTs
			FetchTimeout:  800 * time.Millisecond,
		},
	})

	// One "ledger writer" per datacenter appends entries to its own key
	// range; each append's completion callback fires when the entry's
	// cycle commits in the single global order.
	const entries = 5
	var committed int
	for dc := 0; dc < 7; dc++ {
		dc := dc
		node := dc * 3 // first replica in each DC
		for e := 0; e < entries; e++ {
			e := e
			at := 10*time.Millisecond + time.Duration(e)*50*time.Millisecond
			cluster.At(at, func() {
				key := uint64(dc*1000 + e)
				payload := fmt.Sprintf("%s-entry-%d", regions[dc], e)
				cluster.Submit(node, canopus.OpWrite, key, []byte(payload), func(_ []byte, ok bool) {
					if ok {
						committed++
					}
				})
			})
		}
	}
	cluster.RunUntil(5 * time.Second)

	fmt.Printf("committed %d/%d ledger appends across 7 datacenters\n", committed, 7*entries)
	// Verify convergence: Ireland's replica and Sydney's replica agree.
	ir, sy := cluster.StoreOf(0), cluster.StoreOf(15)
	agree := 0
	for dc := 0; dc < 7; dc++ {
		for e := 0; e < entries; e++ {
			key := uint64(dc*1000 + e)
			a, b := ir.Read(key), sy.Read(key)
			if string(a) == string(b) && a != nil {
				agree++
			}
		}
	}
	fmt.Printf("IR and SY replicas agree on %d/%d entries\n", agree, 7*entries)
	fmt.Printf("sample entry: %q\n", ir.Read(5001))
}
