// Quickstart: the paper's Figure 2 scenario — six nodes in two
// super-leaves reaching consensus in two rounds — on the in-process
// simulator (virtual time, deterministic, no sockets), driven through
// the unified Cluster API: per-operation completion callbacks instead
// of node-level reply hooks.
package main

import (
	"fmt"
	"time"

	"canopus"
)

func main() {
	cluster := canopus.MustSimCluster(canopus.SimOptions{Racks: 2, NodesPerRack: 3})
	fmt.Printf("LOT height %d, %d super-leaves\n\n", cluster.Tree.Height, cluster.Tree.NumSuperLeaves())

	// Two clients at different nodes write concurrently; one then reads.
	// Submit completes each operation with its own callback when the
	// ordering cycle commits.
	cluster.At(time.Millisecond, func() {
		cluster.Submit(0, canopus.OpWrite, 42, []byte("from node 0"), func(_ []byte, ok bool) {
			fmt.Printf("node 0: write key 42 committed (ok=%v)\n", ok)
		})
		cluster.Submit(4, canopus.OpWrite, 43, []byte("from node 4"), func(_ []byte, ok bool) {
			fmt.Printf("node 4: write key 43 committed (ok=%v)\n", ok)
		})
	})
	// A read after the writes: linearizable without going on the wire.
	cluster.At(100*time.Millisecond, func() {
		cluster.Submit(0, canopus.OpRead, 43, nil, func(val []byte, ok bool) {
			fmt.Printf("node 0: read key 43 -> %q\n", val)
		})
	})
	cluster.RunUntil(time.Second)

	// Every replica holds both writes.
	for id := canopus.NodeID(0); int(id) < cluster.NumNodes(); id++ {
		v42 := cluster.StoreOf(id).Read(42)
		v43 := cluster.StoreOf(id).Read(43)
		fmt.Printf("node %v: 42=%q 43=%q (committed cycle %d)\n",
			id, v42, v43, cluster.Node(id).Committed())
	}
}
