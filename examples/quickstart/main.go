// Quickstart: the paper's Figure 2 scenario — six nodes in two
// super-leaves reaching consensus in two rounds — on the in-process
// simulator (virtual time, deterministic, no sockets).
package main

import (
	"fmt"
	"time"

	"canopus"
)

func main() {
	cluster := canopus.NewSimCluster(canopus.SimOptions{Racks: 2, NodesPerRack: 3})
	fmt.Printf("LOT height %d, %d super-leaves\n\n", cluster.Tree.Height, cluster.Tree.NumSuperLeaves())

	// Two clients at different nodes write concurrently; one then reads.
	cluster.OnReply(0, func(req *canopus.Request, val []byte) {
		if req.Op == canopus.OpRead {
			fmt.Printf("node 0: read key %d -> %q\n", req.Key, val)
		} else {
			fmt.Printf("node 0: write key %d committed\n", req.Key)
		}
	})
	cluster.At(time.Millisecond, func() {
		cluster.Submit(0, canopus.Write(1, 1, 42, []byte("from node 0")))
		cluster.Submit(4, canopus.Write(2, 1, 43, []byte("from node 4")))
	})
	// A read after the writes: linearizable without going on the wire.
	cluster.At(100*time.Millisecond, func() {
		cluster.Submit(0, canopus.Read(1, 2, 43))
	})
	cluster.RunUntil(time.Second)

	// Every replica holds both writes.
	for id := canopus.NodeID(0); int(id) < cluster.NumNodes(); id++ {
		v42 := cluster.StoreOf(id).Read(42)
		v43 := cluster.StoreOf(id).Read(43)
		fmt.Printf("node %v: 42=%q 43=%q (committed cycle %d)\n",
			id, v42, v43, cluster.Node(id).Committed())
	}
}
