// Livecluster: six real Canopus nodes over TCP on localhost — the same
// protocol engines the simulator drives, behind real sockets — driven
// through the public client package: typed sync/async operations,
// multi-op batches, read-consistency levels, and failover across the
// cluster's endpoints.
package main

import (
	"context"
	"fmt"
	"log"

	"canopus"
	"canopus/client"
)

func main() {
	// Two super-leaves of three on loopback TCP.
	cluster, err := canopus.StartLiveCluster(canopus.LiveOptions{
		SuperLeaves: [][]canopus.NodeID{{0, 1, 2}, {3, 4, 5}},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()

	// A client over every endpoint: it connects to the first and fails
	// over along the list if that node dies.
	endpoints := make([]string, cluster.NumNodes())
	for i := range endpoints {
		endpoints[i] = cluster.Endpoint(i)
	}
	cl, err := client.New(client.Config{Endpoints: endpoints})
	if err != nil {
		log.Fatal(err)
	}
	defer cl.Close()
	ctx := context.Background()

	// Synchronous: a committed write, then a linearizable read.
	if err := cl.Put(ctx, 7, []byte("live!")); err != nil {
		log.Fatal(err)
	}
	val, err := cl.Get(ctx, 7)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("linearizable read: key 7 = %q\n", val)

	// Weaker consistency: served from the connected replica's committed
	// state without entering a consensus cycle. The result carries the
	// commit cycle that served it (the read timestamp).
	res, err := cl.Do(ctx, client.Op{Kind: client.OpGet, Key: 7, Consistency: client.Stale})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("stale read: key 7 = %q (cycle %d)\n", res.Val, res.Cycle)

	// Asynchronous: pipeline writes, then collect the futures.
	futs := make([]*client.Future, 5)
	for i := range futs {
		futs[i] = cl.PutAsync(uint64(100+i), []byte(fmt.Sprintf("entry-%d", i)))
	}
	for i, f := range futs {
		if _, err := f.Wait(ctx); err != nil {
			log.Fatalf("async put %d: %v", i, err)
		}
	}
	fmt.Println("5 pipelined writes committed")

	// A multi-op batch, submitted to the serving node in one turn.
	results, err := cl.Batch(ctx, []client.Op{
		{Kind: client.OpGet, Key: 100},
		{Kind: client.OpDelete, Key: 101},
		{Kind: client.OpGet, Key: 101},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("batch: key 100 = %q; key 101 after delete found=%v\n",
		results[0].Val, results[2].Found)

	fmt.Printf("session observed commit cycle %d across %d endpoints\n",
		cl.LastCycle(), len(endpoints))
}
