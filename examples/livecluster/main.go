// Livecluster: six real Canopus nodes over TCP on localhost — the same
// protocol engines the simulator drives, behind real sockets
// (internal/transport). Two super-leaves of three; one client writes and
// reads through node 0's engine.
package main

import (
	"fmt"
	"log"
	"sync"
	"time"

	"canopus"
	"canopus/internal/transport"
)

func main() {
	const n = 6
	// Bind listeners first so every node knows every address.
	peers := make(map[canopus.NodeID]string, n)
	runners := make([]*transport.Runner, n)
	base := 17000
	for i := 0; i < n; i++ {
		peers[canopus.NodeID(i)] = fmt.Sprintf("127.0.0.1:%d", base+i)
	}
	for i := 0; i < n; i++ {
		r, err := transport.NewRunner(canopus.NodeID(i), peers[canopus.NodeID(i)], peers, 7)
		if err != nil {
			log.Fatal(err)
		}
		r.Logf = func(string, ...interface{}) {} // quiet shutdown noise
		runners[i] = r
	}

	tree, err := canopus.NewTree(canopus.TreeConfig{SuperLeaves: [][]canopus.NodeID{
		{0, 1, 2}, {3, 4, 5},
	}})
	if err != nil {
		log.Fatal(err)
	}

	stores := make([]*canopus.Store, n)
	nodes := make([]*canopus.Node, n)
	replies := make(chan string, 16)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		i := i
		stores[i] = canopus.NewStore()
		cbs := canopus.Callbacks{}
		if i == 0 {
			cbs.OnReply = func(req *canopus.Request, val []byte) {
				if req.Op == canopus.OpRead {
					replies <- fmt.Sprintf("read key %d -> %q", req.Key, val)
				} else {
					replies <- fmt.Sprintf("write key %d committed", req.Key)
				}
			}
		}
		nodes[i] = canopus.NewNode(canopus.Config{Tree: tree, Self: canopus.NodeID(i)}, stores[i], cbs)
		runners[i].Attach(nodes[i])
		wg.Add(1)
		go func() { defer wg.Done(); runners[i].Serve(nil) }()
	}

	// Submit through node 0's engine (Invoke serializes with the
	// protocol goroutine).
	runners[0].Invoke(func() {
		nodes[0].Submit(canopus.Write(1, 1, 7, []byte("live!")))
	})
	fmt.Println(<-replies)
	runners[0].Invoke(func() {
		nodes[0].Submit(canopus.Read(1, 2, 7))
	})
	fmt.Println(<-replies)

	// Give replication a moment, then verify a remote replica converged.
	deadline := time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) {
		var v []byte
		runners[5].Invoke(func() { v = stores[5].Read(7) })
		if string(v) == "live!" {
			fmt.Printf("node 5 replica converged: key 7 = %q\n", v)
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	for _, r := range runners {
		r.Close()
	}
	wg.Wait()
	fmt.Println("cluster shut down")
}
