// Coordination: a distributed lock service on ZKCanopus — ZooKeeper's
// data model with Zab replaced by Canopus (paper §8.1.2). Three
// contenders race to acquire a lock with Create (create-if-absent); the
// linearizable Get that Canopus provides makes acquire-then-verify
// correct without sync() calls.
package main

import (
	"fmt"
	"time"

	"canopus"
)

func main() {
	cluster := canopus.MustCoordCluster(canopus.SimOptions{Racks: 2, NodesPerRack: 3})

	const lock = "/locks/leader"
	contenders := []canopus.NodeID{0, 2, 4}
	winners := map[canopus.NodeID]bool{}

	for _, id := range contenders {
		id := id
		me := []byte(fmt.Sprintf("node-%d", id))
		srv := cluster.Server(id)
		cluster.At(time.Millisecond, func() {
			// Try to take the lock; then verify with a linearizable read.
			srv.Create(lock, me, func(*canopus.ZNode) {
				srv.Get(lock, func(n *canopus.ZNode) {
					if n != nil && string(n.Data) == string(me) {
						winners[id] = true
						fmt.Printf("node %v acquired %s\n", id, lock)
					} else {
						holder := "nobody"
						if n != nil {
							holder = string(n.Data)
						}
						fmt.Printf("node %v lost the race (%s holds it)\n", id, holder)
					}
				})
			})
		})
	}
	cluster.RunUntil(500 * time.Millisecond)
	fmt.Printf("winners: %d (must be exactly 1)\n", len(winners))

	// The winner releases with a conditional delete; then a config watch
	// fires on the next update.
	var winner canopus.NodeID
	for id := range winners {
		winner = id
	}
	srv := cluster.Server(winner)
	cluster.At(600*time.Millisecond, func() {
		cluster.TreeOf(5).Watch("/config/limit", func(n *canopus.ZNode) {
			fmt.Printf("node 5 watch: /config/limit -> %q\n", n.Data)
		})
		srv.DeleteIfValue(lock, []byte(fmt.Sprintf("node-%d", winner)), func(*canopus.ZNode) {
			fmt.Printf("node %v released %s\n", winner, lock)
		})
		srv.Set("/config/limit", []byte("100"), nil)
	})
	cluster.RunUntil(1200 * time.Millisecond)

	if n := cluster.TreeOf(0).GetLocal(lock); n == nil {
		fmt.Println("lock is free again")
	}
}
