// Coordination: the classic lock-service workload built on
// canopus/recipes — distributed mutexes, counters, leader election and
// barriers assembled from the event plane's primitives (guarded
// transactions, ordered watches, replicated sessions). The cluster here
// is the in-process simulator in serve mode; the identical recipe code
// drives a live TCP deployment through recipes.FromClient.
package main

import (
	"context"
	"fmt"
	"sync"
	"time"

	"canopus"
	"canopus/recipes"
)

func main() {
	cluster := canopus.MustSimCluster(canopus.SimOptions{Racks: 2, NodesPerRack: 3})
	cluster.Serve()
	defer cluster.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	const (
		lockKey    = 1 // the mutex everyone contends on
		counterKey = 2 // bumped only inside the critical section
		leaderKey  = 3 // the election post
		doneKey    = 4 // the finishing barrier
	)
	nodes := []int{0, 2, 4}

	// Mutual exclusion: each contender takes the lock, bumps a
	// replicated counter in its critical section, and releases. The
	// guarded CAS admits one holder per vacancy, so no increment is
	// ever lost.
	var wg sync.WaitGroup
	for _, node := range nodes {
		b := recipes.FromCluster(cluster, node)
		wg.Add(1)
		go func() {
			defer wg.Done()
			m := recipes.NewMutex(b, lockKey)
			if err := m.Lock(ctx); err != nil {
				panic(err)
			}
			turn, err := recipes.NewCounter(b, counterKey).Add(ctx, 1)
			if err != nil {
				panic(err)
			}
			fmt.Printf("node %d took the lock (turn %d)\n", node, turn)
			if err := m.Unlock(ctx); err != nil {
				panic(err)
			}
		}()
	}
	wg.Wait()
	total, err := recipes.NewCounter(recipes.FromCluster(cluster, 5), counterKey).Value(ctx)
	if err != nil {
		panic(err)
	}
	fmt.Printf("critical-section turns: %d (must be %d)\n", total, len(nodes))

	// Leader election: alice wins the vacant post, bob campaigns and
	// blocks, and alice's resignation hands over. A crashed leader hands
	// over the same way — its ephemeral claim dies with its session.
	alice := recipes.NewElection(recipes.FromCluster(cluster, 0), leaderKey, []byte("alice"))
	bob := recipes.NewElection(recipes.FromCluster(cluster, 3), leaderKey, []byte("bob"))
	if err := alice.Campaign(ctx); err != nil {
		panic(err)
	}
	fmt.Println("alice leads")
	elected := make(chan error, 1)
	go func() { elected <- bob.Campaign(ctx) }()
	if err := alice.Resign(ctx); err != nil {
		panic(err)
	}
	if err := <-elected; err != nil {
		panic(err)
	}
	fmt.Println("alice resigned; bob leads")

	// Barrier: three parties rendezvous; nobody proceeds until the last
	// one arrives.
	done := make(chan struct{})
	for i, node := range nodes {
		bar := recipes.NewBarrier(recipes.FromCluster(cluster, node), doneKey, len(nodes))
		delay := time.Duration(i) * 10 * time.Millisecond
		go func() {
			time.Sleep(delay)
			if err := bar.Arrive(ctx); err != nil {
				panic(err)
			}
			done <- struct{}{}
		}()
	}
	for range nodes {
		<-done
	}
	fmt.Println("all parties passed the barrier")
}
