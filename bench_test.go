// Benchmarks regenerating the paper's evaluation artifacts at reduced
// scale: one benchmark per table/figure plus the DESIGN.md ablations.
// Each iteration simulates a full deployment at a representative offered
// load and reports measured throughput and median completion time as
// custom metrics (Mreq/s and median-ms). Run the cmd/canopus-bench tool
// for the full-resolution figures.
package canopus_test

import (
	"sync"
	"testing"
	"time"

	"canopus"
	"canopus/client"
	"canopus/internal/harness"
	"canopus/internal/kvstore"
	"canopus/internal/wire"
	"canopus/internal/workload"
)

// benchWindows keeps each iteration around a second of virtual time.
const (
	benchWarm    = 200 * time.Millisecond
	benchMeasure = 500 * time.Millisecond
)

func benchRun(b *testing.B, spec harness.Spec, rate float64) {
	b.Helper()
	spec.Warmup, spec.Measure = benchWarm, benchMeasure
	if spec.MultiDC {
		spec.Warmup = time.Second
	}
	var tput, medianMS float64
	for i := 0; i < b.N; i++ {
		spec.Seed = int64(i + 1)
		r := harness.Run(spec, rate)
		tput = r.Throughput
		medianMS = float64(r.Median) / float64(time.Millisecond)
	}
	b.ReportMetric(tput/1e6, "Mreq/s")
	b.ReportMetric(medianMS, "median-ms")
}

// --- Figure 4(a)/(b): single-DC scaling, 27 nodes ---

func BenchmarkFig4aCanopus20Writes(b *testing.B) {
	benchRun(b, harness.Spec{System: harness.Canopus, Groups: 3, PerGroup: 9, WriteRatio: 0.2}, 1.5e6)
}

func BenchmarkFig4aCanopus100Writes(b *testing.B) {
	benchRun(b, harness.Spec{System: harness.Canopus, Groups: 3, PerGroup: 9, WriteRatio: 1.0}, 800e3)
}

func BenchmarkFig4aEPaxos5ms(b *testing.B) {
	benchRun(b, harness.Spec{System: harness.EPaxos, Groups: 3, PerGroup: 9, WriteRatio: 0.2,
		EPaxosBatch: 5 * time.Millisecond}, 500e3)
}

func BenchmarkFig4bEPaxos2ms(b *testing.B) {
	benchRun(b, harness.Spec{System: harness.EPaxos, Groups: 3, PerGroup: 9, WriteRatio: 0.2,
		EPaxosBatch: 2 * time.Millisecond}, 400e3)
}

func BenchmarkFig4bCanopusAt70(b *testing.B) {
	// The paper's 70%-of-max operating point for completion times.
	benchRun(b, harness.Spec{System: harness.Canopus, Groups: 3, PerGroup: 9, WriteRatio: 0.2}, 1.6e6)
}

// --- Figure 5: ZooKeeper vs ZKCanopus, 27 nodes ---

func BenchmarkFig5ZooKeeper(b *testing.B) {
	benchRun(b, harness.Spec{System: harness.Zab, Groups: 3, PerGroup: 9, WriteRatio: 0.2}, 200e3)
}

func BenchmarkFig5ZKCanopus(b *testing.B) {
	benchRun(b, harness.Spec{System: harness.ZKCanopus, Groups: 3, PerGroup: 9, WriteRatio: 0.2}, 1e6)
}

// --- Figure 6: multi-DC (Table 1 latencies) ---

func BenchmarkFig6Canopus3DC(b *testing.B) {
	benchRun(b, harness.Spec{System: harness.Canopus, MultiDC: true, Groups: 3, PerGroup: 3, WriteRatio: 0.2}, 1.2e6)
}

func BenchmarkFig6EPaxos3DC(b *testing.B) {
	benchRun(b, harness.Spec{System: harness.EPaxos, MultiDC: true, Groups: 3, PerGroup: 3, WriteRatio: 0.2}, 500e3)
}

func BenchmarkFig6Canopus7DC(b *testing.B) {
	benchRun(b, harness.Spec{System: harness.Canopus, MultiDC: true, Groups: 7, PerGroup: 3, WriteRatio: 0.2}, 1.5e6)
}

// --- Figure 7: write-ratio sweep, 3 DCs ---

func BenchmarkFig7Canopus1Write(b *testing.B) {
	benchRun(b, harness.Spec{System: harness.Canopus, MultiDC: true, Groups: 3, PerGroup: 3, WriteRatio: 0.01}, 1.5e6)
}

func BenchmarkFig7Canopus50Writes(b *testing.B) {
	benchRun(b, harness.Spec{System: harness.Canopus, MultiDC: true, Groups: 3, PerGroup: 3, WriteRatio: 0.5}, 800e3)
}

// --- Ablations (DESIGN.md §5) ---

// BenchmarkAblationPipelining contrasts §7.1 pipelining off (1 in-flight
// cycle, one commit per ~max-RTT) against the default WAN pipeline at a
// load the unpipelined deployment cannot absorb: watch median-ms
// diverge while the pipelined run holds steady.
func BenchmarkAblationPipeliningOff(b *testing.B) {
	benchRun(b, harness.Spec{System: harness.Canopus, MultiDC: true, Groups: 3, PerGroup: 3,
		WriteRatio: 0.2, MaxInFlight: 1}, 600e3)
}

func BenchmarkAblationPipeliningOn(b *testing.B) {
	benchRun(b, harness.Spec{System: harness.Canopus, MultiDC: true, Groups: 3, PerGroup: 3,
		WriteRatio: 0.2}, 600e3)
}

// BenchmarkAblationFlatBroadcast removes the LOT: all 27 nodes in one
// super-leaf, i.e. topology-oblivious all-to-all reliable broadcast.
func BenchmarkAblationFlatBroadcast(b *testing.B) {
	benchRun(b, harness.Spec{System: harness.CanopusFlat, Groups: 3, PerGroup: 9, WriteRatio: 0.2}, 500e3)
}

func BenchmarkAblationTreeCanopus(b *testing.B) {
	benchRun(b, harness.Spec{System: harness.Canopus, Groups: 3, PerGroup: 9, WriteRatio: 0.2}, 500e3)
}

// BenchmarkAblationRepresentatives varies the super-leaf representative
// count (§4.5).
func BenchmarkAblationRepresentatives1(b *testing.B) {
	benchRun(b, harness.Spec{System: harness.Canopus, Groups: 3, PerGroup: 9, WriteRatio: 0.2, NumReps: 1}, 1e6)
}

func BenchmarkAblationRepresentatives3(b *testing.B) {
	benchRun(b, harness.Spec{System: harness.Canopus, Groups: 3, PerGroup: 9, WriteRatio: 0.2, NumReps: 3}, 1e6)
}

// BenchmarkAblationHardwareBroadcast swaps the Raft reliable broadcast
// for switch-assisted atomic broadcast (§4.3).
func BenchmarkAblationHardwareBroadcast(b *testing.B) {
	benchRun(b, harness.Spec{System: harness.Canopus, Groups: 3, PerGroup: 9, WriteRatio: 0.2,
		SwitchBcast: true}, 1e6)
}

// BenchmarkAblationWriteLeases measures the §7.2 read path: explicit
// requests against a small cluster, read-mostly on unleased keys, which
// answer locally without a consensus-cycle delay.
func BenchmarkAblationWriteLeases(b *testing.B) {
	for i := 0; i < b.N; i++ {
		c := canopus.MustSimCluster(canopus.SimOptions{
			Racks: 2, NodesPerRack: 3, Seed: int64(i + 1),
			Node: canopus.Config{WriteLeases: true},
		})
		var replies int
		c.OnReply(0, func(*canopus.Request, []byte) { replies++ })
		for s := 0; s < 200; s++ {
			seq := uint64(s + 1)
			c.At(time.Duration(s+1)*time.Millisecond, func() {
				c.SubmitRequest(0, canopus.Read(1, seq, seq%16+1000))
			})
		}
		c.RunUntil(time.Second)
		if replies != 200 {
			b.Fatalf("replies = %d", replies)
		}
	}
}

// BenchmarkAblationTreeHeight compares LOT heights at 27 nodes: 9
// super-leaves of 3 with fanout 3 gives height 3 (one extra round)
// versus the flat height-2 arrangement of 3 super-leaves of 9.
func BenchmarkAblationTreeHeight3(b *testing.B) {
	benchRun(b, harness.Spec{System: harness.Canopus, Groups: 9, PerGroup: 3, WriteRatio: 0.2}, 1e6)
}

func BenchmarkAblationTreeHeight2(b *testing.B) {
	benchRun(b, harness.Spec{System: harness.Canopus, Groups: 3, PerGroup: 9, WriteRatio: 0.2}, 1e6)
}

// BenchmarkCodec measures the wire codec itself: encode+decode of a
// realistic 100-write proposal.
func BenchmarkCodec(b *testing.B) {
	reqs := make([]canopus.Request, 100)
	for i := range reqs {
		reqs[i] = canopus.Write(uint64(i%10), uint64(i), uint64(i), []byte("12345678"))
	}
	msg := &wire.Proposal{
		Cycle: 7, Round: 1, Origin: 1, Num: 42,
		Batches: []*canopus.Batch{{Origin: 1, Reqs: reqs, NumWrite: 100}},
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf := msg.AppendTo(nil)
		if _, _, err := wire.Decode(buf); err != nil {
			b.Fatal(err)
		}
		b.SetBytes(int64(len(buf)))
	}
}

// --- Commit pipeline: per-cycle bulk apply ---

// BenchmarkCommitApply measures the apply stage of one large committed
// cycle in isolation: a fixed batch of writes bulk-applied to the
// replica store, serial (single shard, one goroutine — the historical
// in-turn commit) versus sharded (the parallel commit executor's
// partition: W workers, each walking the total order and applying only
// its shards). Mreq/s is writes applied per second; the absolute number
// is host-dependent, but its drift on one host tracks the apply path's
// cost, which is why the benchdiff gate watches it.
func BenchmarkCommitApply(b *testing.B) {
	const cycleOps = 65536
	reqs := make([]wire.Request, cycleOps)
	for i := range reqs {
		reqs[i] = wire.Request{Op: wire.OpWrite, Key: uint64(i*2654435761) % 65536, Val: []byte("12345678")}
	}
	apply := func(st *canopus.Store, workers, w int) {
		for i := range reqs {
			if workers > 0 && st.ShardOf(reqs[i].Key)%workers != w {
				continue
			}
			st.ApplyWrite(&reqs[i])
		}
	}
	// Each iteration applies the cycle several times so the CI gate's
	// single-iteration run (-benchtime=1x) measures tens of
	// milliseconds, not one noisy map walk.
	const cyclesPerIter = 8
	run := func(b *testing.B, shards, workers int) {
		st := kvstore.NewSharded(shards)
		apply(st, 0, 0) // warm: build the maps once so 1x CI runs measure steady state
		b.ResetTimer()
		for n := 0; n < b.N; n++ {
			for c := 0; c < cyclesPerIter; c++ {
				if workers <= 1 {
					apply(st, 0, 0)
					continue
				}
				var wg sync.WaitGroup
				wg.Add(workers)
				for w := 0; w < workers; w++ {
					go func(w int) {
						defer wg.Done()
						apply(st, workers, w)
					}(w)
				}
				wg.Wait()
			}
		}
		b.ReportMetric(float64(cycleOps*cyclesPerIter)*float64(b.N)/b.Elapsed().Seconds()/1e6, "Mreq/s")
	}
	b.Run("serial", func(b *testing.B) { run(b, 1, 1) })
	b.Run("sharded-8x4", func(b *testing.B) { run(b, 8, 4) })
}

// --- Client API round trip ---

// BenchmarkClientRoundTrip measures the public canopus/client package
// end to end against a live loopback cluster: protocol v2 over real
// sockets, through consensus, back through the reply fan-out — the
// paper's client interaction layer as applications see it. The numbers
// are wall-clock but cycle-paced (the 2ms CycleInterval dominates the
// latency), so throughput and MEAN latency are stable enough for the
// benchdiff drift gate (the median is bimodal across cycle-phase bucket
// boundaries and is deliberately not reported);
// BENCH_baseline.json carries the committed values.
func BenchmarkClientRoundTrip(b *testing.B) {
	var tput, meanMS float64
	for i := 0; i < b.N; i++ {
		cluster, err := canopus.StartLiveCluster(canopus.LiveOptions{
			Nodes: 3,
			Node: canopus.Config{
				CycleInterval: 2 * time.Millisecond,
				TickInterval:  2 * time.Millisecond,
				MaxBatch:      4096,
			},
			Seed: int64(i + 1),
		})
		if err != nil {
			b.Fatal(err)
		}
		clients := make([]*client.Client, cluster.NumNodes())
		conns := make([]workload.Doer, cluster.NumNodes())
		for j := range conns {
			cl, err := client.New(client.Config{Endpoints: []string{cluster.Endpoint(j)}})
			if err != nil {
				b.Fatal(err)
			}
			clients[j] = cl
			conns[j] = harness.ClientDoer{Client: cl}
		}
		res := workload.RunLive(workload.LiveConfig{
			Concurrency: 32,
			Duration:    700 * time.Millisecond,
			Warmup:      200 * time.Millisecond,
			WriteRatio:  0.2,
			Seed:        int64(i + 1),
		}, conns)
		if res.Completed != res.Offered || res.Failed != 0 {
			b.Fatalf("lost replies: offered %d, completed %d, failed %d",
				res.Offered, res.Completed, res.Failed)
		}
		tput = res.Throughput()
		meanMS = float64(res.All().Mean()) / float64(time.Millisecond)
		for _, cl := range clients {
			cl.Close()
		}
		cluster.Close()
	}
	b.ReportMetric(tput/1e6, "Mreq/s")
	b.ReportMetric(meanMS, "mean-ms")
}
