// Package client is the public Canopus client: a typed, context-aware
// key-value API over the binary client protocol v3, with per-request
// read-consistency levels, multi-op transactions (Txn), ordered change
// watches (Watch), and automatic failover across cluster endpoints.
//
// A Client connects to one endpoint at a time (every Canopus replica
// holds the full state, so any node serves any request) and pipelines
// all traffic over that connection. When the connection breaks — or the
// serving node reports that it is draining or stalled — the client
// transparently redials the next endpoint and retries each affected
// in-flight operation exactly once; an operation that fails twice
// surfaces the error.
//
// Mutations are exactly-once end to end. The client registers a
// replicated session on first mutation (one consensus round-trip,
// amortized over the client's lifetime) and stamps every Put/Delete with
// a per-session sequence number; each replica's state machine keeps a
// per-session dedup table, so a retry of an operation that had already
// committed — the reply lost in a crash window — returns the cached
// committed result instead of applying twice, on any endpoint. Reads
// are idempotent and carry no session state. A session with no
// committed mutation for the cluster's configured idle bound is
// reclaimed through consensus; a failover-retried mutation that
// straddles the expiry fails with ErrSessionExpired (never a silent
// re-apply), after which the client transparently registers a fresh
// session for subsequent mutations. Call EndSession to release the
// replicated state eagerly.
//
// Synchronous calls take a context:
//
//	cl, err := client.New(client.Config{Endpoints: addrs})
//	err = cl.Put(ctx, 7, []byte("hello"))
//	val, err := cl.Get(ctx, 7)                                // linearizable
//	val, err = cl.Get(ctx, 7, client.WithConsistency(client.Stale)) // local replica state
//
// Asynchronous calls return a Future:
//
//	f := cl.PutAsync(7, []byte("hello"))
//	// ... other work ...
//	res, err := f.Wait(ctx)
//
// Consistency levels (see wire.Consistency): Linearizable reads order
// through a consensus cycle and observe every write committed anywhere
// before they were issued. Sequential reads are served from the
// contacted replica's committed state once it has caught up to the
// client's last observed commit cycle — monotonic within the client
// session, including across failovers — without starting a consensus
// cycle. Stale reads are served immediately from whatever the replica
// has committed. Writes and deletes always order through consensus.
package client

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"canopus/internal/wire"
)

// Consistency is a per-request read-consistency level.
type Consistency = wire.Consistency

// Re-exported consistency levels.
const (
	// Linearizable routes the read through a consensus cycle.
	Linearizable = wire.Linearizable
	// Sequential reads the local replica's committed state, monotone
	// within this client's session.
	Sequential = wire.Sequential
	// Stale reads the local replica's committed state immediately.
	Stale = wire.Stale
)

// Kind is an operation kind.
type Kind = wire.Op

// Operation kinds.
const (
	OpGet    = wire.OpRead
	OpPut    = wire.OpWrite
	OpDelete = wire.OpDelete
)

// Typed errors. Errors returned by the Client wrap one of these (use
// errors.Is).
var (
	// ErrNotFound reports a read of an absent key.
	ErrNotFound = errors.New("canopus/client: key not found")
	// ErrTimeout reports a context deadline or the configured
	// RequestTimeout expiring before the reply arrived. The operation
	// may still commit server-side.
	ErrTimeout = errors.New("canopus/client: request timed out")
	// ErrClusterDown reports that no configured endpoint accepted a
	// connection.
	ErrClusterDown = errors.New("canopus/client: cluster unreachable")
	// ErrRejected reports a request the server refused (malformed, or
	// rejected twice during failover).
	ErrRejected = errors.New("canopus/client: request rejected")
	// ErrClosed reports use of a closed client.
	ErrClosed = errors.New("canopus/client: client closed")
	// ErrSessionExpired reports a mutation that straddled the expiry of
	// its replicated session (idle bound, or EndSession) after already
	// being retried once across a failover. The final submission was NOT
	// applied, but whether the earlier one committed before the expiry
	// is unknowable — the dedup state that could tell is gone — so the
	// client refuses to re-issue it; callers decide (re-issue if
	// idempotent at the application level). A mutation that was never
	// failover-retried is re-issued under a fresh session automatically
	// and does not see this error. Later mutations transparently run
	// under a fresh session either way.
	ErrSessionExpired = errors.New("canopus/client: session expired")
	// ErrWatchOverflow reports a watch that could not stay gap-free: its
	// resume point aged out of the server's event history, or the
	// consumer fell too far behind (server push budget or the local
	// channel) and was dropped. The watch is dead; the only correct
	// recovery is to re-read current state and start a fresh watch.
	ErrWatchOverflow = errors.New("canopus/client: watch overflowed")
)

// Op is one keyed operation.
type Op struct {
	Kind Kind
	Key  uint64
	Val  []byte // payload for OpPut; ignored otherwise

	// Consistency selects the read path (reads only; mutations always
	// order through consensus). Zero value is Linearizable.
	Consistency Consistency
	// MinCycle, when non-zero, is an explicit lower bound on the commit
	// cycle whose state may serve a non-linearizable read; Sequential
	// reads additionally bound it by the session's last observed cycle.
	MinCycle uint64
}

// Result is one completed operation.
type Result struct {
	// Val is the read value (nil for mutations and misses).
	Val []byte
	// Found reports a read hit; true for completed mutations.
	Found bool
	// Cycle is the consensus commit cycle that served the operation —
	// the read timestamp for non-linearizable reads.
	Cycle uint64
	// Err is the per-operation error inside a Batch result slice (nil
	// on success). Single-operation calls return errors directly.
	Err error

	// batch carries a batch frame's positional results (see Batch).
	batch []Result
}

// Config parameterizes a Client.
type Config struct {
	// Endpoints are the cluster's client-port addresses. The client
	// connects to one at a time and fails over along the list.
	Endpoints []string
	// DialTimeout bounds one connection attempt (default 5s).
	DialTimeout time.Duration
	// RequestTimeout bounds synchronous calls and Future.Wait when the
	// caller's context carries no deadline (default 30s; 0 keeps the
	// default, negative disables).
	RequestTimeout time.Duration
	// RetryBackoff is the base delay before re-dialing after a FULL
	// endpoint scan failed (default 10ms). Consecutive failed scans
	// double the delay up to RetryBackoffMax, with uniform jitter in
	// [delay/2, delay) so a fleet of clients does not re-dial a
	// recovering cluster in lockstep. A successful dial resets the
	// streak; a failover that finds a live endpoint never waits.
	RetryBackoff time.Duration
	// RetryBackoffMax caps the exponential re-dial delay (default 1s).
	RetryBackoffMax time.Duration
}

func (c *Config) fill() error {
	if len(c.Endpoints) == 0 {
		return errors.New("canopus/client: Config.Endpoints required")
	}
	if c.DialTimeout <= 0 {
		c.DialTimeout = 5 * time.Second
	}
	if c.RequestTimeout == 0 {
		c.RequestTimeout = 30 * time.Second
	} else if c.RequestTimeout < 0 {
		c.RequestTimeout = 0
	}
	if c.RetryBackoff <= 0 {
		c.RetryBackoff = 10 * time.Millisecond
	}
	if c.RetryBackoffMax <= 0 {
		c.RetryBackoffMax = time.Second
	}
	if c.RetryBackoffMax < c.RetryBackoff {
		c.RetryBackoffMax = c.RetryBackoff
	}
	return nil
}

// Stats counts client-side recovery events.
type Stats struct {
	// Failovers is the number of connection switches after a failure.
	Failovers uint64
	// Retries is the number of individual operations re-sent to another
	// endpoint (each operation is retried at most once).
	Retries uint64
}

// Client is a Canopus cluster client. It is safe for concurrent use;
// all operations share one pipelined connection.
type Client struct {
	cfg Config

	mu        sync.Mutex
	conn      *conn
	next      int // endpoint cursor
	closed    bool
	dialing   bool          // a dial is in flight (single-flight)
	dialDone  chan struct{} // closed when the in-flight dial finishes
	dialFails int           // consecutive full-scan dial failures (backoff exponent)
	old       []*conn       // retired connections still draining replies

	lastCycle atomic.Uint64 // highest commit cycle observed (session clock)
	failovers atomic.Uint64
	retries   atomic.Uint64

	// Replicated-session state: session is the committed session ID (0 =
	// none yet), seqCtr the per-session mutation sequence counter. regMu
	// guards the registration single-flight and its parked mutations.
	session atomic.Uint64
	seqCtr  atomic.Uint64
	regMu   sync.Mutex
	regWait []*pendingOp
	regBusy bool

	// Watch registry: client-assigned watch ID -> live watch. EVENT
	// frames dispatch through it; connection failures re-register every
	// affected watch from its resume point.
	watchMu  sync.Mutex
	watches  map[uint64]*Watch
	watchCtr uint64
}

// New validates cfg and returns a Client. Connections are established
// lazily on first use; a cluster that is down surfaces as ErrClusterDown
// from the operations, not from New.
func New(cfg Config) (*Client, error) {
	if err := cfg.fill(); err != nil {
		return nil, err
	}
	return &Client{cfg: cfg}, nil
}

// Close tears the client down; in-flight operations fail with ErrClosed.
func (c *Client) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	cn := c.conn
	c.conn = nil
	old := c.old
	c.old = nil
	c.mu.Unlock()
	if cn != nil {
		cn.fail(ErrClosed)
	}
	for _, o := range old {
		o.fail(ErrClosed)
	}
	c.watchMu.Lock()
	ws := make([]*Watch, 0, len(c.watches))
	for _, w := range c.watches {
		ws = append(ws, w)
	}
	c.watchMu.Unlock()
	for _, w := range ws {
		c.failWatch(w, ErrClosed)
	}
	return nil
}

// Stats returns the client's recovery counters.
func (c *Client) Stats() Stats {
	return Stats{Failovers: c.failovers.Load(), Retries: c.retries.Load()}
}

// LastCycle returns the highest consensus commit cycle this client has
// observed — the session's read timestamp. A Sequential read handed this
// value (or issued through the same client) observes at least that
// state on any replica.
func (c *Client) LastCycle() uint64 { return c.lastCycle.Load() }

// SessionID returns the client's replicated session ID, or 0 when no
// session is registered yet (no mutation has been issued, or the last
// session expired and no mutation has re-registered one).
func (c *Client) SessionID() uint64 { return c.session.Load() }

// EndSession expires the client's replicated session through a
// consensus cycle, releasing its dedup state on every replica, and
// waits for the expiry to commit. In-flight mutations of the old
// session may fail with ErrSessionExpired; later mutations register a
// fresh session automatically. A client with no session returns nil
// immediately.
func (c *Client) EndSession(ctx context.Context) error {
	sess := c.session.Swap(0)
	if sess == 0 {
		return nil
	}
	f := newFuture(c.cfg.RequestTimeout)
	c.start(&pendingOp{expire: true, session: sess, fn: f.complete})
	_, err := f.Wait(ctx)
	return err
}

// EnsureSession returns the client's replicated session ID, registering
// one through consensus first if none exists. Coordination recipes use
// it to learn the identity that owns their ephemeral keys before the
// first mutation would have registered it implicitly.
func (c *Client) EnsureSession(ctx context.Context) (uint64, error) {
	for {
		if sess := c.session.Load(); sess != 0 {
			return sess, nil
		}
		f := newFuture(c.cfg.RequestTimeout)
		if !c.parkForSession(&pendingOp{ensure: true, fn: f.complete}) {
			continue // a session appeared concurrently; re-read it
		}
		if _, err := f.Wait(ctx); err != nil {
			return 0, err
		}
	}
}

// Option tweaks one operation built by the sync/async helpers.
type Option func(*Op)

// WithConsistency selects the read-consistency level.
func WithConsistency(l Consistency) Option { return func(o *Op) { o.Consistency = l } }

// WithMinCycle sets an explicit minimum commit cycle for a
// non-linearizable read.
func WithMinCycle(cycle uint64) Option { return func(o *Op) { o.MinCycle = cycle } }

// Get reads key. ErrNotFound reports an absent key. Reads are
// linearizable unless WithConsistency picks a weaker level.
func (c *Client) Get(ctx context.Context, key uint64, opts ...Option) ([]byte, error) {
	res, err := c.Do(ctx, buildOp(OpGet, key, nil, opts))
	if err != nil {
		return nil, err
	}
	if !res.Found {
		return nil, fmt.Errorf("%w: key %d", ErrNotFound, key)
	}
	return res.Val, nil
}

// Put writes key = val and waits for the committed acknowledgement.
func (c *Client) Put(ctx context.Context, key uint64, val []byte) error {
	_, err := c.Do(ctx, Op{Kind: OpPut, Key: key, Val: val})
	return err
}

// Delete removes key (a no-op if absent) and waits for the committed
// acknowledgement.
func (c *Client) Delete(ctx context.Context, key uint64) error {
	_, err := c.Do(ctx, Op{Kind: OpDelete, Key: key})
	return err
}

// Do executes one operation and waits for its result.
func (c *Client) Do(ctx context.Context, op Op) (Result, error) {
	return c.DoAsync(op).Wait(ctx)
}

// GetAsync issues a read and returns its Future.
func (c *Client) GetAsync(key uint64, opts ...Option) *Future {
	return c.DoAsync(buildOp(OpGet, key, nil, opts))
}

// PutAsync issues a write and returns its Future.
func (c *Client) PutAsync(key uint64, val []byte) *Future {
	return c.DoAsync(Op{Kind: OpPut, Key: key, Val: val})
}

// DeleteAsync issues a delete and returns its Future.
func (c *Client) DeleteAsync(key uint64) *Future {
	return c.DoAsync(Op{Kind: OpDelete, Key: key})
}

// DoAsync issues one operation and returns its Future.
func (c *Client) DoAsync(op Op) *Future {
	f := newFuture(c.cfg.RequestTimeout)
	c.Async(op, f.complete)
	return f
}

// Batch executes ops as one multi-op frame — submitted to the serving
// node in a single machine turn — and waits for all results. The
// returned slice is positional; per-operation failures are reported in
// Result.Err, a frame-level failure in the returned error. Reads inside
// a batch follow the batch's first read consistency level; they do not
// observe the batch's own mutations unless Linearizable.
func (c *Client) Batch(ctx context.Context, ops []Op) ([]Result, error) {
	f := c.BatchAsync(ops)
	res, err := f.Wait(ctx)
	if err != nil {
		return nil, err
	}
	return res.batch, nil
}

// BatchAsync issues ops as one multi-op frame and returns its Future;
// Wait's Result carries no value — collect the per-op results with
// (*Future).Batch. A batch is bounded (wire.MaxBatchOps) and its reads
// must share one consistency level — the level travels per frame, so a
// mix would silently downgrade the stricter reads.
func (c *Client) BatchAsync(ops []Op) *Future {
	f := newFuture(c.cfg.RequestTimeout)
	if len(ops) == 0 {
		f.complete(Result{}, nil)
		return f
	}
	if len(ops) > wire.MaxBatchOps {
		f.complete(Result{}, fmt.Errorf("%w: batch of %d ops exceeds the %d-op frame limit",
			ErrRejected, len(ops), wire.MaxBatchOps))
		return f
	}
	var level Consistency
	seenRead := false
	for i := range ops {
		if ops[i].Kind != OpGet {
			continue
		}
		if !seenRead {
			level, seenRead = ops[i].Consistency, true
			continue
		}
		if ops[i].Consistency != level {
			f.complete(Result{}, fmt.Errorf("%w: batch mixes read consistency levels (%v and %v)",
				ErrRejected, level, ops[i].Consistency))
			return f
		}
	}
	c.asyncBatch(ops, f)
	return f
}

func buildOp(kind Kind, key uint64, val []byte, opts []Option) Op {
	op := Op{Kind: kind, Key: key, Val: val}
	for _, fn := range opts {
		fn(&op)
	}
	return op
}

// Async is the low-level asynchronous primitive: it issues op and
// invokes fn exactly once when the result (or a terminal error) is
// known. fn runs on the client's reader goroutine — or synchronously,
// when the operation cannot be issued — and must not block.
func (c *Client) Async(op Op, fn func(Result, error)) {
	c.start(&pendingOp{op: op, fn: fn})
}

// AsyncOk issues op and invokes done exactly once with whether it
// succeeded — the allocation-lean shape load generators want: passing a
// long-lived done callback costs one pendingOp per operation and zero
// adapter closures. done follows the Async callback contract (reader
// goroutine or synchronous; must not block).
func (c *Client) AsyncOk(op Op, done func(ok bool)) {
	c.start(&pendingOp{op: op, okFn: done})
}

func (c *Client) asyncBatch(ops []Op, f *Future) {
	c.start(&pendingOp{op: ops[0], batch: ops, fn: f.complete})
}

// start places p on the current connection, dialing one as needed. It
// is also the retry path: a pendingOp whose connection failed re-enters
// here once. Dials are single-flighted and run with no lock held, so a
// slow endpoint never blocks traffic already flowing on a live
// connection. It returns the terminal error delivered to p (already
// passed to p.fn), or nil once p is enqueued — callers re-issuing many
// operations use it to short-circuit a dead cluster instead of paying a
// full dial scan per operation.
//
// Mutations are bound to the replicated session here, exactly once per
// operation (retries keep their original (session, seq) — that identity
// is what the server-side dedup recognizes). The first mutation parks
// while a session registration round-trips through consensus.
func (c *Client) start(p *pendingOp) error {
	if p.ensure {
		// EnsureSession sentinel: it only ever parks behind the session
		// registration; once restarted (the session exists) it completes
		// without touching the wire.
		p.complete(Result{}, nil)
		return nil
	}
	if p.session == 0 && p.needsSession() {
		// Loop until bound or parked: parkForSession refusing (a session
		// exists under its lock) and the session expiring again can
		// interleave, and an unbound mutation must never reach the wire
		// — it would carry no dedup identity.
		for {
			if sess := c.session.Load(); sess != 0 {
				c.bindSession(p, sess)
				break
			}
			if c.parkForSession(p) {
				return nil // resumes via onRegistered
			}
		}
	}
	for {
		c.mu.Lock()
		if c.closed {
			c.mu.Unlock()
			p.complete(Result{}, ErrClosed)
			return ErrClosed
		}
		if cn := c.conn; cn != nil {
			c.mu.Unlock()
			if cn.enqueue(p) {
				return nil
			}
			// The connection failed between selection and enqueue; its
			// failure handler owns its pending set. Detach it if the
			// handler has not yet, and try again on a fresh one.
			c.mu.Lock()
			if c.conn == cn {
				c.conn = nil
			}
			c.mu.Unlock()
			continue
		}
		if c.dialing {
			wait := c.dialDone
			c.mu.Unlock()
			<-wait
			continue
		}
		c.dialing = true
		c.dialDone = make(chan struct{})
		c.mu.Unlock()

		cn, err := c.dial()

		c.mu.Lock()
		c.dialing = false
		close(c.dialDone)
		if err != nil {
			c.mu.Unlock()
			p.complete(Result{}, err)
			return err
		}
		if c.closed {
			c.mu.Unlock()
			cn.fail(ErrClosed)
			p.complete(Result{}, ErrClosed)
			return ErrClosed
		}
		c.conn = cn
		c.mu.Unlock()
	}
}

// parkForSession queues a mutation behind the session registration,
// starting the (single-flight) registration if none is running. It
// reports false when a session appeared concurrently — the caller binds
// and proceeds.
func (c *Client) parkForSession(p *pendingOp) bool {
	c.regMu.Lock()
	if c.session.Load() != 0 {
		c.regMu.Unlock()
		return false
	}
	c.regWait = append(c.regWait, p)
	launch := !c.regBusy
	c.regBusy = true
	c.regMu.Unlock()
	if launch {
		go c.start(&pendingOp{register: true, fn: c.onRegistered})
	}
	return true
}

// bindSession stamps p with its session identity: the session ID and a
// fresh per-session sequence number per mutating op (a batch consumes a
// contiguous block, in frame order, mirroring the server). The binding
// is permanent — failover retries re-send the same identity.
func (c *Client) bindSession(p *pendingOp, sess uint64) {
	p.session = sess
	if p.batch != nil {
		muts := uint64(0)
		for i := range p.batch {
			if p.batch[i].Kind.Mutates() {
				muts++
			}
		}
		p.seq = c.seqCtr.Add(muts) - muts + 1
		return
	}
	p.seq = c.seqCtr.Add(1)
}

// onRegistered completes the session registration round-trip: parse the
// committed session ID, publish it, and release the parked mutations.
// Runs on a connection's reader goroutine (or synchronously on a
// terminal error), so the parked operations restart on their own
// goroutine — start may need to dial.
func (c *Client) onRegistered(res Result, err error) {
	if err == nil {
		if len(res.Val) == 8 {
			// Reset the seq counter BEFORE publishing the session: every
			// binding against the new session must draw from the fresh
			// counter, or a seq could repeat within one session.
			c.seqCtr.Store(0)
			c.session.Store(binary.LittleEndian.Uint64(res.Val))
		} else {
			err = fmt.Errorf("%w: malformed session registration reply", ErrRejected)
		}
	}
	c.regMu.Lock()
	waiting := c.regWait
	c.regWait = nil
	c.regBusy = false
	c.regMu.Unlock()
	if err != nil {
		for _, p := range waiting {
			p.complete(Result{}, err)
		}
		return
	}
	if len(waiting) > 0 {
		go func() {
			for _, p := range waiting {
				c.start(p)
			}
		}()
	}
}

// sessionExpired retires a session the server reported reclaimed; the
// next mutation registers a fresh one.
func (c *Client) sessionExpired(sess uint64) {
	if sess != 0 {
		c.session.CompareAndSwap(sess, 0)
	}
}

// dial tries every endpoint once, starting at the cursor, and returns a
// running connection. Runs with no lock held. After a scan in which
// EVERY endpoint refused, the next dial waits a capped, jittered
// exponential backoff first (see Config.RetryBackoff) — a failover that
// still finds a live endpoint pays nothing.
func (c *Client) dial() (*conn, error) {
	c.mu.Lock()
	start := c.next
	fails := c.dialFails
	c.mu.Unlock()
	if d := c.retryDelay(fails); d > 0 {
		time.Sleep(d)
	}
	var lastErr error
	for i := 0; i < len(c.cfg.Endpoints); i++ {
		idx := (start + i) % len(c.cfg.Endpoints)
		cn, err := dialConn(c, c.cfg.Endpoints[idx], c.cfg.DialTimeout)
		if err != nil {
			lastErr = err
			continue
		}
		c.mu.Lock()
		c.next = idx
		c.dialFails = 0
		c.mu.Unlock()
		return cn, nil
	}
	c.mu.Lock()
	c.dialFails++
	c.mu.Unlock()
	return nil, fmt.Errorf("%w: %v", ErrClusterDown, lastErr)
}

// retryDelay maps a consecutive-failure count to the pre-scan wait:
// base·2^(fails-1) capped at RetryBackoffMax, jittered uniformly into
// [delay/2, delay).
func (c *Client) retryDelay(fails int) time.Duration {
	if fails <= 0 {
		return 0
	}
	d := c.cfg.RetryBackoff
	for i := 1; i < fails && d < c.cfg.RetryBackoffMax; i++ {
		d *= 2
	}
	if d > c.cfg.RetryBackoffMax {
		d = c.cfg.RetryBackoffMax
	}
	half := d / 2
	return half + time.Duration(rand.Int63n(int64(half)+1))
}

// observeCycle folds a response's commit cycle into the session clock.
func (c *Client) observeCycle(cycle uint64) {
	for {
		old := c.lastCycle.Load()
		if cycle <= old || c.lastCycle.CompareAndSwap(old, cycle) {
			return
		}
	}
}

// onConnFailure retires a dead connection and re-issues its pending
// operations on the next endpoint — each exactly once. Operations that
// already failed over once, and everything when the client is closed,
// complete with the connection error.
func (c *Client) onConnFailure(cn *conn, pend []*pendingOp, cause error) {
	c.mu.Lock()
	wasCurrent := c.conn == cn
	if wasCurrent {
		c.conn = nil
		c.next = (c.next + 1) % len(c.cfg.Endpoints)
	}
	c.dropOldLocked(cn)
	closed := c.closed
	c.mu.Unlock()
	if wasCurrent && !closed && !errors.Is(cause, ErrClosed) {
		c.failovers.Add(1)
	}
	// down, once set, short-circuits the remaining retries: the first
	// failed re-issue already scanned every endpoint, so repeating the
	// scan (and its dial timeouts) once per pending op would only delay
	// the inevitable for the whole pipeline.
	var down error
	for _, p := range pend {
		if closed || errors.Is(cause, ErrClosed) || p.retried {
			p.complete(Result{}, connError(cause))
			continue
		}
		if down != nil {
			p.complete(Result{}, down)
			continue
		}
		p.retried = true
		c.retries.Add(1)
		if err := c.start(p); errors.Is(err, ErrClusterDown) {
			down = err
		}
	}
}

// dropOld forgets a connection that no longer needs tracking (it fully
// drained or died).
func (c *Client) dropOld(cn *conn) {
	c.mu.Lock()
	c.dropOldLocked(cn)
	c.mu.Unlock()
}

// dropOldLocked forgets a connection that no longer needs tracking.
// Called with c.mu held.
func (c *Client) dropOldLocked(cn *conn) {
	for i, o := range c.old {
		if o == cn {
			c.old = append(c.old[:i], c.old[i+1:]...)
			return
		}
	}
}

// retryElsewhere handles a retryable server rejection (draining or
// stalled): point the client at the next endpoint for new traffic and
// re-issue just this operation there, once. In-flight neighbours on the
// old connection are NOT disturbed — it is retired, keeps delivering
// the replies the server already accepted, and is closed once the last
// one drains. The retry itself runs on its own goroutine so the
// retired connection's reader is never blocked behind a dial.
func (c *Client) retryElsewhere(cn *conn, p *pendingOp, cause error) {
	c.mu.Lock()
	retiredNow := c.conn == cn
	if retiredNow {
		c.conn = nil
		c.next = (c.next + 1) % len(c.cfg.Endpoints)
		c.old = append(c.old, cn)
	}
	closed := c.closed
	c.mu.Unlock()
	cn.retire()
	if retiredNow && !closed {
		c.failovers.Add(1)
	}
	if closed || p.retried {
		p.complete(Result{}, cause)
		return
	}
	p.retried = true
	c.retries.Add(1)
	go c.start(p)
}

func connError(cause error) error {
	if errors.Is(cause, ErrClosed) || errors.Is(cause, ErrClusterDown) {
		return cause
	}
	return fmt.Errorf("%w: connection failed: %v", ErrClusterDown, cause)
}
