package client

import (
	"context"
	"fmt"

	"canopus/internal/wire"
)

// Txn is a guarded atomic multi-op transaction, built fluently:
//
//	res, err := cl.Txn(ctx, client.NewTxn().
//		IfAbsent(lockKey).
//		PutEphemeral(lockKey, me))
//
// All guards are evaluated against the committed state of one consensus
// cycle; if every guard passes, all ops apply atomically in that cycle
// (Committed), otherwise nothing applies and FailedGuard reports the
// first guard that did not hold. Because every Canopus replica commits
// cycles in the same total order, the verdict is identical everywhere.
//
// A Txn must not be mutated after it has been submitted: a failover
// retry re-encodes it from the same builder.
type Txn struct {
	guards []wire.TxnGuard
	ops    []wire.TxnOp
}

// NewTxn returns an empty transaction builder.
func NewTxn() *Txn { return &Txn{} }

// IfValueEq guards on key's current value being byte-equal to val.
// A nil val means "key is absent" (use IfAbsent for clarity).
func (t *Txn) IfValueEq(key uint64, val []byte) *Txn {
	t.guards = append(t.guards, wire.TxnGuard{Kind: wire.GuardValueEq, Key: key, Val: val})
	return t
}

// IfAbsent guards on key not existing.
func (t *Txn) IfAbsent(key uint64) *Txn {
	t.guards = append(t.guards, wire.TxnGuard{Kind: wire.GuardValueEq, Key: key})
	return t
}

// IfCycleLE guards on key's last-modified commit cycle being at most
// cycle (an optimistic-concurrency version check: "nobody has touched
// this key since I read it at cycle").
func (t *Txn) IfCycleLE(key, cycle uint64) *Txn {
	t.guards = append(t.guards, wire.TxnGuard{Kind: wire.GuardCycleLE, Key: key, Cycle: cycle})
	return t
}

// Put writes key = val when the transaction commits.
func (t *Txn) Put(key uint64, val []byte) *Txn {
	t.ops = append(t.ops, wire.TxnOp{Op: wire.OpWrite, Key: key, Val: val})
	return t
}

// PutEphemeral writes key = val bound to this client's replicated
// session: when the session expires (idle bound, EndSession, or the
// client vanishing), the key is deleted automatically in the expiring
// cycle. This is the auto-release mechanism behind locks and leases.
func (t *Txn) PutEphemeral(key uint64, val []byte) *Txn {
	t.ops = append(t.ops, wire.TxnOp{Op: wire.OpWrite, Key: key, Val: val, Ephemeral: true})
	return t
}

// Delete removes key when the transaction commits (a no-op if absent).
func (t *Txn) Delete(key uint64) *Txn {
	t.ops = append(t.ops, wire.TxnOp{Op: wire.OpDelete, Key: key})
	return t
}

// TxnResult is the committed-order verdict of a transaction.
type TxnResult struct {
	// Committed reports that every guard held and all ops applied.
	Committed bool
	// FailedGuard is the index (in build order) of the first guard that
	// did not hold; -1 when Committed.
	FailedGuard int
	// Cycle is the consensus cycle that decided the transaction.
	Cycle uint64
}

// TxnFuture is the asynchronous handle of a submitted transaction.
type TxnFuture struct{ f *Future }

// Wait blocks for the transaction's verdict.
func (tf *TxnFuture) Wait(ctx context.Context) (TxnResult, error) {
	res, err := tf.f.Wait(ctx)
	if err != nil {
		return TxnResult{}, err
	}
	wres, err := wire.ParseTxnResult(res.Val)
	if err != nil {
		return TxnResult{}, fmt.Errorf("%w: malformed txn verdict: %v", ErrRejected, err)
	}
	out := TxnResult{Committed: wres.Committed, FailedGuard: -1, Cycle: res.Cycle}
	if !wres.Committed {
		out.FailedGuard = int(wres.Failed)
	}
	return out, nil
}

// Txn submits t and waits for its verdict. Transactions always bind to
// the client's replicated session (registering one on first use): the
// (session, seq) identity makes the commit/abort verdict exactly-once
// across failover, exactly like Put.
func (c *Client) Txn(ctx context.Context, t *Txn) (TxnResult, error) {
	return c.TxnAsync(t).Wait(ctx)
}

// TxnAsync submits t and returns its future.
func (c *Client) TxnAsync(t *Txn) *TxnFuture {
	f := newFuture(c.cfg.RequestTimeout)
	switch {
	case len(t.guards) > wire.MaxTxnGuards:
		f.complete(Result{}, fmt.Errorf("%w: txn has %d guards (max %d)",
			ErrRejected, len(t.guards), wire.MaxTxnGuards))
	case len(t.ops) > wire.MaxTxnOps:
		f.complete(Result{}, fmt.Errorf("%w: txn has %d ops (max %d)",
			ErrRejected, len(t.ops), wire.MaxTxnOps))
	default:
		c.start(&pendingOp{txn: t, fn: f.complete})
	}
	return &TxnFuture{f: f}
}
