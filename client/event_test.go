package client_test

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"canopus/client"
	"canopus/internal/core"
	"canopus/internal/livecluster"
)

func startEventCluster(t *testing.T, nodes int) (*livecluster.Cluster, *client.Client) {
	t.Helper()
	c, err := livecluster.Start(livecluster.Config{
		Nodes: nodes,
		Node:  core.Config{CycleInterval: 2 * time.Millisecond, TickInterval: time.Millisecond},
		Seed:  23,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Stop(5 * time.Second) })
	eps := make([]string, nodes)
	for i := range eps {
		eps[i] = c.ClientAddr(i)
	}
	cl, err := client.New(client.Config{Endpoints: eps, RequestTimeout: 30 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cl.Close() })
	return c, cl
}

func TestTxnCommitAndAbort(t *testing.T) {
	_, cl := startEventCluster(t, 3)
	ctx := context.Background()
	if err := cl.Put(ctx, 1, []byte("a")); err != nil {
		t.Fatal(err)
	}

	res, err := cl.Txn(ctx, client.NewTxn().IfValueEq(1, []byte("a")).Put(2, []byte("b")))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Committed || res.FailedGuard != -1 || res.Cycle == 0 {
		t.Fatalf("commit verdict = %+v", res)
	}
	if val, err := cl.Get(ctx, 2); err != nil || string(val) != "b" {
		t.Fatalf("key 2 = %q, %v after committed txn", val, err)
	}

	// First failing guard aborts the whole txn and is reported by index.
	res, err = cl.Txn(ctx, client.NewTxn().
		IfValueEq(1, []byte("a")). // holds
		IfAbsent(2).               // fails: key 2 = "b"
		Put(3, []byte("never")))
	if err != nil {
		t.Fatal(err)
	}
	if res.Committed || res.FailedGuard != 1 {
		t.Fatalf("abort verdict = %+v, want FailedGuard 1", res)
	}
	if _, err := cl.Get(ctx, 3); !errors.Is(err, client.ErrNotFound) {
		t.Fatalf("key 3 = %v after aborted txn, want ErrNotFound", err)
	}

	// Optimistic version check: nothing touched key 1 since its write
	// cycle, so IfCycleLE at the current cycle holds.
	res, err = cl.Txn(ctx, client.NewTxn().IfCycleLE(1, cl.LastCycle()).Delete(2))
	if err != nil || !res.Committed {
		t.Fatalf("IfCycleLE txn = %+v, %v", res, err)
	}
	if _, err := cl.Get(ctx, 2); !errors.Is(err, client.ErrNotFound) {
		t.Fatalf("key 2 survived committed delete: %v", err)
	}
}

func TestWatchDeliversCommittedChanges(t *testing.T) {
	_, cl := startEventCluster(t, 3)
	ctx := context.Background()

	w, err := cl.Watch(ctx, 7)
	if err != nil {
		t.Fatal(err)
	}
	const n = 10
	for i := 0; i < n; i++ {
		if err := cl.Put(ctx, 7, []byte(fmt.Sprintf("seq-%d", i))); err != nil {
			t.Fatal(err)
		}
		// Unrelated keys must not reach an exact-key watch.
		if err := cl.Put(ctx, 8, []byte("noise")); err != nil {
			t.Fatal(err)
		}
	}
	if err := cl.Delete(ctx, 7); err != nil {
		t.Fatal(err)
	}

	var got []client.Event
	var lastCycle uint64
	deadline := time.After(10 * time.Second)
	for len(got) < n+1 {
		select {
		case we, ok := <-w.Events():
			if !ok {
				t.Fatalf("watch died early: %v (got %d events)", w.Err(), len(got))
			}
			if we.Cycle <= lastCycle {
				t.Fatalf("cycle %d after %d: order violated", we.Cycle, lastCycle)
			}
			lastCycle = we.Cycle
			got = append(got, we.Events...)
		case <-deadline:
			t.Fatalf("timed out with %d of %d events", len(got), n+1)
		}
	}
	for i := 0; i < n; i++ {
		e := got[i]
		if e.Kind != client.OpPut || e.Key != 7 || string(e.Val) != fmt.Sprintf("seq-%d", i) {
			t.Fatalf("event %d = {%v %d %q}", i, e.Kind, e.Key, e.Val)
		}
	}
	if e := got[n]; e.Kind != client.OpDelete || e.Key != 7 || e.Val != nil {
		t.Fatalf("final event = {%v %d %q}, want delete of key 7", e.Kind, e.Key, e.Val)
	}

	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	for range w.Events() {
	}
	if err := w.Err(); err != nil {
		t.Fatalf("Err after Close = %v, want nil", err)
	}
}

// TestWatchResumeAcrossCrash is the event-plane acceptance test: a
// watch established through one node keeps its exactly-once, gap-free,
// commit-cycle-ordered guarantee when that node crashes mid-stream —
// the client re-registers on a surviving replica, resuming from the
// last delivered cycle, and the replica's retained history bridges the
// failover seam.
func TestWatchResumeAcrossCrash(t *testing.T) {
	c, cl := startEventCluster(t, 3)
	ctx := context.Background()

	w, err := cl.Watch(ctx, 5)
	if err != nil {
		t.Fatal(err)
	}
	const n = 20
	for i := 0; i < n/2; i++ {
		if err := cl.Put(ctx, 5, []byte(fmt.Sprintf("seq-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	// The client dialed endpoints[0] first; crash it under the live
	// watch and keep writing through the survivors.
	c.Crash(0)
	for i := n / 2; i < n; i++ {
		if err := cl.Put(ctx, 5, []byte(fmt.Sprintf("seq-%d", i))); err != nil {
			t.Fatal(err)
		}
	}

	var got []string
	var lastCycle uint64
	deadline := time.After(15 * time.Second)
	for len(got) < n {
		select {
		case we, ok := <-w.Events():
			if !ok {
				t.Fatalf("watch died: %v (delivered %d of %d)", w.Err(), len(got), n)
			}
			if we.Cycle <= lastCycle {
				t.Fatalf("cycle %d after %d: duplicate or reordered delivery across failover", we.Cycle, lastCycle)
			}
			lastCycle = we.Cycle
			for _, e := range we.Events {
				got = append(got, string(e.Val))
			}
		case <-deadline:
			t.Fatalf("timed out with %d of %d events after crash", len(got), n)
		}
	}
	for i, v := range got {
		if want := fmt.Sprintf("seq-%d", i); v != want {
			t.Fatalf("event %d = %q, want %q (gap or duplicate across failover)", i, v, want)
		}
	}
	if fo := cl.Stats().Failovers; fo < 1 {
		t.Fatalf("failovers = %d, want at least 1 (crash went unnoticed?)", fo)
	}
	w.Close()
}

func TestWatchPrefixAndBufferOverflow(t *testing.T) {
	_, cl := startEventCluster(t, 1)
	ctx := context.Background()

	// A prefix watch over the whole keyspace with a one-cycle buffer and
	// no consumer must die with ErrWatchOverflow instead of blocking the
	// delivery path or dropping silently.
	w, err := cl.Watch(ctx, 0, client.WithPrefix(0), client.WithBuffer(1))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 16; i++ {
		if err := cl.Put(ctx, uint64(100+i), []byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.After(10 * time.Second)
	for {
		w.Events() // drain nothing: we want the buffer to fill
		select {
		case <-deadline:
			t.Fatal("watch never overflowed a full, unconsumed buffer")
		default:
		}
		if errors.Is(w.Err(), client.ErrWatchOverflow) {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	// The channel is closed after the overflow; buffered events drain.
	for range w.Events() {
	}
}

func TestEnsureSession(t *testing.T) {
	_, cl := startEventCluster(t, 1)
	ctx := context.Background()
	if got := cl.SessionID(); got != 0 {
		t.Fatalf("fresh client SessionID = %d, want 0", got)
	}
	sess, err := cl.EnsureSession(ctx)
	if err != nil || sess == 0 {
		t.Fatalf("EnsureSession = %d, %v", sess, err)
	}
	if got := cl.SessionID(); got != sess {
		t.Fatalf("SessionID = %d after EnsureSession %d", got, sess)
	}
	again, err := cl.EnsureSession(ctx)
	if err != nil || again != sess {
		t.Fatalf("second EnsureSession = %d, %v, want %d", again, err, sess)
	}
}
