package client

import (
	"errors"
	"fmt"
	"io"
	"net"
	"sort"
	"sync"
	"time"

	"canopus/internal/wire"
)

// pendingOp is one in-flight operation: the request (for re-encoding on
// failover), its completion callback, the exactly-once retry latch, and
// — for mutations — the replicated session identity assigned at first
// send and kept across retries (the server-side dedup key).
type pendingOp struct {
	op        Op
	batch     []Op   // non-nil: encode as a multi-op frame
	txn       *Txn   // non-nil: encode as a v3 transaction frame
	wreg      *Watch // non-nil: v3 watch-registration frame
	wsince    uint64 // wreg: SinceCycle for this (re)registration
	unwatch   bool   // v3 watch-cancel frame (unwatchID carries the watch)
	unwatchID uint64
	register  bool // session-register frame
	expire    bool // session-expire frame
	ensure    bool // EnsureSession sentinel: parks for registration, never hits the wire
	session   uint64
	seq       uint64 // first mutating op's session seq
	fn        func(Result, error)
	okFn      func(ok bool) // success-only completion (AsyncOk); fn is nil
	retried   bool
}

// complete delivers the operation's outcome to whichever completion
// shape it carries.
func (p *pendingOp) complete(res Result, err error) {
	if p.okFn != nil {
		p.okFn(err == nil)
		return
	}
	p.fn(res, err)
}

// needsSession reports whether p must be bound to a replicated session
// before it can go on the wire (it carries at least one mutation).
func (p *pendingOp) needsSession() bool {
	if p.register || p.expire || p.ensure || p.wreg != nil || p.unwatch {
		return false
	}
	if p.txn != nil {
		// Transactions always bind: the (session, seq) identity is what
		// makes the commit/abort verdict exactly-once across failover.
		return true
	}
	if p.batch != nil {
		for i := range p.batch {
			if p.batch[i].Kind.Mutates() {
				return true
			}
		}
		return false
	}
	return p.op.Kind.Mutates()
}

// conn is one pipelined protocol-v3 connection. Writes from concurrent
// goroutines are coalesced into single syscalls by a flusher goroutine;
// responses are correlated by ID on the reader goroutine, mirroring the
// server side. Server-push EVENT frames correlate by watch ID instead
// and dispatch to the client's watch registry.
type conn struct {
	cl *Client
	nc net.Conn

	mu      sync.Mutex
	nextID  uint64
	pending map[uint64]*pendingOp
	err     error
	retired bool // no longer current; close once pending drains

	outMu sync.Mutex
	out   []byte
	wake  chan struct{}

	done chan struct{}
}

// dialConn connects to one endpoint and starts the v3 preamble and the
// reader/writer goroutines.
func dialConn(cl *Client, addr string, timeout time.Duration) (*conn, error) {
	nc, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, fmt.Errorf("canopus/client: dial %s: %w", addr, err)
	}
	if tc, ok := nc.(*net.TCPConn); ok {
		tc.SetNoDelay(true)
	}
	if _, err := nc.Write(wire.ClientMagicV3[:]); err != nil {
		nc.Close()
		return nil, fmt.Errorf("canopus/client: preamble %s: %w", addr, err)
	}
	cn := &conn{
		cl:      cl,
		nc:      nc,
		pending: make(map[uint64]*pendingOp),
		wake:    make(chan struct{}, 1),
		done:    make(chan struct{}),
	}
	go cn.readLoop()
	go cn.writeLoop()
	return cn, nil
}

// enqueue registers p and appends its encoded frame to the output
// buffer. It reports false when the connection has already failed (the
// failure handler owns any previously registered operations; p was not
// registered).
func (cn *conn) enqueue(p *pendingOp) bool {
	cn.mu.Lock()
	if cn.err != nil {
		cn.mu.Unlock()
		return false
	}
	cn.nextID++
	id := cn.nextID
	cn.pending[id] = p
	cn.mu.Unlock()

	q := wire.ClientRequestV2{ID: id}
	var one [1]wire.ClientOp // single-op fast path: no slice allocation
	switch {
	case p.register:
		q.Register = true
	case p.expire:
		q.Expire, q.Session = true, p.session
	case p.txn != nil:
		q.Txn = true
		q.Session, q.Seq = p.session, p.seq
		q.TxnGuards, q.TxnOps = p.txn.guards, p.txn.ops
	case p.wreg != nil:
		q.Watch = true
		q.WatchID = p.wreg.id
		q.WatchKey, q.PrefixBits = p.wreg.key, p.wreg.bits
		q.SinceCycle = p.wsince
		// From here on, only events arriving on THIS connection belong to
		// the watch: a retired predecessor still draining replies must not
		// interleave its stale pushes with the new registration's replay.
		p.wreg.setConn(cn)
	case p.unwatch:
		q.Unwatch = true
		q.WatchID = p.unwatchID
	case p.batch != nil:
		q.Batch = true
		q.Consistency, q.MinCycle = cn.cl.readLevel(batchReadLevel(p.batch))
		q.Session, q.Seq = p.session, p.seq
		q.Ops = make([]wire.ClientOp, len(p.batch))
		for i := range p.batch {
			q.Ops[i] = wire.ClientOp{Op: p.batch[i].Kind, Key: p.batch[i].Key, Val: p.batch[i].Val}
		}
	default:
		q.Consistency, q.MinCycle = cn.cl.readLevel(p.op)
		q.Session, q.Seq = p.session, p.seq
		one[0] = wire.ClientOp{Op: p.op.Kind, Key: p.op.Key, Val: p.op.Val}
		q.Ops = one[:]
	}

	cn.outMu.Lock()
	if cn.out == nil {
		cn.out = wire.EncodePool.Get(64 + len(p.op.Val))
	}
	cn.out = wire.AppendClientRequestV3(cn.out, &q)
	cn.outMu.Unlock()
	select {
	case cn.wake <- struct{}{}:
	default:
	}
	return true
}

// readLevel resolves an operation's effective consistency level and
// minimum cycle: Sequential reads ride the session clock.
func (cl *Client) readLevel(op Op) (Consistency, uint64) {
	min := op.MinCycle
	if op.Consistency == Sequential {
		if last := cl.lastCycle.Load(); last > min {
			min = last
		}
	}
	return op.Consistency, min
}

// batchReadLevel resolves the consistency parameters of a batch frame:
// the shared read level (BatchAsync validates reads do not mix levels)
// and the strongest — maximum — MinCycle any read asked for.
func batchReadLevel(ops []Op) Op {
	var out Op
	seen := false
	for i := range ops {
		if ops[i].Kind != OpGet {
			continue
		}
		if !seen {
			out, seen = ops[i], true
			continue
		}
		if ops[i].MinCycle > out.MinCycle {
			out.MinCycle = ops[i].MinCycle
		}
	}
	return out
}

func (cn *conn) writeLoop() {
	for {
		select {
		case <-cn.done:
			return
		case <-cn.wake:
		}
		for {
			cn.outMu.Lock()
			buf := cn.out
			cn.out = nil
			cn.outMu.Unlock()
			if len(buf) == 0 {
				break
			}
			cn.nc.SetWriteDeadline(time.Now().Add(10 * time.Second))
			_, err := cn.nc.Write(buf)
			wire.EncodePool.Put(buf)
			if err != nil {
				cn.fail(err)
				return
			}
		}
	}
}

func (cn *conn) readLoop() {
	var hdr [4]byte
	var payload []byte
	for {
		if _, err := io.ReadFull(cn.nc, hdr[:]); err != nil {
			cn.fail(err)
			return
		}
		n, err := wire.ClientFrameLen(hdr)
		if err != nil {
			cn.fail(err)
			return
		}
		if cap(payload) < n {
			payload = make([]byte, n)
		}
		payload = payload[:n]
		if _, err := io.ReadFull(cn.nc, payload); err != nil {
			cn.fail(err)
			return
		}
		resp, err := wire.ParseClientResponseV3(payload)
		if err != nil {
			cn.fail(err)
			return
		}
		if resp.Event {
			// Server push: correlated by watch ID, never in the pending
			// map. Event values were copied out of the read buffer by the
			// parser, so they survive the buffer's reuse.
			cn.cl.dispatchEvent(cn, &resp)
			continue
		}
		cn.mu.Lock()
		p, ok := cn.pending[resp.ID]
		if ok {
			delete(cn.pending, resp.ID)
		}
		cn.mu.Unlock()
		if ok {
			cn.deliver(p, &resp)
		}
		cn.maybeRelease()
	}
}

// retire marks the connection as no longer current: it stays alive to
// deliver the replies the server already accepted and is closed the
// moment its pending set drains.
func (cn *conn) retire() {
	cn.mu.Lock()
	cn.retired = true
	cn.mu.Unlock()
	cn.maybeRelease()
}

// maybeRelease closes a retired connection once nothing is in flight,
// without routing through the failover path (there is nothing left to
// retry).
func (cn *conn) maybeRelease() {
	cn.mu.Lock()
	if !cn.retired || cn.err != nil || len(cn.pending) != 0 {
		cn.mu.Unlock()
		return
	}
	cn.err = errRetired
	cn.pending = nil
	cn.mu.Unlock()
	close(cn.done)
	cn.nc.Close()
	cn.cl.dropOld(cn)
	cn.cl.rewatch(cn)
}

// deliver maps one v2 response onto its pending operation.
func (cn *conn) deliver(p *pendingOp, resp *wire.ClientResponseV2) {
	cn.cl.observeCycle(resp.Cycle)
	if p.batch != nil {
		cn.deliverBatch(p, resp)
		return
	}
	switch resp.Status {
	case wire.ClientStatusOK:
		// resp.Val is already a private copy (the v2 parser copies out of
		// the reusable read buffer).
		p.complete(Result{Val: resp.Val, Found: true, Cycle: resp.Cycle}, nil)
	case wire.ClientStatusNil:
		p.complete(Result{Cycle: resp.Cycle}, nil)
	default:
		if resp.Code == wire.CodeSessionExpired {
			cn.cl.sessionExpired(p.session)
			// The apply-path rejection is deterministic: THIS submission
			// was not applied anywhere. If the op was never retried there
			// is no earlier submission that could have committed, so it
			// is safe to re-bind it to a fresh session and re-issue —
			// exactly once, reusing the failover latch. A retried op's
			// first submission may have committed under the old session
			// (whose dedup state is gone), so it must surface the expiry.
			if !p.retried {
				p.retried = true
				p.session, p.seq = 0, 0
				cn.cl.retries.Add(1)
				go cn.cl.start(p)
				return
			}
			p.complete(Result{Cycle: resp.Cycle}, ErrSessionExpired)
			return
		}
		if retryableCode(resp.Code) {
			cn.cl.retryElsewhere(cn, p, rejectionError(resp.Code, resp.Val))
			return
		}
		p.complete(Result{}, rejectionError(resp.Code, resp.Val))
	}
}

func (cn *conn) deliverBatch(p *pendingOp, resp *wire.ClientResponseV2) {
	// A frame-level code with no per-op results is a wholesale rejection
	// (e.g. draining before any sub-op was accepted): retryable as one
	// unit, since nothing was submitted.
	if resp.Code != wire.CodeNone && len(resp.Results) == 0 {
		if retryableCode(resp.Code) {
			cn.cl.retryElsewhere(cn, p, rejectionError(resp.Code, nil))
			return
		}
		p.complete(Result{}, rejectionError(resp.Code, nil))
		return
	}
	if len(resp.Results) != len(p.batch) {
		p.complete(Result{}, fmt.Errorf("%w: batch answered %d of %d ops",
			ErrRejected, len(resp.Results), len(p.batch)))
		return
	}
	// Expired-session slots: a batch's consensus mutations are submitted
	// in one machine turn and ride one cycle, so a single submission's
	// mutating slots share the expiry verdict. Mirroring the single-op
	// path, a never-retried batch was deterministically not applied and
	// is safe to re-issue whole under a fresh session (its reads are
	// idempotent); a retried one must surface the expiry per slot.
	if p.session != 0 && !p.retried {
		for i := range resp.Results {
			if resp.Results[i].Code == wire.CodeSessionExpired {
				cn.cl.sessionExpired(p.session)
				p.retried = true
				p.session, p.seq = 0, 0
				cn.cl.retries.Add(1)
				go cn.cl.start(p)
				return
			}
		}
	}
	out := make([]Result, len(resp.Results))
	for i := range resp.Results {
		r := &resp.Results[i]
		switch r.Status {
		case wire.ClientStatusOK:
			out[i] = Result{Val: r.Val, Found: true, Cycle: resp.Cycle}
		case wire.ClientStatusNil:
			out[i] = Result{Cycle: resp.Cycle}
		default:
			if r.Code == wire.CodeSessionExpired {
				cn.cl.sessionExpired(p.session)
				out[i] = Result{Cycle: resp.Cycle, Err: ErrSessionExpired}
				continue
			}
			out[i] = Result{Cycle: resp.Cycle, Err: rejectionError(r.Code, r.Val)}
		}
	}
	p.complete(Result{Cycle: resp.Cycle, batch: out}, nil)
}

// fail poisons the connection and hands every pending operation to the
// client's failover path, in submission order (correlation IDs are
// assigned sequentially) so a session's own same-key mutations are not
// reordered by the retry.
func (cn *conn) fail(cause error) {
	cn.mu.Lock()
	if cn.err != nil {
		cn.mu.Unlock()
		return
	}
	cn.err = cause
	pending := cn.pending
	cn.pending = nil
	cn.mu.Unlock()
	close(cn.done)
	cn.nc.Close()
	ids := make([]uint64, 0, len(pending))
	for id := range pending {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	pend := make([]*pendingOp, 0, len(ids))
	for _, id := range ids {
		pend = append(pend, pending[id])
	}
	cn.cl.onConnFailure(cn, pend, cause)
	cn.cl.rewatch(cn)
}

func retryableCode(code uint8) bool {
	return code == wire.CodeDraining || code == wire.CodeStalled
}

func rejectionError(code uint8, reason []byte) error {
	switch {
	case code == wire.CodeSessionExpired:
		return ErrSessionExpired
	case code == wire.CodeWatchOverflow:
		return ErrWatchOverflow
	case code == wire.CodeDraining:
		return fmt.Errorf("%w: server draining", ErrRejected)
	case code == wire.CodeStalled:
		return fmt.Errorf("%w: node stalled", ErrRejected)
	case len(reason) > 0:
		return fmt.Errorf("%w: %s", ErrRejected, reason)
	default:
		return ErrRejected
	}
}

// errRetired poisons a retired connection after its pending set drains;
// it never reaches a caller.
var errRetired = errors.New("canopus/client: connection retired")
