package client

import (
	"context"
	"errors"
	"fmt"
	"time"
)

// Future is one asynchronous operation's pending result. Create one
// with the *Async methods; collect it with Wait (or select on Done and
// then call Result).
type Future struct {
	done    chan struct{}
	timeout time.Duration // default bound when Wait's ctx has no deadline
	res     Result
	err     error
}

func newFuture(timeout time.Duration) *Future {
	return &Future{done: make(chan struct{}), timeout: timeout}
}

// complete resolves the future exactly once; later calls are dropped
// (e.g. a straggler reply after the wait already failed elsewhere —
// cannot happen today, but cheap to make safe).
func (f *Future) complete(res Result, err error) {
	select {
	case <-f.done:
		return
	default:
	}
	f.res, f.err = res, err
	close(f.done)
}

// Done is closed when the result is available.
func (f *Future) Done() <-chan struct{} { return f.done }

// Wait blocks for the result, the context, or the client's configured
// RequestTimeout (applied only when ctx carries no deadline). A timed
// out or cancelled wait abandons the operation client-side; it may
// still commit on the cluster.
func (f *Future) Wait(ctx context.Context) (Result, error) {
	var timeoutC <-chan time.Time
	if f.timeout > 0 {
		if _, hasDeadline := ctx.Deadline(); !hasDeadline {
			t := time.NewTimer(f.timeout)
			defer t.Stop()
			timeoutC = t.C
		}
	}
	select {
	case <-f.done:
		return f.res, f.err
	case <-ctx.Done():
		err := ctx.Err()
		if errors.Is(err, context.DeadlineExceeded) {
			return Result{}, fmt.Errorf("%w: %v", ErrTimeout, err)
		}
		return Result{}, err
	case <-timeoutC:
		return Result{}, fmt.Errorf("%w: no reply within %v", ErrTimeout, f.timeout)
	}
}

// Result returns the resolved result; valid only after Done is closed.
func (f *Future) Result() (Result, error) {
	select {
	case <-f.done:
		return f.res, f.err
	default:
		return Result{}, errors.New("canopus/client: Future not resolved; use Wait")
	}
}

// Batch returns a batch future's positional results; valid only after
// Done is closed.
func (f *Future) Batch(ctx context.Context) ([]Result, error) {
	res, err := f.Wait(ctx)
	if err != nil {
		return nil, err
	}
	return res.batch, nil
}
