package client_test

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"canopus/client"
	"canopus/internal/core"
	"canopus/internal/kvstore"
	"canopus/internal/livecluster"
)

func TestNewValidatesConfig(t *testing.T) {
	if _, err := client.New(client.Config{}); err == nil {
		t.Fatal("New accepted an endpoint-less config")
	}
}

func TestClusterDown(t *testing.T) {
	cl, err := client.New(client.Config{
		Endpoints:   []string{"127.0.0.1:1"}, // reserved port: nothing listens
		DialTimeout: 200 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if err := cl.Put(context.Background(), 1, []byte("x")); !errors.Is(err, client.ErrClusterDown) {
		t.Fatalf("err = %v, want ErrClusterDown", err)
	}
}

func TestTimeout(t *testing.T) {
	// A listener that accepts and then never answers: the dial succeeds,
	// the request goes unanswered, and the context deadline maps to
	// ErrTimeout.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	var mu sync.Mutex
	var held []net.Conn
	defer func() {
		mu.Lock()
		defer mu.Unlock()
		for _, c := range held {
			c.Close()
		}
	}()
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			mu.Lock()
			held = append(held, conn)
			mu.Unlock()
		}
	}()
	cl, err := client.New(client.Config{Endpoints: []string{ln.Addr().String()}})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if _, err := cl.Get(ctx, 1); !errors.Is(err, client.ErrTimeout) {
		t.Fatalf("err = %v, want ErrTimeout", err)
	}
	// The configured RequestTimeout applies when the context has no
	// deadline.
	cl2, err := client.New(client.Config{
		Endpoints:      []string{ln.Addr().String()},
		RequestTimeout: 50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl2.Close()
	if _, err := cl2.Get(context.Background(), 1); !errors.Is(err, client.ErrTimeout) {
		t.Fatalf("err = %v, want ErrTimeout from RequestTimeout", err)
	}
}

func TestClosedClient(t *testing.T) {
	cl, err := client.New(client.Config{Endpoints: []string{"127.0.0.1:1"}})
	if err != nil {
		t.Fatal(err)
	}
	cl.Close()
	if err := cl.Put(context.Background(), 1, nil); !errors.Is(err, client.ErrClosed) {
		t.Fatalf("err = %v, want ErrClosed", err)
	}
}

// TestFailoverRetriesPendingOpsOnce crashes the connected node with a
// pipeline of linearizable writes in flight and asserts the client
// fails over to another endpoint, retrying every pending operation
// exactly once — and that nothing is applied twice (checked through the
// surviving replicas' apply-log lengths and the per-key sequence
// values).
func TestFailoverRetriesPendingOpsOnce(t *testing.T) {
	// A long cycle interval parks submitted operations in the serving
	// node's accumulator: the crash deterministically happens BEFORE any
	// of them enters a consensus cycle, so the retry is the only path to
	// commitment and duplicate application would be visible.
	const cycleEvery = 2 * time.Second
	c, err := livecluster.Start(livecluster.Config{
		Nodes:        3,
		Node:         core.Config{CycleInterval: cycleEvery, TickInterval: 5 * time.Millisecond},
		Seed:         11,
		LoggedStores: true, // the no-duplicate check below reads LogLen
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop(5 * time.Second)

	cl, err := client.New(client.Config{
		Endpoints:      []string{c.ClientAddr(0), c.ClientAddr(1), c.ClientAddr(2)},
		RequestTimeout: 30 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	ctx := context.Background()

	// Establish the replicated session (and one committed write) before
	// the pipeline, so the crash window below holds exactly the n
	// pipelined ops.
	if err := cl.Put(ctx, 999, []byte("session-up")); err != nil {
		t.Fatal(err)
	}

	// Pipeline N writes whose values encode their sequence numbers.
	const n = 20
	futs := make([]*client.Future, n)
	for i := 0; i < n; i++ {
		futs[i] = cl.PutAsync(uint64(i), []byte(fmt.Sprintf("seq-%d", i)))
	}

	// Wait until node 0 has accepted the whole pipeline, then crash it
	// mid-stream (the next cycle is most of cycleEvery away).
	deadline := time.Now().Add(cycleEvery / 2)
	for c.Port(0).Outstanding() < n {
		if time.Now().After(deadline) {
			t.Fatalf("node 0 accepted only %d of %d ops", c.Port(0).Outstanding(), n)
		}
		time.Sleep(200 * time.Microsecond)
	}
	c.Crash(0)

	// Every pending operation completes through the failover endpoint.
	for i, f := range futs {
		if _, err := f.Wait(ctx); err != nil {
			t.Fatalf("op %d never completed after failover: %v", i, err)
		}
	}

	// Exactly-once retry accounting: one connection failover, each of
	// the n pending ops re-sent exactly once.
	st := cl.Stats()
	if st.Retries != n {
		t.Fatalf("retries = %d, want %d (exactly once per pending op)", st.Retries, n)
	}
	if st.Failovers != 1 {
		t.Fatalf("failovers = %d, want 1", st.Failovers)
	}

	// No duplicate application: each surviving replica applied exactly
	// n+1 writes (the session-establishing one plus the pipeline), and
	// every key holds its own sequence value.
	for _, node := range []int{1, 2} {
		var logLen uint64
		var vals [n][]byte
		c.InspectStore(node, func(st *kvstore.Store) {
			logLen = st.LogLen()
			for i := 0; i < n; i++ {
				vals[i] = st.Read(uint64(i))
			}
		})
		if logLen != n+1 {
			t.Fatalf("node %d applied %d writes, want %d (duplicate or lost application)", node, logLen, n+1)
		}
		for i := 0; i < n; i++ {
			if want := fmt.Sprintf("seq-%d", i); string(vals[i]) != want {
				t.Fatalf("node %d key %d = %q, want %q", node, i, vals[i], want)
			}
		}
	}

	// The client session remains usable against the surviving nodes
	// without further failovers: a Stale read is served from committed
	// state immediately (no extra consensus cycle at this long cycle
	// interval).
	val, err := cl.Get(ctx, n-1, client.WithConsistency(client.Stale))
	if err != nil || string(val) != fmt.Sprintf("seq-%d", n-1) {
		t.Fatalf("post-failover stale read = %q, %v", val, err)
	}
	if got := cl.Stats().Failovers; got != 1 {
		t.Fatalf("failovers after recovery = %d, want still 1", got)
	}
}

// TestExactlyOnceAcrossReplyLoss is the acceptance test for replicated
// client sessions: the reply-loss race is injected deterministically
// (the serving node commits and applies a pipeline of writes but its
// replies are discarded), the node then crashes, and the client's
// failover retry re-submits operations that ALREADY committed. Every
// retry must complete from the cached session reply, and the apply logs
// on every surviving replica must show exactly one apply per operation
// — zero duplicates.
func TestExactlyOnceAcrossReplyLoss(t *testing.T) {
	c, err := livecluster.Start(livecluster.Config{
		Nodes:        3,
		Node:         core.Config{CycleInterval: 2 * time.Millisecond, TickInterval: 2 * time.Millisecond},
		Seed:         19,
		LoggedStores: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop(5 * time.Second)

	cl, err := client.New(client.Config{
		Endpoints:      []string{c.ClientAddr(0), c.ClientAddr(1), c.ClientAddr(2)},
		RequestTimeout: 30 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	ctx := context.Background()

	// Establish the session with one committed write (all replicas log
	// it), so the window below contains exactly the pipelined ops.
	if err := cl.Put(ctx, 999, []byte("session-up")); err != nil {
		t.Fatal(err)
	}
	if cl.SessionID() == 0 {
		t.Fatal("no replicated session after first mutation")
	}
	logLenAt := func(node int) uint64 {
		var n uint64
		c.InspectStore(node, func(st *kvstore.Store) { n = st.LogLen() })
		return n
	}
	base := logLenAt(1)

	// Inject the reply-loss fault, then pipeline writes through node 0:
	// they commit cluster-wide, but the client never hears back.
	c.Port(0).DropReplies()
	const n = 10
	futs := make([]*client.Future, n)
	for i := 0; i < n; i++ {
		futs[i] = cl.PutAsync(uint64(i), []byte(fmt.Sprintf("v-%d", i)))
	}

	// Wait until a surviving replica has applied the whole pipeline: the
	// ops are now committed, their replies lost — the exact crash window
	// that used to re-apply on retry.
	deadline := time.Now().Add(10 * time.Second)
	for logLenAt(1) < base+n {
		if time.Now().After(deadline) {
			t.Fatalf("pipeline did not commit: log %d, want %d", logLenAt(1), base+n)
		}
		time.Sleep(time.Millisecond)
	}
	c.Crash(0)

	// Every future completes through the failover endpoint — answered
	// from the dedup table's cached replies, not by re-applying.
	for i, f := range futs {
		if _, err := f.Wait(ctx); err != nil {
			t.Fatalf("op %d not answered from cached reply: %v", i, err)
		}
	}
	if st := cl.Stats(); st.Retries != n {
		t.Fatalf("retries = %d, want %d", st.Retries, n)
	}

	// Zero duplicate applies: the surviving replicas' logs grew by
	// exactly the pipeline, and every key holds its own value.
	for _, node := range []int{1, 2} {
		if got := logLenAt(node); got != base+n {
			t.Fatalf("node %d applied %d writes, want %d (duplicate apply)", node, got, base+n)
		}
	}
	for i := 0; i < n; i++ {
		val, err := cl.Get(ctx, uint64(i))
		if err != nil || string(val) != fmt.Sprintf("v-%d", i) {
			t.Fatalf("key %d = %q, %v", i, val, err)
		}
	}
}

// TestSessionExpiredMidFlightSurfaces pins the expiry boundary: an
// operation that committed, lost its reply, and straddled a session
// expiry before the failover retry must surface ErrSessionExpired — the
// dedup state that could classify the retry is gone, and silently
// re-applying would break exactly-once.
func TestSessionExpiredMidFlightSurfaces(t *testing.T) {
	c, err := livecluster.Start(livecluster.Config{
		Nodes:        3,
		Node:         core.Config{CycleInterval: 2 * time.Millisecond, TickInterval: 2 * time.Millisecond},
		Seed:         23,
		LoggedStores: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop(5 * time.Second)

	cl, err := client.New(client.Config{
		Endpoints:      []string{c.ClientAddr(0), c.ClientAddr(1), c.ClientAddr(2)},
		RequestTimeout: 30 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	ctx := context.Background()

	if err := cl.Put(ctx, 1, []byte("up")); err != nil {
		t.Fatal(err)
	}
	sess := cl.SessionID()

	// Commit a write whose reply is lost.
	c.Port(0).DropReplies()
	fut := cl.PutAsync(2, []byte("orphan"))
	logLenAt := func(node int) uint64 {
		var n uint64
		c.InspectStore(node, func(st *kvstore.Store) { n = st.LogLen() })
		return n
	}
	deadline := time.Now().Add(10 * time.Second)
	for logLenAt(1) < 2 {
		if time.Now().After(deadline) {
			t.Fatal("orphan write did not commit")
		}
		time.Sleep(time.Millisecond)
	}

	// Expire the session through consensus while the reply is lost.
	c.Runner(1).Invoke(func() { c.Node(1).ExpireSession(sess, nil) })
	for {
		var has bool
		c.Runner(1).Invoke(func() { has = c.Node(1).Sessions().Has(sess) })
		if !has {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("session expiry did not commit")
		}
		time.Sleep(time.Millisecond)
	}

	// Crash the serving node: the failover retry of the committed write
	// meets an expired session and must surface the typed error.
	c.Crash(0)
	if _, err := fut.Wait(ctx); !errors.Is(err, client.ErrSessionExpired) {
		t.Fatalf("retry across expiry returned %v, want ErrSessionExpired", err)
	}

	// Not re-applied: replicas logged the session write exactly once.
	if got := logLenAt(1); got != 2 {
		t.Fatalf("replica applied %d writes, want 2 (expired retry must not re-apply)", got)
	}

	// The client recovers: the next mutation runs under a fresh session.
	if err := cl.Put(ctx, 3, []byte("fresh")); err != nil {
		t.Fatal(err)
	}
	if ns := cl.SessionID(); ns == 0 || ns == sess {
		t.Fatalf("session not re-registered: %#x (old %#x)", ns, sess)
	}
}

// TestEndSessionLifecycle pins explicit session teardown: EndSession
// commits the expiry (the dedup state leaves every replica), and the
// next mutation transparently registers a fresh session.
func TestEndSessionLifecycle(t *testing.T) {
	c, err := livecluster.Start(livecluster.Config{
		Nodes: 3,
		Node:  core.Config{CycleInterval: 2 * time.Millisecond, TickInterval: 2 * time.Millisecond},
		Seed:  29,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop(5 * time.Second)

	cl, err := client.New(client.Config{Endpoints: []string{c.ClientAddr(0)}})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	ctx := context.Background()

	if err := cl.Put(ctx, 1, []byte("a")); err != nil {
		t.Fatal(err)
	}
	old := cl.SessionID()
	if old == 0 {
		t.Fatal("no session after mutation")
	}
	if err := cl.EndSession(ctx); err != nil {
		t.Fatal(err)
	}
	if cl.SessionID() != 0 {
		t.Fatal("session survived EndSession client-side")
	}
	for i := 0; i < 3; i++ {
		var has bool
		c.Runner(i).Invoke(func() { has = c.Node(i).Sessions().Has(old) })
		if has {
			t.Fatalf("node %d still holds the expired session", i)
		}
	}
	// A second EndSession with no session is a no-op.
	if err := cl.EndSession(ctx); err != nil {
		t.Fatal(err)
	}
	// The next mutation re-registers and succeeds (it was never retried,
	// so no ErrSessionExpired surfaces).
	if err := cl.Put(ctx, 2, []byte("b")); err != nil {
		t.Fatal(err)
	}
	if ns := cl.SessionID(); ns == 0 || ns == old {
		t.Fatalf("fresh session not registered: %#x (old %#x)", ns, old)
	}
}

// TestBatchAcrossExpiryReissues pins the batch half of the expiry
// contract: a never-retried batch whose mutations meet an expired
// session is deterministically unapplied, so the client re-issues it
// whole under a fresh session instead of surfacing per-slot errors.
func TestBatchAcrossExpiryReissues(t *testing.T) {
	c, err := livecluster.Start(livecluster.Config{
		Nodes: 3,
		Node:  core.Config{CycleInterval: 2 * time.Millisecond, TickInterval: 2 * time.Millisecond},
		Seed:  37,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop(5 * time.Second)

	cl, err := client.New(client.Config{Endpoints: []string{c.ClientAddr(0)}})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	ctx := context.Background()

	if err := cl.Put(ctx, 1, []byte("a")); err != nil {
		t.Fatal(err)
	}
	sess := cl.SessionID()

	// Expire the session through consensus behind the client's back.
	c.Runner(1).Invoke(func() { c.Node(1).ExpireSession(sess, nil) })
	deadline := time.Now().Add(10 * time.Second)
	for {
		var has bool
		c.Runner(0).Invoke(func() { has = c.Node(0).Sessions().Has(sess) })
		if !has {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("expiry never committed")
		}
		time.Sleep(time.Millisecond)
	}

	res, err := cl.Batch(ctx, []client.Op{
		{Kind: client.OpPut, Key: 2, Val: []byte("b")},
		{Kind: client.OpGet, Key: 1},
	})
	if err != nil {
		t.Fatalf("batch across expiry failed wholesale: %v", err)
	}
	for i, r := range res {
		if r.Err != nil {
			t.Fatalf("slot %d surfaced %v, want transparent re-issue", i, r.Err)
		}
	}
	if string(res[1].Val) != "a" {
		t.Fatalf("read slot = %q", res[1].Val)
	}
	if ns := cl.SessionID(); ns == 0 || ns == sess {
		t.Fatalf("batch did not re-register: %#x (old %#x)", ns, sess)
	}
}

// TestSequentialFailoverMonotonic pins the session guarantee across a
// failover: after writing through one node and crashing it, a
// Sequential read through the failover endpoint observes the write
// (the session clock carries the commit cycle to the new replica).
func TestSequentialFailoverMonotonic(t *testing.T) {
	c, err := livecluster.Start(livecluster.Config{
		Nodes: 3,
		Node:  core.Config{CycleInterval: 2 * time.Millisecond, TickInterval: 2 * time.Millisecond},
		Seed:  13,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop(5 * time.Second)

	cl, err := client.New(client.Config{
		Endpoints: []string{c.ClientAddr(0), c.ClientAddr(1), c.ClientAddr(2)},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	ctx := context.Background()

	if err := cl.Put(ctx, 42, []byte("mine")); err != nil {
		t.Fatal(err)
	}
	if cl.LastCycle() == 0 {
		t.Fatal("session observed no commit cycle")
	}
	c.Crash(0)

	// The Sequential read fails over and must still observe the
	// session's write — the new replica serves it only once it has
	// committed the session's last observed cycle.
	val, err := cl.Get(ctx, 42, client.WithConsistency(client.Sequential))
	if err != nil || string(val) != "mine" {
		t.Fatalf("sequential read after failover = %q, %v", val, err)
	}
}

// TestBatchRoundTrip exercises the multi-op frame end to end through
// the public API.
func TestBatchRoundTrip(t *testing.T) {
	c, err := livecluster.Start(livecluster.Config{
		Nodes: 3,
		Node:  core.Config{CycleInterval: 2 * time.Millisecond, TickInterval: 2 * time.Millisecond},
		Seed:  17,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop(5 * time.Second)

	cl, err := client.New(client.Config{Endpoints: []string{c.ClientAddr(0)}})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	ctx := context.Background()

	res, err := cl.Batch(ctx, []client.Op{
		{Kind: client.OpPut, Key: 1, Val: []byte("a")},
		{Kind: client.OpPut, Key: 2, Val: []byte("b")},
		{Kind: client.OpGet, Key: 1, Consistency: client.Linearizable},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 3 || res[2].Err != nil || string(res[2].Val) != "a" {
		t.Fatalf("batch results: %+v", res)
	}
	if res[2].Cycle == 0 {
		t.Fatal("batch carried no commit cycle")
	}

	// Async form, mixed with a stale read.
	f := cl.BatchAsync([]client.Op{
		{Kind: client.OpGet, Key: 2, Consistency: client.Stale},
		{Kind: client.OpDelete, Key: 1},
	})
	res, err = f.Batch(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 2 || string(res[0].Val) != "b" || res[1].Err != nil {
		t.Fatalf("async batch results: %+v", res)
	}
	if _, err := cl.Get(ctx, 1); !errors.Is(err, client.ErrNotFound) {
		t.Fatalf("key 1 survived batch delete: %v", err)
	}
}

// TestDialBackoffOnRefusedCluster pins the failover backoff: when every
// endpoint refuses, consecutive dial scans wait a capped, jittered
// exponential delay (base 2^k, jitter >= delay/2) instead of hammering
// the cluster, and the delay never exceeds RetryBackoffMax.
func TestDialBackoffOnRefusedCluster(t *testing.T) {
	// A port that was just listening and closed: connection refused,
	// immediately, on every dial.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()

	cl, err := client.New(client.Config{
		Endpoints:       []string{addr},
		DialTimeout:     500 * time.Millisecond,
		RetryBackoff:    10 * time.Millisecond,
		RetryBackoffMax: 40 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	ctx := context.Background()
	start := time.Now()
	const ops = 6
	for i := 0; i < ops; i++ {
		if _, err := cl.Get(ctx, 1); !errors.Is(err, client.ErrClusterDown) {
			t.Fatalf("op %d err = %v, want ErrClusterDown", i, err)
		}
	}
	elapsed := time.Since(start)
	// Scans wait 0, 10, 20, 40, 40, 40 ms nominal; jitter's floor is
	// half of each, so the whole sequence takes at least 75ms...
	if elapsed < 70*time.Millisecond {
		t.Fatalf("%d failed ops took %v — backoff not applied", ops, elapsed)
	}
	// ...and at most 150ms of waits plus dial overhead: far below what
	// an uncapped exponential (10ms·2^5 = 320ms for the last wait alone)
	// would need.
	if elapsed > 2*time.Second {
		t.Fatalf("%d failed ops took %v — backoff cap not applied", ops, elapsed)
	}
}
