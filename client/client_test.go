package client_test

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"canopus/client"
	"canopus/internal/core"
	"canopus/internal/livecluster"
)

func TestNewValidatesConfig(t *testing.T) {
	if _, err := client.New(client.Config{}); err == nil {
		t.Fatal("New accepted an endpoint-less config")
	}
}

func TestClusterDown(t *testing.T) {
	cl, err := client.New(client.Config{
		Endpoints:   []string{"127.0.0.1:1"}, // reserved port: nothing listens
		DialTimeout: 200 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if err := cl.Put(context.Background(), 1, []byte("x")); !errors.Is(err, client.ErrClusterDown) {
		t.Fatalf("err = %v, want ErrClusterDown", err)
	}
}

func TestTimeout(t *testing.T) {
	// A listener that accepts and then never answers: the dial succeeds,
	// the request goes unanswered, and the context deadline maps to
	// ErrTimeout.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	var mu sync.Mutex
	var held []net.Conn
	defer func() {
		mu.Lock()
		defer mu.Unlock()
		for _, c := range held {
			c.Close()
		}
	}()
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			mu.Lock()
			held = append(held, conn)
			mu.Unlock()
		}
	}()
	cl, err := client.New(client.Config{Endpoints: []string{ln.Addr().String()}})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if _, err := cl.Get(ctx, 1); !errors.Is(err, client.ErrTimeout) {
		t.Fatalf("err = %v, want ErrTimeout", err)
	}
	// The configured RequestTimeout applies when the context has no
	// deadline.
	cl2, err := client.New(client.Config{
		Endpoints:      []string{ln.Addr().String()},
		RequestTimeout: 50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl2.Close()
	if _, err := cl2.Get(context.Background(), 1); !errors.Is(err, client.ErrTimeout) {
		t.Fatalf("err = %v, want ErrTimeout from RequestTimeout", err)
	}
}

func TestClosedClient(t *testing.T) {
	cl, err := client.New(client.Config{Endpoints: []string{"127.0.0.1:1"}})
	if err != nil {
		t.Fatal(err)
	}
	cl.Close()
	if err := cl.Put(context.Background(), 1, nil); !errors.Is(err, client.ErrClosed) {
		t.Fatalf("err = %v, want ErrClosed", err)
	}
}

// TestFailoverRetriesPendingOpsOnce crashes the connected node with a
// pipeline of linearizable writes in flight and asserts the client
// fails over to another endpoint, retrying every pending operation
// exactly once — and that nothing is applied twice (checked through the
// surviving replicas' apply-log lengths and the per-key sequence
// values).
func TestFailoverRetriesPendingOpsOnce(t *testing.T) {
	// A long cycle interval parks submitted operations in the serving
	// node's accumulator: the crash deterministically happens BEFORE any
	// of them enters a consensus cycle, so the retry is the only path to
	// commitment and duplicate application would be visible.
	const cycleEvery = 2 * time.Second
	c, err := livecluster.Start(livecluster.Config{
		Nodes:        3,
		Node:         core.Config{CycleInterval: cycleEvery, TickInterval: 5 * time.Millisecond},
		Seed:         11,
		LoggedStores: true, // the no-duplicate check below reads LogLen
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop(5 * time.Second)

	cl, err := client.New(client.Config{
		Endpoints:      []string{c.ClientAddr(0), c.ClientAddr(1), c.ClientAddr(2)},
		RequestTimeout: 30 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	// Pipeline N writes whose values encode their sequence numbers.
	const n = 20
	futs := make([]*client.Future, n)
	for i := 0; i < n; i++ {
		futs[i] = cl.PutAsync(uint64(i), []byte(fmt.Sprintf("seq-%d", i)))
	}

	// Wait until node 0 has accepted the whole pipeline, then crash it
	// mid-stream.
	deadline := time.Now().Add(cycleEvery / 2)
	for c.Port(0).Outstanding() < n {
		if time.Now().After(deadline) {
			t.Fatalf("node 0 accepted only %d of %d ops", c.Port(0).Outstanding(), n)
		}
		time.Sleep(200 * time.Microsecond)
	}
	c.Crash(0)

	// Every pending operation completes through the failover endpoint.
	ctx := context.Background()
	for i, f := range futs {
		if _, err := f.Wait(ctx); err != nil {
			t.Fatalf("op %d never completed after failover: %v", i, err)
		}
	}

	// Exactly-once retry accounting: one connection failover, each of
	// the n pending ops re-sent exactly once.
	st := cl.Stats()
	if st.Retries != n {
		t.Fatalf("retries = %d, want %d (exactly once per pending op)", st.Retries, n)
	}
	if st.Failovers != 1 {
		t.Fatalf("failovers = %d, want 1", st.Failovers)
	}

	// No duplicate application: each surviving replica applied exactly n
	// writes, and every key holds its own sequence value.
	for _, node := range []int{1, 2} {
		var logLen uint64
		var vals [n][]byte
		c.Runner(node).Invoke(func() {
			logLen = c.Store(node).LogLen()
			for i := 0; i < n; i++ {
				vals[i] = c.Store(node).Read(uint64(i))
			}
		})
		if logLen != n {
			t.Fatalf("node %d applied %d writes, want %d (duplicate or lost application)", node, logLen, n)
		}
		for i := 0; i < n; i++ {
			if want := fmt.Sprintf("seq-%d", i); string(vals[i]) != want {
				t.Fatalf("node %d key %d = %q, want %q", node, i, vals[i], want)
			}
		}
	}

	// The client session remains usable against the surviving nodes
	// without further failovers: a Stale read is served from committed
	// state immediately (no extra consensus cycle at this long cycle
	// interval).
	val, err := cl.Get(ctx, n-1, client.WithConsistency(client.Stale))
	if err != nil || string(val) != fmt.Sprintf("seq-%d", n-1) {
		t.Fatalf("post-failover stale read = %q, %v", val, err)
	}
	if got := cl.Stats().Failovers; got != 1 {
		t.Fatalf("failovers after recovery = %d, want still 1", got)
	}
}

// TestSequentialFailoverMonotonic pins the session guarantee across a
// failover: after writing through one node and crashing it, a
// Sequential read through the failover endpoint observes the write
// (the session clock carries the commit cycle to the new replica).
func TestSequentialFailoverMonotonic(t *testing.T) {
	c, err := livecluster.Start(livecluster.Config{
		Nodes: 3,
		Node:  core.Config{CycleInterval: 2 * time.Millisecond, TickInterval: 2 * time.Millisecond},
		Seed:  13,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop(5 * time.Second)

	cl, err := client.New(client.Config{
		Endpoints: []string{c.ClientAddr(0), c.ClientAddr(1), c.ClientAddr(2)},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	ctx := context.Background()

	if err := cl.Put(ctx, 42, []byte("mine")); err != nil {
		t.Fatal(err)
	}
	if cl.LastCycle() == 0 {
		t.Fatal("session observed no commit cycle")
	}
	c.Crash(0)

	// The Sequential read fails over and must still observe the
	// session's write — the new replica serves it only once it has
	// committed the session's last observed cycle.
	val, err := cl.Get(ctx, 42, client.WithConsistency(client.Sequential))
	if err != nil || string(val) != "mine" {
		t.Fatalf("sequential read after failover = %q, %v", val, err)
	}
}

// TestBatchRoundTrip exercises the multi-op frame end to end through
// the public API.
func TestBatchRoundTrip(t *testing.T) {
	c, err := livecluster.Start(livecluster.Config{
		Nodes: 3,
		Node:  core.Config{CycleInterval: 2 * time.Millisecond, TickInterval: 2 * time.Millisecond},
		Seed:  17,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop(5 * time.Second)

	cl, err := client.New(client.Config{Endpoints: []string{c.ClientAddr(0)}})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	ctx := context.Background()

	res, err := cl.Batch(ctx, []client.Op{
		{Kind: client.OpPut, Key: 1, Val: []byte("a")},
		{Kind: client.OpPut, Key: 2, Val: []byte("b")},
		{Kind: client.OpGet, Key: 1, Consistency: client.Linearizable},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 3 || res[2].Err != nil || string(res[2].Val) != "a" {
		t.Fatalf("batch results: %+v", res)
	}
	if res[2].Cycle == 0 {
		t.Fatal("batch carried no commit cycle")
	}

	// Async form, mixed with a stale read.
	f := cl.BatchAsync([]client.Op{
		{Kind: client.OpGet, Key: 2, Consistency: client.Stale},
		{Kind: client.OpDelete, Key: 1},
	})
	res, err = f.Batch(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 2 || string(res[0].Val) != "b" || res[1].Err != nil {
		t.Fatalf("async batch results: %+v", res)
	}
	if _, err := cl.Get(ctx, 1); !errors.Is(err, client.ErrNotFound) {
		t.Fatalf("key 1 survived batch delete: %v", err)
	}
}
