package client

import (
	"context"
	"sync"

	"canopus/internal/wire"
)

// Event is one committed change observed by a watch: a put (OpPut, Val
// set) or a delete (OpDelete, Val nil).
type Event struct {
	Kind Kind
	Key  uint64
	Val  []byte
}

// WatchEvent is one committed cycle's matched changes, delivered in
// commit-cycle order with no gaps and no duplicates.
type WatchEvent struct {
	Cycle  uint64
	Events []Event
}

// Watch is a live change feed over a key or key prefix. Events arrive
// on the Events channel strictly in commit-cycle order; the client
// re-registers the watch transparently across connection failures and
// failovers, resuming from the last delivered cycle, so the feed stays
// exactly-once and gap-free. When that guarantee cannot be kept — the
// resume point aged out of the server's history, or the consumer fell
// behind its buffer — the channel closes and Err reports
// ErrWatchOverflow: re-read current state and start a fresh watch.
type Watch struct {
	cl   *Client
	id   uint64 // client-assigned; stable across reconnects
	key  uint64
	bits uint8

	ch chan WatchEvent

	mu       sync.Mutex
	cn       *conn  // registration connection; events from others are stale
	inflight bool   // a (re)registration frame is in flight
	last     uint64 // highest delivered (or server-acked) cycle
	err      error
	closed   bool
}

// watchCfg collects WatchOption settings.
type watchCfg struct {
	bits   uint8
	since  uint64
	buffer int
}

// WatchOption tweaks one Watch registration.
type WatchOption func(*watchCfg)

// WithPrefix widens the watch to every key sharing the top bits of the
// watched key: 64 (the default) matches exactly the key, 0 matches the
// whole keyspace.
func WithPrefix(bits uint8) WatchOption { return func(c *watchCfg) { c.bits = bits } }

// WithSince resumes the feed from a commit cycle (inclusive): retained
// history from that cycle on is replayed before live events. The
// registration fails with ErrWatchOverflow when the cycle has aged out
// of the server's history. Zero (the default) starts live-only.
func WithSince(cycle uint64) WatchOption { return func(c *watchCfg) { c.since = cycle } }

// WithBuffer sets the Events channel capacity, in cycles (default 64).
// A consumer that falls a full buffer behind overflows the watch.
func WithBuffer(n int) WatchOption {
	return func(c *watchCfg) {
		if n > 0 {
			c.buffer = n
		}
	}
}

// Watch registers a change feed over key and waits for the server's
// acknowledgement (which pins the resume watermark: every change
// committed after the returned registration is delivered or the watch
// overflows — never silently missed).
func (c *Client) Watch(ctx context.Context, key uint64, opts ...WatchOption) (*Watch, error) {
	cfg := watchCfg{bits: 64, buffer: 64}
	for _, o := range opts {
		o(&cfg)
	}
	w := &Watch{cl: c, key: key, bits: cfg.bits, ch: make(chan WatchEvent, cfg.buffer)}
	if cfg.since > 0 {
		w.last = cfg.since - 1
	}
	c.watchMu.Lock()
	c.watchCtr++
	w.id = c.watchCtr
	if c.watches == nil {
		c.watches = make(map[uint64]*Watch)
	}
	c.watches[w.id] = w
	c.watchMu.Unlock()

	w.mu.Lock()
	w.inflight = true
	w.mu.Unlock()
	f := newFuture(c.cfg.RequestTimeout)
	c.start(&pendingOp{wreg: w, wsince: cfg.since, fn: func(res Result, err error) {
		w.ack(res, err)
		f.complete(res, err)
	}})
	if _, err := f.Wait(ctx); err != nil {
		c.failWatch(w, err)
		return nil, err
	}
	return w, nil
}

// Events is the watch's delivery channel. It closes when the watch dies
// (Close, client Close, or overflow) — check Err after it closes.
func (w *Watch) Events() <-chan WatchEvent { return w.ch }

// Err reports why the watch died (nil while live, or after Close).
func (w *Watch) Err() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.err
}

// LastCycle reports the highest commit cycle the watch has delivered
// (or confirmed empty at registration) — the resume point a successor
// watch would continue from, exclusive.
func (w *Watch) LastCycle() uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.last
}

// Close cancels the watch: the Events channel closes, Err stays nil,
// and the server-side registration is released best-effort (a lost
// cancel only costs the server a dead registration until the
// connection closes).
func (w *Watch) Close() error {
	w.cl.watchMu.Lock()
	delete(w.cl.watches, w.id)
	w.cl.watchMu.Unlock()
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return nil
	}
	w.closed = true
	w.mu.Unlock()
	close(w.ch)
	w.cl.unwatchAsync(w.id)
	return nil
}

// ack completes one (re)registration round-trip: raise the resume
// watermark to the server's acknowledged cycle (replayed frames precede
// the ack on the wire, so everything at or below it has been delivered)
// and let future connection failures re-register again.
func (w *Watch) ack(res Result, err error) {
	if err != nil {
		w.cl.failWatch(w, err)
		return
	}
	w.mu.Lock()
	w.inflight = false
	if res.Cycle > w.last {
		w.last = res.Cycle
	}
	w.mu.Unlock()
}

// dispatchEvent routes one server-push EVENT frame to its watch. Only
// frames from the watch's current registration connection count: a
// retired predecessor still draining replies must not interleave its
// stale pushes with the new registration's replay. Within the live
// connection, cycles at or below the watermark are duplicates from a
// resume overlap and are dropped.
func (c *Client) dispatchEvent(cn *conn, resp *wire.ClientResponseV2) {
	c.watchMu.Lock()
	w := c.watches[resp.ID]
	c.watchMu.Unlock()
	if w == nil {
		return
	}
	w.mu.Lock()
	if w.closed || w.cn != cn {
		w.mu.Unlock()
		return
	}
	if resp.Overflow {
		w.mu.Unlock()
		c.failWatch(w, ErrWatchOverflow)
		return
	}
	if resp.Cycle <= w.last {
		w.mu.Unlock()
		return
	}
	evs := make([]Event, len(resp.Events))
	for i := range resp.Events {
		// Event values were copied out of the read buffer by the parser.
		evs[i] = Event{Kind: resp.Events[i].Op, Key: resp.Events[i].Key, Val: resp.Events[i].Val}
	}
	select {
	case w.ch <- WatchEvent{Cycle: resp.Cycle, Events: evs}:
		w.last = resp.Cycle
		w.mu.Unlock()
	default:
		// Consumer a full buffer behind: client-side overflow. Kill the
		// watch and release the server registration best-effort.
		w.mu.Unlock()
		c.failWatch(w, ErrWatchOverflow)
		c.unwatchAsync(w.id)
	}
}

// rewatch re-registers every watch whose registration connection died
// (or drained after retirement), resuming each from its watermark.
// Watches with a registration frame still in flight are skipped — the
// frame's own failover retry re-registers them.
func (c *Client) rewatch(cn *conn) {
	c.watchMu.Lock()
	ws := make([]*Watch, 0, len(c.watches))
	for _, w := range c.watches {
		ws = append(ws, w)
	}
	c.watchMu.Unlock()
	var again []*Watch
	var sinces []uint64
	for _, w := range ws {
		w.mu.Lock()
		if w.closed || w.inflight || w.cn != cn {
			w.mu.Unlock()
			continue
		}
		w.cn = nil
		w.inflight = true
		again = append(again, w)
		sinces = append(sinces, w.last+1)
		w.mu.Unlock()
	}
	if len(again) == 0 {
		return
	}
	// Off this goroutine: rewatch runs on the dead connection's reader or
	// writer, and start may need to dial.
	go func() {
		for i, w := range again {
			c.start(&pendingOp{wreg: w, wsince: sinces[i], fn: w.ack})
		}
	}()
}

// failWatch kills a watch: remove it from the registry, record why and
// close the channel. Idempotent; safe from any goroutine.
func (c *Client) failWatch(w *Watch, err error) {
	c.watchMu.Lock()
	delete(c.watches, w.id)
	c.watchMu.Unlock()
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return
	}
	w.closed = true
	w.err = err
	w.mu.Unlock()
	close(w.ch)
}

// setConn pins the watch to the connection its registration frame is
// being written to; called from enqueue.
func (w *Watch) setConn(cn *conn) {
	w.mu.Lock()
	w.cn = cn
	w.mu.Unlock()
}

// unwatchAsync releases a server-side watch registration best-effort,
// off the caller's goroutine (the send may need to dial).
func (c *Client) unwatchAsync(id uint64) {
	go c.start(&pendingOp{unwatch: true, unwatchID: id, fn: func(Result, error) {}})
}
