// Package pprofutil is the shared -cpuprofile/-memprofile plumbing for
// this repository's command-line binaries: one call at startup, one
// deferred stop, identical semantics everywhere.
package pprofutil

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Start begins the profiles selected by the (possibly empty) paths and
// returns a stop function to defer: it stops the CPU profile and writes
// the allocation profile (after a GC, so live objects are settled).
// Errors opening or starting a profile are returned immediately; errors
// during stop are reported to stderr — by then the process is exiting
// and the run's real work already succeeded.
func Start(cpuPath, memPath string) (stop func(), err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		cpuFile, err = os.Create(cpuPath)
		if err != nil {
			return nil, err
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, err
		}
	}
	return func() {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			cpuFile.Close()
		}
		if memPath == "" {
			return
		}
		f, err := os.Create(memPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "pprofutil:", err)
			return
		}
		defer f.Close()
		runtime.GC()
		if err := pprof.Lookup("allocs").WriteTo(f, 0); err != nil {
			fmt.Fprintln(os.Stderr, "pprofutil:", err)
		}
	}, nil
}
