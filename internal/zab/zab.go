// Package zab implements the ZooKeeper-style atomic broadcast baseline
// (Zab; Junqueira et al., DSN 2011) at the fidelity of the paper's
// evaluation: a fixed leader, a small set of voting followers, and any
// number of observers that receive committed transactions asynchronously
// without voting (§8.1.2: "ZooKeeper ... only five followers with the
// rest of the nodes set as observers").
//
// Writes are forwarded to the leader, proposed to the voters, committed
// on a majority of acks, then applied everywhere in zxid order; the
// originating node answers its clients when it applies its own batch.
// Reads are served locally and immediately — ZooKeeper's sequential (not
// linearizable) consistency, which is what the paper measures.
//
// Leader election and recovery are out of scope: the paper's runs never
// fail a ZooKeeper node.
package zab

import (
	"time"

	"canopus/internal/engine"
	"canopus/internal/wire"
)

const tagBatch uint8 = 1

// Config parameterizes one Zab node.
type Config struct {
	Self   wire.NodeID
	Leader wire.NodeID
	Voters []wire.NodeID // voting members, including the leader
	All    []wire.NodeID // every node (voters + observers)

	BatchDuration time.Duration // local write batching window (default 2ms)
	MaxBatch      int           // early flush threshold (default 1000)
}

func (c *Config) fill() {
	if c.BatchDuration == 0 {
		c.BatchDuration = 2 * time.Millisecond
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = 1000
	}
}

// StateMachine mirrors core.StateMachine.
type StateMachine interface {
	ApplyWrite(req *wire.Request)
	Read(key uint64) []byte
}

// Callbacks observe progress.
type Callbacks struct {
	// OnDeliver fires when a committed transaction applies at this node,
	// in zxid order.
	OnDeliver func(zxid uint64, b *wire.Batch)
	// OnReply fires at the batch's origin node per client request.
	OnReply func(req *wire.Request, val []byte)
}

// Node is one Zab participant.
type Node struct {
	cfg Config
	env engine.Env
	sm  StateMachine
	cbs Callbacks

	isLeader bool
	isVoter  bool

	// accumulating local writes
	reqs     []wire.Request
	fluid    wire.Batch
	hasFluid bool

	// leader state
	nextZxid uint64
	acks     map[uint64]int
	proposal map[uint64]*wire.Batch

	// replica state: transactions arrive FIFO from the leader, so a
	// simple in-order apply cursor suffices.
	applied uint64
	log     map[uint64]*wire.Batch
	commit  map[uint64]bool
}

var _ engine.Machine = (*Node)(nil)

// New builds a Zab node.
func New(cfg Config, sm StateMachine, cbs Callbacks) *Node {
	cfg.fill()
	n := &Node{
		cfg:      cfg,
		sm:       sm,
		cbs:      cbs,
		acks:     make(map[uint64]int),
		proposal: make(map[uint64]*wire.Batch),
		log:      make(map[uint64]*wire.Batch),
		commit:   make(map[uint64]bool),
	}
	n.isLeader = cfg.Self == cfg.Leader
	for _, v := range cfg.Voters {
		if v == cfg.Self {
			n.isVoter = true
		}
	}
	return n
}

// Init implements engine.Machine.
func (n *Node) Init(env engine.Env) {
	n.env = env
	env.After(n.cfg.BatchDuration, engine.Tag(tagBatch, 0))
}

// Timer implements engine.Machine.
func (n *Node) Timer(tag engine.TimerTag) {
	if engine.TagKind(tag) == tagBatch {
		n.flush()
		n.env.After(n.cfg.BatchDuration, engine.Tag(tagBatch, 0))
	}
}

// Submit accepts one client request. Reads answer immediately from local
// state; writes batch toward the leader.
func (n *Node) Submit(req wire.Request) {
	if req.Op == wire.OpRead {
		var val []byte
		if n.sm != nil {
			val = n.sm.Read(req.Key)
		}
		if n.cbs.OnReply != nil {
			n.cbs.OnReply(&req, val)
		}
		return
	}
	n.reqs = append(n.reqs, req)
	if len(n.reqs) >= n.cfg.MaxBatch {
		n.flush()
	}
}

// SubmitFluid accumulates aggregate writes (reads in fluid mode are
// handled by the workload layer entirely locally: they cost CPU but no
// messages).
func (n *Node) SubmitFluid(writes, bytes uint32, samples []wire.ArrivalSample) {
	n.hasFluid = true
	n.fluid.NumWrite += writes
	n.fluid.ByteSize += bytes
	n.fluid.Samples = append(n.fluid.Samples, samples...)
	if int(n.fluid.NumWrite) >= n.cfg.MaxBatch {
		n.flush()
	}
}

func (n *Node) flush() {
	var b *wire.Batch
	switch {
	case len(n.reqs) > 0:
		b = &wire.Batch{Origin: n.cfg.Self, Reqs: n.reqs, NumWrite: uint32(len(n.reqs))}
		n.reqs = nil
	case n.hasFluid:
		fl := n.fluid
		fl.Origin = n.cfg.Self
		b = &fl
		n.fluid = wire.Batch{}
		n.hasFluid = false
	default:
		return
	}
	if n.isLeader {
		n.propose(b)
		return
	}
	n.env.Send(n.cfg.Leader, &wire.ZabForward{From: n.cfg.Self, Batch: b})
}

// propose runs at the leader: assign the zxid and replicate to voters.
func (n *Node) propose(b *wire.Batch) {
	n.nextZxid++
	zxid := n.nextZxid
	n.proposal[zxid] = b
	n.acks[zxid] = 1 // self
	if len(n.cfg.Voters) == 1 {
		n.leaderCommit(zxid)
		return
	}
	msg := &wire.ZabPropose{Epoch: 1, Zxid: zxid, Batch: b}
	for _, v := range n.cfg.Voters {
		if v != n.cfg.Self {
			n.env.Send(v, msg)
		}
	}
}

// Recv implements engine.Machine.
func (n *Node) Recv(from wire.NodeID, m wire.Message) {
	switch v := m.(type) {
	case *wire.ZabForward:
		if n.isLeader {
			n.propose(v.Batch)
		}
	case *wire.ZabPropose:
		if n.isVoter && !n.isLeader {
			n.log[v.Zxid] = v.Batch
			n.env.Send(from, &wire.ZabAck{Epoch: v.Epoch, Zxid: v.Zxid, From: n.cfg.Self})
		}
	case *wire.ZabAck:
		if n.isLeader {
			n.onAck(v)
		}
	case *wire.ZabCommit:
		if n.isVoter && !n.isLeader {
			n.commit[v.Zxid] = true
			n.applyReady()
		}
	case *wire.ZabInform:
		if !n.isVoter {
			n.log[v.Zxid] = v.Batch
			n.commit[v.Zxid] = true
			n.applyReady()
		}
	}
}

func (n *Node) onAck(m *wire.ZabAck) {
	if _, ok := n.proposal[m.Zxid]; !ok {
		return
	}
	n.acks[m.Zxid]++
	if n.acks[m.Zxid] == len(n.cfg.Voters)/2+1 {
		n.leaderCommit(m.Zxid)
	}
}

// leaderCommit finalizes zxid at the leader: apply locally (in order),
// notify followers, inform observers.
func (n *Node) leaderCommit(zxid uint64) {
	b := n.proposal[zxid]
	delete(n.acks, zxid)
	delete(n.proposal, zxid)
	n.log[zxid] = b
	n.commit[zxid] = true
	n.applyReady()

	cm := &wire.ZabCommit{Epoch: 1, Zxid: zxid}
	inform := &wire.ZabInform{Epoch: 1, Zxid: zxid, Batch: b}
	for _, id := range n.cfg.All {
		if id == n.cfg.Self {
			continue
		}
		if n.voter(id) {
			n.env.Send(id, cm)
		} else {
			n.env.Send(id, inform)
		}
	}
}

func (n *Node) voter(id wire.NodeID) bool {
	for _, v := range n.cfg.Voters {
		if v == id {
			return true
		}
	}
	return false
}

// applyReady applies committed transactions in zxid order.
func (n *Node) applyReady() {
	for {
		next := n.applied + 1
		if !n.commit[next] {
			return
		}
		b := n.log[next]
		delete(n.log, next)
		delete(n.commit, next)
		n.applied = next
		if b == nil {
			continue
		}
		if b.Reqs != nil && n.sm != nil {
			for i := range b.Reqs {
				n.sm.ApplyWrite(&b.Reqs[i])
			}
		}
		if n.cbs.OnDeliver != nil {
			n.cbs.OnDeliver(next, b)
		}
		if b.Origin == n.cfg.Self && n.cbs.OnReply != nil && b.Reqs != nil {
			for i := range b.Reqs {
				n.cbs.OnReply(&b.Reqs[i], nil)
			}
		}
	}
}

// Applied returns the highest applied zxid.
func (n *Node) Applied() uint64 { return n.applied }

// IsLeader reports whether this node leads.
func (n *Node) IsLeader() bool { return n.isLeader }
