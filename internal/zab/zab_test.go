package zab

import (
	"testing"
	"time"

	"canopus/internal/kvstore"
	"canopus/internal/netsim"
	"canopus/internal/wire"
)

type zabCluster struct {
	sim     *netsim.Sim
	nodes   []*Node
	stores  []*kvstore.Store
	replies map[wire.NodeID][]wire.Request
}

// newZabCluster builds n nodes: node 0 leads, the first `voters` nodes
// vote, the rest observe.
func newZabCluster(t *testing.T, n, voters int) *zabCluster {
	t.Helper()
	sim := netsim.NewSim()
	topo := netsim.SingleDC(1, n, netsim.Params{})
	runner := netsim.NewRunner(sim, topo, netsim.DefaultCosts(), 5)
	all := make([]wire.NodeID, n)
	for i := range all {
		all[i] = wire.NodeID(i)
	}
	vs := all[:voters]
	c := &zabCluster{sim: sim, replies: make(map[wire.NodeID][]wire.Request)}
	for i := 0; i < n; i++ {
		id := wire.NodeID(i)
		st := kvstore.NewLogged()
		node := New(Config{Self: id, Leader: 0, Voters: vs, All: all}, st, Callbacks{
			OnReply: func(req *wire.Request, val []byte) {
				c.replies[id] = append(c.replies[id], *req)
			},
		})
		c.nodes = append(c.nodes, node)
		c.stores = append(c.stores, st)
		runner.Register(id, node)
	}
	return c
}

func w(client, seq, key, val uint64) wire.Request {
	return wire.Request{Client: client, Seq: seq, Op: wire.OpWrite, Key: key, Val: []byte{byte(val)}}
}

func TestLeaderWriteReachesAll(t *testing.T) {
	c := newZabCluster(t, 5, 3)
	c.sim.At(time.Millisecond, func() { c.nodes[0].Submit(w(1, 1, 10, 5)) })
	c.sim.RunUntil(200 * time.Millisecond)
	for i, st := range c.stores {
		if got := st.Read(10); len(got) != 1 || got[0] != 5 {
			t.Fatalf("node %d: key 10 = %v, want [5]", i, got)
		}
	}
}

func TestObserverForwardsWrites(t *testing.T) {
	c := newZabCluster(t, 7, 3)
	// Node 6 is an observer; its write must still commit everywhere.
	c.sim.At(time.Millisecond, func() { c.nodes[6].Submit(w(1, 1, 20, 9)) })
	c.sim.RunUntil(200 * time.Millisecond)
	for i, st := range c.stores {
		if got := st.Read(20); len(got) != 1 || got[0] != 9 {
			t.Fatalf("node %d: key 20 = %v, want [9]", i, got)
		}
	}
	// The observer answered its client.
	if len(c.replies[6]) != 1 {
		t.Fatalf("observer replies = %d, want 1", len(c.replies[6]))
	}
}

func TestTotalOrderAcrossOrigins(t *testing.T) {
	c := newZabCluster(t, 7, 3)
	for i := 0; i < 7; i++ {
		id := wire.NodeID(i)
		c.sim.At(time.Millisecond, func() { c.nodes[id].Submit(w(uint64(i+1), 1, 7, uint64(i+1))) })
	}
	c.sim.RunUntil(500 * time.Millisecond)
	// All nodes applied the same write sequence (same digest).
	want := c.stores[0].LogDigest()
	for i, st := range c.stores {
		if st.LogDigest() != want {
			t.Fatalf("node %d digest %x != %x", i, st.LogDigest(), want)
		}
		if st.LogLen() != 7 {
			t.Fatalf("node %d applied %d writes, want 7", i, st.LogLen())
		}
	}
}

func TestLocalReadsAnswerImmediately(t *testing.T) {
	c := newZabCluster(t, 5, 3)
	got := -1
	c.nodes[4].cbs.OnReply = func(req *wire.Request, val []byte) {
		if req.Op == wire.OpRead {
			got = len(val)
		}
	}
	c.sim.At(time.Millisecond, func() {
		c.nodes[4].Submit(wire.Request{Client: 1, Seq: 1, Op: wire.OpRead, Key: 99})
	})
	c.sim.RunUntil(10 * time.Millisecond)
	if got != 0 {
		t.Fatalf("read did not answer immediately from local (empty) state")
	}
}

func TestZxidOrderPreserved(t *testing.T) {
	c := newZabCluster(t, 5, 3)
	var delivered []uint64
	c.nodes[3].cbs.OnDeliver = func(zxid uint64, b *wire.Batch) {
		delivered = append(delivered, zxid)
	}
	for s := 1; s <= 20; s++ {
		seq := uint64(s)
		c.sim.At(time.Duration(s)*3*time.Millisecond, func() {
			c.nodes[1].Submit(w(1, seq, seq, seq))
		})
	}
	c.sim.RunUntil(time.Second)
	for i := 1; i < len(delivered); i++ {
		if delivered[i] != delivered[i-1]+1 {
			t.Fatalf("zxid order broken: %d after %d", delivered[i], delivered[i-1])
		}
	}
	if len(delivered) == 0 {
		t.Fatal("nothing delivered")
	}
}
