// Package engine defines the execution contract shared by every protocol
// implementation in this repository.
//
// Protocol engines (Canopus, Raft, EPaxos, Zab) are deterministic
// event-driven state machines: they react to messages and timers and emit
// messages and timers through an Env. The same machine code runs under
// two drivers:
//
//   - internal/netsim.Runner: virtual time, single goroutine, fully
//     deterministic — used by tests and the benchmark harness.
//   - internal/transport.Runner: wall-clock time, one goroutine per node,
//     real TCP — used by cmd/canopus-server and the live examples.
//
// A Machine must never block, sleep, or consult the wall clock directly;
// all time flows through Env.
package engine

import (
	"math/rand"
	"time"

	"canopus/internal/wire"
)

// NodeID aliases wire.NodeID so protocol packages can use a short name.
type NodeID = wire.NodeID

// TimerTag identifies a pending timer. Machines pack whatever routing
// information they need into the tag; tags are opaque to drivers.
type TimerTag uint64

// Env is the world a protocol machine runs in. All methods must be called
// only from within the machine's event handlers (drivers serialize all
// handler invocations per node).
type Env interface {
	// ID returns the node this environment belongs to.
	ID() NodeID
	// Now returns the current time. Under the simulator this is virtual
	// time since simulation start; under the live runner it is wall time
	// since process start. Only differences are meaningful.
	Now() time.Duration
	// Send delivers m to node to. Delivery is asynchronous, unordered
	// across destinations, FIFO per (src,dst) pair, and reliable while
	// both endpoints are alive (paper assumption A2: messages are
	// eventually delivered to a live receiver, and nodes fail by
	// crashing).
	Send(to NodeID, m wire.Message)
	// Multicast delivers m to every node in to. Under the simulator this
	// models switch-assisted replication: the sender serializes the
	// message once and the fabric fans it out (used by the
	// hardware-assisted broadcast variant of §4.3).
	Multicast(to []NodeID, m wire.Message)
	// After schedules a timer that fires tag on this machine after d.
	// Timers are one-shot and cannot be canceled; machines discard stale
	// tags themselves.
	After(d time.Duration, tag TimerTag)
	// Rand returns the node's deterministic random source (seeded by the
	// driver). Canopus draws proposal numbers from it.
	Rand() *rand.Rand
}

// Machine is an event-driven protocol participant.
type Machine interface {
	// Init is called exactly once before any other method, with the
	// environment the machine will run in.
	Init(env Env)
	// Recv handles one message from another node.
	Recv(from NodeID, m wire.Message)
	// Timer handles a timer previously scheduled with Env.After.
	Timer(tag TimerTag)
}

// Tag packs a timer kind and a payload value into a TimerTag. Kinds are
// per-machine namespaces; payloads are typically cycle numbers or retry
// counters.
func Tag(kind uint8, payload uint64) TimerTag {
	return TimerTag(uint64(kind)<<56 | payload&((1<<56)-1))
}

// TagKind extracts the kind from a timer tag.
func TagKind(t TimerTag) uint8 { return uint8(uint64(t) >> 56) }

// TagPayload extracts the payload from a timer tag.
func TagPayload(t TimerTag) uint64 { return uint64(t) & ((1 << 56) - 1) }
