package engine

import (
	"container/heap"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"canopus/internal/wire"
)

func TestTagRoundTrip(t *testing.T) {
	for _, tc := range []struct {
		kind    uint8
		payload uint64
	}{
		{0, 0},
		{1, 42},
		{255, 0},
		{7, 1<<56 - 1}, // max payload
		{255, 1<<56 - 1},
	} {
		tag := Tag(tc.kind, tc.payload)
		if got := TagKind(tag); got != tc.kind {
			t.Errorf("TagKind(Tag(%d, %d)) = %d", tc.kind, tc.payload, got)
		}
		if got := TagPayload(tag); got != tc.payload {
			t.Errorf("TagPayload(Tag(%d, %d)) = %d", tc.kind, tc.payload, got)
		}
	}
}

func TestTagPayloadMasksOverflow(t *testing.T) {
	// A payload wider than 56 bits must not corrupt the kind.
	tag := Tag(9, 1<<60|5)
	if TagKind(tag) != 9 || TagPayload(tag) != 5 {
		t.Fatalf("overflowing payload corrupted the tag: kind=%d payload=%d", TagKind(tag), TagPayload(tag))
	}
}

// ---- a minimal deterministic in-package driver ----
//
// testEnv implements Env just far enough to pin down the contract every
// real driver (netsim.Runner, transport.Runner) must satisfy: virtual
// time, per-(src,dst) FIFO delivery, timer ordering, and determinism
// given a fixed seed.

type tevent struct {
	at  time.Duration
	seq uint64
	fn  func()
}

type theap []tevent

func (h theap) Len() int { return len(h) }
func (h theap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h theap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *theap) Push(x interface{}) { *h = append(*h, x.(tevent)) }
func (h *theap) Pop() interface{} {
	old := *h
	e := old[len(old)-1]
	*h = old[:len(old)-1]
	return e
}

type testWorld struct {
	now   time.Duration
	seq   uint64
	queue theap
	envs  map[NodeID]*testEnv
	delay time.Duration
}

func newTestWorld(delay time.Duration, seed int64, ids ...NodeID) *testWorld {
	w := &testWorld{envs: make(map[NodeID]*testEnv), delay: delay}
	for _, id := range ids {
		w.envs[id] = &testEnv{
			w: w, id: id,
			rng: rand.New(rand.NewSource(seed + int64(id))),
		}
	}
	return w
}

func (w *testWorld) at(d time.Duration, fn func()) {
	if d < w.now {
		d = w.now
	}
	w.seq++
	heap.Push(&w.queue, tevent{at: d, seq: w.seq, fn: fn})
}

func (w *testWorld) run() {
	for len(w.queue) > 0 {
		e := heap.Pop(&w.queue).(tevent)
		w.now = e.at
		e.fn()
	}
}

func (w *testWorld) register(id NodeID, m Machine) {
	w.envs[id].m = m
	m.Init(w.envs[id])
}

type testEnv struct {
	w   *testWorld
	id  NodeID
	m   Machine
	rng *rand.Rand
}

func (e *testEnv) ID() NodeID         { return e.id }
func (e *testEnv) Now() time.Duration { return e.w.now }
func (e *testEnv) Rand() *rand.Rand   { return e.rng }
func (e *testEnv) Send(to NodeID, m wire.Message) {
	dst := e.w.envs[to]
	e.w.at(e.w.now+e.w.delay, func() { dst.m.Recv(e.id, m) })
}
func (e *testEnv) Multicast(to []NodeID, m wire.Message) {
	for _, id := range to {
		e.Send(id, m)
	}
}
func (e *testEnv) After(d time.Duration, tag TimerTag) {
	e.w.at(e.w.now+d, func() { e.m.Timer(tag) })
}

// traceMachine logs everything that happens to it.
type traceMachine struct {
	env   Env
	trace []string
	// onInit programs behaviour scheduled during Init.
	onInit func(m *traceMachine, env Env)
	// echo replies to each received Ping once.
	echo bool
}

func (m *traceMachine) Init(env Env) {
	m.env = env
	if m.onInit != nil {
		m.onInit(m, env)
	}
}

func (m *traceMachine) Recv(from NodeID, msg wire.Message) {
	p := msg.(*wire.Ping)
	m.trace = append(m.trace, fmt.Sprintf("%v:recv:%v:%d", m.env.Now(), from, p.Seq))
	if m.echo {
		m.env.Send(from, &wire.Ping{From: m.env.ID(), Seq: p.Seq + 100})
	}
}

func (m *traceMachine) Timer(tag TimerTag) {
	m.trace = append(m.trace, fmt.Sprintf("%v:timer:%d:%d", m.env.Now(), TagKind(tag), TagPayload(tag)))
}

func TestTimerOrdering(t *testing.T) {
	w := newTestWorld(time.Millisecond, 1, 0)
	m := &traceMachine{onInit: func(m *traceMachine, env Env) {
		// Scheduled out of order; must fire in time order, FIFO among
		// equal deadlines.
		env.After(5*time.Millisecond, Tag(1, 5))
		env.After(time.Millisecond, Tag(1, 1))
		env.After(3*time.Millisecond, Tag(1, 3))
		env.After(3*time.Millisecond, Tag(2, 3))
	}}
	w.register(0, m)
	w.run()
	want := []string{
		"1ms:timer:1:1",
		"3ms:timer:1:3",
		"3ms:timer:2:3",
		"5ms:timer:1:5",
	}
	if len(m.trace) != len(want) {
		t.Fatalf("trace = %v", m.trace)
	}
	for i := range want {
		if m.trace[i] != want[i] {
			t.Fatalf("timer order: trace[%d] = %q, want %q (full: %v)", i, m.trace[i], want[i], m.trace)
		}
	}
}

func TestMessageDeliveryFIFOAndEcho(t *testing.T) {
	w := newTestWorld(time.Millisecond, 1, 0, 1)
	a := &traceMachine{onInit: func(m *traceMachine, env Env) {
		env.Send(1, &wire.Ping{From: 0, Seq: 1})
		env.Send(1, &wire.Ping{From: 0, Seq: 2})
		env.Send(1, &wire.Ping{From: 0, Seq: 3})
	}}
	b := &traceMachine{echo: true}
	w.register(1, b) // register b first: init order must not matter for FIFO
	w.register(0, a)
	w.run()
	if len(b.trace) != 3 {
		t.Fatalf("b received %d messages, want 3: %v", len(b.trace), b.trace)
	}
	for i, want := range []string{"1ms:recv:n0:1", "1ms:recv:n0:2", "1ms:recv:n0:3"} {
		if b.trace[i] != want {
			t.Fatalf("per-pair FIFO violated: %v", b.trace)
		}
	}
	// Echoes return in the same order.
	for i, want := range []string{"2ms:recv:n1:101", "2ms:recv:n1:102", "2ms:recv:n1:103"} {
		if a.trace[i] != want {
			t.Fatalf("echo order violated: %v", a.trace)
		}
	}
}

func TestEnvDeterminism(t *testing.T) {
	run := func() ([]string, []uint64) {
		w := newTestWorld(time.Millisecond, 42, 0, 1)
		var draws []uint64
		a := &traceMachine{onInit: func(m *traceMachine, env Env) {
			for i := uint64(1); i <= 5; i++ {
				draws = append(draws, env.Rand().Uint64())
				env.Send(1, &wire.Ping{From: 0, Seq: i})
				env.After(time.Duration(i)*time.Millisecond, Tag(1, i))
			}
		}}
		b := &traceMachine{echo: true}
		w.register(0, a)
		w.register(1, b)
		w.run()
		return append(a.trace, b.trace...), draws
	}
	t1, d1 := run()
	t2, d2 := run()
	if len(t1) != len(t2) {
		t.Fatalf("trace lengths differ: %d vs %d", len(t1), len(t2))
	}
	for i := range t1 {
		if t1[i] != t2[i] {
			t.Fatalf("traces diverge at %d: %q vs %q", i, t1[i], t2[i])
		}
	}
	for i := range d1 {
		if d1[i] != d2[i] {
			t.Fatalf("rand streams diverge at %d", i)
		}
	}
}

func TestMulticastReachesAll(t *testing.T) {
	w := newTestWorld(time.Millisecond, 1, 0, 1, 2, 3)
	a := &traceMachine{onInit: func(m *traceMachine, env Env) {
		env.Multicast([]NodeID{1, 2, 3}, &wire.Ping{From: 0, Seq: 7})
	}}
	ms := []*traceMachine{a, {}, {}, {}}
	for i, m := range ms {
		w.register(NodeID(i), m)
	}
	w.run()
	for i := 1; i <= 3; i++ {
		if len(ms[i].trace) != 1 {
			t.Fatalf("node %d trace = %v", i, ms[i].trace)
		}
	}
}
