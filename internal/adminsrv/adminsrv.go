// Package adminsrv is the per-node HTTP admin gateway: the operations
// plane's on-ramp. Each node serves its own gateway (canopus-server
// -admin-addr) with four endpoints — /metrics (Prometheus text from the
// node's metrics.Registry), /healthz (readiness, "recovering" during WAL
// replay), /status (the admin.Status JSON document), and the admin verbs
// POST /snapshot and POST /chaos (the latter only when fault injection
// is enabled at boot).
//
// The gateway follows the client port's bind-early/accept-late shape,
// shifted one notch: it binds AND serves before recovery starts, but
// /healthz answers 503 "recovering" until SetPhase("ok"). A restarting
// node is therefore observable throughout replay — pollers see the phase
// flip rather than connection-refused.
package adminsrv

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"sync/atomic"
	"time"

	"canopus/admin"
	"canopus/internal/metrics"
)

// Config wires one node's data sources into its gateway. Registry and
// Status are required for their endpoints to be useful but may be nil
// (the endpoint then serves an empty document); Snapshot and Chaos are
// optional verbs — a nil Snapshot answers 404 (no WAL), a nil Chaos
// answers 403 (not enabled).
type Config struct {
	// Registry backs GET /metrics.
	Registry *metrics.Registry
	// Status backs GET /status. It may block briefly (it reads the
	// replica at a cycle boundary); it is never called before
	// SetPhase("ok").
	Status func() admin.Status
	// Node identifies the node in pre-recovery /status documents, before
	// the Status source is safe to call.
	Node int32
	// Snapshot backs POST /snapshot (wal.Manager.RequestSnapshot).
	Snapshot func() error
	// Chaos backs POST /chaos with the decoded action string. An action
	// that needs a backend the deployment was not started with should
	// return (a wrap of) ErrChaosUnavailable, which maps to 409 Conflict;
	// every other error maps to 400.
	Chaos func(action string) error
	// Degraded, when set, is consulted on every /healthz and /status
	// while the phase is "ok": a non-empty return (e.g. "stalled") makes
	// /healthz answer 503 with status "degraded: <reason>" and fills
	// Status.Degraded. It must be cheap and safe from any goroutine.
	Degraded func() string
}

// ErrChaosUnavailable marks a chaos action whose backing fabric is not
// enabled on this deployment (e.g. a partition verb without
// livecluster's Config.Chaos). The gateway maps it to 409 Conflict —
// the verb surface exists, the current configuration cannot honor it —
// distinct from the 403 of a gateway started without -admin-chaos.
var ErrChaosUnavailable = errors.New("chaos backend not enabled")

// Handler is the gateway's http.Handler with its readiness state; tests
// drive it through httptest without sockets.
type Handler struct {
	cfg   Config
	phase atomic.Value // string: "recovering" -> "ok"
	mux   *http.ServeMux
}

// NewHandler builds the gateway handler in the "recovering" phase.
func NewHandler(cfg Config) *Handler {
	h := &Handler{cfg: cfg, mux: http.NewServeMux()}
	h.phase.Store("recovering")
	h.mux.HandleFunc("GET /metrics", h.handleMetrics)
	h.mux.HandleFunc("GET /healthz", h.handleHealthz)
	h.mux.HandleFunc("GET /status", h.handleStatus)
	h.mux.HandleFunc("POST /snapshot", h.handleSnapshot)
	h.mux.HandleFunc("POST /chaos", h.handleChaos)
	return h
}

func (h *Handler) ServeHTTP(w http.ResponseWriter, r *http.Request) { h.mux.ServeHTTP(w, r) }

// SetPhase publishes the node's readiness ("ok" once recovery finished
// and the client port accepts connections).
func (h *Handler) SetPhase(phase string) { h.phase.Store(phase) }

// Phase returns the current readiness phase.
func (h *Handler) Phase() string { return h.phase.Load().(string) }

func (h *Handler) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if h.cfg.Registry == nil {
		return
	}
	h.cfg.Registry.WritePrometheus(w)
}

func (h *Handler) handleHealthz(w http.ResponseWriter, r *http.Request) {
	phase := h.Phase()
	code := http.StatusOK
	if phase != "ok" {
		code = http.StatusServiceUnavailable
	} else if reason := h.degraded(); reason != "" {
		// Serving but not making progress (stall detector): distinct
		// from recovery — the phase is ok, the protocol is wedged.
		code = http.StatusServiceUnavailable
		phase = "degraded: " + reason
	}
	writeJSON(w, code, admin.Health{Status: phase})
}

// degraded consults the optional liveness hook; "" when healthy.
func (h *Handler) degraded() string {
	if h.cfg.Degraded == nil {
		return ""
	}
	return h.cfg.Degraded()
}

func (h *Handler) handleStatus(w http.ResponseWriter, r *http.Request) {
	phase := h.Phase()
	if phase != "ok" || h.cfg.Status == nil {
		// Mid-recovery the replica is not readable at a cycle boundary;
		// serve the phase and identity so pollers can watch replay finish.
		writeJSON(w, http.StatusOK, admin.Status{Node: h.cfg.Node, Phase: phase})
		return
	}
	s := h.cfg.Status()
	s.Phase = phase
	if s.Degraded == "" {
		s.Degraded = h.degraded()
	}
	writeJSON(w, http.StatusOK, s)
}

func (h *Handler) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	if h.cfg.Snapshot == nil {
		http.Error(w, "no durable storage configured", http.StatusNotFound)
		return
	}
	if err := h.cfg.Snapshot(); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	// The snapshot is taken at the next group commit, not inline.
	w.WriteHeader(http.StatusAccepted)
	io.WriteString(w, "snapshot requested\n")
}

func (h *Handler) handleChaos(w http.ResponseWriter, r *http.Request) {
	if h.cfg.Chaos == nil {
		http.Error(w, "chaos injection not enabled (start with -admin-chaos)", http.StatusForbidden)
		return
	}
	var req struct {
		Action string `json:"action"`
	}
	body, err := io.ReadAll(io.LimitReader(r.Body, 1<<16))
	if err != nil || json.Unmarshal(body, &req) != nil || req.Action == "" {
		http.Error(w, `body must be {"action":"..."}`, http.StatusBadRequest)
		return
	}
	if err := h.cfg.Chaos(req.Action); err != nil {
		// Distinguish "this deployment has no fabric for that" (409) from
		// "that action is malformed" (400): callers probing for capability
		// should not read a conflict as their own mistake.
		code := http.StatusBadRequest
		if errors.Is(err, ErrChaosUnavailable) {
			code = http.StatusConflict
		}
		http.Error(w, err.Error(), code)
		return
	}
	fmt.Fprintf(w, "chaos action %q applied\n", req.Action)
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}

// Server is one node's bound, serving gateway.
type Server struct {
	*Handler
	ln   net.Listener
	http *http.Server
}

// Listen binds addr and serves the gateway immediately — before node
// recovery, per the package contract. Fail here is a boot error (bad
// address, port taken), surfaced before any recovery work starts.
func Listen(addr string, cfg Config) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("adminsrv: listen %s: %w", addr, err)
	}
	h := NewHandler(cfg)
	s := &Server{
		Handler: h,
		ln:      ln,
		http: &http.Server{
			Handler:           h,
			ReadHeaderTimeout: 5 * time.Second,
		},
	}
	go s.http.Serve(ln)
	return s, nil
}

// Addr returns the bound address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops the gateway, severing open connections.
func (s *Server) Close() error { return s.http.Close() }
