package adminsrv

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"canopus/admin"
	"canopus/internal/metrics"
)

func get(t *testing.T, h http.Handler, path string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodGet, path, nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec
}

func post(t *testing.T, h http.Handler, path, body string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodPost, path, strings.NewReader(body))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec
}

// TestHealthzPhases pins the bind-early contract: 503 "recovering" until
// SetPhase("ok"), then 200.
func TestHealthzPhases(t *testing.T) {
	h := NewHandler(Config{Node: 2})
	rec := get(t, h, "/healthz")
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("recovering /healthz = %d, want 503", rec.Code)
	}
	if !strings.Contains(rec.Body.String(), `"recovering"`) {
		t.Fatalf("recovering body = %q", rec.Body.String())
	}

	// /status during recovery still identifies the node.
	rec = get(t, h, "/status")
	if rec.Code != http.StatusOK || !strings.Contains(rec.Body.String(), `"node":2`) {
		t.Fatalf("recovering /status = %d %q", rec.Code, rec.Body.String())
	}

	h.SetPhase("ok")
	rec = get(t, h, "/healthz")
	if rec.Code != http.StatusOK || !strings.Contains(rec.Body.String(), `"ok"`) {
		t.Fatalf("ready /healthz = %d %q", rec.Code, rec.Body.String())
	}
}

// TestMetricsEndpoint serves a registry and checks the admin client's
// parser can read back what the encoder wrote.
func TestMetricsEndpoint(t *testing.T) {
	reg := metrics.NewRegistry()
	reg.Counter("canopus_test_total", "help", metrics.Label{Key: "node", Value: "0"}).Add(7)
	h := NewHandler(Config{Registry: reg})
	rec := get(t, h, "/metrics")
	if rec.Code != http.StatusOK {
		t.Fatalf("/metrics = %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("content type %q", ct)
	}
	series, err := admin.ParseMetrics(rec.Body)
	if err != nil {
		t.Fatal(err)
	}
	if series[`canopus_test_total{node="0"}`] != 7 {
		t.Fatalf("parsed series = %v", series)
	}
}

// TestStatusDocument checks the Status source is consulted only once
// ready and the JSON round-trips through the admin types.
func TestStatusDocument(t *testing.T) {
	h := NewHandler(Config{
		Node: 1,
		Status: func() admin.Status {
			return admin.Status{
				Node: 1, Applied: 41, Ordered: 42,
				StateDigest: "00000000000000ab", LogDigest: "00000000000000cd",
			}
		},
	})
	h.SetPhase("ok")
	srv := httptest.NewServer(h)
	defer srv.Close()

	c := admin.New(srv.URL)
	s, err := c.Status(t.Context())
	if err != nil {
		t.Fatal(err)
	}
	if s.Phase != "ok" || s.Applied != 41 || s.Ordered != 42 {
		t.Fatalf("status = %+v", s)
	}
	d, err := c.Digest(t.Context())
	if err != nil {
		t.Fatal(err)
	}
	if d.Cycle != 41 || d.State != 0xab || d.Log != 0xcd {
		t.Fatalf("digest = %+v", d)
	}
}

// TestSnapshotVerb pins the optional-verb semantics: 404 without a WAL,
// 202 with one.
func TestSnapshotVerb(t *testing.T) {
	h := NewHandler(Config{})
	if rec := post(t, h, "/snapshot", ""); rec.Code != http.StatusNotFound {
		t.Fatalf("no-WAL /snapshot = %d, want 404", rec.Code)
	}
	called := false
	h = NewHandler(Config{Snapshot: func() error { called = true; return nil }})
	if rec := post(t, h, "/snapshot", ""); rec.Code != http.StatusAccepted || !called {
		t.Fatalf("/snapshot = %d called=%v, want 202 true", rec.Code, called)
	}
}

// TestChaosVerb pins the gating: 403 unless enabled, 400 on bad
// action/body, 200 on success.
func TestChaosVerb(t *testing.T) {
	h := NewHandler(Config{})
	if rec := post(t, h, "/chaos", `{"action":"kill"}`); rec.Code != http.StatusForbidden {
		t.Fatalf("ungated /chaos = %d, want 403", rec.Code)
	}
	var got string
	h = NewHandler(Config{Chaos: func(a string) error {
		if a == "bogus" {
			return errors.New("unknown action")
		}
		got = a
		return nil
	}})
	if rec := post(t, h, "/chaos", `not json`); rec.Code != http.StatusBadRequest {
		t.Fatalf("bad body /chaos = %d, want 400", rec.Code)
	}
	if rec := post(t, h, "/chaos", `{"action":"bogus"}`); rec.Code != http.StatusBadRequest {
		t.Fatalf("unknown action /chaos = %d, want 400", rec.Code)
	}
	if rec := post(t, h, "/chaos", `{"action":"drop-replies"}`); rec.Code != http.StatusOK || got != "drop-replies" {
		t.Fatalf("/chaos = %d got=%q", rec.Code, got)
	}
}

// TestChaosVerbConflict pins the ErrChaosUnavailable mapping: an action
// whose backing fabric is missing answers 409 Conflict (capability
// problem), not 400 (caller problem) and not 500.
func TestChaosVerbConflict(t *testing.T) {
	h := NewHandler(Config{Chaos: func(a string) error {
		return fmt.Errorf("%w: cluster started without Config.Chaos", ErrChaosUnavailable)
	}})
	rec := post(t, h, "/chaos", `{"action":"partition:0|1"}`)
	if rec.Code != http.StatusConflict {
		t.Fatalf("fabric-less /chaos = %d, want 409", rec.Code)
	}
	if !strings.Contains(rec.Body.String(), "not enabled") {
		t.Fatalf("conflict body = %q", rec.Body.String())
	}
}

// TestDegradedHook pins the liveness surface: while the phase is "ok", a
// non-empty Degraded turns /healthz into 503 "degraded: <reason>" and
// fills Status.Degraded; recovery flips both back with no restart.
func TestDegradedHook(t *testing.T) {
	reason := ""
	h := NewHandler(Config{
		Node:     1,
		Status:   func() admin.Status { return admin.Status{Node: 1} },
		Degraded: func() string { return reason },
	})

	// Pre-ready the hook is irrelevant: recovery already reports 503.
	reason = "stalled"
	if rec := get(t, h, "/healthz"); !strings.Contains(rec.Body.String(), `"recovering"`) {
		t.Fatalf("recovering body = %q", rec.Body.String())
	}

	h.SetPhase("ok")
	rec := get(t, h, "/healthz")
	if rec.Code != http.StatusServiceUnavailable ||
		!strings.Contains(rec.Body.String(), `"degraded: stalled"`) {
		t.Fatalf("degraded /healthz = %d %q, want 503 degraded: stalled", rec.Code, rec.Body.String())
	}
	var s admin.Status
	if err := json.Unmarshal(get(t, h, "/status").Body.Bytes(), &s); err != nil || s.Degraded != "stalled" {
		t.Fatalf("degraded /status = %+v, %v", s, err)
	}

	reason = ""
	if rec := get(t, h, "/healthz"); rec.Code != http.StatusOK {
		t.Fatalf("recovered /healthz = %d, want 200", rec.Code)
	}
	var s2 admin.Status
	if err := json.Unmarshal(get(t, h, "/status").Body.Bytes(), &s2); err != nil || s2.Degraded != "" {
		t.Fatalf("recovered /status = %+v, %v", s2, err)
	}
}
