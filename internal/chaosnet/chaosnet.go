// Package chaosnet is the live chaos plane: a per-link TCP proxy fabric
// for injecting faults between real cluster processes.
//
// The fabric holds one proxy per *directed* peer pair (i→j): node i's
// transport dials proxy(i→j) instead of j's real listener, and the proxy
// forwards to j. Because every inter-node byte crosses its own proxy,
// impairments can be asymmetric (i→j broken while j→i flows) and
// per-link (one WAN span slow, the rest fast) — the failure shapes
// Canopus §6 and the RCanopus geo model care about, produced on real
// sockets instead of the simulator's virtual clock.
//
// Impairments, all runtime-switchable while connections are live:
//
//   - latency: one-way store-and-forward delay per link. WAN classes
//     reuse netsim's Metro/Regional/Continental/Intercontinental
//     constants so sim and live campaigns share one vocabulary.
//   - drop: probability per forwarded chunk of a hard connection reset
//     (TCP cannot lose bytes mid-stream without corrupting framing, so
//     loss manifests as resets — which is exactly what exercises the
//     transport's redial/backoff path).
//   - bandwidth: token-style throttle on forwarded bytes.
//   - partition: blackhole. Existing connections are killed; new ones
//     are accepted but nothing is forwarded and inbound bytes are
//     discarded, so the victim sees silence (the failure LeafTimeout
//     detects), not errors. Heal closes the blackholed zombies so
//     senders redial through the now-healthy path within one backoff.
//
// livecluster.Config.Chaos routes a live cluster's transport through a
// fabric; the admin gateway's POST /chaos and harness.LiveChaos script
// it via Apply's action grammar.
package chaosnet

import (
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"canopus/internal/netsim"
	"canopus/internal/wire"
)

// Config configures a fabric.
type Config struct {
	// Logf, when set, receives per-fault log lines.
	Logf func(format string, args ...any)
	// Seed seeds the drop-decision RNG (0 means 1). Drop timing over
	// real sockets is inherently nondeterministic; the seed only pins
	// the decision sequence.
	Seed int64
}

// Net is a fabric of directed-link proxies. All methods are safe for
// concurrent use.
type Net struct {
	logf func(format string, args ...any)

	mu     sync.Mutex
	links  map[linkKey]*link
	nodes  map[wire.NodeID]struct{}
	rng    *rand.Rand
	closed bool
}

type linkKey struct{ from, to wire.NodeID }

// New creates an empty fabric.
func New(cfg Config) *Net {
	logf := cfg.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	seed := cfg.Seed
	if seed == 0 {
		seed = 1
	}
	return &Net{
		logf:  logf,
		links: make(map[linkKey]*link),
		nodes: make(map[wire.NodeID]struct{}),
		rng:   rand.New(rand.NewSource(seed)),
	}
}

// AddLink creates the directed proxy from→to forwarding to upstream
// (to's real transport address) and returns the proxy's listen address,
// which belongs in from's peer table as the address "of" to.
func (n *Net) AddLink(from, to wire.NodeID, upstream string) (string, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", fmt.Errorf("chaosnet: listen for link %d->%d: %w", from, to, err)
	}
	l := &link{
		net:      n,
		from:     from,
		to:       to,
		upstream: upstream,
		ln:       ln,
		conns:    make(map[*linkConn]struct{}),
	}
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		ln.Close()
		return "", errors.New("chaosnet: fabric closed")
	}
	if _, dup := n.links[linkKey{from, to}]; dup {
		n.mu.Unlock()
		ln.Close()
		return "", fmt.Errorf("chaosnet: duplicate link %d->%d", from, to)
	}
	n.links[linkKey{from, to}] = l
	n.nodes[from] = struct{}{}
	n.nodes[to] = struct{}{}
	n.mu.Unlock()
	go l.serve()
	return ln.Addr().String(), nil
}

// Nodes returns the sorted set of node IDs that appear on any link.
func (n *Net) Nodes() []wire.NodeID {
	n.mu.Lock()
	defer n.mu.Unlock()
	out := make([]wire.NodeID, 0, len(n.nodes))
	for id := range n.nodes {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func (n *Net) forEachLink(fn func(*link)) {
	n.mu.Lock()
	ls := make([]*link, 0, len(n.links))
	for _, l := range n.links {
		ls = append(ls, l)
	}
	n.mu.Unlock()
	for _, l := range ls {
		fn(l)
	}
}

// SetLatency sets the one-way delay applied to bytes flowing from→to.
func (n *Net) SetLatency(from, to wire.NodeID, oneWay time.Duration) {
	if l := n.link(from, to); l != nil {
		l.latency.Store(int64(oneWay))
	}
}

// SetAllLatency sets the one-way delay on every link.
func (n *Net) SetAllLatency(oneWay time.Duration) {
	n.forEachLink(func(l *link) { l.latency.Store(int64(oneWay)) })
	n.logf("chaosnet: latency %v on all links", oneWay)
}

// SetDrop sets the probability, per forwarded chunk on the from→to
// link, of a forced connection reset. p is clamped to [0,1].
func (n *Net) SetDrop(from, to wire.NodeID, p float64) {
	if l := n.link(from, to); l != nil {
		l.dropPerMillion.Store(perMillion(p))
	}
}

// SetAllDrop sets the reset probability on every link.
func (n *Net) SetAllDrop(p float64) {
	pm := perMillion(p)
	n.forEachLink(func(l *link) { l.dropPerMillion.Store(pm) })
	n.logf("chaosnet: drop p=%g on all links", p)
}

// SetBandwidth throttles the from→to link to bytesPerSec (0 removes the
// throttle).
func (n *Net) SetBandwidth(from, to wire.NodeID, bytesPerSec int64) {
	if l := n.link(from, to); l != nil {
		l.bwBytesPerSec.Store(bytesPerSec)
	}
}

// ApplyDelayMatrix sets per-link latency from a DC-pair delay matrix
// (e.g. netsim.GeoWANDelay output): link i→j gets m[dc(i)][dc(j)].
func (n *Net) ApplyDelayMatrix(dc func(wire.NodeID) int, m [][]time.Duration) {
	n.forEachLink(func(l *link) {
		i, j := dc(l.from), dc(l.to)
		if i >= 0 && i < len(m) && j >= 0 && j < len(m[i]) {
			l.latency.Store(int64(m[i][j]))
		}
	})
	n.logf("chaosnet: applied %d-DC delay matrix", len(m))
}

// Partition blackholes every link between group a and group b, in both
// directions. Existing connections are reset; new ones are silently
// discarded until Heal.
func (n *Net) Partition(a, b []wire.NodeID) {
	inA, inB := idSet(a), idSet(b)
	n.forEachLink(func(l *link) {
		if (inA[l.from] && inB[l.to]) || (inB[l.from] && inA[l.to]) {
			l.block()
		}
	})
	n.logf("chaosnet: partition %v | %v", a, b)
}

// PartitionDirected blackholes only the links from group a to group b —
// an asymmetric partition: a's traffic to b vanishes while b can still
// reach a.
func (n *Net) PartitionDirected(a, b []wire.NodeID) {
	inA, inB := idSet(a), idSet(b)
	n.forEachLink(func(l *link) {
		if inA[l.from] && inB[l.to] {
			l.block()
		}
	})
	n.logf("chaosnet: partition (directed) %v -> %v", a, b)
}

// Isolate blackholes every link touching id, cutting it off in both
// directions.
func (n *Net) Isolate(id wire.NodeID) {
	n.forEachLink(func(l *link) {
		if l.from == id || l.to == id {
			l.block()
		}
	})
	n.logf("chaosnet: isolate node %d", id)
}

// Heal lifts every partition. Blackholed zombie connections are closed
// so senders redial through the healthy path; latency, drop and
// bandwidth settings are left in place.
func (n *Net) Heal() {
	n.forEachLink(func(l *link) { l.unblock() })
	n.logf("chaosnet: heal")
}

// Close shuts down every proxy and connection. The fabric cannot be
// reused.
func (n *Net) Close() {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return
	}
	n.closed = true
	ls := make([]*link, 0, len(n.links))
	for _, l := range n.links {
		ls = append(ls, l)
	}
	n.mu.Unlock()
	for _, l := range ls {
		l.close()
	}
}

func (n *Net) link(from, to wire.NodeID) *link {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.links[linkKey{from, to}]
}

func (n *Net) dropNow(pm int64) bool {
	if pm <= 0 {
		return false
	}
	n.mu.Lock()
	v := n.rng.Int63n(1_000_000)
	n.mu.Unlock()
	return v < pm
}

func perMillion(p float64) int64 {
	if p <= 0 {
		return 0
	}
	if p >= 1 {
		return 1_000_000
	}
	return int64(p * 1_000_000)
}

func idSet(ids []wire.NodeID) map[wire.NodeID]bool {
	m := make(map[wire.NodeID]bool, len(ids))
	for _, id := range ids {
		m[id] = true
	}
	return m
}

// link is one directed proxy.
type link struct {
	net      *Net
	from, to wire.NodeID
	upstream string
	ln       net.Listener

	latency        atomic.Int64 // one-way delay, ns
	dropPerMillion atomic.Int64 // reset probability per chunk, in 1e-6
	bwBytesPerSec  atomic.Int64 // 0 = unlimited
	blocked        atomic.Bool
	closed         atomic.Bool

	connMu sync.Mutex
	conns  map[*linkConn]struct{}
}

type linkConn struct {
	mu   sync.Mutex
	down net.Conn
	up   net.Conn
}

func (c *linkConn) setUp(up net.Conn) {
	c.mu.Lock()
	c.up = up
	c.mu.Unlock()
}

func (c *linkConn) close() {
	c.mu.Lock()
	down, up := c.down, c.up
	c.mu.Unlock()
	if down != nil {
		down.Close()
	}
	if up != nil {
		up.Close()
	}
}

func (l *link) serve() {
	for {
		c, err := l.ln.Accept()
		if err != nil {
			return
		}
		go l.handle(c)
	}
}

func (l *link) handle(down net.Conn) {
	lc := &linkConn{down: down}
	l.track(lc)
	defer l.untrack(lc)
	defer lc.close()

	if l.blocked.Load() {
		// Blackhole: swallow inbound bytes so the sender's writes keep
		// "succeeding" into silence. Heal/close kills the conn.
		io.Copy(io.Discard, down)
		return
	}
	up, err := net.DialTimeout("tcp", l.upstream, 2*time.Second)
	if err != nil {
		return
	}
	lc.setUp(up)
	done := make(chan struct{}, 1)
	go func() {
		// Return path (to→from replies on the same TCP stream): plain
		// forwarding; directed impairments live on the to→from link's
		// own proxy.
		io.Copy(down, up)
		lc.close()
		done <- struct{}{}
	}()
	l.forward(lc)
	<-done
}

// forward pumps down→up applying the link's impairments. Latency is
// store-and-forward through a delay queue so a burst of chunks shares
// one propagation delay instead of summing per-chunk sleeps.
func (l *link) forward(lc *linkConn) {
	type chunk struct {
		b   []byte
		due time.Time
	}
	ch := make(chan chunk, 256)
	go func() {
		defer close(ch)
		buf := make([]byte, 32*1024)
		for {
			n, err := lc.down.Read(buf)
			if n > 0 {
				if l.net.dropNow(l.dropPerMillion.Load()) {
					l.net.logf("chaosnet: reset link %d->%d", l.from, l.to)
					lc.close()
					return
				}
				b := make([]byte, n)
				copy(b, buf[:n])
				ch <- chunk{b, time.Now().Add(time.Duration(l.latency.Load()))}
			}
			if err != nil {
				return
			}
		}
	}()
	for c := range ch {
		if d := time.Until(c.due); d > 0 {
			time.Sleep(d)
		}
		if bw := l.bwBytesPerSec.Load(); bw > 0 {
			// Pace before writing so every chunk pays its transmission
			// time — the receiver cannot see byte N before N/bw.
			time.Sleep(time.Duration(int64(len(c.b)) * int64(time.Second) / bw))
		}
		if _, err := lc.up.Write(c.b); err != nil {
			lc.close()
			break
		}
	}
	for range ch { // unblock the reader if we bailed early
	}
}

func (l *link) track(lc *linkConn) {
	l.connMu.Lock()
	l.conns[lc] = struct{}{}
	l.connMu.Unlock()
}

func (l *link) untrack(lc *linkConn) {
	l.connMu.Lock()
	delete(l.conns, lc)
	l.connMu.Unlock()
}

func (l *link) closeConns() {
	l.connMu.Lock()
	cs := make([]*linkConn, 0, len(l.conns))
	for lc := range l.conns {
		cs = append(cs, lc)
	}
	l.connMu.Unlock()
	for _, lc := range cs {
		lc.close()
	}
}

func (l *link) block() {
	if !l.blocked.Swap(true) {
		l.closeConns()
	}
}

func (l *link) unblock() {
	if l.blocked.Swap(false) {
		// Any surviving conns on a blocked link are blackholed zombies;
		// kill them so the sender redials through the healthy proxy.
		l.closeConns()
	}
}

func (l *link) close() {
	if l.closed.Swap(true) {
		return
	}
	l.ln.Close()
	l.closeConns()
}

// latencyClasses maps action-grammar class names to netsim's WAN
// constants, keeping the sim and live vocabularies identical.
var latencyClasses = map[string]time.Duration{
	"metro":            netsim.MetroOneWay,
	"regional":         netsim.RegionalOneWay,
	"continental":      netsim.ContinentalOneWay,
	"intercontinental": netsim.IntercontinentalOneWay,
}

// Apply executes one control action against the fabric. The grammar is
// shared by the admin gateway's POST /chaos and the harness:
//
//	partition:1,2|3,4   blackhole between the two groups (both ways)
//	partition:2         isolate node 2 from everyone
//	heal                lift all partitions
//	latency:regional    one-way WAN class on every link (metro,
//	                    regional, continental, intercontinental)
//	latency:15ms        explicit one-way delay on every link
//	drop:0.05           per-chunk reset probability on every link
//	bandwidth:1048576   bytes/sec throttle on every link (0 = off)
func (n *Net) Apply(action string) error {
	verb, arg, _ := strings.Cut(action, ":")
	switch verb {
	case "heal":
		n.Heal()
		return nil
	case "partition":
		if !strings.Contains(arg, "|") {
			ids, err := parseIDs(arg)
			if err != nil {
				return err
			}
			if len(ids) != 1 {
				return fmt.Errorf("chaosnet: partition wants one node or two groups, got %q", arg)
			}
			n.Isolate(ids[0])
			return nil
		}
		left, right, _ := strings.Cut(arg, "|")
		a, err := parseIDs(left)
		if err != nil {
			return err
		}
		b, err := parseIDs(right)
		if err != nil {
			return err
		}
		n.Partition(a, b)
		return nil
	case "latency":
		if d, ok := latencyClasses[arg]; ok {
			n.SetAllLatency(d)
			return nil
		}
		d, err := time.ParseDuration(arg)
		if err != nil || d < 0 {
			return fmt.Errorf("chaosnet: latency wants a WAN class or duration, got %q", arg)
		}
		n.SetAllLatency(d)
		return nil
	case "drop":
		p, err := strconv.ParseFloat(arg, 64)
		if err != nil || p < 0 || p > 1 {
			return fmt.Errorf("chaosnet: drop wants a probability in [0,1], got %q", arg)
		}
		n.SetAllDrop(p)
		return nil
	case "bandwidth":
		bps, err := strconv.ParseInt(arg, 10, 64)
		if err != nil || bps < 0 {
			return fmt.Errorf("chaosnet: bandwidth wants bytes/sec, got %q", arg)
		}
		n.forEachLink(func(l *link) { l.bwBytesPerSec.Store(bps) })
		n.logf("chaosnet: bandwidth %d B/s on all links", bps)
		return nil
	default:
		return fmt.Errorf("chaosnet: unknown action %q", action)
	}
}

func parseIDs(s string) ([]wire.NodeID, error) {
	if s == "" {
		return nil, errors.New("chaosnet: empty node list")
	}
	parts := strings.Split(s, ",")
	out := make([]wire.NodeID, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil || v < 0 {
			return nil, fmt.Errorf("chaosnet: bad node id %q", p)
		}
		out = append(out, wire.NodeID(v))
	}
	return out, nil
}
