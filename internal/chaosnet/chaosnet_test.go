package chaosnet

import (
	"io"
	"net"
	"strings"
	"testing"
	"time"

	"canopus/internal/wire"
)

// echoServer accepts connections and echoes bytes back until closed.
func echoServer(t *testing.T) net.Listener {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			go func() {
				io.Copy(c, c)
				c.Close()
			}()
		}
	}()
	t.Cleanup(func() { ln.Close() })
	return ln
}

func newTestNet(t *testing.T) *Net {
	t.Helper()
	n := New(Config{Logf: t.Logf, Seed: 7})
	t.Cleanup(n.Close)
	return n
}

func dialT(t *testing.T, addr string) net.Conn {
	t.Helper()
	c, err := net.DialTimeout("tcp", addr, 2*time.Second)
	if err != nil {
		t.Fatalf("dial %s: %v", addr, err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

// roundTrip writes msg and reads len(msg) bytes back, failing on timeout.
func roundTrip(t *testing.T, c net.Conn, msg string) string {
	t.Helper()
	c.SetDeadline(time.Now().Add(5 * time.Second))
	if _, err := c.Write([]byte(msg)); err != nil {
		t.Fatalf("write: %v", err)
	}
	buf := make([]byte, len(msg))
	if _, err := io.ReadFull(c, buf); err != nil {
		t.Fatalf("read: %v", err)
	}
	return string(buf)
}

func TestProxyPassthrough(t *testing.T) {
	up := echoServer(t)
	n := newTestNet(t)
	addr, err := n.AddLink(0, 1, up.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	c := dialT(t, addr)
	if got := roundTrip(t, c, "hello chaos"); got != "hello chaos" {
		t.Fatalf("echo mismatch: %q", got)
	}
}

func TestLatencyDelaysForwarding(t *testing.T) {
	up := echoServer(t)
	n := newTestNet(t)
	addr, err := n.AddLink(0, 1, up.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	c := dialT(t, addr)
	roundTrip(t, c, "warm") // establish the upstream path un-delayed

	const oneWay = 60 * time.Millisecond
	n.SetLatency(0, 1, oneWay)
	start := time.Now()
	roundTrip(t, c, "delayed")
	if el := time.Since(start); el < oneWay {
		t.Fatalf("round trip %v did not include one-way delay %v", el, oneWay)
	}

	// Runtime-controllable: clearing the delay restores fast paths.
	n.SetLatency(0, 1, 0)
	start = time.Now()
	roundTrip(t, c, "fast again")
	if el := time.Since(start); el > oneWay {
		t.Fatalf("round trip %v still delayed after clearing latency", el)
	}
}

func TestPartitionBlackholesAndHealRestores(t *testing.T) {
	up := echoServer(t)
	n := newTestNet(t)
	addr, err := n.AddLink(0, 1, up.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	c := dialT(t, addr)
	roundTrip(t, c, "before")

	n.Partition([]wire.NodeID{0}, []wire.NodeID{1})

	// The established connection is reset.
	c.SetDeadline(time.Now().Add(2 * time.Second))
	buf := make([]byte, 1)
	if _, err := c.Read(buf); err == nil {
		t.Fatal("expected reset of existing connection after partition")
	}

	// A fresh dial succeeds (TCP accept) but is a silent blackhole:
	// writes land, nothing ever comes back.
	c2 := dialT(t, addr)
	if _, err := c2.Write([]byte("into the void")); err != nil {
		t.Fatalf("blackhole write should succeed: %v", err)
	}
	c2.SetReadDeadline(time.Now().Add(150 * time.Millisecond))
	if _, err := c2.Read(buf); err == nil {
		t.Fatal("blackhole returned data")
	}

	n.Heal()

	// Heal killed the zombie so the client notices and redials.
	c2.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, err := c2.Read(buf); err == nil {
		t.Fatal("expected zombie connection to be closed by heal")
	}
	c3 := dialT(t, addr)
	if got := roundTrip(t, c3, "after heal"); got != "after heal" {
		t.Fatalf("echo mismatch after heal: %q", got)
	}
}

func TestDropResetsConnections(t *testing.T) {
	up := echoServer(t)
	n := newTestNet(t)
	addr, err := n.AddLink(0, 1, up.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	n.SetDrop(0, 1, 1.0)
	c := dialT(t, addr)
	c.SetDeadline(time.Now().Add(2 * time.Second))
	c.Write([]byte("doomed"))
	buf := make([]byte, 1)
	if _, err := c.Read(buf); err == nil {
		t.Fatal("expected connection reset with drop probability 1")
	}

	// Clearing the probability restores the link for new connections.
	n.SetDrop(0, 1, 0)
	c2 := dialT(t, addr)
	if got := roundTrip(t, c2, "survives"); got != "survives" {
		t.Fatalf("echo mismatch after clearing drop: %q", got)
	}
}

func TestBandwidthThrottles(t *testing.T) {
	up := echoServer(t)
	n := newTestNet(t)
	addr, err := n.AddLink(0, 1, up.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	// 64 KiB at 256 KiB/s ≈ 250ms floor.
	n.SetBandwidth(0, 1, 256*1024)
	c := dialT(t, addr)
	payload := strings.Repeat("x", 64*1024)
	start := time.Now()
	roundTrip(t, c, payload)
	if el := time.Since(start); el < 150*time.Millisecond {
		t.Fatalf("64KiB crossed a 256KiB/s link in %v; throttle not applied", el)
	}
}

func TestDirectedPartitionIsAsymmetric(t *testing.T) {
	upA := echoServer(t)
	upB := echoServer(t)
	n := newTestNet(t)
	ab, err := n.AddLink(0, 1, upB.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	ba, err := n.AddLink(1, 0, upA.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	n.PartitionDirected([]wire.NodeID{0}, []wire.NodeID{1})

	// 0→1 is blackholed…
	c := dialT(t, ab)
	c.Write([]byte("lost"))
	c.SetReadDeadline(time.Now().Add(150 * time.Millisecond))
	if _, err := c.Read(make([]byte, 1)); err == nil {
		t.Fatal("0->1 should be blackholed")
	}
	// …while 1→0 still flows.
	c2 := dialT(t, ba)
	if got := roundTrip(t, c2, "reverse ok"); got != "reverse ok" {
		t.Fatalf("1->0 should be healthy, got %q", got)
	}
}

func TestApplyGrammar(t *testing.T) {
	up := echoServer(t)
	n := newTestNet(t)
	if _, err := n.AddLink(0, 1, up.Addr().String()); err != nil {
		t.Fatal(err)
	}
	if _, err := n.AddLink(1, 0, up.Addr().String()); err != nil {
		t.Fatal(err)
	}

	ok := []string{
		"heal",
		"partition:0|1",
		"partition:1",
		"heal",
		"latency:regional",
		"latency:15ms",
		"latency:0s",
		"drop:0.25",
		"drop:0",
		"bandwidth:1048576",
		"bandwidth:0",
	}
	for _, a := range ok {
		if err := n.Apply(a); err != nil {
			t.Fatalf("Apply(%q): %v", a, err)
		}
	}
	bad := []string{
		"", "explode", "partition:", "partition:a|b", "partition:1,2",
		"latency:warp", "drop:2", "drop:x", "bandwidth:-1",
	}
	for _, a := range bad {
		if err := n.Apply(a); err == nil {
			t.Fatalf("Apply(%q) should fail", a)
		}
	}

	// latency:regional actually landed on the links.
	if got := n.link(0, 1).latency.Load(); got != 0 {
		t.Fatalf("latency:0s should clear, got %d", got)
	}
	if err := n.Apply("latency:continental"); err != nil {
		t.Fatal(err)
	}
	if got := time.Duration(n.link(1, 0).latency.Load()); got != latencyClasses["continental"] {
		t.Fatalf("latency class not applied: %v", got)
	}

	if nodes := n.Nodes(); len(nodes) != 2 || nodes[0] != 0 || nodes[1] != 1 {
		t.Fatalf("Nodes() = %v", nodes)
	}
}
