package livecluster

import (
	"context"
	"fmt"
	"strings"
	"testing"
	"time"

	"canopus/admin"
	"canopus/internal/core"
	"canopus/internal/wal"
)

// family sums one metric family across whatever label sets a scrape
// returned.
func family(series map[string]float64, name string) float64 {
	var total float64
	for key, v := range series {
		n := key
		if j := strings.IndexByte(n, '{'); j >= 0 {
			n = n[:j]
		}
		if n == name {
			total += v
		}
	}
	return total
}

// TestAdminGatewayObservesLoad drives client traffic through a cluster
// with admin gateways and asserts the operations plane sees it: the
// cycle-commit counter and the applied watermark advance between
// scrapes, /status parses with live membership, and POST /snapshot is
// accepted on a durable deployment.
func TestAdminGatewayObservesLoad(t *testing.T) {
	disks := []*wal.MemFS{wal.NewMemFS(), wal.NewMemFS(), wal.NewMemFS()}
	c, err := Start(durableConfig(disks))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop(5 * time.Second)
	ctx := context.Background()
	gw := admin.New(c.AdminAddr(0))

	h, err := gw.Health(ctx)
	if err != nil || h.Status != "ok" {
		t.Fatalf("healthz = %+v, %v", h, err)
	}

	before, err := gw.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}

	cl := dialClient(t, c, 0)
	const n = 100
	for i := 0; i < n; i++ {
		if err := cl.Put(ctx, uint64(i), []byte(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatalf("put %d: %v", i, err)
		}
	}

	after, err := gw.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{
		"canopus_core_cycles_committed_total",
		"canopus_core_cycle_applied",
		"canopus_client_requests_total",
		"canopus_wal_appends_total",
	} {
		if family(after, name) <= family(before, name) {
			t.Errorf("%s did not advance under load: %v -> %v",
				name, family(before, name), family(after, name))
		}
	}
	if family(after, "canopus_client_requests_total") < n {
		t.Errorf("canopus_client_requests_total = %v, want >= %d",
			family(after, "canopus_client_requests_total"), n)
	}

	st, err := gw.Status(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Phase != "ok" || st.Applied == 0 || len(st.Membership) != 1 {
		t.Fatalf("status = %+v", st)
	}
	if got := len(st.Membership[0].Members); got != 3 {
		t.Fatalf("membership reports %d members, want 3", got)
	}
	if st.Durability == nil || st.Durability.DurableCycle == 0 {
		t.Fatalf("durable deployment reports no durability state: %+v", st.Durability)
	}

	// POST /snapshot sets the request flag; the durability goroutine
	// honors it at the next sync, so a snapshot appears even though the
	// cadence (4) may not have elapsed since the last one.
	snaps := func() float64 {
		series, err := gw.Metrics(ctx)
		if err != nil {
			t.Fatal(err)
		}
		return family(series, "canopus_wal_snapshots_total")
	}
	base := snaps()
	if err := gw.TriggerSnapshot(ctx); err != nil {
		t.Fatalf("trigger snapshot: %v", err)
	}
	if err := cl.Put(ctx, 9999, []byte("post-snap")); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for snaps() <= base {
		if time.Now().After(deadline) {
			t.Fatalf("snapshot count stuck at %v after POST /snapshot", base)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestAdminGatewayOffByDefault pins that clusters without Config.Admin
// spend nothing on the operations plane: no gateway listener, no
// registry.
func TestAdminGatewayOffByDefault(t *testing.T) {
	c, err := Start(Config{
		Nodes: 3,
		Node:  core.Config{CycleInterval: 2 * time.Millisecond, TickInterval: 2 * time.Millisecond},
		Seed:  7,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop(5 * time.Second)
	if addr := c.AdminAddr(0); addr != "" {
		t.Fatalf("admin gateway unexpectedly on at %s", addr)
	}
	if c.Registry() != nil {
		t.Fatal("registry allocated without Config.Admin or Config.Metrics")
	}
}
