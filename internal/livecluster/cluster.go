// Package livecluster boots real Canopus deployments in-process: N nodes
// on loopback TCP behind internal/transport runners (the same sockets
// cmd/canopus-server uses — not the simulator), each with a client port
// speaking the binary and text client protocols. The benchmark harness
// uses it to measure the live path; tests use it to exercise end-to-end
// client traffic and graceful shutdown.
package livecluster

import (
	"fmt"
	"path/filepath"
	"runtime"
	"strconv"
	"sync"
	"time"

	"canopus/admin"
	"canopus/internal/adminsrv"
	"canopus/internal/chaosnet"
	"canopus/internal/core"
	"canopus/internal/events"
	"canopus/internal/kvstore"
	"canopus/internal/lot"
	"canopus/internal/metrics"
	"canopus/internal/transport"
	"canopus/internal/wal"
	"canopus/internal/wire"
)

// Config shapes a loopback deployment.
type Config struct {
	// Nodes is the deployment size (required unless SuperLeaves is set).
	Nodes int
	// SuperLeaves groups node IDs into super-leaves; default is all
	// nodes in one super-leaf.
	SuperLeaves [][]wire.NodeID
	// Node is the per-node protocol configuration template (Tree and
	// Self are set by the cluster). Node.ApplyWorkers == 0 selects the
	// live default — the PARALLEL commit pipeline, sized to the host
	// (min(4, GOMAXPROCS) apply workers); set it negative to force the
	// serial in-turn commit path instead. (The simulator keeps serial as
	// its default: deterministic replay requires it. Live nodes have no
	// such constraint, and parallel apply is the production
	// configuration.)
	Node core.Config
	// StoreShards is the kvstore shard count per node (rounded up to a
	// power of two). 0 selects the default (8); shards let the commit
	// executor fan one cycle's bulk apply across workers.
	StoreShards int
	// Seed randomizes proposal numbers per node.
	Seed int64
	// LoggedStores gives every node an apply-order-logging store
	// (kvstore.NewShardedLogged) so tests can assert replica equality and
	// exactly-once application; off by default — the digest costs a hash
	// per mutation on the benchmarked hot path.
	LoggedStores bool
	// Logf receives transport log lines; default discards them (loopback
	// teardown noise is not interesting).
	Logf func(format string, args ...interface{})
	// DataDir, when set, gives every node a durable storage engine
	// (internal/wal): a group-commit WAL plus periodic snapshots under
	// DataDir/node-<id>, recovered from at Start before the node joins
	// consensus or accepts clients.
	DataDir string
	// DataFS overrides the per-node durability filesystem (tests use
	// wal.MemFS to model a disk surviving a restart without touching the
	// host). Non-nil enables durability even with an empty DataDir.
	DataFS func(i int) wal.FS
	// SnapshotCycles is the snapshot cadence in committed cycles
	// (wal.Options.SnapshotCycles; 0 selects the wal default).
	SnapshotCycles int
	// Metrics, when set, receives every node's instruments (labeled
	// node="<i>") — core watermarks, transport counters, WAL durability,
	// client-port traffic. The bench harness reads it to attribute
	// throughput to a pipeline stage.
	Metrics *metrics.Registry
	// Admin gives every node an HTTP admin gateway on a loopback
	// ephemeral port (see AdminAddr), serving the shared Metrics registry
	// (or a private one when Metrics is nil) plus /status and /healthz.
	Admin bool
	// Chaos routes every inter-node transport connection through a
	// chaosnet fabric: one TCP proxy per directed peer pair, so
	// partitions, WAN latency, resets and throttles can be injected at
	// runtime on real sockets (Cluster.Chaos). Client ports are not
	// proxied — chaos hits the replication path, not the client edge.
	Chaos bool
	// AdminChaos arms the gateways' POST /chaos verb (requires Admin)
	// with the chaosnet action grammar. Without Chaos the verb exists
	// but every action answers 409 Conflict.
	AdminChaos bool
	// OnEvicted, when set, fires from node i's machine turn when the
	// rest of the cluster evicts it (core.Callbacks.OnEvicted). It must
	// not block and must not call RestartNode inline — hand off to a
	// goroutine (RestartNode re-enters the runner's serialization lock).
	OnEvicted func(i int)
}

// ResolveApplyWorkers maps the user-facing apply-worker knob (a config
// field or a command-line flag) to a core.Config.ApplyWorkers value: 0
// selects the live default — the parallel pipeline sized to the host,
// min(4, GOMAXPROCS) workers — and a negative value selects the serial
// in-turn commit path. canopus-server and Start share this policy.
func ResolveApplyWorkers(n int) int {
	if n > 0 {
		return n
	}
	if n < 0 {
		return 0 // explicit serial mode
	}
	w := runtime.GOMAXPROCS(0)
	if w > 4 {
		w = 4
	}
	if w < 1 {
		w = 1
	}
	return w
}

// Cluster is a running loopback deployment.
type Cluster struct {
	Tree    *lot.Tree
	cfg     Config // normalized by Start (defaults resolved); RestartNode rebuilds from it
	shards  int
	runners []*transport.Runner
	ports   []*ClientPort
	reg     *metrics.Registry
	admins  []*adminsrv.Server // nil (or nil entries) when Admin is off
	chaos   *chaosnet.Net      // nil without Config.Chaos

	// mu guards the per-node slices below: RestartNode swaps entries
	// while the deployment is live (the runner, port, gateway and chaos
	// links persist across a restart; the protocol node does not).
	mu     sync.Mutex
	nodes  []*core.Node
	stores []*kvstore.Store
	hubs   []*events.Hub
	mgrs   []*wal.Manager // nil entries when durability is off
}

// Start boots the deployment: listeners first (so every node knows every
// address), then nodes, then client ports.
func Start(cfg Config) (*Cluster, error) {
	sls := cfg.SuperLeaves
	if sls == nil {
		if cfg.Nodes <= 0 {
			return nil, fmt.Errorf("livecluster: Nodes or SuperLeaves required")
		}
		all := make([]wire.NodeID, cfg.Nodes)
		for i := range all {
			all[i] = wire.NodeID(i)
		}
		sls = [][]wire.NodeID{all}
	}
	n := 0
	for _, sl := range sls {
		n += len(sl)
	}
	tree, err := lot.New(lot.Config{SuperLeaves: sls})
	if err != nil {
		return nil, fmt.Errorf("livecluster: %w", err)
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	logf := cfg.Logf
	if logf == nil {
		logf = func(string, ...interface{}) {}
	}

	cfg.SuperLeaves = sls
	cfg.Logf = logf
	c := &Cluster{Tree: tree, cfg: cfg, reg: cfg.Metrics}
	if c.reg == nil && cfg.Admin {
		// Gateways without a caller-supplied registry still serve a
		// fully-instrumented /metrics.
		c.reg = metrics.NewRegistry()
	}
	if cfg.Chaos {
		c.chaos = chaosnet.New(chaosnet.Config{Logf: logf, Seed: cfg.Seed})
	}
	// Each runner gets its OWN peer table: with chaos, node i's entry for
	// j is the i→j proxy's address, which is necessarily different per
	// direction. Tables are filled once every listener is bound (and
	// before RegisterMetrics — the per-peer gauges enumerate the table at
	// registration).
	peersFor := make([]map[wire.NodeID]string, n)
	for i := 0; i < n; i++ {
		peersFor[i] = make(map[wire.NodeID]string, n)
		r, err := transport.NewRunner(wire.NodeID(i), "127.0.0.1:0", peersFor[i], cfg.Seed)
		if err != nil {
			c.kill()
			return nil, err
		}
		r.Logf = logf
		c.runners = append(c.runners, r)
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			addr := c.runners[j].Addr().String()
			if c.chaos != nil && i != j {
				var err error
				if addr, err = c.chaos.AddLink(wire.NodeID(i), wire.NodeID(j), addr); err != nil {
					c.kill()
					return nil, fmt.Errorf("livecluster: %w", err)
				}
			}
			peersFor[i][wire.NodeID(j)] = addr
		}
	}
	shards := cfg.StoreShards
	if shards <= 0 {
		shards = 8
	}
	c.shards = shards
	durable := cfg.DataDir != "" || cfg.DataFS != nil
	for i := 0; i < n; i++ {
		nodeCfg := cfg.Node
		nodeCfg.Tree = tree
		nodeCfg.Self = wire.NodeID(i)
		nodeCfg.ApplyWorkers = ResolveApplyWorkers(nodeCfg.ApplyWorkers)
		st := kvstore.NewSharded(shards)
		if cfg.LoggedStores {
			st = kvstore.NewShardedLogged(shards)
		}
		var mgr *wal.Manager
		if durable {
			opts := wal.Options{Store: st, SnapshotCycles: cfg.SnapshotCycles}
			if cfg.DataFS != nil {
				opts.FS = cfg.DataFS(i)
			} else {
				opts.Dir = filepath.Join(cfg.DataDir, fmt.Sprintf("node-%d", i))
			}
			var err error
			if mgr, err = wal.Open(opts); err != nil {
				c.kill()
				return nil, fmt.Errorf("livecluster: node %d durability: %w", i, err)
			}
			nodeCfg.Durability = mgr
		}
		node := core.NewNode(nodeCfg, st, c.nodeCallbacks(i))
		c.stores = append(c.stores, st)
		c.nodes = append(c.nodes, node)
		c.mgrs = append(c.mgrs, mgr)
		if mgr != nil {
			// Recover before Attach (Init) and before the port accepts:
			// the node rejoins consensus and serves clients only from its
			// replayed state.
			if info, err := mgr.Recover(node); err != nil {
				c.kill()
				return nil, fmt.Errorf("livecluster: node %d recovery: %w", i, err)
			} else if info.Durable > 0 {
				logf("livecluster: node %d recovered to cycle %d (snapshot %d + %d replayed)",
					i, info.Durable, info.SnapshotCycle, info.Replayed)
			}
		}
		port, err := NewClientPort(c.runners[i], node, "127.0.0.1:0")
		if err != nil {
			c.kill()
			return nil, err
		}
		port.SetDigestFunc(c.digestSource(i))
		c.ports = append(c.ports, port)
		// The event hub attaches at the node's recovered watermark:
		// replayed cycles predate its view (their events never fired), so
		// the floor gates any resume into them. Wired before Attach so no
		// committed cycle can slip past the publish callback.
		hub := events.NewHub(events.Options{Floor: node.Committed()})
		node.SetOnEvents(hub.Publish)
		port.SetHub(hub)
		c.hubs = append(c.hubs, hub)
		if c.reg != nil {
			nodeLabel := metrics.Label{Key: "node", Value: strconv.Itoa(i)}
			node.RegisterMetrics(c.reg, nodeLabel)
			c.runners[i].RegisterMetrics(c.reg, nodeLabel)
			port.RegisterMetrics(c.reg, nodeLabel)
			hub.RegisterMetrics(c.reg, nodeLabel)
			if mgr != nil {
				mgr.RegisterMetrics(c.reg, nodeLabel)
			}
		}
		if cfg.Admin {
			srv, err := adminsrv.Listen("127.0.0.1:0", adminsrv.Config{
				Registry: c.reg,
				Node:     int32(i),
				Status:   c.statusSource(i),
				Snapshot: snapshotVerb(mgr),
				Chaos:    c.chaosVerb(),
				Degraded: c.degradedSource(i),
			})
			if err != nil {
				c.kill()
				return nil, fmt.Errorf("livecluster: node %d admin: %w", i, err)
			}
			c.admins = append(c.admins, srv)
		}
	}
	// Attach only after every client port exists, so no node commits
	// into a nil reply callback — and synchronously, so Submit works the
	// moment Start returns (the canopus.Cluster contract).
	for i := 0; i < n; i++ {
		c.runners[i].Attach(c.nodes[i])
	}
	for i := 0; i < n; i++ {
		go c.runners[i].Serve(nil)
		c.ports[i].AcceptClients()
	}
	for _, srv := range c.admins {
		srv.SetPhase("ok")
	}
	return c, nil
}

// snapshotVerb adapts an optional WAL manager to the gateway's POST
// /snapshot hook (nil manager disables the verb).
func snapshotVerb(mgr *wal.Manager) func() error {
	if mgr == nil {
		return nil
	}
	return func() error {
		mgr.RequestSnapshot()
		return nil
	}
}

// nodeCallbacks builds node i's core callbacks from the cluster config.
func (c *Cluster) nodeCallbacks(i int) core.Callbacks {
	cbs := core.Callbacks{}
	if c.cfg.OnEvicted != nil {
		cbs.OnEvicted = func() { c.cfg.OnEvicted(i) }
	}
	return cbs
}

// digestSource builds node i's DIGEST-verb source, resolving the current
// node and store on every call so an in-place restart (RestartNode) is
// picked up without rewiring the client port.
func (c *Cluster) digestSource(i int) func() (uint64, uint64, uint64) {
	return func() (uint64, uint64, uint64) {
		c.mu.Lock()
		node, st := c.nodes[i], c.stores[i]
		c.mu.Unlock()
		return DigestSource(c.runners[i], node, st)()
	}
}

// statusSource builds node i's /status source, resolving per call for
// the same reason as digestSource.
func (c *Cluster) statusSource(i int) func() admin.Status {
	return func() admin.Status {
		c.mu.Lock()
		node, st, mgr, hub := c.nodes[i], c.stores[i], c.mgrs[i], c.hubs[i]
		c.mu.Unlock()
		return StatusSource(c.runners[i], node, st, mgr, hub)()
	}
}

// degradedSource backs node i's gateway liveness hook: "stalled" while
// the node's stall detector (core.Config.StallThreshold) or hard-halt
// flag is raised, "" otherwise.
func (c *Cluster) degradedSource(i int) func() string {
	return func() string {
		c.mu.Lock()
		node := c.nodes[i]
		c.mu.Unlock()
		if node.StallSuspected() {
			return "stalled"
		}
		return ""
	}
}

// chaosVerb adapts the fabric to the gateways' POST /chaos. Nil (verb
// answers 403) unless AdminChaos; with the verb armed but no fabric,
// every action answers ErrChaosUnavailable (409) — the surface exists,
// this deployment cannot honor it.
func (c *Cluster) chaosVerb() func(string) error {
	if !c.cfg.AdminChaos {
		return nil
	}
	return func(action string) error {
		if c.chaos == nil {
			return fmt.Errorf("%w: cluster started without Config.Chaos", adminsrv.ErrChaosUnavailable)
		}
		return c.chaos.Apply(action)
	}
}

// Chaos returns the fault-injection fabric, nil without Config.Chaos.
func (c *Cluster) Chaos() *chaosnet.Net { return c.chaos }

// RestartNode replaces protocol node i in place: the old node is
// detached and closed, and a fresh joiner (core.NewJoiner) re-enters the
// running cluster through the §4.6 join protocol — state fetch, view
// adoption, readmission if the node was evicted. The transport runner,
// client port, admin gateway and chaos links all persist; only the
// protocol node, store and event hub are rebuilt, exactly as if the
// process had restarted with an empty disk. Not supported with
// durability (the WAL manager is bound to the original node's apply
// pipeline); restart durable nodes as real processes instead.
//
// Must not be called from a node callback or machine turn (it re-enters
// the runner's serialization lock via Attach).
func (c *Cluster) RestartNode(i int) error {
	c.mu.Lock()
	if c.mgrs[i] != nil {
		c.mu.Unlock()
		return fmt.Errorf("livecluster: RestartNode(%d): not supported with durability", i)
	}
	old := c.nodes[i]
	c.mu.Unlock()

	nodeCfg := c.cfg.Node
	nodeCfg.Tree = c.Tree
	nodeCfg.Self = wire.NodeID(i)
	nodeCfg.ApplyWorkers = ResolveApplyWorkers(nodeCfg.ApplyWorkers)
	st := kvstore.NewSharded(c.shards)
	if c.cfg.LoggedStores {
		st = kvstore.NewShardedLogged(c.shards)
	}
	node := core.NewJoiner(nodeCfg, st, c.nodeCallbacks(i))
	hub := events.NewHub(events.Options{Floor: node.Committed()})
	node.SetOnEvents(hub.Publish)

	c.mu.Lock()
	c.nodes[i], c.stores[i], c.hubs[i] = node, st, hub
	c.mu.Unlock()
	// Swap the client port first so no request reaches the dying node,
	// then attach the joiner (Init sends its JoinRequest through the
	// runner; the old node's armed timers die with it — transport drops
	// timers whose arming machine was replaced).
	c.ports[i].SetNode(node, hub)
	c.runners[i].Attach(node)
	old.Close()
	return nil
}

// NumNodes returns the deployment size.
func (c *Cluster) NumNodes() int { return len(c.nodes) }

// ClientAddr returns node i's client-port address.
func (c *Cluster) ClientAddr(i int) string { return c.ports[i].Addr() }

// Node returns protocol node i (for tests and tooling) — the current
// one, after any RestartNode.
func (c *Cluster) Node(i int) *core.Node {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.nodes[i]
}

// Store returns node i's local replica state (for tests and tooling).
// With the parallel commit pipeline the apply stage owns the store;
// foreign reads are only coherent through InspectStore.
func (c *Cluster) Store(i int) *kvstore.Store {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stores[i]
}

// InspectStore runs fn against node i's replica state with the apply
// pipeline quiesced: every cycle ordered at the time of the call has
// been applied, and no apply runs concurrently with fn. Tests use it to
// assert replica equality and exactly-once application regardless of
// the commit-pipeline mode. fn must not submit operations or block on
// cluster progress.
func (c *Cluster) InspectStore(i int, fn func(st *kvstore.Store)) {
	c.mu.Lock()
	node, st := c.nodes[i], c.stores[i]
	c.mu.Unlock()
	if node.ParallelApply() {
		node.InspectApplied(func() { fn(st) })
		return
	}
	c.runners[i].Invoke(func() { fn(st) })
}

// Port returns node i's client port.
func (c *Cluster) Port(i int) *ClientPort { return c.ports[i] }

// Durability returns node i's storage engine (nil when the cluster runs
// without DataDir/DataFS).
func (c *Cluster) Durability(i int) *wal.Manager {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.mgrs[i]
}

// Runner returns node i's transport runner.
func (c *Cluster) Runner(i int) *transport.Runner { return c.runners[i] }

// AdminAddr returns node i's admin-gateway address, or "" when the
// cluster was started without Config.Admin.
func (c *Cluster) AdminAddr(i int) string {
	if len(c.admins) == 0 {
		return ""
	}
	return c.admins[i].Addr()
}

// Registry returns the cluster's metrics registry: Config.Metrics when
// one was supplied, the private gateway registry under Config.Admin, nil
// otherwise.
func (c *Cluster) Registry() *metrics.Registry { return c.reg }

// Submit asynchronously executes one keyed operation at node's replica,
// implementing the canopus.Cluster interface over the same reply fan-out
// the socket clients use. done runs from the node's execution context —
// the apply executor in the default parallel mode, the machine turn in
// serial mode — and must not block; it receives the read value (nil for
// mutations and misses) and whether the operation was served; ok=false
// means the node is draining, stalled or crashed.
func (c *Cluster) Submit(node int, op wire.Op, key uint64, val []byte, done func(val []byte, ok bool)) {
	c.ports[node].SubmitLocal(op, key, val, done)
}

// Endpoint returns node's client-port address, implementing the
// canopus.Cluster interface: a canopus/client.Client pointed at the
// endpoints drives this deployment over real sockets.
func (c *Cluster) Endpoint(node int) string { return c.ports[node].Addr() }

// RegisterSession commits a fresh replicated client session through
// node, implementing the canopus.SessionCluster interface. done runs
// from the node's machine turn (it must not block) with the session ID
// every replica now knows; ok=false means the node could not commit it.
func (c *Cluster) RegisterSession(node int, done func(id uint64, ok bool)) {
	c.ports[node].RegisterLocal(done)
}

// SubmitSession executes one session-scoped operation at node's replica,
// implementing the canopus.SessionCluster interface: a mutation carrying
// a (session, seq) that already committed — a retry after a lost reply —
// completes with the cached result instead of applying twice. done runs
// from the node's execution context (see Submit); ok=false means the
// node is draining, stalled, crashed, or the session has expired.
func (c *Cluster) SubmitSession(node int, session, seq uint64, op wire.Op, key uint64, val []byte, done func(val []byte, ok bool)) {
	c.ports[node].SubmitSessionLocal(session, seq, op, key, val, done)
}

// SubmitTxn executes one multi-op transaction at node's replica,
// implementing the canopus.EventCluster interface. body is the encoded
// transaction (wire.AppendTxn); done receives the encoded
// wire.TxnResult. A non-zero session makes the txn exactly-once across
// retries via the replicated (session, seq) identity; session 0 submits
// at-most-once. done runs from the node's execution context (see
// Submit) and must not block.
func (c *Cluster) SubmitTxn(node int, session, seq uint64, body []byte, done func(val []byte, ok bool)) {
	c.ports[node].SubmitSessionLocal(session, seq, wire.OpTxn, 0, body, done)
}

// Hub returns node i's event hub (the current one, after any
// RestartNode).
func (c *Cluster) Hub(i int) *events.Hub {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hubs[i]
}

// Watch registers a watch on node's event hub, implementing the
// canopus.EventCluster interface. The sink runs on the node's apply
// executor and must not block; see events.Hub.Watch for the resume and
// overflow contract.
func (c *Cluster) Watch(node int, spec events.Spec, sink events.Sink) (uint64, error) {
	return c.Hub(node).Watch(spec, sink)
}

// Unwatch cancels a watch registered through Watch.
func (c *Cluster) Unwatch(node int, id uint64) {
	c.Hub(node).Cancel(id)
}

// Close implements the canopus.Cluster lifecycle: a bounded graceful
// stop (see Stop for the drain semantics).
func (c *Cluster) Close() error {
	c.Stop(5 * time.Second)
	return nil
}

// Crash fails node i crash-stop: its client port drops every connection
// without draining and its transport closes. The rest of the deployment
// keeps running (and keeps committing while the super-leaf retains a
// broadcast majority); clients connected to the node observe a broken
// connection, exactly as if the process died.
func (c *Cluster) Crash(i int) {
	c.ports[i].Abort()
	c.runners[i].Close()
	// The transport is closed (no further machine turns); release the
	// node's apply executor. Queued cycles finish applying first, so a
	// post-mortem Store inspection still sees everything ordered here.
	c.Node(i).Close()
}

// Stop shuts the deployment down gracefully: drain every client port
// (answer in-flight requests), flush transports, then close. It reports
// whether all ports drained inside the per-port timeout.
func (c *Cluster) Stop(drain time.Duration) bool {
	drained := true
	for _, p := range c.ports {
		if !p.Stop(drain) {
			drained = false
		}
	}
	for _, r := range c.runners {
		r.Drain(time.Second)
	}
	c.kill()
	return drained
}

func (c *Cluster) kill() {
	for _, srv := range c.admins {
		srv.Close()
	}
	for _, r := range c.runners {
		r.Close()
	}
	if c.chaos != nil {
		c.chaos.Close()
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, n := range c.nodes {
		n.Close()
	}
	// Node.Close released each apply executor (flushing its durability
	// batch), so the managers can close their segments cleanly.
	for _, m := range c.mgrs {
		if m != nil {
			m.Close()
		}
	}
}
