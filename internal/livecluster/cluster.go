// Package livecluster boots real Canopus deployments in-process: N nodes
// on loopback TCP behind internal/transport runners (the same sockets
// cmd/canopus-server uses — not the simulator), each with a client port
// speaking the binary and text client protocols. The benchmark harness
// uses it to measure the live path; tests use it to exercise end-to-end
// client traffic and graceful shutdown.
package livecluster

import (
	"fmt"
	"time"

	"canopus/internal/core"
	"canopus/internal/kvstore"
	"canopus/internal/lot"
	"canopus/internal/transport"
	"canopus/internal/wire"
)

// Config shapes a loopback deployment.
type Config struct {
	// Nodes is the deployment size (required unless SuperLeaves is set).
	Nodes int
	// SuperLeaves groups node IDs into super-leaves; default is all
	// nodes in one super-leaf.
	SuperLeaves [][]wire.NodeID
	// Node is the per-node protocol configuration template (Tree and
	// Self are set by the cluster).
	Node core.Config
	// Seed randomizes proposal numbers per node.
	Seed int64
	// Logf receives transport log lines; default discards them (loopback
	// teardown noise is not interesting).
	Logf func(format string, args ...interface{})
}

// Cluster is a running loopback deployment.
type Cluster struct {
	Tree    *lot.Tree
	runners []*transport.Runner
	nodes   []*core.Node
	stores  []*kvstore.Store
	ports   []*ClientPort
}

// Start boots the deployment: listeners first (so every node knows every
// address), then nodes, then client ports.
func Start(cfg Config) (*Cluster, error) {
	sls := cfg.SuperLeaves
	if sls == nil {
		if cfg.Nodes <= 0 {
			return nil, fmt.Errorf("livecluster: Nodes or SuperLeaves required")
		}
		all := make([]wire.NodeID, cfg.Nodes)
		for i := range all {
			all[i] = wire.NodeID(i)
		}
		sls = [][]wire.NodeID{all}
	}
	n := 0
	for _, sl := range sls {
		n += len(sl)
	}
	tree, err := lot.New(lot.Config{SuperLeaves: sls})
	if err != nil {
		return nil, fmt.Errorf("livecluster: %w", err)
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	logf := cfg.Logf
	if logf == nil {
		logf = func(string, ...interface{}) {}
	}

	c := &Cluster{Tree: tree}
	peers := make(map[wire.NodeID]string, n)
	for i := 0; i < n; i++ {
		r, err := transport.NewRunner(wire.NodeID(i), "127.0.0.1:0", peers, cfg.Seed)
		if err != nil {
			c.kill()
			return nil, err
		}
		r.Logf = logf
		peers[wire.NodeID(i)] = r.Addr().String()
		c.runners = append(c.runners, r)
	}
	for i := 0; i < n; i++ {
		nodeCfg := cfg.Node
		nodeCfg.Tree = tree
		nodeCfg.Self = wire.NodeID(i)
		st := kvstore.New()
		node := core.NewNode(nodeCfg, st, core.Callbacks{})
		c.stores = append(c.stores, st)
		c.nodes = append(c.nodes, node)
		port, err := NewClientPort(c.runners[i], node, "127.0.0.1:0")
		if err != nil {
			c.kill()
			return nil, err
		}
		c.ports = append(c.ports, port)
	}
	// Attach and serve only after every client port exists, so no node
	// commits into a nil reply callback.
	for i := 0; i < n; i++ {
		go c.runners[i].Serve(c.nodes[i])
	}
	return c, nil
}

// NumNodes returns the deployment size.
func (c *Cluster) NumNodes() int { return len(c.nodes) }

// ClientAddr returns node i's client-port address.
func (c *Cluster) ClientAddr(i int) string { return c.ports[i].Addr() }

// Node returns protocol node i (for tests and tooling).
func (c *Cluster) Node(i int) *core.Node { return c.nodes[i] }

// Port returns node i's client port.
func (c *Cluster) Port(i int) *ClientPort { return c.ports[i] }

// Runner returns node i's transport runner.
func (c *Cluster) Runner(i int) *transport.Runner { return c.runners[i] }

// Stop shuts the deployment down gracefully: drain every client port
// (answer in-flight requests), flush transports, then close. It reports
// whether all ports drained inside the per-port timeout.
func (c *Cluster) Stop(drain time.Duration) bool {
	drained := true
	for _, p := range c.ports {
		if !p.Stop(drain) {
			drained = false
		}
	}
	for _, r := range c.runners {
		r.Drain(time.Second)
	}
	c.kill()
	return drained
}

func (c *Cluster) kill() {
	for _, r := range c.runners {
		r.Close()
	}
}
