package livecluster

import (
	"sync"
	"testing"
	"time"

	"canopus/client"
	"canopus/internal/core"
	"canopus/internal/kvstore"
	"canopus/internal/workload"
)

// driveMixed pushes a seeded mixed workload (reads, writes, deletes,
// weak-consistency reads) through every node of the cluster and waits
// for completion.
func driveMixed(t *testing.T, c *Cluster, perClient int) {
	t.Helper()
	var wg sync.WaitGroup
	for n := 0; n < c.NumNodes(); n++ {
		cl := dialClient(t, c, n)
		defer cl.Close()
		wg.Add(1)
		go func(n int, cl *client.Client) {
			defer wg.Done()
			for i := 0; i < perClient; i++ {
				key := uint64((i*7 + n*13) % 64)
				var f *client.Future
				switch i % 5 {
				case 0, 1:
					f = cl.PutAsync(key, []byte{byte(n), byte(i), byte(i >> 8)})
				case 2:
					f = cl.DeleteAsync(key)
				case 3:
					f = cl.GetAsync(key)
				default:
					f = cl.GetAsync(key, client.WithConsistency(client.Stale))
				}
				if i%8 == 7 { // keep a bounded pipeline
					f.Wait(t.Context())
				}
			}
		}(n, cl)
	}
	wg.Wait()
}

// TestParallelReplicaEquality is the live acceptance test for the
// parallel commit pipeline: a cluster running the sharded store with
// background apply executors serves a mixed workload from every node,
// and after a drain every replica holds an identical apply log and
// state (digest equality across replicas with equal shard counts).
func TestParallelReplicaEquality(t *testing.T) {
	c, err := Start(Config{
		Nodes: 3,
		Node: core.Config{
			CycleInterval: 2 * time.Millisecond,
			TickInterval:  2 * time.Millisecond,
			ApplyWorkers:  4, // force multi-worker fan-out even on 1-CPU hosts
		},
		StoreShards:  8,
		Seed:         31,
		LoggedStores: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop(5 * time.Second)
	for i := 0; i < c.NumNodes(); i++ {
		if !c.Node(i).ParallelApply() {
			t.Fatalf("node %d is not running the parallel pipeline", i)
		}
	}

	driveMixed(t, c, 400)

	// Wait until every node has ordered AND applied the same cycle, then
	// compare digests under the apply stage's own serialization.
	deadline := time.Now().Add(10 * time.Second)
	for {
		high := uint64(0)
		for i := 0; i < c.NumNodes(); i++ {
			if o := c.Node(i).Ordered(); o > high {
				high = o
			}
		}
		caughtUp := true
		for i := 0; i < c.NumNodes(); i++ {
			c.Node(i).DrainApply()
			if c.Node(i).Committed() < high {
				caughtUp = false
			}
		}
		if caughtUp {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("replicas never converged on a committed cycle")
		}
		time.Sleep(2 * time.Millisecond)
	}

	type digest struct {
		logLen, logDigest, stateDigest uint64
	}
	var ref digest
	for i := 0; i < c.NumNodes(); i++ {
		var d digest
		c.InspectStore(i, func(st *kvstore.Store) {
			if st.NumShards() != 8 {
				t.Errorf("node %d store has %d shards, want 8", i, st.NumShards())
			}
			d = digest{st.LogLen(), st.LogDigest(), st.StateDigest()}
		})
		if i == 0 {
			ref = d
			if ref.logLen == 0 {
				t.Fatal("reference replica applied nothing")
			}
			continue
		}
		if d != ref {
			t.Fatalf("replica %d diverged: %+v vs %+v", i, d, ref)
		}
	}
}

// TestParallelWatermarks pins the ordered-vs-applied watermark contract
// under live load: Ordered() never trails Committed(), and a DrainApply
// converges them.
func TestParallelWatermarks(t *testing.T) {
	c, err := Start(Config{
		Nodes: 3,
		Node: core.Config{
			CycleInterval: 2 * time.Millisecond,
			TickInterval:  2 * time.Millisecond,
		},
		Seed: 33,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop(5 * time.Second)

	stop := make(chan struct{})
	var violations int
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			for i := 0; i < c.NumNodes(); i++ {
				n := c.Node(i)
				// Load order matters: a commit between the two loads can
				// only make Ordered read higher, never lower.
				applied := n.Committed()
				if n.Ordered() < applied {
					violations++
				}
			}
			time.Sleep(100 * time.Microsecond)
		}
	}()

	conns := make([]workload.Doer, c.NumNodes())
	for i := range conns {
		cl := dialClient(t, c, i)
		defer cl.Close()
		conns[i] = doerAdapter{cl}
	}
	res := workload.RunLive(workload.LiveConfig{
		Concurrency: 16, Duration: 500 * time.Millisecond, WriteRatio: 0.5, Seed: 5,
	}, conns)
	close(stop)
	wg.Wait()
	if res.Failed != 0 || res.Lost != 0 {
		t.Fatalf("workload failed=%d lost=%d", res.Failed, res.Lost)
	}
	if violations != 0 {
		t.Fatalf("observed %d Ordered() < Committed() violations", violations)
	}
	for i := 0; i < c.NumNodes(); i++ {
		c.Node(i).DrainApply()
		if o, a := c.Node(i).Ordered(), c.Node(i).Committed(); a < o {
			t.Fatalf("node %d: applied %d trails ordered %d after drain", i, a, o)
		}
	}
}

// TestSerialModeStillServes pins the ApplyWorkers escape hatch: a
// negative value selects the historical in-turn commit path, and the
// cluster serves a full workload with replies accounted for.
func TestSerialModeStillServes(t *testing.T) {
	c, err := Start(Config{
		Nodes: 3,
		Node: core.Config{
			CycleInterval: 2 * time.Millisecond,
			TickInterval:  2 * time.Millisecond,
			ApplyWorkers:  -1,
		},
		Seed: 35,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop(5 * time.Second)
	for i := 0; i < c.NumNodes(); i++ {
		if c.Node(i).ParallelApply() {
			t.Fatalf("node %d runs the parallel pipeline despite ApplyWorkers=-1", i)
		}
	}
	conns := make([]workload.Doer, c.NumNodes())
	for i := range conns {
		cl := dialClient(t, c, i)
		defer cl.Close()
		conns[i] = doerAdapter{cl}
	}
	res := workload.RunLive(workload.LiveConfig{
		Concurrency: 8, Duration: 300 * time.Millisecond, WriteRatio: 0.2, Seed: 9,
	}, conns)
	if res.Completed != res.Offered || res.Failed != 0 || res.Lost != 0 {
		t.Fatalf("serial mode lost replies: offered %d completed %d failed %d lost %d",
			res.Offered, res.Completed, res.Failed, res.Lost)
	}
}
