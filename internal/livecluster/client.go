package livecluster

import (
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"canopus/internal/wire"
)

// Client speaks the binary client protocol to one canopus-server client
// port. It is fully pipelined: any number of requests may be in flight,
// correlated by ID. Writes from concurrent goroutines are coalesced into
// single syscalls by a flusher goroutine, mirroring the server side.
type Client struct {
	conn net.Conn

	mu      sync.Mutex
	nextID  uint64
	pending map[uint64]func(wire.ClientResponse, error)
	err     error

	outMu sync.Mutex
	out   []byte
	wake  chan struct{}

	done chan struct{}
}

// Dial connects to a client port in binary mode.
func Dial(addr string) (*Client, error) {
	conn, err := net.DialTimeout("tcp", addr, 5*time.Second)
	if err != nil {
		return nil, fmt.Errorf("livecluster: dial %s: %w", addr, err)
	}
	if tc, ok := conn.(*net.TCPConn); ok {
		tc.SetNoDelay(true)
	}
	if _, err := conn.Write(wire.ClientMagic[:]); err != nil {
		conn.Close()
		return nil, fmt.Errorf("livecluster: preamble: %w", err)
	}
	c := &Client{
		conn:    conn,
		pending: make(map[uint64]func(wire.ClientResponse, error)),
		wake:    make(chan struct{}, 1),
		done:    make(chan struct{}),
	}
	go c.readLoop()
	go c.writeLoop()
	return c, nil
}

// Close tears the connection down; in-flight requests fail.
func (c *Client) Close() error {
	err := c.conn.Close()
	c.fail(io.ErrClosedPipe)
	return err
}

// Do issues one operation asynchronously; done is invoked from the
// client's reader goroutine when the response (or a connection error)
// arrives, so it must not block.
func (c *Client) Do(op wire.Op, key uint64, val []byte, done func(resp wire.ClientResponse, err error)) {
	c.mu.Lock()
	if c.err != nil {
		err := c.err
		c.mu.Unlock()
		done(wire.ClientResponse{}, err)
		return
	}
	c.nextID++
	id := c.nextID
	c.pending[id] = done
	c.mu.Unlock()

	q := wire.ClientRequest{ID: id, Op: op, Key: key, Val: val}
	c.outMu.Lock()
	if c.out == nil {
		c.out = wire.EncodePool.Get(64 + len(val))
	}
	c.out = wire.AppendClientRequest(c.out, &q)
	c.outMu.Unlock()
	select {
	case c.wake <- struct{}{}:
	default:
	}
}

// call is the synchronous completion rendezvous for Get/Put.
type call struct {
	resp wire.ClientResponse
	err  error
	ch   chan struct{}
}

func (c *Client) roundTrip(op wire.Op, key uint64, val []byte) (wire.ClientResponse, error) {
	cl := &call{ch: make(chan struct{})}
	c.Do(op, key, val, func(resp wire.ClientResponse, err error) {
		cl.resp, cl.err = resp, err
		close(cl.ch)
	})
	<-cl.ch
	if cl.err != nil {
		return wire.ClientResponse{}, cl.err
	}
	if cl.resp.Status == wire.ClientStatusErr {
		return cl.resp, fmt.Errorf("livecluster: server rejected request: %s", cl.resp.Val)
	}
	return cl.resp, nil
}

// Put writes key = val and waits for the committed acknowledgement.
func (c *Client) Put(key uint64, val []byte) error {
	_, err := c.roundTrip(wire.OpWrite, key, val)
	return err
}

// Get reads key, reporting whether it was present.
func (c *Client) Get(key uint64) ([]byte, bool, error) {
	resp, err := c.roundTrip(wire.OpRead, key, nil)
	if err != nil {
		return nil, false, err
	}
	return resp.Val, resp.Status == wire.ClientStatusOK, nil
}

func (c *Client) writeLoop() {
	for {
		select {
		case <-c.done:
			return
		case <-c.wake:
		}
		for {
			c.outMu.Lock()
			buf := c.out
			c.out = nil
			c.outMu.Unlock()
			if len(buf) == 0 {
				break
			}
			c.conn.SetWriteDeadline(time.Now().Add(10 * time.Second))
			_, err := c.conn.Write(buf)
			wire.EncodePool.Put(buf)
			if err != nil {
				c.fail(err)
				return
			}
		}
	}
}

func (c *Client) readLoop() {
	var hdr [4]byte
	var payload []byte
	for {
		if _, err := io.ReadFull(c.conn, hdr[:]); err != nil {
			c.fail(err)
			return
		}
		n, err := wire.ClientFrameLen(hdr)
		if err != nil {
			c.fail(err)
			return
		}
		if cap(payload) < n {
			payload = make([]byte, n)
		}
		payload = payload[:n]
		if _, err := io.ReadFull(c.conn, payload); err != nil {
			c.fail(err)
			return
		}
		resp, err := wire.ParseClientResponse(payload)
		if err != nil {
			c.fail(err)
			return
		}
		c.mu.Lock()
		done, ok := c.pending[resp.ID]
		if ok {
			delete(c.pending, resp.ID)
		}
		c.mu.Unlock()
		if ok {
			done(resp, nil)
		}
	}
}

// fail poisons the client and completes every pending request with err.
func (c *Client) fail(err error) {
	c.mu.Lock()
	if c.err != nil {
		c.mu.Unlock()
		return
	}
	c.err = err
	pending := c.pending
	c.pending = nil
	c.mu.Unlock()
	close(c.done)
	c.conn.Close()
	for _, done := range pending {
		done(wire.ClientResponse{}, err)
	}
}
