package livecluster

// Live chaos-plane tests: fault injection over real sockets via the
// chaosnet proxy fabric (Config.Chaos). These are the live-mode ports of
// the simulator's eviction and stall scenarios — same protocol paths,
// wall clocks and TCP resets instead of the virtual clock.

import (
	"context"
	"strings"
	"testing"
	"time"

	"canopus/admin"
	"canopus/internal/core"
	"canopus/internal/wire"
)

// chaosEvictionCfg arms leaf eviction with timings suited to loopback
// TCP: LeafTimeout well above proxy round-trips, cycles fast enough to
// drive evictions promptly.
func chaosEvictionCfg() core.Config {
	return core.Config{
		CycleInterval: 2 * time.Millisecond,
		TickInterval:  2 * time.Millisecond,
		FetchTimeout:  50 * time.Millisecond,
		LeafTimeout:   250 * time.Millisecond,
	}
}

func waitFor(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("timeout waiting for %s", what)
}

// TestChaosLeafEvictionAndReadmission is the live port of the sim's
// partition→evict→heal→readmit scenario: a whole super-leaf is
// blackholed at the socket layer, the surviving leaf majority evicts it
// within the LeafTimeout budget, and after heal + RestartNode the
// evicted members rejoin through the join protocol and converge to the
// survivors' state digest.
func TestChaosLeafEvictionAndReadmission(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second live chaos scenario")
	}
	evicted := make(chan int, 8)
	cfg := Config{
		SuperLeaves:  [][]wire.NodeID{{0, 1}, {2, 3}, {4, 5}},
		Node:         chaosEvictionCfg(),
		Seed:         11,
		LoggedStores: true,
		Chaos:        true,
		OnEvicted:    func(i int) { evicted <- i },
	}
	c, err := Start(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop(5 * time.Second)
	if c.Chaos() == nil {
		t.Fatal("Chaos() = nil with Config.Chaos set")
	}

	ctx := context.Background()
	cl := dialClient(t, c, 0)
	for k := uint64(1); k <= 6; k++ {
		if err := cl.Put(ctx, k, []byte("pre")); err != nil {
			t.Fatal(err)
		}
	}

	// Blackhole leaf 2 (nodes 4,5) away from the rest. The survivors'
	// fetches into the leaf now time out; with LeafTimeout armed the
	// majority of leaves evicts it and consensus resumes.
	c.Chaos().Partition([]wire.NodeID{0, 1, 2, 3}, []wire.NodeID{4, 5})
	start := time.Now()
	// Wedge one write inside the doomed leaf through its (unproxied)
	// client port: the cycle it starts keeps retrying cross-leaf fetches,
	// and the first retry to land after heal draws the dead-in-view
	// Evicted notice — how a partitioned member learns its fate (§6).
	// The writes themselves die with the eviction; ignore their futures.
	_ = dialClient(t, c, 4).PutAsync(200, []byte("doomed"))
	_ = dialClient(t, c, 5).PutAsync(201, []byte("doomed"))
	post := make([]chan error, 0, 5)
	for k := uint64(100); k < 105; k++ {
		f := cl.PutAsync(k, []byte("post"))
		ch := make(chan error, 1)
		go func() { _, err := f.Wait(ctx); ch <- err }()
		post = append(post, ch)
	}
	// LeafHealth reads the committed view — a machine-turn structure, so
	// go through the runner's serialization lock.
	leafHealth := func(i int) []core.LeafHealth {
		var lh []core.LeafHealth
		nd := c.Node(i)
		c.Runner(i).Invoke(func() { lh = nd.LeafHealth() })
		return lh
	}
	waitFor(t, 10*time.Second, "leaf 2 eviction at node 0", func() bool {
		lh := leafHealth(0)
		return len(lh) == 3 && lh[2].Evicted
	})
	if d := time.Since(start); d > 4*c.cfg.Node.LeafTimeout {
		t.Errorf("eviction took %v, want <= 4*LeafTimeout (%v)", d, 4*c.cfg.Node.LeafTimeout)
	}
	for i, ch := range post {
		if err := <-ch; err != nil {
			t.Fatalf("post-partition put %d: %v", i, err)
		}
	}

	// Heal, let the Evicted notices reach nodes 4 and 5, and restart each
	// in place as a joiner (the operator response OnEvicted asks for).
	c.Chaos().Heal()
	restarted := map[int]bool{}
	for len(restarted) < 2 {
		select {
		case i := <-evicted:
			if restarted[i] {
				continue
			}
			restarted[i] = true
			if err := c.RestartNode(i); err != nil {
				t.Fatal(err)
			}
		case <-time.After(15 * time.Second):
			t.Fatalf("evicted notices reached only %d of 2 nodes", len(restarted))
		}
	}
	if !restarted[4] || !restarted[5] {
		t.Fatalf("unexpected eviction set: %v", restarted)
	}

	// Readmission: the survivors re-admit the leaf, and the joiners
	// converge to the exact survivor state digest.
	waitFor(t, 15*time.Second, "leaf 2 readmission at node 0", func() bool {
		lh := leafHealth(0)
		return len(lh) == 3 && !lh[2].Evicted && !lh[2].Failed
	})
	digest := func(i int) (uint64, uint64, uint64) {
		return DigestSource(c.Runner(i), c.Node(i), c.Store(i))()
	}
	waitFor(t, 15*time.Second, "state-digest convergence across all 6 nodes", func() bool {
		_, ref, _ := digest(0)
		for i := 1; i < 6; i++ {
			if _, st, _ := digest(i); st != ref {
				return false
			}
		}
		return true
	})

	// The rejoined node serves reads of pre- and post-partition writes.
	cl2 := dialClient(t, c, 4)
	if v, err := cl2.Get(ctx, 104); err != nil || string(v) != "post" {
		t.Fatalf("Get(104) via rejoined node = %q, %v", v, err)
	}
}

// TestChaosStallDetectionHealthz: an asymmetric partition (stock config,
// no eviction) wedges the cluster; a node with StallThreshold armed
// notices the missing commit progress and degrades its /healthz to 503
// "degraded: stalled", then recovers to ok after heal.
func TestChaosStallDetectionHealthz(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second live chaos scenario")
	}
	threshold := 200 * time.Millisecond
	c, err := Start(Config{
		SuperLeaves: [][]wire.NodeID{{0, 1}, {2}},
		Node: core.Config{
			CycleInterval:  2 * time.Millisecond,
			TickInterval:   2 * time.Millisecond,
			FetchTimeout:   50 * time.Millisecond,
			StallThreshold: threshold,
		},
		Seed:  13,
		Chaos: true,
		Admin: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop(5 * time.Second)

	ctx := context.Background()
	cl := dialClient(t, c, 0)
	if err := cl.Put(ctx, 1, []byte("a")); err != nil {
		t.Fatal(err)
	}

	ac := admin.New(c.AdminAddr(2))
	if h, err := ac.Health(ctx); err != nil || h.Status != "ok" {
		t.Fatalf("pre-fault health = %+v, %v", h, err)
	}

	// Cut node 2's leaf off, then hand it a write through its (unproxied)
	// client port: the node starts a cycle it cannot commit — its fetch
	// of the majority leaf's state falls into the blackhole — and the
	// armed detector flags the wedge once StallThreshold passes.
	c.Chaos().Isolate(2)
	f := cl.PutAsync(2, []byte("b"))
	cl2 := dialClient(t, c, 2)
	f2 := cl2.PutAsync(3, []byte("c"))
	waitFor(t, 10*threshold+5*time.Second, "node 2 /healthz degraded", func() bool {
		h, err := ac.Health(ctx)
		return err == nil && h.Status == "degraded: stalled"
	})
	if s, err := ac.Status(ctx); err != nil || s.Degraded != "stalled" {
		t.Fatalf("/status degraded = %+v, %v", s, err)
	}

	c.Chaos().Heal()
	if _, err := f.Wait(ctx); err != nil {
		t.Fatalf("write across heal: %v", err)
	}
	if _, err := f2.Wait(ctx); err != nil {
		t.Fatalf("minority write across heal: %v", err)
	}
	waitFor(t, 10*time.Second, "node 2 /healthz recovery", func() bool {
		h, err := ac.Health(ctx)
		return err == nil && h.Status == "ok"
	})
	if s, err := ac.Status(ctx); err != nil || s.Degraded != "" {
		t.Fatalf("post-heal /status degraded = %+v, %v", s, err)
	}
}

// TestAdminChaosGateway drives the fabric through the HTTP verb: a
// cross-leaf partition injected via POST /chaos wedges a write (the
// cycle cannot fetch the remote leaf's state), heal releases it. The
// cut runs between super-leaves — intra-leaf cuts are crash-stop for
// the minority member, not a heal-recoverable fault.
func TestAdminChaosGateway(t *testing.T) {
	c, err := Start(Config{
		SuperLeaves: [][]wire.NodeID{{0, 1}, {2, 3}},
		Node: core.Config{
			CycleInterval: 2 * time.Millisecond,
			TickInterval:  2 * time.Millisecond,
			FetchTimeout:  50 * time.Millisecond,
		},
		Seed:       7,
		Chaos:      true,
		Admin:      true,
		AdminChaos: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop(5 * time.Second)

	ctx := context.Background()
	ac := admin.New(c.AdminAddr(0))
	for _, action := range []string{"latency:1ms", "partition:0,1|2", "heal", "latency:0s"} {
		if err := ac.Chaos(ctx, action); err != nil {
			t.Fatalf("chaos %q: %v", action, err)
		}
	}
	if err := ac.Chaos(ctx, "latency:warp9"); err == nil ||
		!strings.Contains(err.Error(), "400") {
		t.Fatalf("bad action error = %v, want 400", err)
	}

	// The verb actually reaches the fabric: blackholing the inter-leaf
	// links wedges every cycle at the fetch step until heal.
	cl := dialClient(t, c, 0)
	if err := cl.Put(ctx, 1, []byte("a")); err != nil {
		t.Fatal(err)
	}
	if err := ac.Chaos(ctx, "partition:0,1|2,3"); err != nil {
		t.Fatal(err)
	}
	f := cl.PutAsync(2, []byte("b"))
	select {
	case <-f.Done():
		t.Fatal("write committed across a partition isolating the submit node")
	case <-time.After(300 * time.Millisecond):
	}
	if err := ac.Chaos(ctx, "heal"); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Wait(ctx); err != nil {
		t.Fatalf("write after heal: %v", err)
	}
}

// TestAdminChaosConflictWithoutFabric: the verb armed (AdminChaos) on a
// cluster without the fabric (no Config.Chaos) answers 409 Conflict —
// not 500, not 400 — for every action.
func TestAdminChaosConflictWithoutFabric(t *testing.T) {
	c, err := Start(Config{
		Nodes:      2,
		Node:       core.Config{CycleInterval: 2 * time.Millisecond, TickInterval: 2 * time.Millisecond},
		Seed:       7,
		Admin:      true,
		AdminChaos: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop(5 * time.Second)

	err = admin.New(c.AdminAddr(0)).Chaos(context.Background(), "heal")
	if err == nil || !strings.Contains(err.Error(), "409") {
		t.Fatalf("chaos without fabric = %v, want 409 Conflict", err)
	}
}
