package livecluster

import "canopus/internal/wire"

// LoadConn adapts Client to the workload.Doer shape: success means the
// reply arrived and was not a rejection.
type LoadConn struct {
	*Client
}

// Do implements workload.Doer.
func (lc LoadConn) Do(op wire.Op, key uint64, val []byte, done func(ok bool)) {
	lc.Client.Do(op, key, val, func(resp wire.ClientResponse, err error) {
		done(err == nil && resp.Status != wire.ClientStatusErr)
	})
}
