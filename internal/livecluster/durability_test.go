package livecluster

import (
	"bufio"
	"context"
	"fmt"
	"net"
	"testing"
	"time"

	"canopus/admin"
	"canopus/internal/core"
	"canopus/internal/kvstore"
	"canopus/internal/wal"
	"canopus/internal/wire"
)

// durableConfig is a 3-node loopback deployment whose "disks" are the
// given MemFS array, so a second Start models a restart of the same
// machines. Admin gateways are on so the tests exercise the same
// digest/status surface the CI durability smoke scrapes.
func durableConfig(disks []*wal.MemFS) Config {
	return Config{
		Nodes: len(disks),
		Node:  core.Config{CycleInterval: 2 * time.Millisecond, TickInterval: 2 * time.Millisecond},
		Seed:  7,
		// Logged stores give LogLen/LogDigest for exactly-once assertions.
		LoggedStores:   true,
		SnapshotCycles: 4, // hundreds of cycles per run: exercise snapshots + truncation
		DataFS:         func(i int) wal.FS { return disks[i] },
		Admin:          true,
	}
}

// textDigest asks a node's client port for its replica identity over the
// text protocol.
func textDigest(t *testing.T, addr string) (cycle, state, logd uint64) {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(5 * time.Second))
	if _, err := fmt.Fprintf(conn, "DIGEST\n"); err != nil {
		t.Fatal(err)
	}
	line, err := bufio.NewReader(conn).ReadString('\n')
	if err != nil {
		t.Fatalf("DIGEST read: %v", err)
	}
	if _, err := fmt.Sscanf(line, "DIGEST %d %x %x", &cycle, &state, &logd); err != nil {
		t.Fatalf("DIGEST reply %q: %v", line, err)
	}
	return cycle, state, logd
}

// TestDurableRestartRecoversState is the end-to-end restart story over
// real sockets: a durable cluster takes client traffic (including a
// replicated session), shuts down, and a fresh cluster started from the
// same disks serves the old state — with session dedup intact, so a
// mutation retried across the restart does not apply twice.
func TestDurableRestartRecoversState(t *testing.T) {
	disks := []*wal.MemFS{wal.NewMemFS(), wal.NewMemFS(), wal.NewMemFS()}
	c1, err := Start(durableConfig(disks))
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	cl := dialClient(t, c1, 0)
	const n = 200
	for i := 0; i < n; i++ {
		if err := cl.Put(ctx, uint64(i), []byte(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatalf("put %d: %v", i, err)
		}
	}

	// One replicated session with one applied mutation: its dedup entry
	// must survive the restart.
	regDone := make(chan uint64, 1)
	c1.RegisterSession(0, func(id uint64, ok bool) {
		if !ok {
			id = 0
		}
		regDone <- id
	})
	sid := <-regDone
	if sid == 0 {
		t.Fatal("session registration failed")
	}
	putDone := make(chan bool, 1)
	c1.SubmitSession(0, sid, 1, wire.OpWrite, 1000, []byte("first"), func(_ []byte, ok bool) { putDone <- ok })
	if !<-putDone {
		t.Fatal("session put failed")
	}

	// Capture the replica identity every node agrees on. All mutations
	// are acked, so all three replicas hold the same state.
	var wantState, wantLog, wantLen uint64
	c1.InspectStore(0, func(st *kvstore.Store) {
		wantState, wantLog, wantLen = st.StateDigest(), st.LogDigest(), st.LogLen()
	})
	if wantLen == 0 {
		t.Fatal("no mutations applied before the restart")
	}

	if !c1.Stop(10 * time.Second) {
		t.Fatal("graceful stop did not drain")
	}

	// Restart the whole deployment from the same disks.
	c2, err := Start(durableConfig(disks))
	if err != nil {
		t.Fatalf("restart: %v", err)
	}
	defer c2.Stop(5 * time.Second)

	// Reads go through consensus, so a successful read through each node
	// proves each recovered replica is serving.
	for i := 0; i < c2.NumNodes(); i++ {
		cli := dialClient(t, c2, i)
		val, err := cli.Get(ctx, n-1)
		if err != nil || string(val) != fmt.Sprintf("v%d", n-1) {
			t.Fatalf("node %d: Get(%d) after restart = %q, %v", i, n-1, val, err)
		}
	}

	// Every replica must converge to the pre-restart identity (laggards
	// close their watermark gap through root catch-up; reads above do not
	// mutate, so the digests are stable targets). The check goes through
	// the admin gateway — the surface the CI durability smoke compares
	// across a SIGKILL.
	deadline := time.Now().Add(5 * time.Second)
	for i := 0; i < c2.NumNodes(); i++ {
		cli := admin.New(c2.AdminAddr(i))
		for {
			d, err := cli.Digest(ctx)
			if err == nil && d.State == wantState && d.Log == wantLog {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("node %d never converged: digest %+v err %v, want state %x log %x",
					i, d, err, wantState, wantLog)
			}
			time.Sleep(10 * time.Millisecond)
		}
	}

	// /status carries the same identity plus the durability watermarks.
	st0, err := admin.New(c2.AdminAddr(0)).Status(ctx)
	if err != nil {
		t.Fatalf("admin status: %v", err)
	}
	if st0.Phase != "ok" || st0.Durability == nil || st0.Durability.DurableCycle == 0 {
		t.Fatalf("recovered /status not healthy: %+v", st0)
	}
	if st0.StateDigest != fmt.Sprintf("%016x", wantState) {
		t.Fatalf("/status state digest %s, want %016x", st0.StateDigest, wantState)
	}

	// The legacy DIGEST text verb is a shim over the same DigestSource
	// the gateway serves; one raw-socket check keeps the shim honest.
	_, state, logd := textDigest(t, c2.ClientAddr(0))
	if state != wantState || logd != wantLog {
		t.Fatalf("DIGEST reports %x/%x, replica holds %x/%x", state, logd, wantState, wantLog)
	}

	// Exactly-once across the restart: retry the session mutation with a
	// different payload through a different node. The recovered dedup
	// table must classify it as applied and leave the original value.
	retryDone := make(chan bool, 1)
	c2.SubmitSession(2, sid, 1, wire.OpWrite, 1000, []byte("evil"), func(_ []byte, ok bool) { retryDone <- ok })
	if !<-retryDone {
		t.Fatal("session retry rejected; dedup state lost in recovery")
	}
	cli := dialClient(t, c2, 1)
	val, err := cli.Get(ctx, 1000)
	if err != nil || string(val) != "first" {
		t.Fatalf("session mutation applied twice across restart: key 1000 = %q, %v", val, err)
	}

	// The recovery actually came from snapshot + WAL: the disks must hold
	// a snapshot (cadence 4 over ~hundreds of cycles) for every node.
	for i, disk := range disks {
		names, _ := disk.List()
		snaps := 0
		for _, name := range names {
			if len(name) > 5 && name[:5] == "snap-" {
				snaps++
			}
		}
		if snaps == 0 {
			t.Fatalf("node %d disk has no snapshots: %v", i, names)
		}
	}
}

// TestDurableStatsVisible pins the ack/fsync ordering contract from the
// outside: once a client write is acknowledged, the origin's manager
// already reports a durable watermark — replies never outrun the log.
func TestDurableStatsVisible(t *testing.T) {
	disks := []*wal.MemFS{wal.NewMemFS(), wal.NewMemFS(), wal.NewMemFS()}
	c, err := Start(durableConfig(disks))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop(5 * time.Second)
	cl := dialClient(t, c, 0)
	if err := cl.Put(context.Background(), 1, []byte("x")); err != nil {
		t.Fatal(err)
	}
	// The ack above is fsync-gated, so the origin's manager must already
	// report a durable watermark and at least one sync.
	stats := c.Durability(0).Stats()
	if stats.DurableCycle == 0 || stats.Syncs == 0 {
		t.Fatalf("durability stats empty after an acked write: %+v", stats)
	}
}
