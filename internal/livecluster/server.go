package livecluster

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"canopus/admin"
	"canopus/internal/core"
	"canopus/internal/events"
	"canopus/internal/kvstore"
	"canopus/internal/metrics"
	"canopus/internal/transport"
	"canopus/internal/wal"
	"canopus/internal/wire"
)

// maxGroup bounds how many pipelined requests one connection submits per
// machine turn; deeper pipelines are split across turns so one greedy
// client cannot monopolize the node's serialization lock.
const maxGroup = 512

// Connection protocol modes, sniffed from the preamble.
const (
	modeText uint8 = iota // line-oriented text protocol
	modeV1                // binary protocol v1 (wire.ClientRequest)
	modeV2                // binary protocol v2 (wire.ClientRequestV2)
)

// ClientPort serves canopus-server's client protocol for one node: the
// length-prefixed binary protocols v1 and v2 (see internal/wire) for
// programs, and the line-oriented text protocol (GET/PUT/QUIT) for
// interactive use — all sniffed per connection from the preamble.
//
// Protocol v2 adds per-request consistency levels: Linearizable
// operations enter consensus exactly like v1 traffic, while Sequential
// and Stale reads are answered from the node's committed state
// (core.Node.ReadLocal) without starting or riding a consensus cycle.
//
// Protocol v3 is v2 plus the event plane: WATCH/UNWATCH registration
// frames, server-push EVENT frames fed by the node's event hub
// (internal/events), and multi-op TXN frames that ride consensus as one
// wire.OpTxn request. Watch registration and cancellation never enter a
// machine turn — the hub has its own lock — and event fan-out runs on
// the hub's Publish caller (the apply executor), writing only to
// per-connection output buffers.
//
// Replies are fanned out batch-aware and off the consensus turn: the
// port owns the node's OnReplyBatch callback — which, with the parallel
// commit pipeline (core.Config.ApplyWorkers), fires on the node's apply
// executor rather than inside the machine turn — and one committed cycle
// costs one pass over its completion records, encoded into
// per-connection output buffers (pooled) that per-connection writer
// goroutines flush. Neither the reply encode nor the socket write ever
// holds the node's machine lock.
type ClientPort struct {
	runner *transport.Runner
	// nodeP is the serving protocol node. It is an atomic pointer, not a
	// plain field, because SetNode swaps in a replacement joiner when a
	// node restarts in place (chaos eviction/readmission) while reader
	// goroutines and the apply executor are still looking at it.
	nodeP atomic.Pointer[core.Node]
	ln    net.Listener

	// hubP is the node's event hub; nil disables the v3 watch surface
	// (WATCH frames are rejected, TXN frames still work). Set before
	// AcceptClients; swapped together with the node by SetNode.
	hubP atomic.Pointer[events.Hub]

	draining    atomic.Bool
	outstanding atomic.Int64 // accepted-but-unanswered requests
	// deferredLocal counts the subset of outstanding that are Sequential
	// reads parked on a future commit cycle: they cannot complete on an
	// idle node, so a graceful Stop rejects rather than awaits them.
	deferredLocal atomic.Int64

	// dropReplies, when set, makes writers discard every encoded
	// response instead of flushing it — the deterministic reply-loss
	// fault tests use to force the commit-race retry window.
	dropReplies atomic.Bool

	// mu guards conns, every conn's pending map and seq counter,
	// sessPending, and batch aggregates. It is the port's own lock —
	// deliberately NOT the runner's machine lock — so the reply fan-out
	// (running on the node's apply executor in parallel mode) and the
	// submit paths (running inside machine turns) synchronize without
	// serializing against consensus.
	mu     sync.Mutex
	nextID uint64
	conns  map[uint64]*clientConn
	loc    *clientConn // lazy pseudo-connection for SubmitLocal

	// sessPending routes session-scoped submissions back to their
	// serving connection: replies arrive keyed by the replicated
	// (session, seq) identity, not the connection. Guarded by mu.
	sessPending map[sessKey]sessEntry

	// digest backs the text protocol's DIGEST command (set before
	// AcceptClients; nil disables the command).
	digest func() (cycle, state, log uint64)

	// stats are the port's operational counters (see RegisterMetrics);
	// the in-flight gauge is the outstanding counter above.
	stats portStats

	accept  sync.Once
	writers sync.WaitGroup
}

// portStats counts client-facing work: accepted sockets, admitted
// requests, and replies lost to fault injection or departed connections.
type portStats struct {
	conns    atomic.Uint64 // sockets accepted
	requests atomic.Uint64 // requests admitted (tracked as outstanding)
	dropped  atomic.Uint64 // reply buffers discarded instead of delivered
}

// sessKey identifies one in-flight session-scoped operation.
type sessKey struct{ session, seq uint64 }

// sessEntry is the completion target of one session-scoped operation.
type sessEntry struct {
	cc *clientConn
	e  pendingEntry
}

// pendingEntry maps one submitted request back to its completion target:
// a connection frame (text/v1/v2, optionally one slot of a v2 batch) or
// a local done callback.
type pendingEntry struct {
	id   uint64 // correlation ID (unused in text mode)
	mode uint8
	done func(val []byte, ok bool) // SubmitLocal completion; nil for sockets
	agg  *batchAgg                 // v2 batch aggregation; nil for single ops
	idx  int                       // slot in agg.results
}

// batchAgg accumulates one v2 batch frame's per-op results; the response
// is pushed when the last sub-op completes. Guarded by the port mutex,
// like the pending maps feeding it. Aggregates and their result slices
// are pooled — recycled the moment the response frame is encoded.
type batchAgg struct {
	id        uint64
	remaining int
	cycle     uint64
	results   []wire.ClientResult
}

// aggPool recycles batch aggregates across frames.
var aggPool = sync.Pool{New: func() any { return new(batchAgg) }}

func newBatchAgg(id uint64, n int) *batchAgg {
	agg := aggPool.Get().(*batchAgg)
	agg.id, agg.remaining, agg.cycle = id, n, 0
	if cap(agg.results) < n {
		agg.results = make([]wire.ClientResult, n)
	} else {
		agg.results = agg.results[:n]
		clear(agg.results)
	}
	return agg
}

func freeBatchAgg(agg *batchAgg) {
	clear(agg.results)
	aggPool.Put(agg)
}

type clientConn struct {
	id   uint64
	conn net.Conn // nil for the SubmitLocal pseudo-connection

	// pending maps request Seq -> entry; seq is the per-connection
	// submission counter. Both are guarded by the port mutex.
	pending map[uint64]pendingEntry
	seq     uint64

	// watches maps the client-chosen watch ID to the hub's registration
	// ID (v3 connections only; nil until the first WATCH). Guarded by
	// the port mutex. Entries can go stale when the hub overflows a
	// watch — its sink may not take the port mutex — which is harmless:
	// hub.Cancel is idempotent.
	watches map[uint64]uint64

	outMu   sync.Mutex
	out     []byte // encoded responses awaiting flush
	wake    chan struct{}
	closing bool
}

// NewClientPort binds the client protocol for node on addr (e.g.
// "127.0.0.1:0") and installs itself as the node's reply callback. The
// port does NOT accept connections yet: call AcceptClients once the node
// is ready to serve — in particular, after crash recovery has replayed
// the WAL. Binding early and accepting late means a restarting server
// owns its advertised address immediately without ever exposing
// mid-recovery state to a client.
func NewClientPort(runner *transport.Runner, node *core.Node, addr string) (*ClientPort, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("livecluster: client listen %s: %w", addr, err)
	}
	p := &ClientPort{
		runner:      runner,
		ln:          ln,
		conns:       make(map[uint64]*clientConn),
		sessPending: make(map[sessKey]sessEntry),
	}
	p.nodeP.Store(node)
	// The SubmitLocal pseudo-connection is created eagerly so Stop and
	// Abort always see it — a lazily created one could slip past their
	// shutdown snapshot and strand its done callbacks.
	p.nextID++
	p.loc = &clientConn{
		id:      (uint64(int64(node.ID())+1) << 32) | p.nextID,
		pending: make(map[uint64]pendingEntry),
		wake:    make(chan struct{}, 1),
	}
	p.conns[p.loc.id] = p.loc
	node.SetOnReplyBatch(p.onReplyBatch)
	node.SetOnSessionReject(p.onSessionReject)
	return p, nil
}

// AcceptClients starts accepting client connections. Idempotent; see
// NewClientPort for why accepting is separate from binding.
func (p *ClientPort) AcceptClients() {
	p.accept.Do(func() { go p.acceptLoop() })
}

// SetDigestFunc installs the source of the text protocol's DIGEST
// command: a coherent (committed cycle, state digest, log digest)
// snapshot of the node's replica. Set it before AcceptClients; a port
// without one rejects the command.
func (p *ClientPort) SetDigestFunc(fn func() (cycle, state, log uint64)) { p.digest = fn }

// SetHub installs the node's event hub, enabling the v3 watch surface.
// Set it before AcceptClients; without one, WATCH frames are rejected.
func (p *ClientPort) SetHub(h *events.Hub) { p.hubP.Store(h) }

// Hub returns the installed event hub (nil when watches are disabled).
func (p *ClientPort) Hub() *events.Hub { return p.hubP.Load() }

// node returns the currently-serving protocol node.
func (p *ClientPort) node() *core.Node { return p.nodeP.Load() }

// hub returns the currently-installed event hub (nil disables watches).
func (p *ClientPort) hub() *events.Hub { return p.hubP.Load() }

// SetNode rewires the port to a replacement protocol node and event hub
// — the in-place restart path (Cluster.RestartNode): an evicted node
// comes back as a protocol-level joiner on the same runner, ports and
// addresses. The new node's replies route back through this port;
// operations in flight against the old node complete through its
// draining executor or are failed by the caller. Existing watches die
// with the old hub (their cycles predate the joiner's state); clients
// re-register and resume.
func (p *ClientPort) SetNode(node *core.Node, hub *events.Hub) {
	node.SetOnReplyBatch(p.onReplyBatch)
	node.SetOnSessionReject(p.onSessionReject)
	p.nodeP.Store(node)
	p.hubP.Store(hub)
}

// Addr returns the bound client address.
func (p *ClientPort) Addr() string { return p.ln.Addr().String() }

// DropReplies makes the port silently discard every response instead of
// writing it to the socket: ops still enter consensus, commit and apply,
// but their clients never hear back. Crash-failover tests use it to
// inject the reply-loss race deterministically — the committed-but-
// unacknowledged window that forces a client retry of a committed op.
func (p *ClientPort) DropReplies() { p.dropReplies.Store(true) }

// SetDropReplies switches reply-loss fault injection on or off at
// runtime — the admin gateway's /chaos verb uses the off switch to end a
// game-day that DropReplies started.
func (p *ClientPort) SetDropReplies(on bool) { p.dropReplies.Store(on) }

// Outstanding returns the number of accepted, not-yet-answered requests.
func (p *ClientPort) Outstanding() int64 { return p.outstanding.Load() }

// admitRequest counts one accepted request into the outstanding gauge
// and the running total. Every submit path admits through here; the
// completion paths undo only the gauge.
func (p *ClientPort) admitRequest() {
	p.outstanding.Add(1)
	p.stats.requests.Add(1)
}

// RegisterMetrics exports the client port's instruments into reg under
// the canopus_client_* names with the given constant labels. Safe on a
// nil registry.
func (p *ClientPort) RegisterMetrics(reg *metrics.Registry, labels ...metrics.Label) {
	reg.GaugeFunc("canopus_client_connections",
		"Open client connections.",
		func() float64 {
			p.mu.Lock()
			n := len(p.conns) - 1 // exclude the SubmitLocal pseudo-connection
			p.mu.Unlock()
			return float64(n)
		}, labels...)
	reg.CounterFunc("canopus_client_connections_total",
		"Client connections accepted.",
		p.stats.conns.Load, labels...)
	reg.GaugeFunc("canopus_client_inflight_requests",
		"Accepted, not-yet-answered client requests.",
		func() float64 { return float64(p.outstanding.Load()) }, labels...)
	reg.CounterFunc("canopus_client_requests_total",
		"Client requests admitted.",
		p.stats.requests.Load, labels...)
	reg.CounterFunc("canopus_client_replies_dropped_total",
		"Reply buffers discarded (fault injection or departed connection).",
		p.stats.dropped.Load, labels...)
}

func (p *ClientPort) newConn(conn net.Conn) *clientConn {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.nextID++
	cc := &clientConn{
		id:      (uint64(int64(p.node().ID())+1) << 32) | p.nextID,
		conn:    conn,
		pending: make(map[uint64]pendingEntry),
		wake:    make(chan struct{}, 1),
	}
	p.conns[cc.id] = cc
	p.stats.conns.Add(1)
	return cc
}

// local returns the pseudo-connection carrying SubmitLocal traffic
// (created at port construction). It has no socket and no writer: every
// pending entry completes through its done callback.
func (p *ClientPort) local() *clientConn { return p.loc }

func (p *ClientPort) acceptLoop() {
	for {
		conn, err := p.ln.Accept()
		if err != nil {
			return // listener closed
		}
		cc := p.newConn(conn)
		p.writers.Add(1)
		go p.writeLoop(cc)
		go p.handle(cc)
	}
}

// handle drives one connection's read side until EOF or protocol error.
func (p *ClientPort) handle(cc *clientConn) {
	defer p.teardown(cc)
	br := bufio.NewReaderSize(cc.conn, 64<<10)
	first, err := br.Peek(1)
	if err != nil {
		return
	}
	if first[0] == wire.ClientMagic[0] {
		var magic [4]byte
		if _, err := io.ReadFull(br, magic[:]); err != nil {
			return
		}
		switch magic {
		case wire.ClientMagic:
			p.handleBinary(cc, br)
		case wire.ClientMagicV2:
			p.handleV2(cc, br)
		case wire.ClientMagicV3:
			p.handleV3(cc, br)
		}
		return
	}
	p.handleText(cc, br)
}

// teardown retires the connection. The read side is already done (EOF,
// QUIT or protocol error), but submitted requests may still be in
// consensus: wait briefly so their replies reach the output buffer and
// are flushed before the writer closes the socket (a client that sends
// GET then QUIT still gets its value).
func (p *ClientPort) teardown(cc *clientConn) {
	// Watches die with the read side: no one is left to UNWATCH, and the
	// writer is about to close, so stop the event flow now rather than
	// letting every future cycle render frames nobody will read.
	p.dropWatches(cc)
	p.waitIdle(cc, 5*time.Second)
	p.mu.Lock()
	delete(p.conns, cc.id)
	if n := len(cc.pending); n > 0 {
		p.outstanding.Add(int64(-n))
	}
	cc.pending = nil
	p.dropSessPendingLocked(cc)
	p.mu.Unlock()
	cc.outMu.Lock()
	cc.closing = true
	cc.outMu.Unlock()
	select {
	case cc.wake <- struct{}{}:
	default:
	}
}

// writeLoop flushes one connection's response buffer: each wakeup writes
// everything accumulated since the last flush with a single syscall.
func (p *ClientPort) writeLoop(cc *clientConn) {
	defer p.writers.Done()
	for range cc.wake {
		for {
			cc.outMu.Lock()
			buf := cc.out
			cc.out = nil
			closing := cc.closing
			cc.outMu.Unlock()
			if len(buf) == 0 {
				if closing {
					cc.conn.Close()
					return
				}
				break
			}
			if p.dropReplies.Load() {
				// Fault injection: the response was produced (the op
				// committed and left the pending set) but never reaches
				// the client — the reply-loss crash window, made
				// deterministic for tests.
				p.stats.dropped.Add(1)
				wire.EncodePool.Put(buf)
				continue
			}
			cc.conn.SetWriteDeadline(time.Now().Add(10 * time.Second))
			_, err := cc.conn.Write(buf)
			wire.EncodePool.Put(buf)
			if err != nil {
				cc.conn.Close()
				return
			}
		}
	}
}

// push appends encoded response bytes to the connection's output buffer
// and rings its writer.
func (cc *clientConn) push(render func(b []byte) []byte) {
	cc.outMu.Lock()
	if cc.closing {
		cc.outMu.Unlock()
		return
	}
	if cc.out == nil {
		cc.out = wire.EncodePool.Get(256)
	}
	cc.out = render(cc.out)
	cc.outMu.Unlock()
	select {
	case cc.wake <- struct{}{}:
	default:
	}
}

// watchOutBudget bounds the unflushed response bytes a connection may
// accumulate before its watches count as overflowed: a client that
// stops reading loses its watches, not the server its memory.
const watchOutBudget = 1 << 20

// pushBudget appends like push but refuses — without appending — when
// the unflushed buffer already exceeds budget, reporting false.
// Terminal frames are exempt: an overflow notice must reach the client
// even though the buffer is exactly what overflowed. A closing
// connection also reports false.
func (cc *clientConn) pushBudget(render func(b []byte) []byte, budget int, terminal bool) bool {
	cc.outMu.Lock()
	if cc.closing {
		cc.outMu.Unlock()
		return false
	}
	if !terminal && len(cc.out) > budget {
		cc.outMu.Unlock()
		return false
	}
	if cc.out == nil {
		cc.out = wire.EncodePool.Get(256)
	}
	cc.out = render(cc.out)
	cc.outMu.Unlock()
	select {
	case cc.wake <- struct{}{}:
	default:
	}
	return true
}

// completeEntry delivers one completed consensus operation to its
// destination: local callback, batch slot, or an encoded single-op
// response. Runs with the port mutex held — on the node's apply executor
// in parallel mode, inside the machine turn in serial mode. The value is
// encoded (or handed to the done callback) before returning: it may
// alias store state that the next cycle's apply overwrites.
func (p *ClientPort) completeEntry(cc *clientConn, entry pendingEntry, op wire.Op, val []byte) {
	cycle := p.node().Committed()
	switch {
	case entry.done != nil:
		entry.done(val, true)
	case entry.agg != nil:
		status := wire.ClientStatusOK
		if op == wire.OpRead && val == nil {
			status = wire.ClientStatusNil
		}
		p.completeBatchOp(cc, entry.agg, entry.idx, status, wire.CodeNone, val, cycle)
		return // completeBatchOp owns the outstanding decrement
	case entry.mode == modeText:
		cc.push(func(b []byte) []byte { return appendTextReply(b, op, val) })
	case entry.mode == modeV2:
		resp := wire.ClientResponseV2{ID: entry.id, Status: wire.ClientStatusOK, Cycle: cycle, Val: val}
		if op == wire.OpRead && val == nil {
			resp.Status = wire.ClientStatusNil
		}
		if op == wire.OpTxn && val == nil {
			// Duplicate txn whose recorded result was displaced by a later
			// txn on the same session: the outcome is unknowable here, so
			// say that instead of guessing — the client must re-read state.
			resp.Status, resp.Val = wire.ClientStatusErr, []byte("txn result displaced")
		}
		cc.push(func(b []byte) []byte { return wire.AppendClientResponseV2(b, &resp) })
	default: // modeV1
		resp := wire.ClientResponse{ID: entry.id, Status: wire.ClientStatusOK, Val: val}
		if op == wire.OpRead && val == nil {
			resp.Status = wire.ClientStatusNil
		}
		cc.push(func(b []byte) []byte { return wire.AppendClientResponse(b, &resp) })
	}
	p.outstanding.Add(-1)
}

// completeBatchOp fills one slot of a v2 batch and pushes the aggregate
// response when the batch is complete. Runs with the port mutex held.
func (p *ClientPort) completeBatchOp(cc *clientConn, agg *batchAgg, idx int, status, code uint8, val []byte, cycle uint64) {
	if status == wire.ClientStatusOK && val != nil {
		// A batch slot may outlive this completion callback (the frame
		// encodes when its LAST slot fills, possibly cycles later), and
		// reply values are only valid during the callback — copy.
		v := make([]byte, len(val))
		copy(v, val)
		val = v
	}
	agg.results[idx] = wire.ClientResult{Status: status, Code: code, Val: val}
	if cycle > agg.cycle {
		agg.cycle = cycle
	}
	agg.remaining--
	p.outstanding.Add(-1)
	if agg.remaining == 0 {
		// Encode now, inside this call: result values may alias store
		// state (or stack-scoped error strings) that are only stable for
		// the duration of the completion callback.
		resp := wire.ClientResponseV2{ID: agg.id, Batch: true, Cycle: agg.cycle, Results: agg.results}
		cc.push(func(b []byte) []byte { return wire.AppendClientResponseV2(b, &resp) })
		freeBatchAgg(agg)
	}
}

// onReplyBatch is the node's completion callback: it fans one committed
// cycle's completion records out to the owning connections' buffers (no
// socket writes on this path). With the parallel commit pipeline it runs
// on the node's apply executor — the machine lock is NOT held, which is
// the point: reply materialization no longer steals consensus time.
func (p *ClientPort) onReplyBatch(reqs []wire.Request, vals [][]byte) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for i := range reqs {
		req := &reqs[i]
		if wire.IsSessionID(req.Client) {
			// Session-scoped op: route by the replicated (session, seq)
			// identity. A duplicate commit of a (session, seq) the client
			// already got answered simply finds no entry here.
			k := sessKey{req.Client, req.Seq}
			se, ok := p.sessPending[k]
			if !ok {
				continue
			}
			delete(p.sessPending, k)
			p.completeEntry(se.cc, se.e, req.Op, vals[i])
			continue
		}
		cc, ok := p.conns[req.Client]
		if !ok {
			p.stats.dropped.Add(1)
			continue // connection gone; reply dropped
		}
		entry, ok := cc.pending[req.Seq]
		if !ok {
			continue
		}
		// Buffer the reply BEFORE retiring the pending entry: Stop and
		// teardown poll Outstanding()/pending to decide when it is safe
		// to set closing, so the response must already be in the output
		// buffer (the writer flushes it before closing) by the time this
		// request stops counting as outstanding.
		p.completeEntry(cc, entry, req.Op, vals[i])
		delete(cc.pending, req.Seq)
	}
}

// onSessionReject is the node's expired-session callback: the op was
// deterministically NOT applied; surface CodeSessionExpired instead of a
// completion. Runs inside the machine turn (order resolution is always
// serial).
func (p *ClientPort) onSessionReject(req *wire.Request) {
	p.mu.Lock()
	defer p.mu.Unlock()
	k := sessKey{req.Client, req.Seq}
	se, ok := p.sessPending[k]
	if !ok {
		return
	}
	delete(p.sessPending, k)
	switch {
	case se.e.done != nil:
		se.e.done(nil, false)
		p.outstanding.Add(-1)
	case se.e.agg != nil:
		p.completeBatchOp(se.cc, se.e.agg, se.e.idx, wire.ClientStatusErr, wire.CodeSessionExpired,
			[]byte("session expired"), p.node().Committed())
	default:
		resp := wire.ClientResponseV2{ID: se.e.id, Status: wire.ClientStatusErr,
			Code: wire.CodeSessionExpired, Cycle: p.node().Committed(), Val: []byte("session expired")}
		se.cc.push(func(b []byte) []byte { return wire.AppendClientResponseV2(b, &resp) })
		p.outstanding.Add(-1)
	}
}

// putSessPendingLocked registers one session-scoped submission, retiring
// any stale entry for the same (session, seq) — a retry looping back to
// this node before its first submission's bookkeeping was torn down.
// Runs with the port mutex held; owns the outstanding increment.
func (p *ClientPort) putSessPendingLocked(k sessKey, se sessEntry) {
	if old, ok := p.sessPending[k]; ok {
		p.outstanding.Add(-1)
		if old.e.done != nil {
			old.e.done(nil, false)
		}
	}
	p.sessPending[k] = se
	p.admitRequest()
}

// dropSessPendingLocked retires every session-scoped entry bound to one
// (dead) connection. Runs with the port mutex held.
func (p *ClientPort) dropSessPendingLocked(cc *clientConn) {
	for k, se := range p.sessPending {
		if se.cc == cc {
			delete(p.sessPending, k)
			p.outstanding.Add(-1)
			if se.e.done != nil {
				se.e.done(nil, false)
			}
		}
	}
}

func appendTextReply(b []byte, op wire.Op, val []byte) []byte {
	if op.Mutates() {
		return append(b, "OK\n"...)
	}
	if val == nil {
		return append(b, "NIL\n"...)
	}
	b = append(b, "VALUE "...)
	b = append(b, val...)
	return append(b, '\n')
}

// reject answers a request without consulting the node.
func (p *ClientPort) reject(cc *clientConn, mode uint8, id uint64, code uint8, reason string) {
	switch mode {
	case modeText:
		cc.push(func(b []byte) []byte {
			b = append(b, "ERR "...)
			b = append(b, reason...)
			return append(b, '\n')
		})
	case modeV2:
		resp := wire.ClientResponseV2{ID: id, Status: wire.ClientStatusErr, Code: code, Val: []byte(reason)}
		cc.push(func(b []byte) []byte { return wire.AppendClientResponseV2(b, &resp) })
	default:
		resp := wire.ClientResponse{ID: id, Status: wire.ClientStatusErr, Val: []byte(reason)}
		cc.push(func(b []byte) []byte { return wire.AppendClientResponse(b, &resp) })
	}
}

// rejectBatch answers an entire v2 batch frame with a frame-level code.
func (p *ClientPort) rejectBatch(cc *clientConn, id uint64, code uint8) {
	resp := wire.ClientResponseV2{ID: id, Batch: true, Code: code}
	cc.push(func(b []byte) []byte { return wire.AppendClientResponseV2(b, &resp) })
}

// track registers one submission in the connection's pending map and
// returns its per-connection sequence number. It reports ok=false when
// the connection has been torn down concurrently.
func (p *ClientPort) track(cc *clientConn, entry pendingEntry) (uint64, bool) {
	p.mu.Lock()
	if cc.pending == nil {
		p.mu.Unlock()
		return 0, false
	}
	cc.seq++
	seq := cc.seq
	cc.pending[seq] = entry
	p.mu.Unlock()
	p.admitRequest()
	return seq, true
}

// submit hands a group of parsed v1/text requests to the node in one
// machine turn, registering each for reply routing.
func (p *ClientPort) submit(cc *clientConn, group []wire.ClientRequest, mode uint8) {
	if p.draining.Load() {
		for i := range group {
			p.reject(cc, mode, group[i].ID, wire.CodeDraining, "draining")
		}
		return
	}
	p.runner.Invoke(func() {
		stalled := p.node().Stalled()
		for i := range group {
			q := &group[i]
			if stalled {
				p.reject(cc, mode, q.ID, wire.CodeStalled, "node stalled")
				continue
			}
			seq, ok := p.track(cc, pendingEntry{id: q.ID, mode: mode})
			if !ok {
				return // torn down concurrently
			}
			p.node().Submit(wire.Request{
				Client: cc.id, Seq: seq, Op: q.Op, Key: q.Key, Val: q.Val,
			})
		}
	})
}

// submitV2 hands a group of parsed v2 frames to the node in one machine
// turn. Linearizable operations (and all mutations) enter consensus;
// Sequential/Stale reads take the committed-state local path and never
// start a cycle.
func (p *ClientPort) submitV2(cc *clientConn, group []wire.ClientRequestV2) {
	if p.draining.Load() {
		for i := range group {
			if group[i].Batch {
				p.rejectBatch(cc, group[i].ID, wire.CodeDraining)
			} else {
				p.reject(cc, modeV2, group[i].ID, wire.CodeDraining, "draining")
			}
		}
		return
	}
	p.runner.Invoke(func() {
		for i := range group {
			q := &group[i]
			switch {
			case q.Register:
				p.registerSession(cc, q.ID)
				continue
			case q.Expire:
				p.expireSession(cc, q.ID, q.Session)
				continue
			case q.Txn:
				p.submitTxn(cc, q)
				continue
			}
			if q.Batch {
				if len(q.Ops) > wire.MaxBatchOps {
					// One batch is one machine turn; an oversized one
					// would monopolize the node exactly as maxGroup
					// exists to prevent for pipelined singles.
					p.rejectBatch(cc, q.ID, wire.CodeBadRequest)
					continue
				}
				p.submitV2Batch(cc, q)
				continue
			}
			op := &q.Ops[0]
			if op.Op == wire.OpRead && q.Consistency != wire.Linearizable {
				if !p.minCycleSane(q.MinCycle) {
					p.reject(cc, modeV2, q.ID, wire.CodeBadRequest, "minCycle too far ahead")
					continue
				}
				p.localRead(cc, q.ID, op.Key, q.MinCycle)
				continue
			}
			if p.node().Stalled() {
				p.reject(cc, modeV2, q.ID, wire.CodeStalled, "node stalled")
				continue
			}
			if q.Session != 0 && op.Op.Mutates() {
				// Session-scoped mutation: the replicated (session, seq)
				// identity travels into consensus, so the apply-path
				// dedup table recognizes a retried committed op.
				p.mu.Lock()
				p.putSessPendingLocked(sessKey{q.Session, q.Seq}, sessEntry{cc: cc, e: pendingEntry{id: q.ID, mode: modeV2}})
				p.mu.Unlock()
				p.node().Submit(wire.Request{
					Client: q.Session, Seq: q.Seq, Op: op.Op, Key: op.Key, Val: op.Val,
				})
				continue
			}
			seq, ok := p.track(cc, pendingEntry{id: q.ID, mode: modeV2})
			if !ok {
				return // torn down concurrently
			}
			p.node().Submit(wire.Request{
				Client: cc.id, Seq: seq, Op: op.Op, Key: op.Key, Val: op.Val,
			})
		}
	})
}

// registerSession proposes a fresh replicated session and answers with
// its 8-byte ID once the registration commits. Runs inside the machine
// turn.
func (p *ClientPort) registerSession(cc *clientConn, id uint64) {
	p.admitRequest()
	p.node().RegisterSession(func(session uint64, ok bool) {
		if !ok {
			// Could not commit here (stall / shutdown): retryable
			// elsewhere, exactly like a draining rejection.
			p.reject(cc, modeV2, id, wire.CodeDraining, "cannot register session")
			p.outstanding.Add(-1)
			return
		}
		val := make([]byte, 8)
		binary.LittleEndian.PutUint64(val, session)
		resp := wire.ClientResponseV2{ID: id, Status: wire.ClientStatusOK,
			Cycle: p.node().Committed(), Val: val}
		cc.push(func(b []byte) []byte { return wire.AppendClientResponseV2(b, &resp) })
		p.outstanding.Add(-1)
	})
}

// expireSession proposes reclaiming a session and acknowledges once the
// expiry commits. Runs inside the machine turn.
func (p *ClientPort) expireSession(cc *clientConn, id, session uint64) {
	p.admitRequest()
	p.node().ExpireSession(session, func(ok bool) {
		if !ok {
			p.reject(cc, modeV2, id, wire.CodeDraining, "cannot expire session")
			p.outstanding.Add(-1)
			return
		}
		resp := wire.ClientResponseV2{ID: id, Status: wire.ClientStatusOK, Cycle: p.node().Committed()}
		cc.push(func(b []byte) []byte { return wire.AppendClientResponseV2(b, &resp) })
		p.outstanding.Add(-1)
	})
}

// maxMinCycleAhead bounds how far beyond the replica's committed cycle
// a Sequential read may wait. Legitimate read timestamps come from
// observed commits, so they can only lead a healthy replica by the
// pipelining depth plus transient lag; anything further is a bug or an
// attempt to park unbounded state server-side.
const maxMinCycleAhead = 1 << 16

// minCycleSane validates a deferred read's target cycle against the
// bound.
func (p *ClientPort) minCycleSane(minCycle uint64) bool {
	return minCycle <= p.node().Committed()+maxMinCycleAhead
}

// trackedReadLocal runs one committed-state read with the outstanding /
// deferred-read accounting shared by the single-op and batch paths.
// complete runs with the port mutex NOT held — on the apply executor in
// parallel mode, under the machine turn in serial mode — with the op's
// status, value and serving cycle (status Err means the read was
// abandoned: node shutting down, crashed, or stalled below the awaited
// cycle) and is responsible for the matching outstanding decrement.
func (p *ClientPort) trackedReadLocal(key, minCycle uint64, complete func(status uint8, val []byte, cycle uint64)) {
	p.admitRequest()
	// Whether this read will park is the executor's decision in parallel
	// mode; the committed watermark is the best (conservative) estimate,
	// and the completion settles the account using the same flag.
	deferred := minCycle > p.node().Committed()
	if deferred {
		p.deferredLocal.Add(1)
	}
	p.node().ReadLocal(key, minCycle, func(val []byte, cycle uint64, ok bool) {
		status := wire.ClientStatusOK
		switch {
		case !ok:
			status, val = wire.ClientStatusErr, []byte("unavailable")
		case val == nil:
			status = wire.ClientStatusNil
		}
		complete(status, val, cycle)
		if deferred {
			p.deferredLocal.Add(-1)
		}
	})
}

// localRead serves one non-linearizable single-op read from committed
// state.
func (p *ClientPort) localRead(cc *clientConn, id uint64, key, minCycle uint64) {
	p.trackedReadLocal(key, minCycle, func(status uint8, val []byte, cycle uint64) {
		resp := wire.ClientResponseV2{ID: id, Status: status, Cycle: cycle, Val: val}
		if status == wire.ClientStatusErr {
			// Abandoned: tell the client to go elsewhere (retryable).
			resp.Code = wire.CodeDraining
		}
		cc.push(func(b []byte) []byte { return wire.AppendClientResponseV2(b, &resp) })
		p.outstanding.Add(-1)
	})
}

// submitV2Batch registers one multi-op frame: consensus sub-ops and
// local reads complete independently into the shared aggregate, and the
// response goes out when the last slot fills. In a session batch the
// frame's mutating ops carry session seqs q.Seq, q.Seq+1, ... in frame
// order (reads consume none), mirroring the client's assignment. Runs
// inside the machine turn.
func (p *ClientPort) submitV2Batch(cc *clientConn, q *wire.ClientRequestV2) {
	agg := newBatchAgg(q.ID, len(q.Ops))
	stalled := p.node().Stalled()
	sessSeq := q.Seq
	for i := range q.Ops {
		op := &q.Ops[i]
		if op.Op == wire.OpRead && q.Consistency != wire.Linearizable {
			if !p.minCycleSane(q.MinCycle) {
				p.admitRequest() // completeBatchOp undoes it
				p.mu.Lock()
				p.completeBatchOp(cc, agg, i, wire.ClientStatusErr, wire.CodeBadRequest, []byte("minCycle too far ahead"), 0)
				p.mu.Unlock()
				continue
			}
			idx := i
			p.trackedReadLocal(op.Key, q.MinCycle, func(status uint8, val []byte, cycle uint64) {
				code := wire.CodeNone
				if status == wire.ClientStatusErr {
					code = wire.CodeDraining
				}
				p.mu.Lock()
				p.completeBatchOp(cc, agg, idx, status, code, val, cycle)
				p.mu.Unlock()
			})
			continue
		}
		if stalled {
			p.admitRequest() // completeBatchOp undoes it; keeps one accounting path
			p.mu.Lock()
			p.completeBatchOp(cc, agg, i, wire.ClientStatusErr, wire.CodeStalled, []byte("node stalled"), 0)
			p.mu.Unlock()
			continue
		}
		if q.Session != 0 && op.Op.Mutates() {
			seq := sessSeq
			sessSeq++
			p.mu.Lock()
			p.putSessPendingLocked(sessKey{q.Session, seq}, sessEntry{cc: cc, e: pendingEntry{id: q.ID, mode: modeV2, agg: agg, idx: i}})
			p.mu.Unlock()
			p.node().Submit(wire.Request{
				Client: q.Session, Seq: seq, Op: op.Op, Key: op.Key, Val: op.Val,
			})
			continue
		}
		seq, ok := p.track(cc, pendingEntry{id: q.ID, mode: modeV2, agg: agg, idx: i})
		if !ok {
			return // torn down concurrently; teardown retired the accounting
		}
		p.node().Submit(wire.Request{
			Client: cc.id, Seq: seq, Op: op.Op, Key: op.Key, Val: op.Val,
		})
	}
}

// submitTxn hands one parsed v3 transaction frame to the node: the body
// re-encodes into a fresh buffer (the parsed guards/ops alias the read
// loop's arena, which dies with the group) and rides consensus as a
// single wire.OpTxn request. With a session the replicated (session,
// seq) identity makes the txn exactly-once across failover, like any
// session mutation; without one it submits at-most-once under the
// connection identity. Runs inside the machine turn.
func (p *ClientPort) submitTxn(cc *clientConn, q *wire.ClientRequestV2) {
	if p.node().Stalled() {
		p.reject(cc, modeV2, q.ID, wire.CodeStalled, "node stalled")
		return
	}
	body := wire.AppendTxn(nil, &wire.Txn{Guards: q.TxnGuards, Ops: q.TxnOps})
	if q.Session != 0 {
		p.mu.Lock()
		p.putSessPendingLocked(sessKey{q.Session, q.Seq}, sessEntry{cc: cc, e: pendingEntry{id: q.ID, mode: modeV2}})
		p.mu.Unlock()
		p.node().Submit(wire.Request{Client: q.Session, Seq: q.Seq, Op: wire.OpTxn, Val: body})
		return
	}
	seq, ok := p.track(cc, pendingEntry{id: q.ID, mode: modeV2})
	if !ok {
		return // torn down concurrently
	}
	p.node().Submit(wire.Request{Client: cc.id, Seq: seq, Op: wire.OpTxn, Val: body})
}

// handleWatch registers one watch on the node's event hub. It runs on
// the connection's read goroutine, never inside a machine turn: the hub
// has its own lock, so registration — including the history replay for
// a resuming watch — costs consensus nothing. Replayed EVENT frames are
// buffered before the OK ack is, so on the wire the client sees replay,
// then ack, then live pushes, with no seam.
//
// A WATCH reusing a live client watch ID replaces that registration —
// the reconnect-and-resume path — and the ack's Cycle is the hub's
// watermark at registration: the feed is complete from that cycle
// (exclusive) on, which is exactly the resume point a client should
// carry into a failover.
func (p *ClientPort) handleWatch(cc *clientConn, q *wire.ClientRequestV2) {
	if p.hub() == nil {
		p.reject(cc, modeV2, q.ID, wire.CodeBadRequest, "watches not enabled")
		return
	}
	if p.draining.Load() {
		p.reject(cc, modeV2, q.ID, wire.CodeDraining, "draining")
		return
	}
	p.mu.Lock()
	if cc.pending == nil {
		p.mu.Unlock()
		return // torn down concurrently
	}
	if cc.watches == nil {
		cc.watches = make(map[uint64]uint64)
	}
	old, replaced := cc.watches[q.WatchID]
	delete(cc.watches, q.WatchID)
	p.mu.Unlock()
	if replaced {
		p.hub().Cancel(old)
	}
	spec := events.Spec{Key: q.WatchKey, PrefixBits: q.PrefixBits, SinceCycle: q.SinceCycle}
	hubID, err := p.hub().Watch(spec, p.watchSink(cc, q.WatchID))
	if err != nil {
		// Resume point already evicted (or the replay itself overflowed):
		// the feed cannot be gap-free. The client must re-read state.
		p.reject(cc, modeV2, q.ID, wire.CodeWatchOverflow, "watch resume point evicted")
		return
	}
	p.mu.Lock()
	if cc.pending == nil {
		p.mu.Unlock()
		p.hub().Cancel(hubID)
		return
	}
	cc.watches[q.WatchID] = hubID
	p.mu.Unlock()
	resp := wire.ClientResponseV2{ID: q.ID, Status: wire.ClientStatusOK, Cycle: p.hub().LastCycle()}
	cc.push(func(b []byte) []byte { return wire.AppendClientResponseV2(b, &resp) })
}

// handleUnwatch cancels one watch. Idempotent — cancelling an unknown
// or already-overflowed watch still acks, so client and server never
// deadlock over who forgot whom. Runs on the read goroutine.
func (p *ClientPort) handleUnwatch(cc *clientConn, q *wire.ClientRequestV2) {
	p.mu.Lock()
	hubID, ok := cc.watches[q.WatchID]
	delete(cc.watches, q.WatchID)
	p.mu.Unlock()
	if ok && p.hub() != nil {
		p.hub().Cancel(hubID)
	}
	resp := wire.ClientResponseV2{ID: q.ID, Status: wire.ClientStatusOK}
	cc.push(func(b []byte) []byte { return wire.AppendClientResponseV2(b, &resp) })
}

// watchSink builds the hub sink feeding one connection's watch: each
// notification encodes as a server-push EVENT frame (ID = the client's
// watch ID) into the connection's output buffer. It runs under the hub
// mutex on the apply executor, so it must not block and must NOT take
// the port mutex (the submit paths hold it while calling into the hub).
// The buffer budget turns a non-reading client into a watch overflow;
// the terminal overflow notice itself bypasses the budget.
func (p *ClientPort) watchSink(cc *clientConn, watchID uint64) events.Sink {
	return func(n events.Notification) bool {
		resp := wire.ClientResponseV2{ID: watchID, Event: true, Cycle: n.Cycle,
			Overflow: n.Overflow, Events: n.Events}
		return cc.pushBudget(func(b []byte) []byte {
			return wire.AppendClientResponseV3(b, &resp)
		}, watchOutBudget, n.Overflow)
	}
}

// dropWatches cancels every hub registration of one connection:
// collect under the port mutex, cancel outside it (port mutex → hub
// mutex is the allowed order, but shorter critical sections win).
func (p *ClientPort) dropWatches(cc *clientConn) {
	if p.hub() == nil {
		return
	}
	p.mu.Lock()
	ids := make([]uint64, 0, len(cc.watches))
	for _, hubID := range cc.watches {
		ids = append(ids, hubID)
	}
	cc.watches = nil
	p.mu.Unlock()
	for _, id := range ids {
		p.hub().Cancel(id)
	}
}

// SubmitLocal injects one operation directly into the node — no socket,
// no frame encoding — while sharing the port's reply fan-out, drain
// rejection and outstanding accounting with socket clients. done is
// invoked from the node's execution context (machine turn in serial
// mode, apply executor in parallel mode — it must not block either way)
// with the read value and whether the operation was served; ok=false
// means the port is draining or the node has stalled. This is the
// backend path of the public canopus.Cluster interface.
func (p *ClientPort) SubmitLocal(op wire.Op, key uint64, val []byte, done func(val []byte, ok bool)) {
	if p.draining.Load() {
		done(nil, false)
		return
	}
	cc := p.local()
	p.runner.Invoke(func() {
		if p.node().Stalled() {
			done(nil, false)
			return
		}
		seq, ok := p.track(cc, pendingEntry{done: done})
		if !ok {
			done(nil, false)
			return
		}
		p.node().Submit(wire.Request{Client: cc.id, Seq: seq, Op: op, Key: key, Val: val})
	})
}

// RegisterLocal proposes a fresh replicated session without a socket —
// the Cluster-interface twin of the v2 register frame. done runs from
// the node's machine turn (it must not block) with the committed session
// ID; ok=false means the port is draining or the node cannot commit.
func (p *ClientPort) RegisterLocal(done func(id uint64, ok bool)) {
	if p.draining.Load() {
		done(0, false)
		return
	}
	p.runner.Invoke(func() {
		p.admitRequest()
		p.node().RegisterSession(func(id uint64, ok bool) {
			done(id, ok)
			p.outstanding.Add(-1)
		})
	})
}

// SubmitSessionLocal injects one session-scoped operation directly into
// the node, sharing the session reply routing with socket clients: a
// mutation whose (session, seq) already committed completes with the
// cached reply instead of applying twice. done runs from the node's
// execution context (see SubmitLocal); ok=false means draining, stalled,
// crashed — or the session expired.
func (p *ClientPort) SubmitSessionLocal(session, seq uint64, op wire.Op, key uint64, val []byte, done func(val []byte, ok bool)) {
	if p.draining.Load() {
		done(nil, false)
		return
	}
	cc := p.local()
	p.runner.Invoke(func() {
		if p.node().Stalled() {
			done(nil, false)
			return
		}
		if !op.Mutates() {
			// Reads are idempotent: no dedup identity needed.
			seq, ok := p.track(cc, pendingEntry{done: done})
			if !ok {
				done(nil, false)
				return
			}
			p.node().Submit(wire.Request{Client: cc.id, Seq: seq, Op: op, Key: key, Val: val})
			return
		}
		p.mu.Lock()
		if cc.pending == nil {
			p.mu.Unlock()
			done(nil, false)
			return
		}
		p.putSessPendingLocked(sessKey{session, seq}, sessEntry{cc: cc, e: pendingEntry{done: done}})
		p.mu.Unlock()
		p.node().Submit(wire.Request{Client: session, Seq: seq, Op: op, Key: key, Val: val})
	})
}

// handleBinary runs the pipelined binary protocol v1: all complete
// frames already buffered are batched into a single submit turn.
func (p *ClientPort) handleBinary(cc *clientConn, br *bufio.Reader) {
	var hdr [4]byte
	var payload []byte // reused; parsed payloads copy into the group arena
	group := make([]wire.ClientRequest, 0, maxGroup)
	for {
		group = group[:0]
		// One value arena per accepted group: every parsed payload is
		// copied into it once, and the arena travels into consensus with
		// the requests (it is NOT reused across groups).
		var arena []byte
		// Block for the first request of the group.
		if _, err := io.ReadFull(br, hdr[:]); err != nil {
			return
		}
		q, err := readBinaryRequest(br, hdr, &payload, &arena)
		if err != nil {
			return
		}
		group = append(group, q)
		// Drain whatever full frames the kernel already delivered.
		for len(group) < maxGroup && br.Buffered() >= 4 {
			peek, _ := br.Peek(4)
			n, err := wire.ClientFrameLen([4]byte(peek))
			if err != nil {
				return
			}
			if br.Buffered() < 4+n {
				break
			}
			if _, err := io.ReadFull(br, hdr[:]); err != nil {
				return
			}
			q, err := readBinaryRequest(br, hdr, &payload, &arena)
			if err != nil {
				return
			}
			group = append(group, q)
		}
		p.submit(cc, group, modeV1)
	}
}

// handleV2 runs the pipelined binary protocol v2, with the same
// group-per-turn batching and per-group value arena as v1.
func (p *ClientPort) handleV2(cc *clientConn, br *bufio.Reader) {
	var hdr [4]byte
	var payload []byte
	group := make([]wire.ClientRequestV2, 0, maxGroup)
	for {
		group = group[:0]
		var arena []byte
		if _, err := io.ReadFull(br, hdr[:]); err != nil {
			return
		}
		if err := readV2Request(br, hdr, &payload, &arena, appendV2Slot(&group)); err != nil {
			return
		}
		for len(group) < maxGroup && br.Buffered() >= 4 {
			peek, _ := br.Peek(4)
			n, err := wire.ClientFrameLen([4]byte(peek))
			if err != nil {
				return
			}
			if br.Buffered() < 4+n {
				break
			}
			if _, err := io.ReadFull(br, hdr[:]); err != nil {
				return
			}
			if err := readV2Request(br, hdr, &payload, &arena, appendV2Slot(&group)); err != nil {
				return
			}
		}
		p.submitV2(cc, group)
	}
}

// handleV3 runs the pipelined binary protocol v3: v2's group-per-turn
// batching with the v3 parser on top. Completion entries reuse modeV2 —
// every non-event v3 response is bit-identical to its v2 encoding.
func (p *ClientPort) handleV3(cc *clientConn, br *bufio.Reader) {
	var hdr [4]byte
	var payload []byte
	group := make([]wire.ClientRequestV2, 0, maxGroup)
	for {
		group = group[:0]
		var arena []byte
		if _, err := io.ReadFull(br, hdr[:]); err != nil {
			return
		}
		if err := readV3Request(br, hdr, &payload, &arena, appendV2Slot(&group)); err != nil {
			return
		}
		for len(group) < maxGroup && br.Buffered() >= 4 {
			peek, _ := br.Peek(4)
			n, err := wire.ClientFrameLen([4]byte(peek))
			if err != nil {
				return
			}
			if br.Buffered() < 4+n {
				break
			}
			if _, err := io.ReadFull(br, hdr[:]); err != nil {
				return
			}
			if err := readV3Request(br, hdr, &payload, &arena, appendV2Slot(&group)); err != nil {
				return
			}
		}
		p.submitV3(cc, group)
	}
}

// submitV3 dispatches one v3 group in frame order: WATCH and UNWATCH
// are handled right here on the read goroutine (the hub has its own
// lock; no machine turn involved), and the contiguous runs between them
// — v2 shapes plus TXN frames — go through submitV2's single-turn
// batching unchanged.
func (p *ClientPort) submitV3(cc *clientConn, group []wire.ClientRequestV2) {
	start := 0
	flush := func(end int) {
		if end > start {
			p.submitV2(cc, group[start:end])
		}
	}
	for i := range group {
		q := &group[i]
		if !q.Watch && !q.Unwatch {
			continue
		}
		flush(i)
		start = i + 1
		if q.Watch {
			p.handleWatch(cc, q)
		} else {
			p.handleUnwatch(cc, q)
		}
	}
	flush(len(group))
}

// appendV2Slot extends the group by one reusable slot and returns it.
// The slot keeps its Ops backing array across groups, so steady-state
// parsing allocates nothing per request.
func appendV2Slot(group *[]wire.ClientRequestV2) *wire.ClientRequestV2 {
	g := *group
	if len(g) < cap(g) {
		g = g[:len(g)+1]
	} else {
		g = append(g, wire.ClientRequestV2{})
	}
	*group = g
	return &g[len(g)-1]
}

func readBinaryRequest(br *bufio.Reader, hdr [4]byte, scratch, arena *[]byte) (wire.ClientRequest, error) {
	payload, err := readFrame(br, hdr, scratch)
	if err != nil {
		return wire.ClientRequest{}, err
	}
	return wire.ParseClientRequestArena(payload, arena)
}

func readV2Request(br *bufio.Reader, hdr [4]byte, scratch, arena *[]byte, q *wire.ClientRequestV2) error {
	payload, err := readFrame(br, hdr, scratch)
	if err != nil {
		return err
	}
	return wire.ParseClientRequestV2Into(payload, q, arena)
}

func readV3Request(br *bufio.Reader, hdr [4]byte, scratch, arena *[]byte, q *wire.ClientRequestV2) error {
	payload, err := readFrame(br, hdr, scratch)
	if err != nil {
		return err
	}
	return wire.ParseClientRequestV3Into(payload, q, arena)
}

func readFrame(br *bufio.Reader, hdr [4]byte, scratch *[]byte) ([]byte, error) {
	n, err := wire.ClientFrameLen(hdr)
	if err != nil {
		return nil, err
	}
	if cap(*scratch) < n {
		*scratch = make([]byte, n)
	}
	payload := (*scratch)[:n]
	if _, err := io.ReadFull(br, payload); err != nil {
		return nil, err
	}
	return payload, nil
}

// waitIdle blocks until the connection has no pending requests (its
// replies are buffered for the writer) or timeout elapses.
func (p *ClientPort) waitIdle(cc *clientConn, timeout time.Duration) {
	deadline := time.Now().Add(timeout)
	for {
		p.mu.Lock()
		n := len(cc.pending)
		p.mu.Unlock()
		if n == 0 || time.Now().After(deadline) {
			return
		}
		time.Sleep(200 * time.Microsecond)
	}
}

// handleText runs the interactive line protocol.
func (p *ClientPort) handleText(cc *clientConn, br *bufio.Reader) {
	sc := bufio.NewScanner(br)
	group := make([]wire.ClientRequest, 0, 1)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) == 0 {
			continue
		}
		var q wire.ClientRequest
		switch strings.ToUpper(fields[0]) {
		case "PUT":
			if len(fields) < 3 {
				p.reject(cc, modeText, 0, wire.CodeBadRequest, "usage: PUT <key> <value>")
				continue
			}
			k, err := strconv.ParseUint(fields[1], 10, 64)
			if err != nil {
				p.reject(cc, modeText, 0, wire.CodeBadRequest, "bad key")
				continue
			}
			q = wire.ClientRequest{Op: wire.OpWrite, Key: k, Val: []byte(strings.Join(fields[2:], " "))}
		case "GET":
			if len(fields) != 2 {
				p.reject(cc, modeText, 0, wire.CodeBadRequest, "usage: GET <key>")
				continue
			}
			k, err := strconv.ParseUint(fields[1], 10, 64)
			if err != nil {
				p.reject(cc, modeText, 0, wire.CodeBadRequest, "bad key")
				continue
			}
			q = wire.ClientRequest{Op: wire.OpRead, Key: k}
		case "DEL":
			if len(fields) != 2 {
				p.reject(cc, modeText, 0, wire.CodeBadRequest, "usage: DEL <key>")
				continue
			}
			k, err := strconv.ParseUint(fields[1], 10, 64)
			if err != nil {
				p.reject(cc, modeText, 0, wire.CodeBadRequest, "bad key")
				continue
			}
			q = wire.ClientRequest{Op: wire.OpDelete, Key: k}
		case "DIGEST":
			// Replica identity check, used by the durability smoke test:
			// answer with the committed cycle and the replica's state and
			// log digests. The preceding waitIdle already ordered this
			// after every earlier command's (fsync-gated) reply, so the
			// digest covers everything this connection was acked for.
			if p.digest == nil {
				p.reject(cc, modeText, 0, wire.CodeBadRequest, "digest not enabled")
				continue
			}
			cycle, state, logd := p.digest()
			cc.push(func(b []byte) []byte {
				return fmt.Appendf(b, "DIGEST %d %016x %016x\n", cycle, state, logd)
			})
			continue
		case "QUIT":
			return
		default:
			p.reject(cc, modeText, 0, wire.CodeBadRequest, "unknown command")
			continue
		}
		group = append(group[:0], q)
		p.submit(cc, group, modeText)
		// The text protocol has no correlation IDs, so replies must be
		// strictly ordered with commands: wait for this command's reply
		// to reach the output buffer before reading the next line (which
		// might be rejected immediately, e.g. a parse error, and would
		// otherwise overtake a consensus-path reply).
		p.waitIdle(cc, 10*time.Second)
	}
}

// Stop shuts the port down gracefully: stop accepting, reject new
// requests, wait up to drain for in-flight requests to be answered, then
// flush and close every connection. It reports whether the drain
// completed (false means the timeout cut it short).
func (p *ClientPort) Stop(drain time.Duration) bool {
	p.draining.Store(true)
	p.ln.Close()
	deadline := time.Now().Add(drain)
	drained := true
	// Deferred Sequential reads (parked on a future commit cycle) do not
	// gate the drain: on an idle or stalling node they would never
	// complete, so only genuinely in-flight work is awaited and the
	// stragglers are then rejected with a draining code.
	for p.outstanding.Load() > p.deferredLocal.Load() {
		if time.Now().After(deadline) {
			drained = false
			break
		}
		time.Sleep(time.Millisecond)
	}
	if p.outstanding.Load() > 0 {
		p.runner.Invoke(func() {
			p.node().FailLocalReads()
			p.node().FailSessionWaiters()
		})
		// Parked reads fail on the apply executor in parallel mode; give
		// the failure a moment to propagate through the accounting.
		for p.outstanding.Load() > 0 && time.Now().Before(deadline) {
			time.Sleep(time.Millisecond)
		}
		if p.outstanding.Load() > 0 {
			drained = false
		}
	}
	// Local (Cluster.Submit) operations still unanswered after the drain
	// will never complete once the transport closes; honor the done
	// contract (ok=false) now.
	p.mu.Lock()
	loc := p.loc
	p.mu.Unlock()
	if loc != nil {
		p.failPending(loc)
	}
	p.mu.Lock()
	conns := make([]*clientConn, 0, len(p.conns))
	for _, cc := range p.conns {
		conns = append(conns, cc)
	}
	p.mu.Unlock()
	for _, cc := range conns {
		p.dropWatches(cc)
		cc.outMu.Lock()
		cc.closing = true
		cc.outMu.Unlock()
		select {
		case cc.wake <- struct{}{}:
		default:
		}
	}
	done := make(chan struct{})
	go func() { p.writers.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		drained = false
		for _, cc := range conns {
			if cc.conn != nil {
				cc.conn.Close()
			}
		}
	}
	return drained
}

// Abort tears the port down immediately — close the listener and sever
// every connection without draining. Tests use it to simulate a node
// crash as seen by clients (in-flight requests are simply lost).
func (p *ClientPort) Abort() {
	p.draining.Store(true)
	p.ln.Close()
	p.mu.Lock()
	conns := make([]*clientConn, 0, len(p.conns))
	for _, cc := range p.conns {
		conns = append(conns, cc)
	}
	p.mu.Unlock()
	for _, cc := range conns {
		p.dropWatches(cc)
		cc.outMu.Lock()
		cc.closing = true
		cc.outMu.Unlock()
		if cc.conn != nil {
			cc.conn.Close()
		}
		select {
		case cc.wake <- struct{}{}:
		default:
		}
	}
	// The node is dead: its in-flight requests will never be answered,
	// so retire their accounting. Socket clients recover via failover;
	// local (Cluster.Submit) callers are owed their done callback, with
	// ok=false — and deferred local reads their abandonment.
	p.runner.Invoke(func() {
		p.node().FailLocalReads()
		p.node().FailSessionWaiters()
	})
	for _, cc := range conns {
		p.failPending(cc)
	}
}

// DigestSource builds a SetDigestFunc source for one node: it reads the
// replica with the apply pipeline quiesced (InspectApplied in parallel
// mode, a machine turn in serial mode), so the digest is a consistent
// cut at a cycle boundary. Cluster.Start and canopus-server share it.
func DigestSource(runner *transport.Runner, node *core.Node, st *kvstore.Store) func() (uint64, uint64, uint64) {
	return func() (cycle, state, logd uint64) {
		read := func() {
			cycle = node.Committed()
			state = st.StateDigest()
			logd = st.LogDigest()
		}
		if node.ParallelApply() {
			node.InspectApplied(read)
		} else {
			runner.Invoke(read)
		}
		return
	}
}

// StatusSource builds the admin gateway's /status document source for
// one node, layered over the same quiesced read DigestSource uses so the
// (applied, digest) pair is a consistent cut. Membership and cycle
// watermarks are read inside a machine turn, where the view is stable.
// dur may be nil (no WAL), hub may be nil (no event plane).
// Cluster.Start and canopus-server share it.
func StatusSource(runner *transport.Runner, node *core.Node, st *kvstore.Store, dur *wal.Manager, hub *events.Hub) func() admin.Status {
	digest := DigestSource(runner, node, st)
	return func() admin.Status {
		var s admin.Status
		cycle, state, logd := digest()
		s.Applied = cycle
		s.StateDigest = fmt.Sprintf("%016x", state)
		s.LogDigest = fmt.Sprintf("%016x", logd)
		if hub != nil {
			s.Watchers = hub.Active()
		}
		runner.Invoke(func() {
			s.Node = int32(node.ID())
			s.Started = node.Started()
			s.Ordered = node.Ordered()
			s.Stalled = node.Stalled()
			if node.StallSuspected() {
				s.Degraded = "stalled"
			}
			// A restarted joiner has no view until its join completes —
			// report membership without per-leaf liveness until then.
			view := node.View()
			for _, h := range node.LeafHealth() {
				sl := admin.SuperLeaf{
					Index:     h.SL,
					Failed:    h.Failed,
					Evicted:   h.Evicted,
					EvictedAt: h.EvictedAt,
				}
				for _, m := range h.Members {
					sl.Members = append(sl.Members, int32(m))
					if view != nil && view.Alive(m) {
						sl.Alive = append(sl.Alive, int32(m))
					}
				}
				s.Membership = append(s.Membership, sl)
			}
		})
		if dur != nil {
			ds := dur.Stats()
			s.Durability = &admin.Durability{
				DurableCycle:  ds.DurableCycle,
				Syncs:         ds.Syncs,
				SyncedRecords: ds.SyncedRecords,
				LastBatch:     ds.LastBatch,
				Snapshots:     ds.Snapshots,
			}
		}
		return s
	}
}

// failPending retires every pending entry of one connection, completing
// local done callbacks with ok=false (the Cluster.Submit contract: done
// always fires).
func (p *ClientPort) failPending(cc *clientConn) {
	p.mu.Lock()
	p.dropSessPendingLocked(cc)
	if len(cc.pending) == 0 {
		cc.pending = nil
		p.mu.Unlock()
		return
	}
	p.outstanding.Add(int64(-len(cc.pending)))
	pending := cc.pending
	cc.pending = nil
	p.mu.Unlock()
	for _, entry := range pending {
		if entry.done != nil {
			entry.done(nil, false)
		}
	}
}
