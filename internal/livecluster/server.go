package livecluster

import (
	"bufio"
	"fmt"
	"io"
	"net"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"canopus/internal/core"
	"canopus/internal/transport"
	"canopus/internal/wire"
)

// maxGroup bounds how many pipelined requests one connection submits per
// machine turn; deeper pipelines are split across turns so one greedy
// client cannot monopolize the node's serialization lock.
const maxGroup = 512

// ClientPort serves canopus-server's client protocol for one node: the
// length-prefixed binary protocol (wire.ClientRequest/ClientResponse)
// for programs, and the line-oriented text protocol (GET/PUT/QUIT) for
// interactive use, sniffed per connection from the first byte.
//
// Replies are fanned out batch-aware: the port owns the node's
// OnReplyBatch callback, so one committed cycle costs one pass over its
// completions, appended into per-connection output buffers flushed by
// per-connection writers — the consensus turn never blocks on a slow
// client socket.
type ClientPort struct {
	runner *transport.Runner
	node   *core.Node
	ln     net.Listener

	draining    atomic.Bool
	outstanding atomic.Int64 // accepted-but-unanswered requests

	// mu guards conns; pending maps inside each conn are guarded by the
	// runner's machine lock (inserted under Invoke, consumed under the
	// node's reply callback).
	mu     sync.Mutex
	nextID uint64
	conns  map[uint64]*clientConn

	writers sync.WaitGroup
}

// pendingEntry maps one submitted request back to its connection frame.
type pendingEntry struct {
	id   uint64 // binary correlation ID (unused in text mode)
	text bool
}

type clientConn struct {
	id   uint64
	conn net.Conn

	// pending maps request Seq -> entry; guarded by the runner lock.
	pending map[uint64]pendingEntry

	outMu   sync.Mutex
	out     []byte // encoded responses awaiting flush
	wake    chan struct{}
	closing bool
}

// NewClientPort starts serving the client protocol for node on addr
// (e.g. "127.0.0.1:0"). It installs itself as the node's reply callback.
func NewClientPort(runner *transport.Runner, node *core.Node, addr string) (*ClientPort, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("livecluster: client listen %s: %w", addr, err)
	}
	p := &ClientPort{
		runner: runner,
		node:   node,
		ln:     ln,
		conns:  make(map[uint64]*clientConn),
	}
	node.SetOnReplyBatch(p.onReplyBatch)
	go p.acceptLoop()
	return p, nil
}

// Addr returns the bound client address.
func (p *ClientPort) Addr() string { return p.ln.Addr().String() }

// Outstanding returns the number of accepted, not-yet-answered requests.
func (p *ClientPort) Outstanding() int64 { return p.outstanding.Load() }

func (p *ClientPort) acceptLoop() {
	for {
		conn, err := p.ln.Accept()
		if err != nil {
			return // listener closed
		}
		p.mu.Lock()
		p.nextID++
		cc := &clientConn{
			id:      (uint64(int64(p.node.ID())+1) << 32) | p.nextID,
			conn:    conn,
			pending: make(map[uint64]pendingEntry),
			wake:    make(chan struct{}, 1),
		}
		p.conns[cc.id] = cc
		p.mu.Unlock()
		p.writers.Add(1)
		go p.writeLoop(cc)
		go p.handle(cc)
	}
}

// handle drives one connection's read side until EOF or protocol error.
func (p *ClientPort) handle(cc *clientConn) {
	defer p.teardown(cc)
	br := bufio.NewReaderSize(cc.conn, 64<<10)
	first, err := br.Peek(1)
	if err != nil {
		return
	}
	if first[0] == wire.ClientMagic[0] {
		var magic [4]byte
		if _, err := io.ReadFull(br, magic[:]); err != nil || magic != wire.ClientMagic {
			return
		}
		p.handleBinary(cc, br)
		return
	}
	p.handleText(cc, br)
}

// teardown retires the connection. The read side is already done (EOF,
// QUIT or protocol error), but submitted requests may still be in
// consensus: wait briefly so their replies reach the output buffer and
// are flushed before the writer closes the socket (a client that sends
// GET then QUIT still gets its value).
func (p *ClientPort) teardown(cc *clientConn) {
	p.waitIdle(cc, 5*time.Second)
	p.mu.Lock()
	delete(p.conns, cc.id)
	p.mu.Unlock()
	p.runner.Invoke(func() {
		if n := len(cc.pending); n > 0 {
			p.outstanding.Add(int64(-n))
			cc.pending = nil
		}
	})
	cc.outMu.Lock()
	cc.closing = true
	cc.outMu.Unlock()
	select {
	case cc.wake <- struct{}{}:
	default:
	}
}

// writeLoop flushes one connection's response buffer: each wakeup writes
// everything accumulated since the last flush with a single syscall.
func (p *ClientPort) writeLoop(cc *clientConn) {
	defer p.writers.Done()
	for range cc.wake {
		for {
			cc.outMu.Lock()
			buf := cc.out
			cc.out = nil
			closing := cc.closing
			cc.outMu.Unlock()
			if len(buf) == 0 {
				if closing {
					cc.conn.Close()
					return
				}
				break
			}
			cc.conn.SetWriteDeadline(time.Now().Add(10 * time.Second))
			_, err := cc.conn.Write(buf)
			wire.EncodePool.Put(buf)
			if err != nil {
				cc.conn.Close()
				return
			}
		}
	}
}

// push appends encoded response bytes to the connection's output buffer
// and rings its writer.
func (cc *clientConn) push(render func(b []byte) []byte) {
	cc.outMu.Lock()
	if cc.closing {
		cc.outMu.Unlock()
		return
	}
	if cc.out == nil {
		cc.out = wire.EncodePool.Get(256)
	}
	cc.out = render(cc.out)
	cc.outMu.Unlock()
	select {
	case cc.wake <- struct{}{}:
	default:
	}
}

// onReplyBatch is the node's completion callback: it runs inside the
// machine turn and fans one batch of completions out to the owning
// connections' buffers (no socket writes on this path).
func (p *ClientPort) onReplyBatch(reqs []wire.Request, vals [][]byte) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for i := range reqs {
		req := &reqs[i]
		cc, ok := p.conns[req.Client]
		if !ok {
			continue // connection gone; reply dropped
		}
		entry, ok := cc.pending[req.Seq]
		if !ok {
			continue
		}
		// Buffer the reply BEFORE retiring the pending entry: Stop and
		// teardown poll Outstanding()/pending to decide when it is safe
		// to set closing, so the response must already be in the output
		// buffer (the writer flushes it before closing) by the time this
		// request stops counting as outstanding.
		val := vals[i]
		if entry.text {
			cc.push(func(b []byte) []byte { return appendTextReply(b, req.Op, val) })
		} else {
			resp := wire.ClientResponse{ID: entry.id, Status: wire.ClientStatusOK, Val: val}
			if req.Op == wire.OpRead && val == nil {
				resp.Status = wire.ClientStatusNil
			}
			cc.push(func(b []byte) []byte { return wire.AppendClientResponse(b, &resp) })
		}
		delete(cc.pending, req.Seq)
		p.outstanding.Add(-1)
	}
}

func appendTextReply(b []byte, op wire.Op, val []byte) []byte {
	if op == wire.OpWrite {
		return append(b, "OK\n"...)
	}
	if val == nil {
		return append(b, "NIL\n"...)
	}
	b = append(b, "VALUE "...)
	b = append(b, val...)
	return append(b, '\n')
}

// reject answers a request without consulting the node.
func (p *ClientPort) reject(cc *clientConn, text bool, id uint64, reason string) {
	if text {
		cc.push(func(b []byte) []byte {
			b = append(b, "ERR "...)
			b = append(b, reason...)
			return append(b, '\n')
		})
		return
	}
	resp := wire.ClientResponse{ID: id, Status: wire.ClientStatusErr, Val: []byte(reason)}
	cc.push(func(b []byte) []byte { return wire.AppendClientResponse(b, &resp) })
}

// submit hands a group of parsed requests to the node in one machine
// turn, registering each for reply routing.
func (p *ClientPort) submit(cc *clientConn, group []wire.ClientRequest, seq *uint64, text bool) {
	if p.draining.Load() {
		for i := range group {
			p.reject(cc, text, group[i].ID, "draining")
		}
		return
	}
	p.runner.Invoke(func() {
		if cc.pending == nil {
			return // torn down concurrently
		}
		stalled := p.node.Stalled()
		for i := range group {
			q := &group[i]
			if stalled {
				p.reject(cc, text, q.ID, "node stalled")
				continue
			}
			*seq++
			cc.pending[*seq] = pendingEntry{id: q.ID, text: text}
			p.outstanding.Add(1)
			p.node.Submit(wire.Request{
				Client: cc.id, Seq: *seq, Op: q.Op, Key: q.Key, Val: q.Val,
			})
		}
	})
}

// handleBinary runs the pipelined binary protocol: all complete frames
// already buffered are batched into a single submit turn.
func (p *ClientPort) handleBinary(cc *clientConn, br *bufio.Reader) {
	var seq uint64
	var hdr [4]byte
	var payload []byte // reused; ParseClientRequest copies what it keeps
	group := make([]wire.ClientRequest, 0, maxGroup)
	for {
		group = group[:0]
		// Block for the first request of the group.
		if _, err := io.ReadFull(br, hdr[:]); err != nil {
			return
		}
		q, err := readBinaryRequest(br, hdr, &payload)
		if err != nil {
			return
		}
		group = append(group, q)
		// Drain whatever full frames the kernel already delivered.
		for len(group) < maxGroup && br.Buffered() >= 4 {
			peek, _ := br.Peek(4)
			n, err := wire.ClientFrameLen([4]byte(peek))
			if err != nil {
				return
			}
			if br.Buffered() < 4+n {
				break
			}
			if _, err := io.ReadFull(br, hdr[:]); err != nil {
				return
			}
			q, err := readBinaryRequest(br, hdr, &payload)
			if err != nil {
				return
			}
			group = append(group, q)
		}
		p.submit(cc, group, &seq, false)
	}
}

func readBinaryRequest(br *bufio.Reader, hdr [4]byte, scratch *[]byte) (wire.ClientRequest, error) {
	n, err := wire.ClientFrameLen(hdr)
	if err != nil {
		return wire.ClientRequest{}, err
	}
	if cap(*scratch) < n {
		*scratch = make([]byte, n)
	}
	payload := (*scratch)[:n]
	if _, err := io.ReadFull(br, payload); err != nil {
		return wire.ClientRequest{}, err
	}
	return wire.ParseClientRequest(payload)
}

// waitIdle blocks until the connection has no pending requests (its
// replies are buffered for the writer) or timeout elapses.
func (p *ClientPort) waitIdle(cc *clientConn, timeout time.Duration) {
	deadline := time.Now().Add(timeout)
	for {
		var n int
		p.runner.Invoke(func() { n = len(cc.pending) })
		if n == 0 || time.Now().After(deadline) {
			return
		}
		time.Sleep(200 * time.Microsecond)
	}
}

// handleText runs the interactive line protocol.
func (p *ClientPort) handleText(cc *clientConn, br *bufio.Reader) {
	var seq uint64
	sc := bufio.NewScanner(br)
	group := make([]wire.ClientRequest, 0, 1)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) == 0 {
			continue
		}
		var q wire.ClientRequest
		switch strings.ToUpper(fields[0]) {
		case "PUT":
			if len(fields) < 3 {
				p.reject(cc, true, 0, "usage: PUT <key> <value>")
				continue
			}
			k, err := strconv.ParseUint(fields[1], 10, 64)
			if err != nil {
				p.reject(cc, true, 0, "bad key")
				continue
			}
			q = wire.ClientRequest{Op: wire.OpWrite, Key: k, Val: []byte(strings.Join(fields[2:], " "))}
		case "GET":
			if len(fields) != 2 {
				p.reject(cc, true, 0, "usage: GET <key>")
				continue
			}
			k, err := strconv.ParseUint(fields[1], 10, 64)
			if err != nil {
				p.reject(cc, true, 0, "bad key")
				continue
			}
			q = wire.ClientRequest{Op: wire.OpRead, Key: k}
		case "QUIT":
			return
		default:
			p.reject(cc, true, 0, "unknown command")
			continue
		}
		group = append(group[:0], q)
		p.submit(cc, group, &seq, true)
		// The text protocol has no correlation IDs, so replies must be
		// strictly ordered with commands: wait for this command's reply
		// to reach the output buffer before reading the next line (which
		// might be rejected immediately, e.g. a parse error, and would
		// otherwise overtake a consensus-path reply).
		p.waitIdle(cc, 10*time.Second)
	}
}

// Stop shuts the port down gracefully: stop accepting, reject new
// requests, wait up to drain for in-flight requests to be answered, then
// flush and close every connection. It reports whether the drain
// completed (false means the timeout cut it short).
func (p *ClientPort) Stop(drain time.Duration) bool {
	p.draining.Store(true)
	p.ln.Close()
	deadline := time.Now().Add(drain)
	drained := true
	for p.outstanding.Load() > 0 {
		if time.Now().After(deadline) {
			drained = false
			break
		}
		time.Sleep(time.Millisecond)
	}
	p.mu.Lock()
	conns := make([]*clientConn, 0, len(p.conns))
	for _, cc := range p.conns {
		conns = append(conns, cc)
	}
	p.mu.Unlock()
	for _, cc := range conns {
		cc.outMu.Lock()
		cc.closing = true
		cc.outMu.Unlock()
		select {
		case cc.wake <- struct{}{}:
		default:
		}
	}
	done := make(chan struct{})
	go func() { p.writers.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		drained = false
		for _, cc := range conns {
			cc.conn.Close()
		}
	}
	return drained
}
