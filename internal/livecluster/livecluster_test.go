package livecluster

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"testing"
	"time"

	"canopus/client"
	"canopus/internal/core"
	"canopus/internal/wire"
	"canopus/internal/workload"
)

func startCluster(t *testing.T, nodes int) *Cluster {
	t.Helper()
	c, err := Start(Config{
		Nodes: nodes,
		Node:  core.Config{CycleInterval: 2 * time.Millisecond, TickInterval: 2 * time.Millisecond},
		Seed:  7,
	})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func dialClient(t *testing.T, c *Cluster, nodes ...int) *client.Client {
	t.Helper()
	var eps []string
	for _, i := range nodes {
		eps = append(eps, c.ClientAddr(i))
	}
	cl, err := client.New(client.Config{Endpoints: eps, RequestTimeout: 10 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cl.Close() })
	return cl
}

func TestClientPutGetDelete(t *testing.T) {
	c := startCluster(t, 3)
	defer c.Stop(5 * time.Second)
	ctx := context.Background()

	cl := dialClient(t, c, 0)
	if err := cl.Put(ctx, 7, []byte("hello")); err != nil {
		t.Fatal(err)
	}
	val, err := cl.Get(ctx, 7)
	if err != nil || string(val) != "hello" {
		t.Fatalf("Get(7) = %q, %v", val, err)
	}
	if _, err := cl.Get(ctx, 99); !errors.Is(err, client.ErrNotFound) {
		t.Fatalf("Get(99) err = %v, want ErrNotFound", err)
	}
	if err := cl.Delete(ctx, 7); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Get(ctx, 7); !errors.Is(err, client.ErrNotFound) {
		t.Fatalf("Get(7) after delete err = %v, want ErrNotFound", err)
	}

	// A write through node 0 is readable through node 2 once committed
	// (both reads linearize after the write's cycle).
	if err := cl.Put(ctx, 8, []byte("cross")); err != nil {
		t.Fatal(err)
	}
	cl2 := dialClient(t, c, 2)
	val, err = cl2.Get(ctx, 8)
	if err != nil || string(val) != "cross" {
		t.Fatalf("Get(8) via node 2 = %q, %v", val, err)
	}
}

func TestClientAsyncPipelined(t *testing.T) {
	c := startCluster(t, 3)
	defer c.Stop(5 * time.Second)

	cl := dialClient(t, c, 1)
	// Issue many writes without waiting, then verify every reply arrives.
	const n = 500
	futs := make([]*client.Future, n)
	for i := 0; i < n; i++ {
		futs[i] = cl.PutAsync(uint64(i), []byte(fmt.Sprintf("v%d", i)))
	}
	ctx := context.Background()
	for i, f := range futs {
		if _, err := f.Wait(ctx); err != nil {
			t.Fatalf("put %d: %v", i, err)
		}
	}
	val, err := cl.Get(ctx, n-1)
	if err != nil || string(val) != fmt.Sprintf("v%d", n-1) {
		t.Fatalf("Get(%d) = %q, %v", n-1, val, err)
	}
}

func TestClientBatch(t *testing.T) {
	c := startCluster(t, 3)
	defer c.Stop(5 * time.Second)
	ctx := context.Background()

	cl := dialClient(t, c, 0)
	if err := cl.Put(ctx, 1, []byte("one")); err != nil {
		t.Fatal(err)
	}
	res, err := cl.Batch(ctx, []client.Op{
		{Kind: client.OpPut, Key: 2, Val: []byte("two")},
		{Kind: client.OpGet, Key: 1},
		{Kind: client.OpGet, Key: 404},
		{Kind: client.OpDelete, Key: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 4 {
		t.Fatalf("batch returned %d results", len(res))
	}
	if res[0].Err != nil || !res[0].Found {
		t.Fatalf("batch put: %+v", res[0])
	}
	if string(res[1].Val) != "one" {
		t.Fatalf("batch get: %+v", res[1])
	}
	if res[2].Found || res[2].Err != nil {
		t.Fatalf("batch miss: %+v", res[2])
	}
	if _, err := cl.Get(ctx, 1); !errorsIsNotFound(err) {
		t.Fatalf("key 1 survived batch delete: %v", err)
	}
}

func errorsIsNotFound(err error) bool { return errors.Is(err, client.ErrNotFound) }

// TestStaleReadsSkipConsensus is the dual-path acceptance check: Stale
// reads are served from committed state without advancing the consensus
// cycle count, while Linearizable reads ride a cycle and observe the
// latest committed write.
func TestStaleReadsSkipConsensus(t *testing.T) {
	c := startCluster(t, 3)
	defer c.Stop(5 * time.Second)
	ctx := context.Background()

	cl := dialClient(t, c, 0)
	if err := cl.Put(ctx, 7, []byte("v1")); err != nil {
		t.Fatal(err)
	}

	committedAt := func(i int) uint64 {
		var k uint64
		c.Runner(i).Invoke(func() { k = c.Node(i).Committed() })
		return k
	}
	before := committedAt(0)

	// A burst of Stale reads: all answered, none starts a cycle.
	for i := 0; i < 50; i++ {
		val, err := cl.Get(ctx, 7, client.WithConsistency(client.Stale))
		if err != nil || string(val) != "v1" {
			t.Fatalf("stale read %d = %q, %v", i, val, err)
		}
	}
	// Idle-wait one cycle interval: a cycle triggered by the reads would
	// have committed by now.
	time.Sleep(20 * time.Millisecond)
	if after := committedAt(0); after != before {
		t.Fatalf("stale reads advanced the consensus cycle: %d -> %d", before, after)
	}

	// A later write through another node...
	cl2 := dialClient(t, c, 1)
	if err := cl2.Put(ctx, 7, []byte("v2")); err != nil {
		t.Fatal(err)
	}
	// ...is observed by a Linearizable read at node 0 (which DOES ride a
	// consensus cycle).
	val, err := cl.Get(ctx, 7)
	if err != nil || string(val) != "v2" {
		t.Fatalf("linearizable read after remote write = %q, %v", val, err)
	}
	if after := committedAt(0); after == before {
		t.Fatal("linearizable read did not advance the consensus cycle")
	}
}

// TestSequentialReadWaitsForCycle pins the session guarantee: a
// Sequential read carrying a commit cycle observed elsewhere is not
// answered from older state, even through a different replica.
func TestSequentialReadWaitsForCycle(t *testing.T) {
	c := startCluster(t, 3)
	defer c.Stop(5 * time.Second)
	ctx := context.Background()

	clA := dialClient(t, c, 0)
	if err := clA.Put(ctx, 9, []byte("newest")); err != nil {
		t.Fatal(err)
	}
	cycle := clA.LastCycle()
	if cycle == 0 {
		t.Fatal("write reported no commit cycle")
	}

	// A fresh client session against another replica, seeded with the
	// observed cycle: the read must reflect at least that state.
	clB := dialClient(t, c, 2)
	val, err := clB.Get(ctx, 9,
		client.WithConsistency(client.Sequential), client.WithMinCycle(cycle))
	if err != nil || string(val) != "newest" {
		t.Fatalf("sequential read = %q, %v", val, err)
	}
	if clB.LastCycle() < cycle {
		t.Fatalf("session clock %d did not absorb the read timestamp %d", clB.LastCycle(), cycle)
	}
}

// TestV1ProtocolStillAccepted drives the legacy v1 binary protocol over
// a raw socket: v1 connections are sniffed per connection and served
// alongside v2 and text.
func TestV1ProtocolStillAccepted(t *testing.T) {
	c := startCluster(t, 3)
	defer c.Stop(5 * time.Second)

	conn, err := net.Dial("tcp", c.ClientAddr(0))
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Write(wire.ClientMagic[:]); err != nil {
		t.Fatal(err)
	}
	send := func(q wire.ClientRequest) wire.ClientResponse {
		t.Helper()
		if _, err := conn.Write(wire.AppendClientRequest(nil, &q)); err != nil {
			t.Fatal(err)
		}
		var hdr [4]byte
		if _, err := io.ReadFull(conn, hdr[:]); err != nil {
			t.Fatal(err)
		}
		n, err := wire.ClientFrameLen(hdr)
		if err != nil {
			t.Fatal(err)
		}
		payload := make([]byte, n)
		if _, err := io.ReadFull(conn, payload); err != nil {
			t.Fatal(err)
		}
		resp, err := wire.ParseClientResponse(payload)
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}
	if resp := send(wire.ClientRequest{ID: 1, Op: wire.OpWrite, Key: 5, Val: []byte("v1-write")}); resp.Status != wire.ClientStatusOK {
		t.Fatalf("v1 put status %d", resp.Status)
	}
	if resp := send(wire.ClientRequest{ID: 2, Op: wire.OpRead, Key: 5}); resp.Status != wire.ClientStatusOK || string(resp.Val) != "v1-write" {
		t.Fatalf("v1 get = %q (status %d)", resp.Val, resp.Status)
	}
	if resp := send(wire.ClientRequest{ID: 3, Op: wire.OpRead, Key: 99}); resp.Status != wire.ClientStatusNil {
		t.Fatalf("v1 miss status %d", resp.Status)
	}
}

func TestTextProtocol(t *testing.T) {
	c := startCluster(t, 3)
	defer c.Stop(5 * time.Second)

	conn, err := net.Dial("tcp", c.ClientAddr(0))
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	br := bufio.NewReader(conn)
	say := func(line string) string {
		t.Helper()
		if _, err := fmt.Fprintln(conn, line); err != nil {
			t.Fatal(err)
		}
		reply, err := br.ReadString('\n')
		if err != nil {
			t.Fatal(err)
		}
		return reply
	}
	if got := say("PUT 3 abc def"); got != "OK\n" {
		t.Fatalf("PUT reply %q", got)
	}
	if got := say("GET 3"); got != "VALUE abc def\n" {
		t.Fatalf("GET reply %q", got)
	}
	if got := say("GET 4"); got != "NIL\n" {
		t.Fatalf("GET miss reply %q", got)
	}
	if got := say("DEL 3"); got != "OK\n" {
		t.Fatalf("DEL reply %q", got)
	}
	if got := say("GET 3"); got != "NIL\n" {
		t.Fatalf("GET after DEL reply %q", got)
	}
	if got := say("FROB"); got != "ERR unknown command\n" {
		t.Fatalf("bad command reply %q", got)
	}
}

func TestGracefulStopDrainsInFlight(t *testing.T) {
	c := startCluster(t, 3)
	cl := dialClient(t, c, 0)

	// Establish the replicated session first (one committed mutation), so
	// the burst below goes straight to the server instead of parking
	// behind the registration round-trip.
	if err := cl.Put(context.Background(), 999, []byte("warm")); err != nil {
		t.Fatal(err)
	}

	// Pipeline a burst and immediately stop the cluster: every accepted
	// request must still be answered (no torn frames, no lost replies).
	const n = 200
	var wg sync.WaitGroup
	var okCount, errCount int
	var mu sync.Mutex
	for i := 0; i < n; i++ {
		wg.Add(1)
		cl.Async(client.Op{Kind: client.OpPut, Key: uint64(i), Val: []byte("x")},
			func(_ client.Result, err error) {
				defer wg.Done()
				mu.Lock()
				if err == nil {
					okCount++
				} else {
					errCount++
				}
				mu.Unlock()
			})
	}
	// Let the burst reach the server before stopping: drain must answer
	// accepted requests, not merely reject unseen ones.
	waitUntil := time.Now().Add(2 * time.Second)
	for c.Port(0).Outstanding() == 0 && time.Now().Before(waitUntil) {
		mu.Lock()
		started := okCount > 0
		mu.Unlock()
		if started {
			break
		}
		time.Sleep(100 * time.Microsecond)
	}
	if !c.Stop(10 * time.Second) {
		t.Fatal("cluster did not drain")
	}
	wg.Wait()
	mu.Lock()
	defer mu.Unlock()
	if okCount+errCount != n {
		t.Fatalf("%d of %d requests unanswered", n-okCount-errCount, n)
	}
	// Most of the burst should have been accepted and answered OK; only
	// requests arriving after draining began may be rejected.
	if okCount == 0 {
		t.Fatalf("no request succeeded (ok=%d err=%d)", okCount, errCount)
	}
}

func TestRejectedWhileDraining(t *testing.T) {
	c := startCluster(t, 3)
	defer c.Stop(time.Second)
	cl := dialClient(t, c, 0)
	ctx := context.Background()
	if err := cl.Put(ctx, 1, []byte("a")); err != nil {
		t.Fatal(err)
	}
	c.Port(0).Stop(time.Second)
	// The server rejects with a draining code; the single-endpoint
	// client retries once against the same (now closed) port and fails.
	if err := cl.Put(ctx, 2, []byte("b")); err == nil {
		t.Fatal("write accepted after drain began")
	}
}

// TestClusterSubmitLocal drives the socketless Cluster.Submit path (the
// canopus.Cluster interface backend) end to end.
func TestClusterSubmitLocal(t *testing.T) {
	c := startCluster(t, 3)
	defer c.Stop(5 * time.Second)

	done := make(chan []byte, 1)
	c.Submit(0, wire.OpWrite, 3, []byte("local"), func(_ []byte, ok bool) {
		if !ok {
			t.Error("write rejected")
		}
		done <- nil
	})
	<-done
	c.Submit(2, wire.OpRead, 3, nil, func(val []byte, ok bool) {
		if !ok {
			t.Error("read rejected")
		}
		v := make([]byte, len(val))
		copy(v, val)
		done <- v
	})
	if got := <-done; string(got) != "local" {
		t.Fatalf("local read = %q", got)
	}
}

// TestStopRejectsParkedSequentialReads pins graceful-shutdown behavior
// for Sequential reads parked on a future commit cycle: they must not
// burn the drain timeout, and the client gets a draining rejection
// instead of silence.
func TestStopRejectsParkedSequentialReads(t *testing.T) {
	c := startCluster(t, 3)
	cl := dialClient(t, c, 0)

	// A Sequential read ahead of anything committed (but within the
	// sanity bound) parks at the node (nothing else generates cycles).
	got := make(chan error, 1)
	cl.Async(client.Op{Kind: client.OpGet, Key: 1, Consistency: client.Sequential, MinCycle: 1 << 15},
		func(_ client.Result, err error) { got <- err })
	deadline := time.Now().Add(2 * time.Second)
	for c.Port(0).Outstanding() == 0 && time.Now().Before(deadline) {
		time.Sleep(200 * time.Microsecond)
	}

	start := time.Now()
	drained := c.Stop(5 * time.Second)
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("Stop burned %v on a parked read", elapsed)
	}
	if !drained {
		t.Fatal("parked Sequential read failed the drain")
	}
	select {
	case err := <-got:
		if err == nil {
			t.Fatal("parked read reported success")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("parked read never completed client-side")
	}
}

// TestSessionIdleReclaimedThroughConsensus pins session GC: a session
// with no committed mutation for SessionIdleCycles consensus cycles is
// expired by an update riding a proposal — every replica drops it at
// the same commit boundary, with no local timers involved — and the
// owning client transparently re-registers on its next mutation.
func TestSessionIdleReclaimedThroughConsensus(t *testing.T) {
	c, err := Start(Config{
		Nodes: 3,
		Node: core.Config{CycleInterval: 2 * time.Millisecond, TickInterval: 2 * time.Millisecond,
			SessionIdleCycles: 8},
		Seed: 31,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop(5 * time.Second)

	cl := dialClient(t, c, 0)
	ctx := context.Background()
	if err := cl.Put(ctx, 1, []byte("a")); err != nil {
		t.Fatal(err)
	}
	sess := cl.SessionID()
	if sess == 0 {
		t.Fatal("no session registered")
	}

	// Drive consensus cycles WITHOUT touching the session (linearizable
	// reads ride cycles but carry no session identity) until the idle
	// bound reclaims it on every replica.
	cl2 := dialClient(t, c, 1)
	deadline := time.Now().Add(10 * time.Second)
	for {
		if _, err := cl2.Get(ctx, 1); err != nil {
			t.Fatal(err)
		}
		gone := true
		for i := 0; i < 3 && gone; i++ {
			c.Runner(i).Invoke(func() {
				if c.Node(i).Sessions().Has(sess) {
					gone = false
				}
			})
		}
		if gone {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("idle session never reclaimed through consensus")
		}
	}

	// The next mutation was never failover-retried, so the client
	// re-registers transparently instead of surfacing the expiry.
	if err := cl.Put(ctx, 2, []byte("b")); err != nil {
		t.Fatal(err)
	}
	if ns := cl.SessionID(); ns == 0 || ns == sess {
		t.Fatalf("client did not re-register after idle reclamation: %#x (old %#x)", ns, sess)
	}
}

// TestCrashCompletesLocalSubmits pins the Cluster.Submit contract on
// crash: operations in flight at a crashed node complete their done
// callbacks with ok=false instead of hanging forever.
func TestCrashCompletesLocalSubmits(t *testing.T) {
	// A long cycle interval parks the submissions in the accumulator so
	// the crash deterministically catches them in flight.
	c, err := Start(Config{
		Nodes: 3,
		Node:  core.Config{CycleInterval: time.Minute, TickInterval: 5 * time.Millisecond},
		Seed:  7,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop(time.Second)

	const n = 5
	results := make(chan bool, n)
	for i := 0; i < n; i++ {
		c.Submit(0, wire.OpWrite, uint64(i), []byte("x"), func(_ []byte, ok bool) {
			results <- ok
		})
	}
	c.Crash(0)
	deadline := time.After(5 * time.Second)
	for i := 0; i < n; i++ {
		select {
		case ok := <-results:
			if ok {
				t.Fatal("crashed node reported a committed operation")
			}
		case <-deadline:
			t.Fatalf("only %d of %d done callbacks fired after crash", i, n)
		}
	}
}

// TestWorkloadClosedLoop runs the workload driver's closed loop against
// a live cluster and checks complete accounting.
func TestWorkloadClosedLoop(t *testing.T) {
	if testing.Short() {
		t.Skip("live load run")
	}
	c := startCluster(t, 3)
	defer c.Stop(5 * time.Second)

	conns := make([]workload.Doer, c.NumNodes())
	for i := range conns {
		cl := dialClient(t, c, i)
		conns[i] = doerAdapter{cl}
	}
	res := workload.RunLive(workload.LiveConfig{
		Concurrency: 8,
		Duration:    600 * time.Millisecond,
		Warmup:      100 * time.Millisecond,
		WriteRatio:  0.5,
	}, conns)
	if res.Offered == 0 {
		t.Fatal("no requests offered")
	}
	if res.Completed != res.Offered || res.Failed != 0 {
		t.Fatalf("offered %d, completed %d, failed %d", res.Offered, res.Completed, res.Failed)
	}
	if res.All().Count() != res.Completed {
		t.Fatalf("histogram count %d != completed %d", res.All().Count(), res.Completed)
	}
}

// doerAdapter bridges the public client to workload.Doer.
type doerAdapter struct{ cl *client.Client }

func (d doerAdapter) Do(op wire.Op, key uint64, val []byte, done func(ok bool)) {
	d.cl.Async(client.Op{Kind: op, Key: key, Val: val}, func(_ client.Result, err error) {
		done(err == nil)
	})
}
