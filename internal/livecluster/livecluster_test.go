package livecluster

import (
	"bufio"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"canopus/internal/core"
	"canopus/internal/wire"
	"canopus/internal/workload"
)

func startCluster(t *testing.T, nodes int) *Cluster {
	t.Helper()
	c, err := Start(Config{
		Nodes: nodes,
		Node:  core.Config{CycleInterval: 2 * time.Millisecond, TickInterval: 2 * time.Millisecond},
		Seed:  7,
	})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestBinaryPutGet(t *testing.T) {
	c := startCluster(t, 3)
	defer c.Stop(5 * time.Second)

	cl, err := Dial(c.ClientAddr(0))
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	if err := cl.Put(7, []byte("hello")); err != nil {
		t.Fatal(err)
	}
	val, ok, err := cl.Get(7)
	if err != nil || !ok || string(val) != "hello" {
		t.Fatalf("Get(7) = %q, %v, %v", val, ok, err)
	}
	if _, ok, err := cl.Get(99); err != nil || ok {
		t.Fatalf("Get(99) = present=%v err=%v, want miss", ok, err)
	}

	// A write through node 0 is readable through node 2 once committed
	// (both reads linearize after the write's cycle).
	cl2, err := Dial(c.ClientAddr(2))
	if err != nil {
		t.Fatal(err)
	}
	defer cl2.Close()
	deadline := time.Now().Add(5 * time.Second)
	for {
		val, ok, err := cl2.Get(7)
		if err != nil {
			t.Fatal(err)
		}
		if ok && string(val) == "hello" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("write never became visible at node 2")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestPipelinedRequests(t *testing.T) {
	c := startCluster(t, 3)
	defer c.Stop(5 * time.Second)

	cl, err := Dial(c.ClientAddr(1))
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	// Issue many writes without waiting, then verify every reply arrives.
	const n = 500
	var wg sync.WaitGroup
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		key, val := uint64(i), []byte(fmt.Sprintf("v%d", i))
		cl.Do(wire.OpWrite, key, val, func(resp wire.ClientResponse, err error) {
			defer wg.Done()
			if err != nil {
				errs <- err
			} else if resp.Status != wire.ClientStatusOK {
				errs <- fmt.Errorf("key %d: status %d", key, resp.Status)
			}
		})
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	val, ok, err := cl.Get(n - 1)
	if err != nil || !ok || string(val) != fmt.Sprintf("v%d", n-1) {
		t.Fatalf("Get(%d) = %q, %v, %v", n-1, val, ok, err)
	}
}

func TestTextProtocol(t *testing.T) {
	c := startCluster(t, 3)
	defer c.Stop(5 * time.Second)

	conn, err := net.Dial("tcp", c.ClientAddr(0))
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	br := bufio.NewReader(conn)
	say := func(line string) string {
		t.Helper()
		if _, err := fmt.Fprintln(conn, line); err != nil {
			t.Fatal(err)
		}
		reply, err := br.ReadString('\n')
		if err != nil {
			t.Fatal(err)
		}
		return reply
	}
	if got := say("PUT 3 abc def"); got != "OK\n" {
		t.Fatalf("PUT reply %q", got)
	}
	if got := say("GET 3"); got != "VALUE abc def\n" {
		t.Fatalf("GET reply %q", got)
	}
	if got := say("GET 4"); got != "NIL\n" {
		t.Fatalf("GET miss reply %q", got)
	}
	if got := say("FROB"); got != "ERR unknown command\n" {
		t.Fatalf("bad command reply %q", got)
	}
}

func TestGracefulStopDrainsInFlight(t *testing.T) {
	c := startCluster(t, 3)
	cl, err := Dial(c.ClientAddr(0))
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	// Pipeline a burst and immediately stop the cluster: every accepted
	// request must still be answered (no torn frames, no lost replies).
	const n = 200
	var wg sync.WaitGroup
	var okCount, errCount int
	var mu sync.Mutex
	for i := 0; i < n; i++ {
		wg.Add(1)
		cl.Do(wire.OpWrite, uint64(i), []byte("x"), func(resp wire.ClientResponse, err error) {
			defer wg.Done()
			mu.Lock()
			if err == nil && resp.Status == wire.ClientStatusOK {
				okCount++
			} else {
				errCount++
			}
			mu.Unlock()
		})
	}
	// Let the burst reach the server before stopping: drain must answer
	// accepted requests, not merely reject unseen ones.
	waitUntil := time.Now().Add(2 * time.Second)
	for c.Port(0).Outstanding() == 0 && time.Now().Before(waitUntil) {
		mu.Lock()
		started := okCount > 0
		mu.Unlock()
		if started {
			break
		}
		time.Sleep(100 * time.Microsecond)
	}
	if !c.Stop(10 * time.Second) {
		t.Fatal("cluster did not drain")
	}
	wg.Wait()
	mu.Lock()
	defer mu.Unlock()
	if okCount+errCount != n {
		t.Fatalf("%d of %d requests unanswered", n-okCount-errCount, n)
	}
	// Most of the burst should have been accepted and answered OK; only
	// requests arriving after draining began may be rejected.
	if okCount == 0 {
		t.Fatalf("no request succeeded (ok=%d err=%d)", okCount, errCount)
	}
}

func TestRejectedWhileDraining(t *testing.T) {
	c := startCluster(t, 3)
	defer c.Stop(time.Second)
	cl, err := Dial(c.ClientAddr(0))
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if err := cl.Put(1, []byte("a")); err != nil {
		t.Fatal(err)
	}
	c.Port(0).Stop(time.Second)
	if err := cl.Put(2, []byte("b")); err == nil {
		t.Fatal("write accepted after drain began")
	}
}

// TestWorkloadClosedLoop runs the workload driver's closed loop against
// a live cluster and checks complete accounting.
func TestWorkloadClosedLoop(t *testing.T) {
	if testing.Short() {
		t.Skip("live load run")
	}
	c := startCluster(t, 3)
	defer c.Stop(5 * time.Second)

	conns := make([]workload.Doer, c.NumNodes())
	for i := range conns {
		cl, err := Dial(c.ClientAddr(i))
		if err != nil {
			t.Fatal(err)
		}
		defer cl.Close()
		conns[i] = LoadConn{cl}
	}
	res := workload.RunLive(workload.LiveConfig{
		Concurrency: 8,
		Duration:    600 * time.Millisecond,
		Warmup:      100 * time.Millisecond,
		WriteRatio:  0.5,
	}, conns)
	if res.Offered == 0 {
		t.Fatal("no requests offered")
	}
	if res.Completed != res.Offered || res.Failed != 0 {
		t.Fatalf("offered %d, completed %d, failed %d", res.Offered, res.Completed, res.Failed)
	}
	if res.All().Count() != res.Completed {
		t.Fatalf("histogram count %d != completed %d", res.All().Count(), res.Completed)
	}
}
