// Package workload generates the paper's client load against simulated
// clusters and measures completion times.
//
// The paper's methodology (§8.1): clients uniformly distributed across
// machines, each connected to a node in its own rack/datacenter, issuing
// 16-byte key-value requests as a Poisson process at a given rate, with
// a configurable write ratio; throughput is the offered rate at which
// median completion time stays under a threshold.
//
// Generation is "fluid": arrivals are aggregated per (node, window) into
// Poisson-sampled counts instead of one event per request, so simulated
// load scales to millions of requests per second while event counts stay
// proportional to protocol messages. Latency is tracked by embedding a
// few timestamped arrival samples in every batch; when the batch
// commits, each sample contributes its weighted completion time.
package workload

import (
	"math"
	"math/rand"
	"time"

	"canopus/internal/metrics"
	"canopus/internal/netsim"
	"canopus/internal/wire"
)

// Target is where a node's aggregated arrivals go: an adapter over the
// protocol node (Canopus, EPaxos, Zab) owned by the harness.
type Target interface {
	// Offer delivers one window's arrivals at one node. readBytes /
	// writeBytes are the modeled wire payloads of the read and write
	// requests respectively (protocols that do not disseminate reads
	// ignore readBytes). Samples carry both read and write samples.
	Offer(reads, writes uint32, readBytes, writeBytes uint32, samples []wire.ArrivalSample)
}

// Config parameterizes the generated load.
type Config struct {
	// Rate is the aggregate offered load in requests/second across all
	// nodes (split uniformly, as the paper's clients are).
	Rate float64
	// WriteRatio is the fraction of requests that are writes.
	WriteRatio float64
	// ValueBytes is the write payload size; the paper uses 16-byte
	// key-value pairs (8-byte key + 8-byte value).
	ValueBytes int
	// Window is the aggregation granularity (default 1ms).
	Window time.Duration
	// SamplesPerWindow bounds latency samples per type per window
	// (default 3).
	SamplesPerWindow int
	// ClientCPU is the per-request connection-handling cost charged to
	// the serving node (parse, dispatch, reply) — a major per-node cost
	// at high load (default 4µs).
	ClientCPU time.Duration
	// LocalReads, when true, answers reads at the serving node without
	// involving the protocol engine (ZooKeeper semantics): their latency
	// is the client RTT plus the node's CPU backlog.
	LocalReads bool
	// LocalReadRTT is the modeled client-to-node round trip for
	// LocalReads (default 250µs).
	LocalReadRTT time.Duration
	// Seed randomizes arrivals.
	Seed int64
}

func (c *Config) fill() {
	if c.Window == 0 {
		c.Window = time.Millisecond
	}
	if c.SamplesPerWindow == 0 {
		c.SamplesPerWindow = 3
	}
	if c.ClientCPU == 0 {
		c.ClientCPU = 4 * time.Microsecond
	}
	if c.LocalReadRTT == 0 {
		c.LocalReadRTT = 250 * time.Microsecond
	}
	if c.ValueBytes == 0 {
		c.ValueBytes = 8
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
}

// Request wire overhead: the encoded request size for an 8-byte-keyed
// write with ValueBytes of payload (see wire.Request.PayloadBytes).
func requestBytes(valueBytes int) uint32 { return uint32(29 + valueBytes) }

const readRequestBytes uint32 = 29

// Recorder accumulates completion-time observations for requests that
// ARRIVED inside the measurement window [WarmFrom, ArriveUntil). The
// filter is on arrival, not completion: the driver keeps the simulation
// running past the window so in-flight requests drain and are counted;
// requests a saturated system never completes are (correctly) missing
// from the throughput.
type Recorder struct {
	WarmFrom    time.Duration
	ArriveUntil time.Duration

	Reads  metrics.Histogram
	Writes metrics.Histogram
}

// RecordBatch folds the samples of a committed batch, completing at
// time now, into the histograms.
func (r *Recorder) RecordBatch(now time.Duration, b *wire.Batch) {
	for _, s := range b.Samples {
		at := time.Duration(s.At)
		if at < r.WarmFrom || at >= r.ArriveUntil {
			continue
		}
		lat := now - at
		if lat < 0 {
			continue
		}
		if s.Read {
			r.Reads.Add(lat, uint64(s.Count))
		} else {
			r.Writes.Add(lat, uint64(s.Count))
		}
	}
}

// RecordRead folds a locally served read group (arriving now).
func (r *Recorder) RecordRead(now, lat time.Duration, count uint64) {
	if now < r.WarmFrom || now >= r.ArriveUntil {
		return
	}
	r.Reads.Add(lat, count)
}

// All merges read and write distributions (the paper reports "request
// completion time" over the full mix).
func (r *Recorder) All() *metrics.Histogram {
	var h metrics.Histogram
	h.Merge(&r.Reads)
	h.Merge(&r.Writes)
	return &h
}

// Generator drives Poisson arrivals into targets on a simulation.
type Generator struct {
	cfg      Config
	sim      *netsim.Sim
	runner   *netsim.Runner
	targets  []Target
	recorder *Recorder
	rngs     []*rand.Rand
	end      time.Duration

	offeredReads  uint64
	offeredWrites uint64
}

// NewGenerator wires a generator over one target per node.
func NewGenerator(cfg Config, sim *netsim.Sim, runner *netsim.Runner, targets []Target, rec *Recorder) *Generator {
	cfg.fill()
	g := &Generator{cfg: cfg, sim: sim, runner: runner, targets: targets, recorder: rec}
	for i := range targets {
		g.rngs = append(g.rngs, rand.New(rand.NewSource(cfg.Seed+int64(i)*104729)))
	}
	return g
}

// Offered returns the number of requests generated so far.
func (g *Generator) Offered() (reads, writes uint64) { return g.offeredReads, g.offeredWrites }

// Start schedules generation from now until end (virtual time).
func (g *Generator) Start(end time.Duration) {
	g.end = end
	for node := range g.targets {
		n := node
		// Stagger first windows so nodes do not tick in lockstep.
		offset := time.Duration(g.rngs[n].Int63n(int64(g.cfg.Window)))
		g.sim.After(g.cfg.Window+offset, func() { g.window(n) })
	}
}

// window fires at the end of one aggregation window at one node.
func (g *Generator) window(node int) {
	now := g.sim.Now()
	if now > g.end {
		return
	}
	if !g.runner.Alive(wire.NodeID(node)) {
		// A crashed node serves nothing — not even local reads — and its
		// offered load is lost, so it must not be recorded as completed.
		// Keep the window clock running so generation resumes the moment
		// a fault plan restarts the node.
		g.sim.After(g.cfg.Window, func() { g.window(node) })
		return
	}
	rng := g.rngs[node]
	perNode := g.cfg.Rate / float64(len(g.targets))
	w := g.cfg.Window.Seconds()
	reads := poisson(rng, perNode*(1-g.cfg.WriteRatio)*w)
	writes := poisson(rng, perNode*g.cfg.WriteRatio*w)
	g.offeredReads += uint64(reads)
	g.offeredWrites += uint64(writes)

	// Client connection handling burns serving-node CPU regardless of
	// protocol.
	if total := reads + writes; total > 0 {
		g.runner.UseCPU(wire.NodeID(node), time.Duration(total)*g.cfg.ClientCPU)
	}

	samples := g.sample(rng, now, writes, false, nil)
	if g.cfg.LocalReads {
		if reads > 0 {
			// Reads complete locally: latency = client RTT + CPU queue.
			lat := g.cfg.LocalReadRTT + g.runner.CPUBacklog(wire.NodeID(node))
			g.recorder.RecordRead(now, lat, uint64(reads))
		}
		if writes > 0 {
			g.targets[node].Offer(0, uint32(writes), 0,
				uint32(writes)*requestBytes(g.cfg.ValueBytes), samples)
		}
	} else {
		samples = g.sample(rng, now, reads, true, samples)
		if reads+writes > 0 {
			g.targets[node].Offer(uint32(reads), uint32(writes),
				uint32(reads)*readRequestBytes,
				uint32(writes)*requestBytes(g.cfg.ValueBytes), samples)
		}
	}

	g.sim.After(g.cfg.Window, func() { g.window(node) })
}

// sample appends up to SamplesPerWindow weighted arrival samples with
// times uniform over the just-elapsed window.
func (g *Generator) sample(rng *rand.Rand, now time.Duration, count int, read bool, into []wire.ArrivalSample) []wire.ArrivalSample {
	if count <= 0 {
		return into
	}
	k := g.cfg.SamplesPerWindow
	if count < k {
		k = count
	}
	base, rem := count/k, count%k
	for i := 0; i < k; i++ {
		c := base
		if i < rem {
			c++
		}
		at := now - time.Duration(rng.Int63n(int64(g.cfg.Window)))
		into = append(into, wire.ArrivalSample{At: int64(at), Count: uint32(c), Read: read})
	}
	return into
}

// poisson draws from Poisson(mean): Knuth's method for small means, a
// normal approximation beyond.
func poisson(rng *rand.Rand, mean float64) int {
	if mean <= 0 {
		return 0
	}
	if mean < 32 {
		l := math.Exp(-mean)
		k, p := 0, 1.0
		for {
			p *= rng.Float64()
			if p <= l {
				return k
			}
			k++
		}
	}
	v := mean + math.Sqrt(mean)*rng.NormFloat64()
	if v < 0 {
		return 0
	}
	return int(v + 0.5)
}
