package workload

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"canopus/internal/metrics"
	"canopus/internal/wire"
)

// Live workload driving. The same keyed Poisson workload the simulator
// runs in fluid mode is generated here against real connections (the
// livecluster binary client protocol), in two shapes:
//
//   - closed loop: Concurrency workers, each with one outstanding
//     request — measures latency at a self-limiting load;
//   - open loop: Poisson arrivals at OpenRate req/s regardless of
//     completions — measures throughput and queueing behaviour, like the
//     paper's offered-load sweeps.

// Doer issues one keyed operation asynchronously; done is called when
// the reply arrives (ok=false when the request failed or was rejected).
// livecluster.Client satisfies the shape via a thin adapter.
type Doer interface {
	Do(op wire.Op, key uint64, val []byte, done func(ok bool))
}

// KeyDist selects how request keys are drawn from [0, Keys).
type KeyDist string

const (
	// DistUniform draws keys uniformly — every key equally popular (the
	// default, and the paper's measurement workload).
	DistUniform KeyDist = "uniform"
	// DistZipf draws keys Zipf-distributed (s=1.1, v=1): a few hot keys
	// absorb most of the traffic, the contended shape caches and
	// metadata stores see in production.
	DistZipf KeyDist = "zipf"
)

// newKeyPicker returns the per-generator key source for cfg's
// distribution. Each generator owns its rng, so pickers are not shared
// across goroutines.
func newKeyPicker(cfg *LiveConfig, rng *rand.Rand) func() uint64 {
	switch cfg.KeyDist {
	case DistUniform:
		return func() uint64 { return rng.Uint64() % cfg.Keys }
	case DistZipf:
		z := rand.NewZipf(rng, 1.1, 1, cfg.Keys-1)
		return z.Uint64
	default:
		panic(fmt.Sprintf("workload: unknown key distribution %q", cfg.KeyDist))
	}
}

// LiveConfig parameterizes a live load run.
type LiveConfig struct {
	// OpenRate, when positive, selects open-loop generation at this many
	// requests/second across all connections.
	OpenRate float64
	// Concurrency is the closed-loop worker count (used when OpenRate is
	// zero). Default 16.
	Concurrency int
	// Duration is the total generation time, including Warmup.
	Duration time.Duration
	// Warmup excludes early arrivals from the recorded statistics.
	Warmup time.Duration
	// WriteRatio is the fraction of requests that are writes (default
	// 0.2, the paper's standard mix).
	WriteRatio float64
	// Keys is the key-space size (default 65536).
	Keys uint64
	// KeyDist is the key popularity distribution (default DistUniform).
	KeyDist KeyDist
	// ValueBytes is the write payload size (default 8: the paper's
	// 16-byte key-value pairs).
	ValueBytes int
	// Window is the open-loop arrival aggregation granularity (default
	// 1ms).
	Window time.Duration
	// Seed randomizes keys and arrivals.
	Seed int64
	// DrainTimeout bounds the post-generation wait for stragglers
	// (default 10s).
	DrainTimeout time.Duration
}

func (c *LiveConfig) fill() {
	if c.Concurrency <= 0 {
		c.Concurrency = 16
	}
	if c.WriteRatio == 0 {
		c.WriteRatio = 0.2
	}
	if c.Keys == 0 {
		c.Keys = 65536
	}
	if c.KeyDist == "" {
		c.KeyDist = DistUniform
	}
	if c.ValueBytes == 0 {
		c.ValueBytes = 8
	}
	if c.Window == 0 {
		c.Window = time.Millisecond
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.DrainTimeout == 0 {
		c.DrainTimeout = 10 * time.Second
	}
}

// LiveResult summarizes a live run. Offered counts requests issued
// inside the measurement window [Warmup, Duration); Completed and Failed
// partition the offered requests that finished before the drain timeout.
type LiveResult struct {
	Offered   uint64
	Completed uint64
	Failed    uint64
	// Lost counts requests still unanswered when the drain timed out,
	// including warmup-window requests the measured counters skip.
	Lost uint64

	Reads, Writes metrics.Histogram

	// Measure is the measurement wall-clock window Offered spans.
	Measure time.Duration
}

// All merges the read and write latency distributions.
func (r *LiveResult) All() *metrics.Histogram {
	var h metrics.Histogram
	h.Merge(&r.Reads)
	h.Merge(&r.Writes)
	return &h
}

// Throughput returns completed requests/second over the measurement
// window.
func (r *LiveResult) Throughput() float64 {
	return metrics.Throughput(r.Completed, r.Measure)
}

// liveRecorder accumulates completions; one mutex is fine at benchmark
// rates (the critical section is a histogram bucket increment).
type liveRecorder struct {
	mu     sync.Mutex
	reads  metrics.Histogram
	writes metrics.Histogram
}

func (r *liveRecorder) record(op wire.Op, lat time.Duration) {
	r.mu.Lock()
	if op == wire.OpRead {
		r.reads.Observe(lat)
	} else {
		r.writes.Observe(lat)
	}
	r.mu.Unlock()
}

// RunLive drives the configured workload over conns and blocks until
// generation ends and in-flight requests drain (or time out).
func RunLive(cfg LiveConfig, conns []Doer) *LiveResult {
	cfg.fill()
	if cfg.OpenRate > 0 {
		return runOpen(cfg, conns)
	}
	return runClosed(cfg, conns)
}

func runClosed(cfg LiveConfig, conns []Doer) *LiveResult {
	res := &LiveResult{}
	rec := &liveRecorder{}
	start := time.Now()
	warmEnd := start.Add(cfg.Warmup)
	end := start.Add(cfg.Duration)
	var offered, completed, failed atomic.Uint64

	var wg sync.WaitGroup
	for w := 0; w < cfg.Concurrency; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(cfg.Seed + int64(w)*7919))
			pick := newKeyPicker(&cfg, rng)
			conn := conns[w%len(conns)]
			val := make([]byte, cfg.ValueBytes)
			ch := make(chan bool, 1)
			// One completion callback per worker, not per request: with
			// one outstanding op per worker the channel uniquely pairs
			// request and reply, and the measured allocs-per-request
			// budget stays free of driver closures.
			done := func(ok bool) { ch <- ok }
			timer := time.NewTimer(time.Hour)
			timer.Stop()
			defer timer.Stop()
			for {
				issued := time.Now()
				if !issued.Before(end) {
					return
				}
				op := wire.OpRead
				var v []byte
				if rng.Float64() < cfg.WriteRatio {
					op, v = wire.OpWrite, val
				}
				key := pick()
				measured := !issued.Before(warmEnd)
				if measured {
					offered.Add(1)
				}
				conn.Do(op, key, v, done)
				var ok bool
				timer.Reset(cfg.DrainTimeout)
				select {
				case ok = <-ch:
					timer.Stop()
				case <-timer.C:
					// Lost reply: record it and retire this worker (a late
					// completion on ch must not leak into the next
					// request's wait). The run's accounting surfaces it.
					if measured {
						failed.Add(1)
					} else {
						offered.Add(1)
						failed.Add(1)
					}
					return
				}
				if measured {
					if ok {
						completed.Add(1)
						rec.record(op, time.Since(issued))
					} else {
						failed.Add(1)
					}
				}
			}
		}(w)
	}
	wg.Wait()
	res.Measure = cfg.Duration - cfg.Warmup
	res.Offered = offered.Load()
	res.Completed = completed.Load()
	res.Failed = failed.Load()
	res.Reads, res.Writes = rec.reads, rec.writes
	return res
}

func runOpen(cfg LiveConfig, conns []Doer) *LiveResult {
	res := &LiveResult{}
	rec := &liveRecorder{}
	rng := rand.New(rand.NewSource(cfg.Seed))
	pick := newKeyPicker(&cfg, rng)
	start := time.Now()
	warmEnd := start.Add(cfg.Warmup)
	end := start.Add(cfg.Duration)
	var offered, completed, failed atomic.Uint64
	var inflight atomic.Int64

	val := make([]byte, cfg.ValueBytes)
	perWindow := cfg.OpenRate * cfg.Window.Seconds()
	next := 0 // round-robin connection cursor
	ticker := time.NewTicker(cfg.Window)
	defer ticker.Stop()
	for now := range ticker.C {
		if !now.Before(end) {
			break
		}
		n := poisson(rng, perWindow)
		measured := !now.Before(warmEnd)
		for i := 0; i < n; i++ {
			op := wire.OpRead
			var v []byte
			if rng.Float64() < cfg.WriteRatio {
				op, v = wire.OpWrite, val
			}
			key := pick()
			issued := time.Now()
			if measured {
				offered.Add(1)
			}
			inflight.Add(1)
			conn := conns[next%len(conns)]
			next++
			conn.Do(op, key, v, func(ok bool) {
				inflight.Add(-1)
				if !measured {
					return
				}
				if ok {
					completed.Add(1)
					rec.record(op, time.Since(issued))
				} else {
					failed.Add(1)
				}
			})
		}
	}
	// Drain stragglers.
	deadline := time.Now().Add(cfg.DrainTimeout)
	for inflight.Load() > 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	res.Measure = cfg.Duration - cfg.Warmup
	res.Offered = offered.Load()
	res.Completed = completed.Load()
	res.Failed = failed.Load()
	// Anything still in flight after the drain was never answered —
	// including warmup-window requests, which the measured counters
	// skip; a reply lost during cold start must still fail the run.
	res.Lost = uint64(inflight.Load())
	res.Reads, res.Writes = rec.reads, rec.writes
	return res
}
