package workload

import (
	"math/rand"
	"testing"
	"time"

	"canopus/internal/netsim"
	"canopus/internal/wire"
)

type sink struct {
	reads, writes uint64
	bytes         uint64
	samples       int
}

func (s *sink) Offer(reads, writes, readBytes, writeBytes uint32, samples []wire.ArrivalSample) {
	s.reads += uint64(reads)
	s.writes += uint64(writes)
	s.bytes += uint64(readBytes) + uint64(writeBytes)
	s.samples += len(samples)
}

func TestGeneratorRateAndMix(t *testing.T) {
	sim := netsim.NewSim()
	topo := netsim.SingleDC(1, 4, netsim.Params{})
	runner := netsim.NewRunner(sim, topo, netsim.DefaultCosts(), 1)
	sinks := make([]*sink, 4)
	targets := make([]Target, 4)
	for i := range sinks {
		sinks[i] = &sink{}
		targets[i] = sinks[i]
	}
	rec := &Recorder{WarmFrom: 0, ArriveUntil: time.Second}
	g := NewGenerator(Config{Rate: 100_000, WriteRatio: 0.25, Seed: 3}, sim, runner, targets, rec)
	g.Start(time.Second)
	sim.RunUntil(time.Second)

	var reads, writes uint64
	for _, s := range sinks {
		reads += s.reads
		writes += s.writes
	}
	total := reads + writes
	if total < 90_000 || total > 110_000 {
		t.Fatalf("offered %d over 1s at rate 100k", total)
	}
	ratio := float64(writes) / float64(total)
	if ratio < 0.22 || ratio > 0.28 {
		t.Fatalf("write ratio %.3f, want ~0.25", ratio)
	}
	or, ow := g.Offered()
	if or != reads || ow != writes {
		t.Fatalf("Offered() mismatch: %d/%d vs %d/%d", or, ow, reads, writes)
	}
}

func TestRecorderArrivalWindow(t *testing.T) {
	rec := &Recorder{WarmFrom: time.Second, ArriveUntil: 2 * time.Second}
	b := &wire.Batch{Samples: []wire.ArrivalSample{
		{At: int64(500 * time.Millisecond), Count: 5},              // before warmup: dropped
		{At: int64(1500 * time.Millisecond), Count: 7},             // inside: counted
		{At: int64(2500 * time.Millisecond), Count: 9},             // after window: dropped
		{At: int64(1600 * time.Millisecond), Count: 3, Read: true}, // inside, read
	}}
	rec.RecordBatch(3*time.Second, b)
	if rec.Writes.Count() != 7 || rec.Reads.Count() != 3 {
		t.Fatalf("counted %d writes %d reads", rec.Writes.Count(), rec.Reads.Count())
	}
	if got := rec.All().Count(); got != 10 {
		t.Fatalf("All = %d", got)
	}
}

func TestPoissonMoments(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for _, mean := range []float64{0.5, 4, 40, 400} {
		n := 4000
		sum := 0.0
		for i := 0; i < n; i++ {
			sum += float64(poisson(rng, mean))
		}
		got := sum / float64(n)
		if got < mean*0.9-0.2 || got > mean*1.1+0.2 {
			t.Fatalf("poisson(%v) sample mean %v", mean, got)
		}
	}
	if poisson(rng, 0) != 0 {
		t.Fatal("poisson(0) != 0")
	}
}

func TestLocalReadsMode(t *testing.T) {
	sim := netsim.NewSim()
	topo := netsim.SingleDC(1, 1, netsim.Params{})
	runner := netsim.NewRunner(sim, topo, netsim.DefaultCosts(), 1)
	s := &sink{}
	rec := &Recorder{WarmFrom: 0, ArriveUntil: time.Second}
	g := NewGenerator(Config{Rate: 10_000, WriteRatio: 0.2, LocalReads: true, Seed: 3},
		sim, runner, []Target{s}, rec)
	g.Start(500 * time.Millisecond)
	sim.RunUntil(600 * time.Millisecond)
	if s.reads != 0 {
		t.Fatalf("local-reads mode offered %d reads to the engine", s.reads)
	}
	if rec.Reads.Count() == 0 {
		t.Fatal("no local read latencies recorded")
	}
	if s.writes == 0 {
		t.Fatal("no writes offered")
	}
}

// TestKeyPickerDistributions pins the key-distribution contract: both
// pickers stay inside [0, Keys), uniform spreads traffic evenly, and
// zipf concentrates it — the most popular key must absorb a large
// multiple of the uniform share.
func TestKeyPickerDistributions(t *testing.T) {
	const keys, draws = 1024, 200_000
	for _, dist := range []KeyDist{DistUniform, DistZipf} {
		cfg := LiveConfig{Keys: keys, KeyDist: dist}
		cfg.fill()
		pick := newKeyPicker(&cfg, rand.New(rand.NewSource(7)))
		counts := make([]int, keys)
		for i := 0; i < draws; i++ {
			k := pick()
			if k >= keys {
				t.Fatalf("%s: key %d outside [0, %d)", dist, k, keys)
			}
			counts[k]++
		}
		max := 0
		for _, c := range counts {
			if c > max {
				max = c
			}
		}
		share := float64(max) / draws
		switch dist {
		case DistUniform:
			if share > 10.0/keys {
				t.Fatalf("uniform: hottest key holds %.2f%% of traffic", 100*share)
			}
		case DistZipf:
			if share < 0.05 {
				t.Fatalf("zipf: hottest key holds only %.2f%% of traffic — not skewed", 100*share)
			}
		}
	}
}

// TestKeyPickerDefaultsUniform pins that an unset KeyDist fills to
// uniform, so existing LiveConfig call sites are unchanged.
func TestKeyPickerDefaultsUniform(t *testing.T) {
	cfg := LiveConfig{}
	cfg.fill()
	if cfg.KeyDist != DistUniform {
		t.Fatalf("default KeyDist = %q, want %q", cfg.KeyDist, DistUniform)
	}
}
