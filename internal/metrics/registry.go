package metrics

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Registry is the named-instrument surface behind the operations plane:
// subsystems register Counter/Gauge/Histogram instruments once at wiring
// time (registration takes a lock; instrument updates afterwards are
// plain atomic operations, allocation-free on the hot path), and the
// admin gateway renders the whole set in the Prometheus text exposition
// format. Sampled instruments (CounterFunc/GaugeFunc) read an existing
// atomic through a closure only at scrape time, so exporting a value the
// subsystem already maintains costs the hot path nothing at all.
//
// A nil *Registry is valid everywhere: instrument constructors return
// detached instruments (updates go nowhere) and sampled registrations
// are dropped, so callers wire metrics unconditionally.
type Registry struct {
	mu       sync.Mutex
	families []*family
	byName   map[string]*family

	// droppedSeries counts registrations refused by the per-family
	// cardinality guard; exposed as canopus_metrics_dropped_series_total.
	droppedSeries Counter
}

// maxSeriesPerFamily is the label-cardinality guard: one metric name
// admits at most this many label sets. Registrations beyond it return
// detached instruments and count into droppedSeries — an unbounded label
// (a client address, a key) can then never run the exporter out of
// memory. Sized for the per-peer families (canopus_transport_peer_up is
// node×peer: a 9-node in-process cluster sharing one registry needs 72
// series) with headroom, while still far below anything unbounded.
const maxSeriesPerFamily = 128

// Label is one constant name/value pair attached to an instrument at
// registration time.
type Label struct{ Key, Value string }

type instrumentKind uint8

const (
	counterKind instrumentKind = iota
	gaugeKind
	counterFuncKind
	gaugeFuncKind
	histogramKind
)

func (k instrumentKind) String() string {
	switch k {
	case counterKind, counterFuncKind:
		return "counter"
	case gaugeKind, gaugeFuncKind:
		return "gauge"
	default:
		return "histogram"
	}
}

// family is every series sharing one metric name.
type family struct {
	name string
	help string
	kind instrumentKind

	series  []*series
	byLabel map[string]*series
}

// series is one (name, label set) instrument.
type series struct {
	labels []Label
	key    string // canonical label encoding, for idempotent lookup

	c  *Counter
	g  *Gauge
	cf func() uint64
	gf func() float64
	h  *LatencyHistogram
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]*family)}
}

// Counter registers (or returns the already-registered) named counter.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	if r == nil {
		return new(Counter)
	}
	s := r.register(name, help, counterKind, labels)
	if s == nil {
		return new(Counter)
	}
	if s.c == nil {
		s.c = new(Counter)
	}
	return s.c
}

// Gauge registers (or returns the already-registered) named gauge.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	if r == nil {
		return new(Gauge)
	}
	s := r.register(name, help, gaugeKind, labels)
	if s == nil {
		return new(Gauge)
	}
	if s.g == nil {
		s.g = new(Gauge)
	}
	return s.g
}

// CounterFunc registers a counter sampled from fn at scrape time —
// the way to export a monotone atomic a subsystem already maintains
// without adding anything to its hot path.
func (r *Registry) CounterFunc(name, help string, fn func() uint64, labels ...Label) {
	if r == nil {
		return
	}
	if s := r.register(name, help, counterFuncKind, labels); s != nil {
		s.cf = fn
	}
}

// GaugeFunc registers a gauge sampled from fn at scrape time.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...Label) {
	if r == nil {
		return
	}
	if s := r.register(name, help, gaugeFuncKind, labels); s != nil {
		s.gf = fn
	}
}

// Histogram registers (or returns the already-registered) named latency
// histogram.
func (r *Registry) Histogram(name, help string, labels ...Label) *LatencyHistogram {
	if r == nil {
		return new(LatencyHistogram)
	}
	s := r.register(name, help, histogramKind, labels)
	if s == nil {
		return new(LatencyHistogram)
	}
	if s.h == nil {
		s.h = new(LatencyHistogram)
	}
	return s.h
}

// AttachHistogram adopts an existing histogram under the given name, for
// subsystems that embed their instrument by value (the WAL manager) and
// only later meet a registry.
func (r *Registry) AttachHistogram(name, help string, h *LatencyHistogram, labels ...Label) {
	if r == nil {
		return
	}
	if s := r.register(name, help, histogramKind, labels); s != nil {
		s.h = h
	}
}

// register resolves (family, label set) under the registry lock,
// creating as needed. It returns nil when the cardinality guard refused
// the series (the caller hands back a detached instrument).
func (r *Registry) register(name, help string, kind instrumentKind, labels []Label) *series {
	validateName(name)
	key := labelKey(labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.byName[name]
	if !ok {
		f = &family{name: name, help: help, kind: kind, byLabel: make(map[string]*series)}
		r.byName[name] = f
		r.families = append(r.families, f)
	}
	if f.kind != kind {
		panic(fmt.Sprintf("metrics: %s registered twice with different kinds (%s then %s)",
			name, f.kind, kind))
	}
	if s, ok := f.byLabel[key]; ok {
		return s
	}
	if len(f.series) >= maxSeriesPerFamily {
		r.droppedSeries.Add(1)
		return nil
	}
	s := &series{labels: append([]Label(nil), labels...), key: key}
	f.byLabel[key] = s
	f.series = append(f.series, s)
	return s
}

func validateName(name string) {
	if name == "" {
		panic("metrics: empty metric name")
	}
	for i := 0; i < len(name); i++ {
		c := name[i]
		ok := c == '_' || c == ':' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			panic(fmt.Sprintf("metrics: invalid metric name %q", name))
		}
	}
}

// labelKey canonicalizes a label set (sorted by key) so registration is
// idempotent regardless of argument order.
func labelKey(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	ls := append([]Label(nil), labels...)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Key < ls[j].Key })
	var b strings.Builder
	for i, l := range ls {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteByte('=')
		b.WriteString(l.Value)
	}
	return b.String()
}

// value samples one non-histogram series.
func (s *series) value() float64 {
	switch {
	case s.c != nil:
		return float64(s.c.Load())
	case s.g != nil:
		return float64(s.g.Load())
	case s.cf != nil:
		return float64(s.cf())
	case s.gf != nil:
		return s.gf()
	}
	return 0
}

// WritePrometheus renders every registered instrument in the Prometheus
// text exposition format (version 0.0.4): HELP/TYPE headers per family,
// one line per series, histograms as cumulative le-buckets plus _sum and
// _count.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	families := append([]*family(nil), r.families...)
	dropped := r.droppedSeries.Load()
	r.mu.Unlock()

	var b strings.Builder
	for _, f := range families {
		writeHeader(&b, f.name, f.help, f.kind.String())
		for _, s := range f.series {
			if f.kind == histogramKind {
				writeHistogram(&b, f.name, s)
				continue
			}
			writeName(&b, f.name, s.labels, "")
			fmt.Fprintf(&b, " %s\n", formatValue(s.value()))
		}
	}
	if dropped > 0 {
		writeHeader(&b, "canopus_metrics_dropped_series_total",
			"Series refused by the per-metric label-cardinality guard.", "counter")
		fmt.Fprintf(&b, "canopus_metrics_dropped_series_total %d\n", dropped)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

func writeHeader(b *strings.Builder, name, help, typ string) {
	if help != "" {
		fmt.Fprintf(b, "# HELP %s %s\n", name, strings.ReplaceAll(help, "\n", " "))
	}
	fmt.Fprintf(b, "# TYPE %s %s\n", name, typ)
}

// writeName renders `name{labels}` with extra appended to the label set
// (histogram le), escaping label values per the exposition format.
func writeName(b *strings.Builder, name string, labels []Label, extra string) {
	b.WriteString(name)
	if len(labels) == 0 && extra == "" {
		return
	}
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteString(`="`)
		escapeLabel(b, l.Value)
		b.WriteByte('"')
	}
	if extra != "" {
		if len(labels) > 0 {
			b.WriteByte(',')
		}
		b.WriteString(extra)
	}
	b.WriteByte('}')
}

func escapeLabel(b *strings.Builder, v string) {
	for i := 0; i < len(v); i++ {
		switch c := v[i]; c {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteByte(c)
		}
	}
}

func writeHistogram(b *strings.Builder, name string, s *series) {
	h := s.h
	if h == nil {
		h = new(LatencyHistogram)
	}
	var cum uint64
	for i, bound := range latencyBounds {
		cum += h.buckets[i].Load()
		writeName(b, name+"_bucket", s.labels, fmt.Sprintf(`le="%s"`, formatValue(bound)))
		fmt.Fprintf(b, " %d\n", cum)
	}
	count := h.count.Load()
	writeName(b, name+"_bucket", s.labels, `le="+Inf"`)
	fmt.Fprintf(b, " %d\n", count)
	writeName(b, name+"_sum", s.labels, "")
	fmt.Fprintf(b, " %s\n", formatValue(h.SumSeconds()))
	writeName(b, name+"_count", s.labels, "")
	fmt.Fprintf(b, " %d\n", count)
}

// formatValue renders a float the exposition format accepts, preferring
// integer rendering for whole values.
func formatValue(v float64) string {
	if v == float64(int64(v)) && v < 1e15 && v > -1e15 {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%g", v)
}

// Each calls fn for every non-histogram series with its sampled value;
// histograms contribute their _count and _sum. The harness uses it to
// fold a run's instrument values into benchmark JSON.
func (r *Registry) Each(fn func(name string, labels []Label, value float64)) {
	if r == nil {
		return
	}
	r.mu.Lock()
	families := append([]*family(nil), r.families...)
	r.mu.Unlock()
	for _, f := range families {
		for _, s := range f.series {
			if f.kind == histogramKind {
				h := s.h
				if h == nil {
					continue
				}
				fn(f.name+"_count", s.labels, float64(h.Count()))
				fn(f.name+"_sum", s.labels, h.SumSeconds())
				continue
			}
			fn(f.name, s.labels, s.value())
		}
	}
}

// latencyBounds are the histogram's upper bucket bounds in seconds
// (+Inf is implicit): enough resolution from a fast local fsync (tens of
// microseconds on an SSD) to a pathological multi-second stall.
var latencyBounds = [...]float64{
	1e-5, 2.5e-5, 5e-5, 1e-4, 2.5e-4, 5e-4,
	1e-3, 2.5e-3, 5e-3, 1e-2, 2.5e-2, 5e-2,
	0.1, 0.25, 0.5, 1, 2.5, 5,
}

// latencyBoundNanos mirrors latencyBounds in integer nanoseconds so
// Observe classifies without floating-point work.
var latencyBoundNanos = func() [len(latencyBounds)]int64 {
	var out [len(latencyBounds)]int64
	for i, b := range latencyBounds {
		out[i] = int64(b * float64(time.Second))
	}
	return out
}()

// LatencyHistogram is a fixed-bucket concurrent latency histogram with
// Prometheus-style cumulative exposition. Unlike the harness Histogram
// (single-goroutine, high resolution), observations are atomic — safe
// from any goroutine — and allocation-free. The zero value is ready to
// use.
type LatencyHistogram struct {
	buckets  [len(latencyBounds)]atomic.Uint64 // per-bound (non-cumulative) counts
	overflow atomic.Uint64                     // observations above the last bound
	count    atomic.Uint64
	sumNanos atomic.Uint64
}

// Observe records one latency observation.
func (h *LatencyHistogram) Observe(d time.Duration) {
	if d < 0 {
		d = 0
	}
	n := int64(d)
	idx := -1
	for i, bound := range latencyBoundNanos {
		if n <= bound {
			idx = i
			break
		}
	}
	if idx >= 0 {
		h.buckets[idx].Add(1)
	} else {
		h.overflow.Add(1)
	}
	h.count.Add(1)
	h.sumNanos.Add(uint64(n))
}

// Count returns the number of observations.
func (h *LatencyHistogram) Count() uint64 { return h.count.Load() }

// SumSeconds returns the sum of all observations in seconds.
func (h *LatencyHistogram) SumSeconds() float64 {
	return float64(h.sumNanos.Load()) / float64(time.Second)
}
