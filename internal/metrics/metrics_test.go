package metrics

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

func TestHistogramQuantiles(t *testing.T) {
	var h Histogram
	for i := 1; i <= 1000; i++ {
		h.Observe(time.Duration(i) * time.Millisecond)
	}
	med := h.Median()
	if med < 450*time.Millisecond || med > 550*time.Millisecond {
		t.Fatalf("median = %v", med)
	}
	p99 := h.Quantile(0.99)
	if p99 < 900*time.Millisecond || p99 > 1100*time.Millisecond {
		t.Fatalf("p99 = %v", p99)
	}
	if h.Count() != 1000 {
		t.Fatalf("count = %d", h.Count())
	}
	if h.Min() != time.Millisecond || h.Max() != time.Second {
		t.Fatalf("min/max = %v/%v", h.Min(), h.Max())
	}
}

func TestHistogramMerge(t *testing.T) {
	var a, b Histogram
	a.Add(time.Millisecond, 10)
	b.Add(time.Second, 10)
	a.Merge(&b)
	if a.Count() != 20 {
		t.Fatalf("count = %d", a.Count())
	}
	if med := a.Median(); med > 2*time.Millisecond {
		t.Fatalf("median = %v", med)
	}
}

// Property: the quantile estimate is within one log-bucket (~3%) of a
// true order statistic for arbitrary positive samples.
func TestQuickQuantileAccuracy(t *testing.T) {
	f := func(raw []uint32) bool {
		if len(raw) == 0 {
			return true
		}
		var h Histogram
		max := time.Duration(0)
		for _, v := range raw {
			d := time.Duration(v%1e9) + 1
			h.Observe(d)
			if d > max {
				max = d
			}
		}
		q := h.Quantile(1.0)
		// Upper quantile must be within one bucket of the true max.
		return q <= max && q >= max-max/16-1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(9))}); err != nil {
		t.Fatal(err)
	}
}

func TestAvailabilityFraction(t *testing.T) {
	a := Availability{Window: 100 * time.Millisecond}
	// Events in 4 of 10 windows of [0s, 1s).
	for _, ms := range []int{10, 50, 150, 420, 430, 910} {
		a.Record(time.Duration(ms) * time.Millisecond)
	}
	if got := a.Fraction(0, time.Second); got != 0.4 {
		t.Fatalf("fraction = %v, want 0.4", got)
	}
	// Restricting the interval re-buckets: [400ms, 1s) has 6 windows,
	// events in 2 of them.
	if got := a.Fraction(400*time.Millisecond, time.Second); got < 0.33 || got > 0.34 {
		t.Fatalf("windowed fraction = %v", got)
	}
	if got := (&Availability{}).Fraction(0, time.Second); got != 0 {
		t.Fatalf("empty fraction = %v", got)
	}
	if got := a.Fraction(0, 50*time.Millisecond); got != 0 {
		t.Fatalf("sub-window fraction = %v", got)
	}
}

func TestAvailabilityGapsAndRecovery(t *testing.T) {
	var a Availability
	a.Record(100 * time.Millisecond)
	a.Record(200 * time.Millisecond)
	a.Record(900 * time.Millisecond)
	if got := a.LongestGap(0, time.Second); got != 700*time.Millisecond {
		t.Fatalf("longest gap = %v, want 700ms", got)
	}
	// Tail gap dominates when no event follows.
	if got := a.LongestGap(0, 3*time.Second); got != 2100*time.Millisecond {
		t.Fatalf("tail gap = %v, want 2.1s", got)
	}
	if got := (&Availability{}).LongestGap(0, time.Second); got != time.Second {
		t.Fatalf("empty gap = %v", got)
	}
	rec, ok := a.RecoveryAfter(250 * time.Millisecond)
	if !ok || rec != 650*time.Millisecond {
		t.Fatalf("recovery = %v/%v, want 650ms", rec, ok)
	}
	if _, ok := a.RecoveryAfter(time.Second); ok {
		t.Fatal("recovery reported after the last event")
	}
	if a.Events() != 3 {
		t.Fatalf("events = %d", a.Events())
	}
}

func TestFormatRate(t *testing.T) {
	for _, tc := range []struct {
		in   float64
		want string
	}{{2_650_000, "2.65M"}, {450_000, "450k"}, {12, "12"}} {
		if got := FormatRate(tc.in); got != tc.want {
			t.Errorf("FormatRate(%v) = %q, want %q", tc.in, got, tc.want)
		}
	}
}

func TestTableRendering(t *testing.T) {
	tbl := &Table{Header: []string{"a", "long-header"}}
	tbl.Add("x", "1")
	out := tbl.String()
	if len(out) == 0 || out[0] != 'a' {
		t.Fatalf("table output %q", out)
	}
}
