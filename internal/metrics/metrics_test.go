package metrics

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

func TestHistogramQuantiles(t *testing.T) {
	var h Histogram
	for i := 1; i <= 1000; i++ {
		h.Observe(time.Duration(i) * time.Millisecond)
	}
	med := h.Median()
	if med < 450*time.Millisecond || med > 550*time.Millisecond {
		t.Fatalf("median = %v", med)
	}
	p99 := h.Quantile(0.99)
	if p99 < 900*time.Millisecond || p99 > 1100*time.Millisecond {
		t.Fatalf("p99 = %v", p99)
	}
	if h.Count() != 1000 {
		t.Fatalf("count = %d", h.Count())
	}
	if h.Min() != time.Millisecond || h.Max() != time.Second {
		t.Fatalf("min/max = %v/%v", h.Min(), h.Max())
	}
}

func TestHistogramMerge(t *testing.T) {
	var a, b Histogram
	a.Add(time.Millisecond, 10)
	b.Add(time.Second, 10)
	a.Merge(&b)
	if a.Count() != 20 {
		t.Fatalf("count = %d", a.Count())
	}
	if med := a.Median(); med > 2*time.Millisecond {
		t.Fatalf("median = %v", med)
	}
}

// Property: the quantile estimate is within one log-bucket (~3%) of a
// true order statistic for arbitrary positive samples.
func TestQuickQuantileAccuracy(t *testing.T) {
	f := func(raw []uint32) bool {
		if len(raw) == 0 {
			return true
		}
		var h Histogram
		max := time.Duration(0)
		for _, v := range raw {
			d := time.Duration(v%1e9) + 1
			h.Observe(d)
			if d > max {
				max = d
			}
		}
		q := h.Quantile(1.0)
		// Upper quantile must be within one bucket of the true max.
		return q <= max && q >= max-max/16-1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(9))}); err != nil {
		t.Fatal(err)
	}
}

func TestFormatRate(t *testing.T) {
	for _, tc := range []struct {
		in   float64
		want string
	}{{2_650_000, "2.65M"}, {450_000, "450k"}, {12, "12"}} {
		if got := FormatRate(tc.in); got != tc.want {
			t.Errorf("FormatRate(%v) = %q, want %q", tc.in, got, tc.want)
		}
	}
}

func TestTableRendering(t *testing.T) {
	tbl := &Table{Header: []string{"a", "long-header"}}
	tbl.Add("x", "1")
	out := tbl.String()
	if len(out) == 0 || out[0] != 'a' {
		t.Fatalf("table output %q", out)
	}
}
