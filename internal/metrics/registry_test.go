package metrics

import (
	"strings"
	"sync"
	"testing"
	"time"
)

// TestRegistryConcurrentIncrements drives one counter, one gauge and one
// histogram from many goroutines while a scraper renders the exposition
// — the -race build proves the hot path and the scrape path never need
// the callers to synchronize.
func TestRegistryConcurrentIncrements(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_ops_total", "ops", Label{Key: "node", Value: "0"})
	g := r.Gauge("test_depth", "depth")
	h := r.Histogram("test_latency_seconds", "latency")

	const workers, perWorker = 8, 10_000
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			var sb strings.Builder
			if err := r.WritePrometheus(&sb); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	var ww sync.WaitGroup
	for w := 0; w < workers; w++ {
		ww.Add(1)
		go func(w int) {
			defer ww.Done()
			for i := 0; i < perWorker; i++ {
				c.Add(1)
				g.Set(uint64(i))
				h.Observe(time.Duration(i) * time.Microsecond)
			}
		}(w)
	}
	ww.Wait()
	close(stop)
	wg.Wait()

	if got := c.Load(); got != workers*perWorker {
		t.Fatalf("counter = %d, want %d", got, workers*perWorker)
	}
	if got := h.Count(); got != workers*perWorker {
		t.Fatalf("histogram count = %d, want %d", got, workers*perWorker)
	}
}

// TestRegistryIdempotentRegistration proves registering the same (name,
// labels) twice returns the same instrument, whatever the label order.
func TestRegistryIdempotentRegistration(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("test_total", "", Label{Key: "a", Value: "1"}, Label{Key: "b", Value: "2"})
	b := r.Counter("test_total", "", Label{Key: "b", Value: "2"}, Label{Key: "a", Value: "1"})
	if a != b {
		t.Fatal("same name+labels registered twice returned distinct counters")
	}
	a.Add(3)
	if b.Load() != 3 {
		t.Fatal("instruments not shared")
	}
}

// TestRegistryExpositionGolden pins the Prometheus text format: HELP and
// TYPE headers, label rendering and escaping, counter/gauge lines, and
// the histogram's cumulative buckets with _sum/_count.
func TestRegistryExpositionGolden(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("canopus_cycles_total", "Committed cycles.", Label{Key: "node", Value: "0"})
	c.Add(42)
	g := r.Gauge("canopus_lag", "Apply lag.")
	g.Set(3)
	r.GaugeFunc("canopus_temp", "Sampled.", func() float64 { return 1.5 })
	h := r.Histogram("canopus_fsync_seconds", "Fsync latency.", Label{Key: "node", Value: `a"b\c`})
	h.Observe(20 * time.Microsecond) // first bucket (le=1e-05 is 10µs, so this lands in 2.5e-05)
	h.Observe(10 * time.Second)      // beyond the last bound: +Inf only

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	got := sb.String()

	want := []string{
		"# HELP canopus_cycles_total Committed cycles.\n# TYPE canopus_cycles_total counter\ncanopus_cycles_total{node=\"0\"} 42\n",
		"# TYPE canopus_lag gauge\ncanopus_lag 3\n",
		"canopus_temp 1.5\n",
		"# TYPE canopus_fsync_seconds histogram\n",
		`canopus_fsync_seconds_bucket{node="a\"b\\c",le="1e-05"} 0` + "\n",
		`canopus_fsync_seconds_bucket{node="a\"b\\c",le="2.5e-05"} 1` + "\n",
		`canopus_fsync_seconds_bucket{node="a\"b\\c",le="+Inf"} 2` + "\n",
		`canopus_fsync_seconds_sum{node="a\"b\\c"} 10.00002` + "\n",
		`canopus_fsync_seconds_count{node="a\"b\\c"} 2` + "\n",
	}
	for _, w := range want {
		if !strings.Contains(got, w) {
			t.Fatalf("exposition missing %q in:\n%s", w, got)
		}
	}
}

// TestRegistryCardinalityGuard proves one metric name cannot grow an
// unbounded number of label sets: past the cap, registration returns a
// detached (but usable) instrument and the drop is itself counted.
func TestRegistryCardinalityGuard(t *testing.T) {
	r := NewRegistry()
	var last *Counter
	for i := 0; i < maxSeriesPerFamily+10; i++ {
		last = r.Counter("test_total", "", Label{Key: "i", Value: strings.Repeat("x", i+1)})
		last.Add(1) // detached instruments must still be safe to use
	}
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	got := sb.String()
	if n := strings.Count(got, "test_total{"); n != maxSeriesPerFamily {
		t.Fatalf("exposed %d series, want cap %d", n, maxSeriesPerFamily)
	}
	if !strings.Contains(got, "canopus_metrics_dropped_series_total 10") {
		t.Fatalf("dropped-series self-metric missing in:\n%s", got)
	}
}

// TestRegistryNilSafe proves the nil registry contract: constructors
// return working detached instruments and exports are no-ops.
func TestRegistryNilSafe(t *testing.T) {
	var r *Registry
	r.Counter("x_total", "").Add(1)
	r.Gauge("x", "").Set(1)
	r.Histogram("x_seconds", "").Observe(time.Millisecond)
	r.CounterFunc("y_total", "", func() uint64 { return 0 })
	r.GaugeFunc("y", "", func() float64 { return 0 })
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil || sb.Len() != 0 {
		t.Fatalf("nil registry wrote %q, err %v", sb.String(), err)
	}
	r.Each(func(string, []Label, float64) { t.Fatal("nil registry has series") })
}
