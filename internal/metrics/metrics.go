// Package metrics provides the measurement tools the benchmark harness
// needs — log-bucketed latency histograms and windowed throughput
// counters — and, on top of the same primitives, the named-instrument
// Registry the operations plane exports through the admin gateway's
// /metrics endpoint (see registry.go). Everything is allocation-light so
// measurement does not perturb simulations or the live hot path.
package metrics

import (
	"fmt"
	"math"
	"strings"
	"sync/atomic"
	"time"
)

// histogram resolution: buckets per power of two ("sub-buckets"), giving
// a worst-case quantile error of about 1/subBuckets.
const subBuckets = 32

// numBuckets covers 1ns .. ~9s of latency.
const numBuckets = 64 * subBuckets

// Histogram is a log-bucketed latency histogram. The zero value is ready
// to use.
type Histogram struct {
	buckets [numBuckets]uint64
	count   uint64
	sum     time.Duration
	min     time.Duration
	max     time.Duration
}

func bucketOf(d time.Duration) int {
	if d < 1 {
		d = 1
	}
	v := uint64(d)
	exp := 63 - leadingZeros(v)
	var sub uint64
	if exp >= 5 {
		sub = (v >> (uint(exp) - 5)) & (subBuckets - 1)
	} else {
		sub = (v << (5 - uint(exp))) & (subBuckets - 1)
	}
	i := exp*subBuckets + int(sub)
	if i >= numBuckets {
		i = numBuckets - 1
	}
	return i
}

func bucketLow(i int) time.Duration {
	exp := i / subBuckets
	sub := i % subBuckets
	base := uint64(1) << uint(exp)
	var lo uint64
	if exp >= 5 {
		lo = base + uint64(sub)<<(uint(exp)-5)
	} else {
		lo = base + uint64(sub)>>(5-uint(exp))
	}
	return time.Duration(lo)
}

func leadingZeros(v uint64) int {
	n := 0
	if v == 0 {
		return 64
	}
	for v&(1<<63) == 0 {
		v <<= 1
		n++
	}
	return n
}

// Add records count observations of latency d.
func (h *Histogram) Add(d time.Duration, count uint64) {
	if count == 0 {
		return
	}
	h.buckets[bucketOf(d)] += count
	h.count += count
	h.sum += d * time.Duration(count)
	if h.min == 0 || d < h.min {
		h.min = d
	}
	if d > h.max {
		h.max = d
	}
}

// Observe records a single observation.
func (h *Histogram) Observe(d time.Duration) { h.Add(d, 1) }

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count }

// Mean returns the mean latency, or 0 with no observations.
func (h *Histogram) Mean() time.Duration {
	if h.count == 0 {
		return 0
	}
	return h.sum / time.Duration(h.count)
}

// Min and Max return observed extremes.
func (h *Histogram) Min() time.Duration { return h.min }
func (h *Histogram) Max() time.Duration { return h.max }

// Quantile returns the latency at quantile q in [0,1] (bucket lower
// bound), or 0 with no observations.
func (h *Histogram) Quantile(q float64) time.Duration {
	if h.count == 0 {
		return 0
	}
	target := uint64(math.Ceil(q * float64(h.count)))
	if target == 0 {
		target = 1
	}
	var cum uint64
	for i, c := range h.buckets {
		cum += c
		if cum >= target {
			return bucketLow(i)
		}
	}
	return h.max
}

// Median returns the 50th-percentile latency.
func (h *Histogram) Median() time.Duration { return h.Quantile(0.5) }

// Merge folds other into h.
func (h *Histogram) Merge(other *Histogram) {
	for i, c := range other.buckets {
		h.buckets[i] += c
	}
	h.count += other.count
	h.sum += other.sum
	if h.min == 0 || (other.min != 0 && other.min < h.min) {
		h.min = other.min
	}
	if other.max > h.max {
		h.max = other.max
	}
}

// Reset clears the histogram.
func (h *Histogram) Reset() { *h = Histogram{} }

// String summarizes the distribution.
func (h *Histogram) String() string {
	if h.count == 0 {
		return "histogram: empty"
	}
	return fmt.Sprintf("n=%d mean=%v p50=%v p95=%v p99=%v max=%v",
		h.count, h.Mean().Round(time.Microsecond),
		h.Median().Round(time.Microsecond),
		h.Quantile(0.95).Round(time.Microsecond),
		h.Quantile(0.99).Round(time.Microsecond),
		h.max.Round(time.Microsecond))
}

// Availability tracks service liveness over a run from discrete
// progress events (typically cycle commits at a reference replica). The
// chaos harness uses it to report how long fault injection actually
// interrupted service and how quickly the system recovered.
//
// Events must be recorded in non-decreasing time order (simulations
// observe commits on a monotone virtual clock).
type Availability struct {
	// Window is the bucketing granularity for Fraction (default 100ms).
	Window time.Duration
	events []time.Duration
}

func (a *Availability) window() time.Duration {
	if a.Window <= 0 {
		return 100 * time.Millisecond
	}
	return a.Window
}

// Record notes one progress event at time t.
func (a *Availability) Record(t time.Duration) { a.events = append(a.events, t) }

// Events returns the number of recorded events.
func (a *Availability) Events() int { return len(a.events) }

// Fraction returns the fraction of whole windows in [start, end) that
// contain at least one event — the run's availability. It returns 0 when
// the interval spans no full window.
func (a *Availability) Fraction(start, end time.Duration) float64 {
	w := a.window()
	n := int((end - start) / w)
	if n <= 0 {
		return 0
	}
	seen := make([]bool, n)
	for _, t := range a.events {
		if t < start || t >= start+time.Duration(n)*w {
			continue
		}
		seen[int((t-start)/w)] = true
	}
	up := 0
	for _, s := range seen {
		if s {
			up++
		}
	}
	return float64(up) / float64(n)
}

// WindowCounts returns the per-window event counts over the whole
// windows in [start, end) — the availability timeline at Window
// granularity. Chaos results carry it so a test can assert the exact
// shape of an outage (service up, gap while a dead leaf times out,
// service resumed) rather than just its aggregate fraction.
func (a *Availability) WindowCounts(start, end time.Duration) []int {
	w := a.window()
	n := int((end - start) / w)
	if n <= 0 {
		return nil
	}
	counts := make([]int, n)
	for _, t := range a.events {
		if t < start || t >= start+time.Duration(n)*w {
			continue
		}
		counts[int((t-start)/w)]++
	}
	return counts
}

// LongestGap returns the longest event-free span inside [start, end],
// counting the lead-in before the first event and the tail after the
// last one. With no events it returns end-start.
func (a *Availability) LongestGap(start, end time.Duration) time.Duration {
	longest := time.Duration(0)
	prev := start
	for _, t := range a.events {
		if t < start {
			continue
		}
		if t > end {
			break
		}
		if gap := t - prev; gap > longest {
			longest = gap
		}
		prev = t
	}
	if gap := end - prev; gap > longest {
		longest = gap
	}
	return longest
}

// RecoveryAfter returns how long after the fault at t the first
// subsequent event occurred, and whether one occurred at all.
func (a *Availability) RecoveryAfter(t time.Duration) (time.Duration, bool) {
	for _, e := range a.events {
		if e >= t {
			return e - t, true
		}
	}
	return 0, false
}

// Counter is a concurrency-safe monotone event counter. The durability
// subsystem uses counters for fsync and group-commit accounting, where
// the writer (the commit executor) and readers (stats scrapers) run on
// different goroutines.
type Counter struct{ v atomic.Uint64 }

// Add increments the counter by n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Load returns the current count.
func (c *Counter) Load() uint64 { return c.v.Load() }

// Gauge is a concurrency-safe instantaneous value (last group-commit
// batch size, durable-cycle watermark, ...).
type Gauge struct{ v atomic.Uint64 }

// Set replaces the gauge's value.
func (g *Gauge) Set(n uint64) { g.v.Store(n) }

// Load returns the current value.
func (g *Gauge) Load() uint64 { return g.v.Load() }

// Throughput converts a request count over a window into requests/second.
func Throughput(count uint64, window time.Duration) float64 {
	if window <= 0 {
		return 0
	}
	return float64(count) / window.Seconds()
}

// FormatRate renders a requests/second figure the way the paper's plots
// label their axes (millions of requests per second).
func FormatRate(rps float64) string {
	switch {
	case rps >= 1e6:
		return fmt.Sprintf("%.2fM", rps/1e6)
	case rps >= 1e3:
		return fmt.Sprintf("%.0fk", rps/1e3)
	default:
		return fmt.Sprintf("%.0f", rps)
	}
}

// Table renders an aligned text table; the harness uses it to print the
// same rows the paper's figures plot.
type Table struct {
	Header []string
	Rows   [][]string
}

// Add appends a row.
func (t *Table) Add(cells ...string) { t.Rows = append(t.Rows, cells) }

// String renders the table with aligned columns.
func (t *Table) String() string {
	widths := make([]int, len(t.Header))
	for i, hdr := range t.Header {
		widths[i] = len(hdr)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Header)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}
