package broadcast

import (
	"testing"
	"time"

	"canopus/internal/engine"
	"canopus/internal/netsim"
	"canopus/internal/wire"
)

// bcastHost adapts a Broadcaster to engine.Machine for the simulator.
type bcastHost struct {
	mk        func(env engine.Env) Broadcaster
	b         Broadcaster
	env       engine.Env
	delivered []wire.Message
	origins   []wire.NodeID
	failed    []wire.NodeID
	tick      time.Duration
}

func (h *bcastHost) Init(env engine.Env) {
	h.env = env
	h.b = h.mk(env)
	env.After(h.tick, engine.Tag(1, 0))
}
func (h *bcastHost) Recv(from wire.NodeID, m wire.Message) { h.b.Handle(from, m) }
func (h *bcastHost) Timer(engine.TimerTag) {
	h.b.Tick()
	h.env.After(h.tick, engine.Tag(1, 0))
}

func runBroadcastTest(t *testing.T, useSwitch bool) {
	sim := netsim.NewSim()
	topo := netsim.SingleDC(1, 3, netsim.Params{})
	runner := netsim.NewRunner(sim, topo, netsim.DefaultCosts(), 8)
	members := []wire.NodeID{0, 1, 2}
	hosts := make([]*bcastHost, 3)
	for i := 0; i < 3; i++ {
		h := &bcastHost{tick: 5 * time.Millisecond}
		h.mk = func(env engine.Env) Broadcaster {
			cfg := Config{Members: members, TickInterval: 5 * time.Millisecond}
			cbs := Callbacks{
				Deliver: func(origin wire.NodeID, payload wire.Message) {
					h.delivered = append(h.delivered, payload)
					h.origins = append(h.origins, origin)
				},
				PeerFailed: func(p wire.NodeID) { h.failed = append(h.failed, p) },
			}
			if useSwitch {
				return NewSwitch(env, cfg, cbs)
			}
			return NewRaft(env, cfg, cbs)
		}
		hosts[i] = h
		runner.Register(wire.NodeID(i), h)
	}
	// Node 0 broadcasts three messages; all members deliver them in order.
	sim.At(10*time.Millisecond, func() {
		hosts[0].b.Broadcast(&wire.Ping{From: 0, Seq: 1})
		hosts[0].b.Broadcast(&wire.Ping{From: 0, Seq: 2})
	})
	sim.At(20*time.Millisecond, func() { hosts[1].b.Broadcast(&wire.Ping{From: 1, Seq: 3}) })
	sim.RunUntil(300 * time.Millisecond)
	for i, h := range hosts {
		if len(h.delivered) != 3 {
			t.Fatalf("host %d delivered %d, want 3", i, len(h.delivered))
		}
		// Per-origin FIFO: seq 1 from node 0 precedes seq 2.
		var s1, s2 = -1, -1
		for idx, m := range h.delivered {
			p := m.(*wire.Ping)
			if p.Seq == 1 {
				s1 = idx
			}
			if p.Seq == 2 {
				s2 = idx
			}
		}
		if s1 > s2 {
			t.Fatalf("host %d: per-origin order violated", i)
		}
	}

	// Crash node 2: survivors report the failure exactly once.
	runner.Crash(2)
	sim.RunUntil(2 * time.Second)
	for i := 0; i < 2; i++ {
		if len(hosts[i].failed) != 1 || hosts[i].failed[0] != 2 {
			t.Fatalf("host %d failure reports = %v", i, hosts[i].failed)
		}
	}
	// Broadcast still works with 2 of 3.
	before := len(hosts[1].delivered)
	sim.At(sim.Now(), func() { hosts[0].b.Broadcast(&wire.Ping{From: 0, Seq: 9}) })
	sim.RunUntil(sim.Now() + 300*time.Millisecond)
	if len(hosts[1].delivered) != before+1 {
		t.Fatal("post-failure broadcast not delivered")
	}
}

func TestRaftBroadcast(t *testing.T)   { runBroadcastTest(t, false) }
func TestSwitchBroadcast(t *testing.T) { runBroadcastTest(t, true) }

func TestGroupIDPacking(t *testing.T) {
	g := groupID(7, 3)
	if groupOrigin(g) != 7 || groupIncarnation(g) != 3 {
		t.Fatalf("packing broken: %x -> %v/%d", g, groupOrigin(g), groupIncarnation(g))
	}
}
