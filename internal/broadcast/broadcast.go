// Package broadcast provides reliable broadcast within a super-leaf
// (paper §4.3) in two interchangeable flavours:
//
//   - Raft: the paper's software path. Every super-leaf member leads its
//     own Raft group with its peers as followers; broadcasting appends to
//     the origin's group log and delivery happens on commit. If an origin
//     fails, the group elects a takeover leader which finishes any
//     in-flight replication and then appends a GroupClosed barrier,
//     giving every survivor an identical cut of the origin's messages.
//
//   - Switch: hardware-assisted atomic broadcast (the paper notes modern
//     ToR switches can provide this). The sender serializes once and the
//     switch fans out; liveness comes from multicast heartbeats.
//
// Both deliver messages per-origin FIFO, report peer failures exactly
// once, and support removing/re-adding peers at Canopus cycle boundaries.
//
// This package is the substrate under internal/core's round 1: a node's
// cycle proposal — carrying its request batch plus any membership,
// lease and session updates — is what travels here, and the identical
// delivery cut is what lets every super-leaf member compute identical
// vnode states. The Raft flavour is built on internal/raftlite.
package broadcast

import (
	"time"

	"canopus/internal/wire"
)

// Callbacks connect a broadcaster to its owner (the Canopus node).
type Callbacks struct {
	// Deliver hands up one broadcast payload from origin. For a given
	// origin, deliveries arrive in the origin's send order, and all live
	// members deliver the same sequence.
	Deliver func(origin wire.NodeID, payload wire.Message)
	// PeerFailed reports a crashed super-leaf peer, exactly once per
	// incarnation, after the failure cut is established (i.e. no further
	// deliveries from that origin will follow).
	PeerFailed func(peer wire.NodeID)
}

// Broadcaster is the reliable-broadcast abstraction the Canopus core
// builds on. Implementations are single-threaded, driven by the owner's
// Recv/Timer handlers.
type Broadcaster interface {
	// Broadcast reliably disseminates payload to all current super-leaf
	// members, including the caller.
	Broadcast(payload wire.Message)
	// Handle processes an incoming message, returning true if it was a
	// broadcast-layer message (consumed), false if the owner should
	// interpret it.
	Handle(from wire.NodeID, m wire.Message) bool
	// Tick drives heartbeats, elections and failure detection; the owner
	// calls it on a periodic timer.
	Tick()
	// RemovePeer drops a failed peer from the membership (applied by the
	// owner at a cycle boundary, after the failure cut).
	RemovePeer(peer wire.NodeID)
	// AddPeer admits a (re)joined peer with a fresh incarnation.
	AddPeer(peer wire.NodeID)
	// Members returns the current membership, including self. The
	// returned slice is owned by the broadcaster: callers must treat it
	// as read-only and must not retain it across AddPeer/RemovePeer.
	Members() []wire.NodeID
}

// Config is shared by both implementations.
type Config struct {
	Members []wire.NodeID // initial super-leaf membership, including self

	// Incarnations maps members to their current incarnation number (how
	// many times they have re-joined). A node building its broadcaster
	// after a re-join seeds this from the JoinReply so its group IDs line
	// up with the survivors'. Missing entries default to zero.
	Incarnations map[wire.NodeID]uint32

	// TickInterval is how often the owner promises to call Tick; used to
	// derive sensible default timeouts.
	TickInterval time.Duration
	// HeartbeatInterval between liveness probes (default 4×Tick).
	HeartbeatInterval time.Duration
	// FailAfter is the silence threshold declaring a peer dead
	// (default 25×Heartbeat). It must comfortably exceed transient CPU
	// queueing under load: a deposed-but-alive member is treated as
	// crashed (crash-stop semantics) and must rejoin.
	FailAfter time.Duration
}

func (c *Config) fill() {
	if c.TickInterval == 0 {
		c.TickInterval = 5 * time.Millisecond
	}
	if c.HeartbeatInterval == 0 {
		c.HeartbeatInterval = 4 * c.TickInterval
	}
	if c.FailAfter == 0 {
		c.FailAfter = 25 * c.HeartbeatInterval
	}
}

// groupID packs an origin and its incarnation into a Raft group ID.
// Incarnations advance when a node re-joins after a crash, so stragglers
// from the previous incarnation's group cannot disturb the new one.
func groupID(origin wire.NodeID, incarnation uint32) uint64 {
	return uint64(uint32(origin)) | uint64(incarnation)<<32
}

func groupOrigin(g uint64) wire.NodeID { return wire.NodeID(int32(uint32(g))) }

func groupIncarnation(g uint64) uint32 { return uint32(g >> 32) }

// messageGroup extracts the Raft group from a broadcast-layer message.
func messageGroup(m wire.Message) (uint64, bool) {
	switch v := m.(type) {
	case *wire.RaftAppend:
		return v.Group, true
	case *wire.RaftAppendReply:
		return v.Group, true
	case *wire.RaftVote:
		return v.Group, true
	case *wire.RaftVoteReply:
		return v.Group, true
	}
	return 0, false
}
