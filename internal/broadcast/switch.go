package broadcast

import (
	"sort"
	"time"

	"canopus/internal/engine"
	"canopus/internal/wire"
)

// Switch is the hardware-assisted broadcast variant of §4.3: "for ToR
// switches that support hardware-assisted atomic broadcast, nodes in a
// super-leaf can use this functionality to efficiently and safely
// distribute proposal messages".
//
// The sender serializes each payload once (Env.Multicast) and the switch
// replicates it; atomicity and total per-origin order are provided by the
// fabric, which the simulator models faithfully and a real deployment
// would obtain from the switch. Liveness uses multicast heartbeats with a
// silence threshold.
type Switch struct {
	env engine.Env
	cfg Config
	cbs Callbacks

	members  []wire.NodeID
	lastSeen map[wire.NodeID]time.Duration
	failed   map[wire.NodeID]bool
	pingSeq  uint64
	nextPing time.Duration
}

var _ Broadcaster = (*Switch)(nil)

// NewSwitch builds the switch-assisted broadcaster for one node.
func NewSwitch(env engine.Env, cfg Config, cbs Callbacks) *Switch {
	cfg.fill()
	b := &Switch{
		env:      env,
		cfg:      cfg,
		cbs:      cbs,
		members:  append([]wire.NodeID(nil), cfg.Members...),
		lastSeen: make(map[wire.NodeID]time.Duration),
		failed:   make(map[wire.NodeID]bool),
	}
	for _, m := range b.members {
		b.lastSeen[m] = env.Now()
	}
	return b
}

func (b *Switch) peersOnly() []wire.NodeID {
	out := make([]wire.NodeID, 0, len(b.members))
	for _, m := range b.members {
		if m != b.env.ID() {
			out = append(out, m)
		}
	}
	return out
}

// Broadcast multicasts the payload and delivers it locally (the hardware
// path delivers to the sender too).
func (b *Switch) Broadcast(payload wire.Message) {
	env := &wire.Envelope{Origin: b.env.ID(), Payload: payload}
	b.env.Multicast(b.peersOnly(), env)
	if b.cbs.Deliver != nil {
		b.cbs.Deliver(b.env.ID(), payload)
	}
}

// Handle consumes envelopes and pings.
func (b *Switch) Handle(from wire.NodeID, m wire.Message) bool {
	switch v := m.(type) {
	case *wire.Envelope:
		b.lastSeen[v.Origin] = b.env.Now()
		if b.failed[v.Origin] {
			return true // past the failure cut: ignore stragglers
		}
		if b.cbs.Deliver != nil {
			b.cbs.Deliver(v.Origin, v.Payload)
		}
		return true
	case *wire.Ping:
		b.lastSeen[v.From] = b.env.Now()
		return true
	}
	return false
}

// Tick multicasts heartbeats and checks peer liveness.
func (b *Switch) Tick() {
	now := b.env.Now()
	if now >= b.nextPing {
		b.nextPing = now + b.cfg.HeartbeatInterval
		b.pingSeq++
		b.env.Multicast(b.peersOnly(), &wire.Ping{From: b.env.ID(), Seq: b.pingSeq})
	}
	// Deterministic order for failure reports.
	peers := b.peersOnly()
	sort.Slice(peers, func(i, j int) bool { return peers[i] < peers[j] })
	for _, p := range peers {
		if b.failed[p] {
			continue
		}
		if now-b.lastSeen[p] > b.cfg.FailAfter {
			b.failed[p] = true
			if b.cbs.PeerFailed != nil {
				b.cbs.PeerFailed(p)
			}
		}
	}
}

// Members returns current membership including self. Read-only; stable
// until the next AddPeer/RemovePeer.
func (b *Switch) Members() []wire.NodeID {
	return b.members
}

// RemovePeer drops a peer after its failure cut.
func (b *Switch) RemovePeer(peer wire.NodeID) {
	for i, m := range b.members {
		if m == peer {
			b.members = append(b.members[:i:i], b.members[i+1:]...)
			break
		}
	}
	delete(b.lastSeen, peer)
}

// AddPeer admits a (re)joined peer.
func (b *Switch) AddPeer(peer wire.NodeID) {
	for _, m := range b.members {
		if m == peer {
			return
		}
	}
	b.members = append(b.members, peer)
	b.lastSeen[peer] = b.env.Now()
	b.failed[peer] = false
}
