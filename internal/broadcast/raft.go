package broadcast

import (
	"canopus/internal/engine"
	"canopus/internal/raftlite"
	"canopus/internal/wire"
)

// Raft is the software reliable-broadcast path of §4.3: one Raft group
// per super-leaf member, the member being the group's initial (and
// normally permanent) leader.
type Raft struct {
	env engine.Env
	cfg Config
	cbs Callbacks

	members     []wire.NodeID
	incarnation map[wire.NodeID]uint32
	groups      map[uint64]*raftlite.Raft
	order       []uint64        // deterministic group iteration order
	closed      map[uint64]bool // groups whose origin's failure cut is delivered
	failed      map[uint64]bool // PeerFailed already reported for this group
}

var _ Broadcaster = (*Raft)(nil)

// NewRaft builds the Raft broadcaster for one node. env must belong to a
// member listed in cfg.Members.
func NewRaft(env engine.Env, cfg Config, cbs Callbacks) *Raft {
	cfg.fill()
	b := &Raft{
		env:         env,
		cfg:         cfg,
		cbs:         cbs,
		members:     append([]wire.NodeID(nil), cfg.Members...),
		incarnation: make(map[wire.NodeID]uint32),
		groups:      make(map[uint64]*raftlite.Raft),
		closed:      make(map[uint64]bool),
		failed:      make(map[uint64]bool),
	}
	for _, origin := range b.members {
		b.openGroup(origin, cfg.Incarnations[origin])
	}
	return b
}

// openGroup creates this node's member of origin's broadcast group.
func (b *Raft) openGroup(origin wire.NodeID, inc uint32) {
	g := groupID(origin, inc)
	b.incarnation[origin] = inc
	cfg := raftlite.Config{
		Group:         g,
		Self:          b.env.ID(),
		Peers:         append([]wire.NodeID(nil), b.members...),
		InitialLeader: origin,
		// Heartbeats ride on the configured intervals; elections must be
		// slow enough that a healthy origin is never deposed.
		HeartbeatInterval:  b.cfg.HeartbeatInterval,
		ElectionTimeoutMin: b.cfg.FailAfter,
		ElectionTimeoutMax: 2 * b.cfg.FailAfter,
	}
	b.order = append(b.order, g)
	b.groups[g] = raftlite.New(cfg, raftlite.IO{
		Send: b.env.Send,
		Deliver: func(_ uint64, payload wire.Message) {
			b.deliver(g, payload)
		},
		LeaderChanged: func(_ uint64, leader wire.NodeID) {
			b.leaderChanged(g, leader)
		},
		Now:  b.env.Now,
		Rand: b.env.Rand(),
	})
}

func (b *Raft) deliver(g uint64, payload wire.Message) {
	origin := groupOrigin(g)
	if closed, ok := payload.(*wire.GroupClosed); ok {
		if b.closed[g] {
			return // duplicate barrier from a second takeover; idempotent
		}
		b.closed[g] = true
		if !b.failed[g] && b.cbs.PeerFailed != nil {
			b.failed[g] = true
			b.cbs.PeerFailed(closed.Origin)
		}
		return
	}
	if b.closed[g] {
		return // nothing counts after the failure cut
	}
	if b.cbs.Deliver != nil {
		b.cbs.Deliver(origin, payload)
	}
}

// leaderChanged fires on any leadership view change in group g. If this
// node took over a group whose origin is someone else, the origin is dead
// (the failure detector is the election itself): finish replication and
// close the group with a barrier.
func (b *Raft) leaderChanged(g uint64, leader wire.NodeID) {
	origin := groupOrigin(g)
	if leader != b.env.ID() || origin == b.env.ID() || b.closed[g] {
		return
	}
	// Takeover: the no-op barrier appended by becomeLeader already
	// commits any in-flight origin entries; the GroupClosed entry then
	// fixes the cut.
	_ = b.groups[g].Propose(&wire.GroupClosed{Origin: origin})
}

// Broadcast appends payload to this node's own group.
func (b *Raft) Broadcast(payload wire.Message) {
	g := groupID(b.env.ID(), b.incarnation[b.env.ID()])
	if err := b.groups[g].Propose(payload); err != nil {
		// Not leader of our own group: we were deposed, which only
		// happens when the rest of the super-leaf considered us dead.
		// Crash-stop semantics say we must not continue; dropping the
		// broadcast stalls us, which the join protocol repairs.
		return
	}
}

// Handle routes Raft traffic to the right group.
func (b *Raft) Handle(from wire.NodeID, m wire.Message) bool {
	g, ok := messageGroup(m)
	if !ok {
		return false
	}
	r, ok := b.groups[g]
	if !ok {
		origin := groupOrigin(g)
		if groupIncarnation(g) != b.incarnation[origin] {
			return true // stale incarnation: drop
		}
		return true // unknown group (e.g. for a peer we removed): drop
	}
	r.Handle(from, m)
	return true
}

// Tick drives all groups in a fixed order (map iteration would make
// simulations non-deterministic).
func (b *Raft) Tick() {
	for _, g := range b.order {
		if r, ok := b.groups[g]; ok {
			r.Tick()
		}
	}
}

// Members returns the current membership including self. Read-only;
// stable until the next AddPeer/RemovePeer (RemovePeer re-slices with a
// fresh backing array, so a slice handed out earlier never mutates).
func (b *Raft) Members() []wire.NodeID {
	return b.members
}

// RemovePeer drops peer from every group's voting set and retires peer's
// own group. Called at a cycle boundary, identically on all survivors.
func (b *Raft) RemovePeer(peer wire.NodeID) {
	idx := -1
	for i, m := range b.members {
		if m == peer {
			idx = i
			break
		}
	}
	if idx < 0 {
		return
	}
	b.members = append(b.members[:idx:idx], b.members[idx+1:]...)
	g := groupID(peer, b.incarnation[peer])
	delete(b.groups, g)
	b.closed[g] = true
	b.setAllPeers()
}

func (b *Raft) setAllPeers() {
	for _, g := range b.order {
		if r, ok := b.groups[g]; ok {
			r.SetPeers(b.members)
		}
	}
}

// AddPeer admits peer with a fresh incarnation: a new group for it, and a
// seat in every existing group. Called at a cycle boundary, identically
// on all members (including the joiner itself, which builds the same
// state from the JoinReply).
func (b *Raft) AddPeer(peer wire.NodeID) {
	for _, m := range b.members {
		if m == peer {
			return
		}
	}
	b.members = append(b.members, peer)
	b.setAllPeers()
	b.openGroup(peer, b.incarnation[peer]+1)
}

// Incarnation reports a member's current incarnation number, used by the
// join protocol's state transfer.
func (b *Raft) Incarnation(id wire.NodeID) uint32 { return b.incarnation[id] }
