package lot

import (
	"math/rand"
	"testing"
	"testing/quick"

	"canopus/internal/wire"
)

func mustTree(t *testing.T, sls int, size int, fanout int) *Tree {
	t.Helper()
	cfg := Config{Fanout: fanout}
	id := wire.NodeID(0)
	for s := 0; s < sls; s++ {
		var m []wire.NodeID
		for n := 0; n < size; n++ {
			m = append(m, id)
			id++
		}
		cfg.SuperLeaves = append(cfg.SuperLeaves, m)
	}
	tree, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return tree
}

func TestFigure1Shape(t *testing.T) {
	// Figure 1: 27 pnodes, 9 super-leaves of 3, fanout 3 -> height 3.
	tree := mustTree(t, 9, 3, 3)
	if tree.Height != 3 {
		t.Fatalf("height = %d, want 3", tree.Height)
	}
	if got := len(tree.Children(tree.Root)); got != 3 {
		t.Fatalf("root children = %d, want 3", got)
	}
	// Node 0 emulates its ancestors at heights 1..3, the root being "1".
	if tree.Ancestor(0, 3) != "1" {
		t.Fatalf("root ancestor = %q", tree.Ancestor(0, 3))
	}
}

func TestHeights(t *testing.T) {
	for _, tc := range []struct{ sls, fanout, want int }{
		{1, 0, 1}, {2, 0, 2}, {3, 0, 2}, {7, 0, 2},
		{4, 2, 3}, {8, 2, 4}, {9, 3, 3}, {27, 3, 4},
	} {
		tree := mustTree(t, tc.sls, 2, tc.fanout)
		if tree.Height != tc.want {
			t.Errorf("sls=%d fanout=%d: height=%d want %d", tc.sls, tc.fanout, tree.Height, tc.want)
		}
	}
}

func TestRejectsBadConfigs(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("empty config accepted")
	}
	if _, err := New(Config{SuperLeaves: [][]wire.NodeID{{}}}); err == nil {
		t.Error("empty super-leaf accepted")
	}
	if _, err := New(Config{SuperLeaves: [][]wire.NodeID{{1}, {1}}}); err == nil {
		t.Error("duplicate node accepted")
	}
}

// Property: every vnode's emulator set is exactly the union of its
// descendant super-leaves' members, and ancestors chain correctly.
func TestQuickEmulationClosure(t *testing.T) {
	f := func(slsRaw, sizeRaw, fanoutRaw uint8) bool {
		sls := int(slsRaw%9) + 1
		size := int(sizeRaw%4) + 1
		fanout := int(fanoutRaw % 4) // 0..3
		if fanout == 1 {
			fanout = 2
		}
		cfg := Config{Fanout: fanout}
		id := wire.NodeID(0)
		for s := 0; s < sls; s++ {
			var m []wire.NodeID
			for n := 0; n < size; n++ {
				m = append(m, id)
				id++
			}
			cfg.SuperLeaves = append(cfg.SuperLeaves, m)
		}
		tree, err := New(cfg)
		if err != nil {
			return false
		}
		view := NewView(tree)
		// The root is emulated by everyone.
		if len(view.Emulators(tree.Root)) != sls*size {
			return false
		}
		// Each super-leaf's parent is emulated exactly by its members.
		for s := 0; s < sls; s++ {
			if len(view.Emulators(tree.Ancestor(s, 1))) != size {
				return false
			}
			// Ancestors chain from height 1 to the root.
			prev := tree.Ancestor(s, 1)
			for h := 2; h <= tree.Height; h++ {
				anc := tree.Ancestor(s, h)
				found := false
				for _, c := range tree.Children(anc) {
					if c == prev {
						found = true
					}
				}
				if !found {
					return false
				}
				prev = anc
			}
			if prev != tree.Root {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(4))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestViewMembershipUpdates(t *testing.T) {
	tree := mustTree(t, 3, 3, 0)
	v := NewView(tree)
	v.Apply([]wire.MemberUpdate{{Node: 4, Leave: true}})
	if v.Alive(4) {
		t.Fatal("node 4 still alive")
	}
	if got := len(v.Members(1)); got != 2 {
		t.Fatalf("super-leaf 1 members = %d, want 2", got)
	}
	if got := len(v.Emulators(tree.Ancestor(1, 1))); got != 2 {
		t.Fatalf("emulators = %d, want 2", got)
	}
	// Idempotent re-apply, then re-join.
	v.Apply([]wire.MemberUpdate{{Node: 4, Leave: true}})
	v.Apply([]wire.MemberUpdate{{Node: 4}})
	if !v.Alive(4) || len(v.Members(1)) != 3 {
		t.Fatal("re-join failed")
	}
	// Members stay sorted.
	m := v.Members(1)
	for i := 1; i < len(m); i++ {
		if m[i] <= m[i-1] {
			t.Fatal("members unsorted after churn")
		}
	}
}

func TestRepresentativesDeterministic(t *testing.T) {
	tree := mustTree(t, 3, 3, 0)
	v := NewView(tree)
	reps := v.Representatives(0, 2)
	if len(reps) != 2 || reps[0] != 0 || reps[1] != 1 {
		t.Fatalf("reps = %v, want [0 1]", reps)
	}
	// Modulo assignment spreads vnodes across representatives.
	r12 := v.RepresentativeFor(0, "1.2", 2)
	r13 := v.RepresentativeFor(0, "1.3", 2)
	if r12 == r13 {
		t.Fatalf("both vnodes assigned to %v", r12)
	}
	// Representative failure promotes the next member.
	v.Apply([]wire.MemberUpdate{{Node: 0, Leave: true}})
	reps = v.Representatives(0, 2)
	if len(reps) != 2 || reps[0] != 1 || reps[1] != 2 {
		t.Fatalf("reps after failure = %v, want [1 2]", reps)
	}
}

func TestSuperLeafFailed(t *testing.T) {
	tree := mustTree(t, 2, 3, 0)
	v := NewView(tree)
	if v.SuperLeafFailed(0) {
		t.Fatal("healthy super-leaf reported failed")
	}
	v.Apply([]wire.MemberUpdate{{Node: 0, Leave: true}})
	if v.SuperLeafFailed(0) {
		t.Fatal("one failure of three should not fail the super-leaf")
	}
	v.Apply([]wire.MemberUpdate{{Node: 1, Leave: true}})
	if !v.SuperLeafFailed(0) {
		t.Fatal("majority failure must fail the super-leaf")
	}
}

func TestParsePath(t *testing.T) {
	if _, err := ParsePath("1.2.3"); err != nil {
		t.Fatal(err)
	}
	for _, bad := range []string{"", "a", "1..2", "0", "1.-2"} {
		if _, err := ParsePath(bad); err == nil {
			t.Errorf("ParsePath(%q) accepted", bad)
		}
	}
}
