// Package lot implements the Leaf-Only Tree overlay (Allavena et al.,
// adapted by Canopus §4.1).
//
// Only leaf nodes (pnodes) exist physically; every internal node (vnode)
// is virtual and emulated by all of its descendant pnodes. Pnodes in the
// same rack form a super-leaf. The tree shape is fixed for the lifetime
// of a deployment (paper assumption A3: nodes may join or leave
// super-leaves, but super-leaves are never added or removed), while
// per-node liveness is tracked by a View holding the emulation table.
//
// VNode identifiers are dotted paths rooted at "1": the root of a
// height-2 tree with three super-leaves is "1" and its height-1 children
// are "1.1", "1.2", "1.3" (Figure 1 of the paper). The tree's height is
// the number of rounds in one consensus cycle — internal/core walks one
// level per round, and a super-leaf's representatives fetch remote vnode
// states from the emulators the View reports. Run cmd/lotviz to print
// any tree shape with its emulation tables.
package lot

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"canopus/internal/wire"
)

// Config describes the shape of a LOT.
type Config struct {
	// SuperLeaves lists the member pnodes of each super-leaf. Order is
	// significant: the i-th entry becomes the super-leaf under the i-th
	// height-1 vnode.
	SuperLeaves [][]wire.NodeID
	// Fanout bounds the number of children of each vnode above height 1.
	// Zero means "all super-leaves directly under the root" (height 2,
	// the shape used throughout the paper's evaluation).
	Fanout int
}

// SuperLeaf is one rack's worth of pnodes sharing a height-1 parent.
type SuperLeaf struct {
	Index   int
	Parent  string // the height-1 vnode this super-leaf constitutes
	Members []wire.NodeID
}

// VNode is one virtual internal node.
type VNode struct {
	ID       string
	Ordinal  int // dense index used for deterministic representative assignment
	Height   int // 1 = super-leaf parent; tree height = root's height
	Parent   string
	Children []string // child vnode IDs; empty at height 1
	// SuperLeaf is the index of the super-leaf under this vnode when
	// Height == 1, else -1.
	SuperLeaf int
}

// Tree is an immutable LOT shape shared by all nodes of a deployment.
type Tree struct {
	Height      int
	Root        string
	superLeaves []*SuperLeaf
	vnodes      map[string]*VNode
	slOf        map[wire.NodeID]int
	// ancestors[sl][h-1] is the height-h ancestor vnode of super-leaf sl.
	ancestors [][]string
	// descSLs[vnodeID] lists the super-leaf indexes under each vnode.
	descSLs map[string][]int
}

// New builds a LOT for the given configuration.
func New(cfg Config) (*Tree, error) {
	n := len(cfg.SuperLeaves)
	if n == 0 {
		return nil, fmt.Errorf("lot: no super-leaves")
	}
	seen := make(map[wire.NodeID]bool)
	for i, sl := range cfg.SuperLeaves {
		if len(sl) == 0 {
			return nil, fmt.Errorf("lot: super-leaf %d is empty", i)
		}
		for _, id := range sl {
			if id == wire.NoNode {
				return nil, fmt.Errorf("lot: invalid node id in super-leaf %d", i)
			}
			if seen[id] {
				return nil, fmt.Errorf("lot: node %v appears twice", id)
			}
			seen[id] = true
		}
	}
	fanout := cfg.Fanout
	if fanout <= 0 {
		fanout = n // flat: all super-leaves under the root
	}
	if fanout == 1 && n > 1 {
		return nil, fmt.Errorf("lot: fanout 1 cannot cover %d super-leaves", n)
	}

	// Height above the super-leaves: smallest h such that fanout^(h-1)
	// covers n super-leaves, with a minimum height of 1 (single
	// super-leaf: the root IS the super-leaf parent).
	height := 1
	for cap := 1; cap < n; cap *= fanout {
		height++
	}

	t := &Tree{
		Height:  height,
		Root:    "1",
		vnodes:  make(map[string]*VNode),
		slOf:    make(map[wire.NodeID]int),
		descSLs: make(map[string][]int),
	}
	for i, members := range cfg.SuperLeaves {
		ms := append([]wire.NodeID(nil), members...)
		sort.Slice(ms, func(a, b int) bool { return ms[a] < ms[b] })
		t.superLeaves = append(t.superLeaves, &SuperLeaf{Index: i, Members: ms})
		for _, id := range ms {
			t.slOf[id] = i
		}
	}

	next := 0 // next super-leaf to place
	ordinal := 0
	var build func(id string, h int, count int) string
	build = func(id string, h int, count int) string {
		v := &VNode{ID: id, Ordinal: ordinal, Height: h, SuperLeaf: -1}
		ordinal++
		t.vnodes[id] = v
		if h == 1 {
			v.SuperLeaf = next
			t.superLeaves[next].Parent = id
			t.descSLs[id] = []int{next}
			next++
			return id
		}
		// Split count super-leaves into up to fanout child groups as
		// evenly as possible.
		groups := fanout
		if groups > count {
			groups = count
		}
		base, rem := count/groups, count%groups
		for c := 0; c < groups; c++ {
			sz := base
			if c < rem {
				sz++
			}
			child := fmt.Sprintf("%s.%d", id, c+1)
			build(child, h-1, sz)
			v.Children = append(v.Children, child)
			t.descSLs[id] = append(t.descSLs[id], t.descSLs[child]...)
		}
		return id
	}
	build(t.Root, height, n)

	for _, v := range t.vnodes {
		if v.ID != t.Root {
			v.Parent = v.ID[:strings.LastIndexByte(v.ID, '.')]
		}
	}

	t.ancestors = make([][]string, n)
	for sl := range t.ancestors {
		anc := make([]string, height)
		id := t.superLeaves[sl].Parent
		for h := 1; h <= height; h++ {
			anc[h-1] = id
			id = t.vnodes[id].Parent
		}
		t.ancestors[sl] = anc
	}
	return t, nil
}

// NumSuperLeaves returns the number of super-leaves.
func (t *Tree) NumSuperLeaves() int { return len(t.superLeaves) }

// SuperLeafOf returns the super-leaf index of a pnode, or -1 if unknown.
func (t *Tree) SuperLeafOf(id wire.NodeID) int {
	if sl, ok := t.slOf[id]; ok {
		return sl
	}
	return -1
}

// SuperLeaf returns the super-leaf at index i.
func (t *Tree) SuperLeaf(i int) *SuperLeaf { return t.superLeaves[i] }

// VNode looks up a vnode by ID, returning nil if absent.
func (t *Tree) VNode(id string) *VNode { return t.vnodes[id] }

// Ancestor returns the height-h ancestor vnode ID of super-leaf sl.
// Ancestor(sl, 1) is the super-leaf's own parent; Ancestor(sl, Height) is
// the root.
func (t *Tree) Ancestor(sl, h int) string {
	if h < 1 || h > t.Height {
		panic(fmt.Sprintf("lot: height %d out of range [1,%d]", h, t.Height))
	}
	return t.ancestors[sl][h-1]
}

// Children returns the child vnode IDs of vnode id (nil at height 1).
func (t *Tree) Children(id string) []string { return t.vnodes[id].Children }

// DescendantSuperLeaves returns the indexes of super-leaves under vnode id.
func (t *Tree) DescendantSuperLeaves(id string) []int { return t.descSLs[id] }

// AllNodes returns every configured pnode in ascending ID order.
func (t *Tree) AllNodes() []wire.NodeID {
	var out []wire.NodeID
	for _, sl := range t.superLeaves {
		out = append(out, sl.Members...)
	}
	sort.Slice(out, func(a, b int) bool { return out[a] < out[b] })
	return out
}

// Ordinal returns the dense index of vnode id, used for the deterministic
// vnode-to-representative assignment (paper §4.5: "the modulo of each
// vnode ID by the number of representatives").
func (t *Tree) Ordinal(id string) int { return t.vnodes[id].Ordinal }

// String renders the tree in the style of Figure 1.
func (t *Tree) String() string {
	var b strings.Builder
	var walk func(id string, indent int)
	walk = func(id string, indent int) {
		v := t.vnodes[id]
		fmt.Fprintf(&b, "%s%s (height %d)", strings.Repeat("  ", indent), id, v.Height)
		if v.SuperLeaf >= 0 {
			sl := t.superLeaves[v.SuperLeaf]
			fmt.Fprintf(&b, "  super-leaf %d: %v", sl.Index, sl.Members)
		}
		b.WriteByte('\n')
		for _, c := range v.Children {
			walk(c, indent+1)
		}
	}
	walk(t.Root, 0)
	return b.String()
}

// ParsePath validates a dotted vnode path and returns its components.
func ParsePath(id string) ([]int, error) {
	parts := strings.Split(id, ".")
	out := make([]int, len(parts))
	for i, p := range parts {
		v, err := strconv.Atoi(p)
		if err != nil || v < 1 {
			return nil, fmt.Errorf("lot: bad path component %q in %q", p, id)
		}
		out[i] = v
	}
	return out, nil
}
