package lot

import (
	"sort"

	"canopus/internal/wire"
)

// View is one node's emulation table: the mapping from each vnode to the
// live pnodes that emulate it (paper §4.6). Each node owns a private View;
// identical membership updates are applied at identical cycle boundaries,
// which keeps all views equal — the invariant Appendix A's proof rests on.
type View struct {
	tree  *Tree
	alive map[wire.NodeID]bool
	// members[sl] is the current (alive) membership of each super-leaf in
	// ascending node-ID order.
	members [][]wire.NodeID
}

// NewView creates a view in which every configured node is alive.
func NewView(t *Tree) *View {
	v := &View{
		tree:    t,
		alive:   make(map[wire.NodeID]bool),
		members: make([][]wire.NodeID, t.NumSuperLeaves()),
	}
	for i := 0; i < t.NumSuperLeaves(); i++ {
		sl := t.SuperLeaf(i)
		v.members[i] = append([]wire.NodeID(nil), sl.Members...)
		for _, id := range sl.Members {
			v.alive[id] = true
		}
	}
	return v
}

// Clone returns an independent copy of the view.
func (v *View) Clone() *View {
	c := &View{
		tree:    v.tree,
		alive:   make(map[wire.NodeID]bool, len(v.alive)),
		members: make([][]wire.NodeID, len(v.members)),
	}
	for id, a := range v.alive {
		c.alive[id] = a
	}
	for i, m := range v.members {
		c.members[i] = append([]wire.NodeID(nil), m...)
	}
	return c
}

// Tree returns the underlying immutable tree.
func (v *View) Tree() *Tree { return v.tree }

// Alive reports whether the view considers node id live.
func (v *View) Alive(id wire.NodeID) bool { return v.alive[id] }

// Members returns the live members of super-leaf sl in ascending order.
// The returned slice must not be modified.
func (v *View) Members(sl int) []wire.NodeID { return v.members[sl] }

// Apply folds a batch of membership updates into the view. Updates are
// idempotent: removing an absent node or adding a present one is a no-op,
// which makes replayed piggybacked updates harmless.
func (v *View) Apply(updates []wire.MemberUpdate) {
	for _, u := range updates {
		sl := v.tree.SuperLeafOf(u.Node)
		if sl < 0 {
			continue // unknown node: structure never changes (A3)
		}
		if u.Leave {
			if !v.alive[u.Node] {
				continue
			}
			v.alive[u.Node] = false
			v.members[sl] = remove(v.members[sl], u.Node)
		} else {
			if v.alive[u.Node] {
				continue
			}
			v.alive[u.Node] = true
			v.members[sl] = insertSorted(v.members[sl], u.Node)
		}
	}
}

func remove(s []wire.NodeID, id wire.NodeID) []wire.NodeID {
	for i, v := range s {
		if v == id {
			return append(s[:i:i], s[i+1:]...)
		}
	}
	return s
}

func insertSorted(s []wire.NodeID, id wire.NodeID) []wire.NodeID {
	i := sort.Search(len(s), func(i int) bool { return s[i] >= id })
	s = append(s, 0)
	copy(s[i+1:], s[i:])
	s[i] = id
	return s
}

// Emulators returns the live pnodes that emulate vnode id: every live
// descendant (paper §4.1: "the current state of a vnode can be obtained
// by querying any one of its descendants").
func (v *View) Emulators(id string) []wire.NodeID {
	var out []wire.NodeID
	for _, sl := range v.tree.DescendantSuperLeaves(id) {
		out = append(out, v.members[sl]...)
	}
	return out
}

// Representatives returns the k representatives of super-leaf sl: the k
// lowest-ID live members. The choice is a deterministic function of the
// membership view, so — because all nodes hold identical views at a cycle
// boundary — every node agrees on the representative set without
// additional communication (paper §4.5).
func (v *View) Representatives(sl, k int) []wire.NodeID {
	m := v.members[sl]
	if k > len(m) {
		k = len(m)
	}
	return m[:k]
}

// RepresentativeFor returns which representative of super-leaf sl is
// responsible for fetching the state of vnode target, via the paper's
// modulo rule, or NoNode if the super-leaf has no live members.
func (v *View) RepresentativeFor(sl int, target string, k int) wire.NodeID {
	reps := v.Representatives(sl, k)
	if len(reps) == 0 {
		return wire.NoNode
	}
	return reps[v.tree.Ordinal(target)%len(reps)]
}

// SuperLeafFailed reports whether super-leaf sl can no longer sustain the
// protocol: reliable broadcast needs a majority of the configured members
// (2F+1 members tolerate F failures, paper §4.3).
func (v *View) SuperLeafFailed(sl int) bool {
	configured := len(v.tree.SuperLeaf(sl).Members)
	return len(v.members[sl]) < configured/2+1
}
