package raftlite

import (
	"math/rand"
	"testing"
	"time"

	"canopus/internal/wire"
)

// net is a tiny synchronous harness: messages queue and are delivered by
// pump(); time advances manually.
type net struct {
	now     time.Duration
	members map[wire.NodeID]*Raft
	queue   []envelope
	deliver map[wire.NodeID][]wire.Message
	dead    map[wire.NodeID]bool
}

type envelope struct {
	from, to wire.NodeID
	msg      wire.Message
}

func newNet(n int, initialLeader wire.NodeID) *net {
	w := &net{
		members: make(map[wire.NodeID]*Raft),
		deliver: make(map[wire.NodeID][]wire.Message),
		dead:    make(map[wire.NodeID]bool),
	}
	var peers []wire.NodeID
	for i := 0; i < n; i++ {
		peers = append(peers, wire.NodeID(i))
	}
	for i := 0; i < n; i++ {
		id := wire.NodeID(i)
		w.members[id] = New(Config{
			Group: 1, Self: id, Peers: peers, InitialLeader: initialLeader,
			HeartbeatInterval:  10 * time.Millisecond,
			ElectionTimeoutMin: 50 * time.Millisecond,
			ElectionTimeoutMax: 100 * time.Millisecond,
		}, IO{
			Send: func(to wire.NodeID, m wire.Message) {
				w.queue = append(w.queue, envelope{from: id, to: to, msg: m})
			},
			Deliver: func(_ uint64, payload wire.Message) {
				w.deliver[id] = append(w.deliver[id], payload)
			},
			Now:  func() time.Duration { return w.now },
			Rand: rand.New(rand.NewSource(int64(i) + 3)),
		})
	}
	return w
}

// pump delivers queued messages until quiescent.
func (w *net) pump() {
	for len(w.queue) > 0 {
		e := w.queue[0]
		w.queue = w.queue[1:]
		if w.dead[e.to] || w.dead[e.from] {
			continue
		}
		w.members[e.to].Handle(e.from, e.msg)
	}
}

// tickAll advances time and ticks everyone.
func (w *net) tickAll(d time.Duration) {
	w.now += d
	for id, r := range w.members {
		if !w.dead[id] {
			r.Tick()
		}
	}
	w.pump()
}

func TestReplicationDeliversEverywhere(t *testing.T) {
	w := newNet(3, 0)
	w.pump()
	if err := w.members[0].Propose(&wire.Ping{From: 0, Seq: 1}); err != nil {
		t.Fatal(err)
	}
	w.pump()
	for id, got := range w.deliver {
		if len(got) != 1 {
			t.Fatalf("node %v delivered %d, want 1", id, len(got))
		}
	}
}

func TestFollowerRejectsPropose(t *testing.T) {
	w := newNet(3, 0)
	w.pump()
	if err := w.members[1].Propose(&wire.Ping{}); err != ErrNotLeader {
		t.Fatalf("err = %v, want ErrNotLeader", err)
	}
}

func TestElectionAfterLeaderDeath(t *testing.T) {
	w := newNet(3, 0)
	w.pump()
	w.members[0].Propose(&wire.Ping{From: 0, Seq: 1})
	w.pump()
	w.dead[0] = true
	// Run past the election timeout.
	for i := 0; i < 30; i++ {
		w.tickAll(10 * time.Millisecond)
	}
	var leader wire.NodeID = wire.NoNode
	for id, r := range w.members {
		if !w.dead[id] && r.Role() == Leader {
			leader = id
		}
	}
	if leader == wire.NoNode {
		t.Fatal("no leader elected after leader death")
	}
	// The new leader can commit entries.
	if err := w.members[leader].Propose(&wire.Ping{From: leader, Seq: 2}); err != nil {
		t.Fatal(err)
	}
	w.pump()
	for id, got := range w.deliver {
		if w.dead[id] {
			continue
		}
		if len(got) != 2 {
			t.Fatalf("node %v delivered %d, want 2", id, len(got))
		}
	}
}

func TestDeliveryOrderIsIdentical(t *testing.T) {
	w := newNet(5, 0)
	w.pump()
	for s := uint64(1); s <= 20; s++ {
		w.members[0].Propose(&wire.Ping{From: 0, Seq: s})
		if s%3 == 0 {
			w.pump()
		}
	}
	w.pump()
	ref := w.deliver[0]
	if len(ref) != 20 {
		t.Fatalf("delivered %d, want 20", len(ref))
	}
	for id, got := range w.deliver {
		if len(got) != 20 {
			t.Fatalf("node %v delivered %d", id, len(got))
		}
		for i := range got {
			if got[i].(*wire.Ping).Seq != ref[i].(*wire.Ping).Seq {
				t.Fatalf("node %v order differs at %d", id, i)
			}
		}
	}
}

func TestLogCompactionBoundsMemory(t *testing.T) {
	w := newNet(3, 0)
	w.pump()
	for s := uint64(1); s <= 1000; s++ {
		w.members[0].Propose(&wire.Ping{From: 0, Seq: s})
		w.pump()
	}
	r := w.members[0]
	if live := r.LastIndex() - r.offset; live > 4*compactionMargin {
		t.Fatalf("leader retains %d entries; compaction broken", live)
	}
	if len(w.deliver[2]) != 1000 {
		t.Fatalf("follower delivered %d, want 1000", len(w.deliver[2]))
	}
}

func TestSetPeersQuorumChange(t *testing.T) {
	w := newNet(3, 0)
	w.pump()
	// Shrink to 2 members; quorum becomes 2 of 2.
	w.dead[2] = true
	for _, id := range []wire.NodeID{0, 1} {
		w.members[id].SetPeers([]wire.NodeID{0, 1})
	}
	w.members[0].Propose(&wire.Ping{From: 0, Seq: 9})
	w.pump()
	if len(w.deliver[1]) != 1 {
		t.Fatal("post-reconfiguration commit failed")
	}
}
