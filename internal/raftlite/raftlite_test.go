package raftlite

import (
	"math/rand"
	"testing"
	"time"

	"canopus/internal/wire"
)

// net is a tiny synchronous harness: messages queue and are delivered by
// pump(); time advances manually.
type net struct {
	now     time.Duration
	members map[wire.NodeID]*Raft
	queue   []envelope
	deliver map[wire.NodeID][]wire.Message
	dead    map[wire.NodeID]bool
}

type envelope struct {
	from, to wire.NodeID
	msg      wire.Message
}

func newNet(n int, initialLeader wire.NodeID) *net {
	w := &net{
		members: make(map[wire.NodeID]*Raft),
		deliver: make(map[wire.NodeID][]wire.Message),
		dead:    make(map[wire.NodeID]bool),
	}
	var peers []wire.NodeID
	for i := 0; i < n; i++ {
		peers = append(peers, wire.NodeID(i))
	}
	for i := 0; i < n; i++ {
		id := wire.NodeID(i)
		w.members[id] = New(Config{
			Group: 1, Self: id, Peers: peers, InitialLeader: initialLeader,
			HeartbeatInterval:  10 * time.Millisecond,
			ElectionTimeoutMin: 50 * time.Millisecond,
			ElectionTimeoutMax: 100 * time.Millisecond,
		}, IO{
			Send: func(to wire.NodeID, m wire.Message) {
				w.queue = append(w.queue, envelope{from: id, to: to, msg: m})
			},
			Deliver: func(_ uint64, payload wire.Message) {
				w.deliver[id] = append(w.deliver[id], payload)
			},
			Now:  func() time.Duration { return w.now },
			Rand: rand.New(rand.NewSource(int64(i) + 3)),
		})
	}
	return w
}

// pump delivers queued messages until quiescent.
func (w *net) pump() {
	for len(w.queue) > 0 {
		e := w.queue[0]
		w.queue = w.queue[1:]
		if w.dead[e.to] || w.dead[e.from] {
			continue
		}
		w.members[e.to].Handle(e.from, e.msg)
	}
}

// tickAll advances time and ticks everyone.
func (w *net) tickAll(d time.Duration) {
	w.now += d
	for id, r := range w.members {
		if !w.dead[id] {
			r.Tick()
		}
	}
	w.pump()
}

func TestReplicationDeliversEverywhere(t *testing.T) {
	w := newNet(3, 0)
	w.pump()
	if err := w.members[0].Propose(&wire.Ping{From: 0, Seq: 1}); err != nil {
		t.Fatal(err)
	}
	w.pump()
	for id, got := range w.deliver {
		if len(got) != 1 {
			t.Fatalf("node %v delivered %d, want 1", id, len(got))
		}
	}
}

func TestFollowerRejectsPropose(t *testing.T) {
	w := newNet(3, 0)
	w.pump()
	if err := w.members[1].Propose(&wire.Ping{}); err != ErrNotLeader {
		t.Fatalf("err = %v, want ErrNotLeader", err)
	}
}

func TestElectionAfterLeaderDeath(t *testing.T) {
	w := newNet(3, 0)
	w.pump()
	w.members[0].Propose(&wire.Ping{From: 0, Seq: 1})
	w.pump()
	w.dead[0] = true
	// Run past the election timeout.
	for i := 0; i < 30; i++ {
		w.tickAll(10 * time.Millisecond)
	}
	var leader wire.NodeID = wire.NoNode
	for id, r := range w.members {
		if !w.dead[id] && r.Role() == Leader {
			leader = id
		}
	}
	if leader == wire.NoNode {
		t.Fatal("no leader elected after leader death")
	}
	// The new leader can commit entries.
	if err := w.members[leader].Propose(&wire.Ping{From: leader, Seq: 2}); err != nil {
		t.Fatal(err)
	}
	w.pump()
	for id, got := range w.deliver {
		if w.dead[id] {
			continue
		}
		if len(got) != 2 {
			t.Fatalf("node %v delivered %d, want 2", id, len(got))
		}
	}
}

func TestDeliveryOrderIsIdentical(t *testing.T) {
	w := newNet(5, 0)
	w.pump()
	for s := uint64(1); s <= 20; s++ {
		w.members[0].Propose(&wire.Ping{From: 0, Seq: s})
		if s%3 == 0 {
			w.pump()
		}
	}
	w.pump()
	ref := w.deliver[0]
	if len(ref) != 20 {
		t.Fatalf("delivered %d, want 20", len(ref))
	}
	for id, got := range w.deliver {
		if len(got) != 20 {
			t.Fatalf("node %v delivered %d", id, len(got))
		}
		for i := range got {
			if got[i].(*wire.Ping).Seq != ref[i].(*wire.Ping).Seq {
				t.Fatalf("node %v order differs at %d", id, i)
			}
		}
	}
}

func TestLogCompactionBoundsMemory(t *testing.T) {
	w := newNet(3, 0)
	w.pump()
	for s := uint64(1); s <= 1000; s++ {
		w.members[0].Propose(&wire.Ping{From: 0, Seq: s})
		w.pump()
	}
	r := w.members[0]
	if live := r.LastIndex() - r.offset; live > 4*compactionMargin {
		t.Fatalf("leader retains %d entries; compaction broken", live)
	}
	if len(w.deliver[2]) != 1000 {
		t.Fatalf("follower delivered %d, want 1000", len(w.deliver[2]))
	}
}

// TestRejoinAfterCompaction regression-tests the chaos-suite livelock: a
// member removed from a long-running group and later re-seated (a
// crash-stop rejoin) starts with an empty log while the leader has
// compacted far past index 1. The fresh member must fast-forward to the
// leader's horizon and replicate from there; before the fix the leader
// resent the same unacceptable probe on every heartbeat forever, and its
// stale matchIndex for the rejoined peer could index below the
// compaction horizon and panic.
func TestRejoinAfterCompaction(t *testing.T) {
	w := newNet(3, 0)
	w.pump()
	// Drive the log well past the compaction margin.
	for s := uint64(1); s <= 500; s++ {
		w.members[0].Propose(&wire.Ping{From: 0, Seq: s})
		w.pump()
	}
	if w.members[0].offset == 0 {
		t.Fatal("leader never compacted; test premise broken")
	}
	// Member 2 crashes and is removed.
	w.dead[2] = true
	for _, id := range []wire.NodeID{0, 1} {
		w.members[id].SetPeers([]wire.NodeID{0, 1})
	}
	for s := uint64(501); s <= 600; s++ {
		w.members[0].Propose(&wire.Ping{From: 0, Seq: s})
		w.pump()
	}
	// Member 2 rejoins with total state loss: a fresh Raft in the same
	// group, re-seated everywhere.
	old := w.members[2]
	w.members[2] = New(Config{
		Group: 1, Self: 2, Peers: []wire.NodeID{0, 1, 2}, InitialLeader: 0,
		HeartbeatInterval:  10 * time.Millisecond,
		ElectionTimeoutMin: 50 * time.Millisecond,
		ElectionTimeoutMax: 100 * time.Millisecond,
	}, IO{
		Send: func(to wire.NodeID, m wire.Message) {
			w.queue = append(w.queue, envelope{from: 2, to: to, msg: m})
		},
		Deliver: func(_ uint64, payload wire.Message) {
			w.deliver[2] = append(w.deliver[2], payload)
		},
		Now:  func() time.Duration { return w.now },
		Rand: rand.New(rand.NewSource(23)),
	})
	w.deliver[2] = nil
	w.dead[2] = false
	for _, id := range []wire.NodeID{0, 1, 2} {
		w.members[id].SetPeers([]wire.NodeID{0, 1, 2})
	}
	_ = old
	// A few heartbeats must be enough to resync the fresh member.
	for i := 0; i < 10; i++ {
		w.tickAll(10 * time.Millisecond)
	}
	w.members[0].Propose(&wire.Ping{From: 0, Seq: 601})
	w.pump()
	got := w.deliver[2]
	if len(got) == 0 {
		t.Fatal("rejoined member never delivered anything (resync livelock)")
	}
	if got[len(got)-1].(*wire.Ping).Seq != 601 {
		t.Fatalf("rejoined member's last delivery is Seq=%d, want 601", got[len(got)-1].(*wire.Ping).Seq)
	}
	// The rejoined member must not have replayed the pre-rejoin prefix
	// below the leader's compaction horizon.
	if len(got) > 200 {
		t.Fatalf("rejoined member replayed %d entries; fast-forward install did not engage", len(got))
	}
}

// TestEmptyFollowerUncompactedLeaderReplaysAll pins the boundary of the
// fast-forward install: when the leader still retains its full log
// (offset 0), an empty follower must get the complete replay from index
// 1, not a fast-forward that skips the committed prefix.
func TestEmptyFollowerUncompactedLeaderReplaysAll(t *testing.T) {
	w := newNet(3, 0)
	w.pump()
	// Member 2 misses everything, but the log stays below the
	// compaction margin so the leader retains it all.
	w.dead[2] = true
	for s := uint64(1); s <= 50; s++ {
		w.members[0].Propose(&wire.Ping{From: 0, Seq: s})
		w.pump()
	}
	if w.members[0].offset != 0 {
		t.Fatal("leader compacted below the margin; test premise broken")
	}
	w.dead[2] = false
	for i := 0; i < 5; i++ {
		w.tickAll(10 * time.Millisecond)
	}
	if got := len(w.deliver[2]); got != 50 {
		t.Fatalf("recovered follower delivered %d entries, want the full 50-entry replay", got)
	}
}

func TestSetPeersQuorumChange(t *testing.T) {
	w := newNet(3, 0)
	w.pump()
	// Shrink to 2 members; quorum becomes 2 of 2.
	w.dead[2] = true
	for _, id := range []wire.NodeID{0, 1} {
		w.members[id].SetPeers([]wire.NodeID{0, 1})
	}
	w.members[0].Propose(&wire.Ping{From: 0, Seq: 9})
	w.pump()
	if len(w.deliver[1]) != 1 {
		t.Fatal("post-reconfiguration commit failed")
	}
}
