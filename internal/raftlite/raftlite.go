// Package raftlite implements the Raft replication and election protocol
// used as the reliable-broadcast substrate inside a Canopus super-leaf
// (paper §4.3): every node leads its own Raft group, with its super-leaf
// peers as followers; broadcasting a message means appending it to the
// group's log; delivery happens on commit, so either all live members
// deliver a message or none do. Leader failure triggers an election whose
// winner completes any in-flight replication — and doubles as the
// super-leaf's perfect failure detector (paper Appendix A, definition 7).
//
// The implementation is a plain state machine: the owner (one
// engine.Machine per node, multiplexing many groups) feeds it messages
// and periodic ticks and receives sends, deliveries and leadership
// changes through callbacks. It performs log compaction below the commit
// index so long simulations run in bounded memory.
package raftlite

import (
	"errors"
	"fmt"
	"math/rand"
	"time"

	"canopus/internal/wire"
)

// Role is a Raft role.
type Role uint8

const (
	// Follower replicates the leader's log.
	Follower Role = iota
	// Candidate is running an election.
	Candidate
	// Leader owns the log and replicates it.
	Leader
)

func (r Role) String() string {
	switch r {
	case Follower:
		return "follower"
	case Candidate:
		return "candidate"
	case Leader:
		return "leader"
	default:
		return fmt.Sprintf("role(%d)", uint8(r))
	}
}

// ErrNotLeader is returned by Propose on a non-leader.
var ErrNotLeader = errors.New("raftlite: not leader")

// compactionMargin is how many committed entries are retained below the
// commit index so a new leader's consistency probe never reaches
// truncated territory.
const compactionMargin = 64

// maxAppendEntries bounds entries per AppendEntries message; a leader
// with a longer backlog sends several messages back to back.
const maxAppendEntries = 64

// Config parameterizes one Raft group member.
type Config struct {
	Group uint64        // group identity carried in every message
	Self  wire.NodeID   // this member
	Peers []wire.NodeID // all members including Self

	// InitialLeader skips the initial election: all members start at term
	// 1 believing InitialLeader leads. NoNode means "elect normally".
	// Canopus broadcast groups always start with the origin as leader.
	InitialLeader wire.NodeID

	HeartbeatInterval  time.Duration // leader keep-alive (default 20ms)
	ElectionTimeoutMin time.Duration // follower patience lower bound (default 100ms)
	ElectionTimeoutMax time.Duration // upper bound (default 200ms)
}

func (c *Config) fill() {
	if c.HeartbeatInterval == 0 {
		c.HeartbeatInterval = 20 * time.Millisecond
	}
	if c.ElectionTimeoutMin == 0 {
		c.ElectionTimeoutMin = 100 * time.Millisecond
	}
	if c.ElectionTimeoutMax == 0 {
		c.ElectionTimeoutMax = 2 * c.ElectionTimeoutMin
	}
}

// IO is how a Raft instance touches the world. All callbacks are invoked
// synchronously from Handle/Tick/Propose.
type IO struct {
	// Send transmits a message to a peer.
	Send func(to wire.NodeID, m wire.Message)
	// Deliver hands a committed entry (1-based index) to the owner, in
	// strictly increasing index order. Nil payloads (leader no-op
	// barriers) are not delivered.
	Deliver func(index uint64, payload wire.Message)
	// LeaderChanged reports this member's view of leadership whenever it
	// changes; leader may be NoNode while an election is in progress.
	LeaderChanged func(term uint64, leader wire.NodeID)
	// Now returns the current (virtual or wall) time.
	Now func() time.Duration
	// Rand randomizes election timeouts.
	Rand *rand.Rand
}

// Raft is one member of one Raft group.
type Raft struct {
	cfg Config
	io  IO

	role     Role
	term     uint64
	votedFor wire.NodeID
	leader   wire.NodeID
	votes    map[wire.NodeID]bool

	// Log storage: log[0] holds global index offset+1. Entries below
	// offset are compacted away; lastOffTerm is the term of entry at
	// index offset.
	log         []wire.RaftEntry
	offset      uint64
	lastOffTerm uint64
	commit      uint64
	applied     uint64

	nextIndex  map[wire.NodeID]uint64
	matchIndex map[wire.NodeID]uint64

	electionDeadline time.Duration
	nextHeartbeat    time.Duration
}

// New creates a group member. The caller must then drive it with Handle
// and Tick.
func New(cfg Config, io IO) *Raft {
	cfg.fill()
	r := &Raft{
		cfg:        cfg,
		io:         io,
		votedFor:   wire.NoNode,
		leader:     wire.NoNode,
		nextIndex:  make(map[wire.NodeID]uint64),
		matchIndex: make(map[wire.NodeID]uint64),
	}
	if cfg.InitialLeader != wire.NoNode {
		r.term = 1
		r.leader = cfg.InitialLeader
		if cfg.Self == cfg.InitialLeader {
			r.becomeLeader()
		} else {
			r.role = Follower
		}
	}
	r.resetElectionTimer()
	return r
}

// Accessors.

// Role returns the member's current role.
func (r *Raft) Role() Role { return r.role }

// Term returns the current term.
func (r *Raft) Term() uint64 { return r.term }

// Leader returns this member's view of the group leader (NoNode during
// elections).
func (r *Raft) Leader() wire.NodeID { return r.leader }

// Group returns the group ID.
func (r *Raft) Group() uint64 { return r.cfg.Group }

// LastIndex returns the index of the last log entry.
func (r *Raft) LastIndex() uint64 { return r.offset + uint64(len(r.log)) }

// CommitIndex returns the highest committed index.
func (r *Raft) CommitIndex() uint64 { return r.commit }

func (r *Raft) termAt(index uint64) uint64 {
	if index == 0 {
		return 0
	}
	if index == r.offset {
		return r.lastOffTerm
	}
	return r.log[index-r.offset-1].Term
}

func (r *Raft) entryAt(index uint64) *wire.RaftEntry {
	return &r.log[index-r.offset-1]
}

func (r *Raft) majority() int { return len(r.cfg.Peers)/2 + 1 }

func (r *Raft) resetElectionTimer() {
	span := r.cfg.ElectionTimeoutMax - r.cfg.ElectionTimeoutMin
	jitter := time.Duration(0)
	if span > 0 && r.io.Rand != nil {
		jitter = time.Duration(r.io.Rand.Int63n(int64(span)))
	}
	r.electionDeadline = r.io.Now() + r.cfg.ElectionTimeoutMin + jitter
}

// Propose appends payload to the group log. Only the leader accepts
// proposals; followers return ErrNotLeader and the owner forwards or
// fails as appropriate.
func (r *Raft) Propose(payload wire.Message) error {
	if r.role != Leader {
		return ErrNotLeader
	}
	r.log = append(r.log, wire.RaftEntry{Term: r.term, Payload: payload})
	if len(r.cfg.Peers) == 1 {
		r.advanceCommit()
		return nil
	}
	r.replicateAll()
	return nil
}

// Tick drives timeouts; the owner calls it periodically (every few
// milliseconds is plenty).
func (r *Raft) Tick() {
	now := r.io.Now()
	switch r.role {
	case Leader:
		if now >= r.nextHeartbeat {
			r.replicateAll()
		}
		if len(r.cfg.Peers) == 1 && r.commit < r.LastIndex() {
			// A single-member group has no follower replies to drive the
			// commit index, and Propose deliberately commits only up to
			// the previously matched index: delivering an entry inside
			// its own Propose would re-enter the owner mid-broadcast.
			// The tick completes the deferred half — match the log and
			// commit whatever is pending. Without it, a proposer that
			// fills its pipeline between ticks deadlocks: no further
			// Propose arrives, and nothing else advances the commit.
			r.matchIndex[r.cfg.Self] = r.LastIndex()
			r.advanceCommit()
		}
	default:
		if now >= r.electionDeadline {
			r.startElection()
		}
	}
}

func (r *Raft) startElection() {
	r.role = Candidate
	r.term++
	r.votedFor = r.cfg.Self
	r.setLeader(wire.NoNode)
	r.votes = map[wire.NodeID]bool{r.cfg.Self: true}
	r.resetElectionTimer()
	if len(r.cfg.Peers) == 1 {
		r.becomeLeader()
		return
	}
	msg := &wire.RaftVote{
		Group:     r.cfg.Group,
		Term:      r.term,
		Candidate: r.cfg.Self,
		LastIndex: r.LastIndex(),
		LastTerm:  r.termAt(r.LastIndex()),
	}
	for _, p := range r.cfg.Peers {
		if p != r.cfg.Self {
			r.io.Send(p, msg)
		}
	}
}

func (r *Raft) becomeLeader() {
	r.role = Leader
	r.setLeader(r.cfg.Self)
	for _, p := range r.cfg.Peers {
		r.nextIndex[p] = r.LastIndex() + 1
		r.matchIndex[p] = 0
	}
	r.matchIndex[r.cfg.Self] = r.LastIndex()
	// Commit a barrier no-op so entries from prior terms become
	// committable in this term (Raft §5.4.2).
	r.log = append(r.log, wire.RaftEntry{Term: r.term})
	if len(r.cfg.Peers) == 1 {
		r.advanceCommit()
		return
	}
	r.replicateAll()
}

func (r *Raft) setLeader(l wire.NodeID) {
	if r.leader == l {
		return
	}
	r.leader = l
	if r.io.LeaderChanged != nil {
		r.io.LeaderChanged(r.term, l)
	}
}

func (r *Raft) stepDown(term uint64, leader wire.NodeID) {
	if term > r.term {
		r.term = term
		r.votedFor = wire.NoNode
	}
	r.role = Follower
	r.votes = nil
	r.setLeader(leader)
	r.resetElectionTimer()
}

// replicateAll sends AppendEntries to every peer and schedules the next
// heartbeat.
func (r *Raft) replicateAll() {
	r.nextHeartbeat = r.io.Now() + r.cfg.HeartbeatInterval
	for _, p := range r.cfg.Peers {
		if p != r.cfg.Self {
			r.sendAppend(p)
		}
	}
	r.matchIndex[r.cfg.Self] = r.LastIndex()
}

func (r *Raft) sendAppend(to wire.NodeID) {
	next := r.nextIndex[to]
	if next == 0 {
		next = 1
	}
	if next <= r.offset {
		// Peer is behind the compaction horizon. By construction the
		// leader only compacts entries replicated on every peer, so this
		// can only happen transiently after leadership change; resend
		// from the horizon.
		next = r.offset + 1
	}
	prev := next - 1
	m := &wire.RaftAppend{
		Group:     r.cfg.Group,
		Term:      r.term,
		Leader:    r.cfg.Self,
		PrevIndex: prev,
		PrevTerm:  r.termAt(prev),
		Commit:    r.commit,
		Base:      r.offset,
	}
	if last := r.LastIndex(); next <= last {
		end := next + maxAppendEntries
		if end > last+1 {
			end = last + 1
		}
		m.Entries = append(m.Entries, r.log[next-r.offset-1:end-r.offset-1]...)
		// Optimistic pipelining: assume delivery and advance nextIndex
		// immediately so subsequent proposals send only new entries
		// instead of the whole unacknowledged suffix. A rejection resets
		// nextIndex from the follower's hint.
		r.nextIndex[to] = end
	}
	r.io.Send(to, m)
}

// Handle processes one incoming message for this group.
func (r *Raft) Handle(from wire.NodeID, m wire.Message) {
	switch v := m.(type) {
	case *wire.RaftAppend:
		r.onAppend(v)
	case *wire.RaftAppendReply:
		r.onAppendReply(v)
	case *wire.RaftVote:
		r.onVote(v)
	case *wire.RaftVoteReply:
		r.onVoteReply(v)
	}
}

func (r *Raft) onAppend(m *wire.RaftAppend) {
	if m.Term < r.term {
		r.io.Send(m.Leader, &wire.RaftAppendReply{
			Group: r.cfg.Group, Term: r.term, From: r.cfg.Self, Success: false, Match: r.LastIndex(),
		})
		return
	}
	r.stepDown(m.Term, m.Leader)

	// Fast-forward install: a member seated in a long-running group
	// after a rejoin starts with an empty log, while the leader has
	// compacted everything below its horizon and so can never send a
	// prefix starting at index 1. The leader only compacts entries
	// applied by every member of the group at compaction time, and the
	// join protocol's state transfer subsumes their effects, so a
	// completely fresh member may adopt the leader's compaction base as
	// its own log start. Two gates keep this from skipping live data:
	// PrevIndex == Base restricts the install to the horizon probe a
	// backed-off leader sends when it genuinely cannot replay earlier
	// entries (a first-contact probe carries PrevIndex = LastIndex, and
	// an uncompacted leader carries Base = 0 — both are rejected so the
	// leader replays from index 1); PrevIndex <= Commit guards against
	// adopting in-flight uncommitted entries as applied.
	if m.PrevIndex > 0 && m.PrevIndex == m.Base && m.PrevIndex <= m.Commit &&
		r.offset == 0 && len(r.log) == 0 && r.applied == 0 {
		r.offset = m.PrevIndex
		r.lastOffTerm = m.PrevTerm
		r.applied = m.PrevIndex
		if r.commit < m.PrevIndex {
			r.commit = m.PrevIndex
		}
	}

	if m.PrevIndex > r.LastIndex() {
		r.io.Send(m.Leader, &wire.RaftAppendReply{
			Group: r.cfg.Group, Term: r.term, From: r.cfg.Self, Success: false, Match: r.LastIndex(),
		})
		return
	}
	if m.PrevIndex >= r.offset && r.termAt(m.PrevIndex) != m.PrevTerm {
		// Conflict: ask the leader to back up to our commit point, which
		// is guaranteed consistent.
		r.io.Send(m.Leader, &wire.RaftAppendReply{
			Group: r.cfg.Group, Term: r.term, From: r.cfg.Self, Success: false, Match: r.commit,
		})
		return
	}
	// Append entries, truncating any conflicting suffix.
	idx := m.PrevIndex
	for i := range m.Entries {
		idx++
		if idx <= r.offset {
			continue // already compacted, necessarily identical
		}
		if idx <= r.LastIndex() {
			if r.termAt(idx) == m.Entries[i].Term {
				continue
			}
			r.log = r.log[:idx-r.offset-1]
		}
		r.log = append(r.log, m.Entries[i])
	}
	if m.Commit > r.commit {
		last := r.LastIndex()
		r.commit = m.Commit
		if r.commit > last {
			r.commit = last
		}
		r.apply()
	}
	r.io.Send(m.Leader, &wire.RaftAppendReply{
		Group: r.cfg.Group, Term: r.term, From: r.cfg.Self, Success: true, Match: r.LastIndex(),
	})
}

func (r *Raft) onAppendReply(m *wire.RaftAppendReply) {
	if m.Term > r.term {
		r.stepDown(m.Term, wire.NoNode)
		return
	}
	if r.role != Leader || m.Term < r.term {
		return
	}
	if m.Success {
		if m.Match > r.matchIndex[m.From] {
			r.matchIndex[m.From] = m.Match
		}
		if next := m.Match + 1; next > r.nextIndex[m.From] {
			r.nextIndex[m.From] = next
		}
		r.advanceCommit()
		if r.nextIndex[m.From] <= r.LastIndex() {
			r.sendAppend(m.From)
		}
		return
	}
	// Rejected: back up using the follower's hint and retry.
	next := m.Match + 1
	if next < 1 {
		next = 1
	}
	if next < r.nextIndex[m.From] {
		r.nextIndex[m.From] = next
	} else if r.nextIndex[m.From] > 1 {
		r.nextIndex[m.From]--
	}
	r.sendAppend(m.From)
}

func (r *Raft) advanceCommit() {
	for idx := r.LastIndex(); idx > r.commit; idx-- {
		if r.termAt(idx) != r.term {
			break // only entries from the current term commit by counting
		}
		n := 0
		for _, p := range r.cfg.Peers {
			if r.matchIndex[p] >= idx {
				n++
			}
		}
		if n >= r.majority() {
			r.commit = idx
			r.apply()
			// Followers learn the new commit index immediately rather
			// than waiting a heartbeat, keeping broadcast latency at one
			// round trip plus one one-way hop.
			for _, p := range r.cfg.Peers {
				if p != r.cfg.Self {
					// A freshly (re-)added peer's matchIndex can trail the
					// compaction horizon; clamp so the probe stays inside
					// the retained log (the peer's reply hint resyncs it).
					prev := r.matchIndex[p]
					if prev < r.offset {
						prev = r.offset
					}
					r.io.Send(p, &wire.RaftAppend{
						Group: r.cfg.Group, Term: r.term, Leader: r.cfg.Self,
						PrevIndex: prev, PrevTerm: r.termAt(prev),
						Commit: r.commit, Base: r.offset,
					})
				}
			}
			break
		}
	}
}

func (r *Raft) apply() {
	for r.applied < r.commit {
		r.applied++
		e := r.entryAt(r.applied)
		if e.Payload != nil && r.io.Deliver != nil {
			r.io.Deliver(r.applied, e.Payload)
		}
	}
	r.maybeCompact()
}

// maybeCompact discards applied entries, keeping a safety margin below
// the commit index (and never discarding entries some peer still needs,
// when this member is the leader).
func (r *Raft) maybeCompact() {
	if r.applied < compactionMargin {
		return
	}
	horizon := r.applied - compactionMargin
	if r.role == Leader {
		for _, p := range r.cfg.Peers {
			if m := r.matchIndex[p]; m < horizon {
				horizon = m
			}
		}
	}
	if horizon <= r.offset {
		return
	}
	drop := horizon - r.offset
	r.lastOffTerm = r.termAt(horizon)
	r.log = append([]wire.RaftEntry(nil), r.log[drop:]...)
	r.offset = horizon
}

func (r *Raft) onVote(m *wire.RaftVote) {
	if m.Term > r.term {
		r.stepDown(m.Term, wire.NoNode)
	}
	grant := false
	if m.Term >= r.term && (r.votedFor == wire.NoNode || r.votedFor == m.Candidate) {
		// Standard up-to-date check (Raft §5.4.1).
		lastTerm := r.termAt(r.LastIndex())
		if m.LastTerm > lastTerm || (m.LastTerm == lastTerm && m.LastIndex >= r.LastIndex()) {
			grant = true
			r.votedFor = m.Candidate
			r.resetElectionTimer()
		}
	}
	r.io.Send(m.Candidate, &wire.RaftVoteReply{
		Group: r.cfg.Group, Term: r.term, From: r.cfg.Self, Granted: grant,
	})
}

func (r *Raft) onVoteReply(m *wire.RaftVoteReply) {
	if m.Term > r.term {
		r.stepDown(m.Term, wire.NoNode)
		return
	}
	if r.role != Candidate || m.Term < r.term || !m.Granted {
		return
	}
	r.votes[m.From] = true
	if len(r.votes) >= r.majority() {
		r.becomeLeader()
	}
}

// SetPeers reconfigures the group membership. Canopus applies membership
// changes at consensus-cycle boundaries, identically on every member, so
// a single-step reconfiguration (rather than joint consensus) is safe
// here: all members switch quorum definitions at the same logical point.
func (r *Raft) SetPeers(peers []wire.NodeID) {
	r.cfg.Peers = append([]wire.NodeID(nil), peers...)
	// Drop replication state for departed peers. Without this, a peer
	// removed after a crash and later re-added (a rejoin into the same
	// still-open group) would resume from a stale matchIndex that may
	// sit below the compaction horizon reached while it was gone.
	current := make(map[wire.NodeID]bool, len(peers))
	for _, p := range peers {
		current[p] = true
	}
	for p := range r.nextIndex {
		if !current[p] {
			delete(r.nextIndex, p)
			delete(r.matchIndex, p)
		}
	}
	if r.role == Leader {
		for _, p := range r.cfg.Peers {
			if _, ok := r.nextIndex[p]; !ok {
				r.nextIndex[p] = r.LastIndex() + 1
				r.matchIndex[p] = 0
			}
		}
		r.advanceCommit()
	}
}
