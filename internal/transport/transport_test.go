package transport

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"canopus/internal/engine"
	"canopus/internal/wire"
)

type countMachine struct {
	mu   sync.Mutex
	env  engine.Env
	got  []wire.Message
	echo bool
}

func (m *countMachine) Init(env engine.Env)   { m.env = env }
func (m *countMachine) Timer(engine.TimerTag) {}
func (m *countMachine) Recv(from wire.NodeID, msg wire.Message) {
	m.got = append(m.got, msg)
	if m.echo {
		m.env.Send(from, &wire.Ping{From: m.env.ID(), Seq: 99})
	}
}

func TestTCPRoundTrip(t *testing.T) {
	peers := map[wire.NodeID]string{}
	var runners []*Runner
	for i := 0; i < 2; i++ {
		r, err := NewRunner(wire.NodeID(i), "127.0.0.1:0", peers, 3)
		if err != nil {
			t.Fatal(err)
		}
		r.Logf = func(string, ...interface{}) {}
		peers[wire.NodeID(i)] = r.Addr().String()
		runners = append(runners, r)
	}
	defer func() {
		for _, r := range runners {
			r.Close()
		}
	}()
	a, b := &countMachine{}, &countMachine{echo: true}
	runners[0].Attach(a)
	runners[1].Attach(b)
	go runners[0].Serve(nil)
	go runners[1].Serve(nil)

	runners[0].Invoke(func() {
		a.env.Send(1, &wire.Ping{From: 0, Seq: 42})
	})
	deadline := time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) {
		var done bool
		runners[0].Invoke(func() { done = len(a.got) == 1 })
		if done {
			p := a.got[0].(*wire.Ping)
			if p.Seq != 99 {
				t.Fatalf("echo seq = %d", p.Seq)
			}
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("echo never arrived")
}

func TestFrameEncoding(t *testing.T) {
	msg := &wire.Ping{From: 3, Seq: 7}
	f := appendFrame(nil, 3, msg)
	if len(f) != 8+msg.WireSize() {
		t.Fatalf("frame length %d", len(f))
	}
	// Two frames appended to one buffer decode back to back.
	f = appendFrame(f, 3, &wire.Ping{From: 3, Seq: 8})
	if len(f) != 2*(8+msg.WireSize()) {
		t.Fatalf("coalesced length %d", len(f))
	}
	for i := 0; i < 2; i++ {
		m, n, err := wire.Decode(f[8 : 8+msg.WireSize()])
		if err != nil || n != msg.WireSize() {
			t.Fatalf("decode frame %d: %v (n=%d)", i, err, n)
		}
		if m.(*wire.Ping).Seq != uint64(7+i) {
			t.Fatalf("frame %d seq = %d", i, m.(*wire.Ping).Seq)
		}
		f = f[8+msg.WireSize():]
	}
}

// TestTurnCoalescing checks that many sends inside one Invoke turn all
// arrive, in order, at the peer (they travel as one coalesced buffer).
func TestTurnCoalescing(t *testing.T) {
	peers := map[wire.NodeID]string{}
	var runners []*Runner
	for i := 0; i < 2; i++ {
		r, err := NewRunner(wire.NodeID(i), "127.0.0.1:0", peers, 3)
		if err != nil {
			t.Fatal(err)
		}
		r.Logf = func(string, ...interface{}) {}
		peers[wire.NodeID(i)] = r.Addr().String()
		runners = append(runners, r)
	}
	defer func() {
		for _, r := range runners {
			r.Close()
		}
	}()
	a, b := &countMachine{}, &countMachine{}
	runners[0].Attach(a)
	runners[1].Attach(b)
	go runners[0].Serve(nil)
	go runners[1].Serve(nil)

	const n = 500
	runners[0].Invoke(func() {
		for i := 0; i < n; i++ {
			a.env.Send(1, &wire.Ping{From: 0, Seq: uint64(i)})
		}
	})
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		var got []wire.Message
		runners[1].Invoke(func() { got = append([]wire.Message(nil), b.got...) })
		if len(got) == n {
			for i, m := range got {
				if m.(*wire.Ping).Seq != uint64(i) {
					t.Fatalf("message %d has seq %d (reordered)", i, m.(*wire.Ping).Seq)
				}
			}
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("coalesced turn never fully arrived")
}

// TestConcurrentSendersAndClose races the write-coalescing path: many
// goroutines Invoke sends and multicasts while timers fire and the
// runner eventually closes mid-traffic. Run under -race in CI.
func TestConcurrentSendersAndClose(t *testing.T) {
	peers := map[wire.NodeID]string{}
	var runners []*Runner
	for i := 0; i < 3; i++ {
		r, err := NewRunner(wire.NodeID(i), "127.0.0.1:0", peers, 3)
		if err != nil {
			t.Fatal(err)
		}
		r.Logf = func(string, ...interface{}) {}
		peers[wire.NodeID(i)] = r.Addr().String()
		runners = append(runners, r)
	}
	machines := make([]*countMachine, 3)
	for i, r := range runners {
		machines[i] = &countMachine{}
		r.Attach(machines[i])
		go r.Serve(nil)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			m := machines[g%3]
			r := runners[g%3]
			for i := 0; i < 200; i++ {
				r.Invoke(func() {
					m.env.Send(wire.NodeID((g+1)%3), &wire.Ping{From: wire.NodeID(g % 3), Seq: uint64(i)})
					m.env.Multicast([]wire.NodeID{0, 1, 2}, &wire.Ping{From: wire.NodeID(g % 3), Seq: uint64(i)})
				})
			}
		}(g)
	}
	time.Sleep(20 * time.Millisecond)
	runners[2].Close() // close one runner mid-traffic
	wg.Wait()
	runners[0].Drain(time.Second)
	runners[0].Close()
	runners[1].Close()
}

// TestDrain verifies Drain reports completion only after queued bytes
// reach the kernel.
func TestDrain(t *testing.T) {
	peers := map[wire.NodeID]string{}
	var runners []*Runner
	for i := 0; i < 2; i++ {
		r, err := NewRunner(wire.NodeID(i), "127.0.0.1:0", peers, 3)
		if err != nil {
			t.Fatal(err)
		}
		r.Logf = func(string, ...interface{}) {}
		peers[wire.NodeID(i)] = r.Addr().String()
		runners = append(runners, r)
	}
	defer func() {
		for _, r := range runners {
			r.Close()
		}
	}()
	a, b := &countMachine{}, &countMachine{}
	runners[0].Attach(a)
	runners[1].Attach(b)
	go runners[0].Serve(nil)
	go runners[1].Serve(nil)
	const n = 100
	for i := 0; i < n; i++ {
		runners[0].Invoke(func() { a.env.Send(1, &wire.Ping{From: 0, Seq: 1}) })
	}
	if !runners[0].Drain(2 * time.Second) {
		t.Fatal("Drain timed out")
	}
}

func TestSendToUnknownPeerDrops(t *testing.T) {
	r, err := NewRunner(0, "127.0.0.1:0", map[wire.NodeID]string{}, 3)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	r.Logf = func(string, ...interface{}) {}
	m := &countMachine{}
	r.Attach(m)
	// Must not panic or block.
	r.Invoke(func() { m.env.Send(9, &wire.Ping{From: 0}) })
	time.Sleep(50 * time.Millisecond)
}

func TestManyConcurrentFrames(t *testing.T) {
	peers := map[wire.NodeID]string{}
	var runners []*Runner
	for i := 0; i < 2; i++ {
		r, err := NewRunner(wire.NodeID(i), "127.0.0.1:0", peers, 3)
		if err != nil {
			t.Fatal(err)
		}
		r.Logf = func(string, ...interface{}) {}
		peers[wire.NodeID(i)] = r.Addr().String()
		runners = append(runners, r)
	}
	defer func() {
		for _, r := range runners {
			r.Close()
		}
	}()
	a, b := &countMachine{}, &countMachine{}
	runners[0].Attach(a)
	runners[1].Attach(b)
	go runners[0].Serve(nil)
	go runners[1].Serve(nil)
	const n = 200
	for i := 0; i < n; i++ {
		seq := uint64(i)
		runners[0].Invoke(func() { a.env.Send(1, &wire.Ping{From: 0, Seq: seq}) })
	}
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		var done bool
		runners[1].Invoke(func() { done = len(b.got) == n })
		if done {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	var got int
	runners[1].Invoke(func() { got = len(b.got) })
	t.Fatalf("received %d of %d frames", got, n)
}

var _ = fmt.Sprintf // keep fmt for future debugging

// TestRedialAfterListenerRestart kills and restarts a peer's listener
// mid-stream: the sender must mark the peer down on the write error,
// reconnect within the dial-backoff envelope once the listener is back,
// and hand every turn buffer back to the encode pool (no leaks across
// the connection churn).
func TestRedialAfterListenerRestart(t *testing.T) {
	base := wire.EncodePool.Outstanding()

	peers := map[wire.NodeID]string{}
	b1, err := NewRunner(1, "127.0.0.1:0", peers, 5)
	if err != nil {
		t.Fatal(err)
	}
	addr := b1.Addr().String()
	peers[1] = addr
	a, err := NewRunner(0, "127.0.0.1:0", peers, 4)
	if err != nil {
		t.Fatal(err)
	}
	peers[0] = a.Addr().String()
	a.Logf = func(string, ...interface{}) {}
	b1.Logf = func(string, ...interface{}) {}

	var transMu sync.Mutex
	var transitions []bool
	a.OnPeerState = func(peer wire.NodeID, up bool) {
		if peer != 1 {
			t.Errorf("OnPeerState for unexpected peer %v", peer)
		}
		transMu.Lock()
		transitions = append(transitions, up)
		transMu.Unlock()
	}

	am, bm := &countMachine{}, &countMachine{}
	a.Attach(am)
	b1.Attach(bm)
	go a.Serve(nil)
	go b1.Serve(nil)
	defer a.Close()

	var seq uint64
	send := func() {
		seq++
		s := seq
		a.Invoke(func() { am.env.Send(1, &wire.Ping{From: 0, Seq: s}) })
	}
	received := func(r *Runner, m *countMachine) int {
		var n int
		r.Invoke(func() { n = len(m.got) })
		return n
	}
	waitFor := func(what string, d time.Duration, cond func() bool) {
		t.Helper()
		deadline := time.Now().Add(d)
		for !cond() {
			if time.Now().After(deadline) {
				t.Fatalf("timeout waiting for %s", what)
			}
			time.Sleep(5 * time.Millisecond)
		}
	}

	send()
	waitFor("first delivery", 3*time.Second, func() bool { return received(b1, bm) >= 1 })
	if !a.PeerUp(1) {
		t.Fatal("peer not marked up after successful delivery")
	}

	// Kill the listener mid-stream; keep sending until the write error
	// surfaces and the peer is marked down.
	b1.Close()
	waitFor("peer down", 3*time.Second, func() bool { send(); return !a.PeerUp(1) })

	// Restart on the same address and require reconnection within the
	// backoff envelope (one dialBackoff window plus generous slack for
	// the dial itself and CI scheduling).
	var b2 *Runner
	for {
		b2, err = NewRunner(1, addr, peers, 6)
		if err == nil {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	b2.Logf = func(string, ...interface{}) {}
	bm2 := &countMachine{}
	b2.Attach(bm2)
	go b2.Serve(nil)
	defer b2.Close()

	restart := time.Now()
	waitFor("reconnect delivery", 5*time.Second, func() bool { send(); return received(b2, bm2) >= 1 })
	if el := time.Since(restart); el > dialBackoff+2*time.Second {
		t.Fatalf("reconnect took %v, beyond the backoff envelope (%v + slack)", el, dialBackoff)
	}
	if !a.PeerUp(1) {
		t.Fatal("peer not marked up after reconnect")
	}
	if c, rs := a.stats.connects.Load(), a.stats.resets.Load(); c < 2 || rs < 1 {
		t.Fatalf("transition counters: connects=%d resets=%d, want >=2/>=1", c, rs)
	}
	transMu.Lock()
	got := append([]bool(nil), transitions...)
	transMu.Unlock()
	if len(got) < 3 || !got[0] || got[0] == got[1] {
		t.Fatalf("OnPeerState transitions = %v, want up,down,up...", got)
	}

	// Pool balance: once the sender drains, every turn buffer taken for
	// the whole up/down/up episode must be back in the pool.
	if !a.Drain(3 * time.Second) {
		t.Fatal("drain timed out")
	}
	waitFor("pool balance", 3*time.Second, func() bool { return wire.EncodePool.Outstanding() == base })
}
