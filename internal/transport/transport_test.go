package transport

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"canopus/internal/engine"
	"canopus/internal/wire"
)

type countMachine struct {
	mu   sync.Mutex
	env  engine.Env
	got  []wire.Message
	echo bool
}

func (m *countMachine) Init(env engine.Env)   { m.env = env }
func (m *countMachine) Timer(engine.TimerTag) {}
func (m *countMachine) Recv(from wire.NodeID, msg wire.Message) {
	m.got = append(m.got, msg)
	if m.echo {
		m.env.Send(from, &wire.Ping{From: m.env.ID(), Seq: 99})
	}
}

func TestTCPRoundTrip(t *testing.T) {
	peers := map[wire.NodeID]string{}
	var runners []*Runner
	for i := 0; i < 2; i++ {
		r, err := NewRunner(wire.NodeID(i), "127.0.0.1:0", peers, 3)
		if err != nil {
			t.Fatal(err)
		}
		r.Logf = func(string, ...interface{}) {}
		peers[wire.NodeID(i)] = r.Addr().String()
		runners = append(runners, r)
	}
	defer func() {
		for _, r := range runners {
			r.Close()
		}
	}()
	a, b := &countMachine{}, &countMachine{echo: true}
	runners[0].Attach(a)
	runners[1].Attach(b)
	go runners[0].Serve(nil)
	go runners[1].Serve(nil)

	runners[0].Invoke(func() {
		a.env.Send(1, &wire.Ping{From: 0, Seq: 42})
	})
	deadline := time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) {
		var done bool
		runners[0].Invoke(func() { done = len(a.got) == 1 })
		if done {
			p := a.got[0].(*wire.Ping)
			if p.Seq != 99 {
				t.Fatalf("echo seq = %d", p.Seq)
			}
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("echo never arrived")
}

func TestFrameEncoding(t *testing.T) {
	f := encodeFrame(3, &wire.Ping{From: 3, Seq: 7})
	if len(f) != 8+(&wire.Ping{From: 3, Seq: 7}).WireSize() {
		t.Fatalf("frame length %d", len(f))
	}
}

func TestSendToUnknownPeerDrops(t *testing.T) {
	r, err := NewRunner(0, "127.0.0.1:0", map[wire.NodeID]string{}, 3)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	r.Logf = func(string, ...interface{}) {}
	m := &countMachine{}
	r.Attach(m)
	// Must not panic or block.
	r.Invoke(func() { m.env.Send(9, &wire.Ping{From: 0}) })
	time.Sleep(50 * time.Millisecond)
}

func TestManyConcurrentFrames(t *testing.T) {
	peers := map[wire.NodeID]string{}
	var runners []*Runner
	for i := 0; i < 2; i++ {
		r, err := NewRunner(wire.NodeID(i), "127.0.0.1:0", peers, 3)
		if err != nil {
			t.Fatal(err)
		}
		r.Logf = func(string, ...interface{}) {}
		peers[wire.NodeID(i)] = r.Addr().String()
		runners = append(runners, r)
	}
	defer func() {
		for _, r := range runners {
			r.Close()
		}
	}()
	a, b := &countMachine{}, &countMachine{}
	runners[0].Attach(a)
	runners[1].Attach(b)
	go runners[0].Serve(nil)
	go runners[1].Serve(nil)
	const n = 200
	for i := 0; i < n; i++ {
		seq := uint64(i)
		runners[0].Invoke(func() { a.env.Send(1, &wire.Ping{From: 0, Seq: seq}) })
	}
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		var done bool
		runners[1].Invoke(func() { done = len(b.got) == n })
		if done {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	var got int
	runners[1].Invoke(func() { got = len(b.got) })
	t.Fatalf("received %d of %d frames", got, n)
}

var _ = fmt.Sprintf // keep fmt for future debugging
