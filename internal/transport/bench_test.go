package transport

import (
	"net"
	"sync/atomic"
	"testing"
	"time"

	"canopus/internal/engine"
	"canopus/internal/wire"
)

// nullMachine is an inert machine for benchmark senders.
type nullMachine struct{}

func (nullMachine) Init(engine.Env)                {}
func (nullMachine) Timer(engine.TimerTag)          {}
func (nullMachine) Recv(wire.NodeID, wire.Message) {}

// discardSink accepts TCP connections and counts discarded bytes, so
// send-path benchmarks measure only sender-side allocations (a second
// Runner would add its decode allocations to the same process totals).
func discardSink(b *testing.B) (addr string, received *atomic.Int64) {
	b.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	received = new(atomic.Int64)
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func() {
				buf := make([]byte, 64<<10)
				for {
					n, err := conn.Read(buf)
					received.Add(int64(n))
					if err != nil {
						return
					}
				}
			}()
		}
	}()
	b.Cleanup(func() { ln.Close() })
	return ln.Addr().String(), received
}

func benchSender(b *testing.B) (*Runner, *atomic.Int64) {
	b.Helper()
	addr, received := discardSink(b)
	r, err := NewRunner(0, "127.0.0.1:0", map[wire.NodeID]string{1: addr}, 3)
	if err != nil {
		b.Fatal(err)
	}
	r.Logf = func(string, ...interface{}) {}
	r.Attach(nullMachine{})
	go r.Serve(nil)
	b.Cleanup(func() { r.Close() })
	return r, received
}

// benchProposal is a realistic round-1 proposal: a 100-write batch of the
// paper's 16-byte key-value requests.
func benchProposal() *wire.Proposal {
	reqs := make([]wire.Request, 100)
	for i := range reqs {
		reqs[i] = wire.Request{
			Client: uint64(i % 10), Seq: uint64(i), Op: wire.OpWrite,
			Key: uint64(i), Val: []byte("12345678"),
		}
	}
	return &wire.Proposal{
		Cycle: 7, Round: 1, Origin: 0, Num: 42,
		Batches: []*wire.Batch{{Origin: 0, Reqs: reqs, NumWrite: 100}},
	}
}

// BenchmarkSendPath measures the transport send hot path: encode a
// realistic proposal inside one Invoke turn and write it to a live
// loopback socket. Run with -benchmem when touching this path; the
// end-to-end allocation budget (which includes this path) is gated in
// CI as BENCH_live.json's allocs_per_request.
func BenchmarkSendPath(b *testing.B) {
	r, received := benchSender(b)
	msg := benchProposal()
	frameLen := int64(msg.WireSize() + 8)
	b.ReportAllocs()
	b.SetBytes(frameLen)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Invoke(func() { r.Send(1, msg) })
	}
	// Drain so iterations measure steady-state sends, not queue growth.
	waitDrained(b, r, received, frameLen*int64(b.N))
}

// waitDrained blocks until the sink saw want bytes or the sender's queue
// is empty (under backpressure the transport may legally drop batches).
func waitDrained(b *testing.B, r *Runner, received *atomic.Int64, want int64) {
	b.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for received.Load() < want {
		if r.Drain(10*time.Millisecond) && received.Load() < want {
			// Queue empty yet bytes short: batches were dropped under
			// backpressure; nothing further will arrive.
			return
		}
		if time.Now().After(deadline) {
			b.Fatalf("drain stalled: %d of %d bytes", received.Load(), want)
		}
	}
}

// BenchmarkSendPathBurst sends 16 messages per Invoke turn: the shape of
// a Canopus node fanning a cycle's traffic out to its super-leaf. With
// write coalescing this is one buffer flush per turn, not sixteen
// per-frame syscalls.
func BenchmarkSendPathBurst(b *testing.B) {
	r, received := benchSender(b)
	msg := benchProposal()
	const burst = 16
	frameLen := int64(msg.WireSize() + 8)
	b.ReportAllocs()
	b.SetBytes(frameLen * burst)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Invoke(func() {
			for j := 0; j < burst; j++ {
				r.Send(1, msg)
			}
		})
	}
	waitDrained(b, r, received, frameLen*int64(b.N)*burst)
}
