// Package transport runs protocol machines over real TCP connections:
// the same engine.Machine code that runs on the simulator serves live
// traffic here. Frames are length-prefixed ([u32 length][i32 sender]
// [encoded message]); connections are dialed lazily, redialed with
// backoff, and all machine callbacks are serialized by a per-node mutex
// so protocol code stays lock-free.
package transport

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"log"
	"math/rand"
	"net"
	"sync"
	"time"

	"canopus/internal/engine"
	"canopus/internal/wire"
)

// maxFrame bounds incoming frame sizes (defense against corrupt peers).
const maxFrame = 64 << 20

// Runner hosts one protocol machine on a TCP endpoint.
type Runner struct {
	id    wire.NodeID
	peers map[wire.NodeID]string // peer -> address

	mu      sync.Mutex // serializes all machine callbacks
	machine engine.Machine
	start   time.Time
	rng     *rand.Rand

	connMu sync.Mutex
	conns  map[wire.NodeID]*peerConn

	listener net.Listener
	done     chan struct{}
	closed   bool

	// Logf logs transport-level events; defaults to log.Printf.
	Logf func(format string, args ...interface{})
}

type peerConn struct {
	mu   sync.Mutex
	conn net.Conn
}

// NewRunner creates a runner for node id listening on listen, with the
// full peer address map (including, optionally, its own entry).
func NewRunner(id wire.NodeID, listen string, peers map[wire.NodeID]string, seed int64) (*Runner, error) {
	ln, err := net.Listen("tcp", listen)
	if err != nil {
		return nil, fmt.Errorf("transport: listen %s: %w", listen, err)
	}
	r := &Runner{
		id:       id,
		peers:    peers,
		start:    time.Now(),
		rng:      rand.New(rand.NewSource(seed ^ int64(id))),
		conns:    make(map[wire.NodeID]*peerConn),
		listener: ln,
		done:     make(chan struct{}),
		Logf:     log.Printf,
	}
	return r, nil
}

// Addr returns the bound listen address.
func (r *Runner) Addr() net.Addr { return r.listener.Addr() }

// Attach installs and initializes the machine. It must be called before
// Serve and before any Invoke.
func (r *Runner) Attach(m engine.Machine) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.machine = m
	m.Init(r)
}

// Serve accepts connections until Close, attaching m first when non-nil
// (a convenience for callers that do not need Attach separately). It
// returns after the listener shuts down.
func (r *Runner) Serve(m engine.Machine) {
	if m != nil {
		r.Attach(m)
	}
	for {
		conn, err := r.listener.Accept()
		if err != nil {
			select {
			case <-r.done:
				return
			default:
			}
			r.Logf("transport: accept: %v", err)
			continue
		}
		go r.readLoop(conn)
	}
}

// Close shuts the runner down.
func (r *Runner) Close() {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return
	}
	r.closed = true
	r.mu.Unlock()
	close(r.done)
	r.listener.Close()
	r.connMu.Lock()
	for _, pc := range r.conns {
		pc.mu.Lock()
		if pc.conn != nil {
			pc.conn.Close()
		}
		pc.mu.Unlock()
	}
	// Nil the map as the connMu-guarded shutdown signal: peer() must not
	// consult r.closed, which is guarded by the unrelated machine mutex.
	r.conns = nil
	r.connMu.Unlock()
}

// Invoke runs fn inside the machine's serialization lock; servers use it
// to feed client requests into the node safely.
func (r *Runner) Invoke(fn func()) {
	r.mu.Lock()
	defer r.mu.Unlock()
	fn()
}

// --- engine.Env ---

// ID implements engine.Env.
func (r *Runner) ID() wire.NodeID { return r.id }

// Now implements engine.Env: wall time since runner start.
func (r *Runner) Now() time.Duration { return time.Since(r.start) }

// Rand implements engine.Env.
func (r *Runner) Rand() *rand.Rand { return r.rng }

// After implements engine.Env using wall-clock timers.
func (r *Runner) After(d time.Duration, tag engine.TimerTag) {
	time.AfterFunc(d, func() {
		r.mu.Lock()
		defer r.mu.Unlock()
		if r.closed || r.machine == nil {
			return
		}
		r.machine.Timer(tag)
	})
}

// Send implements engine.Env. Delivery is asynchronous; failures drop
// the message (protocol retries recover, exactly as on a lossy-at-crash
// network).
func (r *Runner) Send(to wire.NodeID, m wire.Message) {
	frame := encodeFrame(r.id, m)
	go r.write(to, frame)
}

// Multicast implements engine.Env (no switch assist on plain TCP: it is
// a send loop).
func (r *Runner) Multicast(to []wire.NodeID, m wire.Message) {
	frame := encodeFrame(r.id, m)
	for _, dst := range to {
		go r.write(dst, frame)
	}
}

func encodeFrame(from wire.NodeID, m wire.Message) []byte {
	body := m.AppendTo(nil)
	frame := make([]byte, 8, 8+len(body))
	binary.LittleEndian.PutUint32(frame[0:4], uint32(len(body)))
	binary.LittleEndian.PutUint32(frame[4:8], uint32(int32(from)))
	return append(frame, body...)
}

func (r *Runner) write(to wire.NodeID, frame []byte) {
	pc := r.peer(to)
	if pc == nil {
		return
	}
	pc.mu.Lock()
	defer pc.mu.Unlock()
	if pc.conn == nil {
		addr, ok := r.peers[to]
		if !ok {
			return
		}
		conn, err := net.DialTimeout("tcp", addr, 2*time.Second)
		if err != nil {
			return // dropped; protocol-level retries re-send what matters
		}
		pc.conn = conn
	}
	pc.conn.SetWriteDeadline(time.Now().Add(5 * time.Second))
	if _, err := pc.conn.Write(frame); err != nil {
		pc.conn.Close()
		pc.conn = nil
	}
}

func (r *Runner) peer(to wire.NodeID) *peerConn {
	r.connMu.Lock()
	defer r.connMu.Unlock()
	if r.conns == nil {
		return nil // closed
	}
	pc, ok := r.conns[to]
	if !ok {
		pc = &peerConn{}
		r.conns[to] = pc
	}
	return pc
}

func (r *Runner) readLoop(conn net.Conn) {
	defer conn.Close()
	var hdr [8]byte
	for {
		if _, err := io.ReadFull(conn, hdr[:]); err != nil {
			if !errors.Is(err, io.EOF) {
				select {
				case <-r.done:
				default:
					r.Logf("transport: read header: %v", err)
				}
			}
			return
		}
		size := binary.LittleEndian.Uint32(hdr[0:4])
		from := wire.NodeID(int32(binary.LittleEndian.Uint32(hdr[4:8])))
		if size > maxFrame {
			r.Logf("transport: oversized frame (%d bytes) from %v", size, from)
			return
		}
		body := make([]byte, size)
		if _, err := io.ReadFull(conn, body); err != nil {
			return
		}
		msg, _, err := wire.Decode(body)
		if err != nil {
			r.Logf("transport: decode from %v: %v", from, err)
			return
		}
		r.mu.Lock()
		if !r.closed && r.machine != nil {
			r.machine.Recv(from, msg)
		}
		r.mu.Unlock()
	}
}
