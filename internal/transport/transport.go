// Package transport runs protocol machines over real TCP connections:
// the same engine.Machine code that runs on the simulator serves live
// traffic here. Frames are length-prefixed ([u32 length][i32 sender]
// [encoded message]); connections are dialed lazily, redialed with
// backoff, and all machine callbacks are serialized by a per-node mutex
// so protocol code stays lock-free.
//
// Sends are coalesced: messages emitted during one machine turn (one
// Invoke, Recv or Timer callback) are encoded back to back into a pooled
// per-peer buffer and handed to that peer's writer goroutine when the
// turn ends, so a turn costs one buffer flush per destination — not one
// syscall and one allocation per frame.
package transport

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"log"
	"math/rand"
	"net"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"canopus/internal/engine"
	"canopus/internal/metrics"
	"canopus/internal/wire"
)

// maxFrame bounds incoming frame sizes (defense against corrupt peers).
const maxFrame = 64 << 20

// maxQueuedBytes bounds the unsent backlog per peer; beyond it new turn
// buffers are dropped (protocol-level retries recover, exactly as on a
// lossy network).
const maxQueuedBytes = 32 << 20

// dialBackoff is how long a writer waits after a failed dial before
// trying that peer again; batches arriving in between are dropped.
const dialBackoff = 100 * time.Millisecond

// Runner hosts one protocol machine on a TCP endpoint.
type Runner struct {
	id    wire.NodeID
	peers map[wire.NodeID]string // peer -> address

	mu      sync.Mutex // serializes all machine callbacks
	machine engine.Machine
	start   time.Time
	rng     *rand.Rand

	// pending accumulates this turn's encoded frames per destination;
	// guarded by mu (sends only happen inside machine turns).
	pending map[wire.NodeID][]byte
	scratch []byte // multicast encode-once buffer, guarded by mu

	connMu sync.Mutex
	conns  map[wire.NodeID]*peerConn

	// inMu/inConns track accepted (inbound) connections so Close can
	// sever them: a closed runner must look dead to its peers exactly
	// like a killed process would, or senders never notice a restart.
	inMu    sync.Mutex
	inConns map[net.Conn]struct{}

	// up tracks, per peer, whether an outbound connection is currently
	// established; lazily populated because peer address maps may be
	// filled in after construction.
	upMu sync.Mutex
	up   map[wire.NodeID]*atomic.Bool

	listener net.Listener
	done     chan struct{}
	closed   bool

	// stats are the transport's operational counters, updated with
	// atomics from the turn path and the writer/reader goroutines and
	// exported through RegisterMetrics.
	stats runnerStats

	// Logf logs transport-level events; defaults to log.Printf.
	Logf func(format string, args ...interface{})

	// OnPeerState, when set before Serve/Attach, is called on every
	// outbound connection-state transition: up=true when a dial to the
	// peer succeeds, up=false when the connection is lost (write error)
	// or a redial fails. It runs on the peer's writer goroutine and must
	// not block; chaos harnesses use it to observe partitions healing in
	// real time.
	OnPeerState func(peer wire.NodeID, up bool)
}

// runnerStats counts transport work across all peers. Everything is
// atomic: flushTurn runs under the machine lock, but writers and readers
// are per-connection goroutines.
type runnerStats struct {
	turnBufs atomic.Uint64 // coalesced turn buffers handed to writers
	drops    atomic.Uint64 // turn buffers dropped to backlog caps
	writes   atomic.Uint64 // vectored batch writes issued
	bytesOut atomic.Uint64 // payload bytes written to peers
	bytesIn  atomic.Uint64 // frame bytes (header+body) read from peers
	connects atomic.Uint64 // outbound peer transitions to up (dial successes)
	resets   atomic.Uint64 // outbound peer transitions to down (lost conns)
}

// RegisterMetrics exports the transport's counters into reg under the
// canopus_transport_* names with the given constant labels. Safe on a
// nil registry.
func (r *Runner) RegisterMetrics(reg *metrics.Registry, labels ...metrics.Label) {
	reg.CounterFunc("canopus_transport_turn_buffers_total",
		"Coalesced turn buffers handed to peer writers.",
		r.stats.turnBufs.Load, labels...)
	reg.CounterFunc("canopus_transport_dropped_buffers_total",
		"Turn buffers dropped because a peer's backlog cap was hit.",
		r.stats.drops.Load, labels...)
	reg.CounterFunc("canopus_transport_writes_total",
		"Vectored batch writes to peers (one syscall per drained queue).",
		r.stats.writes.Load, labels...)
	reg.CounterFunc("canopus_transport_sent_bytes_total",
		"Bytes written to peer connections.",
		r.stats.bytesOut.Load, labels...)
	reg.CounterFunc("canopus_transport_received_bytes_total",
		"Frame bytes (header and body) read from peer connections.",
		r.stats.bytesIn.Load, labels...)
	reg.CounterFunc("canopus_transport_peer_connects_total",
		"Outbound peer connection establishments (first dials and redials).",
		r.stats.connects.Load, labels...)
	reg.CounterFunc("canopus_transport_peer_resets_total",
		"Outbound peer connections lost (write errors and failed redials).",
		r.stats.resets.Load, labels...)
	// Per-peer liveness gauges: peers are read at registration time, so
	// callers must fill the address map first (livecluster does).
	ids := make([]wire.NodeID, 0, len(r.peers))
	for p := range r.peers {
		if p != r.id {
			ids = append(ids, p)
		}
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, p := range ids {
		st := r.upState(p)
		reg.GaugeFunc("canopus_transport_peer_up",
			"1 while an outbound connection to the peer is established.",
			func() float64 {
				if st.Load() {
					return 1
				}
				return 0
			}, append(append([]metrics.Label{}, labels...), metrics.Label{Key: "peer", Value: p.String()})...)
	}
}

// upState returns (creating if needed) the peer's outbound-liveness flag.
func (r *Runner) upState(to wire.NodeID) *atomic.Bool {
	r.upMu.Lock()
	defer r.upMu.Unlock()
	if r.up == nil {
		r.up = make(map[wire.NodeID]*atomic.Bool)
	}
	st, ok := r.up[to]
	if !ok {
		st = new(atomic.Bool)
		r.up[to] = st
	}
	return st
}

// PeerUp reports whether an outbound connection to the peer is currently
// established. Safe from any goroutine.
func (r *Runner) PeerUp(to wire.NodeID) bool { return r.upState(to).Load() }

// markPeer records an outbound connection-state transition, firing
// OnPeerState and the connect/reset counters only on actual changes
// (redial churn against a dead peer stays one transition).
func (r *Runner) markPeer(to wire.NodeID, up bool) {
	st := r.upState(to)
	if st.Swap(up) == up {
		return
	}
	if up {
		r.stats.connects.Add(1)
	} else {
		r.stats.resets.Add(1)
		r.Logf("transport: peer %v down", to)
	}
	if cb := r.OnPeerState; cb != nil {
		cb(to, up)
	}
}

// peerConn is the outbound state for one peer: a queue of coalesced turn
// buffers drained by a dedicated writer goroutine.
type peerConn struct {
	mu          sync.Mutex
	queue       [][]byte
	spare       [][]byte // drained queue backing awaiting reuse
	queuedBytes int
	inflight    int // bytes taken off the queue but not yet written
	dropped     uint64
	wake        chan struct{} // 1-buffered writer doorbell
}

// NewRunner creates a runner for node id listening on listen, with the
// full peer address map (including, optionally, its own entry).
func NewRunner(id wire.NodeID, listen string, peers map[wire.NodeID]string, seed int64) (*Runner, error) {
	ln, err := net.Listen("tcp", listen)
	if err != nil {
		return nil, fmt.Errorf("transport: listen %s: %w", listen, err)
	}
	r := &Runner{
		id:       id,
		peers:    peers,
		start:    time.Now(),
		rng:      rand.New(rand.NewSource(seed ^ int64(id))),
		pending:  make(map[wire.NodeID][]byte),
		conns:    make(map[wire.NodeID]*peerConn),
		listener: ln,
		done:     make(chan struct{}),
		Logf:     log.Printf,
	}
	return r, nil
}

// Addr returns the bound listen address.
func (r *Runner) Addr() net.Addr { return r.listener.Addr() }

// Attach installs and initializes the machine. It must be called before
// Serve and before any Invoke.
func (r *Runner) Attach(m engine.Machine) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.machine = m
	m.Init(r)
	r.flushTurn()
}

// Serve accepts connections until Close, attaching m first when non-nil
// (a convenience for callers that do not need Attach separately). It
// returns after the listener shuts down.
func (r *Runner) Serve(m engine.Machine) {
	if m != nil {
		r.Attach(m)
	}
	for {
		conn, err := r.listener.Accept()
		if err != nil {
			select {
			case <-r.done:
				return
			default:
			}
			r.Logf("transport: accept: %v", err)
			continue
		}
		go r.readLoop(conn)
	}
}

// Close shuts the runner down.
func (r *Runner) Close() {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return
	}
	r.closed = true
	r.mu.Unlock()
	close(r.done)
	r.listener.Close()
	r.connMu.Lock()
	for _, pc := range r.conns {
		pc.mu.Lock()
		pc.queue, pc.queuedBytes = nil, 0
		pc.mu.Unlock()
	}
	// Nil the map as the connMu-guarded shutdown signal: peer() must not
	// consult r.closed, which is guarded by the unrelated machine mutex.
	r.conns = nil
	r.connMu.Unlock()
	r.inMu.Lock()
	for c := range r.inConns {
		c.Close()
	}
	r.inConns = nil
	r.inMu.Unlock()
}

// Drain blocks until every peer's outbound queue has been handed to the
// kernel (or timeout elapses). Graceful shutdown uses it so the final
// frames of a turn are not torn off mid-write by Close.
func (r *Runner) Drain(timeout time.Duration) bool {
	deadline := time.Now().Add(timeout)
	for {
		if r.queuedBytes() == 0 {
			return true
		}
		if time.Now().After(deadline) {
			return false
		}
		time.Sleep(time.Millisecond)
	}
}

func (r *Runner) queuedBytes() int {
	r.connMu.Lock()
	defer r.connMu.Unlock()
	total := 0
	for _, pc := range r.conns {
		pc.mu.Lock()
		total += pc.queuedBytes + pc.inflight
		pc.mu.Unlock()
	}
	return total
}

// Invoke runs fn inside the machine's serialization lock; servers use it
// to feed client requests into the node safely. Messages sent by fn are
// flushed, coalesced per destination, when fn returns.
func (r *Runner) Invoke(fn func()) {
	r.mu.Lock()
	defer r.mu.Unlock()
	fn()
	r.flushTurn()
}

// --- engine.Env ---

// ID implements engine.Env.
func (r *Runner) ID() wire.NodeID { return r.id }

// Now implements engine.Env: wall time since runner start.
func (r *Runner) Now() time.Duration { return time.Since(r.start) }

// Rand implements engine.Env.
func (r *Runner) Rand() *rand.Rand { return r.rng }

// After implements engine.Env using wall-clock timers. The arming
// machine is captured so a timer never fires into a successor installed
// by a later Attach (livecluster.RestartNode replaces an evicted node
// with a joiner on the same runner; the old node's tick chain must die
// with it, not double the new node's).
func (r *Runner) After(d time.Duration, tag engine.TimerTag) {
	m := r.machine // called from the machine turn, under r.mu
	time.AfterFunc(d, func() {
		r.mu.Lock()
		defer r.mu.Unlock()
		if r.closed || r.machine == nil || r.machine != m {
			return
		}
		r.machine.Timer(tag)
		r.flushTurn()
	})
}

// Send implements engine.Env. The frame is encoded into the turn's
// per-peer buffer; delivery is asynchronous and failures drop the
// message (protocol retries recover, exactly as on a lossy-at-crash
// network).
func (r *Runner) Send(to wire.NodeID, m wire.Message) {
	buf, ok := r.pending[to]
	if !ok {
		buf = wire.EncodePool.Get(8 + m.WireSize())
	}
	r.pending[to] = appendFrame(buf, r.id, m)
}

// Multicast implements engine.Env (no switch assist on plain TCP: it is
// a send loop, but the message is encoded only once).
func (r *Runner) Multicast(to []wire.NodeID, m wire.Message) {
	if len(to) == 0 {
		return
	}
	r.scratch = appendFrame(r.scratch[:0], r.id, m)
	for _, dst := range to {
		buf, ok := r.pending[dst]
		if !ok {
			buf = wire.EncodePool.Get(len(r.scratch))
		}
		r.pending[dst] = append(buf, r.scratch...)
	}
}

// appendFrame appends one length-prefixed frame ([u32 length][i32 sender]
// [encoded message]) to b.
func appendFrame(b []byte, from wire.NodeID, m wire.Message) []byte {
	start := len(b)
	b = append(b, 0, 0, 0, 0, 0, 0, 0, 0)
	b = m.AppendTo(b)
	binary.LittleEndian.PutUint32(b[start:], uint32(len(b)-start-8))
	binary.LittleEndian.PutUint32(b[start+4:], uint32(int32(from)))
	return b
}

// flushTurn hands this turn's coalesced buffers to the per-peer writers.
// Called with r.mu held at the end of every machine turn; it performs no
// syscalls and never blocks on the network.
func (r *Runner) flushTurn() {
	if len(r.pending) == 0 {
		return
	}
	for to, buf := range r.pending {
		delete(r.pending, to)
		if len(buf) == 0 {
			wire.EncodePool.Put(buf)
			continue
		}
		pc := r.peer(to)
		if pc == nil {
			wire.EncodePool.Put(buf)
			continue // closed, or peer unknown
		}
		pc.mu.Lock()
		if pc.queuedBytes+len(buf) > maxQueuedBytes {
			pc.dropped++
			n := pc.dropped
			pc.mu.Unlock()
			r.stats.drops.Add(1)
			wire.EncodePool.Put(buf)
			// Log at power-of-two counts: recurring congestion episodes
			// stay visible without flooding the log.
			if n&(n-1) == 0 {
				r.Logf("transport: backlog to %v over %d bytes; %d turn buffers dropped so far (protocol retries recover)",
					to, maxQueuedBytes, n)
			}
			continue
		}
		if pc.queue == nil && pc.spare != nil {
			// Reuse the backing array the writer just drained instead of
			// growing a fresh queue every turn.
			pc.queue, pc.spare = pc.spare[:0], nil
		}
		pc.queue = append(pc.queue, buf)
		pc.queuedBytes += len(buf)
		pc.mu.Unlock()
		r.stats.turnBufs.Add(1)
		select {
		case pc.wake <- struct{}{}:
		default:
		}
	}
}

// peer returns (creating if needed) the outbound state for to, starting
// its writer goroutine on first use. Returns nil when the runner is
// closed or the peer has no known address.
func (r *Runner) peer(to wire.NodeID) *peerConn {
	r.connMu.Lock()
	defer r.connMu.Unlock()
	if r.conns == nil {
		return nil // closed
	}
	pc, ok := r.conns[to]
	if !ok {
		if _, known := r.peers[to]; !known {
			return nil
		}
		pc = &peerConn{wake: make(chan struct{}, 1)}
		r.conns[to] = pc
		go r.writeLoop(to, pc)
	}
	return pc
}

// writeLoop drains one peer's queue: each wakeup writes every queued turn
// buffer with a single vectored write. Dialing happens here, off the
// machine's lock, so a slow or dead peer never stalls protocol turns.
func (r *Runner) writeLoop(to wire.NodeID, pc *peerConn) {
	var conn net.Conn
	var lastDialFail time.Time
	var scratch net.Buffers // reused vectored-write header array
	defer func() {
		if conn != nil {
			conn.Close()
		}
	}()
	for {
		select {
		case <-r.done:
			return
		case <-pc.wake:
		}
		for {
			pc.mu.Lock()
			batch := pc.queue
			pc.queue, pc.inflight, pc.queuedBytes = nil, pc.queuedBytes, 0
			pc.mu.Unlock()
			if len(batch) == 0 {
				break
			}
			conn = r.writeBatch(conn, to, batch, &scratch, &lastDialFail)
			pc.mu.Lock()
			pc.inflight = 0
			if pc.spare == nil {
				// Hand the drained backing array back for the next turn.
				clear(batch)
				pc.spare = batch[:0]
			}
			pc.mu.Unlock()
		}
	}
}

// writeBatch writes one batch of turn buffers to the peer, dialing if
// needed, and returns the (possibly new or closed) connection. Buffers
// are returned to the encode pool afterwards regardless of outcome; the
// batch slice itself is the caller's to recycle. scratch is the reused
// net.Buffers header array (WriteTo consumes the elements, so the batch
// slice cannot be handed to it directly).
func (r *Runner) writeBatch(conn net.Conn, to wire.NodeID, batch [][]byte, scratch *net.Buffers, lastDialFail *time.Time) net.Conn {
	defer func() {
		for _, b := range batch {
			wire.EncodePool.Put(b)
		}
	}()
	if conn == nil {
		if time.Since(*lastDialFail) < dialBackoff {
			return nil // recently unreachable; drop the batch
		}
		addr, ok := r.peers[to]
		if !ok {
			return nil
		}
		c, err := net.DialTimeout("tcp", addr, 2*time.Second)
		if err != nil {
			*lastDialFail = time.Now()
			r.markPeer(to, false)
			return nil // dropped; protocol-level retries re-send what matters
		}
		conn = c
		r.markPeer(to, true)
	}
	conn.SetWriteDeadline(time.Now().Add(5 * time.Second))
	bufs := append((*scratch)[:0], batch...)
	*scratch = bufs[:0] // keep the original header; WriteTo consumes its copy
	n, err := bufs.WriteTo(conn)
	r.stats.bytesOut.Add(uint64(n))
	if err != nil {
		conn.Close()
		r.markPeer(to, false)
		return nil
	}
	r.stats.writes.Add(1)
	return conn
}

func (r *Runner) readLoop(conn net.Conn) {
	defer conn.Close()
	r.inMu.Lock()
	if r.inConns == nil {
		select {
		case <-r.done: // closed runner: reject late accepts
			r.inMu.Unlock()
			return
		default:
		}
		r.inConns = make(map[net.Conn]struct{})
	}
	r.inConns[conn] = struct{}{}
	r.inMu.Unlock()
	defer func() {
		r.inMu.Lock()
		delete(r.inConns, conn)
		r.inMu.Unlock()
	}()
	var hdr [8]byte
	var body []byte // reused across frames; decoded messages never alias it
	for {
		if _, err := io.ReadFull(conn, hdr[:]); err != nil {
			if !errors.Is(err, io.EOF) {
				select {
				case <-r.done:
				default:
					r.Logf("transport: read header: %v", err)
				}
			}
			return
		}
		size := binary.LittleEndian.Uint32(hdr[0:4])
		from := wire.NodeID(int32(binary.LittleEndian.Uint32(hdr[4:8])))
		if size > maxFrame {
			r.Logf("transport: oversized frame (%d bytes) from %v", size, from)
			return
		}
		if uint32(cap(body)) < size {
			body = make([]byte, size)
		}
		body = body[:size]
		if _, err := io.ReadFull(conn, body); err != nil {
			return
		}
		r.stats.bytesIn.Add(uint64(8 + size))
		msg, _, err := wire.Decode(body)
		if err != nil {
			r.Logf("transport: decode from %v: %v", from, err)
			return
		}
		r.mu.Lock()
		if !r.closed && r.machine != nil {
			r.machine.Recv(from, msg)
			r.flushTurn()
		}
		r.mu.Unlock()
	}
}
