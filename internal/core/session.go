package core

import (
	"canopus/internal/kvstore"
	"canopus/internal/wire"
)

// Replicated client sessions. A session is the unit of exactly-once
// mutation semantics: registration and expiry ride proposal messages
// (like membership updates and lease requests), so every replica applies
// the same session-table change at the same cycle boundary, and every
// replica classifies each committed mutation carrying a session identity
// — duplicate or first sight — identically from the same total order.
// This is the RCanopus move of making client-visible guarantees part of
// the replicated state machine rather than per-connection bookkeeping:
// dedup state survives the serving node, so a retried-after-failover
// mutation whose first submission committed returns the cached reply
// instead of applying twice.
//
// Idle sessions are reclaimed through consensus, not local timers: at
// each commit every node scans its (replicated, identical) table and
// proposes an expiry update for sessions with no committed mutation in
// Config.SessionIdleCycles cycles. The proposal itself is just a hint —
// only its commit changes the table — so duplicate proposals from
// several nodes are harmless and no clock skew can split the replicas.

// RegisterSession proposes a fresh session through the next consensus
// cycle. done fires from the node's event context once the registration
// commits (ok=true, with the session ID every replica now knows), or
// with ok=false if the node cannot commit it (stalled, rejoining, or
// shut down before the commit). Call from the node's event context.
func (n *Node) RegisterSession(done func(id uint64, ok bool)) {
	if n.stalled || n.rejoin {
		if done != nil {
			done(0, false)
		}
		return
	}
	id := n.env.Rand().Uint64() | wire.SessionIDBit
	for n.sessions.Has(id) || n.regWaiters[id] != nil {
		id = n.env.Rand().Uint64() | wire.SessionIDBit
	}
	n.pendingSessions = append(n.pendingSessions, wire.SessionUpdate{ID: id})
	if done != nil {
		if n.regWaiters == nil {
			n.regWaiters = make(map[uint64]func(uint64, bool))
		}
		n.regWaiters[id] = done
	}
	n.afterSubmit()
}

// ExpireSession proposes reclaiming a session through consensus. done
// (optional) fires from the node's event context once the expiry commits
// (ok=true even if the session was already gone), or with ok=false if
// this node cannot commit it.
func (n *Node) ExpireSession(id uint64, done func(ok bool)) {
	if n.stalled || n.rejoin {
		if done != nil {
			done(false)
		}
		return
	}
	n.pendingSessions = append(n.pendingSessions, wire.SessionUpdate{ID: id, Expire: true})
	if done != nil {
		if n.expWaiters == nil {
			n.expWaiters = make(map[uint64][]func(bool))
		}
		n.expWaiters[id] = append(n.expWaiters[id], done)
	}
	n.afterSubmit()
}

// FailSessionWaiters abandons every pending RegisterSession/ExpireSession
// completion (done runs with ok=false): the node is stalling or shutting
// down, and the cycles those registrations ride will not commit here.
// Called internally on stall; servers also call it from their shutdown
// paths. Runs in the node's event context.
func (n *Node) FailSessionWaiters() {
	regs, exps := n.regWaiters, n.expWaiters
	n.regWaiters, n.expWaiters = nil, nil
	for _, done := range regs {
		done(0, false)
	}
	for _, dones := range exps {
		for _, done := range dones {
			done(false)
		}
	}
}

// Sessions exposes the replicated session table (for tests and tooling).
func (n *Node) Sessions() *kvstore.SessionTable { return n.sessions }

// applySessions folds one committed cycle's session updates into the
// replicated table. Applied before the cycle's request order, so a
// registration and the session's first mutations may share a cycle.
func (n *Node) applySessions(cyc uint64, updates []wire.SessionUpdate) {
	n.expiredScratch = n.expiredScratch[:0]
	for _, u := range updates {
		if u.Expire {
			n.sessions.Expire(u.ID)
			n.expiredScratch = append(n.expiredScratch, u.ID)
			delete(n.expireProposed, u.ID)
			if dones := n.expWaiters[u.ID]; dones != nil {
				delete(n.expWaiters, u.ID)
				for _, done := range dones {
					done(true)
				}
			}
			continue
		}
		n.sessions.Register(u.ID, cyc)
		if done, ok := n.regWaiters[u.ID]; ok {
			delete(n.regWaiters, u.ID)
			done(u.ID, true)
		}
	}
}

// gcSessions proposes expiry for sessions with no committed mutation in
// the configured idle window. Every node runs the same scan over the
// same table; expireProposed keeps each node from re-proposing every
// cycle while an expiry is in flight.
func (n *Node) gcSessions(cyc uint64) {
	idle := uint64(n.cfg.SessionIdleCycles)
	if n.cfg.SessionIdleCycles <= 0 || n.sessions.Len() == 0 || cyc <= idle {
		return
	}
	// Stride the scan: idleness is measured in thousands of cycles, so
	// a full-table sweep at every commit buys nothing — at idle/16 the
	// commit hot path pays the O(sessions) cost on a small fraction of
	// cycles while expiry still lands within ~6% of the bound.
	if stride := idle / 16; stride > 1 && cyc%stride != 0 {
		return
	}
	for _, id := range n.sessions.IdleBefore(cyc - idle) {
		if !n.expireProposed[id] {
			if n.expireProposed == nil {
				n.expireProposed = make(map[uint64]bool)
			}
			n.expireProposed[id] = true
			n.pendingSessions = append(n.pendingSessions, wire.SessionUpdate{ID: id, Expire: true})
		}
	}
}
