package core

import (
	"fmt"
	"testing"

	"canopus/internal/kvstore"
	"canopus/internal/lot"
	"canopus/internal/wire"
)

// TestApplyShardSliceEquivalence pins the core claim behind the parallel
// commit path: partitioning one cycle's operations across workers by
// shard — each worker walking the total order and taking only its shards
// — produces the same store state, the same log digests and the same
// read results as a single serial walk.
func TestApplyShardSliceEquivalence(t *testing.T) {
	const shards = 8
	mkPlan := func() (*applyPlan, []wire.Request) {
		reqs := make([]wire.Request, 0, 4096)
		for i := 0; i < 4096; i++ {
			key := uint64(i*2654435761) % 512
			switch i % 7 {
			case 3:
				reqs = append(reqs, wire.Request{Op: wire.OpDelete, Key: key})
			case 5:
				reqs = append(reqs, wire.Request{Op: wire.OpRead, Key: key})
			default:
				reqs = append(reqs, wire.Request{Op: wire.OpWrite, Key: key,
					Val: []byte(fmt.Sprintf("v%d", i))})
			}
		}
		plan := &applyPlan{}
		for i := range reqs {
			if reqs[i].Op == wire.OpRead {
				plan.comps = append(plan.comps, reqs[i])
				plan.vals = append(plan.vals, nil)
				plan.ops = append(plan.ops, planOp{req: &reqs[i], comp: int32(len(plan.comps) - 1)})
				continue
			}
			plan.ops = append(plan.ops, planOp{req: &reqs[i], comp: -1})
		}
		return plan, reqs
	}

	tree, err := lot.New(lot.Config{SuperLeaves: [][]wire.NodeID{{0, 1, 2}}})
	if err != nil {
		t.Fatal(err)
	}
	serialStore := kvstore.NewShardedLogged(shards)
	serialNode := NewNode(Config{Tree: tree, Self: 0}, serialStore, Callbacks{})
	serialPlan, _ := mkPlan()
	serialNode.applyShardSlice(serialPlan, nil, 0, 0)

	for _, workers := range []int{2, 3, 8} {
		st := kvstore.NewShardedLogged(shards)
		node := NewNode(Config{Tree: tree, Self: 0}, st, Callbacks{})
		plan, _ := mkPlan()
		// Sequentially run each worker's partition — the executor runs
		// them concurrently, which is safe because partitions touch
		// disjoint shards; equivalence is a property of the partition.
		for w := 0; w < workers; w++ {
			node.applyShardSlice(plan, st, workers, w)
		}
		if st.StateDigest() != serialStore.StateDigest() {
			t.Fatalf("workers=%d: state digest %x != serial %x", workers, st.StateDigest(), serialStore.StateDigest())
		}
		if st.LogDigest() != serialStore.LogDigest() || st.LogLen() != serialStore.LogLen() {
			t.Fatalf("workers=%d: log %d/%x != serial %d/%x",
				workers, st.LogLen(), st.LogDigest(), serialStore.LogLen(), serialStore.LogDigest())
		}
		for i := range plan.vals {
			if string(plan.vals[i]) != string(serialPlan.vals[i]) {
				t.Fatalf("workers=%d: read %d = %q, serial read %q", workers, i, plan.vals[i], serialPlan.vals[i])
			}
		}
	}
}

// TestApplyWorkersClamps pins the serial-mode sanity clamps: write
// leases and a missing state machine force the serial commit path.
func TestApplyWorkersClamps(t *testing.T) {
	tree, err := lot.New(lot.Config{SuperLeaves: [][]wire.NodeID{{0, 1, 2}}})
	if err != nil {
		t.Fatal(err)
	}
	n := NewNode(Config{Tree: tree, Self: 0, WriteLeases: true, ApplyWorkers: 4}, kvstore.New(), Callbacks{})
	if n.ParallelApply() {
		t.Fatal("WriteLeases + ApplyWorkers did not clamp to serial")
	}
	n = NewNode(Config{Tree: tree, Self: 0, ApplyWorkers: 4}, nil, Callbacks{})
	if n.ParallelApply() {
		t.Fatal("nil state machine + ApplyWorkers did not clamp to serial")
	}
	n = NewNode(Config{Tree: tree, Self: 0, ApplyWorkers: 4}, kvstore.NewSharded(8), Callbacks{})
	if !n.ParallelApply() {
		t.Fatal("ApplyWorkers with a sharded store should run the parallel pipeline")
	}
	defer n.Close()
	// Watermarks start together; a drain on an idle executor returns.
	if n.Ordered() != 0 || n.Committed() != 0 {
		t.Fatalf("fresh node watermarks ordered=%d committed=%d", n.Ordered(), n.Committed())
	}
	n.DrainApply()
}

// TestExecutorReadsSerializeWithPlans drives the executor directly: a
// read submitted after a plan observes that plan's writes, a read parked
// on a future cycle is served the moment the cycle applies, and
// FailLocalReads abandons only reads no queued plan can satisfy.
func TestExecutorReadsSerializeWithPlans(t *testing.T) {
	tree, err := lot.New(lot.Config{SuperLeaves: [][]wire.NodeID{{0, 1, 2}}})
	if err != nil {
		t.Fatal(err)
	}
	n := NewNode(Config{Tree: tree, Self: 0, ApplyWorkers: 2}, kvstore.NewSharded(4), Callbacks{})
	defer n.Close()

	write := wire.Request{Op: wire.OpWrite, Key: 7, Val: []byte("cycle1")}
	plan := n.newPlan(1)
	plan.ops = append(plan.ops, planOp{req: &write, comp: -1})
	n.exec.submitPlan(plan)

	// Submitted after the plan: must see its write and cycle 1.
	got := make(chan string, 1)
	n.exec.submitRead(localRead{key: 7, minCycle: 0, fn: func(val []byte, cycle uint64, ok bool) {
		got <- fmt.Sprintf("%s/%d/%v", val, cycle, ok)
	}})
	if s := <-got; s != "cycle1/1/true" {
		t.Fatalf("read after plan = %q, want cycle1/1/true", s)
	}

	// Parked on cycle 2; served when the cycle-2 plan lands.
	n.exec.submitRead(localRead{key: 7, minCycle: 2, fn: func(val []byte, cycle uint64, ok bool) {
		got <- fmt.Sprintf("%s/%d/%v", val, cycle, ok)
	}})
	write2 := wire.Request{Op: wire.OpWrite, Key: 7, Val: []byte("cycle2")}
	plan2 := n.newPlan(2)
	plan2.ops = append(plan2.ops, planOp{req: &write2, comp: -1})
	n.exec.submitPlan(plan2)
	if s := <-got; s != "cycle2/2/true" {
		t.Fatalf("parked read = %q, want cycle2/2/true", s)
	}

	// Parked beyond any queued plan: abandoned by FailLocalReads.
	n.exec.submitRead(localRead{key: 7, minCycle: 99, fn: func(val []byte, cycle uint64, ok bool) {
		got <- fmt.Sprintf("%v", ok)
	}})
	n.exec.failParked()
	if s := <-got; s != "false" {
		t.Fatalf("abandoned read ok = %q, want false", s)
	}

	if o, c := n.Ordered(), n.Committed(); c != 2 {
		t.Fatalf("applied watermark = %d (ordered %d), want 2", c, o)
	}
}
