package core

import (
	"fmt"
	"sort"
	"sync"

	"canopus/internal/kvstore"
	"canopus/internal/wire"
)

// tryCommit commits completed cycles strictly in cycle order (§7.1:
// "nodes always commit the requests from consensus cycles in sequence").
func (n *Node) tryCommit() {
	for {
		c, ok := n.cycles[n.committed+1]
		if !ok || !c.complete {
			return
		}
		n.commit(c)
	}
}

// commit makes cycle c's total order durable. The serial
// order-resolution stage runs here, inside the machine turn: session
// classification of the total order, membership, lease activation and
// revocation, session GC — everything that must evolve in lock-step on
// every replica. The resulting applyPlan (state-machine operations plus
// this node's completion records) then executes either inline (serial
// mode: ApplyWorkers == 0, identical to the historical single-stage
// commit) or on the node's background apply executor, which lets the
// next cycle's consensus turns overlap this cycle's bulk apply.
func (n *Node) commit(c *cycle) {
	root := c.states[n.tree.Height]
	n.committed = c.id
	n.orderedW.Store(c.id)
	n.stats.cycleCommits.Add(1)
	if n.cfg.StallThreshold > 0 {
		n.lastCommitAt = n.env.Now()
		if n.stallDetected.Load() {
			n.stallDetected.Store(false)
		}
	}
	if n.exec == nil {
		// Serial mode: the whole commit happens inside this turn, so the
		// applied watermark advances with the ordered one and observers
		// never see them apart.
		n.applied.Store(c.id)
	}
	if DebugHook != nil {
		DebugHook(n.cfg.Self, "commit", c.id, "")
	}

	n.applySessions(c.id, root.Sessions)
	plan := n.resolveOrder(c.id, root.Batches)
	plan.expired = append(plan.expired, n.expiredScratch...)
	joiners := n.applyMembership(c.id, root.Updates)
	n.applyLeases(c.id, root.Leases)
	n.revokeLeases(c.id, root.Updates)
	n.gcSessions(c.id)
	n.collectDeferredReads(c.id, plan)

	if n.exec != nil {
		if n.cfg.Durability != nil {
			plan.root = root
		}
		n.exec.submitPlan(plan)
	} else {
		n.execPlanOps(plan)
		// Serial mode logs and syncs inside the turn, one cycle per Sync
		// (simulations run on an in-memory FS; live serial mode trades
		// fsync batching for the lease fast path that forces this mode).
		if n.appendDurable(c.id, root) {
			n.syncDurable()
		}
		n.deliverPlan(plan)
		n.runLocalReads()
		n.freePlan(plan)
	}

	// Join replies go out only after cycle c's own writes have reached
	// the store (executed above in serial mode; submitted to the apply
	// executor, which sendJoinReply drains, in parallel mode). A reply
	// sent from applyMembership would snapshot the state as of c-1 while
	// telling the joiner to resume at c+1, silently losing cycle c's
	// writes on every rejoin.
	for _, j := range joiners {
		n.sendJoinReply(j, c.id)
	}

	if n.cbs.OnCommit != nil {
		n.cbs.OnCommit(c.id, root.Batches)
	}

	delete(n.cycles, c.id)
	delete(n.proposed, c.id)
	n.recent[c.id] = c.states
	if n.cfg.LeafTimeout > 0 && len(c.child) > 0 {
		// Steal the cycle's fetched child states so eviction queries for
		// gap cycles can be answered with the exact state this node merged
		// (see Node.recentChild).
		n.recentChild[c.id] = c.child
		c.child = nil
	}
	n.freeCycle(c)
	if old := c.id - n.retention(); old > 0 && old <= c.id {
		delete(n.recent, old)
		delete(n.recentChild, old)
	}
	if n.stallAfter != 0 && n.committed >= n.stallAfter {
		n.stallAfter = 0
	}

	// Self-clocking (§4.2): a node starts the next cycle if it received
	// one or more client requests during the prior cycle. With
	// pipelining the next cycles are usually already running; pacing
	// keeps saturated self-clocked deployments at the cycle interval.
	if n.pendingCount() > 0 && n.started == n.committed && n.paceAllows() {
		n.tryStartCycles(n.started + 1)
	}
}

// resolveOrder walks the cycle's total order and produces its applyPlan.
// Remote batches contribute their writes; this node's own batch is
// replayed from the locally retained full request set so reads execute
// at their arrival positions among the node's own writes (§5). Session
// classification (the replicated dedup table) happens here, serially, in
// the committed order — the apply stage never touches protocol state.
func (n *Node) resolveOrder(cyc uint64, order []*wire.Batch) *applyPlan {
	plan := n.newPlan(cyc)
	set := n.proposed[cyc]
	for _, b := range order {
		if b.Origin == n.cfg.Self && set != nil {
			n.resolveOwnSet(cyc, set, plan)
			plan.set = set
			set = nil
			continue
		}
		if n.sm != nil && b.Reqs != nil {
			for i := range b.Reqs {
				req := &b.Reqs[i]
				if wire.IsSessionID(req.Client) {
					if _, verdict := n.sessions.Begin(req.Client, req.Seq, cyc); verdict != kvstore.SessionApply {
						continue // duplicate (or expired): never re-apply
					}
					n.sessions.Record(req.Client, req.Seq, nil)
				}
				if req.Op == wire.OpTxn {
					// Every replica evaluates remote transactions at apply
					// time and records the result: the session table is
					// replicated state, and a failover retry may land here.
					plan.hasTxn = true
				}
				plan.ops = append(plan.ops, planOp{req: req, comp: -1})
			}
		}
	}
	// A read-only set whose batch was empty (and therefore absent from
	// the order) linearizes at the end of the cycle: its reads are
	// concurrent with every write ordered by this cycle, and its client
	// issued no interleaved writes, so this placement is consistent
	// with both real time and per-client order.
	if set != nil {
		n.resolveOwnSet(cyc, set, plan)
		plan.set = set
	}
	return plan
}

// resolveOwnSet classifies this node's own request set into the plan:
// every request gets a completion record (in arrival order), mutations
// that must apply and reads that must execute become plan operations.
func (n *Node) resolveOwnSet(cyc uint64, set *ownSet, plan *applyPlan) {
	for i := range set.reqs {
		req := &set.reqs[i]
		switch req.Op {
		case wire.OpWrite, wire.OpDelete:
			if wire.IsSessionID(req.Client) {
				cached, verdict := n.sessions.Begin(req.Client, req.Seq, cyc)
				switch verdict {
				case kvstore.SessionUnknown:
					// Deterministically not applied anywhere; the serving
					// node surfaces the expiry instead of an OK.
					if n.cbs.OnSessionReject != nil {
						n.cbs.OnSessionReject(req)
					}
					continue
				case kvstore.SessionDuplicate:
					// The committed result; do not re-apply.
					plan.comps = append(plan.comps, *req)
					plan.vals = append(plan.vals, cached)
					continue
				default:
					n.sessions.Record(req.Client, req.Seq, nil)
				}
			}
			if n.sm != nil {
				plan.ops = append(plan.ops, planOp{req: req, comp: -1})
			}
			plan.comps = append(plan.comps, *req)
			plan.vals = append(plan.vals, nil)
		case wire.OpRead:
			plan.comps = append(plan.comps, *req)
			plan.vals = append(plan.vals, nil)
			if n.sm != nil {
				plan.ops = append(plan.ops, planOp{req: req, comp: int32(len(plan.comps) - 1)})
			}
		case wire.OpTxn:
			if wire.IsSessionID(req.Client) {
				_, verdict := n.sessions.Begin(req.Client, req.Seq, cyc)
				switch verdict {
				case kvstore.SessionUnknown:
					if n.cbs.OnSessionReject != nil {
						n.cbs.OnSessionReject(req)
					}
					continue
				case kvstore.SessionDuplicate:
					// The original's result resolves at apply time (its own
					// plan has applied by then — strict cycle order), from
					// the compaction-surviving txn slot.
					plan.comps = append(plan.comps, *req)
					plan.vals = append(plan.vals, nil)
					if n.sm != nil {
						plan.ops = append(plan.ops, planOp{req: req, comp: int32(len(plan.comps) - 1), dup: true})
						plan.hasTxn = true
					}
					continue
				default:
					n.sessions.Record(req.Client, req.Seq, nil)
				}
			}
			plan.comps = append(plan.comps, *req)
			plan.vals = append(plan.vals, nil)
			if n.sm != nil {
				plan.ops = append(plan.ops, planOp{req: req, comp: int32(len(plan.comps) - 1)})
				plan.hasTxn = true
			}
		}
	}
}

// collectDeferredReads appends reads parked behind cycle cyc's commit
// (the §7.2 lease path) to the plan: they linearize at the end of the
// cycle, after every write the cycle ordered, which in-shard apply order
// guarantees because they sit last in the plan.
func (n *Node) collectDeferredReads(cyc uint64, plan *applyPlan) {
	reads, ok := n.deferredReads[cyc]
	if !ok {
		return
	}
	delete(n.deferredReads, cyc)
	for i := range reads {
		req := &reads[i].req
		plan.comps = append(plan.comps, *req)
		plan.vals = append(plan.vals, nil)
		if n.sm != nil {
			plan.ops = append(plan.ops, planOp{req: req, comp: int32(len(plan.comps) - 1)})
		}
	}
}

// execPlanOps applies one plan's operations on the calling goroutine
// (the serial path; the executor fans the same loop across workers).
func (n *Node) execPlanOps(p *applyPlan) {
	if n.sm == nil {
		return
	}
	n.applyShardSlice(p, nil, 0, 0)
	n.applyExpiry(p)
}

// deliverPlan materializes one plan's completion records through the
// node's reply callbacks. In serial mode this runs in the machine turn
// (as it always has); in parallel mode it runs on the apply executor,
// off the machine lock — OnReplyBatch consumers must synchronize their
// own state and must consume the value slices during the call.
func (n *Node) deliverPlan(p *applyPlan) {
	if n.cbs.OnEvents != nil && !p.snapshot {
		// The event plane's single choke point: every committed cycle's
		// events publish here, after apply (and after the group commit's
		// Sync when durable), in cycle order, before the cycle's replies.
		n.buildPlanEvents(p)
		n.cbs.OnEvents(p.cycle, p.events)
	}
	if len(p.comps) == 0 {
		return
	}
	if n.cbs.OnReplyBatch != nil {
		n.cbs.OnReplyBatch(p.comps, p.vals)
		return
	}
	if n.cbs.OnReply != nil {
		for i := range p.comps {
			n.cbs.OnReply(&p.comps[i], p.vals[i])
		}
	}
}

// planPool recycles applyPlans (and, via plan.set, own request sets):
// machine turns allocate, the delivering goroutine frees.
var planPool = sync.Pool{New: func() any { return new(applyPlan) }}

// ownSetPool recycles the per-cycle request-set backing arrays.
var ownSetPool = sync.Pool{New: func() any { return new(ownSet) }}

func (n *Node) newPlan(cyc uint64) *applyPlan {
	p := planPool.Get().(*applyPlan)
	p.cycle = cyc
	return p
}

// freePlan recycles a delivered plan. Entries are cleared so pooled
// plans do not pin request payloads or store values.
func (n *Node) freePlan(p *applyPlan) {
	clear(p.ops)
	clear(p.comps)
	clear(p.vals)
	p.ops, p.comps, p.vals = p.ops[:0], p.comps[:0], p.vals[:0]
	p.root = nil
	p.hasTxn, p.snapshot = false, false
	clear(p.outcomes)
	clear(p.txnEvents)
	clear(p.events)
	p.outcomes, p.txnEvents, p.events = p.outcomes[:0], p.txnEvents[:0], p.events[:0]
	p.expired, p.expiredKeys = p.expired[:0], p.expiredKeys[:0]
	p.evArena = p.evArena[:0]
	if set := p.set; set != nil {
		p.set = nil
		clear(set.reqs)
		clear(set.arrivals)
		set.reqs, set.arrivals, set.writes = set.reqs[:0], set.arrivals[:0], 0
		ownSetPool.Put(set)
	}
	planPool.Put(p)
}

// reply completes a single request outside the plan path (lease
// fast-path reads, which only run in serial mode).
func (n *Node) reply(req *wire.Request, val []byte) {
	if n.cbs.OnReplyBatch != nil {
		n.replyReqs = append(n.replyReqs[:0], *req)
		n.replyVals = append(n.replyVals[:0], val)
		n.cbs.OnReplyBatch(n.replyReqs, n.replyVals)
		return
	}
	if n.cbs.OnReply != nil {
		n.cbs.OnReply(req, val)
	}
}

// runLocalReads serves deferred committed-state reads (Sequential
// consistency) whose minimum cycle has now committed. Serial mode only;
// in parallel mode these reads live in the executor's parked set.
func (n *Node) runLocalReads() {
	if len(n.localReads) == 0 {
		return
	}
	kept := n.localReads[:0]
	for _, lr := range n.localReads {
		if n.committed >= lr.minCycle {
			var val []byte
			if n.sm != nil {
				val = n.sm.Read(lr.key)
			}
			lr.fn(val, n.committed, true)
		} else {
			kept = append(kept, lr)
		}
	}
	n.localReads = kept
}

// applyMembership folds the cycle's committed membership updates into
// the emulation table and, for this super-leaf, the broadcast layer.
// Every live node applies the same updates at the same cycle boundary,
// which is the invariant keeping emulation tables identical (§4.6).
// Leaves apply before joins so a crash/rejoin pair in one cycle nets out
// to a fresh incarnation.
func (n *Node) applyMembership(cyc uint64, updates []wire.MemberUpdate) (joiners []wire.NodeID) {
	if len(updates) == 0 {
		return nil
	}
	ordered := append([]wire.MemberUpdate(nil), updates...)
	sort.SliceStable(ordered, func(i, j int) bool {
		if ordered[i].Leave != ordered[j].Leave {
			return ordered[i].Leave
		}
		return ordered[i].Node < ordered[j].Node
	})
	// Resurrect joins (cross-leaf sponsorships, see onJoinRequest) are
	// only valid if the joiner's leaf is still empty when the update
	// applies: the sponsor checked emptiness when it accepted the
	// request, but another member's join may have committed in between,
	// and seating this one anyway would add a member holding stale (zero)
	// broadcast incarnations — a zombie the leaf's round 1 then waits on
	// forever. The pre-cycle member counts decide, so every node voids
	// exactly the same stale updates (the committed prefix, and therefore
	// the pre-cycle view, is identical everywhere). Two resurrect joins
	// landing in the SAME cycle both see a pre-cycle-empty leaf and both
	// seat with all-zero incarnations, which is consistent.
	//
	// Voids are decided — and the voided sponsor's reply cancelled —
	// BEFORE any update applies: when a stale resurrect join and a live
	// member's valid join for the same node share a cycle, the valid
	// entry must not trip the stale sponsor's reply guard (its reply
	// would hand the joiner zero incarnations the leaf no longer runs).
	var voided []bool
	{
		var preMembers map[int]int
		for i, u := range ordered {
			if u.Leave || !u.Resurrect {
				continue
			}
			usl := n.tree.SuperLeafOf(u.Node)
			if usl < 0 {
				continue
			}
			if preMembers == nil {
				preMembers = make(map[int]int)
			}
			if _, ok := preMembers[usl]; !ok {
				preMembers[usl] = len(n.view.Members(usl))
			}
			if preMembers[usl] != 0 {
				if voided == nil {
					voided = make([]bool, len(ordered))
				}
				voided[i] = true
				if s, ok := n.sponsoring[u.Node]; ok && s.resurrect && s.cycle == cyc {
					delete(n.sponsoring, u.Node)
				}
			}
		}
	}
	for i, u := range ordered {
		if voided != nil && voided[i] {
			// Stale resurrection (see above): no view change, no peer add,
			// no reply. The joiner is still in its retry loop and will be
			// sponsored by a now-live leaf member (a Leave+Join with
			// properly bumped incarnations).
			continue
		}
		usl := n.tree.SuperLeafOf(u.Node)
		inOwnSL := usl == n.sl
		if u.Leave {
			// Leaf-death watermark: the cycle whose commit emptied a
			// super-leaf's membership (an eviction tombstone landing) is
			// when local tombstone substitution may begin (leaf.go). Only
			// the non-empty -> empty transition records it — a redundant
			// Leave against an already-empty leaf must not push the
			// watermark forward.
			before := n.cfg.LeafTimeout > 0 && usl >= 0 && len(n.view.Members(usl)) > 0
			n.view.Apply([]wire.MemberUpdate{u})
			if DebugHook != nil {
				DebugHook(n.cfg.Self, "member-leave", cyc, fmt.Sprintf("%d", u.Node))
			}
			if before && len(n.view.Members(usl)) == 0 {
				n.leafDeadAt[usl] = cyc
				n.stats.leavesDead.Store(int64(len(n.leafDeadAt)))
				if DebugHook != nil {
					DebugHook(n.cfg.Self, "leaf-dead", cyc, fmt.Sprintf("sl%d", usl))
				}
			}
			if inOwnSL && u.Node != n.cfg.Self {
				n.bc.RemovePeer(u.Node)
			}
			continue
		}
		n.view.Apply([]wire.MemberUpdate{u})
		if DebugHook != nil {
			DebugHook(n.cfg.Self, "member-join", cyc, fmt.Sprintf("%d", u.Node))
		}
		if usl >= 0 {
			if _, wasDead := n.leafDeadAt[usl]; wasDead {
				// A member of an evicted leaf rejoined: re-admit the leaf
				// to the merge (substitution stops; its states are fetched
				// again).
				delete(n.leafDeadAt, usl)
				n.leafReadmitAt[usl] = n.env.Now()
				n.stats.leafReadmissions.Add(1)
				n.stats.leavesDead.Store(int64(len(n.leafDeadAt)))
			}
		}
		if inOwnSL && u.Node != n.cfg.Self {
			n.bc.AddPeer(u.Node)
			delete(n.closedPeers, u.Node)
		}
		// Reply only when this node's own sponsorship kind matches the
		// applied update: an own-leaf sponsor replies for a normal join
		// (it holds the bumped broadcast incarnations), a cross-leaf
		// sponsor only for an applied resurrection (the leaf was empty,
		// so its all-zero incarnations are exactly right). A mismatched
		// reply would hand the joiner incarnations the leaf doesn't run,
		// wedging its round 1. The reply itself is deferred to the caller
		// (commit) so the snapshot includes this cycle's writes.
		if s, ok := n.sponsoring[u.Node]; ok && s.cycle == cyc && s.resurrect == u.Resurrect {
			delete(n.sponsoring, u.Node)
			joiners = append(joiners, u.Node)
		}
	}
	return joiners
}
