package core

import (
	"sort"

	"canopus/internal/kvstore"
	"canopus/internal/wire"
)

// tryCommit commits completed cycles strictly in cycle order (§7.1:
// "nodes always commit the requests from consensus cycles in sequence").
func (n *Node) tryCommit() {
	for {
		c, ok := n.cycles[n.committed+1]
		if !ok || !c.complete {
			return
		}
		n.commit(c)
	}
}

// commit makes cycle c's total order durable: apply writes, run this
// node's reads at their recorded positions, fold membership updates into
// the view and the broadcast layer, activate leases, and release the
// cycle's memory.
func (n *Node) commit(c *cycle) {
	root := c.states[n.tree.Height]
	n.committed = c.id
	if DebugHook != nil {
		DebugHook(n.cfg.Self, "commit", c.id, "")
	}

	n.applySessions(c.id, root.Sessions)
	n.applyOrder(c.id, root.Batches)
	n.applyMembership(c.id, root.Updates)
	n.applyLeases(c.id, root.Leases)
	n.revokeLeases(c.id, root.Updates)
	n.gcSessions(c.id)
	n.runDeferredReads(c.id)
	n.runLocalReads()

	if n.cbs.OnCommit != nil {
		n.cbs.OnCommit(c.id, root.Batches)
	}

	delete(n.cycles, c.id)
	delete(n.proposed, c.id)
	n.recent[c.id] = c.states
	if old := c.id - n.retention(); old > 0 && old <= c.id {
		delete(n.recent, old)
	}
	if n.stallAfter != 0 && n.committed >= n.stallAfter {
		n.stallAfter = 0
	}

	// Self-clocking (§4.2): a node starts the next cycle if it received
	// one or more client requests during the prior cycle. With
	// pipelining the next cycles are usually already running; pacing
	// keeps saturated self-clocked deployments at the cycle interval.
	if n.pendingCount() > 0 && n.started == n.committed && n.paceAllows() {
		n.tryStartCycles(n.started + 1)
	}
}

// applyOrder walks the cycle's total order. Remote batches contribute
// their writes; this node's own batch is replayed from the locally
// retained full request set so reads execute at their arrival positions
// among the node's own writes (§5).
func (n *Node) applyOrder(cyc uint64, order []*wire.Batch) {
	set := n.proposed[cyc]
	for _, b := range order {
		if b.Origin == n.cfg.Self && set != nil {
			n.applyOwnSet(cyc, set)
			set = nil
			continue
		}
		if n.sm != nil && b.Reqs != nil {
			for i := range b.Reqs {
				req := &b.Reqs[i]
				if wire.IsSessionID(req.Client) {
					if _, verdict := n.sessions.Begin(req.Client, req.Seq, cyc); verdict != kvstore.SessionApply {
						continue // duplicate (or expired): never re-apply
					}
					n.sm.ApplyWrite(req)
					n.sessions.Record(req.Client, req.Seq, nil)
					continue
				}
				n.sm.ApplyWrite(req)
			}
		}
	}
	// A read-only set whose batch was empty (and therefore absent from
	// the order) linearizes at the end of the cycle: its reads are
	// concurrent with every write ordered by this cycle, and its client
	// issued no interleaved writes, so this placement is consistent
	// with both real time and per-client order.
	if set != nil {
		n.applyOwnSet(cyc, set)
	}
}

func (n *Node) applyOwnSet(cyc uint64, set *ownSet) {
	batch := n.cbs.OnReplyBatch != nil
	if batch {
		n.replyReqs, n.replyVals = n.replyReqs[:0], n.replyVals[:0]
	}
	for i := range set.reqs {
		req := &set.reqs[i]
		var val []byte
		switch req.Op {
		case wire.OpWrite, wire.OpDelete:
			if wire.IsSessionID(req.Client) {
				cached, verdict := n.sessions.Begin(req.Client, req.Seq, cyc)
				switch verdict {
				case kvstore.SessionUnknown:
					// Deterministically not applied anywhere; the serving
					// node surfaces the expiry instead of an OK.
					if n.cbs.OnSessionReject != nil {
						n.cbs.OnSessionReject(req)
					}
					continue
				case kvstore.SessionDuplicate:
					val = cached // the committed result; do not re-apply
				default:
					if n.sm != nil {
						n.sm.ApplyWrite(req)
					}
					n.sessions.Record(req.Client, req.Seq, nil)
				}
				break
			}
			if n.sm != nil {
				n.sm.ApplyWrite(req)
			}
		case wire.OpRead:
			if n.sm != nil {
				val = n.sm.Read(req.Key)
			}
		}
		if batch {
			n.replyReqs = append(n.replyReqs, *req)
			n.replyVals = append(n.replyVals, val)
		} else {
			n.reply(req, val)
		}
	}
	n.flushReplies()
}

// reply completes a single request outside the own-set apply path (lease
// fast-path reads, deferred reads).
func (n *Node) reply(req *wire.Request, val []byte) {
	if n.cbs.OnReplyBatch != nil {
		n.replyReqs = append(n.replyReqs[:0], *req)
		n.replyVals = append(n.replyVals[:0], val)
		n.cbs.OnReplyBatch(n.replyReqs, n.replyVals)
		return
	}
	if n.cbs.OnReply != nil {
		n.cbs.OnReply(req, val)
	}
}

// runLocalReads serves deferred committed-state reads (Sequential
// consistency) whose minimum cycle has now committed.
func (n *Node) runLocalReads() {
	if len(n.localReads) == 0 {
		return
	}
	kept := n.localReads[:0]
	for _, lr := range n.localReads {
		if n.committed >= lr.minCycle {
			var val []byte
			if n.sm != nil {
				val = n.sm.Read(lr.key)
			}
			lr.fn(val, n.committed, true)
		} else {
			kept = append(kept, lr)
		}
	}
	n.localReads = kept
}

// flushReplies delivers the accumulated completion batch, if any.
func (n *Node) flushReplies() {
	if n.cbs.OnReplyBatch != nil && len(n.replyReqs) > 0 {
		n.cbs.OnReplyBatch(n.replyReqs, n.replyVals)
		n.replyReqs, n.replyVals = n.replyReqs[:0], n.replyVals[:0]
	}
}

// applyMembership folds the cycle's committed membership updates into
// the emulation table and, for this super-leaf, the broadcast layer.
// Every live node applies the same updates at the same cycle boundary,
// which is the invariant keeping emulation tables identical (§4.6).
// Leaves apply before joins so a crash/rejoin pair in one cycle nets out
// to a fresh incarnation.
func (n *Node) applyMembership(cyc uint64, updates []wire.MemberUpdate) {
	if len(updates) == 0 {
		return
	}
	ordered := append([]wire.MemberUpdate(nil), updates...)
	sort.SliceStable(ordered, func(i, j int) bool {
		if ordered[i].Leave != ordered[j].Leave {
			return ordered[i].Leave
		}
		return ordered[i].Node < ordered[j].Node
	})
	for _, u := range ordered {
		inOwnSL := n.tree.SuperLeafOf(u.Node) == n.sl
		if u.Leave {
			n.view.Apply([]wire.MemberUpdate{u})
			if inOwnSL && u.Node != n.cfg.Self {
				n.bc.RemovePeer(u.Node)
			}
			continue
		}
		n.view.Apply([]wire.MemberUpdate{u})
		if inOwnSL && u.Node != n.cfg.Self {
			n.bc.AddPeer(u.Node)
			delete(n.closedPeers, u.Node)
		}
		if k, ok := n.sponsoring[u.Node]; ok && k == cyc {
			delete(n.sponsoring, u.Node)
			n.sendJoinReply(u.Node, cyc)
		}
	}
}
