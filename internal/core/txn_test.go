package core

import (
	"bytes"
	"testing"
	"time"

	"canopus/internal/wire"
)

// txnReq builds one OpTxn request carrying the encoded body.
func txnReq(client, seq uint64, t *wire.Txn) wire.Request {
	return wire.Request{Client: client, Seq: seq, Op: wire.OpTxn, Val: wire.AppendTxn(nil, t)}
}

// TestTxnCommitAppliesAtomically drives a put-if-absent transaction
// through consensus: the CAS passes, both ops land, every replica
// agrees, and the serving node's reply parses as a committed result.
func TestTxnCommitAppliesAtomically(t *testing.T) {
	tc := newTestCluster(t, clusterOpts{racks: 1, perRack: 3})
	txn := wire.Txn{
		Guards: []wire.TxnGuard{{Kind: wire.GuardValueEq, Key: 10, Val: nil}},
		Ops: []wire.TxnOp{
			{Op: wire.OpWrite, Key: 10, Val: []byte("a")},
			{Op: wire.OpWrite, Key: 11, Val: []byte("b")},
		},
	}
	tc.submitAt(time.Millisecond, 0, txnReq(1, 1, &txn))
	tc.run(500 * time.Millisecond)

	tc.requireAgreement()
	for i, st := range tc.stores {
		if string(st.Read(10)) != "a" || string(st.Read(11)) != "b" {
			t.Fatalf("node %d: txn ops not applied: %q %q", i, st.Read(10), st.Read(11))
		}
	}
	if len(tc.replies[0]) != 1 {
		t.Fatalf("serving node replies = %d, want 1", len(tc.replies[0]))
	}
	res, err := wire.ParseTxnResult(tc.replies[0][0].val)
	if err != nil || !res.Committed {
		t.Fatalf("txn reply = %+v (%v), want committed", res, err)
	}
}

// TestTxnAbortLeavesStoreUntouched is the failing-CAS acceptance test:
// an aborted transaction applies nothing, so every replica's store —
// digests included — is byte-identical to a cluster that never saw the
// transaction at all.
func TestTxnAbortLeavesStoreUntouched(t *testing.T) {
	run := func(withTxn bool) *testCluster {
		tc := newTestCluster(t, clusterOpts{racks: 1, perRack: 3})
		tc.submitAt(time.Millisecond, 1, wr(2, 1, 20, 77))
		if withTxn {
			txn := wire.Txn{
				Guards: []wire.TxnGuard{{Kind: wire.GuardValueEq, Key: 20, Val: []byte("wrong")}},
				Ops: []wire.TxnOp{
					{Op: wire.OpWrite, Key: 21, Val: []byte("never")},
					{Op: wire.OpDelete, Key: 20},
				},
			}
			tc.submitAt(20*time.Millisecond, 0, txnReq(1, 1, &txn))
		}
		tc.run(500 * time.Millisecond)
		return tc
	}

	with, without := run(true), run(false)
	with.requireAgreement()
	if len(with.replies[0]) != 1 {
		t.Fatalf("txn replies = %d, want 1", len(with.replies[0]))
	}
	res, err := wire.ParseTxnResult(with.replies[0][0].val)
	if err != nil || res.Committed || res.Failed != 0 {
		t.Fatalf("txn reply = %+v (%v), want aborted at guard 0", res, err)
	}
	for i := range with.stores {
		if with.stores[i].LogDigest() != without.stores[i].LogDigest() ||
			with.stores[i].LogLen() != without.stores[i].LogLen() ||
			with.stores[i].StateDigest() != without.stores[i].StateDigest() {
			t.Fatalf("node %d: aborted txn changed the store", i)
		}
		if with.stores[i].Read(21) != nil {
			t.Fatalf("node %d: aborted txn op applied", i)
		}
	}
}

// TestTxnCycleGuard pins GuardCycleLE: a guard against the key's
// last-modified cycle commits when the key is untouched since, aborts
// after an interleaved write bumps the modification cycle past it.
func TestTxnCycleGuard(t *testing.T) {
	tc := newTestCluster(t, clusterOpts{racks: 1, perRack: 3})
	tc.submitAt(time.Millisecond, 0, wr(1, 1, 30, 5))
	// Guard far above any plausible commit cycle for the first write.
	pass := wire.Txn{
		Guards: []wire.TxnGuard{{Kind: wire.GuardCycleLE, Key: 30, Cycle: 1 << 20}},
		Ops:    []wire.TxnOp{{Op: wire.OpWrite, Key: 31, Val: []byte("ok")}},
	}
	// Cycle 0 guard: fails once key 30 has been written at some cycle > 0.
	fail := wire.Txn{
		Guards: []wire.TxnGuard{{Kind: wire.GuardCycleLE, Key: 30, Cycle: 0}},
		Ops:    []wire.TxnOp{{Op: wire.OpWrite, Key: 32, Val: []byte("no")}},
	}
	tc.submitAt(50*time.Millisecond, 0, txnReq(1, 2, &pass))
	tc.submitAt(80*time.Millisecond, 0, txnReq(1, 3, &fail))
	tc.run(500 * time.Millisecond)

	tc.requireAgreement()
	for i, st := range tc.stores {
		if string(st.Read(31)) != "ok" {
			t.Fatalf("node %d: passing cycle guard did not commit", i)
		}
		if st.Read(32) != nil {
			t.Fatalf("node %d: failing cycle guard committed", i)
		}
	}
}

// TestEventsMatchAcrossReplicas subscribes every node's OnEvents hook
// and checks each replica observes the identical event sequence — same
// cycles, ops, keys and values, in committed total order — and that a
// committed transaction's ops appear while an aborted one's do not.
func TestEventsMatchAcrossReplicas(t *testing.T) {
	tc := newTestCluster(t, clusterOpts{racks: 1, perRack: 3})
	type cycleEvents struct {
		cycle uint64
		evs   []wire.Event
	}
	got := make([][]cycleEvents, len(tc.nodes))
	for i, n := range tc.nodes {
		i := i
		n.SetOnEvents(func(cycle uint64, evs []wire.Event) {
			if len(evs) == 0 {
				return
			}
			cp := make([]wire.Event, len(evs))
			for j, ev := range evs {
				cp[j] = wire.Event{Op: ev.Op, Key: ev.Key, Val: append([]byte(nil), ev.Val...)}
			}
			got[i] = append(got[i], cycleEvents{cycle: cycle, evs: cp})
		})
	}

	tc.submitAt(time.Millisecond, 0, wr(1, 1, 40, 1))
	tc.submitAt(30*time.Millisecond, 1, wr(2, 1, 41, 2))
	commitTxn := wire.Txn{
		Guards: []wire.TxnGuard{{Kind: wire.GuardValueEq, Key: 42, Val: nil}},
		Ops:    []wire.TxnOp{{Op: wire.OpWrite, Key: 42, Val: []byte("tx")}, {Op: wire.OpDelete, Key: 40}},
	}
	abortTxn := wire.Txn{
		Guards: []wire.TxnGuard{{Kind: wire.GuardValueEq, Key: 41, Val: nil}},
		Ops:    []wire.TxnOp{{Op: wire.OpWrite, Key: 43, Val: []byte("nope")}},
	}
	tc.submitAt(60*time.Millisecond, 2, txnReq(3, 1, &commitTxn))
	tc.submitAt(90*time.Millisecond, 0, txnReq(4, 1, &abortTxn))
	tc.run(500 * time.Millisecond)
	tc.requireAgreement()

	ref := got[0]
	if len(ref) == 0 {
		t.Fatal("no events observed")
	}
	var flat []wire.Event
	for _, ce := range ref {
		flat = append(flat, ce.evs...)
	}
	want := []wire.Event{
		{Op: wire.OpWrite, Key: 40},
		{Op: wire.OpWrite, Key: 41},
		{Op: wire.OpWrite, Key: 42, Val: []byte("tx")},
		{Op: wire.OpDelete, Key: 40},
	}
	if len(flat) != len(want) {
		t.Fatalf("event count = %d, want %d: %+v", len(flat), len(want), flat)
	}
	for i := range want {
		if flat[i].Op != want[i].Op || flat[i].Key != want[i].Key {
			t.Fatalf("event %d = {%v %d}, want {%v %d}", i, flat[i].Op, flat[i].Key, want[i].Op, want[i].Key)
		}
		if want[i].Val != nil && !bytes.Equal(flat[i].Val, want[i].Val) {
			t.Fatalf("event %d val = %q, want %q", i, flat[i].Val, want[i].Val)
		}
	}
	for i := 1; i < len(got); i++ {
		if len(got[i]) != len(ref) {
			t.Fatalf("node %d observed %d event cycles, node 0 observed %d", i, len(got[i]), len(ref))
		}
		for j := range ref {
			if got[i][j].cycle != ref[j].cycle || len(got[i][j].evs) != len(ref[j].evs) {
				t.Fatalf("node %d cycle-events %d diverge from node 0", i, j)
			}
			for k := range ref[j].evs {
				a, b := got[i][j].evs[k], ref[j].evs[k]
				if a.Op != b.Op || a.Key != b.Key || !bytes.Equal(a.Val, b.Val) {
					t.Fatalf("node %d event %d/%d diverges", i, j, k)
				}
			}
		}
	}
}

// TestEphemeralExpiryDeletesOwnedKeys registers a session, writes an
// ephemeral key through a session transaction, then expires the
// session: every replica deletes the key automatically and the
// deletion shows up as an event.
func TestEphemeralExpiryDeletesOwnedKeys(t *testing.T) {
	tc := newTestCluster(t, clusterOpts{racks: 1, perRack: 3})
	var deletions []uint64
	tc.nodes[1].SetOnEvents(func(cycle uint64, evs []wire.Event) {
		for _, ev := range evs {
			if ev.Op == wire.OpDelete {
				deletions = append(deletions, ev.Key)
			}
		}
	})

	var sess uint64
	tc.sim.At(time.Millisecond, func() {
		tc.nodes[0].RegisterSession(func(id uint64, ok bool) {
			if !ok {
				t.Error("session registration failed")
				return
			}
			sess = id
			txn := wire.Txn{
				Ops: []wire.TxnOp{{Op: wire.OpWrite, Key: 50, Val: []byte("mine"), Ephemeral: true}},
			}
			tc.nodes[0].Submit(txnReq(sess, 1, &txn))
		})
	})
	tc.sim.At(200*time.Millisecond, func() {
		if sess != 0 {
			tc.nodes[0].ExpireSession(sess, nil)
		}
	})
	tc.run(600 * time.Millisecond)

	tc.requireAgreement()
	if sess == 0 {
		t.Fatal("session never registered")
	}
	for i, st := range tc.stores {
		if st.Read(50) != nil {
			t.Fatalf("node %d: ephemeral key survived its session", i)
		}
		if st.OwnerOf(50) != 0 {
			t.Fatalf("node %d: owner binding survived", i)
		}
	}
	found := false
	for _, k := range deletions {
		if k == 50 {
			found = true
		}
	}
	if !found {
		t.Fatalf("expiry deletion not observed as an event: %v", deletions)
	}
}

// TestTxnDuplicateResolvesOriginalResult pins exactly-once semantics: a
// retried session transaction (same seq) does not re-apply, and its
// reply carries the original verdict.
func TestTxnDuplicateResolvesOriginalResult(t *testing.T) {
	tc := newTestCluster(t, clusterOpts{racks: 1, perRack: 3})
	var sess uint64
	tc.sim.At(time.Millisecond, func() {
		tc.nodes[0].RegisterSession(func(id uint64, ok bool) {
			if !ok {
				t.Error("session registration failed")
				return
			}
			sess = id
			txn := wire.Txn{
				Guards: []wire.TxnGuard{{Kind: wire.GuardValueEq, Key: 60, Val: nil}},
				Ops:    []wire.TxnOp{{Op: wire.OpWrite, Key: 60, Val: []byte("once")}},
			}
			tc.nodes[0].Submit(txnReq(sess, 1, &txn))
		})
	})
	// Retry the same (session, seq) later — must dedup, not re-run. By
	// then key 60 exists, so a re-evaluation would ABORT; a committed
	// reply proves the cached original answered.
	tc.sim.At(200*time.Millisecond, func() {
		if sess == 0 {
			return
		}
		txn := wire.Txn{
			Guards: []wire.TxnGuard{{Kind: wire.GuardValueEq, Key: 60, Val: nil}},
			Ops:    []wire.TxnOp{{Op: wire.OpWrite, Key: 60, Val: []byte("once")}},
		}
		tc.nodes[0].Submit(txnReq(sess, 1, &txn))
	})
	tc.run(600 * time.Millisecond)

	tc.requireAgreement()
	if sess == 0 {
		t.Fatal("session never registered")
	}
	if len(tc.replies[0]) != 2 {
		t.Fatalf("replies = %d, want 2 (original + retry)", len(tc.replies[0]))
	}
	for i, rec := range tc.replies[0] {
		res, err := wire.ParseTxnResult(rec.val)
		if err != nil || !res.Committed {
			t.Fatalf("reply %d = %+v (%v), want committed", i, res, err)
		}
	}
	for i, st := range tc.stores {
		if string(st.Read(60)) != "once" {
			t.Fatalf("node %d: key 60 = %q", i, st.Read(60))
		}
	}
}
