package core

import (
	"testing"
	"time"

	"canopus/internal/netsim"
	"canopus/internal/wire"
)

// Stall-detection tests (Config.StallThreshold): the liveness detector
// must flag a partitioned minority as degraded, clear itself on heal,
// and — crucially — change nothing about protocol behavior, so that a
// threshold of 0 (stock §6 semantics) and any positive threshold
// produce bit-identical histories.

// runStallScenario drives a 2-leaf cluster through a partition window
// [300ms, 2s) with traffic before, during and after, probing
// StallSuspected at the interesting instants. With two super-leaves no
// eviction quorum exists even when LeafTimeout is armed, so a partition
// stalls everyone — the scenario the detector is for.
func runStallScenario(t *testing.T, threshold time.Duration) *testCluster {
	t.Helper()
	tc := newTestCluster(t, clusterOpts{racks: 2, perRack: 2,
		cfg: Config{FetchTimeout: 50 * time.Millisecond, StallThreshold: threshold}})
	leafA := []wire.NodeID{0, 1}
	leafB := []wire.NodeID{2, 3}

	// Pre-partition traffic commits normally.
	tc.submitAt(time.Millisecond, 0, wr(1, 1, 10, 1))
	tc.submitAt(time.Millisecond, 2, wr(2, 1, 20, 1))
	tc.runner.InstallFaults(netsim.FaultPlan{
		Partitions: []netsim.PartitionFault{
			netsim.LeafPartition(300*time.Millisecond, 2*time.Second, leafB, leafA),
		},
	}, nil)
	// Traffic during the partition starts cycles that cannot commit.
	tc.submitAt(400*time.Millisecond, 0, wr(1, 2, 11, 2))
	tc.submitAt(400*time.Millisecond, 2, wr(2, 2, 21, 2))
	// Post-heal traffic proves recovery.
	tc.submitAt(2500*time.Millisecond, 0, wr(1, 3, 12, 3))

	probe := func(at time.Duration, want bool, label string) {
		tc.sim.At(at, func() {
			for _, n := range tc.nodes {
				if got := n.StallSuspected(); got != want {
					t.Errorf("%s: node %v StallSuspected=%v, want %v (committed=%d started=%d)",
						label, n.ID(), got, want, n.committed, n.started)
				}
			}
		})
	}
	if threshold > 0 {
		// 350ms: partitioned, but within threshold — not yet degraded.
		probe(350*time.Millisecond, false, "pre-threshold")
		// 1.5s: well past start(≈400ms)+threshold — every node degraded.
		probe(1500*time.Millisecond, true, "mid-partition")
		// 3.5s: healed and committing again — flag cleared everywhere.
		probe(3500*time.Millisecond, false, "post-heal")
	} else {
		// Stock semantics: silently stalled, never flagged.
		probe(1500*time.Millisecond, false, "mid-partition stock")
		probe(3500*time.Millisecond, false, "post-heal stock")
	}
	tc.run(4 * time.Second)
	tc.requireAgreement()
	for _, n := range tc.nodes {
		if n.Stalled() {
			t.Fatalf("node %v hard-stalled; detector must never halt the protocol", n.ID())
		}
		if n.Committed() < 3 {
			t.Fatalf("node %v committed only %d cycles after heal", n.ID(), n.Committed())
		}
	}
	return tc
}

func TestStallThresholdDetectsPartitionAndClearsOnHeal(t *testing.T) {
	tc := runStallScenario(t, 200*time.Millisecond)
	for _, n := range tc.nodes {
		if n.stats.stallsDetected.Load() == 0 {
			t.Errorf("node %v never tripped the detector", n.ID())
		}
	}
}

func TestStallThresholdZeroKeepsStockSemantics(t *testing.T) {
	stock := runStallScenario(t, 0)
	armed := runStallScenario(t, 200*time.Millisecond)
	// Zero behavior change: identical commit histories and stores, cycle
	// for cycle, byte for byte, with the detector on or off.
	for i := range stock.nodes {
		id := wire.NodeID(i)
		sc, ac := stock.commits[id], armed.commits[id]
		if len(sc) != len(ac) {
			t.Fatalf("node %d commit-count divergence: stock %d vs armed %d", i, len(sc), len(ac))
		}
		for k := range sc {
			if sc[k] != ac[k] {
				t.Fatalf("node %d commit order diverges at %d: %d vs %d", i, k, sc[k], ac[k])
			}
		}
		if stock.stores[i].LogDigest() != armed.stores[i].LogDigest() ||
			stock.stores[i].LogLen() != armed.stores[i].LogLen() {
			t.Fatalf("node %d store divergence between stock and armed runs", i)
		}
		if got := stock.nodes[i].stats.stallsDetected.Load(); got != 0 {
			t.Fatalf("node %d: detector tripped %d times with threshold 0", i, got)
		}
	}
}
