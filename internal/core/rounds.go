package core

import (
	"sort"
	"time"

	"canopus/internal/wire"
)

// DebugHook, when set, observes protocol events (test diagnostics only).
var DebugHook func(self wire.NodeID, event string, cycle uint64, detail string)

// onDeliver handles a reliable-broadcast delivery within the super-leaf:
// either a peer's round-1 proposal, or a representative's rebroadcast of
// a fetched vnode state.
func (n *Node) onDeliver(origin wire.NodeID, payload wire.Message) {
	if seal, ok := payload.(*wire.LeafSeal); ok {
		// An eviction round's seal (leaf.go): the shared delivery order
		// decides, leaf-wide, whether it lands before or after the state
		// it races.
		n.onLeafSeal(origin, seal)
		return
	}
	p, ok := payload.(*wire.Proposal)
	if !ok {
		return
	}
	if DebugHook != nil {
		DebugHook(n.cfg.Self, "deliver-from-"+origin.String(), p.Cycle, p.VNode)
	}
	if p.Cycle <= n.committed {
		return // stale delivery for an already-committed cycle
	}
	// Any message from a cycle beyond the newest started one prompts
	// starting cycles, in sequence, up to it (§4.4, §7.1).
	if p.Cycle > n.started {
		n.tryStartCycles(p.Cycle)
	}
	c := n.ensureCycle(p.Cycle)
	if p.VNode == "" {
		// A peer's round-1 origin proposal (vnode states always name
		// their vnode).
		if _, dup := c.r1[origin]; dup {
			return
		}
		if c.r1 == nil {
			c.r1 = make(map[wire.NodeID]*wire.Proposal)
		}
		c.r1[origin] = p
		// A join update observed in a peer's proposal arms the same
		// barrier as proposing one ourselves.
		n.noteUpdates(p.Cycle, p.Updates)
		n.advance(c)
		return
	}
	// Rebroadcast vnode state.
	if _, dup := c.child[p.VNode]; dup {
		return
	}
	if c.sealed[p.VNode] && !p.Resolve {
		return // slot sealed by an eviction round; only a Resolve fills it
	}
	if c.child == nil {
		c.child = make(map[string]*wire.Proposal)
	}
	c.child[p.VNode] = p
	if c.evict[p.VNode] != nil {
		n.checkEviction(c, p.VNode) // real state arrived: cancel the round
	}
	n.advance(c)
}

// onPeerFailed handles the failure cut for a super-leaf peer: no further
// broadcast deliveries from it will arrive, so any cycle waiting on its
// round-1 proposal stops waiting, and the membership change is queued to
// ride the next proposal (§4.6).
func (n *Node) onPeerFailed(peer wire.NodeID) {
	if peer == n.cfg.Self {
		// The super-leaf deposed this node's broadcast group: the rest
		// of the rack considers us dead. Crash-stop semantics forbid
		// continuing; halt until restarted through the join protocol.
		n.stalled = true
		n.halted.Store(true)
		n.stats.stalls.Add(1)
		n.FailLocalReads() // their awaited cycles will not commit here
		n.FailSessionWaiters()
		if n.cbs.OnStall != nil {
			n.cbs.OnStall()
		}
		return
	}
	if n.closedPeers[peer] {
		return
	}
	n.closedPeers[peer] = true
	n.pendingUpdates = append(n.pendingUpdates, wire.MemberUpdate{Node: peer, Leave: true})
	delete(n.sponsoring, peer)

	// Super-leaf health: reliable broadcast needs a majority of the
	// current membership (§4.3). Count configured members minus closed.
	live := 0
	for _, m := range n.bc.Members() {
		if !n.closedPeers[m] {
			live++
		}
	}
	if live < len(n.tree.SuperLeaf(n.sl).Members)/2+1 {
		n.stalled = true
		n.halted.Store(true)
		n.stats.stalls.Add(1)
		n.FailLocalReads() // their awaited cycles will not commit here
		n.FailSessionWaiters()
		if n.cbs.OnStall != nil {
			n.cbs.OnStall()
		}
		return
	}
	// Re-evaluate all in-flight cycles stuck in round 1.
	for k := n.committed + 1; k <= n.started; k++ {
		if c, ok := n.cycles[k]; ok && c.started && !c.complete {
			n.advance(c)
		}
	}
	// Representative takeover (RCanopus §3, restricted to crash-stop):
	// fetches the modulo rule assigned to the dead peer would otherwise
	// wait for the slow escalation path, because no survivor set a retry
	// deadline for them. Every surviving representative immediately
	// re-drives the in-flight cycles by issuing all their missing
	// fetches; the duplication is one round of redundant requests, the
	// cut guarantees every survivor eventually does the same.
	n.reassignFetches()
}

// reassignFetches force-issues every missing fetch of every in-flight
// cycle, provided this node is a representative of the effective (post
// failure-cut) membership.
func (n *Node) reassignFetches() {
	if !n.liveRepresentative() {
		return
	}
	for k := n.committed + 1; k <= n.started; k++ {
		if c, ok := n.cycles[k]; ok && c.started && !c.complete {
			n.issueFetchesWith(c, true)
		}
	}
}

// advance drives cycle c through as many rounds as its inputs allow,
// then commits if it is the next cycle in order.
func (n *Node) advance(c *cycle) {
	if !c.started || c.complete {
		return
	}
	progressed := false
	for {
		switch {
		case c.round <= 1:
			if !n.round1Complete(c) {
				goto out
			}
			n.finishRound1(c)
			progressed = true
		case c.round <= n.tree.Height:
			if !n.mergeRound(c) {
				goto out
			}
			progressed = true
		default:
			c.complete = true
			n.tryCommit()
			return
		}
	}
out:
	if progressed {
		n.tryCommit()
	}
}

// round1Complete reports whether proposals from every live super-leaf
// member (including self) have been delivered. Proposals already
// delivered from since-failed peers still count: the failure cut
// guarantees every survivor saw the same ones.
func (n *Node) round1Complete(c *cycle) bool {
	for _, m := range n.bc.Members() {
		if n.closedPeers[m] {
			continue
		}
		if _, ok := c.r1[m]; !ok {
			return false
		}
	}
	return true
}

// finishRound1 merges the round-1 proposals into the height-1 vnode
// state: order proposals by (proposal number, origin) and concatenate
// their request sets (§4.2).
func (n *Node) finishRound1(c *cycle) {
	props := make([]*wire.Proposal, 0, len(c.r1))
	for _, p := range c.r1 {
		props = append(props, p)
	}
	sort.Slice(props, func(i, j int) bool {
		if props[i].Num != props[j].Num {
			return props[i].Num < props[j].Num
		}
		return props[i].Origin < props[j].Origin
	})
	c.states[1] = n.mergeProposals(c.id, 1, n.tree.Ancestor(n.sl, 1), props)
	c.round = 2
	if DebugHook != nil {
		DebugHook(n.cfg.Self, "r1-done", c.id, "")
	}
	n.serveWaiting(c)
}

// mergeRound attempts to finish round c.round (≥2): the state of the
// height-r ancestor is the merge of its children's states, one of which
// (this node's own branch) was computed locally last round and the rest
// of which arrive by fetch + rebroadcast.
func (n *Node) mergeRound(c *cycle) bool {
	r := c.round
	target := n.tree.Ancestor(n.sl, r)
	ownBranch := n.tree.Ancestor(n.sl, r-1)
	children := n.tree.Children(target)
	props := make([]*wire.Proposal, 0, len(children))
	for _, u := range children {
		var p *wire.Proposal
		if u == ownBranch {
			p = c.states[r-1]
		} else {
			p = c.child[u]
		}
		if p == nil {
			return false
		}
		props = append(props, p)
	}
	sort.Slice(props, func(i, j int) bool {
		if props[i].Num != props[j].Num {
			return props[i].Num < props[j].Num
		}
		return props[i].VNode < props[j].VNode
	})
	c.states[r] = n.mergeProposals(c.id, uint8(r), target, props)
	c.round = r + 1
	if DebugHook != nil {
		DebugHook(n.cfg.Self, "round-done", c.id, target)
	}
	n.serveWaiting(c)
	return true
}

// mergeProposals builds the state of vnode target from its ordered
// children: concatenated batches, the largest proposal number, and the
// union of membership updates and lease requests. The result is a pure
// function of the inputs, so every emulator of target computes an
// identical message.
func (n *Node) mergeProposals(cyc uint64, round uint8, target string, ordered []*wire.Proposal) *wire.Proposal {
	out := &wire.Proposal{
		Cycle:  cyc,
		Round:  round,
		VNode:  target,
		Origin: wire.NoNode,
	}
	// The dedup maps are created lazily: most cycles carry no membership,
	// lease or session updates, and the maps would be three dead
	// allocations per merge on the commit hot path.
	var seenUpd map[wire.MemberUpdate]bool
	var seenLease map[wire.LeaseRequest]bool
	var seenSess map[wire.SessionUpdate]bool
	for _, p := range ordered {
		if p.Num > out.Num {
			out.Num = p.Num
		}
		out.Batches = append(out.Batches, p.Batches...)
		for _, u := range p.Updates {
			if !seenUpd[u] {
				if seenUpd == nil {
					seenUpd = make(map[wire.MemberUpdate]bool)
				}
				seenUpd[u] = true
				out.Updates = append(out.Updates, u)
			}
		}
		for _, l := range p.Leases {
			if !seenLease[l] {
				if seenLease == nil {
					seenLease = make(map[wire.LeaseRequest]bool)
				}
				seenLease[l] = true
				out.Leases = append(out.Leases, l)
			}
		}
		for _, s := range p.Sessions {
			if !seenSess[s] {
				if seenSess == nil {
					seenSess = make(map[wire.SessionUpdate]bool)
				}
				seenSess[s] = true
				out.Sessions = append(out.Sessions, s)
			}
		}
	}
	return out
}

// serveWaiting answers buffered proposal-requests that the just-computed
// states can now satisfy.
func (n *Node) serveWaiting(c *cycle) {
	if len(c.waiting) == 0 {
		return
	}
	rest := c.waiting[:0]
	for _, w := range c.waiting {
		if p := n.stateFor(c, w.vnode); p != nil {
			n.env.Send(w.from, p)
		} else {
			rest = append(rest, w)
		}
	}
	c.waiting = rest
}

// stateFor returns cycle c's computed state for vnode v, or nil.
func (n *Node) stateFor(c *cycle, v string) *wire.Proposal {
	vn := n.tree.VNode(v)
	if vn == nil || vn.Height >= len(c.states) {
		return nil
	}
	return c.states[vn.Height]
}

// issueFetches sends proposal-requests for every remote vnode state this
// node is responsible for fetching, across all rounds of cycle c.
// Responsibility follows the §4.5 modulo rule unless RedundantFetch is
// set; `force` (used by the retry path's escalation) overrides it.
func (n *Node) issueFetches(c *cycle) { n.issueFetchesWith(c, false) }

func (n *Node) issueFetchesWith(c *cycle, force bool) {
	// One membership scan per call, not per vnode: this runs for every
	// started cycle, and simulations run millions of them.
	reps := n.effectiveReps()
	isRep := false
	for _, r := range reps {
		if r == n.cfg.Self {
			isRep = true
		}
	}
	for r := 2; r <= n.tree.Height; r++ {
		target := n.tree.Ancestor(n.sl, r)
		ownBranch := n.tree.Ancestor(n.sl, r-1)
		for _, u := range n.tree.Children(target) {
			if u == ownBranch || c.child[u] != nil {
				continue
			}
			if !force && !n.cfg.RedundantFetch {
				if n.repFor(reps, u) != n.cfg.Self {
					continue
				}
			} else {
				// Redundant mode: every live representative fetches.
				if !isRep {
					continue
				}
			}
			n.sendFetch(c, u)
		}
	}
}

// effectiveReps returns the super-leaf's representative set computed
// over the effective membership: the committed view minus peers beyond
// the failure cut. The view still lists a freshly failed peer until its
// Leave update commits — which may never happen if the cycle carrying it
// is itself stuck behind the dead representative's fetches — so both
// fetch assignment and failure recovery must exclude cut peers, or new
// cycles keep assigning fetches to a corpse.
func (n *Node) effectiveReps() []wire.NodeID {
	reps := make([]wire.NodeID, 0, n.cfg.NumReps)
	for _, m := range n.view.Members(n.sl) {
		if n.closedPeers[m] {
			continue
		}
		reps = append(reps, m)
		if len(reps) == n.cfg.NumReps {
			break
		}
	}
	return reps
}

// repFor returns the representative responsible for fetching vnode u's
// state, via the §4.5 modulo rule over the given effective
// representative set (callers hoist effectiveReps out of their loops).
func (n *Node) repFor(reps []wire.NodeID, u string) wire.NodeID {
	if len(reps) == 0 {
		return wire.NoNode
	}
	return reps[n.tree.Ordinal(u)%len(reps)]
}

// liveRepresentative reports whether this node is an effective
// representative.
func (n *Node) liveRepresentative() bool {
	for _, r := range n.effectiveReps() {
		if r == n.cfg.Self {
			return true
		}
	}
	return false
}

// sendFetch asks one emulator of vnode u for its state in cycle c,
// rotating through the emulation table on retries (§4.6: "if the chosen
// emulator does not respond before a timeout ... picks another live
// emulator from the table").
func (n *Node) sendFetch(c *cycle, u string) {
	if DebugHook != nil {
		DebugHook(n.cfg.Self, "fetch", c.id, u)
	}
	ems := n.view.Emulators(u)
	if c.fetchAttempt == nil {
		c.fetchAttempt = make(map[string]int)
		c.fetchDeadline = make(map[string]time.Duration)
	}
	if len(ems) == 0 {
		// All descendants dead in view: no one to ask — the consensus
		// process stalls (§6) until eviction or substitution fills the
		// slot. Still arm the retry deadline: if the leaf is readmitted
		// before then, the next retry pass resumes fetching. Dropping
		// the deadline here would leave the slot unfetchable for the
		// cycle's whole life — a rejoined leaf would serve nothing and
		// be evicted right back out.
		c.fetchDeadline[u] = n.env.Now() + n.cfg.FetchTimeout
		return
	}
	attempt := c.fetchAttempt[u]
	c.fetchAttempt[u] = attempt + 1
	if attempt > 0 {
		n.stats.fetchRetries.Add(1)
	}
	// Spread first attempts across emulators so a popular vnode's load
	// is balanced, deterministically per (cycle, vnode, node).
	idx := (attempt + int(c.id) + int(n.cfg.Self)) % len(ems)
	target := ems[idx]
	vn := n.tree.VNode(u)
	n.env.Send(target, &wire.ProposalRequest{
		Cycle: c.id,
		Round: uint8(vn.Height + 1),
		VNode: u,
		From:  n.cfg.Self,
	})
	c.fetchDeadline[u] = n.env.Now() + n.cfg.FetchTimeout
}

// onProposalRequest answers (or buffers) another super-leaf's request
// for a vnode state. Requests for already-committed cycles — a lagging
// super-leaf catching up — are served from the retained state window.
func (n *Node) onProposalRequest(from wire.NodeID, m *wire.ProposalRequest) {
	if m.Cycle <= n.committed {
		if states := n.recent[m.Cycle]; states != nil {
			if vn := n.tree.VNode(m.VNode); vn != nil && vn.Height < len(states) && states[vn.Height] != nil {
				n.env.Send(from, states[vn.Height])
			}
		}
		// Beyond the retention window the requester's retries rotate to
		// another emulator; backpressure (MaxInFlight) bounds how far any
		// super-leaf can trail, so retention covers all reachable lags.
		return
	}
	if m.Cycle > n.started {
		n.tryStartCycles(m.Cycle)
	}
	c := n.ensureCycle(m.Cycle)
	if p := n.stateFor(c, m.VNode); p != nil {
		n.env.Send(from, p)
		return
	}
	c.waiting = append(c.waiting, pendingReq{from: from, vnode: m.VNode})
}

// onFetchResponse handles a directly addressed vnode state this node
// requested: record it and rebroadcast to super-leaf peers. The state is
// consumed on broadcast delivery so that every member — including this
// one — incorporates it at an agreed point.
func (n *Node) onFetchResponse(p *wire.Proposal) {
	if DebugHook != nil {
		DebugHook(n.cfg.Self, "fetch-resp", p.Cycle, p.VNode)
	}
	if p.VNode == "" || p.Cycle <= n.committed {
		return
	}
	if p.VNode == n.rootVNode() {
		// Root states are never fetched by the normal rounds — this is a
		// recovery catch-up response (see recovery.go).
		n.onRootState(p)
		return
	}
	if p.Cycle > n.started {
		n.tryStartCycles(p.Cycle)
	}
	c := n.ensureCycle(p.Cycle)
	if c.child[p.VNode] != nil || c.rebroadcast[p.VNode] {
		return // a redundant fetch (or an earlier response) beat us to it
	}
	if c.sealed[p.VNode] && !p.Resolve {
		return // slot sealed by an eviction round; only a Resolve passes
	}
	if c.rebroadcast == nil {
		c.rebroadcast = make(map[string]bool)
	}
	c.rebroadcast[p.VNode] = true
	delete(c.fetchDeadline, p.VNode)
	n.bc.Broadcast(p)
}

// retryFetches re-issues overdue fetches. If a cycle has been stuck far
// beyond the fetch timeout, every representative escalates to fetching
// all missing states regardless of the modulo assignment, covering the
// case where membership churn made representatives briefly disagree
// about responsibilities.
func (n *Node) retryFetches() {
	now := n.env.Now()
	liveRep := n.liveRepresentative() // once per pass, not per cycle
	for k := n.committed + 1; k <= n.started; k++ {
		c, ok := n.cycles[k]
		if !ok || !c.started || c.complete {
			continue
		}
		if n.recovered && k == n.committed+1 && c.round <= 1 &&
			now-c.startedAt > 2*n.cfg.FetchTimeout {
			// Root catch-up (recovery.go): round 1 cannot complete when
			// peers are already past this cycle — fetch the committed
			// root instead. Re-sends ride the normal deadline rotation.
			root := n.rootVNode()
			if dl, armed := c.fetchDeadline[root]; !armed || now >= dl {
				n.sendFetch(c, root)
			}
		}
		if c.round < 2 {
			continue
		}
		// Sorted iteration keeps retry order (and thus the whole
		// simulation) deterministic.
		var due []string
		for u, deadline := range c.fetchDeadline {
			if now >= deadline && c.child[u] == nil {
				due = append(due, u)
			}
		}
		sort.Strings(due)
		for _, u := range due {
			n.sendFetch(c, u)
		}
		if liveRep && now-c.startedAt > 4*n.cfg.FetchTimeout {
			n.issueFetchesWith(c, true)
		}
	}
}
