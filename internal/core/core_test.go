package core

import (
	"fmt"
	"testing"
	"time"

	"canopus/internal/kvstore"
	"canopus/internal/lot"
	"canopus/internal/netsim"
	"canopus/internal/wire"
)

// testCluster spins up a Canopus deployment on the simulator.
type testCluster struct {
	t      *testing.T
	sim    *netsim.Sim
	runner *netsim.Runner
	topo   *netsim.Topology
	tree   *lot.Tree
	nodes  []*Node
	stores []*kvstore.Store

	replies map[wire.NodeID][]replyRec
	commits map[wire.NodeID][]uint64
}

type replyRec struct {
	req wire.Request
	val []byte
	at  time.Duration
}

type clusterOpts struct {
	racks    int
	perRack  int
	fanout   int
	cfg      Config
	seed     int64
	noClient bool
	// onEvicted, when set, becomes each node's Callbacks.OnEvicted (the
	// eviction tests restart the node through the join protocol from it).
	onEvicted func(tc *testCluster, id wire.NodeID)
}

func newTestCluster(t *testing.T, o clusterOpts) *testCluster {
	t.Helper()
	if o.seed == 0 {
		o.seed = 42
	}
	sim := netsim.NewSim()
	topo := netsim.SingleDC(o.racks, o.perRack, netsim.Params{})
	runner := netsim.NewRunner(sim, topo, netsim.DefaultCosts(), o.seed)

	sls := make([][]wire.NodeID, o.racks)
	for r := 0; r < o.racks; r++ {
		sls[r] = topo.RackMembers(r)
	}
	tree, err := lot.New(lot.Config{SuperLeaves: sls, Fanout: o.fanout})
	if err != nil {
		t.Fatalf("lot.New: %v", err)
	}

	tc := &testCluster{
		t: t, sim: sim, runner: runner, topo: topo, tree: tree,
		replies: make(map[wire.NodeID][]replyRec),
		commits: make(map[wire.NodeID][]uint64),
	}
	for i := 0; i < topo.NumNodes(); i++ {
		id := wire.NodeID(i)
		cfg := o.cfg
		cfg.Tree = tree
		cfg.Self = id
		st := kvstore.NewLogged()
		cbs := Callbacks{
			OnReply: func(req *wire.Request, val []byte) {
				tc.replies[id] = append(tc.replies[id], replyRec{req: *req, val: val, at: sim.Now()})
			},
			OnCommit: func(cycle uint64, order []*wire.Batch) {
				tc.commits[id] = append(tc.commits[id], cycle)
			},
		}
		if o.onEvicted != nil {
			cbs.OnEvicted = func() { o.onEvicted(tc, id) }
		}
		node := NewNode(cfg, st, cbs)
		tc.nodes = append(tc.nodes, node)
		tc.stores = append(tc.stores, st)
		runner.Register(id, node)
	}
	return tc
}

// submitAt schedules a client request at a node at a virtual time.
func (tc *testCluster) submitAt(at time.Duration, node wire.NodeID, req wire.Request) {
	tc.sim.At(at, func() { tc.nodes[node].Submit(req) })
}

func (tc *testCluster) run(until time.Duration) { tc.sim.RunUntil(until) }

// requireAgreement asserts every pair of live replicas applied identical
// write sequences.
func (tc *testCluster) requireAgreement() {
	tc.t.Helper()
	var refDigest, refLen uint64
	ref := -1
	for i, st := range tc.stores {
		if !tc.runner.Alive(wire.NodeID(i)) {
			continue
		}
		if ref < 0 {
			ref, refDigest, refLen = i, st.LogDigest(), st.LogLen()
			continue
		}
		if st.LogLen() != refLen || st.LogDigest() != refDigest {
			tc.t.Fatalf("replica divergence: node %d (len %d digest %x) vs node %d (len %d digest %x)",
				i, st.LogLen(), st.LogDigest(), ref, refLen, refDigest)
		}
	}
}

func wr(client, seq, key, val uint64) wire.Request {
	v := make([]byte, 8)
	for i := 0; i < 8; i++ {
		v[i] = byte(val >> (8 * i))
	}
	return wire.Request{Client: client, Seq: seq, Op: wire.OpWrite, Key: key, Val: v}
}

func rd(client, seq, key uint64) wire.Request {
	return wire.Request{Client: client, Seq: seq, Op: wire.OpRead, Key: key}
}

func TestSingleSuperLeafCommit(t *testing.T) {
	tc := newTestCluster(t, clusterOpts{racks: 1, perRack: 3})
	tc.submitAt(time.Millisecond, 0, wr(1, 1, 100, 7))
	tc.submitAt(time.Millisecond, 1, wr(2, 1, 200, 8))
	tc.run(500 * time.Millisecond)

	for i, st := range tc.stores {
		if st.LogLen() != 2 {
			t.Fatalf("node %d applied %d writes, want 2", i, st.LogLen())
		}
	}
	tc.requireAgreement()
	if len(tc.replies[0]) != 1 {
		t.Fatalf("node 0 replies = %d, want 1", len(tc.replies[0]))
	}
}

func TestTwoSuperLeavesTotalOrder(t *testing.T) {
	// The Figure 2 configuration: 6 nodes in 2 super-leaves, height 2.
	tc := newTestCluster(t, clusterOpts{racks: 2, perRack: 3})
	if tc.tree.Height != 2 {
		t.Fatalf("height = %d, want 2", tc.tree.Height)
	}
	// Concurrent writes to distinct keys at several nodes.
	for i := 0; i < 6; i++ {
		tc.submitAt(time.Millisecond, wire.NodeID(i), wr(uint64(i+1), 1, uint64(100+i), uint64(i)))
	}
	tc.run(time.Second)
	for i, st := range tc.stores {
		if st.LogLen() != 6 {
			t.Fatalf("node %d applied %d writes, want 6", i, st.LogLen())
		}
	}
	tc.requireAgreement()
}

func TestThreeRacksNineNodes(t *testing.T) {
	tc := newTestCluster(t, clusterOpts{racks: 3, perRack: 3})
	for round := 0; round < 5; round++ {
		for i := 0; i < 9; i++ {
			tc.submitAt(time.Duration(round+1)*10*time.Millisecond, wire.NodeID(i),
				wr(uint64(i+1), uint64(round+1), uint64(i*10+round), uint64(round)))
		}
	}
	tc.run(2 * time.Second)
	for i, st := range tc.stores {
		if st.LogLen() != 45 {
			t.Fatalf("node %d applied %d writes, want 45", i, st.LogLen())
		}
	}
	tc.requireAgreement()
}

func TestReadObservesPriorWriteSameNode(t *testing.T) {
	tc := newTestCluster(t, clusterOpts{racks: 2, perRack: 3})
	tc.submitAt(time.Millisecond, 0, wr(1, 1, 55, 99))
	tc.submitAt(2*time.Millisecond, 0, rd(1, 2, 55))
	tc.run(time.Second)

	reps := tc.replies[0]
	if len(reps) != 2 {
		t.Fatalf("replies = %d, want 2", len(reps))
	}
	// FIFO: write reply before read reply.
	if reps[0].req.Op != wire.OpWrite || reps[1].req.Op != wire.OpRead {
		t.Fatalf("reply order violated FIFO: %v then %v", reps[0].req.Op, reps[1].req.Op)
	}
	if got := reps[1].val; len(got) != 8 || got[0] != 99 {
		t.Fatalf("read returned %v, want value 99", got)
	}
}

func TestReadDoesNotSeeOwnLaterWrite(t *testing.T) {
	// A read submitted before a write by the same client must not
	// observe that write, even when both land in the same request set.
	tc := newTestCluster(t, clusterOpts{racks: 2, perRack: 3})
	tc.submitAt(time.Millisecond, 0, wr(1, 1, 55, 1))
	// Later: read then write in quick succession (same cycle's set).
	tc.submitAt(50*time.Millisecond, 0, rd(1, 2, 55))
	tc.submitAt(50*time.Millisecond+time.Microsecond, 0, wr(1, 3, 55, 2))
	tc.run(time.Second)

	reps := tc.replies[0]
	if len(reps) != 3 {
		t.Fatalf("replies = %d, want 3", len(reps))
	}
	readVal := reps[1].val
	if reps[1].req.Op != wire.OpRead {
		t.Fatalf("second reply is %v, want read", reps[1].req.Op)
	}
	if len(readVal) != 8 || readVal[0] != 1 {
		t.Fatalf("read saw %v, want the first write (1), not the later one", readVal)
	}
	tc.requireAgreement()
}

func TestSelfSynchronization(t *testing.T) {
	// Only one node receives a request; all others must be dragged into
	// the cycle by proposals and proposal-requests (§4.4).
	tc := newTestCluster(t, clusterOpts{racks: 3, perRack: 3})
	tc.submitAt(time.Millisecond, 4, wr(9, 1, 1, 1))
	tc.run(time.Second)
	for i := range tc.nodes {
		if tc.nodes[i].Committed() == 0 {
			t.Fatalf("node %d never committed a cycle", i)
		}
	}
	tc.requireAgreement()
}

func TestFIFOPerClientAcrossCycles(t *testing.T) {
	tc := newTestCluster(t, clusterOpts{racks: 2, perRack: 3})
	const n = 20
	for s := 1; s <= n; s++ {
		tc.submitAt(time.Duration(s)*3*time.Millisecond, 2, wr(7, uint64(s), 42, uint64(s)))
	}
	tc.run(2 * time.Second)
	reps := tc.replies[2]
	if len(reps) != n {
		t.Fatalf("replies = %d, want %d", len(reps), n)
	}
	for i := 1; i < len(reps); i++ {
		if reps[i].req.Seq <= reps[i-1].req.Seq {
			t.Fatalf("FIFO violated at reply %d: seq %d after %d", i, reps[i].req.Seq, reps[i-1].req.Seq)
		}
	}
	// Final value must be the last write.
	for i, st := range tc.stores {
		v := st.Read(42)
		if len(v) != 8 || v[0] != n {
			t.Fatalf("node %d: key 42 = %v, want %d", i, v, n)
		}
	}
}

func TestPipelinedThroughput(t *testing.T) {
	cfg := Config{CycleInterval: 5 * time.Millisecond, MaxInFlight: 16}
	tc := newTestCluster(t, clusterOpts{racks: 2, perRack: 3, cfg: cfg})
	var seq uint64
	for ms := 1; ms <= 100; ms++ {
		for i := 0; i < 6; i++ {
			seq++
			tc.submitAt(time.Duration(ms)*time.Millisecond, wire.NodeID(i),
				wr(uint64(100+i), seq, uint64(seq%64), seq))
		}
	}
	tc.run(3 * time.Second)
	total := uint64(600)
	for i, st := range tc.stores {
		if st.LogLen() != total {
			t.Fatalf("node %d applied %d writes, want %d", i, st.LogLen(), total)
		}
	}
	tc.requireAgreement()
}

func TestDeterministicReplay(t *testing.T) {
	run := func() (uint64, uint64) {
		tc := newTestCluster(t, clusterOpts{racks: 2, perRack: 3, seed: 7})
		for i := 0; i < 6; i++ {
			tc.submitAt(time.Millisecond, wire.NodeID(i), wr(uint64(i+1), 1, uint64(i), uint64(i)))
		}
		tc.run(time.Second)
		return tc.stores[0].LogDigest(), tc.sim.Steps()
	}
	d1, s1 := run()
	d2, s2 := run()
	if d1 != d2 || s1 != s2 {
		t.Fatalf("non-deterministic: digest %x/%x steps %d/%d", d1, d2, s1, s2)
	}
}

func TestHeightThreeTree(t *testing.T) {
	// 4 super-leaves with fanout 2 -> height 3: exercises rounds beyond 2.
	tc := newTestCluster(t, clusterOpts{racks: 4, perRack: 3, fanout: 2})
	if tc.tree.Height != 3 {
		t.Fatalf("height = %d, want 3", tc.tree.Height)
	}
	for i := 0; i < 12; i++ {
		tc.submitAt(time.Millisecond, wire.NodeID(i), wr(uint64(i+1), 1, uint64(i), uint64(i)))
	}
	tc.run(2 * time.Second)
	for i, st := range tc.stores {
		if st.LogLen() != 12 {
			t.Fatalf("node %d applied %d writes, want 12", i, st.LogLen())
		}
	}
	tc.requireAgreement()
}

func TestNodeCrashMembershipUpdate(t *testing.T) {
	tc := newTestCluster(t, clusterOpts{racks: 2, perRack: 3})
	tc.submitAt(time.Millisecond, 0, wr(1, 1, 1, 1))
	// Crash node 5 (super-leaf 1) after the first cycle settles.
	tc.sim.At(300*time.Millisecond, func() { tc.runner.Crash(5) })
	// Traffic keeps flowing afterwards.
	for s := 1; s <= 10; s++ {
		tc.submitAt(time.Duration(600+s*10)*time.Millisecond, 1, wr(2, uint64(s), uint64(s), uint64(s)))
	}
	tc.run(3 * time.Second)
	// All survivors agree and committed the post-crash writes.
	tc.requireAgreement()
	if tc.stores[0].LogLen() != 11 {
		t.Fatalf("applied %d writes, want 11", tc.stores[0].LogLen())
	}
	// The survivors' views exclude node 5.
	for i := 0; i < 5; i++ {
		if tc.nodes[i].View().Alive(5) {
			t.Fatalf("node %d still considers node 5 alive", i)
		}
	}
}

func TestSuperLeafFailureStalls(t *testing.T) {
	tc := newTestCluster(t, clusterOpts{racks: 2, perRack: 3})
	tc.submitAt(time.Millisecond, 0, wr(1, 1, 1, 1))
	tc.run(300 * time.Millisecond)
	// Kill a majority of super-leaf 1 (nodes 3,4 of 3..5).
	tc.runner.Crash(3)
	tc.runner.Crash(4)
	committedBefore := tc.nodes[0].Committed()
	// New work cannot commit: super-leaf 1's state is unreachable.
	tc.submitAt(500*time.Millisecond, 0, wr(1, 2, 2, 2))
	tc.run(3 * time.Second)
	if got := tc.nodes[0].Committed(); got > committedBefore+1 {
		// One in-flight cycle may complete with pre-crash state; beyond
		// that the process must stall (§6 liveness).
		t.Fatalf("committed advanced to %d despite super-leaf failure (was %d)", got, committedBefore)
	}
	if tc.stores[0].LogLen() >= 2 {
		t.Fatalf("post-failure write committed; stall semantics violated")
	}
}

func TestCrashedNodeRejoins(t *testing.T) {
	tc := newTestCluster(t, clusterOpts{racks: 2, perRack: 3})
	tc.submitAt(time.Millisecond, 0, wr(1, 1, 10, 1))
	tc.sim.At(300*time.Millisecond, func() { tc.runner.Crash(5) })
	tc.submitAt(600*time.Millisecond, 0, wr(1, 2, 11, 2))
	// Restart node 5 with a joiner at 1.5s.
	tc.sim.At(1500*time.Millisecond, func() {
		cfg := Config{Tree: tc.tree, Self: 5}
		st := kvstore.NewLogged()
		tc.stores[5] = st
		joiner := NewJoiner(cfg, st, Callbacks{})
		tc.nodes[5] = joiner
		tc.runner.Restart(5, joiner)
	})
	// Post-rejoin traffic must reach node 5 too.
	for s := 3; s <= 8; s++ {
		tc.submitAt(time.Duration(2500+s*20)*time.Millisecond, 0, wr(1, uint64(s), uint64(10+s), uint64(s)))
	}
	tc.run(6 * time.Second)

	if tc.nodes[5].Stalled() {
		t.Fatal("rejoined node is stalled")
	}
	if tc.nodes[5].Committed() == 0 {
		t.Fatal("rejoined node never committed")
	}
	// State equality (the joiner's log digest differs — it snapshotted —
	// so compare full state contents).
	want := tc.stores[0].StateDigest()
	if got := tc.stores[5].StateDigest(); got != want {
		t.Fatalf("rejoined state digest %x != %x", got, want)
	}
}

func TestSwitchBroadcastVariant(t *testing.T) {
	cfg := Config{Broadcast: BroadcastSwitch}
	tc := newTestCluster(t, clusterOpts{racks: 2, perRack: 3, cfg: cfg})
	for i := 0; i < 6; i++ {
		tc.submitAt(time.Millisecond, wire.NodeID(i), wr(uint64(i+1), 1, uint64(i), uint64(i)))
	}
	tc.run(time.Second)
	for i, st := range tc.stores {
		if st.LogLen() != 6 {
			t.Fatalf("node %d applied %d writes, want 6", i, st.LogLen())
		}
	}
	tc.requireAgreement()
}

func TestCommitsArriveInCycleOrder(t *testing.T) {
	cfg := Config{CycleInterval: 5 * time.Millisecond, MaxInFlight: 8}
	tc := newTestCluster(t, clusterOpts{racks: 2, perRack: 3, cfg: cfg})
	for s := 1; s <= 50; s++ {
		tc.submitAt(time.Duration(s)*2*time.Millisecond, 0, wr(1, uint64(s), uint64(s), uint64(s)))
	}
	tc.run(2 * time.Second)
	for id, cycles := range tc.commits {
		for i := 1; i < len(cycles); i++ {
			if cycles[i] != cycles[i-1]+1 {
				t.Fatalf("node %v commit order broken: %d after %d", id, cycles[i], cycles[i-1])
			}
		}
	}
}

func ExampleNode_cycle() {
	// The Figure 2 walkthrough: six nodes A..F in two super-leaves.
	sim := netsim.NewSim()
	topo := netsim.SingleDC(2, 3, netsim.Params{})
	runner := netsim.NewRunner(sim, topo, netsim.DefaultCosts(), 1)
	tree, _ := lot.New(lot.Config{SuperLeaves: [][]wire.NodeID{
		topo.RackMembers(0), topo.RackMembers(1),
	}})
	nodes := make([]*Node, 6)
	for i := 0; i < 6; i++ {
		nodes[i] = NewNode(Config{Tree: tree, Self: wire.NodeID(i)}, kvstore.New(), Callbacks{})
		runner.Register(wire.NodeID(i), nodes[i])
	}
	// Nodes A (0) and B (1) receive requests R_A and R_B.
	sim.At(time.Millisecond, func() {
		nodes[0].Submit(wire.Request{Client: 1, Seq: 1, Op: wire.OpWrite, Key: 1, Val: []byte{1}})
		nodes[1].Submit(wire.Request{Client: 2, Seq: 1, Op: wire.OpWrite, Key: 2, Val: []byte{2}})
	})
	sim.RunUntil(time.Second)
	fmt.Printf("all nodes committed cycle %d\n", nodes[5].Committed())
	// Output: all nodes committed cycle 1
}
