package core

import (
	"sync"

	"canopus/internal/wire"
)

// Commit pipeline (the parallel path behind Config.ApplyWorkers).
//
// A committed cycle splits into two stages. The serial order-resolution
// stage runs inside the machine turn (commit.go): session
// classification, membership, leases and deferred-read collection — all
// the protocol state that must evolve in lock-step on every replica. It
// produces an applyPlan: the cycle's state-machine operations in total
// order plus the node's own completion records. The apply stage executes
// the plan: bulk-apply the writes, run this node's reads at their
// recorded positions, then materialize replies.
//
// With ApplyWorkers == 0 the plan executes inline, still inside the
// machine turn, which is byte-identical to the historical single-stage
// commit — the mode virtual-time simulation requires. With ApplyWorkers
// >= 1 the plan is handed to a per-node executor goroutine that applies
// cycles strictly in order off the machine lock, fanning each cycle's
// operations across workers by state-machine shard (a ShardedMachine
// partitions keys; writes within one shard keep their total order, and a
// read's result depends only on prior writes to its own shard, so §5
// read-at-position semantics are preserved). The consensus turn for
// cycle K+1 overlaps cycle K's apply; the ordered watermark
// (Node.committed, protocol-internal) and the applied watermark
// (Node.applied, what Committed() and ReadLocal observe) make the
// overlap explicit.

// ShardedMachine is optionally implemented by StateMachines whose state
// partitions by key (kvstore.Store does). Operations on distinct shards
// must be safe to run concurrently; the executor never runs two
// operations of one shard at the same time, and it never overlaps two
// cycles' apply stages.
type ShardedMachine interface {
	StateMachine
	// NumShards returns the number of key partitions.
	NumShards() int
	// ShardOf returns the partition owning key; it must be a pure
	// function of the key.
	ShardOf(key uint64) int
}

// planOp is one state-machine operation of a committed cycle: a write to
// apply, or (comp >= 0) one of this node's own reads, whose result lands
// in the plan's completion value slot comp.
type planOp struct {
	req  *wire.Request
	comp int32 // completion-value index for reads/txns; -1 for writes
	// dup marks a duplicate transaction whose result resolves at apply
	// time from the session table (the original applied in an earlier
	// plan, and plans apply strictly in cycle order).
	dup bool
}

// applyPlan is one committed cycle's apply-stage work order, produced by
// the serial order-resolution stage.
type applyPlan struct {
	cycle uint64
	// ops is the cycle's state-machine work in total order.
	ops []planOp
	// comps/vals are the node's own completion records in client arrival
	// order: the requests this node must answer and their reply values
	// (filled at resolve time for duplicate-cached mutations, by the
	// apply stage for reads, nil for plain write acks).
	comps []wire.Request
	vals  [][]byte
	// set is the cycle's own request set, recycled once the plan is done
	// (its reqs back the ops/comps entries until then).
	set *ownSet
	// root is the cycle's committed root proposal, set only when the node
	// has a Durability hook: the executor logs it before releasing the
	// plan's replies. Roots are retained by Node.recent and never pooled,
	// so the pointer stays valid for the plan's lifetime.
	root *wire.Proposal

	// hasTxn marks a plan carrying transaction ops: it applies serially
	// (guards read cross-shard state, so no worker fan-out).
	hasTxn bool
	// snapshot marks a synthetic join-install plan: each op's Seq/Client
	// carry the key's last-modified cycle and owner session, installed
	// via ApplyWriteAt, and the plan emits no events.
	snapshot bool
	// expired are the sessions this cycle's boundary expired; the apply
	// tail deletes their ephemeral keys (filling expiredKeys).
	expired     []uint64
	expiredKeys []uint64
	// outcomes records each non-duplicate transaction's verdict in apply
	// order; committed ops' events sit in txnEvents[start:start+count]
	// with values copied into evArena (decode scratch does not survive).
	outcomes  []txnOutcome
	txnEvents []wire.Event
	evArena   []byte
	// events is the cycle's key-change event list in committed total
	// order, built by buildPlanEvents just before delivery.
	events []wire.Event
}

// txnOutcome is one evaluated transaction's verdict within a plan.
type txnOutcome struct {
	committed    bool
	start, count int32 // committed ops' slice of plan.txnEvents
}

// fanoutThreshold is the minimum op count worth spreading across
// workers; smaller cycles apply on the executor goroutine directly.
const fanoutThreshold = 64

// executor is the per-node background apply stage: one goroutine
// consuming plans and committed-state read requests in order, plus a
// pool of apply workers.
type executor struct {
	n       *Node
	sm      StateMachine
	shard   ShardedMachine // nil when sm does not partition
	workers int

	mu     sync.Mutex
	cond   *sync.Cond
	queue  []execCmd
	closed bool

	parked []localRead // committed-state reads awaiting their min cycle

	// durPending are applied-but-unsynced plans: their cycles' records
	// sit in the WAL buffer, and their replies are withheld until the
	// batch's single Sync — the group commit. Only used with a
	// Durability hook.
	durPending []*applyPlan

	cur  *applyPlan      // plan being fanned out (set before waking workers)
	wake []chan struct{} // one doorbell per extra worker
	wg   sync.WaitGroup  // per-plan worker barrier

	stopped chan struct{}
}

// execCmd kinds.
const (
	cmdPlan uint8 = iota
	cmdRead
	cmdFailReads
	cmdSync
	cmdCall
)

type execCmd struct {
	kind uint8
	plan *applyPlan
	read localRead
	sync chan struct{}
	fn   func()
}

// newExecutor starts the apply stage with the given worker count
// (already validated >= 1).
func newExecutor(n *Node, workers int) *executor {
	e := &executor{n: n, sm: n.sm, workers: workers, stopped: make(chan struct{})}
	e.cond = sync.NewCond(&e.mu)
	if sh, ok := n.sm.(ShardedMachine); ok && sh.NumShards() > 1 {
		e.shard = sh
		if e.workers > sh.NumShards() {
			e.workers = sh.NumShards()
		}
	} else {
		e.workers = 1
	}
	for w := 1; w < e.workers; w++ {
		ch := make(chan struct{}, 1)
		e.wake = append(e.wake, ch)
		go e.worker(w, ch)
	}
	go e.run()
	return e
}

// enqueue appends one command and rings the executor. Returns false when
// the executor is closed (the caller owns the command's failure path).
func (e *executor) enqueue(c execCmd) bool {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return false
	}
	e.queue = append(e.queue, c)
	e.mu.Unlock()
	e.cond.Signal()
	return true
}

// submitPlan hands one committed cycle to the apply stage. Called from
// the machine turn; plans arrive strictly in cycle order.
func (e *executor) submitPlan(p *applyPlan) {
	if !e.enqueue(execCmd{kind: cmdPlan, plan: p}) {
		// Shutdown race: the node is being torn down; the plan's replies
		// are owed nothing (the serving process is gone from the client's
		// point of view), but protocol state must not silently diverge —
		// apply synchronously so a later snapshot still sees the writes.
		e.n.execPlanOps(p)
	}
}

// submitRead routes one committed-state read through the apply stage so
// it serializes with in-flight applies.
func (e *executor) submitRead(lr localRead) {
	if !e.enqueue(execCmd{kind: cmdRead, read: lr}) {
		lr.fn(nil, e.n.applied.Load(), false)
	}
}

// failParked abandons every parked committed-state read (and any read
// still queued behind this command once it is reached).
func (e *executor) failParked() {
	if !e.enqueue(execCmd{kind: cmdFailReads}) {
		return
	}
}

// drain blocks until every command enqueued before it has been
// processed. The machine turn uses it to serialize direct state-machine
// access (join snapshots) with the apply stage.
func (e *executor) drain() {
	ch := make(chan struct{})
	if !e.enqueue(execCmd{kind: cmdSync, sync: ch}) {
		return
	}
	<-ch
}

// close stops the executor: remaining plans are applied (state must not
// diverge), remaining and parked reads fail, workers exit. Blocks until
// the executor goroutine has stopped.
func (e *executor) close() {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		<-e.stopped
		return
	}
	e.closed = true
	e.mu.Unlock()
	e.cond.Signal()
	<-e.stopped
}

// run is the executor goroutine: commands in arrival order, one at a
// time.
func (e *executor) run() {
	defer close(e.stopped)
	for {
		e.mu.Lock()
		for len(e.queue) == 0 && !e.closed {
			e.cond.Wait()
		}
		queue := e.queue
		e.queue = nil
		closed := e.closed
		e.mu.Unlock()

		for _, c := range queue {
			e.handle(c)
		}
		e.flushDurable()
		if closed {
			e.mu.Lock()
			rest := e.queue
			e.queue = nil
			e.mu.Unlock()
			for _, c := range rest {
				e.handle(c)
			}
			e.flushDurable()
			for _, lr := range e.parked {
				lr.fn(nil, e.n.applied.Load(), false)
			}
			e.parked = nil
			for _, ch := range e.wake {
				close(ch)
			}
			return
		}
	}
}

func (e *executor) handle(c execCmd) {
	switch c.kind {
	case cmdPlan:
		e.apply(c.plan)
		e.n.applied.Store(c.plan.cycle)
		if e.n.appendDurable(c.plan.cycle, c.plan.root) {
			// Group commit: the record is buffered; replies wait for the
			// batch's Sync. Parked reads do not — they observe the applied
			// watermark, which durability never gates.
			e.durPending = append(e.durPending, c.plan)
			e.serveParked()
			return
		}
		e.n.deliverPlan(c.plan)
		e.serveParked()
		e.n.freePlan(c.plan)
	case cmdRead:
		applied := e.n.applied.Load()
		if applied >= c.read.minCycle {
			c.read.fn(e.sm.Read(c.read.key), applied, true)
			return
		}
		e.parked = append(e.parked, c.read)
	case cmdFailReads:
		applied := e.n.applied.Load()
		for _, lr := range e.parked {
			lr.fn(nil, applied, false)
		}
		e.parked = e.parked[:0]
	case cmdSync:
		close(c.sync)
	case cmdCall:
		c.fn()
		close(c.sync)
	}
}

// call runs fn on the executor goroutine, after every previously queued
// command, and blocks until it returns. Falls back to running fn inline
// when the executor is closed (nothing applies concurrently then).
func (e *executor) call(fn func()) {
	ch := make(chan struct{})
	if !e.enqueue(execCmd{kind: cmdCall, fn: fn, sync: ch}) {
		<-e.stopped
		fn()
		return
	}
	<-ch
}

// flushDurable ends one group commit: a single Sync covers every plan
// appended since the last flush, then their replies go out in cycle
// order. Called at the end of each drained command batch, so the fsync
// cadence self-clocks — a slow disk makes batches (and the cycles per
// fsync) larger instead of queueing fsyncs.
func (e *executor) flushDurable() {
	if len(e.durPending) == 0 {
		return
	}
	e.n.syncDurable()
	for _, p := range e.durPending {
		e.n.deliverPlan(p)
		e.n.freePlan(p)
	}
	clear(e.durPending)
	e.durPending = e.durPending[:0]
}

// serveParked completes parked reads whose minimum cycle has applied.
func (e *executor) serveParked() {
	if len(e.parked) == 0 {
		return
	}
	applied := e.n.applied.Load()
	kept := e.parked[:0]
	for _, lr := range e.parked {
		if applied >= lr.minCycle {
			lr.fn(e.sm.Read(lr.key), applied, true)
		} else {
			kept = append(kept, lr)
		}
	}
	e.parked = kept
}

// apply executes one plan's operations, fanning across workers by shard
// when the cycle is large enough to pay for the barrier. Transaction
// and snapshot-install plans always apply serially: guards read
// cross-shard state, and installs carry per-op metadata.
func (e *executor) apply(p *applyPlan) {
	if e.workers <= 1 || e.shard == nil || p.hasTxn || p.snapshot || len(p.ops) < fanoutThreshold {
		e.n.applyShardSlice(p, nil, 0, 0)
	} else {
		e.cur = p
		e.wg.Add(e.workers - 1)
		for _, ch := range e.wake {
			ch <- struct{}{}
		}
		e.n.applyShardSlice(p, e.shard, e.workers, 0)
		e.wg.Wait()
		e.cur = nil
	}
	e.n.applyExpiry(p)
}

// worker is one extra apply worker: it owns the shards with
// ShardOf(key) % workers == w.
func (e *executor) worker(w int, wake chan struct{}) {
	for range wake {
		e.n.applyShardSlice(e.cur, e.shard, e.workers, w)
		e.wg.Done()
	}
}

// applyShardSlice applies the plan operations owned by worker w (all of
// them when workers == 0): writes mutate the store, reads record their
// value into the plan's completion slot, transactions evaluate their
// guards against applied state (serial plans only — see apply). In-shard
// order follows the committed total order because ops is walked front to
// back.
func (n *Node) applyShardSlice(p *applyPlan, shard ShardedMachine, workers, w int) {
	for i := range p.ops {
		op := &p.ops[i]
		if op.req.Op == wire.OpTxn {
			// Only reached with workers == 0 (txn plans force serial).
			n.applyTxnOp(p, op)
			continue
		}
		if workers > 0 && shard.ShardOf(op.req.Key)%workers != w {
			continue
		}
		if op.comp >= 0 {
			p.vals[op.comp] = n.sm.Read(op.req.Key)
		} else if n.tm != nil {
			if p.snapshot {
				n.tm.ApplyWriteAt(op.req, op.req.Seq, op.req.Client)
			} else {
				n.tm.ApplyWriteAt(op.req, p.cycle, 0)
			}
		} else {
			n.sm.ApplyWrite(op.req)
		}
	}
}
