package core

import (
	"time"

	"canopus/internal/engine"
	"canopus/internal/lot"
	"canopus/internal/wire"
)

// Join protocol (§3 assumption 6: "nodes fail by crashing and require a
// failed node to rejoin the system using a join protocol", modeled on
// Raft's approach as the paper suggests).
//
// Joiner J:  send JoinRequest to each configured super-leaf peer in turn
//            until a JoinReply arrives, then install the sponsor's state
//            and participate from the reply's StartCycle + 1.
//
// Sponsor S: queue a membership update (a Leave, if J's previous
//            incarnation is still in the view, then a Join); the update
//            rides S's next round-1 proposal (cycle X). Every member
//            applies it when X commits — simultaneously arming a
//            pipeline barrier so no member evaluates cycle X+1's round-1
//            completion with a stale membership. At commit S sends
//            JoinReply{StartCycle: X} with a state snapshot.

const joinRetryInterval = 200 * time.Millisecond

// sendJoinRequest tries the next configured super-leaf peer.
func (n *Node) sendJoinRequest() {
	peers := n.tree.SuperLeaf(n.sl).Members
	// Rotate deterministically through peers other than self.
	var targets []wire.NodeID
	for _, p := range peers {
		if p != n.cfg.Self {
			targets = append(targets, p)
		}
	}
	if len(targets) == 0 {
		return // single-node super-leaf: nothing to rejoin
	}
	target := targets[n.joinSeq%len(targets)]
	n.joinSeq++
	n.env.Send(target, &wire.JoinRequest{From: n.cfg.Self})
	n.env.After(joinRetryInterval, engine.Tag(tagJoinRetry, 0))
}

// onJoinRequest is the sponsor side.
func (n *Node) onJoinRequest(from wire.NodeID, m *wire.JoinRequest) {
	if n.rejoin || n.stalled {
		return // cannot sponsor while not participating
	}
	if m.From == n.cfg.Self || n.tree.SuperLeafOf(m.From) != n.sl {
		return // only super-leaf peers sponsor a joiner
	}
	if _, already := n.sponsoring[m.From]; already {
		return // join in flight; the joiner's retry changes nothing
	}
	n.sponsoring[m.From] = 0 // carrying cycle assigned at proposal time
	if n.view.Alive(m.From) && !n.closedPeers[m.From] {
		// The previous incarnation never got a failure cut (e.g. the
		// node restarted faster than detection): retire it first.
		n.pendingUpdates = append(n.pendingUpdates, wire.MemberUpdate{Node: m.From, Leave: true})
		n.onPeerFailedLocal(m.From)
	}
	n.pendingUpdates = append(n.pendingUpdates, wire.MemberUpdate{Node: m.From})
	// Make sure a cycle carries the update promptly.
	if n.started == n.committed {
		n.tryStartCycles(n.started + 1)
	}
}

// onPeerFailedLocal marks a peer closed without queueing another Leave
// update (the caller already has).
func (n *Node) onPeerFailedLocal(peer wire.NodeID) {
	n.closedPeers[peer] = true
	for k := n.committed + 1; k <= n.started; k++ {
		if c, ok := n.cycles[k]; ok && c.started && !c.complete {
			n.advance(c)
		}
	}
}

// sendJoinReply transfers state to the joiner once its join update has
// committed in cycle cyc.
func (n *Node) sendJoinReply(joiner wire.NodeID, cyc uint64) {
	reply := &wire.JoinReply{
		From:       n.cfg.Self,
		StartCycle: cyc,
	}
	for _, id := range n.tree.AllNodes() {
		if n.view.Alive(id) {
			reply.Alive = append(reply.Alive, id)
			reply.Incarnations = append(reply.Incarnations, n.incarnationOf(id))
		}
	}
	if n.sm != nil {
		if n.exec != nil {
			// Serialize with the apply stage: the snapshot must reflect
			// every cycle up to cyc (all already ordered, possibly still
			// applying off the machine lock).
			n.exec.drain()
		}
		reply.Snapshot = n.sm.Snapshot()
	}
	reply.Sessions = n.sessions.Snapshot()
	n.env.Send(joiner, reply)
}

// incarnationOf reports the broadcast-layer incarnation for own-SL
// members (others are irrelevant to the joiner).
func (n *Node) incarnationOf(id wire.NodeID) uint32 {
	type incarnations interface {
		Incarnation(wire.NodeID) uint32
	}
	if b, ok := n.bc.(incarnations); ok && n.tree.SuperLeafOf(id) == n.sl {
		return b.Incarnation(id)
	}
	return 0
}

// onJoinReply installs the sponsor's state and resumes participation.
func (n *Node) onJoinReply(m *wire.JoinReply) {
	if !n.rejoin {
		return // duplicate reply from a second sponsor attempt
	}
	n.rejoin = false
	n.started = m.StartCycle
	n.committed = m.StartCycle
	n.orderedW.Store(m.StartCycle)

	// Rebuild the membership view: start from the static tree and fail
	// everyone absent from the sponsor's alive set.
	n.view = lot.NewView(n.tree)
	alive := make(map[wire.NodeID]bool, len(m.Alive))
	for _, id := range m.Alive {
		alive[id] = true
	}
	var dead []wire.MemberUpdate
	for _, id := range n.tree.AllNodes() {
		if !alive[id] {
			dead = append(dead, wire.MemberUpdate{Node: id, Leave: true})
		}
	}
	n.view.Apply(dead)

	// Install the state machine snapshot. In parallel mode the install
	// rides the apply stage as a synthetic plan so it serializes with any
	// committed-state reads already routed through the executor; the
	// applied watermark advances to StartCycle when it lands.
	// Snapshot entries smuggle each key's last-modified cycle and owner
	// session in Seq/Client (see kvstore.Store.Snapshot): a TxnMachine
	// installs them through ApplyWriteAt so the joiner's event-plane
	// metadata matches every replica that never crashed.
	if n.exec != nil {
		plan := n.newPlan(m.StartCycle)
		plan.snapshot = true
		for i := range m.Snapshot {
			plan.ops = append(plan.ops, planOp{req: &m.Snapshot[i], comp: -1})
		}
		n.exec.submitPlan(plan)
	} else {
		if n.tm != nil {
			for i := range m.Snapshot {
				req := &m.Snapshot[i]
				n.tm.ApplyWriteAt(req, req.Seq, req.Client)
			}
		} else if n.sm != nil {
			for i := range m.Snapshot {
				n.sm.ApplyWrite(&m.Snapshot[i])
			}
		}
		n.applied.Store(m.StartCycle)
	}
	// Install the session dedup table: retried mutations must classify
	// here exactly as on replicas that never crashed.
	n.sessions.Restore(m.Sessions)

	// Build the broadcast layer with the sponsor's incarnation numbers.
	var members []wire.NodeID
	incs := make(map[wire.NodeID]uint32)
	for i, id := range m.Alive {
		if n.tree.SuperLeafOf(id) == n.sl {
			members = append(members, id)
			if i < len(m.Incarnations) {
				incs[id] = m.Incarnations[i]
			}
		}
	}
	n.initBroadcast(members, incs)

	n.env.After(n.cfg.TickInterval, engine.Tag(tagTick, 0))
	if n.cfg.CycleInterval > 0 {
		n.nextCycleAt = n.env.Now() + n.cfg.CycleInterval
		n.env.After(n.cfg.CycleInterval, engine.Tag(tagCycleTimer, 0))
	}
}
