package core

import (
	"fmt"
	"time"

	"canopus/internal/engine"
	"canopus/internal/lot"
	"canopus/internal/wire"
)

// Join protocol (§3 assumption 6: "nodes fail by crashing and require a
// failed node to rejoin the system using a join protocol", modeled on
// Raft's approach as the paper suggests).
//
// Joiner J:  send JoinRequest to each configured super-leaf peer in turn
//            until a JoinReply arrives, then install the sponsor's state
//            and participate from the reply's StartCycle + 1.
//
// Sponsor S: queue a membership update (a Leave, if J's previous
//            incarnation is still in the view, then a Join); the update
//            rides S's next round-1 proposal (cycle X). Every member
//            applies it when X commits — simultaneously arming a
//            pipeline barrier so no member evaluates cycle X+1's round-1
//            completion with a stale membership. At commit S sends
//            JoinReply{StartCycle: X} with a state snapshot.

const joinRetryInterval = 200 * time.Millisecond

// sponsorship records an accepted JoinRequest on the sponsor: the cycle
// whose membership update answers it (0 until one is proposed) and
// whether the sponsorship was a cross-leaf resurrection. See the
// Node.sponsoring field and applyMembership for the kind rules.
type sponsorship struct {
	cycle     uint64
	resurrect bool
}

// sendJoinRequest tries the next peer, alternating deterministically
// between own super-leaf members (the common restart; they hold the
// broadcast incarnations) and cross-leaf nodes — the fallback that
// resurrects a fully-dead (evicted) leaf, whose members can only be
// sponsored from outside (see leaf.go). Alternating rather than
// exhausting one list first keeps both paths fast: a joiner behind live
// leafmates is picked up within two attempts instead of waiting out a
// full lap of cross-leaf denials, and a dead leaf's first joiner reaches
// an outside sponsor just as quickly.
func (n *Node) sendJoinRequest() {
	var own, cross []wire.NodeID
	for _, p := range n.tree.SuperLeaf(n.sl).Members {
		if p != n.cfg.Self {
			own = append(own, p)
		}
	}
	for _, p := range n.tree.AllNodes() {
		if n.tree.SuperLeafOf(p) != n.sl {
			cross = append(cross, p)
		}
	}
	seq := n.joinSeq
	n.joinSeq++
	var target wire.NodeID
	switch {
	case len(own) == 0 && len(cross) == 0:
		return // single-node cluster: nothing to rejoin
	case len(own) == 0:
		target = cross[seq%len(cross)]
	case len(cross) == 0:
		target = own[seq%len(own)]
	case seq%2 == 0:
		target = own[(seq/2)%len(own)]
	default:
		target = cross[(seq/2)%len(cross)]
	}
	n.env.Send(target, &wire.JoinRequest{From: n.cfg.Self})
	n.env.After(joinRetryInterval, engine.Tag(tagJoinRetry, 0))
}

// onJoinRequest is the sponsor side.
func (n *Node) onJoinRequest(from wire.NodeID, m *wire.JoinRequest) {
	if n.rejoin || n.stalled {
		return // cannot sponsor while not participating
	}
	if m.From == n.cfg.Self {
		return
	}
	resurrect := false
	if joinerSL := n.tree.SuperLeafOf(m.From); joinerSL != n.sl {
		if joinerSL < 0 {
			return // not a configured node
		}
		// Cross-leaf sponsorship resurrects only a fully-empty (evicted)
		// leaf: while any member of the joiner's leaf is alive in the
		// view, only those peers may sponsor — they alone know the leaf's
		// broadcast incarnation numbers, and a cross-leaf Join committing
		// next to live members would hand the joiner stale (zero)
		// incarnations for its broadcast groups. A fully-dead leaf
		// restarts every group from incarnation zero with no survivors
		// holding old state, so zeros are then exactly right. The update
		// is flagged Resurrect so that, if another member's join commits
		// first, this one is voided at apply time everywhere instead of
		// seating a member the sponsor cannot actually brief (see
		// applyMembership).
		if members := n.view.Members(joinerSL); len(members) > 0 {
			if len(members) == 1 && members[0] == m.From {
				// The joiner's resurrection already committed, yet it is
				// still asking: the one-shot JoinReply was lost (a live
				// deployment drops frames at a process-restart boundary —
				// the sponsor's first write after the restart can land on
				// a stale connection). The joiner is its leaf's only
				// seated member, so nobody else holds leaf state and the
				// current committed state IS the original reply's
				// content. Re-answer instead of deadlocking: without
				// this, every retry is dropped here (the leaf is no
				// longer empty) while the original sponsor's cleared
				// sponsorship makes it mute too.
				if DebugHook != nil {
					DebugHook(n.cfg.Self, "join-rereply", n.committed, fmt.Sprintf("%d", m.From))
				}
				n.sendJoinReply(m.From, n.committed)
			}
			return
		}
		resurrect = true
	}
	if _, already := n.sponsoring[m.From]; already {
		return // join in flight; the joiner's retry changes nothing
	}
	n.sponsoring[m.From] = sponsorship{resurrect: resurrect} // carrying cycle assigned at proposal time
	if DebugHook != nil {
		DebugHook(n.cfg.Self, "join-accept", 0, fmt.Sprintf("%d", m.From))
	}
	if n.view.Alive(m.From) && !n.closedPeers[m.From] {
		// The previous incarnation never got a failure cut (e.g. the
		// node restarted faster than detection): retire it first.
		n.pendingUpdates = append(n.pendingUpdates, wire.MemberUpdate{Node: m.From, Leave: true})
		n.onPeerFailedLocal(m.From)
	}
	n.pendingUpdates = append(n.pendingUpdates, wire.MemberUpdate{Node: m.From, Resurrect: resurrect})
	// Make sure a cycle carries the update promptly.
	if n.started == n.committed {
		n.tryStartCycles(n.started + 1)
	}
}

// onPeerFailedLocal marks a peer closed without queueing another Leave
// update (the caller already has).
func (n *Node) onPeerFailedLocal(peer wire.NodeID) {
	n.closedPeers[peer] = true
	for k := n.committed + 1; k <= n.started; k++ {
		if c, ok := n.cycles[k]; ok && c.started && !c.complete {
			n.advance(c)
		}
	}
}

// sendJoinReply transfers state to the joiner once its join update has
// committed in cycle cyc.
func (n *Node) sendJoinReply(joiner wire.NodeID, cyc uint64) {
	reply := &wire.JoinReply{
		From:       n.cfg.Self,
		StartCycle: cyc,
	}
	for _, id := range n.tree.AllNodes() {
		if n.view.Alive(id) {
			reply.Alive = append(reply.Alive, id)
			reply.Incarnations = append(reply.Incarnations, n.incarnationOf(id))
		}
	}
	if n.sm != nil {
		if n.exec != nil {
			// Serialize with the apply stage: the snapshot must reflect
			// every cycle up to cyc (all already ordered, possibly still
			// applying off the machine lock).
			n.exec.drain()
		}
		reply.Snapshot = n.sm.Snapshot()
	}
	reply.Sessions = n.sessions.Snapshot()
	if DebugHook != nil {
		DebugHook(n.cfg.Self, "join-reply", cyc, fmt.Sprintf("%d", joiner))
	}
	n.env.Send(joiner, reply)
}

// incarnationOf reports the broadcast-layer incarnation for own-SL
// members (others are irrelevant to the joiner).
func (n *Node) incarnationOf(id wire.NodeID) uint32 {
	type incarnations interface {
		Incarnation(wire.NodeID) uint32
	}
	if b, ok := n.bc.(incarnations); ok && n.tree.SuperLeafOf(id) == n.sl {
		return b.Incarnation(id)
	}
	return 0
}

// onJoinReply installs the sponsor's state and resumes participation.
func (n *Node) onJoinReply(m *wire.JoinReply) {
	if !n.rejoin {
		return // duplicate reply from a second sponsor attempt
	}
	if DebugHook != nil {
		DebugHook(n.cfg.Self, "join-install", m.StartCycle, "")
	}
	n.rejoin = false
	if n.cfg.LeafTimeout > 0 {
		// Remotes that have not yet committed our Join still see us dead
		// and answer our first messages with Evicted; absorb those for one
		// leaf-timeout (see Node.evictGraceUntil).
		n.evictGraceUntil = n.env.Now() + n.cfg.LeafTimeout
	}
	n.started = m.StartCycle
	n.committed = m.StartCycle
	n.orderedW.Store(m.StartCycle)

	// Rebuild the membership view: start from the static tree and fail
	// everyone absent from the sponsor's alive set.
	n.view = lot.NewView(n.tree)
	alive := make(map[wire.NodeID]bool, len(m.Alive))
	for _, id := range m.Alive {
		alive[id] = true
	}
	var dead []wire.MemberUpdate
	for _, id := range n.tree.AllNodes() {
		if !alive[id] {
			dead = append(dead, wire.MemberUpdate{Node: id, Leave: true})
		}
	}
	n.view.Apply(dead)

	// Install the state machine snapshot. In parallel mode the install
	// rides the apply stage as a synthetic plan so it serializes with any
	// committed-state reads already routed through the executor; the
	// applied watermark advances to StartCycle when it lands.
	// Snapshot entries smuggle each key's last-modified cycle and owner
	// session in Seq/Client (see kvstore.Store.Snapshot): a TxnMachine
	// installs them through ApplyWriteAt so the joiner's event-plane
	// metadata matches every replica that never crashed.
	if n.exec != nil {
		plan := n.newPlan(m.StartCycle)
		plan.snapshot = true
		for i := range m.Snapshot {
			plan.ops = append(plan.ops, planOp{req: &m.Snapshot[i], comp: -1})
		}
		n.exec.submitPlan(plan)
	} else {
		if n.tm != nil {
			for i := range m.Snapshot {
				req := &m.Snapshot[i]
				n.tm.ApplyWriteAt(req, req.Seq, req.Client)
			}
		} else if n.sm != nil {
			for i := range m.Snapshot {
				n.sm.ApplyWrite(&m.Snapshot[i])
			}
		}
		n.applied.Store(m.StartCycle)
	}
	// Install the session dedup table: retried mutations must classify
	// here exactly as on replicas that never crashed.
	n.sessions.Restore(m.Sessions)

	// Build the broadcast layer with the sponsor's incarnation numbers.
	var members []wire.NodeID
	incs := make(map[wire.NodeID]uint32)
	for i, id := range m.Alive {
		if n.tree.SuperLeafOf(id) == n.sl {
			members = append(members, id)
			if i < len(m.Incarnations) {
				incs[id] = m.Incarnations[i]
			}
		}
	}
	n.initBroadcast(members, incs)

	n.env.After(n.cfg.TickInterval, engine.Tag(tagTick, 0))
	if n.cfg.CycleInterval > 0 {
		n.nextCycleAt = n.env.Now() + n.cfg.CycleInterval
		n.env.After(n.cfg.CycleInterval, engine.Tag(tagCycleTimer, 0))
	}
}
