package core

import (
	"bytes"

	"canopus/internal/wire"
)

// Multi-op transactions. A transaction travels the ordinary consensus
// path as one wire.Request with Op == wire.OpTxn whose Val carries the
// encoded body (guards + ops), so it rides batches, proposals, and the
// session dedup table like any other mutation — exactly-once via
// (session, seq). Guards evaluate at APPLY time against the store state
// every prior committed operation produced, which is identical on every
// replica because plans apply strictly in cycle order and transaction
// plans never fan out across workers. A transaction either applies all
// of its ops inside its committed position or none of them: an aborted
// transaction leaves the store byte-identical on every replica.

// applyTxnOp evaluates one transaction op within a serially applying
// plan: duplicate txns resolve their cached result, fresh ones evaluate
// guards, apply ops when committed, and record their result in the
// session table (compaction-surviving, so a failover retry learns the
// original outcome).
func (n *Node) applyTxnOp(p *applyPlan, op *planOp) {
	req := op.req
	if op.dup {
		// The original's apply already completed (earlier plan, strict
		// cycle order): return its recorded result. A nil here means the
		// result was displaced by a later txn on the same session — the
		// serving layer surfaces an explicit error rather than guessing.
		if op.comp >= 0 {
			p.vals[op.comp] = n.sessions.CachedTxn(req.Client, req.Seq)
		}
		return
	}

	res := wire.TxnResult{Committed: false, Failed: 0}
	var t wire.Txn
	var decodeOK bool
	if n.tm != nil {
		var err error
		if t, err = wire.ParseTxn(req.Val); err == nil {
			decodeOK = true
		}
	}
	out := txnOutcome{}
	if decodeOK {
		res.Committed = true
		res.Failed = wire.TxnFailedNone
		for i := range t.Guards {
			if !n.txnGuardHolds(&t.Guards[i]) {
				res.Committed = false
				res.Failed = uint32(i)
				break
			}
		}
		if res.Committed {
			out.committed = true
			out.start = int32(len(p.txnEvents))
			out.count = int32(len(t.Ops))
			treq := wire.Request{Client: req.Client, Seq: req.Seq}
			for i := range t.Ops {
				top := &t.Ops[i]
				owner := uint64(0)
				if top.Ephemeral {
					owner = req.Client
				}
				treq.Op, treq.Key, treq.Val = top.Op, top.Key, top.Val
				n.tm.ApplyWriteAt(&treq, p.cycle, owner)
				// Event values must outlive the decode scratch: copy into
				// the plan's arena (delete events carry no value).
				var val []byte
				if top.Op != wire.OpDelete && top.Val != nil {
					p.evArena = append(p.evArena, top.Val...)
					val = p.evArena[len(p.evArena)-len(top.Val):]
				}
				p.txnEvents = append(p.txnEvents, wire.Event{Op: top.Op, Key: top.Key, Val: val})
			}
		}
	}
	p.outcomes = append(p.outcomes, out)
	if out.committed {
		n.stats.txnCommits.Add(1)
	} else {
		n.stats.txnAborts.Add(1)
	}

	resBytes := wire.AppendTxnResult(nil, res)
	if wire.IsSessionID(req.Client) {
		n.sessions.RecordTxn(req.Client, req.Seq, resBytes)
	}
	if op.comp >= 0 {
		p.vals[op.comp] = resBytes
	}
}

// txnGuardHolds evaluates one guard against applied state. A nil
// ValueEq value asserts absence; an empty value asserts a present empty
// value — kvstore preserves the distinction.
func (n *Node) txnGuardHolds(g *wire.TxnGuard) bool {
	switch g.Kind {
	case wire.GuardValueEq:
		cur := n.tm.Read(g.Key)
		if g.Val == nil {
			return cur == nil
		}
		return cur != nil && bytes.Equal(cur, g.Val)
	case wire.GuardCycleLE:
		return n.tm.ModCycle(g.Key) <= g.Cycle
	}
	return false // unknown guard kinds never pass (and never decode)
}

// applyExpiry is the plan's serial apply tail: every session the
// cycle's boundary expired has its ephemeral keys deleted, in sorted
// key order per owner, on every replica identically. Runs after all
// plan ops (single-threaded — ExpireOwned touches multiple shards).
func (n *Node) applyExpiry(p *applyPlan) {
	if len(p.expired) == 0 || n.tm == nil {
		return
	}
	for _, owner := range p.expired {
		p.expiredKeys = append(p.expiredKeys, n.tm.ExpireOwned(owner)...)
	}
}

// buildPlanEvents renders the cycle's key-change event list in
// committed total order: plan ops front to back (plain mutations
// directly, transactions from their recorded outcomes), then the
// expiry tail's deletions. Event values alias plan-owned memory —
// valid until freePlan, i.e. through the OnEvents call.
func (n *Node) buildPlanEvents(p *applyPlan) {
	oi := 0
	for i := range p.ops {
		op := &p.ops[i]
		switch op.req.Op {
		case wire.OpWrite:
			p.events = append(p.events, wire.Event{Op: wire.OpWrite, Key: op.req.Key, Val: op.req.Val})
		case wire.OpDelete:
			p.events = append(p.events, wire.Event{Op: wire.OpDelete, Key: op.req.Key})
		case wire.OpTxn:
			if op.dup {
				continue
			}
			out := p.outcomes[oi]
			oi++
			if out.committed {
				p.events = append(p.events, p.txnEvents[out.start:out.start+out.count]...)
			}
		}
	}
	for _, k := range p.expiredKeys {
		p.events = append(p.events, wire.Event{Op: wire.OpDelete, Key: k})
	}
}
