package core

import (
	"testing"
	"time"

	"canopus/internal/netsim"
	"canopus/internal/wire"
)

// TestRepresentativeCrashMidCycleRecovers kills, mid-cycle, exactly the
// super-leaf representative responsible for fetching the remote branch
// state, while a latency fault holds the fetch in flight. The surviving
// members must take over the dead representative's fetch assignment
// immediately after the failure cut (not after the slow escalation
// window) and drive the cycle to commit.
func TestRepresentativeCrashMidCycleRecovers(t *testing.T) {
	// FailAfter = 100ms; fetch retries rotate emulators every 100ms so
	// the remote super-leaf also steps around the corpse.
	cfg := Config{TickInterval: time.Millisecond, FetchTimeout: 100 * time.Millisecond}
	tc := newTestCluster(t, clusterOpts{racks: 2, perRack: 3, cfg: cfg})

	// Identify which representative of super-leaf 0 the modulo rule
	// assigns to fetch super-leaf 1's round-1 state.
	target := tc.tree.Ancestor(0, 2)
	own := tc.tree.Ancestor(0, 1)
	var remote string
	for _, u := range tc.tree.Children(target) {
		if u != own {
			remote = u
		}
	}
	victim := tc.nodes[0].View().RepresentativeFor(0, remote, 2)
	if victim != 0 && victim != 1 {
		t.Fatalf("victim %v is not a representative of super-leaf 0", victim)
	}

	// Stretch cross-rack traffic so the cycle cannot complete before the
	// crash: every fetch (and its response) takes 200ms extra.
	sl0, sl1 := tc.topo.RackMembers(0), tc.topo.RackMembers(1)
	tc.runner.InstallFaults(netsim.FaultPlan{
		Latencies: []netsim.LatencyFault{
			{At: 0, Until: 3 * time.Second, From: sl0, To: sl1, Extra: 200 * time.Millisecond},
			{At: 0, Until: 3 * time.Second, From: sl1, To: sl0, Extra: 200 * time.Millisecond},
		},
		Crashes: []netsim.CrashFault{{At: 100 * time.Millisecond, Node: victim}},
	}, nil)

	// A write submitted at a surviving node starts the cycle at ~10ms;
	// the victim dies at 100ms with the remote fetch still in flight.
	submitter := wire.NodeID(2) // in super-leaf 0; never a victim (victim is 0 or 1)
	tc.submitAt(10*time.Millisecond, submitter, wr(9, 1, 77, 5))
	// Post-crash traffic carries the victim's Leave update into a cycle.
	tc.submitAt(1500*time.Millisecond, submitter, wr(9, 2, 78, 6))
	tc.run(3 * time.Second)

	for i := range tc.nodes {
		if wire.NodeID(i) == victim {
			continue
		}
		if tc.nodes[i].Committed() == 0 {
			t.Fatalf("node %d never committed after representative crash: %s",
				i, tc.nodes[i].DebugCycle(1))
		}
		if tc.nodes[i].View().Alive(victim) {
			t.Fatalf("node %d still lists crashed representative %v as alive", i, victim)
		}
	}
	tc.requireAgreement()
	if got := tc.stores[2].LogLen(); got != 2 {
		t.Fatalf("writes not applied after recovery: log len %d, want 2", got)
	}
}

// TestEffectiveRepsSkipCutPeers checks the modulo-rule inputs directly:
// peers beyond the failure cut leave the representative set immediately,
// promoting the next live member, even though the committed view still
// lists them.
func TestEffectiveRepsSkipCutPeers(t *testing.T) {
	tc := newTestCluster(t, clusterOpts{racks: 2, perRack: 3})
	n := tc.nodes[2] // super-leaf 0 = {0,1,2}, NumReps=2
	if reps := n.effectiveReps(); len(reps) != 2 || reps[0] != 0 || reps[1] != 1 {
		t.Fatalf("healthy reps = %v, want [0 1]", reps)
	}
	if n.liveRepresentative() {
		t.Fatal("node 2 should not be a representative while 0 and 1 live")
	}
	n.closedPeers[0] = true
	if reps := n.effectiveReps(); len(reps) != 2 || reps[0] != 1 || reps[1] != 2 {
		t.Fatalf("post-cut reps = %v, want [1 2]", reps)
	}
	if !n.liveRepresentative() {
		t.Fatal("node 2 must be promoted to representative after the cut")
	}
	// Every remote vnode must now map to a live representative.
	target := tc.tree.Ancestor(0, 2)
	for _, u := range tc.tree.Children(target) {
		if u == tc.tree.Ancestor(0, 1) {
			continue
		}
		if rep := n.repFor(n.effectiveReps(), u); rep == 0 {
			t.Fatalf("vnode %s still assigned to the cut peer", u)
		}
	}
}

// TestLeaseRevokedOnHolderCrash verifies the §7.2 extension for crashes:
// once the failure cut commits the holder's Leave, its write leases are
// revoked, so other nodes' reads on the key return to the local fast
// path instead of being deferred to cycle boundaries until the TTL runs
// out.
func TestLeaseRevokedOnHolderCrash(t *testing.T) {
	cfg := Config{WriteLeases: true, LeaseTTL: 64, TickInterval: time.Millisecond}
	tc := newTestCluster(t, clusterOpts{racks: 2, perRack: 3, cfg: cfg})

	// Node 3 (super-leaf 1, not a fetch-critical representative of
	// super-leaf 0) acquires a lease on key 7 by writing it.
	tc.submitAt(5*time.Millisecond, 3, wr(4, 1, 7, 1))
	tc.run(300 * time.Millisecond)
	if !tc.nodes[0].leaseActive(7) {
		t.Fatal("lease on key 7 never activated")
	}

	// Crash the holder; keep cycles flowing from node 0 so the Leave
	// update can ride a proposal and commit.
	tc.runner.Crash(3)
	for s := 1; s <= 5; s++ {
		tc.submitAt(time.Duration(300+s*150)*time.Millisecond, 0, wr(1, uint64(s), uint64(100+s), 1))
	}
	tc.run(2500 * time.Millisecond)

	if tc.nodes[0].View().Alive(3) {
		t.Fatal("holder's Leave never committed")
	}
	if tc.nodes[0].leaseActive(7) {
		t.Fatalf("lease on key 7 still active after holder crash (until cycle %d, committed %d)",
			tc.nodes[0].leases[7], tc.nodes[0].Committed())
	}

	// A read on the revoked key must complete synchronously (local fast
	// path), not wait for a cycle boundary.
	const readAt = 2600 * time.Millisecond
	tc.submitAt(readAt, 0, rd(1, 99, 7))
	tc.run(3 * time.Second)
	reps := tc.replies[0]
	last := reps[len(reps)-1]
	if last.req.Op != wire.OpRead || last.req.Seq != 99 {
		t.Fatalf("missing read reply; last reply %+v", last.req)
	}
	if last.at != readAt {
		t.Fatalf("read was deferred to %v, want synchronous local reply at %v", last.at, readAt)
	}
	if len(last.val) != 8 || last.val[0] != 1 {
		t.Fatalf("read returned %v, want the committed write", last.val)
	}
}

// TestWANPartitionStallsThenHeals cuts one super-leaf off and verifies
// stall semantics (§6) during the cut and full recovery after the heal,
// with all replicas converging.
func TestWANPartitionStallsThenHeals(t *testing.T) {
	cfg := Config{TickInterval: time.Millisecond, FetchTimeout: 30 * time.Millisecond}
	tc := newTestCluster(t, clusterOpts{racks: 2, perRack: 3, cfg: cfg})
	sl0, sl1 := tc.topo.RackMembers(0), tc.topo.RackMembers(1)
	tc.runner.InstallFaults(netsim.FaultPlan{
		Partitions: []netsim.PartitionFault{{
			At: 50 * time.Millisecond, Heal: time.Second, A: sl0, B: sl1,
		}},
	}, nil)

	// Submitted during the partition: cannot commit until it heals
	// (the remote branch state is unreachable).
	tc.submitAt(100*time.Millisecond, 0, wr(1, 1, 1, 1))
	tc.run(900 * time.Millisecond)
	if tc.nodes[0].Committed() != 0 {
		t.Fatal("cycle committed across an unhealed partition")
	}
	tc.run(4 * time.Second)
	for i := range tc.nodes {
		if tc.nodes[i].Stalled() {
			t.Fatalf("node %d stalled: intra-super-leaf connectivity never broke", i)
		}
		if tc.nodes[i].Committed() == 0 {
			t.Fatalf("node %d never recovered after heal: %s", i, tc.nodes[i].DebugCycle(1))
		}
	}
	tc.requireAgreement()
}
