package core

import (
	"fmt"
	"sync/atomic"
	"time"

	"canopus/internal/broadcast"
	"canopus/internal/engine"
	"canopus/internal/kvstore"
	"canopus/internal/lot"
	"canopus/internal/wire"
)

// Timer tag kinds.
const (
	tagTick uint8 = iota + 1
	tagCycleTimer
	tagJoinRetry
)

// ownSet is a node's full request set for one cycle: reads and writes in
// client arrival order. Only the writes travel in proposals; the set is
// kept locally so reads can be linearized at their arrival positions when
// the ordering cycle commits (§5).
type ownSet struct {
	reqs     []wire.Request
	arrivals []time.Duration
	writes   int
}

// cycle is the per-cycle protocol state at one node.
type cycle struct {
	id        uint64
	started   bool
	round     int // 1..h while running; h+1 once the root state is known
	startedAt time.Duration

	// r1 collects round-1 proposals per super-leaf origin.
	r1 map[wire.NodeID]*wire.Proposal
	// states[h] is the height-h vnode state, computed at the end of
	// round h; index 0 is unused.
	states []*wire.Proposal
	// child holds fetched or peer-rebroadcast vnode states by vnode ID.
	child map[string]*wire.Proposal
	// fetchAttempt counts emulator retries per vnode.
	fetchAttempt map[string]int
	// fetchDeadline is the per-vnode retry deadline for fetches this
	// node issued.
	fetchDeadline map[string]time.Duration
	// rebroadcast marks vnode states this node has already re-broadcast
	// to its peers, so duplicate fetch responses are not re-proposed.
	rebroadcast map[string]bool
	// waiting buffers proposal-requests that arrived before the
	// requested state was computed (§4.2: "it buffers the request
	// message and replies ... only after computing the state").
	waiting []pendingReq

	// sealed marks vnode IDs this leaf has sealed for this cycle during
	// an eviction round (see leaf.go): plain states for a sealed vnode
	// are refused; only a Resolve-flagged proposal fills the slot.
	sealed map[string]bool
	// evict tracks eviction rounds this node initiated, per missing
	// vnode.
	evict map[string]*evictState

	complete bool
}

type pendingReq struct {
	from  wire.NodeID
	vnode string
}

// Node is one Canopus participant (a pnode).
type Node struct {
	cfg  Config
	env  engine.Env
	tree *lot.Tree
	view *lot.View
	sl   int
	bc   broadcast.Broadcaster
	sm   StateMachine
	// tm is sm's TxnMachine facet when it has one (cached assertion):
	// enables transactions, key metadata, and ephemeral-key expiry.
	tm  TxnMachine
	cbs Callbacks

	closedPeers map[wire.NodeID]bool

	// Request accumulation for the next cycle to start.
	accum ownSet
	// Fluid-mode accumulation (aggregate counts instead of requests).
	fluidRead, fluidWrite, fluidBytes uint32
	fluidSamples                      []wire.ArrivalSample

	// proposed maps a cycle to the request set it ordered.
	proposed map[uint64]*ownSet

	cycles    map[uint64]*cycle
	started   uint64
	committed uint64
	// cycleFree recycles committed cycle structs (and their maps) so a
	// saturated node does not allocate a fresh cycle skeleton per commit.
	cycleFree []*cycle
	// recent retains committed cycles' vnode states so late fetches from
	// lagging super-leaves can still be answered (a super-leaf can trail
	// the fastest one by up to the pipelining bound).
	recent map[uint64][]*wire.Proposal
	// recentChild retains committed cycles' fetched child states (the
	// cycle's child map, stolen at commit) so eviction queries for gap
	// cycles — cycles the dead leaf may already have served state for —
	// can be answered with the exact state this node merged. Only
	// maintained when LeafTimeout > 0; pruned with recent.
	recentChild map[uint64]map[string]*wire.Proposal
	// leafDeadAt records, per super-leaf ordinal, the commit cycle at
	// which the view last saw the leaf's membership go empty (an eviction
	// landing). Merges of cycles >= leafDeadAt+MaxInFlight substitute the
	// tombstone locally without a new eviction round. Deleted when a
	// member of the leaf rejoins.
	leafDeadAt map[int]uint64
	// leafReadmitAt records, per super-leaf ordinal, the local time at
	// which the leaf was last re-admitted (leafDeadAt cleared by a
	// committed rejoin). Eviction waits measure from the later of the
	// cycle's start and this mark: cycles started while the leaf was
	// dead would otherwise carry a long-expired startedAt and evict the
	// rejoined leaf before it can serve a single state.
	leafReadmitAt map[int]time.Duration

	// Commit-pipeline watermarks (see exec.go). orderedW mirrors
	// n.committed for lock-free observers; applied is the highest cycle
	// whose apply stage has finished (equal to orderedW in serial mode).
	orderedW atomic.Uint64
	applied  atomic.Uint64
	// exec is the background apply stage; nil in serial mode
	// (Config.ApplyWorkers == 0).
	exec *executor

	// Replicated client sessions (see session.go): the dedup table is
	// replicated state, updated only at commit boundaries; the rest is
	// this node's local proposal/notification bookkeeping.
	sessions        *kvstore.SessionTable
	pendingSessions []wire.SessionUpdate
	// expiredScratch collects the session IDs each commit's boundary
	// expired (applySessions resets and fills it; the cycle's plan takes
	// a copy so the apply tail can delete their ephemeral keys).
	expiredScratch []uint64
	regWaiters     map[uint64]func(id uint64, ok bool)
	expWaiters     map[uint64][]func(ok bool)
	expireProposed map[uint64]bool

	pendingUpdates []wire.MemberUpdate
	// stallAfter, when non-zero, blocks starting cycles beyond it until
	// it commits: a join rode cycle stallAfter, and membership must be
	// applied before anyone evaluates later round-1 completion sets.
	stallAfter uint64
	// sponsoring maps a joining node to this node's sponsorship: the
	// cycle carrying a matching join update (0 until one is proposed)
	// and whether the sponsorship was a cross-leaf resurrection. The
	// kind matters: a resurrect sponsor must stay silent when an
	// own-leaf member's join for the same node commits (and vice
	// versa) — its reply would carry the wrong incarnations.
	sponsoring map[wire.NodeID]sponsorship

	// Lease state (§7.2).
	pendingLeases  []wire.LeaseRequest
	leaseRequested map[uint64]bool
	leases         map[uint64]uint64      // key -> last cycle the lease is active for
	leaseHolder    map[uint64]wire.NodeID // key -> node that last acquired/renewed the lease
	heldWrites     map[uint64][]heldWrite
	deferredReads  map[uint64][]deferredRead

	// localReads are Sequential-consistency reads waiting for a minimum
	// committed cycle (see ReadLocal); served at commit boundaries.
	localReads []localRead

	// stats are the always-on operational counters the admin gateway
	// exports (see metrics.go).
	stats nodeStats

	stalled bool
	// evicted latches when the node learns (via a wire.Evicted notice)
	// that the cluster removed its super-leaf: it behaves like stalled
	// but fires Callbacks.OnEvicted so the operator restarts it through
	// the join protocol.
	evicted bool
	// evictGraceUntil absorbs spurious Evicted notices right after a
	// join: a remote whose view has not yet committed this node's Join
	// still sees it dead and reflexively refuses its first fetches. Real
	// evictions re-notify on every refused message, so compliance is
	// only delayed by the grace, never lost.
	evictGraceUntil time.Duration
	rejoin          bool
	joinSeq         int
	// recovered marks a node restarted from durable state (see
	// recovery.go): it enables the root catch-up path that closes the
	// watermark gap against peers after a full-cluster restart.
	recovered bool
	// durFailed latches after the first Durability error (fail-stop
	// logging); durErr holds that error for external observers.
	durFailed      bool
	durErr         atomic.Value
	lastTick       time.Duration
	lastCycleStart time.Duration
	// Stall detector state (Config.StallThreshold): lastCommitAt is the
	// machine time of the most recent commit; stallDetected and halted
	// are atomic mirrors for off-turn observers (metrics, /healthz) —
	// stallDetected tracks the no-commit-progress detector, halted the
	// hard §6 stall/eviction states.
	lastCommitAt  time.Duration
	stallDetected atomic.Bool
	halted        atomic.Bool
	nextCycleAt   time.Duration // phase-anchored cycle timer target

	// replyReqs/replyVals are the reusable completion-batch scratch for
	// Callbacks.OnReplyBatch (valid only during the callback).
	replyReqs []wire.Request
	replyVals [][]byte
}

type heldWrite struct {
	req     wire.Request
	arrived time.Duration
}

// localRead is one deferred committed-state read (see Node.ReadLocal).
type localRead struct {
	key      uint64
	minCycle uint64
	fn       func(val []byte, cycle uint64, ok bool)
}

type deferredRead struct {
	req     wire.Request
	arrived time.Duration
}

var _ engine.Machine = (*Node)(nil)

// NewNode builds a Canopus node. sm may be nil when running fluid
// workloads (no materialized requests).
func NewNode(cfg Config, sm StateMachine, cbs Callbacks) *Node {
	cfg.fill()
	if cfg.Tree == nil {
		panic("core: Config.Tree is required")
	}
	sl := cfg.Tree.SuperLeafOf(cfg.Self)
	if sl < 0 {
		panic(fmt.Sprintf("core: node %v not in tree", cfg.Self))
	}
	if cfg.WriteLeases || sm == nil {
		// The §7.2 lease fast path reads committed state synchronously
		// inside the submit turn, and a node without a state machine has
		// nothing to apply: both force the serial commit path.
		cfg.ApplyWorkers = 0
	}
	n := &Node{
		cfg:            cfg,
		tree:           cfg.Tree,
		sl:             sl,
		sm:             sm,
		cbs:            cbs,
		sessions:       kvstore.NewSessionTable(),
		closedPeers:    make(map[wire.NodeID]bool),
		proposed:       make(map[uint64]*ownSet),
		cycles:         make(map[uint64]*cycle),
		recent:         make(map[uint64][]*wire.Proposal),
		recentChild:    make(map[uint64]map[string]*wire.Proposal),
		leafDeadAt:     make(map[int]uint64),
		leafReadmitAt:  make(map[int]time.Duration),
		sponsoring:     make(map[wire.NodeID]sponsorship),
		leaseRequested: make(map[uint64]bool),
		leases:         make(map[uint64]uint64),
		leaseHolder:    make(map[uint64]wire.NodeID),
		heldWrites:     make(map[uint64][]heldWrite),
		deferredReads:  make(map[uint64][]deferredRead),
	}
	if tm, ok := sm.(TxnMachine); ok {
		n.tm = tm
	}
	if cfg.ApplyWorkers > 0 {
		n.exec = newExecutor(n, cfg.ApplyWorkers)
	}
	return n
}

// Close releases the node's background resources (the commit apply
// executor, when running): queued cycles finish applying, parked
// committed-state reads fail, and the executor goroutines exit. A node
// must not be driven after Close. Serial-mode nodes hold no background
// resources and Close is a no-op.
func (n *Node) Close() {
	if n.exec != nil {
		n.exec.close()
	}
}

// DrainApply blocks until every cycle ordered so far has finished
// applying (Committed() has caught up with Ordered()). Tests and tools
// call it before inspecting the node's StateMachine directly — in
// parallel mode the apply stage owns the store, and only a drain makes a
// foreign read coherent. No-op in serial mode. Must NOT be called from
// the node's machine turn or from a reply callback.
func (n *Node) DrainApply() {
	if n.exec != nil {
		n.exec.drain()
	}
}

// ParallelApply reports whether this node runs the parallel commit
// pipeline (Config.ApplyWorkers > 0 survived the sanity clamps).
func (n *Node) ParallelApply() bool { return n.exec != nil }

// InspectApplied runs fn in the apply stage's execution context: every
// cycle ordered before the call has applied, and no apply overlaps fn —
// fn may read the StateMachine coherently. It blocks until fn returns.
// Parallel mode only (serial-mode callers already serialize through the
// machine turn); must NOT be called from the machine turn or a reply
// callback.
func (n *Node) InspectApplied(fn func()) {
	if n.exec == nil {
		fn()
		return
	}
	n.exec.call(fn)
}

// NewJoiner builds a node that re-enters an existing deployment through
// the join protocol instead of assuming the initial configuration.
func NewJoiner(cfg Config, sm StateMachine, cbs Callbacks) *Node {
	n := NewNode(cfg, sm, cbs)
	n.rejoin = true
	return n
}

// Init implements engine.Machine.
func (n *Node) Init(env engine.Env) {
	n.env = env
	if n.rejoin {
		// Defer all protocol state to the JoinReply.
		n.sendJoinRequest()
		return
	}
	n.view = lot.NewView(n.tree)
	n.initBroadcast(n.tree.SuperLeaf(n.sl).Members, nil)
	env.After(n.cfg.TickInterval, engine.Tag(tagTick, 0))
	if n.cfg.CycleInterval > 0 {
		n.nextCycleAt = n.env.Now() + n.cfg.CycleInterval
		env.After(n.cfg.CycleInterval, engine.Tag(tagCycleTimer, 0))
	}
}

func (n *Node) initBroadcast(members []wire.NodeID, incarnations map[wire.NodeID]uint32) {
	bcfg := broadcast.Config{
		Members:      members,
		Incarnations: incarnations,
		TickInterval: n.cfg.TickInterval,
	}
	cbs := broadcast.Callbacks{
		Deliver:    n.onDeliver,
		PeerFailed: n.onPeerFailed,
	}
	switch n.cfg.Broadcast {
	case BroadcastSwitch:
		n.bc = broadcast.NewSwitch(n.env, bcfg, cbs)
	default:
		n.bc = broadcast.NewRaft(n.env, bcfg, cbs)
	}
}

// Recv implements engine.Machine.
func (n *Node) Recv(from wire.NodeID, m wire.Message) {
	switch v := m.(type) {
	case *wire.JoinRequest:
		n.onJoinRequest(from, v)
		return
	case *wire.JoinReply:
		n.onJoinReply(v)
		return
	case *wire.Evicted:
		// Must be handled before the stalled/rejoin drop: the notice is
		// exactly what tells a stalled survivor to restart fresh.
		n.onEvictedNotice(v)
		return
	}
	if n.rejoin || n.stalled {
		return // not participating; peers retry what matters
	}
	if n.cfg.LeafTimeout > 0 && n.view != nil && from != n.cfg.Self &&
		n.tree.SuperLeafOf(from) >= 0 && !n.view.Alive(from) {
		// Dead-in-view sender: an evicted leaf's member (possibly a healed
		// partition minority, or a durable restart of the old incarnation)
		// is still talking with pre-eviction state. Refusing it — and
		// telling it why — is what keeps the evicted state from leaking
		// back into consensus.
		n.env.Send(from, &wire.Evicted{From: n.cfg.Self})
		return
	}
	if n.bc != nil && n.bc.Handle(from, m) {
		return
	}
	switch v := m.(type) {
	case *wire.Proposal:
		n.onFetchResponse(v)
	case *wire.ProposalRequest:
		n.onProposalRequest(from, v)
	case *wire.EvictQuery:
		n.onEvictQuery(v)
	case *wire.EvictPromise:
		n.onEvictPromise(from, v)
	}
}

// Timer implements engine.Machine.
func (n *Node) Timer(tag engine.TimerTag) {
	switch engine.TagKind(tag) {
	case tagTick:
		n.tick()
		n.env.After(n.cfg.TickInterval, engine.Tag(tagTick, 0))
	case tagCycleTimer:
		n.onCycleTimer()
		// Phase-anchored rearm: scheduling relative to the target time
		// (not the handler's actual run time) keeps every node's cycle
		// clock in step; otherwise CPU-queueing lag accumulates into
		// unbounded phase drift between super-leaves, and cross-leaf
		// fetches stall on the laggard (§4.4's self-synchronization
		// assumes roughly aligned cycle starts).
		n.nextCycleAt += n.cfg.CycleInterval
		if now := n.env.Now(); n.nextCycleAt < now {
			n.nextCycleAt = now + n.cfg.CycleInterval
		}
		n.env.After(n.nextCycleAt-n.env.Now(), engine.Tag(tagCycleTimer, 0))
	case tagJoinRetry:
		if n.rejoin {
			n.sendJoinRequest()
		}
	}
}

// tick drives the broadcast substrate and retries stuck fetches.
func (n *Node) tick() {
	if n.rejoin || n.stalled {
		return
	}
	n.lastTick = n.env.Now()
	n.checkStall()
	n.bc.Tick()
	n.retryFetches()
	n.driveEvictions()
}

// checkStall is the Config.StallThreshold liveness detector: a node
// with started-but-uncommitted cycles and no commit progress past the
// threshold flags itself degraded. Pure observation — it sends nothing
// and arms nothing, so it costs one branch when disabled and never
// perturbs replay determinism.
func (n *Node) checkStall() {
	if n.cfg.StallThreshold <= 0 {
		return
	}
	if n.started <= n.committed {
		if n.stallDetected.Load() {
			n.stallDetected.Store(false)
		}
		return
	}
	// Progress reference: the later of the last commit and the start of
	// the oldest uncommitted cycle (so a node that just started its
	// first-ever cycle is not instantly "stalled").
	ref := n.lastCommitAt
	if c, ok := n.cycles[n.committed+1]; ok && c.started && c.startedAt > ref {
		ref = c.startedAt
	}
	if n.env.Now()-ref <= n.cfg.StallThreshold {
		return
	}
	if !n.stallDetected.Swap(true) {
		n.stats.stallsDetected.Add(1)
	}
}

// onCycleTimer is the §7.1 pipelining trigger: an upper bound on the
// offset between consecutive cycle starts while work is outstanding.
func (n *Node) onCycleTimer() {
	if n.rejoin || n.stalled {
		return
	}
	if n.pendingCount() > 0 || n.started > n.committed {
		n.tryStartCycles(n.started + 1)
	}
}

// pendingCount is the number of accumulated-but-unproposed requests.
// Pending session updates count too: a registration must get a cycle to
// ride even on an otherwise idle node.
func (n *Node) pendingCount() int {
	return len(n.accum.reqs) + int(n.fluidRead) + int(n.fluidWrite) + len(n.pendingSessions)
}

// Submit hands the node one client request (explicit mode). It must be
// invoked from the node's own event context (the drivers arrange this).
func (n *Node) Submit(req wire.Request) {
	if n.stalled || n.rejoin {
		// The paper's stall semantics: requests are neither served nor
		// lost; clients time out and retry elsewhere. We drop.
		return
	}
	if n.cfg.WriteLeases {
		n.submitLeased(req)
		return
	}
	n.enqueue(req)
	n.afterSubmit()
}

// enqueue appends a request to the accumulating set.
func (n *Node) enqueue(req wire.Request) {
	n.accum.reqs = append(n.accum.reqs, req)
	n.accum.arrivals = append(n.accum.arrivals, n.env.Now())
	if req.Op.Mutates() {
		n.accum.writes++
	}
}

// ReadLocal answers a read from this replica's committed state without
// entering a consensus cycle — the Sequential/Stale client read path
// (every replica holds the full state, §5). If the node has committed at
// least minCycle the read is served immediately; otherwise it is
// deferred until that cycle commits (cycles are global, so a cycle
// observed committed anywhere commits here too, absent failures). fn
// runs in the node's event context with the value (nil when absent),
// the commit cycle whose state served the read, and ok=true — or
// ok=false if the read was abandoned by FailLocalReads before minCycle
// committed. Unlike Submit, ReadLocal also works on a stalled node when
// minCycle is already committed: serving stale state during a stall is
// exactly what the weaker levels are for.
func (n *Node) ReadLocal(key uint64, minCycle uint64, fn func(val []byte, cycle uint64, ok bool)) {
	if n.exec != nil {
		// Parallel mode: every committed-state read serializes with the
		// apply stage through the executor (fn runs on the executor
		// goroutine). A cycle that is ordered here will apply here, so
		// only targets beyond the ordered watermark are unreachable on a
		// stalled node.
		if (n.stalled || n.rejoin) && minCycle > n.committed {
			fn(nil, n.applied.Load(), false)
			return
		}
		n.exec.submitRead(localRead{key: key, minCycle: minCycle, fn: fn})
		return
	}
	if n.committed >= minCycle {
		var val []byte
		if n.sm != nil {
			val = n.sm.Read(key)
		}
		fn(val, n.committed, true)
		return
	}
	if n.stalled || n.rejoin {
		// The awaited cycle cannot commit here (§6 stall semantics);
		// fail fast so the client retries another replica.
		fn(nil, n.committed, false)
		return
	}
	n.localReads = append(n.localReads, localRead{key: key, minCycle: minCycle, fn: fn})
}

// FailLocalReads abandons every deferred committed-state read (their fn
// runs with ok=false): the serving process is shutting down or crashed,
// and the cycles those reads wait for will not commit here. Call from
// the node's event context.
func (n *Node) FailLocalReads() {
	if n.exec != nil {
		// Ordered after every queued plan: reads whose cycle is already
		// ordered still complete; only genuinely unreachable ones fail.
		n.exec.failParked()
	}
	lrs := n.localReads
	n.localReads = nil
	for _, lr := range lrs {
		lr.fn(nil, n.committed, false)
	}
}

// afterSubmit applies the self-synchronization (§4.4) and batch-overflow
// (§7.1) cycle-start triggers. Self-clocked starts are paced to the
// cycle interval so saturation does not degenerate into a storm of tiny
// cycles; batch overflow overrides the pacing (§7.1's third trigger).
func (n *Node) afterSubmit() {
	if n.pendingCount() >= n.cfg.MaxBatch {
		n.tryStartCycles(n.started + 1)
		return
	}
	if n.started == n.committed && n.paceAllows() {
		// Idle: a client request prompts a new consensus cycle.
		n.tryStartCycles(n.started + 1)
	}
}

// paceAllows reports whether enough time has passed since the last cycle
// start for another self-clocked one.
func (n *Node) paceAllows() bool {
	if n.cfg.CycleInterval <= 0 {
		return true
	}
	return n.env.Now()-n.lastCycleStart >= n.cfg.CycleInterval
}

// SubmitFluid accumulates an aggregate of client requests (fluid mode):
// reads/writes counts, the modeled payload bytes of the writes, and a few
// arrival samples used for latency accounting at commit time.
func (n *Node) SubmitFluid(reads, writes, bytes uint32, samples []wire.ArrivalSample) {
	if n.stalled || n.rejoin {
		return
	}
	n.fluidRead += reads
	n.fluidWrite += writes
	n.fluidBytes += bytes
	n.fluidSamples = append(n.fluidSamples, samples...)
	n.afterSubmit()
}

// tryStartCycles starts cycles in sequence up to target, subject to the
// pipelining bound, the join barrier and super-leaf health.
func (n *Node) tryStartCycles(target uint64) {
	for n.canStart(n.started+1) && n.started+1 <= target {
		n.startCycle(n.started + 1)
	}
}

func (n *Node) canStart(k uint64) bool {
	if n.stalled || n.rejoin {
		return false
	}
	if k != n.started+1 {
		return false // never skip a cycle (§7.1)
	}
	if int(n.started-n.committed) >= n.cfg.MaxInFlight {
		return false
	}
	if n.exec != nil && k > n.applied.Load()+uint64(2*n.cfg.MaxInFlight) {
		// Apply backpressure: ordering paces against the applied
		// watermark too, so a slow apply stage bounds the executor's
		// plan queue instead of letting it (and the retained cycle
		// state) grow without limit. The cycle timer re-triggers once
		// the executor catches up.
		return false
	}
	if n.stallAfter != 0 && k > n.stallAfter && n.committed < n.stallAfter {
		return false // membership change in flight: wait for it to land
	}
	return true
}

// startCycle begins cycle k: snapshot the accumulated request set, build
// and reliably broadcast the round-1 proposal, and issue all remote
// fetches this node is responsible for (emulators buffer requests for
// states they have not yet computed, so fetches for every round go out
// immediately — the Figure 2 pattern).
func (n *Node) startCycle(k uint64) {
	c := n.ensureCycle(k)
	n.started = k
	n.stats.cycleStarts.Add(1)
	c.started = true
	c.round = 1
	c.startedAt = n.env.Now()
	n.lastCycleStart = c.startedAt
	if DebugHook != nil {
		DebugHook(n.cfg.Self, "start", k, "")
	}

	batch, set := n.takeAccum()
	n.proposed[k] = set

	p := &wire.Proposal{
		Cycle:  k,
		Round:  1,
		Origin: n.cfg.Self,
		Num:    n.env.Rand().Uint64(),
	}
	if batch != nil {
		p.Batches = []*wire.Batch{batch}
	}
	if len(n.pendingUpdates) > 0 {
		p.Updates = n.pendingUpdates
		n.pendingUpdates = nil
		n.noteUpdates(k, p.Updates)
	}
	if len(n.pendingLeases) > 0 {
		p.Leases = n.pendingLeases
		n.pendingLeases = nil
	}
	if len(n.pendingSessions) > 0 {
		p.Sessions = n.pendingSessions
		n.pendingSessions = nil
	}
	n.bc.Broadcast(p)
	n.issueFetches(c)
}

// takeAccum converts the accumulated requests into the proposal batch
// (writes only on the wire; reads stay local) and the locally retained
// full set. Sets are pooled: the recycled backing arrays become the next
// accumulation window, so a saturated node reuses the same storage
// cycle after cycle.
func (n *Node) takeAccum() (*wire.Batch, *ownSet) {
	set := ownSetPool.Get().(*ownSet)
	var batch *wire.Batch
	switch {
	case len(n.accum.reqs) > 0:
		recycled := *set
		*set = n.accum
		n.accum = ownSet{reqs: recycled.reqs[:0], arrivals: recycled.arrivals[:0]}
		writes := make([]wire.Request, 0, set.writes)
		var nr, nw uint32
		for i := range set.reqs {
			if set.reqs[i].Op.Mutates() {
				writes = append(writes, set.reqs[i])
				nw++
			} else {
				nr++
			}
		}
		batch = &wire.Batch{
			Origin:   n.cfg.Self,
			Reqs:     writes,
			NumRead:  nr,
			NumWrite: nw,
		}
	case n.fluidRead > 0 || n.fluidWrite > 0:
		batch = &wire.Batch{
			Origin:   n.cfg.Self,
			NumRead:  n.fluidRead,
			NumWrite: n.fluidWrite,
			ByteSize: n.fluidBytes,
			Samples:  n.fluidSamples,
		}
		n.fluidRead, n.fluidWrite, n.fluidBytes = 0, 0, 0
		n.fluidSamples = nil
	}
	return batch, set
}

// noteUpdates records join barriers for updates this node just proposed
// (or saw proposed) in cycle k. Any leaf's join arms the barrier: with
// cross-leaf sponsorship (leaf.go) a Join may resurrect a remote leaf,
// and round-1 completion sets everywhere must see the membership applied
// before later cycles start.
func (n *Node) noteUpdates(k uint64, updates []wire.MemberUpdate) {
	for _, u := range updates {
		if !u.Leave {
			if n.stallAfter == 0 || k > n.stallAfter {
				n.stallAfter = k
			}
			if s, ok := n.sponsoring[u.Node]; ok && s.cycle == 0 && s.resurrect == u.Resurrect {
				s.cycle = k
				n.sponsoring[u.Node] = s
			}
		}
	}
}

// ensureCycle returns (creating or recycling as needed) cycle k's state.
// The per-cycle maps are created lazily at their write sites — a
// height-1 deployment never fetches, so child/fetchAttempt/fetchDeadline
// would be three dead allocations per cycle.
func (n *Node) ensureCycle(k uint64) *cycle {
	if c, ok := n.cycles[k]; ok {
		return c
	}
	var c *cycle
	if len(n.cycleFree) > 0 {
		c = n.cycleFree[len(n.cycleFree)-1]
		n.cycleFree = n.cycleFree[:len(n.cycleFree)-1]
		*c = cycle{
			r1:            c.r1,
			child:         c.child,
			fetchAttempt:  c.fetchAttempt,
			fetchDeadline: c.fetchDeadline,
			rebroadcast:   c.rebroadcast,
			sealed:        c.sealed,
			evict:         c.evict,
			waiting:       c.waiting[:0],
		}
	} else {
		c = &cycle{}
	}
	c.id = k
	c.states = make([]*wire.Proposal, n.tree.Height+1)
	n.cycles[k] = c
	return c
}

// freeCycle recycles a committed cycle's skeleton. Its states slice is
// NOT recycled — n.recent retains it to answer late fetches.
func (n *Node) freeCycle(c *cycle) {
	if len(n.cycleFree) >= n.cfg.MaxInFlight+4 {
		return
	}
	clear(c.r1)
	clear(c.child)
	clear(c.fetchAttempt)
	clear(c.fetchDeadline)
	clear(c.rebroadcast)
	clear(c.sealed)
	clear(c.evict)
	c.states = nil
	n.cycleFree = append(n.cycleFree, c)
}

func (n *Node) retention() uint64 { return n.cfg.retention() }

// Committed returns the highest cycle whose effects are visible in this
// replica's committed state — the applied watermark. In serial mode it
// coincides with the ordered watermark; in parallel mode it may trail it
// by the apply pipeline depth. Safe from any goroutine.
func (n *Node) Committed() uint64 { return n.applied.Load() }

// Ordered returns the highest cycle whose total order this node has
// resolved (the protocol-internal commit watermark §7.1 paces against).
// Ordered() >= Committed(); they are equal in serial mode. Safe from any
// goroutine.
func (n *Node) Ordered() uint64 { return n.orderedW.Load() }

// Started returns the highest started cycle.
func (n *Node) Started() uint64 { return n.started }

// Stalled reports whether the node has halted (§6 stall semantics).
func (n *Node) Stalled() bool { return n.stalled }

// StallSuspected reports the liveness detector's verdict: true while
// the node has made no commit progress past Config.StallThreshold (the
// minority side of a partition), or has hard-halted (§6 stall or
// eviction). It clears automatically when commits resume. Safe from any
// goroutine, unlike Stalled.
func (n *Node) StallSuspected() bool {
	return n.stallDetected.Load() || n.halted.Load()
}

// ID returns the node's identity.
func (n *Node) ID() wire.NodeID { return n.cfg.Self }

// View exposes the node's membership view (for tests and tooling).
func (n *Node) View() *lot.View { return n.view }

// DebugCycle renders the internal state of one in-flight cycle; tests
// and tooling use it to diagnose stalls.
func (n *Node) DebugCycle(k uint64) string {
	c, ok := n.cycles[k]
	if !ok {
		return fmt.Sprintf("cycle %d: absent", k)
	}
	miss := ""
	if c.started && c.round == 1 {
		for _, m := range n.bc.Members() {
			if n.closedPeers[m] {
				continue
			}
			if _, ok := c.r1[m]; !ok {
				miss += fmt.Sprintf(" r1:%v", m)
			}
		}
	}
	if c.started && c.round >= 2 && c.round <= n.tree.Height {
		target := n.tree.Ancestor(n.sl, c.round)
		own := n.tree.Ancestor(n.sl, c.round-1)
		for _, u := range n.tree.Children(target) {
			if u != own && c.child[u] == nil {
				miss += " child:" + u
			}
		}
	}
	fd := ""
	for u, d := range c.fetchDeadline {
		fd += fmt.Sprintf(" %s@%v(a%d)", u, d, c.fetchAttempt[u])
	}
	return fmt.Sprintf("cycle %d: started=%v round=%d complete=%v r1=%d children=%d waiting=%d missing=[%s] fetches=[%s]",
		k, c.started, c.round, c.complete, len(c.r1), len(c.child), len(c.waiting), miss, fd)
}

// SetOnReply installs or replaces the per-request completion callback.
func (n *Node) SetOnReply(fn func(req *wire.Request, val []byte)) { n.cbs.OnReply = fn }

// SetOnReplyBatch installs or replaces the batched completion callback
// (see Callbacks.OnReplyBatch); it takes precedence over OnReply.
func (n *Node) SetOnReplyBatch(fn func(reqs []wire.Request, vals [][]byte)) {
	n.cbs.OnReplyBatch = fn
}

// SetOnCommit installs or replaces the cycle-commit callback.
func (n *Node) SetOnCommit(fn func(cycle uint64, order []*wire.Batch)) { n.cbs.OnCommit = fn }

// SetOnSessionReject installs or replaces the expired-session callback
// (see Callbacks.OnSessionReject).
func (n *Node) SetOnSessionReject(fn func(req *wire.Request)) { n.cbs.OnSessionReject = fn }

// SetOnEvents installs or replaces the per-cycle key-change event
// callback (see Callbacks.OnEvents). Install before driving the node:
// with ApplyWorkers > 0 the callback fires on the apply executor.
func (n *Node) SetOnEvents(fn func(cycle uint64, evs []wire.Event)) { n.cbs.OnEvents = fn }
