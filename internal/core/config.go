// Package core implements the Canopus consensus protocol (Rizvi, Wong,
// Keshav — CoNEXT 2017).
//
// A Node is an event-driven engine.Machine. Execution is divided into
// consensus cycles of h rounds (h = LOT height). In round 1 a node
// reliably broadcasts its pending request batch inside its super-leaf; in
// round i it obtains the states of its height-i ancestor's children —
// fetched once per super-leaf by representatives and re-broadcast to
// peers — and merges them by proposal number into the height-i state.
// After round h every live node holds the same total order (Theorem 1).
//
// Reads are never disseminated: a node buffers each read at its arrival
// position inside its own request set and answers it when the cycle that
// orders that set commits (§5), or immediately under the optional
// write-lease optimization (§7.2). Pipelining (§7.1) lets many cycles be
// in flight with commits strictly in cycle order.
package core

import (
	"time"

	"canopus/internal/lot"
	"canopus/internal/wire"
)

// BroadcastKind selects the intra-super-leaf reliable broadcast.
type BroadcastKind uint8

const (
	// BroadcastRaft is the software path: per-origin Raft groups (§4.3).
	BroadcastRaft BroadcastKind = iota
	// BroadcastSwitch uses hardware-assisted atomic broadcast.
	BroadcastSwitch
)

// Config parameterizes a Canopus node.
type Config struct {
	Tree *lot.Tree
	Self wire.NodeID

	// NumReps is the number of super-leaf representatives (§4.5).
	// Default 2: one failure does not delay remote fetches.
	NumReps int

	// Broadcast selects the reliable-broadcast implementation.
	Broadcast BroadcastKind

	// MaxBatch starts the next cycle early once this many client
	// requests are pending (§7.1, third trigger). Default 1000 (the
	// paper's multi-DC configuration).
	MaxBatch int

	// CycleInterval, when non-zero, starts a new cycle at least this
	// often while work is outstanding (§7.1, second trigger; the paper
	// uses 5ms across datacenters). Zero disables the timer: cycles are
	// purely self-clocked.
	CycleInterval time.Duration

	// MaxInFlight bounds concurrently executing cycles (§7.1). Default
	// 4; wide-area pipelines want RTT/CycleInterval or more. 1 disables
	// pipelining.
	MaxInFlight int

	// FetchTimeout is how long a representative waits for a vnode state
	// before retrying another emulator. Default 50ms; wide-area
	// deployments should exceed the largest one-way delay.
	FetchTimeout time.Duration

	// TickInterval drives heartbeats, elections and fetch-retry checks.
	// Default 5ms.
	TickInterval time.Duration

	// WriteLeases enables the §7.2 read optimization. Requires clients
	// to keep at most one outstanding request (the Paxos Quorum Leases
	// model the paper adopts).
	WriteLeases bool
	// LeaseTTL is the lease lifetime in cycles after activation.
	// Default 8.
	LeaseTTL int

	// RedundantFetch makes every representative fetch every missing
	// vnode state (the Figure 2 example behaviour) instead of splitting
	// vnodes across representatives by the §4.5 modulo rule.
	RedundantFetch bool

	// SessionIdleCycles is the replicated client-session idle bound: a
	// session with no committed mutation for this many consensus cycles
	// is reclaimed through consensus (an expiry update riding a
	// proposal), freeing its dedup state on every replica. Default 4096
	// cycles (~tens of seconds at millisecond cycle intervals); negative
	// disables idle reclamation.
	SessionIdleCycles int

	// Durability, when non-nil, receives every committed cycle's root
	// proposal for write-ahead logging (the internal/wal manager
	// implements it). In parallel mode (ApplyWorkers >= 1) appends happen
	// on the commit executor and Sync is called once per drained command
	// batch — group commit: one fsync covers every cycle the executor
	// found queued, and those cycles' client replies are withheld until
	// the Sync returns. In serial mode append+Sync run inside the machine
	// turn, one cycle per Sync (virtual-time simulations use an in-memory
	// FS, so this stays cheap and deterministic). A durability error is
	// fail-stop for the log: it is recorded (Node.DurabilityError), no
	// further appends are attempted, and the node keeps serving from
	// memory.
	Durability Durable

	// LeafTimeout, when non-zero, arms super-leaf eviction (the RCanopus
	// direction, see docs/ARCHITECTURE.md "Failure model"): a
	// representative whose cross-leaf fetch has gone unanswered for this
	// long past the cycle's start proposes evicting the silent leaf. A
	// quorum of the surviving leaves (a majority counted over ALL static
	// leaves) must seal the slot before a tombstone — the leaf's state
	// replaced by Leave updates for its members — resolves the cycle;
	// afterwards merges substitute the tombstone locally and consensus
	// continues without the dead leaf until its members rejoin.
	//
	// Zero (the default) disables eviction entirely: a dead super-leaf
	// stalls global consensus, the stock Canopus behaviour. Set it well
	// above FetchTimeout and the worst-case WAN round-trip; a false
	// suspicion costs an eviction plus re-join (an availability blip),
	// never divergence. All nodes must configure the same LeafTimeout and
	// MaxInFlight. Eviction assumes crash-stop or symmetric partitions
	// (both sides unreachable) — the fault model netsim injects.
	LeafTimeout time.Duration

	// StallThreshold, when positive, arms the liveness *detector*: a
	// node holding started-but-uncommitted cycles with no commit
	// progress for this long flags itself degraded (Node.StallSuspected,
	// the canopus_core_stalled gauge, and "degraded: stalled" on the
	// admin /healthz and /status). Detection is pure observation — no
	// messages are sent, no timers armed, no protocol decision changes —
	// so simulator replays stay bit-identical and nodes may configure it
	// independently. The flag clears by itself when commits resume
	// (e.g. after a partition heals). Zero (the default) keeps stock §6
	// semantics: a minority side stalls silently.
	StallThreshold time.Duration

	// ApplyWorkers selects the commit pipeline mode (see exec.go).
	//
	// 0 (default): serial — a committed cycle's writes apply and its
	// replies materialize inside the machine turn, exactly the historical
	// single-stage commit. Virtual-time simulation requires this mode
	// (byte-identical deterministic replay).
	//
	// >= 1: parallel — each commit's serial order-resolution stage still
	// runs in the machine turn, but the bulk apply and reply
	// materialization run on a per-node background executor, off the
	// machine lock, fanned across up to ApplyWorkers workers by
	// state-machine shard (capped at the shard count; a non-sharded
	// StateMachine gets one worker, which still pipelines apply against
	// the next cycle's consensus turns). OnReplyBatch/OnReply then fire
	// on the executor goroutine, and Committed() — the applied watermark
	// — may trail Ordered() by the pipeline depth. Forced to 0 when
	// WriteLeases is set (the §7.2 fast path reads committed state inside
	// the submit turn) or when the node has no state machine.
	ApplyWorkers int
}

func (c *Config) fill() {
	if c.NumReps <= 0 {
		c.NumReps = 2
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = 1000
	}
	if c.MaxInFlight <= 0 {
		c.MaxInFlight = 4
	}
	if c.FetchTimeout <= 0 {
		c.FetchTimeout = 50 * time.Millisecond
	}
	if c.TickInterval <= 0 {
		c.TickInterval = 5 * time.Millisecond
	}
	if c.LeaseTTL <= 0 {
		c.LeaseTTL = 8
	}
	if c.SessionIdleCycles == 0 {
		c.SessionIdleCycles = 4096
	}
}

// retention is how many committed cycles' states a node keeps to serve
// late fetches (see Node.recent).
func (c *Config) retention() uint64 { return uint64(c.MaxInFlight) + 16 }

// Durable is the write-ahead persistence hook the commit pipeline feeds
// (see Config.Durability). AppendCommit receives committed cycles
// strictly in cycle order with the cycle's root proposal — the total
// order every replica resolved — which must not be retained beyond the
// call unless encoded. Sync makes every appended record durable;
// replies for the covered cycles are released only after it returns.
// Both are called from one goroutine at a time (the machine turn in
// serial mode, the commit executor in parallel mode).
type Durable interface {
	AppendCommit(cycle uint64, root *wire.Proposal) error
	Sync() error
}

// StateMachine is the replicated application state Canopus drives. The
// kvstore package provides the standard implementation; ZKCanopus plugs
// in the znode tree. A StateMachine that additionally implements
// ShardedMachine (kvstore.Store does) lets the parallel commit pipeline
// fan a cycle's bulk apply across workers by key shard.
type StateMachine interface {
	// ApplyWrite applies one committed write.
	ApplyWrite(req *wire.Request)
	// Read returns the current value for key (nil if absent). Called
	// only at linearization points chosen by the protocol.
	Read(key uint64) []byte
	// Snapshot returns requests that rebuild the state (for the join
	// protocol's state transfer). The returned values must not alias
	// live store state: the protocol sends them while later writes keep
	// applying.
	Snapshot() []wire.Request
}

// TxnMachine is optionally implemented by StateMachines that support
// the event plane: per-key modification-cycle metadata (backing
// GuardCycleLE transactions), session-owned ephemeral keys, and the
// metadata-stamping write path. kvstore.Store implements it. When the
// node's StateMachine is a TxnMachine, every committed write goes
// through ApplyWriteAt (so modification cycles stay current) and
// multi-op transactions become available; otherwise transactions abort
// deterministically on every replica.
type TxnMachine interface {
	StateMachine
	// ApplyWriteAt is ApplyWrite plus metadata: the write is recorded as
	// of the given commit cycle, and a non-zero owner binds the key to
	// that session (ephemeral).
	ApplyWriteAt(req *wire.Request, cycle, owner uint64)
	// ModCycle returns the commit cycle that last wrote key (0 when
	// absent or untracked).
	ModCycle(key uint64) uint64
	// ExpireOwned deletes every key owned by the given session,
	// returning the deleted keys sorted ascending.
	ExpireOwned(owner uint64) []uint64
}

// Callbacks are optional observation hooks.
type Callbacks struct {
	// OnCommit fires when a cycle commits, with the cycle's total order.
	// Batches must be treated as read-only.
	OnCommit func(cycle uint64, order []*wire.Batch)
	// OnReply fires when a client request completes at its serving node
	// (write committed, or read executed), with the read result when
	// applicable.
	OnReply func(req *wire.Request, val []byte)
	// OnReplyBatch, when set, replaces OnReply: it fires once per group
	// of completions (typically an entire cycle's own request set) with
	// the completed requests in order and their read results (nil entries
	// for writes and read misses). Live servers use it to fan a cycle's
	// replies out to client connections without per-request callback
	// overhead. Both slices — and the value bytes they reference — are
	// only valid during the call and must not be retained. In serial mode
	// it fires inside the machine turn; with ApplyWorkers > 0 it fires on
	// the node's apply executor, off the machine lock, so consumers must
	// do their own synchronization.
	OnReplyBatch func(reqs []wire.Request, vals [][]byte)
	// OnStall fires once when the node detects its super-leaf has failed
	// (too few live members) and the consensus process halts (§6).
	OnStall func()
	// OnEvicted fires once when the node learns the rest of the cluster
	// has evicted its super-leaf (an Evicted notice): its state is no
	// longer part of consensus and it must restart through the join
	// protocol. When unset, OnStall fires instead.
	OnEvicted func()
	// OnEvents fires once per committed cycle, after the cycle's writes
	// have applied (and, with a Durability hook, after they are durable),
	// with the cycle's key-change events in committed total order:
	// plain writes and deletes, committed transaction ops, and the
	// automatic deletions of an expired session's ephemeral keys. Cycles
	// with no events still fire (evs empty or nil) so consumers can
	// advance their cycle watermark. The slice and the value bytes it
	// references are only valid during the call. In serial mode it fires
	// inside the machine turn; with ApplyWorkers > 0 it fires on the
	// node's apply executor, before the cycle's reply batch.
	OnEvents func(cycle uint64, evs []wire.Event)
	// OnSessionReject fires, at apply time, for an own-set mutation whose
	// session is not in the replicated table (expired or never
	// registered): the op was NOT applied, deterministically on every
	// replica, and the serving node must surface the expiry instead of a
	// normal completion. The request must not be retained.
	OnSessionReject func(req *wire.Request)
}
