package core

import (
	"testing"
	"time"

	"canopus/internal/lincheck"
	"canopus/internal/wire"
)

func TestWriteLeaseFastReads(t *testing.T) {
	cfg := Config{WriteLeases: true}
	tc := newTestCluster(t, clusterOpts{racks: 2, perRack: 3, cfg: cfg})
	// A read with no lease in flight answers immediately (no cycle).
	tc.submitAt(time.Millisecond, 2, rd(9, 1, 77))
	tc.run(5 * time.Millisecond)
	if got := len(tc.replies[2]); got != 1 {
		t.Fatalf("fast read did not answer immediately: %d replies", got)
	}
	if tc.nodes[2].Started() != 0 {
		t.Fatal("fast read started a consensus cycle")
	}
}

func TestWriteLeaseAcquisitionAndWrite(t *testing.T) {
	cfg := Config{WriteLeases: true}
	tc := newTestCluster(t, clusterOpts{racks: 2, perRack: 3, cfg: cfg})
	tc.submitAt(time.Millisecond, 0, wr(1, 1, 50, 5))
	tc.run(2 * time.Second)
	// The write commits after lease acquisition (extra cycle).
	for i, st := range tc.stores {
		if v := st.Read(50); len(v) != 8 || v[0] != 5 {
			t.Fatalf("node %d: key 50 = %v", i, v)
		}
	}
	if got := len(tc.replies[0]); got != 1 {
		t.Fatalf("write replies = %d", got)
	}
}

func TestWriteLeaseDefersConflictingReads(t *testing.T) {
	cfg := Config{WriteLeases: true, LeaseTTL: 4}
	tc := newTestCluster(t, clusterOpts{racks: 2, perRack: 3, cfg: cfg})
	tc.submitAt(time.Millisecond, 0, wr(1, 1, 50, 5))
	// While the lease is active, a read at another node is deferred to a
	// cycle boundary — and must see the committed write.
	tc.submitAt(400*time.Millisecond, 3, rd(2, 1, 50))
	tc.run(3 * time.Second)
	reps := tc.replies[3]
	if len(reps) != 1 || reps[0].req.Op != wire.OpRead {
		t.Fatalf("read replies = %v", reps)
	}
	if v := reps[0].val; len(v) != 8 || v[0] != 5 {
		t.Fatalf("deferred read saw %v, want 5", v)
	}
	tc.requireAgreement()
}

// TestLinearizableHistory replays a mixed read/write run through the
// Wing-Gong checker: the §5 construction must produce linearizable
// histories even though reads never travel on the wire.
func TestLinearizableHistory(t *testing.T) {
	tc := newTestCluster(t, clusterOpts{racks: 2, perRack: 3})
	type inflight struct {
		invoke time.Duration
		kind   lincheck.OpKind
		key    uint64
		wrote  uint64
	}
	pending := make(map[[2]uint64]inflight) // (client,seq) -> op
	var history []lincheck.Op
	for i := range tc.nodes {
		id := wire.NodeID(i)
		tc.nodes[i].SetOnReply(func(req *wire.Request, val []byte) {
			k := [2]uint64{req.Client, req.Seq}
			op, ok := pending[k]
			if !ok {
				return
			}
			delete(pending, k)
			rec := lincheck.Op{
				Kind: op.kind, Key: op.key,
				Invoke: int64(op.invoke), Return: int64(tc.sim.Now()),
			}
			if op.kind == lincheck.OpWrite {
				rec.Value = op.wrote
			} else if len(val) == 8 {
				rec.Value = uint64(val[0])
			}
			history = append(history, rec)
			_ = id
		})
	}
	submit := func(at time.Duration, node wire.NodeID, req wire.Request, kind lincheck.OpKind, wrote uint64) {
		tc.sim.At(at, func() {
			pending[[2]uint64{req.Client, req.Seq}] = inflight{invoke: at, kind: kind, key: req.Key, wrote: wrote}
			tc.nodes[node].Submit(req)
		})
	}
	// Clients at different nodes interleave writes and reads on two keys.
	seq := map[uint64]uint64{}
	next := func(c uint64) uint64 { seq[c]++; return seq[c] }
	for step := 0; step < 12; step++ {
		at := time.Duration(step+1) * 7 * time.Millisecond
		switch step % 4 {
		case 0:
			submit(at, 0, wr(1, next(1), 10, uint64(step+1)), lincheck.OpWrite, uint64(step+1))
		case 1:
			submit(at, 3, rd(2, next(2), 10), lincheck.OpRead, 0)
		case 2:
			submit(at, 5, wr(3, next(3), 11, uint64(step+1)), lincheck.OpWrite, uint64(step+1))
		case 3:
			submit(at, 1, rd(4, next(4), 11), lincheck.OpRead, 0)
		}
	}
	tc.run(3 * time.Second)
	if len(history) != 12 {
		t.Fatalf("history has %d ops, want 12", len(history))
	}
	if !lincheck.Check(history) {
		t.Fatalf("history is not linearizable: %+v", history)
	}
}

func TestRedundantFetchMode(t *testing.T) {
	cfg := Config{RedundantFetch: true, NumReps: 2}
	tc := newTestCluster(t, clusterOpts{racks: 3, perRack: 3, cfg: cfg})
	for i := 0; i < 9; i++ {
		tc.submitAt(time.Millisecond, wire.NodeID(i), wr(uint64(i+1), 1, uint64(i), 1))
	}
	tc.run(time.Second)
	for i, st := range tc.stores {
		if st.LogLen() != 9 {
			t.Fatalf("node %d applied %d, want 9", i, st.LogLen())
		}
	}
	tc.requireAgreement()
}
