package core

import (
	"errors"
	"testing"
	"time"

	"canopus/internal/kvstore"
	"canopus/internal/wire"
)

// fakeDurable records the Durable calls a node makes, keeping each
// root's encoded bytes — what a real WAL would persist — so the test can
// replay them into a fresh replica.
type fakeDurable struct {
	cycles  []uint64
	roots   [][]byte
	syncs   int
	synced  int // records covered by a Sync so far
	syncErr error
}

func (f *fakeDurable) AppendCommit(cycle uint64, root *wire.Proposal) error {
	f.cycles = append(f.cycles, cycle)
	f.roots = append(f.roots, root.AppendTo(nil))
	return nil
}

func (f *fakeDurable) Sync() error {
	if f.syncErr != nil {
		return f.syncErr
	}
	f.syncs++
	f.synced = len(f.cycles)
	return nil
}

// durableCluster builds a sim cluster with one fakeDurable per node.
func durableCluster(t *testing.T, o clusterOpts) (*testCluster, []*fakeDurable) {
	t.Helper()
	tc := newTestCluster(t, o)
	fakes := make([]*fakeDurable, len(tc.nodes))
	for i, n := range tc.nodes {
		fakes[i] = &fakeDurable{}
		n.cfg.Durability = fakes[i]
	}
	return tc, fakes
}

// TestDurableLogMatchesCommitOrder pins the core logging contract: every
// committed cycle is appended exactly once, contiguously, in commit
// order, each append covered by a Sync before the turn ends (serial
// mode), and the logged roots replay into a bit-identical replica.
func TestDurableLogMatchesCommitOrder(t *testing.T) {
	tc, fakes := durableCluster(t, clusterOpts{racks: 2, perRack: 3})
	for i := 0; i < 40; i++ {
		tc.submitAt(time.Duration(1+i*3)*time.Millisecond, wire.NodeID(i%6), wr(uint64(100+i%6), uint64(1+i/6), uint64(i%11), uint64(i)))
	}
	tc.run(2 * time.Second)
	tc.requireAgreement()

	for i, f := range fakes {
		if len(f.cycles) == 0 {
			t.Fatalf("node %d logged nothing", i)
		}
		// Contiguous from 1, mirroring the OnCommit stream.
		for j, c := range f.cycles {
			if c != uint64(j+1) {
				t.Fatalf("node %d: append %d has cycle %d (log not contiguous)", i, j, c)
			}
		}
		if got, want := f.cycles, tc.commits[wire.NodeID(i)]; len(got) != len(want) {
			t.Fatalf("node %d logged %d cycles, committed %d", i, len(got), len(want))
		}
		// Serial mode syncs inside every turn that appended: no record is
		// left unsynced once the run quiesces, so an in-sim crash loses
		// nothing that was committed.
		if f.synced != len(f.cycles) {
			t.Fatalf("node %d: %d of %d records unsynced at quiesce", i, len(f.cycles)-f.synced, len(f.cycles))
		}
		if f.syncs == 0 || f.syncs > len(f.cycles) {
			t.Fatalf("node %d: %d syncs for %d records", i, f.syncs, len(f.cycles))
		}
	}

	// The log IS the replica: decoding and replaying node 0's records
	// into a fresh node must reproduce its store exactly. This is the
	// invariant recovery stands on.
	f := fakes[0]
	st := kvstore.NewLogged()
	node := NewNode(Config{Tree: tc.tree, Self: 0}, st, Callbacks{})
	for j := range f.cycles {
		msg, _, err := wire.Decode(f.roots[j])
		if err != nil {
			t.Fatalf("record %d does not decode: %v", j, err)
		}
		if err := node.ReplayCommit(f.cycles[j], msg.(*wire.Proposal)); err != nil {
			t.Fatalf("replay cycle %d: %v", f.cycles[j], err)
		}
	}
	live := tc.stores[0]
	if st.LogLen() != live.LogLen() || st.LogDigest() != live.LogDigest() || st.StateDigest() != live.StateDigest() {
		t.Fatalf("replayed replica diverges: len %d/%d logdigest %x/%x state %x/%x",
			st.LogLen(), live.LogLen(), st.LogDigest(), live.LogDigest(), st.StateDigest(), live.StateDigest())
	}
	if node.Committed() != f.cycles[len(f.cycles)-1] {
		t.Fatalf("replayed watermark %d, logged through %d", node.Committed(), f.cycles[len(f.cycles)-1])
	}
}

// TestDurabilityFailStop pins the error policy: a failing fsync latches
// DurabilityError, stops further appends, and the node keeps serving
// from memory — commits and replica agreement continue.
func TestDurabilityFailStop(t *testing.T) {
	tc, fakes := durableCluster(t, clusterOpts{racks: 1, perRack: 3})
	broken := errors.New("disk on fire")
	fakes[0].syncErr = broken

	for i := 0; i < 20; i++ {
		tc.submitAt(time.Duration(1+i*5)*time.Millisecond, wire.NodeID(i%3), wr(uint64(200+i%3), uint64(1+i/3), uint64(i), uint64(i)))
	}
	tc.run(time.Second)
	tc.requireAgreement()

	if err := tc.nodes[0].DurabilityError(); !errors.Is(err, broken) {
		t.Fatalf("DurabilityError = %v, want the injected fsync failure", err)
	}
	// Fail-stop: exactly one append ever reached the broken log (the one
	// whose Sync failed); the node did not keep writing.
	if len(fakes[0].cycles) != 1 {
		t.Fatalf("broken log saw %d appends after the first failed Sync", len(fakes[0].cycles))
	}
	// Serving from memory: the node kept committing past the failure.
	if got := tc.nodes[0].Committed(); got < 2 {
		t.Fatalf("node 0 committed only to %d after the durability failure", got)
	}
	// Healthy peers were unaffected.
	for i := 1; i < 3; i++ {
		if err := tc.nodes[i].DurabilityError(); err != nil {
			t.Fatalf("node %d durability error: %v", i, err)
		}
		if fakes[i].synced != len(fakes[i].cycles) || len(fakes[i].cycles) == 0 {
			t.Fatalf("node %d log: %d records, %d synced", i, len(fakes[i].cycles), fakes[i].synced)
		}
	}
}
