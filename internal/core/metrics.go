package core

import (
	"sync/atomic"

	"canopus/internal/metrics"
)

// nodeStats are the node's always-on operational counters: atomic
// increments at protocol events, cheap enough to maintain unconditionally
// (simulations included), readable from any goroutine. RegisterMetrics
// exports them; nothing on the hot path ever looks an instrument up by
// name or allocates for one.
type nodeStats struct {
	// cycleStarts counts startCycle calls; with cycleCommits and the
	// run's wall time it gives the cycle rate.
	cycleStarts  atomic.Uint64
	cycleCommits atomic.Uint64
	// fetchRetries counts cross-super-leaf fetches re-issued after a
	// timeout (§4.6's emulator rotation) — the live signal that a remote
	// super-leaf is slow or partitioned.
	fetchRetries atomic.Uint64
	// stalls counts transitions into the §6 stalled state.
	stalls atomic.Uint64
	// stallsDetected counts the StallThreshold liveness detector's
	// trips (no commit progress past the threshold); it can exceed 1 —
	// the flag clears when commits resume.
	stallsDetected atomic.Uint64
	// replayed counts cycles re-committed from the WAL during recovery.
	replayed atomic.Uint64
	// leasesActive mirrors len(n.leases) (machine-turn state) at every
	// lease-table mutation so observers need no lock.
	leasesActive atomic.Uint64
	// txnCommits/txnAborts count evaluated transactions by verdict
	// (duplicates resolve from cache and count nothing).
	txnCommits atomic.Uint64
	txnAborts  atomic.Uint64
	// leafEvictions counts eviction rounds this node resolved with a
	// tombstone (leaf.go); leafReadmissions counts evicted leaves
	// re-admitted by a member's rejoin.
	leafEvictions    atomic.Uint64
	leafReadmissions atomic.Uint64
	// evictedSelf counts Evicted notices acted on (0 or 1 per process
	// life: the node halts until restarted through the join protocol).
	evictedSelf atomic.Uint64
	// leavesDead mirrors len(n.leafDeadAt) — super-leaves currently
	// excluded from the merge.
	leavesDead atomic.Int64
}

// depth reports the apply executor's command backlog (plans and reads
// accepted but not yet picked up); 0 in serial mode.
func (e *executor) depth() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return len(e.queue)
}

// RegisterMetrics exports the node's operational instruments into reg
// under the canopus_core_* names, each carrying the given constant
// labels. All instruments are sampled views over state the node already
// maintains (atomic watermarks and counters), so registration adds
// nothing to any hot path. Safe to call with a nil registry.
func (n *Node) RegisterMetrics(reg *metrics.Registry, labels ...metrics.Label) {
	reg.CounterFunc("canopus_core_cycles_started_total",
		"Consensus cycles this node has started.",
		n.stats.cycleStarts.Load, labels...)
	reg.CounterFunc("canopus_core_cycles_committed_total",
		"Consensus cycles whose total order this node has resolved.",
		n.stats.cycleCommits.Load, labels...)
	reg.GaugeFunc("canopus_core_cycle_ordered",
		"Ordered watermark: highest cycle with a resolved total order.",
		func() float64 { return float64(n.Ordered()) }, labels...)
	reg.GaugeFunc("canopus_core_cycle_applied",
		"Applied watermark: highest cycle visible in committed state.",
		func() float64 { return float64(n.Committed()) }, labels...)
	reg.GaugeFunc("canopus_core_apply_lag_cycles",
		"Commit-pipeline depth: ordered watermark minus applied watermark.",
		func() float64 { return float64(n.Ordered() - n.Committed()) }, labels...)
	reg.GaugeFunc("canopus_core_apply_queue_depth",
		"Apply-executor commands accepted but not yet picked up (0 in serial mode).",
		func() float64 {
			if n.exec == nil {
				return 0
			}
			return float64(n.exec.depth())
		}, labels...)
	reg.GaugeFunc("canopus_core_sessions_active",
		"Replicated client sessions in the dedup table.",
		func() float64 { return float64(n.sessions.Occupancy()) }, labels...)
	reg.GaugeFunc("canopus_core_leases_active",
		"Keys with an active write lease (§7.2).",
		func() float64 { return float64(n.stats.leasesActive.Load()) }, labels...)
	reg.CounterFunc("canopus_core_fetch_retries_total",
		"Cross-super-leaf fetches re-issued after a timeout (§4.6 emulator rotation).",
		n.stats.fetchRetries.Load, labels...)
	reg.CounterFunc("canopus_core_stalls_total",
		"Transitions into the stalled state (§6).",
		n.stats.stalls.Load, labels...)
	reg.GaugeFunc("canopus_core_stalled",
		"1 while the node is hard-halted (§6 stall/eviction) or the StallThreshold detector sees no commit progress.",
		func() float64 {
			if n.StallSuspected() {
				return 1
			}
			return 0
		}, labels...)
	reg.CounterFunc("canopus_core_stall_detected_total",
		"StallThreshold liveness-detector trips (clears on resumed commits; counts each trip).",
		n.stats.stallsDetected.Load, labels...)
	reg.CounterFunc("canopus_core_replayed_cycles_total",
		"Cycles re-committed from the WAL during crash recovery.",
		n.stats.replayed.Load, labels...)
	reg.CounterFunc("canopus_core_txn_commits_total",
		"Transactions whose guards all held (applied atomically).",
		n.stats.txnCommits.Load, labels...)
	reg.CounterFunc("canopus_core_txn_aborts_total",
		"Transactions aborted by a failing guard (nothing applied).",
		n.stats.txnAborts.Load, labels...)
	reg.CounterFunc("canopus_core_leaf_evictions_total",
		"Super-leaf eviction rounds this node resolved with a tombstone.",
		n.stats.leafEvictions.Load, labels...)
	reg.CounterFunc("canopus_core_leaf_readmissions_total",
		"Evicted super-leaves re-admitted by a member's rejoin.",
		n.stats.leafReadmissions.Load, labels...)
	reg.CounterFunc("canopus_core_evicted_self_total",
		"Evicted notices this node acted on (halt until re-join).",
		n.stats.evictedSelf.Load, labels...)
	reg.GaugeFunc("canopus_core_leaves_dead",
		"Super-leaves currently evicted from the merge in this node's view.",
		func() float64 { return float64(n.stats.leavesDead.Load()) }, labels...)
}
