package core

import (
	"bytes"
	"fmt"
	"time"

	"canopus/internal/wire"
)

// Crash-restart recovery. A node with a Durability hook persists every
// committed cycle's root proposal (the total order every replica
// resolved); after a full-cluster power loss each node rebuilds from its
// own disk instead of the join protocol's state transfer:
//
//  1. The wal manager restores the state machine from the latest
//     snapshot and calls RestoreState with the snapshot's cycle and
//     session table.
//  2. It replays the WAL tail through ReplayCommit, one committed root
//     per cycle, which re-runs the order-resolution path (session
//     classification included) and re-applies the writes — bit-identical
//     to the original commits, because both consume the same total order
//     with the same session table.
//  3. Init starts the node normally. Durable watermarks differ across
//     replicas by the group-commit lag, so the node marked `recovered`
//     closes the gap through root catch-up (rounds.go): a cycle stuck in
//     round 1 at committed+1 past the fetch timeout fetches the ROOT
//     vnode state — which peers serve from their retained recent window
//     — and installs it as the committed result directly.
//
// Scope: recovery is the cold-start path. Membership and lease updates
// in replayed roots are intentionally NOT re-applied — the view resets
// to the configured tree (a full-cluster restart brings everyone back)
// and leases are cycle-bounded ephemera that expired with the outage. A
// single node restarting into a live cluster still uses the join
// protocol: its peers committed its Leave, and only a Join update
// re-admits it to the broadcast groups.

// RestoreState installs recovered baseline state. Must be called before
// Init, after the caller restored the state machine's contents: it sets
// every watermark to cycle, replaces the session table, and marks the
// node recovered (enabling root catch-up).
func (n *Node) RestoreState(cycle uint64, sessions []wire.SessionState) {
	n.committed = cycle
	n.started = cycle
	n.orderedW.Store(cycle)
	n.applied.Store(cycle)
	if sessions != nil {
		n.sessions.Restore(sessions)
	}
	n.recovered = true
}

// ReplayCommit re-commits one durable cycle from its logged root
// proposal. Must be called before Init, in cycle order. The write set
// and session-table evolution reproduce the original commit exactly;
// completion records are not materialized (their clients did not survive
// the crash) and OnCommit does not fire (the cycle was already counted
// before the outage). The root is retained in the recent-state window so
// lagging peers can root-catch-up from this node after restart.
func (n *Node) ReplayCommit(cycle uint64, root *wire.Proposal) error {
	if cycle != n.committed+1 {
		return fmt.Errorf("core: replay of cycle %d at watermark %d (want %d)", cycle, n.committed, n.committed+1)
	}
	n.applySessions(cycle, root.Sessions)
	plan := n.resolveOrder(cycle, root.Batches)
	plan.expired = append(plan.expired, n.expiredScratch...)
	n.gcSessions(cycle)
	n.committed = cycle
	n.started = cycle
	n.orderedW.Store(cycle)
	n.execPlanOps(plan)
	n.applied.Store(cycle)
	n.freePlan(plan)

	states := make([]*wire.Proposal, n.tree.Height+1)
	states[n.tree.Height] = root
	n.recent[cycle] = states
	if old := cycle - n.retention(); old > 0 && old <= cycle {
		delete(n.recent, old)
	}
	n.recovered = true
	n.stats.replayed.Add(1)
	return nil
}

// Recovered reports whether this node restarted from durable state.
func (n *Node) Recovered() bool { return n.recovered }

// DurabilityError returns the first error the Durability hook reported,
// or nil. Logging is fail-stop: after an error no further appends are
// attempted and the node serves from memory only. Safe from any
// goroutine.
func (n *Node) DurabilityError() error {
	if err, ok := n.durErr.Load().(error); ok {
		return err
	}
	return nil
}

// appendDurable logs one committed cycle's root, returning whether the
// record was accepted (and therefore owes a Sync before its replies).
func (n *Node) appendDurable(cycle uint64, root *wire.Proposal) bool {
	d := n.cfg.Durability
	if d == nil || n.durFailed || root == nil {
		return false
	}
	if err := d.AppendCommit(cycle, root); err != nil {
		n.durFailed = true
		n.durErr.Store(err)
		return false
	}
	return true
}

// syncDurable ends a group commit; on error logging fail-stops.
func (n *Node) syncDurable() {
	if n.durFailed {
		return
	}
	if err := n.cfg.Durability.Sync(); err != nil {
		n.durFailed = true
		n.durErr.Store(err)
	}
}

// rootVNode names the LOT root — the vnode whose state IS the cycle's
// committed result. It is never fetched by the normal rounds (only the
// root's children are), so a root-state message unambiguously belongs to
// the catch-up path.
func (n *Node) rootVNode() string { return n.tree.Ancestor(n.sl, n.tree.Height) }

// onRootState installs a fetched committed root: the recovered node was
// stuck in round 1 for this cycle because its peers are already past it
// and drop its round-1 proposals as stale, so consensus can never finish
// locally — but the cycle's result is already agreed, and installing the
// root verbatim commits exactly what every other replica committed.
func (n *Node) onRootState(p *wire.Proposal) {
	if !n.recovered || p.Cycle != n.committed+1 {
		return
	}
	c, ok := n.cycles[p.Cycle]
	if !ok || !c.started || c.complete || c.round > 1 {
		return // progressing normally; the broadcast path will commit it
	}
	// This node's post-restart request set cannot be in the agreed order
	// (peers dropped the proposal carrying it), so requeue it for a later
	// cycle — unless the order does contain a matching own batch, which
	// means round 1 actually completed elsewhere with our proposal and
	// the normal resolve path must consume the set.
	if set := n.proposed[p.Cycle]; set != nil && !orderContainsSet(p.Batches, n.cfg.Self, set) {
		n.requeueSet(p.Cycle, set)
	}
	if DebugHook != nil {
		DebugHook(n.cfg.Self, "root-catchup", p.Cycle, p.VNode)
	}
	c.states[n.tree.Height] = p
	c.round = n.tree.Height + 1
	c.complete = true
	n.tryCommit()
	// Chain: if the next cycle is already round-1-stuck the same way,
	// fetch its root immediately instead of waiting out another timeout.
	if c2, ok := n.cycles[n.committed+1]; ok && c2.started && !c2.complete && c2.round <= 1 {
		n.sendFetch(c2, n.rootVNode())
	}
}

// requeueSet returns a proposed-but-never-ordered request set to the
// accumulation window, ahead of newer arrivals, so the requests ride the
// next cycle this node starts.
func (n *Node) requeueSet(cyc uint64, set *ownSet) {
	delete(n.proposed, cyc)
	reqs := make([]wire.Request, 0, len(set.reqs)+len(n.accum.reqs))
	reqs = append(append(reqs, set.reqs...), n.accum.reqs...)
	arrivals := make([]time.Duration, 0, len(set.arrivals)+len(n.accum.arrivals))
	arrivals = append(append(arrivals, set.arrivals...), n.accum.arrivals...)
	n.accum.reqs, n.accum.arrivals = reqs, arrivals
	n.accum.writes += set.writes
	clear(set.reqs)
	clear(set.arrivals)
	set.reqs, set.arrivals, set.writes = set.reqs[:0], set.arrivals[:0], 0
	ownSetPool.Put(set)
}

// orderContainsSet reports whether the committed order includes a batch
// from self whose writes match the given set's writes — i.e. the set
// this node proposed for the cycle is the one consensus ordered.
func orderContainsSet(order []*wire.Batch, self wire.NodeID, set *ownSet) bool {
	for _, b := range order {
		if b.Origin != self {
			continue
		}
		i := 0
		match := true
		for j := range set.reqs {
			if !set.reqs[j].Op.Mutates() {
				continue
			}
			if i >= len(b.Reqs) || !sameRequest(&b.Reqs[i], &set.reqs[j]) {
				match = false
				break
			}
			i++
		}
		if match && i == len(b.Reqs) {
			return true
		}
	}
	return false
}

func sameRequest(a, b *wire.Request) bool {
	return a.Client == b.Client && a.Seq == b.Seq && a.Op == b.Op &&
		a.Key == b.Key && bytes.Equal(a.Val, b.Val)
}
