package core

import (
	"testing"
	"time"

	"canopus/internal/kvstore"
	"canopus/internal/netsim"
	"canopus/internal/wire"
)

// Eviction tests: super-leaf fault tolerance with Config.LeafTimeout
// armed (leaf.go). The clusters are 3 super-leaves of 3 — the smallest
// topology where two leaves form a majority over all static leaves and
// can evict the third.

const testLeafTimeout = 600 * time.Millisecond

// evictionCfg arms leaf eviction with timings suited to the simulated
// single-DC network.
func evictionCfg() Config {
	return Config{LeafTimeout: testLeafTimeout, FetchTimeout: 50 * time.Millisecond}
}

// restartAsJoiner replaces node id with a fresh protocol-level joiner
// (empty store, rejoining through the join protocol), keeping the
// eviction-restart callback installed in case it is evicted again.
func (tc *testCluster) restartAsJoiner(id wire.NodeID, cfg Config, onEvicted func(tc *testCluster, id wire.NodeID)) {
	cfg.Tree = tc.tree
	cfg.Self = id
	st := kvstore.NewLogged()
	tc.stores[id] = st
	cbs := Callbacks{}
	if onEvicted != nil {
		cbs.OnEvicted = func() { onEvicted(tc, id) }
	}
	joiner := NewJoiner(cfg, st, cbs)
	tc.nodes[id] = joiner
	if tc.runner.Alive(id) {
		tc.runner.Crash(id)
	}
	tc.runner.Restart(id, joiner)
}

// requireAgreementAmong asserts the given replicas applied identical
// write sequences.
func (tc *testCluster) requireAgreementAmong(ids []wire.NodeID) {
	tc.t.Helper()
	ref := ids[0]
	for _, id := range ids[1:] {
		if tc.stores[id].LogLen() != tc.stores[ref].LogLen() ||
			tc.stores[id].LogDigest() != tc.stores[ref].LogDigest() {
			tc.t.Fatalf("replica divergence: node %d (len %d) vs node %d (len %d)",
				id, tc.stores[id].LogLen(), ref, tc.stores[ref].LogLen())
		}
	}
}

// TestLeafPartitionEviction: a whole super-leaf partitioned away stalls
// the cluster in stock Canopus; with LeafTimeout armed the surviving
// majority of leaves evicts it and consensus resumes without it.
func TestLeafPartitionEviction(t *testing.T) {
	tc := newTestCluster(t, clusterOpts{racks: 3, perRack: 3, cfg: evictionCfg()})
	survivors := []wire.NodeID{0, 1, 2, 3, 4, 5}
	leaf2 := []wire.NodeID{6, 7, 8}

	for i := 0; i < 6; i++ {
		tc.submitAt(time.Millisecond, wire.NodeID(i), wr(uint64(i+1), 1, uint64(i), uint64(i)))
	}
	tc.runner.InstallFaults(netsim.FaultPlan{
		Partitions: []netsim.PartitionFault{netsim.LeafPartition(300*time.Millisecond, 0, leaf2, survivors)},
	}, nil)
	// Post-partition traffic: must commit once the dead leaf is evicted.
	for s := 2; s <= 6; s++ {
		tc.submitAt(time.Duration(s)*400*time.Millisecond, 0, wr(1, uint64(s), uint64(100+s), uint64(s)))
	}
	tc.run(4 * time.Second)

	for _, id := range survivors {
		if tc.nodes[id].Stalled() {
			t.Fatalf("survivor %d stalled despite eviction", id)
		}
		if got := tc.stores[id].LogLen(); got != 11 {
			t.Fatalf("node %d applied %d writes, want 11 (6 pre + 5 post partition)", id, got)
		}
		for _, dead := range leaf2 {
			if tc.nodes[id].View().Alive(dead) {
				t.Fatalf("node %d still considers evicted node %d alive", id, dead)
			}
		}
	}
	tc.requireAgreementAmong(survivors)

	// The eviction is observable: some survivor resolved a tombstone, and
	// every survivor's leaf health reports leaf 2 evicted.
	var evictions uint64
	for _, id := range survivors {
		evictions += tc.nodes[id].stats.leafEvictions.Load()
	}
	if evictions == 0 {
		t.Fatal("no node recorded a resolved eviction round")
	}
	lh := tc.nodes[0].LeafHealth()
	if len(lh) != 3 || !lh[2].Evicted || lh[2].EvictedAt == 0 {
		t.Fatalf("leaf health = %+v, want leaf 2 evicted with a cycle mark", lh)
	}
	if lh[0].Evicted || lh[1].Evicted {
		t.Fatalf("live leaves reported evicted: %+v", lh)
	}
}

// TestLeafPartitionHealReadmission: after the partition heals, the
// evicted members learn their fate from Evicted notices, restart through
// the join protocol (cross-leaf sponsorship resurrects the first one),
// and the leaf is re-admitted to the merge with identical state.
func TestLeafPartitionHealReadmission(t *testing.T) {
	restart := func(tc *testCluster, id wire.NodeID) {
		tc.sim.After(100*time.Millisecond, func() {
			tc.restartAsJoiner(id, evictionCfg(), nil)
		})
	}
	tc := newTestCluster(t, clusterOpts{racks: 3, perRack: 3, cfg: evictionCfg(), onEvicted: restart})
	survivors := []wire.NodeID{0, 1, 2, 3, 4, 5}
	leaf2 := []wire.NodeID{6, 7, 8}

	for i := 0; i < 6; i++ {
		tc.submitAt(time.Millisecond, wire.NodeID(i), wr(uint64(i+1), 1, uint64(i), uint64(i)))
	}
	tc.runner.InstallFaults(netsim.FaultPlan{
		Partitions: []netsim.PartitionFault{
			netsim.LeafPartition(300*time.Millisecond, 2500*time.Millisecond, leaf2, survivors),
		},
	}, nil)
	tc.submitAt(1500*time.Millisecond, 0, wr(1, 2, 100, 2)) // commits via eviction
	tc.submitAt(8*time.Second, 1, wr(2, 2, 101, 3))         // after re-admission
	tc.run(12 * time.Second)

	for _, id := range leaf2 {
		if tc.nodes[id].Stalled() {
			t.Fatalf("rejoined node %d stalled", id)
		}
		if tc.nodes[id].Committed() == 0 {
			t.Fatalf("rejoined node %d never committed", id)
		}
	}
	// Full-state convergence (joiners snapshot, so compare state digests).
	want := tc.stores[0].StateDigest()
	for id := 1; id < 9; id++ {
		if got := tc.stores[id].StateDigest(); got != want {
			t.Fatalf("node %d state digest %x, want %x", id, got, want)
		}
	}
	lh := tc.nodes[0].LeafHealth()
	if lh[2].Evicted {
		t.Fatalf("leaf 2 still marked evicted after re-admission: %+v", lh[2])
	}
	var readmissions uint64
	for _, id := range survivors {
		readmissions += tc.nodes[id].stats.leafReadmissions.Load()
	}
	if readmissions == 0 {
		t.Fatal("no survivor recorded the leaf re-admission")
	}
}

// TestLeafMajorityCrashEviction: crashing a majority of one leaf stalls
// its survivor (broadcast quorum loss) and silences the leaf. The other
// leaves evict it; the survivor learns via an Evicted notice and rejoins
// empty-handed through a cross-leaf sponsor; the crashed members rejoin
// later through the survivor. Recovery of global consensus is bounded by
// roughly LeafTimeout plus one eviction round.
func TestLeafMajorityCrashEviction(t *testing.T) {
	restart := func(tc *testCluster, id wire.NodeID) {
		tc.sim.After(100*time.Millisecond, func() {
			tc.restartAsJoiner(id, evictionCfg(), nil)
		})
	}
	tc := newTestCluster(t, clusterOpts{racks: 3, perRack: 3, cfg: evictionCfg(), onEvicted: restart})
	leaf2 := []wire.NodeID{6, 7, 8}

	for i := 0; i < 6; i++ {
		tc.submitAt(time.Millisecond, wire.NodeID(i), wr(uint64(i+1), 1, uint64(i), uint64(i)))
	}
	// Crash 6 and 7 (a majority of leaf 2) at 300ms, no auto-restart.
	tc.runner.InstallFaults(netsim.FaultPlan{
		Crashes: netsim.LeafMajorityCrash(300*time.Millisecond, leaf2, 0),
	}, nil)
	const faultAt = 300 * time.Millisecond
	tc.submitAt(400*time.Millisecond, 0, wr(1, 2, 100, 2))

	// Track when the post-fault write lands: the recovery bound.
	var recoveredAt time.Duration
	tc.sim.At(350*time.Millisecond, func() {
		tc.nodes[1].SetOnCommit(func(cycle uint64, order []*wire.Batch) {
			if recoveredAt == 0 && tc.stores[1].LogLen() >= 7 {
				recoveredAt = tc.sim.Now()
			}
		})
	})
	// Restart the crashed majority as joiners well after the eviction.
	tc.sim.At(3*time.Second, func() { tc.restartAsJoiner(6, evictionCfg(), nil) })
	tc.sim.At(3*time.Second, func() { tc.restartAsJoiner(7, evictionCfg(), nil) })
	tc.submitAt(6*time.Second, 1, wr(2, 2, 101, 3))
	tc.run(9 * time.Second)

	if recoveredAt == 0 {
		t.Fatal("post-fault write never committed: eviction did not restore liveness")
	}
	if bound := faultAt + testLeafTimeout + 2*time.Second; recoveredAt > bound {
		t.Fatalf("recovery took until %v, want <= %v (timeout + one eviction round)", recoveredAt, bound)
	}
	for _, id := range leaf2 {
		if !tc.runner.Alive(id) || tc.nodes[id].Stalled() {
			t.Fatalf("leaf-2 node %d did not rejoin (alive=%v)", id, tc.runner.Alive(id))
		}
	}
	want := tc.stores[0].StateDigest()
	for id := 1; id < 9; id++ {
		if got := tc.stores[id].StateDigest(); got != want {
			t.Fatalf("node %d state digest %x, want %x", id, got, want)
		}
	}
}

// TestTwoLeavesCannotEvict: with two super-leaves neither side can form
// a majority of all static leaves, so a partition must stall both sides
// (the stock §6 behaviour) rather than let them diverge.
func TestTwoLeavesCannotEvict(t *testing.T) {
	tc := newTestCluster(t, clusterOpts{racks: 2, perRack: 3, cfg: evictionCfg()})
	for i := 0; i < 6; i++ {
		tc.submitAt(time.Millisecond, wire.NodeID(i), wr(uint64(i+1), 1, uint64(i), uint64(i)))
	}
	tc.runner.InstallFaults(netsim.FaultPlan{
		Partitions: []netsim.PartitionFault{
			netsim.LeafPartition(300*time.Millisecond, 0, []wire.NodeID{3, 4, 5}, []wire.NodeID{0, 1, 2}),
		},
	}, nil)
	tc.submitAt(500*time.Millisecond, 0, wr(1, 2, 100, 2))
	tc.submitAt(500*time.Millisecond, 3, wr(2, 2, 101, 3))
	tc.run(4 * time.Second)

	// Neither side committed its post-partition write, and no eviction
	// round resolved anywhere.
	for i := 0; i < 6; i++ {
		if tc.nodes[i].stats.leafEvictions.Load() != 0 {
			t.Fatalf("node %d resolved an eviction in a 2-leaf topology", i)
		}
		if tc.stores[i].LogLen() != 6 {
			t.Fatalf("node %d applied %d writes, want only the 6 pre-partition ones", i, tc.stores[i].LogLen())
		}
	}
}

// TestLeafTimeoutZeroIsStock: LeafTimeout unset must preserve the stock
// stall behaviour bit-for-bit — same digests, same simulator step count —
// as a build without any eviction machinery would produce. Guarded by
// comparing two identical runs plus asserting no eviction state forms.
func TestLeafEvictionDeterministicReplay(t *testing.T) {
	run := func() (uint64, uint64, uint64) {
		restart := func(tc *testCluster, id wire.NodeID) {
			tc.sim.After(100*time.Millisecond, func() {
				tc.restartAsJoiner(id, evictionCfg(), nil)
			})
		}
		tc := newTestCluster(t, clusterOpts{racks: 3, perRack: 3, cfg: evictionCfg(), seed: 7, onEvicted: restart})
		for i := 0; i < 6; i++ {
			tc.submitAt(time.Millisecond, wire.NodeID(i), wr(uint64(i+1), 1, uint64(i), uint64(i)))
		}
		tc.runner.InstallFaults(netsim.FaultPlan{
			Partitions: []netsim.PartitionFault{
				netsim.LeafPartition(300*time.Millisecond, 2500*time.Millisecond,
					[]wire.NodeID{6, 7, 8}, []wire.NodeID{0, 1, 2, 3, 4, 5}),
			},
		}, nil)
		tc.submitAt(1500*time.Millisecond, 0, wr(1, 2, 100, 2))
		tc.submitAt(8*time.Second, 1, wr(2, 2, 101, 3))
		tc.run(10 * time.Second)
		return tc.stores[0].StateDigest(), tc.nodes[0].stats.leafEvictions.Load() +
			tc.nodes[3].stats.leafEvictions.Load(), tc.sim.Steps()
	}
	d1, e1, s1 := run()
	d2, e2, s2 := run()
	if d1 != d2 || e1 != e2 || s1 != s2 {
		t.Fatalf("eviction run not deterministic: digest %x/%x evictions %d/%d steps %d/%d",
			d1, d2, e1, e2, s1, s2)
	}
}

// TestRejoinAfterLostJoinReply: the sponsor-side retry for a lost
// JoinReply. A single-member super-leaf's node restarts as a joiner
// while it is still alive in the view — exactly the state a lost
// one-shot JoinReply leaves behind on a live deployment, where the
// sponsor's first write after a process restart can land on a stale
// connection and the frame is dropped. The joiner's leaf is then
// non-empty (the joiner itself is seated), so the cross-leaf resurrect
// gate used to drop every retry while no own-leaf peer existed to
// sponsor instead: a permanent deadlock. The sponsors must recognize
// "sole seated member of its leaf, still asking" and re-answer with the
// committed state.
func TestRejoinAfterLostJoinReply(t *testing.T) {
	// LeafTimeout stays unarmed: with eviction on, wedged post-rejoin
	// writes would eventually re-evict the silent leaf and resurrect the
	// joiner through the empty-leaf path, masking the deadlock this test
	// pins down (on the live cluster it bit while the cluster was idle).
	cfg := Config{FetchTimeout: 50 * time.Millisecond}
	tc := newTestCluster(t, clusterOpts{racks: 3, perRack: 1, cfg: cfg})
	for i := 0; i < 3; i++ {
		tc.submitAt(time.Millisecond, wire.NodeID(i), wr(uint64(i+1), 1, uint64(i), uint64(i)))
	}
	// Quiescent crash+restart: no cycles in flight, node 2 still alive in
	// every view, no own-leaf member to notice and re-sponsor it.
	tc.sim.At(300*time.Millisecond, func() {
		tc.restartAsJoiner(2, cfg, nil)
	})
	// Post-rejoin traffic cannot commit unless the joiner was re-briefed:
	// node 2's leaf is alive in the view, so every later cycle needs it.
	for s := 2; s <= 4; s++ {
		tc.submitAt(time.Duration(s)*500*time.Millisecond, 0, wr(1, uint64(s), uint64(100+s), uint64(s)))
	}
	tc.run(4 * time.Second)

	for i := 0; i < 3; i++ {
		if got := tc.stores[i].LogLen(); got != 6 {
			t.Fatalf("node %d applied %d writes, want 6 (3 pre-restart + 3 post-rejoin)", i, got)
		}
	}
	// Full-state convergence (the joiner snapshots, so compare state
	// digests, not log digests).
	want := tc.stores[0].StateDigest()
	for i := 1; i < 3; i++ {
		if got := tc.stores[i].StateDigest(); got != want {
			t.Fatalf("node %d state digest %x, want %x", i, got, want)
		}
	}
}
