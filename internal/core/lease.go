package core

import (
	"sort"

	"canopus/internal/wire"
)

// Write leases (§7.2). Per key, during any cycle, either the lease is
// inactive — no writes permitted, reads served locally and immediately —
// or active — writes permitted (ordered by consensus as usual), reads
// deferred to the end of the next consensus cycle. Lease requests ride
// proposal messages; a lease committed by cycle C activates at cycle C+1
// on every node simultaneously and lasts LeaseTTL cycles.

// leaseActive reports whether key carries a write lease for any cycle
// that is still ongoing or upcoming (i.e. not expired as of the next
// cycle to commit).
func (n *Node) leaseActive(key uint64) bool {
	until, ok := n.leases[key]
	return ok && until > n.committed
}

// submitLeased routes a request under the write-lease policy.
func (n *Node) submitLeased(req wire.Request) {
	if req.Op == wire.OpRead {
		if !n.leaseActive(req.Key) && !n.leaseRequested[req.Key] {
			// No write lease anywhere in flight: linearizable local read
			// against committed state, no delay (§7.2 "reads without
			// delay").
			var val []byte
			if n.sm != nil {
				val = n.sm.Read(req.Key)
			}
			n.reply(&req, val)
			return
		}
		// Lease active (or being acquired): defer to the end of the
		// next consensus cycle.
		after := n.started + 1
		n.deferredReads[after] = append(n.deferredReads[after], deferredRead{req: req, arrived: n.env.Now()})
		n.afterSubmit()
		return
	}

	// Write path: a write may only be ordered while its key's lease is
	// active. Acquire (or renew) the lease and hold the write until the
	// activation cycle commits into the lease table.
	if n.leaseActive(req.Key) {
		remaining := n.leases[req.Key] - n.committed
		if remaining <= 2 && !n.leaseRequested[req.Key] {
			n.requestLease(req.Key)
		}
		n.enqueue(req)
		n.afterSubmit()
		return
	}
	if !n.leaseRequested[req.Key] {
		n.requestLease(req.Key)
	}
	n.heldWrites[req.Key] = append(n.heldWrites[req.Key], heldWrite{req: req, arrived: n.env.Now()})
	n.afterSubmit()
}

func (n *Node) requestLease(key uint64) {
	n.leaseRequested[key] = true
	n.pendingLeases = append(n.pendingLeases, wire.LeaseRequest{Key: key, Node: n.cfg.Self})
	// A lease request must ride a proposal; make sure a cycle is coming.
	if n.started == n.committed {
		n.tryStartCycles(n.started + 1)
	}
}

// applyLeases activates the cycle's committed lease requests: every node
// applies the same set at the same boundary, so the lease table is
// replicated state.
func (n *Node) applyLeases(cyc uint64, reqs []wire.LeaseRequest) {
	if !n.cfg.WriteLeases {
		return
	}
	for _, l := range reqs {
		if l.Release {
			if until, ok := n.leases[l.Key]; ok && until > cyc {
				n.leases[l.Key] = cyc
			}
			delete(n.leaseHolder, l.Key)
			continue
		}
		if !n.view.Alive(l.Node) {
			// The requester died before its request committed (pipelined
			// cycles: the proposal's content was fixed before the Leave
			// landed). Granting would park the lease on a corpse for the
			// whole TTL with no Leave left to revoke it. The view is
			// replicated state, so every node skips the same grants.
			continue
		}
		until := cyc + uint64(n.cfg.LeaseTTL)
		if cur, ok := n.leases[l.Key]; !ok || until > cur {
			n.leases[l.Key] = until
			n.leaseHolder[l.Key] = l.Node
		}
		if l.Node == n.cfg.Self {
			delete(n.leaseRequested, l.Key)
			// Release writes held for this key into the next batch.
			if held := n.heldWrites[l.Key]; len(held) > 0 {
				delete(n.heldWrites, l.Key)
				for _, h := range held {
					n.accum.reqs = append(n.accum.reqs, h.req)
					n.accum.arrivals = append(n.accum.arrivals, h.arrived)
					n.accum.writes++
				}
				n.afterSubmit()
			}
		}
	}
	// Expire stale entries lazily to keep the table small.
	for key, until := range n.leases {
		if until <= n.committed {
			delete(n.leases, key)
			delete(n.leaseHolder, key)
		}
	}
	n.stats.leasesActive.Store(uint64(len(n.leases)))
}

// revokeLeases expires every lease whose holder left the membership in
// cycle cyc. A crashed holder can never use its lease again, but until
// the TTL ran out every other node would keep deferring reads on the
// key to cycle boundaries; revoking at the committed Leave restores the
// §7.2 local-read fast path. The lease is cut to cyc+2 rather than cyc:
// surviving nodes may hold writes enqueued while the lease was still
// active that commit a cycle or two later, and reads must stay deferred
// until those drain (the same two-cycle guard window the acquire path
// keeps by renewing at remaining <= 2). All nodes apply identical
// updates at identical boundaries, so the lease table stays replicated
// state.
func (n *Node) revokeLeases(cyc uint64, updates []wire.MemberUpdate) {
	if !n.cfg.WriteLeases || len(updates) == 0 {
		return
	}
	var revoke []uint64
	for _, u := range updates {
		if !u.Leave {
			continue
		}
		for key, holder := range n.leaseHolder {
			if holder == u.Node {
				revoke = append(revoke, key)
			}
		}
	}
	// Sorted application keeps per-run traces replayable bit-identically.
	sort.Slice(revoke, func(i, j int) bool { return revoke[i] < revoke[j] })
	for _, key := range revoke {
		if until, ok := n.leases[key]; ok && until > cyc+2 {
			n.leases[key] = cyc + 2
		}
		delete(n.leaseHolder, key)
	}
	n.stats.leasesActive.Store(uint64(len(n.leases)))
}

// Deferred reads parked behind a cycle's commit are collected into that
// cycle's applyPlan (see commit.go collectDeferredReads) and execute
// after every write the cycle ordered.
