package core

import (
	"fmt"
	"sort"
	"time"

	"canopus/internal/wire"
)

// Super-leaf eviction (the RCanopus direction, restricted to crash-stop
// and symmetric partitions — see docs/ARCHITECTURE.md "Failure model").
//
// Stock Canopus stalls globally when one super-leaf dies: every cycle's
// merge needs every leaf's branch state, and a dead leaf serves nobody
// (§6). With Config.LeafTimeout armed, a representative whose cross-leaf
// fetch has gone unanswered for LeafTimeout past the cycle's start runs
// an eviction round for the silent branch u in cycle K:
//
//  1. Seal own leaf: broadcast LeafSeal{K, u} intra-leaf. The reliable
//     broadcast's shared delivery order decides, identically for every
//     member, whether u's real state arrived first (eviction cancels)
//     or the seal did (plain states for u are refused from then on).
//  2. Query every other surviving leaf with EvictQuery{K, u}. A queried
//     leaf that holds u's state answers with it (Resolve-flagged, so it
//     passes seals); otherwise it seals u in its own leaf the same way
//     and answers EvictPromise.
//  3. Once a majority of ALL static leaves (the initiator's plus every
//     promiser's) has u sealed, the initiator resolves the slot with a
//     tombstone: a Resolve proposal with no batches and a Leave update
//     for every static member of u's subtree. The tombstone is a pure
//     function of (K, u, static tree), so concurrent initiators resolve
//     byte-identically. Every static member of the subtree is sent an
//     Evicted notice telling it to restart through the join protocol.
//
// Committing the tombstone empties the leaf's membership in every view
// at the same cycle boundary (leafDeadAt records it). From then on the
// slot for a later cycle M is substituted locally — no protocol round —
// once M is next in commit order and M >= leafDeadAt + MaxInFlight: any
// join resurrecting the leaf would ride a cycle < M and therefore commit
// (and erase leafDeadAt) first, so every node resolves M the same way.
// Cycles in the gap (leafDeadAt, leafDeadAt+MaxInFlight) may have been
// served real state by the leaf before it died and always use full
// eviction rounds.
//
// Evicted members — stalled survivors of a leaf-majority crash, healed
// partition minorities, durable restarts of a dead leaf — are refused by
// every live node (the dead-in-view gate in Recv answers them with
// Evicted), so their pre-eviction state can never leak back into
// consensus; they re-enter empty-handed through the join protocol, via a
// cross-leaf sponsor when their whole leaf is gone.

// evictState tracks one eviction round this node initiated for a
// (cycle, vnode) slot.
type evictState struct {
	// promised maps super-leaf ordinal -> the member that sent the
	// EvictPromise (it is also who rebroadcasts the tombstone there).
	promised map[int]wire.NodeID
	// attempt rotates EvictQuery targets across a leaf's live members.
	attempt int
	// lastDrive paces query retries.
	lastDrive time.Duration
	// resolved latches once the tombstone has been issued.
	resolved bool
}

// driveEvictions runs on every tick when LeafTimeout is armed: it
// substitutes tombstones for long-dead leaves and initiates or re-drives
// eviction rounds for branches that have been silent too long.
func (n *Node) driveEvictions() {
	if n.cfg.LeafTimeout <= 0 || n.view == nil || n.tree.Height < 2 {
		return
	}
	// Substitution first: it needs no messages and may commit cycles,
	// retiring eviction work the scan below would otherwise start.
	n.substituteDead()
	now := n.env.Now()
	liveRep := n.liveRepresentative()
	if !liveRep {
		return
	}
	for k := n.committed + 1; k <= n.started; k++ {
		c, ok := n.cycles[k]
		if !ok || !c.started || c.complete || c.round < 2 {
			continue
		}
		for r := 2; r <= n.tree.Height; r++ {
			target := n.tree.Ancestor(n.sl, r)
			ownBranch := n.tree.Ancestor(n.sl, r-1)
			for _, u := range n.tree.Children(target) {
				if u == ownBranch || c.child[u] != nil {
					continue
				}
				if d := n.deadSince(u); d > 0 {
					if c.id >= d+uint64(n.cfg.MaxInFlight) {
						continue // substitution will resolve this slot
					}
					// Gap cycle of an already-evicted leaf: its timeout
					// expired when the first tombstone committed; waiting
					// a fresh LeafTimeout per gap cycle would stretch one
					// outage into MaxInFlight of them. The seal round
					// still arbitrates against a concurrent resurrection
					// (which clears leafDeadAt and restores the wait).
					n.driveEviction(c, u, now)
					continue
				}
				// The silence clock starts at the later of the cycle's
				// start and the branch's last readmission: a cycle begun
				// while the leaf was dead carries a startedAt that had
				// already expired when the rejoin committed, and charging
				// that stale wait would re-evict the leaf before its
				// first state can cross the WAN.
				since := c.startedAt
				if ra := n.readmittedAt(u); ra > since {
					since = ra
				}
				if now-since <= n.cfg.LeafTimeout {
					continue
				}
				n.driveEviction(c, u, now)
			}
		}
	}
}

// driveEviction starts (or re-drives) the eviction round for branch u of
// cycle c.
func (n *Node) driveEviction(c *cycle, u string, now time.Duration) {
	es := c.evict[u]
	if es == nil {
		if _, ok := n.evictionQuorum(c); !ok {
			return // not enough surviving leaves to decide an eviction
		}
		if c.evict == nil {
			c.evict = make(map[string]*evictState)
		}
		es = &evictState{promised: make(map[int]wire.NodeID)}
		c.evict[u] = es
		if DebugHook != nil {
			DebugHook(n.cfg.Self, "evict-start", c.id, fmt.Sprintf("%s@%v started=%v", u, now, c.startedAt))
		}
		n.bc.Broadcast(&wire.LeafSeal{Cycle: c.id, VNode: u, Initiator: n.cfg.Self})
		n.sendEvictQueries(c, u, es, now)
		return
	}
	if !es.resolved && now-es.lastDrive >= 4*n.cfg.FetchTimeout {
		n.sendEvictQueries(c, u, es, now) // lost queries or slow leaves
	}
}

// sendEvictQueries asks one live member of every required leaf that has
// not yet promised, rotating targets per attempt like fetch retries.
func (n *Node) sendEvictQueries(c *cycle, u string, es *evictState, now time.Duration) {
	es.lastDrive = now
	es.attempt++
	required, _ := n.evictionQuorum(c)
	for _, sl := range required {
		if _, ok := es.promised[sl]; ok {
			continue
		}
		members := n.view.Members(sl)
		if len(members) == 0 {
			continue
		}
		idx := (es.attempt - 1 + int(c.id) + int(n.cfg.Self)) % len(members)
		n.env.Send(members[idx], &wire.EvictQuery{Cycle: c.id, VNode: u, From: n.cfg.Self})
	}
}

// evictionQuorum computes the leaves whose promises an eviction round in
// cycle c needs. Targets — leaves already dead in the view plus every
// leaf under a branch state cycle c is still missing (they are being
// evicted together; under symmetric faults a leaf unreachable from here
// is also missing this leaf's state and cannot commit c divergently) —
// are excluded. The round may only proceed if the participants (the
// required leaves plus this one) form a majority of ALL static leaves,
// so two disjoint partitions can never both evict their way forward.
func (n *Node) evictionQuorum(c *cycle) (required []int, ok bool) {
	target := make(map[int]bool)
	for i := 0; i < n.tree.NumSuperLeaves(); i++ {
		if len(n.view.Members(i)) == 0 {
			target[i] = true
		}
	}
	for r := 2; r <= n.tree.Height; r++ {
		t := n.tree.Ancestor(n.sl, r)
		own := n.tree.Ancestor(n.sl, r-1)
		for _, u := range n.tree.Children(t) {
			if u == own || c.child[u] != nil {
				continue
			}
			for _, sl := range n.tree.DescendantSuperLeaves(u) {
				target[sl] = true
			}
		}
	}
	for i := 0; i < n.tree.NumSuperLeaves(); i++ {
		if i == n.sl || target[i] {
			continue
		}
		required = append(required, i)
	}
	ok = 2*(len(required)+1) > n.tree.NumSuperLeaves()
	return required, ok
}

// onLeafSeal handles a LeafSeal at its reliable-broadcast delivery: the
// shared delivery order is what makes "sealed before the state arrived"
// a leaf-wide fact. origin is the member that broadcast the seal; it
// alone answers the initiator, so a query yields one reply.
func (n *Node) onLeafSeal(origin wire.NodeID, m *wire.LeafSeal) {
	u := m.VNode
	if m.Cycle <= n.committed {
		// The cycle resolved before the seal landed: the origin serves
		// the initiator from the retained window instead.
		if origin == n.cfg.Self && m.Initiator != n.cfg.Self {
			n.serveEvictResolved(m.Initiator, m.Cycle, u)
		}
		return
	}
	if m.Cycle > n.started {
		n.tryStartCycles(m.Cycle)
	}
	c := n.ensureCycle(m.Cycle)
	if p := c.child[u]; p != nil {
		// The state beat the seal in the delivery order: not sealed.
		if origin == n.cfg.Self && m.Initiator != n.cfg.Self {
			n.sendResolved(m.Initiator, p)
		}
		if c.evict[u] != nil {
			n.checkEviction(c, u) // cancels the round
		}
		return
	}
	if c.sealed == nil {
		c.sealed = make(map[string]bool)
	}
	c.sealed[u] = true
	if DebugHook != nil {
		DebugHook(n.cfg.Self, "seal", m.Cycle, u)
	}
	if origin == n.cfg.Self && m.Initiator != n.cfg.Self {
		n.env.Send(m.Initiator, &wire.EvictPromise{Cycle: m.Cycle, VNode: u, From: n.cfg.Self})
	}
	if c.evict[u] != nil {
		n.checkEviction(c, u)
	}
}

// onEvictQuery is the queried leaf's entry point: serve the state if
// this node holds it, promise immediately if the slot is already sealed,
// otherwise run the seal broadcast (the promise-or-state answer is then
// sent at the seal's delivery, by its origin).
func (n *Node) onEvictQuery(m *wire.EvictQuery) {
	if n.cfg.LeafTimeout <= 0 {
		return
	}
	u := m.VNode
	if m.Cycle <= n.committed {
		n.serveEvictResolved(m.From, m.Cycle, u)
		return
	}
	if m.Cycle > n.started {
		n.tryStartCycles(m.Cycle)
	}
	c := n.ensureCycle(m.Cycle)
	if p := c.child[u]; p != nil {
		n.sendResolved(m.From, p)
		return
	}
	if c.sealed[u] {
		n.env.Send(m.From, &wire.EvictPromise{Cycle: m.Cycle, VNode: u, From: n.cfg.Self})
		return
	}
	n.bc.Broadcast(&wire.LeafSeal{Cycle: m.Cycle, VNode: u, Initiator: m.From})
}

// onEvictPromise records a leaf's promise toward an eviction round this
// node initiated.
func (n *Node) onEvictPromise(from wire.NodeID, m *wire.EvictPromise) {
	if m.Cycle <= n.committed {
		return
	}
	c, ok := n.cycles[m.Cycle]
	if !ok {
		return
	}
	es := c.evict[m.VNode]
	if es == nil || es.resolved {
		return
	}
	if sl := n.tree.SuperLeafOf(from); sl >= 0 {
		es.promised[sl] = from
	}
	n.checkEviction(c, m.VNode)
}

// checkEviction resolves (or cancels) an eviction round once its inputs
// have settled: the real state arriving cancels it; the own-leaf seal
// plus a promise from every required leaf resolves it with a tombstone.
func (n *Node) checkEviction(c *cycle, u string) {
	es := c.evict[u]
	if es == nil || es.resolved {
		return
	}
	if c.child[u] != nil {
		delete(c.evict, u)
		return
	}
	if !c.sealed[u] {
		return
	}
	required, ok := n.evictionQuorum(c)
	if !ok {
		return
	}
	for _, sl := range required {
		if _, promised := es.promised[sl]; !promised {
			return
		}
	}
	es.resolved = true
	n.stats.leafEvictions.Add(1)
	if DebugHook != nil {
		DebugHook(n.cfg.Self, "evict-resolve", c.id, u)
	}
	tomb := n.tombstone(c.id, u)
	// Own leaf incorporates the tombstone at broadcast delivery (the
	// slot is sealed; Resolve lets it through); each promiser receives
	// it directly and rebroadcasts in its own leaf, exactly like a fetch
	// response.
	n.bc.Broadcast(tomb)
	// Promisers in super-leaf order: map iteration order must not leak
	// into the send sequence (deterministic replay).
	ords := make([]int, 0, len(es.promised))
	for sl := range es.promised {
		ords = append(ords, sl)
	}
	sort.Ints(ords)
	for _, sl := range ords {
		n.env.Send(es.promised[sl], tomb)
	}
	// Tell the evicted subtree's members (stalled survivors in
	// particular) to restart through the join protocol. Partitioned
	// members miss these notices and learn reactively on heal, from the
	// dead-in-view gate.
	for _, sl := range n.tree.DescendantSuperLeaves(u) {
		for _, member := range n.tree.SuperLeaf(sl).Members {
			n.env.Send(member, &wire.Evicted{From: n.cfg.Self})
		}
	}
}

// tombstone builds the canonical replacement state for dead branch u of
// cycle k: no batches, a Leave for every static member of u's subtree
// (idempotent for members already dead in the view — applying a Leave
// twice is a no-op). A pure function of (k, u, static tree), so every
// construction — any initiator's eviction round, any node's local
// substitution — is byte-identical.
func (n *Node) tombstone(k uint64, u string) *wire.Proposal {
	vn := n.tree.VNode(u)
	p := &wire.Proposal{
		Cycle:   k,
		Round:   uint8(vn.Height),
		VNode:   u,
		Origin:  wire.NoNode,
		Resolve: true,
	}
	for _, sl := range n.tree.DescendantSuperLeaves(u) {
		for _, member := range n.tree.SuperLeaf(sl).Members {
			p.Updates = append(p.Updates, wire.MemberUpdate{Node: member, Leave: true})
		}
	}
	return p
}

// substituteDead fills missing branch states of the next-to-commit cycle
// with tombstones when every leaf under the branch has been dead — in
// the committed view — for at least MaxInFlight cycles. Restricting
// substitution to committed+1 makes it consistent cluster-wide without a
// protocol round: a Join resurrecting the leaf before cycle M would ride
// a cycle < M, hence commit here first and erase leafDeadAt; and the
// dead leaf cannot have served a real state for M, because it never even
// started a cycle that far past its own last commit.
func (n *Node) substituteDead() {
	for {
		c, ok := n.cycles[n.committed+1]
		if !ok || !c.started || c.complete || c.round < 2 {
			return
		}
		changed := false
		for r := 2; r <= n.tree.Height; r++ {
			target := n.tree.Ancestor(n.sl, r)
			ownBranch := n.tree.Ancestor(n.sl, r-1)
			for _, u := range n.tree.Children(target) {
				if u == ownBranch || c.child[u] != nil {
					continue
				}
				d := n.deadSince(u)
				if d == 0 || c.id < d+uint64(n.cfg.MaxInFlight) {
					continue
				}
				if c.child == nil {
					c.child = make(map[string]*wire.Proposal)
				}
				c.child[u] = n.tombstone(c.id, u)
				delete(c.evict, u)
				changed = true
				if DebugHook != nil {
					DebugHook(n.cfg.Self, "substitute", c.id, u)
				}
			}
		}
		if !changed {
			return
		}
		before := n.committed
		n.advance(c)
		if n.committed == before {
			return // substitution alone did not complete the cycle
		}
		// Committed at least one cycle: the new committed+1 may now be
		// substitutable too.
	}
}

// deadSince returns the committed cycle since which every super-leaf
// under branch u has been dead in the view (the latest of their
// leafDeadAt marks), or 0 if any of them is alive or unrecorded.
func (n *Node) deadSince(u string) uint64 {
	var d uint64
	for _, sl := range n.tree.DescendantSuperLeaves(u) {
		at, ok := n.leafDeadAt[sl]
		if !ok {
			return 0
		}
		if at > d {
			d = at
		}
	}
	return d
}

// readmittedAt returns the latest local time any super-leaf under
// branch u was re-admitted after an eviction, or 0 if none ever was.
func (n *Node) readmittedAt(u string) time.Duration {
	var t time.Duration
	for _, sl := range n.tree.DescendantSuperLeaves(u) {
		if at, ok := n.leafReadmitAt[sl]; ok && at > t {
			t = at
		}
	}
	return t
}

// serveEvictResolved answers an eviction-round query for an
// already-committed cycle from the retained child-state window. A miss
// is fine: the requester re-queries, rotating members.
func (n *Node) serveEvictResolved(to wire.NodeID, cyc uint64, u string) {
	if states, ok := n.recentChild[cyc]; ok {
		if p := states[u]; p != nil {
			n.sendResolved(to, p)
		}
	}
}

// sendResolved sends a copy of state p flagged Resolve, so it passes the
// requester's leaf seal. The copy is shallow — received messages are
// read-only by convention, so sharing the slices is safe.
func (n *Node) sendResolved(to wire.NodeID, p *wire.Proposal) {
	if p.Resolve {
		n.env.Send(to, p)
		return
	}
	cp := *p
	cp.Resolve = true
	n.env.Send(to, &cp)
}

// onEvictedNotice handles the cluster's verdict that this node's leaf is
// out: behave like a stall, but tell the operator to restart through the
// join protocol rather than wait.
func (n *Node) onEvictedNotice(m *wire.Evicted) {
	if n.rejoin || n.evicted {
		return
	}
	if n.cfg.LeafTimeout > 0 && n.env.Now() < n.evictGraceUntil {
		// A remote that has not yet committed our Join still sees us
		// dead; real evictions keep re-notifying past the grace.
		return
	}
	n.evicted = true
	n.halted.Store(true)
	n.stats.evictedSelf.Add(1)
	if !n.stalled {
		n.stalled = true
		n.stats.stalls.Add(1)
	}
	n.FailLocalReads()
	n.FailSessionWaiters()
	if n.cbs.OnEvicted != nil {
		n.cbs.OnEvicted()
	} else if n.cbs.OnStall != nil {
		n.cbs.OnStall()
	}
}

// LeafHealth is one super-leaf's liveness as this node's committed view
// sees it (see Node.LeafHealth).
type LeafHealth struct {
	SL      int           // super-leaf ordinal
	Members []wire.NodeID // static membership
	Alive   []wire.NodeID // live members in the committed view
	Failed  bool          // too few live members to make progress
	Evicted bool          // dead and excluded from the merge
	// EvictedAt is the cycle whose commit emptied the leaf (0 unless
	// Evicted).
	EvictedAt uint64
}

// LeafHealth reports per-super-leaf liveness from this node's committed
// view: the admin /status leaf-liveness section is built from it. Call
// from the node's event context.
func (n *Node) LeafHealth() []LeafHealth {
	out := make([]LeafHealth, n.tree.NumSuperLeaves())
	for i := range out {
		h := &out[i]
		h.SL = i
		h.Members = n.tree.SuperLeaf(i).Members
		if n.view != nil {
			h.Alive = n.view.Members(i)
			h.Failed = n.view.SuperLeafFailed(i)
		}
		if at, ok := n.leafDeadAt[i]; ok {
			h.Evicted = true
			h.EvictedAt = at
		}
	}
	return out
}

// LeafEvictions returns how many super-leaf eviction rounds this node
// resolved with a tombstone; LeafReadmissions how many evicted leaves a
// member's rejoin re-admitted. Safe from any goroutine (atomic reads) —
// the chaos harness folds them into its run result.
func (n *Node) LeafEvictions() uint64 { return n.stats.leafEvictions.Load() }

// LeafReadmissions — see LeafEvictions.
func (n *Node) LeafReadmissions() uint64 { return n.stats.leafReadmissions.Load() }
