package wal

import (
	"errors"
	"fmt"
	"io"
	"sync/atomic"
	"time"

	"canopus/internal/core"
	"canopus/internal/kvstore"
	"canopus/internal/metrics"
	"canopus/internal/wire"
)

// Manager ties one node's log and snapshots together and implements
// core.Durable. All mutating calls (AppendCommit, Sync, Recover, Close)
// run on one goroutine at a time — the commit executor in parallel mode,
// the machine turn in serial mode, the boot goroutine during recovery —
// exactly the contract core.Durable states. Stats reads are safe from
// anywhere.
type Manager struct {
	fs    FS
	store *kvstore.Store
	log   *logWriter

	// shadow mirrors the replicated session table by replaying every
	// appended root — the same derivation recovery uses — so snapshots
	// capture session state coherent with their cycle without touching
	// the node's table across goroutines.
	shadow *kvstore.SessionTable

	snapEvery   int
	snapCycle   uint64 // newest on-disk snapshot's cycle
	haveSnap    bool
	appended    uint64 // last appended cycle
	pending     uint64 // records since the last Sync
	firstAppend uint64 // first cycle ever appended by this process (0 = none yet)

	durable   metrics.Gauge // last fsynced cycle
	appends   metrics.Counter
	syncs     metrics.Counter
	synced    metrics.Counter // records covered by syncs
	lastBatch metrics.Gauge   // cycles covered by the most recent Sync
	snapshots metrics.Counter
	fsync     metrics.LatencyHistogram
	snapCycG  metrics.Gauge // atomic mirror of snapCycle for scrapers
	// snapReq is the admin gateway's snapshot trigger: POST /snapshot
	// sets it from an HTTP goroutine; the next Sync (on the durability
	// goroutine, where snapshots are legal) consumes it.
	snapReq atomic.Bool
}

var _ core.Durable = (*Manager)(nil)

// Options configures a Manager.
type Options struct {
	// Dir is the node's data directory (real disk). Ignored when FS is
	// set.
	Dir string
	// FS overrides the filesystem (simulations and tests use MemFS).
	FS FS
	// Store is the node's state machine; snapshots read and restore it.
	Store *kvstore.Store
	// SegmentBytes rotates log segments at this size (default 64 MiB).
	SegmentBytes int
	// SnapshotCycles takes a snapshot every N appended cycles (default
	// 4096; negative disables periodic snapshots).
	SnapshotCycles int
}

// Open creates a Manager over the directory. Call Recover before Init
// and before any appends; an empty directory recovers to nothing and
// leaves the node untouched.
func Open(opts Options) (*Manager, error) {
	if opts.Store == nil {
		return nil, errors.New("wal: Options.Store is required")
	}
	fs := opts.FS
	if fs == nil {
		var err error
		if fs, err = DirFS(opts.Dir); err != nil {
			return nil, err
		}
	}
	snapEvery := opts.SnapshotCycles
	if snapEvery == 0 {
		snapEvery = 4096
	}
	return &Manager{
		fs:        fs,
		store:     opts.Store,
		log:       newLogWriter(fs, opts.SegmentBytes),
		shadow:    kvstore.NewSessionTable(),
		snapEvery: snapEvery,
	}, nil
}

// AppendCommit implements core.Durable: frame and buffer one committed
// cycle's root. Durable only after the next Sync.
func (m *Manager) AppendCommit(cycle uint64, root *wire.Proposal) error {
	if err := m.log.append(cycle, root); err != nil {
		return err
	}
	m.applyShadow(cycle, root)
	if m.firstAppend == 0 {
		m.firstAppend = cycle
	}
	m.appended = cycle
	m.pending++
	m.appends.Add(1)
	return nil
}

// Sync implements core.Durable: one fsync covers every append since the
// last Sync (the group commit), then the snapshot cadence runs — on the
// same goroutine the applies ran on, so the store read is coherent with
// the appended watermark.
func (m *Manager) Sync() error {
	start := time.Now()
	if err := m.log.sync(); err != nil {
		return err
	}
	m.fsync.Observe(time.Since(start))
	m.durable.Set(m.appended)
	m.syncs.Add(1)
	m.synced.Add(m.pending)
	m.lastBatch.Set(m.pending)
	m.pending = 0
	if m.shouldSnapshot() {
		return m.snapshot()
	}
	return nil
}

func (m *Manager) shouldSnapshot() bool {
	if m.appended == 0 {
		return false
	}
	if m.snapReq.Load() {
		return true
	}
	if !m.haveSnap && m.firstAppend > 1 {
		// The node started mid-stream (join-protocol state transfer, or
		// recovery before any snapshot existed): the store holds state the
		// log does not reach back to, so force a baseline immediately.
		return true
	}
	return m.snapEvery > 0 && m.appended-m.snapCycle >= uint64(m.snapEvery)
}

// snapshot publishes the store's image at the appended watermark and
// drops log segments (and older snapshots) the new baseline supersedes.
func (m *Manager) snapshot() error {
	cycle := m.appended
	err := writeSnapshot(m.fs, cycle, m.store.SnapshotShards(), m.shadow.Snapshot(),
		m.store.StateDigest(), m.store.LogDigest())
	if err != nil {
		return err
	}
	m.snapCycle, m.haveSnap = cycle, true
	m.snapCycG.Set(cycle)
	m.snapshots.Add(1)
	m.snapReq.Store(false)
	m.truncate(cycle)
	return nil
}

// RequestSnapshot asks for a snapshot at the next group commit. Safe
// from any goroutine (the admin gateway calls it from HTTP handlers);
// the snapshot itself still runs on the durability goroutine, where the
// store read is coherent with the appended watermark.
func (m *Manager) RequestSnapshot() { m.snapReq.Store(true) }

// truncate removes snapshots older than the previous one and log
// segments every record of which is at or below the snapshot cycle. A
// segment's reach ends where its successor starts, so only whole prefix
// segments go; the newest segment always stays.
func (m *Manager) truncate(cycle uint64) {
	names, err := m.fs.List()
	if err != nil {
		return
	}
	var segs []uint64
	var snaps []uint64
	for _, name := range names {
		if c, ok := parseSegName(name); ok {
			segs = append(segs, c)
		}
		if c, ok := parseSnapName(name); ok && c < cycle {
			snaps = append(snaps, c)
		}
	}
	// Keep the newest superseded snapshot as a fallback; drop the rest.
	for i, c := range snaps {
		if i < len(snaps)-1 {
			m.fs.Remove(snapName(c))
		}
	}
	for i := 0; i+1 < len(segs); i++ {
		if segs[i+1] <= cycle+1 {
			m.fs.Remove(segName(segs[i]))
		}
	}
}

// Close flushes and closes the log. The node must be closed (or idle)
// first.
func (m *Manager) Close() error { return m.log.close() }

// Stats is a point-in-time view of the durability counters.
type Stats struct {
	DurableCycle  uint64 // last fsynced cycle
	Syncs         uint64 // group commits issued
	SyncedRecords uint64 // cycles made durable across all syncs
	LastBatch     uint64 // cycles covered by the most recent fsync
	Snapshots     uint64
}

// Stats reads the counters; safe from any goroutine. WAL lag is the
// node's applied watermark minus DurableCycle.
func (m *Manager) Stats() Stats {
	return Stats{
		DurableCycle:  m.durable.Load(),
		Syncs:         m.syncs.Load(),
		SyncedRecords: m.synced.Load(),
		LastBatch:     m.lastBatch.Load(),
		Snapshots:     m.snapshots.Load(),
	}
}

// DurableCycle returns the last fsynced cycle; safe from any goroutine.
func (m *Manager) DurableCycle() uint64 { return m.durable.Load() }

// RegisterMetrics exports the durability instruments into reg under the
// canopus_wal_* names with the given constant labels. Everything sampled
// is already atomic, so registration costs the durability goroutine
// nothing. Safe on a nil registry.
func (m *Manager) RegisterMetrics(reg *metrics.Registry, labels ...metrics.Label) {
	reg.CounterFunc("canopus_wal_appends_total",
		"Committed cycle roots framed into the log.",
		m.appends.Load, labels...)
	reg.GaugeFunc("canopus_wal_durable_cycle",
		"Last fsynced cycle (the durability watermark).",
		func() float64 { return float64(m.durable.Load()) }, labels...)
	reg.CounterFunc("canopus_wal_fsyncs_total",
		"Group commits issued (one fsync each).",
		m.syncs.Load, labels...)
	reg.CounterFunc("canopus_wal_synced_records_total",
		"Cycles made durable across all group commits.",
		m.synced.Load, labels...)
	reg.GaugeFunc("canopus_wal_group_commit_batch",
		"Cycles covered by the most recent fsync.",
		func() float64 { return float64(m.lastBatch.Load()) }, labels...)
	reg.AttachHistogram("canopus_wal_fsync_seconds",
		"Latency of the group-commit fsync.",
		&m.fsync, labels...)
	reg.CounterFunc("canopus_wal_snapshots_total",
		"Snapshots published.",
		m.snapshots.Load, labels...)
	reg.GaugeFunc("canopus_wal_snapshot_cycle",
		"Cycle of the newest on-disk snapshot (0 = none).",
		func() float64 { return float64(m.snapCycG.Load()) }, labels...)
	reg.GaugeFunc("canopus_wal_snapshot_age_cycles",
		"Durable cycles accumulated since the newest snapshot (replay cost bound).",
		func() float64 {
			d, s := m.durable.Load(), m.snapCycG.Load()
			if d <= s {
				return 0
			}
			return float64(d - s)
		}, labels...)
}

// RecoveryInfo summarizes what Recover rebuilt.
type RecoveryInfo struct {
	// SnapshotCycle is the baseline snapshot's cycle (0 = none found).
	SnapshotCycle uint64
	// Durable is the node's watermark after replay.
	Durable uint64
	// Replayed counts WAL records re-committed on top of the snapshot.
	Replayed int
}

// errGap marks a hole in the replayable cycle sequence — unlike a torn
// tail, this is never tolerable.
var errGap = errors.New("wal: cycle gap in log")

// Recover rebuilds node state from the directory: restore the newest
// decodable snapshot (verified against its digest trailer), replay the
// WAL tail through core.Node.ReplayCommit, and leave the log positioned
// to append into a fresh segment. Must run before n.Init and before any
// appends. An empty directory is a clean first boot: nothing happens.
func (m *Manager) Recover(n *core.Node) (RecoveryInfo, error) {
	var info RecoveryInfo
	names, err := m.fs.List()
	if err != nil {
		return info, err
	}
	var segs []uint64
	var snaps []uint64
	for _, name := range names {
		if c, ok := parseSegName(name); ok {
			segs = append(segs, c)
		}
		if c, ok := parseSnapName(name); ok {
			snaps = append(snaps, c)
		}
	}
	// Names list sorted ascending (hex, fixed width): walk snapshots
	// newest first, falling back past undecodable ones.
	var base uint64
	for i := len(snaps) - 1; i >= 0; i-- {
		data, err := m.readFile(snapName(snaps[i]))
		if err != nil {
			continue
		}
		snap, err := DecodeSnapshot(data)
		if err != nil {
			continue
		}
		if len(snap.Shards) != m.store.NumShards() {
			return info, fmt.Errorf("wal: snapshot has %d shards, store configured with %d (shard count must be stable per data dir)",
				len(snap.Shards), m.store.NumShards())
		}
		if err := m.store.RestoreShards(snap.Shards); err != nil {
			return info, err
		}
		if got := m.store.StateDigest(); got != snap.StateDigest {
			return info, fmt.Errorf("%w: snapshot state digest mismatch (got %x want %x)", ErrCorrupt, got, snap.StateDigest)
		}
		if got := m.store.LogDigest(); got != snap.LogDigest {
			return info, fmt.Errorf("%w: snapshot log digest mismatch (got %x want %x)", ErrCorrupt, got, snap.LogDigest)
		}
		n.RestoreState(snap.Cycle, snap.Sessions)
		m.shadow.Restore(snap.Sessions)
		base = snap.Cycle
		m.snapCycle, m.haveSnap = base, true
		m.snapCycG.Set(base)
		info.SnapshotCycle = base
		break
	}
	// Replay the log tail. A scan error is a torn tail — tolerable as
	// long as no later segment proves records are missing (the next
	// counter catches that as a gap). This also forgives the stale torn
	// suffix a previous recovery left behind mid-directory.
	next := base + 1
	for i, start := range segs {
		if i+1 < len(segs) && segs[i+1] <= base+1 {
			continue // every record at or below the snapshot: skip unread
		}
		data, err := m.readFile(segName(start))
		if err != nil {
			return info, err
		}
		scanErr := ScanSegment(data, func(cycle uint64, root *wire.Proposal) error {
			if cycle <= base {
				return nil
			}
			if cycle != next {
				return fmt.Errorf("%w: have %d, log continues at %d", errGap, next-1, cycle)
			}
			if err := n.ReplayCommit(cycle, root); err != nil {
				return err
			}
			m.applyShadow(cycle, root)
			next++
			info.Replayed++
			return nil
		})
		if scanErr != nil && !errors.Is(scanErr, ErrCorrupt) {
			return info, scanErr
		}
	}
	info.Durable = next - 1
	m.appended = info.Durable
	m.durable.Set(info.Durable)
	// New appends go to a fresh segment (the writer rotates on first
	// append), never onto a possibly-torn tail.
	return info, nil
}

// applyShadow folds one committed root into the shadow session table —
// the same derivation ReplayCommit applies to the node's table, so the
// two stay identical at every cycle boundary.
func (m *Manager) applyShadow(cycle uint64, root *wire.Proposal) {
	for _, u := range root.Sessions {
		if u.Expire {
			m.shadow.Expire(u.ID)
		} else {
			m.shadow.Register(u.ID, cycle)
		}
	}
	for _, b := range root.Batches {
		for i := range b.Reqs {
			req := &b.Reqs[i]
			if !wire.IsSessionID(req.Client) {
				continue
			}
			if _, verdict := m.shadow.Begin(req.Client, req.Seq, cycle); verdict == kvstore.SessionApply {
				m.shadow.Record(req.Client, req.Seq, nil)
			}
		}
	}
}

func (m *Manager) readFile(name string) ([]byte, error) {
	f, err := m.fs.Open(name)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return io.ReadAll(f)
}
