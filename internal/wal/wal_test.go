package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"testing"

	"canopus/internal/core"
	"canopus/internal/kvstore"
	"canopus/internal/lot"
	"canopus/internal/wire"
)

// makeRoot builds a committed root proposal for one cycle: a single
// remote-style batch of writes, the shape the commit path logs.
func makeRoot(cycle uint64, writes ...wire.Request) *wire.Proposal {
	return &wire.Proposal{
		Cycle: cycle,
		Batches: []*wire.Batch{
			{Origin: 1, Reqs: writes, NumWrite: uint32(len(writes))},
		},
	}
}

func w(client, seq, key uint64, val string) wire.Request {
	return wire.Request{Client: client, Seq: seq, Op: wire.OpWrite, Key: key, Val: []byte(val)}
}

// applyRoot applies one root's writes to a store in commit order — the
// lockstep twin of what the consensus apply path (and recovery's replay)
// does, so a store fed this way is the ground truth for recovery tests.
func applyRoot(st *kvstore.Store, root *wire.Proposal) {
	for _, b := range root.Batches {
		for i := range b.Reqs {
			st.ApplyWrite(&b.Reqs[i])
		}
	}
}

func readAll(t *testing.T, fs FS, name string) []byte {
	t.Helper()
	f, err := fs.Open(name)
	if err != nil {
		t.Fatalf("open %s: %v", name, err)
	}
	defer f.Close()
	data, err := io.ReadAll(f)
	if err != nil {
		t.Fatalf("read %s: %v", name, err)
	}
	return data
}

func testTree(t *testing.T) *lot.Tree {
	t.Helper()
	tree, err := lot.New(lot.Config{SuperLeaves: [][]wire.NodeID{{0, 1, 2}}})
	if err != nil {
		t.Fatal(err)
	}
	return tree
}

// TestSegmentRoundTrip appends records across several rotations and
// scans them back in order.
func TestSegmentRoundTrip(t *testing.T) {
	fs := NewMemFS()
	lw := newLogWriter(fs, 256) // tiny limit: force rotations
	const n = 20
	var want [][]byte
	for c := uint64(1); c <= n; c++ {
		root := makeRoot(c, w(1, c, c%5, fmt.Sprintf("value-%d", c)))
		want = append(want, root.AppendTo(nil))
		if err := lw.append(c, root); err != nil {
			t.Fatalf("append %d: %v", c, err)
		}
	}
	if err := lw.sync(); err != nil {
		t.Fatal(err)
	}
	names, _ := fs.List()
	var segs []string
	for _, name := range names {
		if _, ok := parseSegName(name); ok {
			segs = append(segs, name)
		}
	}
	if len(segs) < 2 {
		t.Fatalf("expected rotations, got segments %v", segs)
	}
	next := uint64(1)
	for _, name := range segs {
		err := ScanSegment(readAll(t, fs, name), func(cycle uint64, root *wire.Proposal) error {
			if cycle != next {
				t.Fatalf("scan out of order: got cycle %d, want %d", cycle, next)
			}
			if got := root.AppendTo(nil); string(got) != string(want[next-1]) {
				t.Fatalf("cycle %d payload mismatch", cycle)
			}
			next++
			return nil
		})
		if err != nil {
			t.Fatalf("scan %s: %v", name, err)
		}
	}
	if next != n+1 {
		t.Fatalf("scanned %d records, want %d", next-1, n)
	}
}

// TestScanTornTail truncates a synced segment at every byte length and
// checks recover-to-prefix: the scan yields exactly the records whose
// bytes fully survive, then either ends clean (cut on a boundary) or
// reports ErrCorrupt — never a panic, never a record from past the cut.
func TestScanTornTail(t *testing.T) {
	fs := NewMemFS()
	lw := newLogWriter(fs, 1<<20)
	boundaries := []int{segHeaderSize} // clean prefix lengths, by record
	name := segName(1)
	for c := uint64(1); c <= 5; c++ {
		if err := lw.append(c, makeRoot(c, w(1, c, c, "torn-tail-test-value"))); err != nil {
			t.Fatal(err)
		}
		if err := lw.sync(); err != nil {
			t.Fatal(err)
		}
		boundaries = append(boundaries, len(readAll(t, fs, name)))
	}
	data := readAll(t, fs, name)
	for cut := 0; cut <= len(data); cut++ {
		// How many whole records fit under this cut?
		whole := 0
		for i := 1; i < len(boundaries); i++ {
			if boundaries[i] <= cut {
				whole = i
			}
		}
		var got int
		err := ScanSegment(data[:cut], func(cycle uint64, _ *wire.Proposal) error {
			got++
			if cycle != uint64(got) {
				t.Fatalf("cut %d: record %d has cycle %d", cut, got, cycle)
			}
			return nil
		})
		if got != whole {
			t.Fatalf("cut %d: scanned %d records, want %d", cut, got, whole)
		}
		onBoundary := cut >= segHeaderSize && boundaries[whole] == cut
		if onBoundary && err != nil {
			t.Fatalf("cut %d is a record boundary, scan errored: %v", cut, err)
		}
		if !onBoundary && !errors.Is(err, ErrCorrupt) {
			t.Fatalf("cut %d: error %v, want ErrCorrupt", cut, err)
		}
	}
}

// TestScanBitFlip flips each byte of a segment in turn; every scan must
// surface ErrCorrupt (or, for flips confined to already-scanned record
// payloads, at minimum never panic or reorder) and only ever yield a
// prefix of the original cycles.
func TestScanBitFlip(t *testing.T) {
	fs := NewMemFS()
	lw := newLogWriter(fs, 1<<20)
	const n = 4
	for c := uint64(1); c <= n; c++ {
		if err := lw.append(c, makeRoot(c, w(1, c, c, "bit-flip-test"))); err != nil {
			t.Fatal(err)
		}
	}
	if err := lw.sync(); err != nil {
		t.Fatal(err)
	}
	data := readAll(t, fs, segName(1))
	for i := range data {
		mut := append([]byte(nil), data...)
		mut[i] ^= 0x40
		last := uint64(0)
		err := ScanSegment(mut, func(cycle uint64, _ *wire.Proposal) error {
			if cycle != last+1 {
				t.Fatalf("flip at %d: cycle %d after %d", i, cycle, last)
			}
			last = cycle
			return nil
		})
		if err == nil && last != n {
			t.Fatalf("flip at %d: clean scan but only %d records", i, last)
		}
		if err != nil && !errors.Is(err, ErrCorrupt) {
			t.Fatalf("flip at %d: error %v, want ErrCorrupt", i, err)
		}
	}
}

// TestSnapshotRoundTrip writes a snapshot container and restores it into
// a fresh store, checking the digests and session table survive exactly.
func TestSnapshotRoundTrip(t *testing.T) {
	st := kvstore.NewShardedLogged(4)
	for i := uint64(0); i < 100; i++ {
		req := w(1, i+1, i*3, fmt.Sprintf("val-%d", i))
		st.ApplyWrite(&req)
	}
	sessions := []wire.SessionState{
		{ID: wire.SessionIDBit | 7, Low: 2, LastActive: 40,
			Applied: []wire.SessionReply{{Seq: 3, Val: []byte("cached")}, {Seq: 4}}},
	}
	fs := NewMemFS()
	if err := writeSnapshot(fs, 40, st.SnapshotShards(), sessions, st.StateDigest(), st.LogDigest()); err != nil {
		t.Fatal(err)
	}
	snap, err := DecodeSnapshot(readAll(t, fs, snapName(40)))
	if err != nil {
		t.Fatal(err)
	}
	if snap.Cycle != 40 || snap.StateDigest != st.StateDigest() || snap.LogDigest != st.LogDigest() {
		t.Fatalf("snapshot header mismatch: %+v", snap)
	}
	st2 := kvstore.NewShardedLogged(4)
	if err := st2.RestoreShards(snap.Shards); err != nil {
		t.Fatal(err)
	}
	if st2.StateDigest() != st.StateDigest() || st2.LogDigest() != st.LogDigest() || st2.LogLen() != st.LogLen() {
		t.Fatal("restored store diverges from original")
	}
	if len(snap.Sessions) != 1 || snap.Sessions[0].ID != sessions[0].ID ||
		len(snap.Sessions[0].Applied) != 2 ||
		string(snap.Sessions[0].Applied[0].Val) != "cached" ||
		snap.Sessions[0].Applied[1].Val != nil {
		t.Fatalf("sessions did not round-trip: %+v", snap.Sessions)
	}
}

// TestManagerSnapshotAndTruncate drives the Durable interface directly
// and checks the snapshot cadence fires and prefix segments get deleted.
func TestManagerSnapshotAndTruncate(t *testing.T) {
	fs := NewMemFS()
	st := kvstore.NewShardedLogged(2)
	mgr, err := Open(Options{FS: fs, Store: st, SegmentBytes: 128, SnapshotCycles: 4})
	if err != nil {
		t.Fatal(err)
	}
	for c := uint64(1); c <= 20; c++ {
		root := makeRoot(c, w(1, c, c, "truncate-test-value"))
		applyRoot(st, root)
		if err := mgr.AppendCommit(c, root); err != nil {
			t.Fatal(err)
		}
		if c%2 == 0 {
			if err := mgr.Sync(); err != nil {
				t.Fatal(err)
			}
		}
	}
	stats := mgr.Stats()
	if stats.DurableCycle != 20 || stats.Syncs != 10 || stats.SyncedRecords != 20 {
		t.Fatalf("stats = %+v", stats)
	}
	if stats.Snapshots == 0 {
		t.Fatal("snapshot cadence never fired")
	}
	names, _ := fs.List()
	var snaps, segs []uint64
	for _, name := range names {
		if c, ok := parseSnapName(name); ok {
			snaps = append(snaps, c)
		}
		if c, ok := parseSegName(name); ok {
			segs = append(segs, c)
		}
	}
	if len(snaps) == 0 || len(snaps) > 2 {
		t.Fatalf("want 1-2 retained snapshots, have %v", snaps)
	}
	latest := snaps[len(snaps)-1]
	// Every surviving segment must still be reachable from the newest
	// snapshot: at most one segment fully below it (the one straddling),
	// and the tiny SegmentBytes forces rotations, so truncation must have
	// deleted something (20 records never fit one 128-byte segment).
	if len(segs) == 0 {
		t.Fatal("no segments left")
	}
	below := 0
	for i := 0; i+1 < len(segs); i++ {
		if segs[i+1] <= latest+1 {
			below++
		}
	}
	if below > 0 {
		t.Fatalf("segments %v: %d whole segments below snapshot %d survived truncation", segs, below, latest)
	}
}

// TestManagerRecover is the end-to-end cold-start path: a manager logs a
// workload (snapshot + WAL tail + an unsynced suffix), the process
// "dies", and a fresh store + node recover to exactly the durable prefix.
func TestManagerRecover(t *testing.T) {
	tree := testTree(t)
	fs := NewMemFS()
	st1 := kvstore.NewShardedLogged(2)
	mgr1, err := Open(Options{FS: fs, Store: st1, SegmentBytes: 512, SnapshotCycles: 6})
	if err != nil {
		t.Fatal(err)
	}
	const synced = 17
	for c := uint64(1); c <= synced; c++ {
		root := makeRoot(c, w(1, c, c%7, fmt.Sprintf("recover-%d", c)))
		applyRoot(st1, root)
		if err := mgr1.AppendCommit(c, root); err != nil {
			t.Fatal(err)
		}
		if c%3 == 0 || c == synced {
			if err := mgr1.Sync(); err != nil {
				t.Fatal(err)
			}
		}
	}
	wantState, wantLog, wantLen := st1.StateDigest(), st1.LogDigest(), st1.LogLen()
	// Unsynced suffix: appended but never fsynced — lost in the "crash"
	// (the buffered writer still holds it).
	for c := uint64(synced + 1); c <= synced+3; c++ {
		root := makeRoot(c, w(1, c, 1, "lost"))
		applyRoot(st1, root)
		if err := mgr1.AppendCommit(c, root); err != nil {
			t.Fatal(err)
		}
	}
	// Crash: mgr1 is simply abandoned, never closed.

	st2 := kvstore.NewShardedLogged(2)
	mgr2, err := Open(Options{FS: fs, Store: st2, SegmentBytes: 512, SnapshotCycles: 6})
	if err != nil {
		t.Fatal(err)
	}
	node := core.NewNode(core.Config{Tree: tree, Self: 0, Durability: mgr2}, st2, core.Callbacks{})
	info, err := mgr2.Recover(node)
	if err != nil {
		t.Fatalf("recover: %v", err)
	}
	if info.Durable != synced {
		t.Fatalf("recovered to cycle %d, want %d", info.Durable, synced)
	}
	if info.SnapshotCycle == 0 || info.Replayed != int(synced-info.SnapshotCycle) {
		t.Fatalf("recovery shape: %+v (want snapshot baseline + contiguous tail)", info)
	}
	if node.Committed() != synced || !node.Recovered() {
		t.Fatalf("node watermark %d recovered=%v", node.Committed(), node.Recovered())
	}
	if st2.StateDigest() != wantState || st2.LogDigest() != wantLog || st2.LogLen() != wantLen {
		t.Fatalf("replica mismatch after recovery: state %x/%x log %x/%x len %d/%d",
			st2.StateDigest(), wantState, st2.LogDigest(), wantLog, st2.LogLen(), wantLen)
	}

	// The recovered manager must keep the log growing from a fresh
	// segment and survive a SECOND recovery (the stale torn suffix from
	// the first life must stay tolerable).
	for c := uint64(synced + 1); c <= synced+4; c++ {
		root := makeRoot(c, w(1, c, c%7, fmt.Sprintf("recover-%d", c)))
		applyRoot(st2, root)
		if err := mgr2.AppendCommit(c, root); err != nil {
			t.Fatal(err)
		}
	}
	if err := mgr2.Sync(); err != nil {
		t.Fatal(err)
	}
	st3 := kvstore.NewShardedLogged(2)
	mgr3, err := Open(Options{FS: fs, Store: st3, SegmentBytes: 512, SnapshotCycles: 6})
	if err != nil {
		t.Fatal(err)
	}
	node3 := core.NewNode(core.Config{Tree: tree, Self: 0, Durability: mgr3}, st3, core.Callbacks{})
	info3, err := mgr3.Recover(node3)
	if err != nil {
		t.Fatalf("second recovery: %v", err)
	}
	if info3.Durable != synced+4 {
		t.Fatalf("second recovery reached %d, want %d", info3.Durable, synced+4)
	}
	if st3.StateDigest() != st2.StateDigest() || st3.LogDigest() != st2.LogDigest() {
		t.Fatal("second recovery diverges from the live replica")
	}
}

// TestRecoverEmptyDir pins the first-boot path: nothing on disk, nothing
// recovered, node untouched.
func TestRecoverEmptyDir(t *testing.T) {
	st := kvstore.NewSharded(1)
	mgr, err := Open(Options{FS: NewMemFS(), Store: st})
	if err != nil {
		t.Fatal(err)
	}
	node := core.NewNode(core.Config{Tree: testTree(t), Self: 0, Durability: mgr}, st, core.Callbacks{})
	info, err := mgr.Recover(node)
	if err != nil {
		t.Fatal(err)
	}
	if info != (RecoveryInfo{}) || node.Committed() != 0 || node.Recovered() {
		t.Fatalf("empty dir recovered something: %+v committed=%d", info, node.Committed())
	}
}

// TestRecoverRejectsShardMismatch: a data dir written under one shard
// count must not silently restore into a store with another.
func TestRecoverRejectsShardMismatch(t *testing.T) {
	fs := NewMemFS()
	st := kvstore.NewShardedLogged(4)
	mgr, err := Open(Options{FS: fs, Store: st, SnapshotCycles: 1})
	if err != nil {
		t.Fatal(err)
	}
	root := makeRoot(1, w(1, 1, 1, "x"))
	applyRoot(st, root)
	if err := mgr.AppendCommit(1, root); err != nil {
		t.Fatal(err)
	}
	if err := mgr.Sync(); err != nil { // cadence 1: snapshots immediately
		t.Fatal(err)
	}
	st2 := kvstore.NewShardedLogged(8)
	mgr2, err := Open(Options{FS: fs, Store: st2, SnapshotCycles: 1})
	if err != nil {
		t.Fatal(err)
	}
	node := core.NewNode(core.Config{Tree: testTree(t), Self: 0}, st2, core.Callbacks{})
	if _, err := mgr2.Recover(node); err == nil {
		t.Fatal("recovery accepted a snapshot with a different shard count")
	}
}

// TestSnapshotKeyMetadata checks the v2 container carries each key's
// last-modified cycle and owner session through a restore.
func TestSnapshotKeyMetadata(t *testing.T) {
	st := kvstore.NewShardedLogged(2)
	owner := wire.SessionIDBit | 9
	for i := uint64(0); i < 8; i++ {
		req := w(1, i+1, i, fmt.Sprintf("meta-%d", i))
		own := uint64(0)
		if i%2 == 0 {
			own = owner
		}
		st.ApplyWriteAt(&req, 100+i, own)
	}
	fs := NewMemFS()
	if err := writeSnapshot(fs, 8, st.SnapshotShards(), nil, st.StateDigest(), st.LogDigest()); err != nil {
		t.Fatal(err)
	}
	snap, err := DecodeSnapshot(readAll(t, fs, snapName(8)))
	if err != nil {
		t.Fatal(err)
	}
	st2 := kvstore.NewShardedLogged(2)
	if err := st2.RestoreShards(snap.Shards); err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 8; i++ {
		if got := st2.ModCycle(i); got != 100+i {
			t.Fatalf("key %d: mod cycle %d, want %d", i, got, 100+i)
		}
		wantOwner := uint64(0)
		if i%2 == 0 {
			wantOwner = owner
		}
		if got := st2.OwnerOf(i); got != wantOwner {
			t.Fatalf("key %d: owner %#x, want %#x", i, got, wantOwner)
		}
	}
	if got := st2.ExpireOwned(owner); len(got) != 4 {
		t.Fatalf("expire deleted %d keys, want 4", len(got))
	}
}

// TestSnapshotV1Compat hand-builds a version-1 container (no per-key
// metadata) and checks it still decodes, with zero metadata.
func TestSnapshotV1Compat(t *testing.T) {
	st := kvstore.NewShardedLogged(1)
	req := w(3, 1, 42, "legacy")
	st.ApplyWrite(&req)
	shards := st.SnapshotShards()

	var buf []byte
	buf = binary.LittleEndian.AppendUint32(buf, snapMagic)
	buf = binary.LittleEndian.AppendUint32(buf, 1) // version 1
	buf = binary.LittleEndian.AppendUint64(buf, 5) // cycle
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(shards)))
	var payload []byte
	for i := range shards {
		sh := &shards[i]
		payload = payload[:0]
		payload = binary.LittleEndian.AppendUint64(payload, sh.LogLen)
		payload = binary.LittleEndian.AppendUint64(payload, sh.LogDigest)
		payload = binary.LittleEndian.AppendUint32(payload, uint32(len(sh.Keys)))
		for j, k := range sh.Keys {
			payload = binary.LittleEndian.AppendUint64(payload, k)
			payload = binary.LittleEndian.AppendUint32(payload, uint32(len(sh.Vals[j])))
			payload = append(payload, sh.Vals[j]...)
		}
		buf = appendSection(buf, payload)
	}
	buf = appendSection(buf, binary.LittleEndian.AppendUint32(nil, 0)) // no sessions
	payload = binary.LittleEndian.AppendUint64(payload[:0], st.StateDigest())
	payload = binary.LittleEndian.AppendUint64(payload, st.LogDigest())
	buf = appendSection(buf, payload)

	snap, err := DecodeSnapshot(buf)
	if err != nil {
		t.Fatalf("v1 container rejected: %v", err)
	}
	st2 := kvstore.NewShardedLogged(1)
	if err := st2.RestoreShards(snap.Shards); err != nil {
		t.Fatal(err)
	}
	if string(st2.Read(42)) != "legacy" || st2.StateDigest() != st.StateDigest() {
		t.Fatal("v1 restore diverges")
	}
	if st2.ModCycle(42) != 0 || st2.OwnerOf(42) != 0 {
		t.Fatal("v1 restore invented key metadata")
	}
}
