package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"strconv"
	"strings"

	"canopus/internal/kvstore"
	"canopus/internal/wire"
)

// Snapshot container format (versioned, length-prefixed, checksummed):
//
//	[u32 magic "CSNP"][u32 version][u64 cycle][u32 numShards]
//	numShards × shard section
//	session section
//	digest trailer section
//
// Every section is [u32 payloadLen][u32 crc32c][payload], independently
// checksummed so the writer appends the container incrementally — one
// shard at a time, straight off kvstore.SnapshotShards — without
// buffering the whole image. Section payloads:
//
//	shard:   [u64 logLen][u64 logDigest][u32 numKeys]
//	         numKeys × [u64 key][u32 valLen][val][u64 modCycle][u64 owner]
//	         (keys sorted; version 1 omits modCycle/owner)
//	session: [u32 count] count × session state
//	trailer: [u64 stateDigest][u64 logDigest]
//
// The trailer digests are recomputed from the restored store at load
// time; a mismatch fails recovery rather than resurrecting a replica
// that silently disagrees with its peers.

const (
	snapMagic      uint32 = 0x504E5343 // "CSNP"
	snapVersion    uint32 = 2          // writes v2; v1 images (no key metadata) still load
	snapHeaderSize        = 16
	snapPrefix            = "snap-"
	snapSuffix            = ".snap"
	snapTmpSuffix         = ".tmp"

	// nilLen marks a nil value (distinct from empty) in session replies.
	nilLen = ^uint32(0)
)

func snapName(cycle uint64) string {
	return fmt.Sprintf("%s%016x%s", snapPrefix, cycle, snapSuffix)
}

func parseSnapName(name string) (uint64, bool) {
	if !strings.HasPrefix(name, snapPrefix) || !strings.HasSuffix(name, snapSuffix) {
		return 0, false
	}
	hex := name[len(snapPrefix) : len(name)-len(snapSuffix)]
	cycle, err := strconv.ParseUint(hex, 16, 64)
	if err != nil {
		return 0, false
	}
	return cycle, true
}

// Snapshot is one decoded container.
type Snapshot struct {
	Cycle       uint64
	Shards      []kvstore.ShardState
	Sessions    []wire.SessionState
	StateDigest uint64
	LogDigest   uint64
}

// appendSection frames one section payload.
func appendSection(dst, payload []byte) []byte {
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(payload)))
	dst = binary.LittleEndian.AppendUint32(dst, crc32.Checksum(payload, crcTable))
	return append(dst, payload...)
}

// writeSnapshot publishes the image as snap-<cycle>.snap: sections are
// appended incrementally to a temp file, fsynced, then renamed into
// place so a crash mid-write never shadows the previous snapshot.
func writeSnapshot(fs FS, cycle uint64, shards []kvstore.ShardState, sessions []wire.SessionState, stateDigest, logDigest uint64) error {
	tmp := snapName(cycle) + snapTmpSuffix
	f, err := fs.Create(tmp)
	if err != nil {
		return err
	}
	var hdr [snapHeaderSize]byte
	binary.LittleEndian.PutUint32(hdr[:], snapMagic)
	binary.LittleEndian.PutUint32(hdr[4:], snapVersion)
	binary.LittleEndian.PutUint64(hdr[8:], cycle)
	// numShards rides the first 4 bytes after the fixed header.
	buf := binary.LittleEndian.AppendUint32(hdr[:], uint32(len(shards)))
	if _, err := f.Write(buf); err != nil {
		f.Close()
		return err
	}
	var section, payload []byte
	for i := range shards {
		sh := &shards[i]
		payload = payload[:0]
		payload = binary.LittleEndian.AppendUint64(payload, sh.LogLen)
		payload = binary.LittleEndian.AppendUint64(payload, sh.LogDigest)
		payload = binary.LittleEndian.AppendUint32(payload, uint32(len(sh.Keys)))
		for j, k := range sh.Keys {
			payload = binary.LittleEndian.AppendUint64(payload, k)
			payload = binary.LittleEndian.AppendUint32(payload, uint32(len(sh.Vals[j])))
			payload = append(payload, sh.Vals[j]...)
			var cycle, owner uint64
			if j < len(sh.Cycles) {
				cycle = sh.Cycles[j]
			}
			if j < len(sh.Owners) {
				owner = sh.Owners[j]
			}
			payload = binary.LittleEndian.AppendUint64(payload, cycle)
			payload = binary.LittleEndian.AppendUint64(payload, owner)
		}
		section = appendSection(section[:0], payload)
		if _, err := f.Write(section); err != nil {
			f.Close()
			return err
		}
	}
	payload = binary.LittleEndian.AppendUint32(payload[:0], uint32(len(sessions)))
	for i := range sessions {
		s := &sessions[i]
		payload = binary.LittleEndian.AppendUint64(payload, s.ID)
		payload = binary.LittleEndian.AppendUint64(payload, s.Low)
		payload = binary.LittleEndian.AppendUint64(payload, s.LastActive)
		payload = binary.LittleEndian.AppendUint32(payload, uint32(len(s.Applied)))
		for j := range s.Applied {
			r := &s.Applied[j]
			payload = binary.LittleEndian.AppendUint64(payload, r.Seq)
			if r.Val == nil {
				payload = binary.LittleEndian.AppendUint32(payload, nilLen)
				continue
			}
			payload = binary.LittleEndian.AppendUint32(payload, uint32(len(r.Val)))
			payload = append(payload, r.Val...)
		}
	}
	section = appendSection(section[:0], payload)
	if _, err := f.Write(section); err != nil {
		f.Close()
		return err
	}
	payload = binary.LittleEndian.AppendUint64(payload[:0], stateDigest)
	payload = binary.LittleEndian.AppendUint64(payload, logDigest)
	section = appendSection(section[:0], payload)
	if _, err := f.Write(section); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	return fs.Rename(tmp, snapName(cycle))
}

// snapReader cursors over container bytes with bounds-checked takes.
type snapReader struct{ b []byte }

func (r *snapReader) u32() (uint32, error) {
	if len(r.b) < 4 {
		return 0, fmt.Errorf("%w: truncated", ErrCorrupt)
	}
	v := binary.LittleEndian.Uint32(r.b)
	r.b = r.b[4:]
	return v, nil
}

func (r *snapReader) u64() (uint64, error) {
	if len(r.b) < 8 {
		return 0, fmt.Errorf("%w: truncated", ErrCorrupt)
	}
	v := binary.LittleEndian.Uint64(r.b)
	r.b = r.b[8:]
	return v, nil
}

func (r *snapReader) take(n int) ([]byte, error) {
	if n < 0 || len(r.b) < n {
		return nil, fmt.Errorf("%w: truncated", ErrCorrupt)
	}
	v := r.b[:n]
	r.b = r.b[n:]
	return v, nil
}

// section verifies and returns the next section's payload.
func (r *snapReader) section() (*snapReader, error) {
	n, err := r.u32()
	if err != nil {
		return nil, err
	}
	crc, err := r.u32()
	if err != nil {
		return nil, err
	}
	payload, err := r.take(int(n))
	if err != nil {
		return nil, err
	}
	if crc32.Checksum(payload, crcTable) != crc {
		return nil, fmt.Errorf("%w: section checksum mismatch", ErrCorrupt)
	}
	return &snapReader{b: payload}, nil
}

// DecodeSnapshot parses one container. Arbitrary input yields an error
// wrapping ErrCorrupt, never a panic or an unbounded allocation — the
// FuzzSnapshotDecode contract.
func DecodeSnapshot(data []byte) (*Snapshot, error) {
	r := &snapReader{b: data}
	magic, err := r.u32()
	if err != nil {
		return nil, err
	}
	if magic != snapMagic {
		return nil, fmt.Errorf("%w: bad snapshot magic %#x", ErrCorrupt, magic)
	}
	version, err := r.u32()
	if err != nil {
		return nil, err
	}
	if version != 1 && version != snapVersion {
		return nil, fmt.Errorf("%w: unknown snapshot version %d", ErrCorrupt, version)
	}
	snap := &Snapshot{}
	if snap.Cycle, err = r.u64(); err != nil {
		return nil, err
	}
	numShards, err := r.u32()
	if err != nil {
		return nil, err
	}
	// Every shard section needs at least its 8-byte frame: bound the
	// shard-slice allocation by the bytes actually present.
	if uint64(numShards) > uint64(len(r.b)/8)+1 {
		return nil, fmt.Errorf("%w: implausible shard count %d", ErrCorrupt, numShards)
	}
	snap.Shards = make([]kvstore.ShardState, numShards)
	for i := range snap.Shards {
		s, err := r.section()
		if err != nil {
			return nil, err
		}
		sh := &snap.Shards[i]
		if sh.LogLen, err = s.u64(); err != nil {
			return nil, err
		}
		if sh.LogDigest, err = s.u64(); err != nil {
			return nil, err
		}
		numKeys, err := s.u32()
		if err != nil {
			return nil, err
		}
		perKeyMin := 12
		if version >= 2 {
			perKeyMin = 28 // key + len + modCycle + owner
		}
		if uint64(numKeys) > uint64(len(s.b)/perKeyMin)+1 {
			return nil, fmt.Errorf("%w: implausible key count %d", ErrCorrupt, numKeys)
		}
		sh.Keys = make([]uint64, numKeys)
		sh.Vals = make([][]byte, numKeys)
		// Allocated for v1 too (left zero) so a decoded image re-encodes
		// to an equal image regardless of source version.
		sh.Cycles = make([]uint64, numKeys)
		sh.Owners = make([]uint64, numKeys)
		for j := range sh.Keys {
			if sh.Keys[j], err = s.u64(); err != nil {
				return nil, err
			}
			vlen, err := s.u32()
			if err != nil {
				return nil, err
			}
			if sh.Vals[j], err = s.take(int(vlen)); err != nil {
				return nil, err
			}
			if version >= 2 {
				if sh.Cycles[j], err = s.u64(); err != nil {
					return nil, err
				}
				if sh.Owners[j], err = s.u64(); err != nil {
					return nil, err
				}
			}
		}
	}
	s, err := r.section()
	if err != nil {
		return nil, err
	}
	count, err := s.u32()
	if err != nil {
		return nil, err
	}
	if uint64(count) > uint64(len(s.b)/28)+1 {
		return nil, fmt.Errorf("%w: implausible session count %d", ErrCorrupt, count)
	}
	snap.Sessions = make([]wire.SessionState, count)
	for i := range snap.Sessions {
		st := &snap.Sessions[i]
		if st.ID, err = s.u64(); err != nil {
			return nil, err
		}
		if st.Low, err = s.u64(); err != nil {
			return nil, err
		}
		if st.LastActive, err = s.u64(); err != nil {
			return nil, err
		}
		n, err := s.u32()
		if err != nil {
			return nil, err
		}
		if uint64(n) > uint64(len(s.b)/12)+1 {
			return nil, fmt.Errorf("%w: implausible reply count %d", ErrCorrupt, n)
		}
		st.Applied = make([]wire.SessionReply, n)
		for j := range st.Applied {
			rep := &st.Applied[j]
			if rep.Seq, err = s.u64(); err != nil {
				return nil, err
			}
			vlen, err := s.u32()
			if err != nil {
				return nil, err
			}
			if vlen == nilLen {
				continue
			}
			if rep.Val, err = s.take(int(vlen)); err != nil {
				return nil, err
			}
		}
	}
	s, err = r.section()
	if err != nil {
		return nil, err
	}
	if snap.StateDigest, err = s.u64(); err != nil {
		return nil, err
	}
	if snap.LogDigest, err = s.u64(); err != nil {
		return nil, err
	}
	if len(r.b) != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrCorrupt, len(r.b))
	}
	return snap, nil
}
