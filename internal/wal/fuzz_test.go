package wal

import (
	"bytes"
	"errors"
	"reflect"
	"testing"

	"canopus/internal/kvstore"
	"canopus/internal/wire"
)

// fuzzSegment builds a valid segment holding cycles 1..n, as seed input.
func fuzzSegment(tb testing.TB, n int) []byte {
	tb.Helper()
	fs := NewMemFS()
	lw := newLogWriter(fs, 1<<20)
	for c := uint64(1); c <= uint64(n); c++ {
		root := &wire.Proposal{
			Cycle: c,
			Batches: []*wire.Batch{{
				Origin:   1,
				Reqs:     []wire.Request{{Client: 7, Seq: c, Op: wire.OpWrite, Key: c * 3, Val: []byte("fuzz-seed")}},
				NumWrite: 1,
			}},
			Sessions: []wire.SessionUpdate{{ID: wire.SessionIDBit | c}},
		}
		if err := lw.append(c, root); err != nil {
			tb.Fatal(err)
		}
	}
	if err := lw.sync(); err != nil {
		tb.Fatal(err)
	}
	f, err := fs.Open(segName(1))
	if err != nil {
		tb.Fatal(err)
	}
	defer f.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(f); err != nil {
		tb.Fatal(err)
	}
	return buf.Bytes()
}

// fuzzSnapshot builds a valid snapshot container as seed input.
func fuzzSnapshot(tb testing.TB) []byte {
	tb.Helper()
	st := kvstore.NewShardedLogged(2)
	for i := uint64(0); i < 16; i++ {
		req := wire.Request{Client: 1, Seq: i + 1, Op: wire.OpWrite, Key: i, Val: []byte("snap-seed")}
		st.ApplyWrite(&req)
	}
	sessions := []wire.SessionState{
		{ID: wire.SessionIDBit | 5, Low: 1, LastActive: 9,
			Applied: []wire.SessionReply{{Seq: 2, Val: []byte("ok")}, {Seq: 3}}},
	}
	fs := NewMemFS()
	if err := writeSnapshot(fs, 16, st.SnapshotShards(), sessions, st.StateDigest(), st.LogDigest()); err != nil {
		tb.Fatal(err)
	}
	f, err := fs.Open(snapName(16))
	if err != nil {
		tb.Fatal(err)
	}
	defer f.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(f); err != nil {
		tb.Fatal(err)
	}
	return buf.Bytes()
}

// FuzzWALReplay feeds arbitrary bytes to the segment scanner. The
// contract under any input — truncated, bit-flipped, torn, or garbage —
// is: never panic, surface only ErrCorrupt for undecodable suffixes, and
// scan deterministically (two scans of the same bytes agree exactly).
func FuzzWALReplay(f *testing.F) {
	seg := fuzzSegment(f, 5)
	f.Add(seg)
	f.Add(seg[:len(seg)-1])      // torn crc
	f.Add(seg[:len(seg)-12])     // torn payload
	f.Add(seg[:segHeaderSize+7]) // torn record header
	f.Add(seg[:segHeaderSize])   // empty but valid
	f.Add(seg[:3])               // torn segment header
	f.Add([]byte{})              // empty file
	flipped := append([]byte(nil), seg...)
	flipped[len(flipped)/2] ^= 0x01
	f.Add(flipped)
	f.Add(bytes.Repeat([]byte{0xff}, 64))

	f.Fuzz(func(t *testing.T, data []byte) {
		var cycles []uint64
		err := ScanSegment(data, func(cycle uint64, root *wire.Proposal) error {
			if root == nil {
				t.Fatal("scanner delivered a nil root")
			}
			cycles = append(cycles, cycle)
			return nil
		})
		if err != nil && !errors.Is(err, ErrCorrupt) {
			t.Fatalf("scan error does not wrap ErrCorrupt: %v", err)
		}
		var again []uint64
		err2 := ScanSegment(data, func(cycle uint64, _ *wire.Proposal) error {
			again = append(again, cycle)
			return nil
		})
		if (err == nil) != (err2 == nil) || !reflect.DeepEqual(cycles, again) {
			t.Fatalf("scan not deterministic: %v/%v, %v vs %v", err, err2, cycles, again)
		}
	})
}

// FuzzSnapshotDecode feeds arbitrary bytes to the snapshot decoder:
// never panic, reject corruption with ErrCorrupt, and any accepted image
// must re-encode to a container that decodes back to the same image
// (round-trip fixed point — what recovery relies on when it re-snapshots
// restored state).
func FuzzSnapshotDecode(f *testing.F) {
	snap := fuzzSnapshot(f)
	f.Add(snap)
	f.Add(snap[:len(snap)-1])
	f.Add(snap[:len(snap)/2])
	f.Add(snap[:snapHeaderSize])
	f.Add([]byte{})
	flipped := append([]byte(nil), snap...)
	flipped[len(flipped)-5] ^= 0x80
	f.Add(flipped)
	f.Add(bytes.Repeat([]byte{0x00}, 128))

	f.Fuzz(func(t *testing.T, data []byte) {
		img, err := DecodeSnapshot(data)
		if err != nil {
			if !errors.Is(err, ErrCorrupt) {
				t.Fatalf("decode error does not wrap ErrCorrupt: %v", err)
			}
			return
		}
		fs := NewMemFS()
		if err := writeSnapshot(fs, img.Cycle, img.Shards, img.Sessions, img.StateDigest, img.LogDigest); err != nil {
			t.Fatalf("re-encoding an accepted snapshot failed: %v", err)
		}
		fl, err := fs.Open(snapName(img.Cycle))
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if _, err := buf.ReadFrom(fl); err != nil {
			t.Fatal(err)
		}
		fl.Close()
		img2, err := DecodeSnapshot(buf.Bytes())
		if err != nil {
			t.Fatalf("re-encoded snapshot does not decode: %v", err)
		}
		if !reflect.DeepEqual(img, img2) {
			t.Fatalf("snapshot round trip is not a fixed point:\n%+v\nvs\n%+v", img, img2)
		}
	})
}
