// Package wal is the per-node durability subsystem: a group-commit
// write-ahead log of committed cycles, periodic checksummed snapshots of
// the sharded state machine, and the crash-restart recovery path that
// rebuilds a node from both. The Manager implements core.Durable, so the
// commit pipeline feeds it committed roots and fsync cadence directly
// (see internal/core/exec.go); everything is keyed to the consensus
// cycle number, the one watermark all of this shares with the protocol.
package wal

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"
)

// FS abstracts the flat directory the subsystem writes. Live servers use
// the real disk (DirFS); deterministic simulations and fuzz tests use
// MemFS, which keeps the same crash-restart contract without touching
// the host filesystem.
type FS interface {
	// Create truncates-or-creates a file for writing.
	Create(name string) (File, error)
	// Open opens a file for reading from the start.
	Open(name string) (File, error)
	Remove(name string) error
	// Rename atomically replaces newname with oldname's content — the
	// snapshot publish step.
	Rename(oldname, newname string) error
	// List returns the directory's file names, sorted.
	List() ([]string, error)
}

// File is the slice of *os.File the subsystem needs.
type File interface {
	io.Reader
	io.Writer
	io.Closer
	// Sync makes previous writes durable (fsync; a no-op in MemFS).
	Sync() error
}

// DirFS returns the real-disk FS rooted at dir, creating it if needed.
func DirFS(dir string) (FS, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	return osFS{dir: dir}, nil
}

type osFS struct{ dir string }

func (fs osFS) Create(name string) (File, error) {
	return os.Create(filepath.Join(fs.dir, name))
}

func (fs osFS) Open(name string) (File, error) {
	return os.Open(filepath.Join(fs.dir, name))
}

func (fs osFS) Remove(name string) error {
	return os.Remove(filepath.Join(fs.dir, name))
}

func (fs osFS) Rename(oldname, newname string) error {
	return os.Rename(filepath.Join(fs.dir, oldname), filepath.Join(fs.dir, newname))
}

func (fs osFS) List() ([]string, error) {
	ents, err := os.ReadDir(fs.dir)
	if err != nil {
		return nil, err
	}
	names := make([]string, 0, len(ents))
	for _, e := range ents {
		if !e.IsDir() {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	return names, nil
}

// MemFS is an in-memory FS. It survives across Manager open/close pairs,
// which is how the chaos harness models a node's disk across an in-sim
// crash and restart. Safe for concurrent use.
type MemFS struct {
	mu    sync.Mutex
	files map[string][]byte
}

// NewMemFS returns an empty in-memory disk.
func NewMemFS() *MemFS { return &MemFS{files: make(map[string][]byte)} }

func (fs *MemFS) Create(name string) (File, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fs.files[name] = nil
	return &memFile{fs: fs, name: name, write: true}, nil
}

func (fs *MemFS) Open(name string) (File, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	data, ok := fs.files[name]
	if !ok {
		return nil, fmt.Errorf("wal: open %s: %w", name, os.ErrNotExist)
	}
	// Snapshot the content: a reader is not disturbed by later writes.
	cp := make([]byte, len(data))
	copy(cp, data)
	return &memFile{fs: fs, name: name, data: cp}, nil
}

func (fs *MemFS) Remove(name string) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if _, ok := fs.files[name]; !ok {
		return fmt.Errorf("wal: remove %s: %w", name, os.ErrNotExist)
	}
	delete(fs.files, name)
	return nil
}

func (fs *MemFS) Rename(oldname, newname string) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	data, ok := fs.files[oldname]
	if !ok {
		return fmt.Errorf("wal: rename %s: %w", oldname, os.ErrNotExist)
	}
	fs.files[newname] = data
	delete(fs.files, oldname)
	return nil
}

func (fs *MemFS) List() ([]string, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	names := make([]string, 0, len(fs.files))
	for name := range fs.files {
		names = append(names, name)
	}
	sort.Strings(names)
	return names, nil
}

type memFile struct {
	fs    *MemFS
	name  string
	data  []byte // read-mode content snapshot
	off   int
	write bool
}

func (f *memFile) Read(p []byte) (int, error) {
	if f.write {
		return 0, fmt.Errorf("wal: %s opened for writing", f.name)
	}
	if f.off >= len(f.data) {
		return 0, io.EOF
	}
	n := copy(p, f.data[f.off:])
	f.off += n
	return n, nil
}

func (f *memFile) Write(p []byte) (int, error) {
	if !f.write {
		return 0, fmt.Errorf("wal: %s opened read-only", f.name)
	}
	f.fs.mu.Lock()
	f.fs.files[f.name] = append(f.fs.files[f.name], p...)
	f.fs.mu.Unlock()
	return len(p), nil
}

func (f *memFile) Sync() error  { return nil }
func (f *memFile) Close() error { return nil }
