package wal

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"strconv"
	"strings"

	"canopus/internal/wire"
)

// Log format. A segment file is
//
//	[u32 magic "CWAL"][u32 version]
//	record*
//
// and each record is
//
//	[u32 payloadLen][u32 crc32c][u64 cycle][payload]
//
// where payload is the wire encoding of the cycle's committed root
// proposal (the codec the transport already fuzzes) and the CRC covers
// cycle and payload. Segments are named wal-<first cycle, hex>.log, so
// the directory listing orders them by cycle and a segment's reach is
// bounded by its successor's name — which is what lets snapshotting
// delete whole prefix segments without reading them.
//
// Torn writes: scanning stops at the first record that fails its length,
// CRC or decode check. In the newest segment that is the recover-to-
// prefix contract (a crash mid-append loses only the unsynced suffix,
// which no client was ever acked for — replies wait for Sync). In any
// older segment it is mid-log corruption and recovery fails loudly.

const (
	segMagic      uint32 = 0x4C415743 // "CWAL"
	segVersion    uint32 = 1
	segHeaderSize        = 8
	recHeaderSize        = 16
	segPrefix            = "wal-"
	segSuffix            = ".log"

	// defaultSegmentBytes rotates segments at 64 MiB.
	defaultSegmentBytes = 64 << 20
)

// ErrCorrupt reports a segment whose byte stream stops making sense —
// a torn tail, a flipped bit, or a foreign payload.
var ErrCorrupt = errors.New("wal: corrupt segment")

var crcTable = crc32.MakeTable(crc32.Castagnoli)

func segName(cycle uint64) string {
	return fmt.Sprintf("%s%016x%s", segPrefix, cycle, segSuffix)
}

// parseSegName extracts the first-cycle from a segment file name.
func parseSegName(name string) (uint64, bool) {
	if !strings.HasPrefix(name, segPrefix) || !strings.HasSuffix(name, segSuffix) {
		return 0, false
	}
	hex := name[len(segPrefix) : len(name)-len(segSuffix)]
	cycle, err := strconv.ParseUint(hex, 16, 64)
	if err != nil {
		return 0, false
	}
	return cycle, true
}

// ScanSegment walks one segment's bytes, invoking fn for every intact
// record in order, and returns a non-nil error (wrapping ErrCorrupt) if
// the scan ended anywhere but a clean record boundary. It never panics
// on arbitrary input — the FuzzWALReplay contract.
func ScanSegment(data []byte, fn func(cycle uint64, root *wire.Proposal) error) error {
	if len(data) < segHeaderSize {
		return fmt.Errorf("%w: short header (%d bytes)", ErrCorrupt, len(data))
	}
	if magic := binary.LittleEndian.Uint32(data); magic != segMagic {
		return fmt.Errorf("%w: bad magic %#x", ErrCorrupt, magic)
	}
	if v := binary.LittleEndian.Uint32(data[4:]); v != segVersion {
		return fmt.Errorf("%w: unknown version %d", ErrCorrupt, v)
	}
	rest := data[segHeaderSize:]
	for len(rest) > 0 {
		if len(rest) < recHeaderSize {
			return fmt.Errorf("%w: torn record header (%d bytes)", ErrCorrupt, len(rest))
		}
		payloadLen := binary.LittleEndian.Uint32(rest)
		crc := binary.LittleEndian.Uint32(rest[4:])
		if uint64(payloadLen) > uint64(len(rest)-recHeaderSize) {
			return fmt.Errorf("%w: torn record payload (%d of %d bytes)", ErrCorrupt, len(rest)-recHeaderSize, payloadLen)
		}
		end := recHeaderSize + int(payloadLen)
		if crc32.Checksum(rest[8:end], crcTable) != crc {
			return fmt.Errorf("%w: checksum mismatch", ErrCorrupt)
		}
		cycle := binary.LittleEndian.Uint64(rest[8:])
		msg, n, err := wire.Decode(rest[recHeaderSize:end])
		if err != nil || n != int(payloadLen) {
			return fmt.Errorf("%w: undecodable record for cycle %d", ErrCorrupt, cycle)
		}
		root, ok := msg.(*wire.Proposal)
		if !ok {
			return fmt.Errorf("%w: record for cycle %d is not a proposal", ErrCorrupt, cycle)
		}
		if err := fn(cycle, root); err != nil {
			return err
		}
		rest = rest[end:]
	}
	return nil
}

// logWriter appends framed records to the current segment through a
// buffered writer; Sync flushes and fsyncs — the group-commit boundary.
type logWriter struct {
	fs      FS
	f       File
	bw      *bufio.Writer
	size    int
	limit   int
	scratch []byte
}

func newLogWriter(fs FS, segmentBytes int) *logWriter {
	if segmentBytes <= 0 {
		segmentBytes = defaultSegmentBytes
	}
	return &logWriter{fs: fs, limit: segmentBytes}
}

func (w *logWriter) append(cycle uint64, root *wire.Proposal) error {
	if w.f == nil || w.size >= w.limit {
		if err := w.rotate(cycle); err != nil {
			return err
		}
	}
	b := append(w.scratch[:0], 0, 0, 0, 0, 0, 0, 0, 0) // len + crc, patched below
	b = binary.LittleEndian.AppendUint64(b, cycle)
	b = root.AppendTo(b)
	binary.LittleEndian.PutUint32(b, uint32(len(b)-recHeaderSize))
	binary.LittleEndian.PutUint32(b[4:], crc32.Checksum(b[8:], crcTable))
	w.scratch = b
	if _, err := w.bw.Write(b); err != nil {
		return err
	}
	w.size += len(b)
	return nil
}

// rotate closes the current segment (synced, so a prefix segment is
// always whole) and starts wal-<cycle>.log.
func (w *logWriter) rotate(cycle uint64) error {
	if w.f != nil {
		if err := w.sync(); err != nil {
			return err
		}
		if err := w.f.Close(); err != nil {
			return err
		}
		w.f, w.bw = nil, nil
	}
	f, err := w.fs.Create(segName(cycle))
	if err != nil {
		return err
	}
	w.f = f
	w.bw = bufio.NewWriter(f)
	var hdr [segHeaderSize]byte
	binary.LittleEndian.PutUint32(hdr[:], segMagic)
	binary.LittleEndian.PutUint32(hdr[4:], segVersion)
	if _, err := w.bw.Write(hdr[:]); err != nil {
		return err
	}
	w.size = segHeaderSize
	return nil
}

func (w *logWriter) sync() error {
	if w.f == nil {
		return nil
	}
	if err := w.bw.Flush(); err != nil {
		return err
	}
	return w.f.Sync()
}

func (w *logWriter) close() error {
	if w.f == nil {
		return nil
	}
	if err := w.sync(); err != nil {
		return err
	}
	err := w.f.Close()
	w.f, w.bw = nil, nil
	return err
}
