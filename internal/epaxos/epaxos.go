// Package epaxos implements the EPaxos baseline the paper compares
// against (Moraru et al., SOSP 2013), at the fidelity the paper's
// evaluation exercises: batched commands (5 ms / 2 ms batch durations),
// thrifty disabled (pre-accepts go to all replicas, so the fastest
// quorum answers first — the effect of the paper's latency probing),
// zero command interference on the fast path, and the slow (Accept)
// path for interfering commands.
//
// Every replica is the command leader for its own clients. Reads are
// commands too: EPaxos disseminates them to a quorum, which is exactly
// the property Canopus's evaluation contrasts (§8.1.1: "EPaxos sends
// reads over the network to other nodes").
//
// Replica recovery (the Explicit Prepare protocol) is out of scope: the
// paper's evaluation never fails an EPaxos replica. Ballots are carried
// and checked so the message flow is faithful.
package epaxos

import (
	"sort"
	"time"

	"canopus/internal/engine"
	"canopus/internal/wire"
)

const (
	tagBatch uint8 = iota + 1
)

// Config parameterizes one replica.
type Config struct {
	Self  wire.NodeID
	Peers []wire.NodeID // all replicas, including Self

	// BatchDuration accumulates client commands before proposing; the
	// paper evaluates 5 ms (default) and 2 ms.
	BatchDuration time.Duration
	// MaxBatch flushes a batch early at this many commands (the paper's
	// multi-DC runs use the same batch size as Canopus: 1000).
	MaxBatch int
}

func (c *Config) fill() {
	if c.BatchDuration == 0 {
		c.BatchDuration = 5 * time.Millisecond
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = 1000
	}
}

// StateMachine mirrors core.StateMachine for the KV workload.
type StateMachine interface {
	ApplyWrite(req *wire.Request)
	Read(key uint64) []byte
}

// Callbacks observe replica progress.
type Callbacks struct {
	// OnCommit fires at the command leader when one of its instances
	// commits (this is when clients are answered in EPaxos).
	OnCommit func(ref wire.InstanceRef, b *wire.Batch)
	// OnExecute fires on every replica when an instance executes.
	OnExecute func(ref wire.InstanceRef, b *wire.Batch)
	// OnReply fires at the command leader per client request once its
	// batch executes (reads carry the value).
	OnReply func(req *wire.Request, val []byte)
}

type status uint8

const (
	statusNone status = iota
	statusPreAccepted
	statusAccepted
	statusCommitted
	statusExecuted
)

type instance struct {
	ref    wire.InstanceRef
	batch  *wire.Batch
	seq    uint64
	deps   []wire.InstanceRef
	ballot uint64
	st     status

	// Leader-side fast-path bookkeeping.
	preOKs      int
	depsChanged bool
	acceptOKs   int
	mine        bool
	proposedAt  time.Duration
}

// Replica is one EPaxos replica.
type Replica struct {
	cfg Config
	env engine.Env
	sm  StateMachine
	cbs Callbacks

	instances map[wire.InstanceRef]*instance
	nextSlot  uint64

	// accumulating batch
	reqs     []wire.Request
	fluid    wire.Batch
	hasFluid bool

	// conflict table: last instance that touched each key, and whether
	// it wrote (batch-level interference, explicit mode only).
	lastTouch map[uint64]keyTouch

	execReady []wire.InstanceRef // commit-order execution queue
}

type keyTouch struct {
	ref   wire.InstanceRef
	wrote bool
}

var _ engine.Machine = (*Replica)(nil)

// New builds a replica. sm may be nil for fluid workloads.
func New(cfg Config, sm StateMachine, cbs Callbacks) *Replica {
	cfg.fill()
	return &Replica{
		cfg:       cfg,
		sm:        sm,
		cbs:       cbs,
		instances: make(map[wire.InstanceRef]*instance),
		lastTouch: make(map[uint64]keyTouch),
	}
}

// Init implements engine.Machine.
func (r *Replica) Init(env engine.Env) {
	r.env = env
	env.After(r.cfg.BatchDuration, engine.Tag(tagBatch, 0))
}

// Timer implements engine.Machine.
func (r *Replica) Timer(tag engine.TimerTag) {
	if engine.TagKind(tag) == tagBatch {
		r.flush()
		r.env.After(r.cfg.BatchDuration, engine.Tag(tagBatch, 0))
	}
}

// Submit accepts one client command (explicit mode).
func (r *Replica) Submit(req wire.Request) {
	r.reqs = append(r.reqs, req)
	if len(r.reqs) >= r.cfg.MaxBatch {
		r.flush()
	}
}

// SubmitFluid accumulates an aggregate command batch (fluid mode). Note
// that unlike Canopus, reads contribute wire bytes: EPaxos replicates
// them.
func (r *Replica) SubmitFluid(reads, writes, bytes uint32, samples []wire.ArrivalSample) {
	r.hasFluid = true
	r.fluid.NumRead += reads
	r.fluid.NumWrite += writes
	r.fluid.ByteSize += bytes
	r.fluid.Samples = append(r.fluid.Samples, samples...)
	if int(r.fluid.NumRead+r.fluid.NumWrite) >= r.cfg.MaxBatch {
		r.flush()
	}
}

// flush proposes the accumulated batch as a new instance.
func (r *Replica) flush() {
	var b *wire.Batch
	switch {
	case len(r.reqs) > 0:
		var nr, nw uint32
		for i := range r.reqs {
			if r.reqs[i].Op == wire.OpWrite {
				nw++
			} else {
				nr++
			}
		}
		b = &wire.Batch{Origin: r.cfg.Self, Reqs: r.reqs, NumRead: nr, NumWrite: nw}
		r.reqs = nil
	case r.hasFluid:
		fl := r.fluid
		fl.Origin = r.cfg.Self
		b = &fl
		r.fluid = wire.Batch{}
		r.hasFluid = false
	default:
		return
	}

	r.nextSlot++
	ref := wire.InstanceRef{Replica: r.cfg.Self, Instance: r.nextSlot}
	seq, deps := r.attrsFor(b, ref)
	inst := &instance{
		ref: ref, batch: b, seq: seq, deps: deps,
		st: statusPreAccepted, mine: true, proposedAt: r.env.Now(),
	}
	r.instances[ref] = inst
	r.recordTouch(b, ref)

	if len(r.cfg.Peers) == 1 {
		r.commit(inst)
		return
	}
	msg := &wire.PreAccept{
		Replica: r.cfg.Self, Instance: ref.Instance, Ballot: inst.ballot,
		Batch: b, Seq: seq, Deps: deps,
	}
	for _, p := range r.cfg.Peers {
		if p != r.cfg.Self {
			r.env.Send(p, msg)
		}
	}
}

// attrsFor computes the EPaxos attributes: seq one greater than any
// conflicting instance's, deps the set of conflicting instances.
func (r *Replica) attrsFor(b *wire.Batch, self wire.InstanceRef) (uint64, []wire.InstanceRef) {
	var seq uint64
	depSet := make(map[wire.InstanceRef]bool)
	if b.Reqs != nil {
		for i := range b.Reqs {
			t, ok := r.lastTouch[b.Reqs[i].Key]
			if !ok || t.ref == self {
				continue
			}
			// Interference: write-write or read-write on the same key.
			if t.wrote || b.Reqs[i].Op == wire.OpWrite {
				if !depSet[t.ref] {
					depSet[t.ref] = true
				}
				if other := r.instances[t.ref]; other != nil && other.seq >= seq {
					seq = other.seq
				}
			}
		}
	}
	deps := make([]wire.InstanceRef, 0, len(depSet))
	for ref := range depSet {
		deps = append(deps, ref)
	}
	sort.Slice(deps, func(i, j int) bool {
		if deps[i].Replica != deps[j].Replica {
			return deps[i].Replica < deps[j].Replica
		}
		return deps[i].Instance < deps[j].Instance
	})
	return seq + 1, deps
}

func (r *Replica) recordTouch(b *wire.Batch, ref wire.InstanceRef) {
	if b.Reqs == nil {
		return
	}
	for i := range b.Reqs {
		k := b.Reqs[i].Key
		prev := r.lastTouch[k]
		r.lastTouch[k] = keyTouch{ref: ref, wrote: prev.wrote || b.Reqs[i].Op == wire.OpWrite}
	}
}

// fastQuorum returns the number of replies (excluding the leader) needed
// for the fast path: quorum size F + floor((F+1)/2) including leader.
func (r *Replica) fastQuorum() int {
	n := len(r.cfg.Peers)
	f := (n - 1) / 2
	return f + (f+1)/2 - 1
}

// slowQuorum returns replies (excluding leader) for the Accept round.
func (r *Replica) slowQuorum() int { return len(r.cfg.Peers)/2 + 1 - 1 }

// Recv implements engine.Machine.
func (r *Replica) Recv(from wire.NodeID, m wire.Message) {
	switch v := m.(type) {
	case *wire.PreAccept:
		r.onPreAccept(from, v)
	case *wire.PreAcceptReply:
		r.onPreAcceptReply(v)
	case *wire.Accept:
		r.onAccept(from, v)
	case *wire.AcceptReply:
		r.onAcceptReply(v)
	case *wire.Commit:
		r.onCommitMsg(v)
	}
}

func (r *Replica) onPreAccept(from wire.NodeID, m *wire.PreAccept) {
	ref := wire.InstanceRef{Replica: m.Replica, Instance: m.Instance}
	inst, ok := r.instances[ref]
	if ok && inst.st >= statusCommitted {
		return // already decided; reply is moot
	}
	// Merge the leader's attributes with local conflict knowledge.
	seq, deps := r.mergeAttrs(m.Batch, ref, m.Seq, m.Deps)
	if !ok {
		inst = &instance{ref: ref, ballot: m.Ballot}
		r.instances[ref] = inst
	}
	inst.batch = m.Batch
	inst.seq = seq
	inst.deps = deps
	inst.st = statusPreAccepted
	r.recordTouch(m.Batch, ref)
	r.env.Send(from, &wire.PreAcceptReply{
		Replica: m.Replica, Instance: m.Instance, Ballot: m.Ballot,
		From: r.cfg.Self, OK: true, Seq: seq, Deps: deps,
	})
}

func (r *Replica) mergeAttrs(b *wire.Batch, self wire.InstanceRef, seq uint64, deps []wire.InstanceRef) (uint64, []wire.InstanceRef) {
	localSeq, localDeps := r.attrsFor(b, self)
	if localSeq > seq {
		seq = localSeq
	}
	merged := make(map[wire.InstanceRef]bool, len(deps)+len(localDeps))
	for _, d := range deps {
		merged[d] = true
	}
	for _, d := range localDeps {
		merged[d] = true
	}
	out := make([]wire.InstanceRef, 0, len(merged))
	for d := range merged {
		out = append(out, d)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Replica != out[j].Replica {
			return out[i].Replica < out[j].Replica
		}
		return out[i].Instance < out[j].Instance
	})
	return seq, out
}

func depsEqual(a, b []wire.InstanceRef) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func (r *Replica) onPreAcceptReply(m *wire.PreAcceptReply) {
	ref := wire.InstanceRef{Replica: m.Replica, Instance: m.Instance}
	inst := r.instances[ref]
	if inst == nil || !inst.mine || inst.st != statusPreAccepted || m.Ballot != inst.ballot {
		return
	}
	if m.Seq != inst.seq || !depsEqual(m.Deps, inst.deps) {
		inst.depsChanged = true
		inst.seq, inst.deps = r.mergeReply(inst, m)
	}
	inst.preOKs++
	if inst.preOKs < r.fastQuorum() {
		return
	}
	if !inst.depsChanged {
		// Fast path: attributes unanimous across the quorum.
		r.commit(inst)
		return
	}
	// Slow path: one Accept round on the merged attributes.
	inst.st = statusAccepted
	inst.acceptOKs = 0
	msg := &wire.Accept{
		Replica: ref.Replica, Instance: ref.Instance, Ballot: inst.ballot,
		Seq: inst.seq, Deps: inst.deps,
	}
	for _, p := range r.cfg.Peers {
		if p != r.cfg.Self {
			r.env.Send(p, msg)
		}
	}
}

func (r *Replica) mergeReply(inst *instance, m *wire.PreAcceptReply) (uint64, []wire.InstanceRef) {
	seq := inst.seq
	if m.Seq > seq {
		seq = m.Seq
	}
	merged := make(map[wire.InstanceRef]bool, len(inst.deps)+len(m.Deps))
	for _, d := range inst.deps {
		merged[d] = true
	}
	for _, d := range m.Deps {
		merged[d] = true
	}
	out := make([]wire.InstanceRef, 0, len(merged))
	for d := range merged {
		out = append(out, d)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Replica != out[j].Replica {
			return out[i].Replica < out[j].Replica
		}
		return out[i].Instance < out[j].Instance
	})
	return seq, out
}

func (r *Replica) onAccept(from wire.NodeID, m *wire.Accept) {
	ref := wire.InstanceRef{Replica: m.Replica, Instance: m.Instance}
	inst := r.instances[ref]
	if inst == nil {
		inst = &instance{ref: ref, ballot: m.Ballot}
		r.instances[ref] = inst
	}
	if inst.st >= statusCommitted || m.Ballot < inst.ballot {
		return
	}
	inst.seq = m.Seq
	inst.deps = m.Deps
	inst.st = statusAccepted
	r.env.Send(from, &wire.AcceptReply{
		Replica: m.Replica, Instance: m.Instance, Ballot: m.Ballot,
		From: r.cfg.Self, OK: true,
	})
}

func (r *Replica) onAcceptReply(m *wire.AcceptReply) {
	ref := wire.InstanceRef{Replica: m.Replica, Instance: m.Instance}
	inst := r.instances[ref]
	if inst == nil || !inst.mine || inst.st != statusAccepted || m.Ballot != inst.ballot {
		return
	}
	inst.acceptOKs++
	if inst.acceptOKs >= r.slowQuorum() {
		r.commit(inst)
	}
}

// commit marks the instance committed at the leader, notifies all other
// replicas, and tries execution.
func (r *Replica) commit(inst *instance) {
	inst.st = statusCommitted
	if r.cbs.OnCommit != nil {
		r.cbs.OnCommit(inst.ref, inst.batch)
	}
	msg := &wire.Commit{
		Replica: inst.ref.Replica, Instance: inst.ref.Instance,
		Batch: inst.batch, Seq: inst.seq, Deps: inst.deps,
	}
	for _, p := range r.cfg.Peers {
		if p != r.cfg.Self {
			r.env.Send(p, msg)
		}
	}
	r.tryExecute(inst)
}

func (r *Replica) onCommitMsg(m *wire.Commit) {
	ref := wire.InstanceRef{Replica: m.Replica, Instance: m.Instance}
	inst := r.instances[ref]
	if inst == nil {
		inst = &instance{ref: ref}
		r.instances[ref] = inst
		r.recordTouch(m.Batch, ref)
	}
	if inst.st >= statusCommitted {
		return
	}
	inst.batch = m.Batch
	inst.seq = m.Seq
	inst.deps = m.Deps
	inst.st = statusCommitted
	r.tryExecute(inst)
}

// tryExecute executes inst if its dependencies allow, then cascades to
// dependents. Dependency cycles (possible in EPaxos) break in (seq,
// replica) order, the protocol's canonical tie-break.
func (r *Replica) tryExecute(inst *instance) {
	if !r.execute(inst, make(map[wire.InstanceRef]bool)) {
		return
	}
	// A successful execution may unblock earlier-arrived commits.
	for _, ref := range r.execReady {
		if dep := r.instances[ref]; dep != nil && dep.st == statusCommitted {
			r.execute(dep, make(map[wire.InstanceRef]bool))
		}
	}
	r.execReady = r.execReady[:0]
}

// execute runs inst if every dependency has executed (or is part of a
// cycle that inst dominates). Returns true if inst executed.
func (r *Replica) execute(inst *instance, visiting map[wire.InstanceRef]bool) bool {
	if inst.st == statusExecuted {
		return true
	}
	if inst.st != statusCommitted {
		return false
	}
	visiting[inst.ref] = true
	for _, d := range inst.deps {
		dep := r.instances[d]
		if dep == nil || dep.st < statusCommitted {
			r.execReady = append(r.execReady, inst.ref)
			return false // dependency not yet committed: wait
		}
		if dep.st == statusExecuted {
			continue
		}
		if visiting[d] {
			// Cycle: the lower (seq, replica) executes first.
			if dep.seq < inst.seq || (dep.seq == inst.seq && d.Replica < inst.ref.Replica) {
				if !r.execute(dep, visiting) {
					return false
				}
			}
			continue
		}
		if !r.execute(dep, visiting) {
			r.execReady = append(r.execReady, inst.ref)
			return false
		}
	}
	delete(visiting, inst.ref)
	if inst.st == statusExecuted {
		// A dependency cycle resolved this instance while we were
		// recursing through its deps; do not apply it twice.
		return true
	}

	inst.st = statusExecuted
	b := inst.batch
	if b != nil && b.Reqs != nil && r.sm != nil {
		for i := range b.Reqs {
			q := &b.Reqs[i]
			if q.Op == wire.OpWrite {
				r.sm.ApplyWrite(q)
			}
		}
		if inst.mine && r.cbs.OnReply != nil {
			for i := range b.Reqs {
				q := &b.Reqs[i]
				if q.Op == wire.OpRead {
					r.cbs.OnReply(q, r.sm.Read(q.Key))
				} else {
					r.cbs.OnReply(q, nil)
				}
			}
		}
	}
	if r.cbs.OnExecute != nil {
		r.cbs.OnExecute(inst.ref, b)
	}
	return true
}
