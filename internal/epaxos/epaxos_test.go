package epaxos

import (
	"testing"
	"time"

	"canopus/internal/kvstore"
	"canopus/internal/netsim"
	"canopus/internal/wire"
)

type epCluster struct {
	sim      *netsim.Sim
	runner   *netsim.Runner
	replicas []*Replica
	stores   []*kvstore.Store
	replies  map[wire.NodeID][]wire.Request
	commits  int
}

func newEPCluster(t *testing.T, n int, batch time.Duration) *epCluster {
	t.Helper()
	sim := netsim.NewSim()
	topo := netsim.SingleDC(1, n, netsim.Params{})
	runner := netsim.NewRunner(sim, topo, netsim.DefaultCosts(), 99)
	peers := make([]wire.NodeID, n)
	for i := range peers {
		peers[i] = wire.NodeID(i)
	}
	c := &epCluster{sim: sim, runner: runner, replies: make(map[wire.NodeID][]wire.Request)}
	for i := 0; i < n; i++ {
		id := wire.NodeID(i)
		st := kvstore.New()
		rep := New(Config{Self: id, Peers: peers, BatchDuration: batch}, st, Callbacks{
			OnCommit: func(ref wire.InstanceRef, b *wire.Batch) { c.commits++ },
			OnReply: func(req *wire.Request, val []byte) {
				c.replies[id] = append(c.replies[id], *req)
			},
		})
		c.replicas = append(c.replicas, rep)
		c.stores = append(c.stores, st)
		runner.Register(id, rep)
	}
	return c
}

func w(client, seq, key, val uint64) wire.Request {
	return wire.Request{Client: client, Seq: seq, Op: wire.OpWrite, Key: key, Val: []byte{byte(val)}}
}

func TestFastPathCommit(t *testing.T) {
	c := newEPCluster(t, 3, 2*time.Millisecond)
	c.sim.At(time.Millisecond, func() { c.replicas[0].Submit(w(1, 1, 10, 5)) })
	c.sim.RunUntil(200 * time.Millisecond)
	for i, st := range c.stores {
		if got := st.Read(10); len(got) != 1 || got[0] != 5 {
			t.Fatalf("replica %d: key 10 = %v, want [5]", i, got)
		}
	}
	if len(c.replies[0]) != 1 {
		t.Fatalf("replies = %d, want 1", len(c.replies[0]))
	}
}

func TestNonInterferingParallelCommit(t *testing.T) {
	c := newEPCluster(t, 5, 2*time.Millisecond)
	// Distinct keys at every replica: zero interference, all fast path.
	for i := 0; i < 5; i++ {
		id := wire.NodeID(i)
		c.sim.At(time.Millisecond, func() { c.replicas[id].Submit(w(uint64(i+1), 1, uint64(100+i), uint64(i))) })
	}
	c.sim.RunUntil(300 * time.Millisecond)
	for i, st := range c.stores {
		if st.Len() != 5 {
			t.Fatalf("replica %d has %d keys, want 5", i, st.Len())
		}
	}
}

func TestInterferingWritesConverge(t *testing.T) {
	// Two replicas write the same key in different batches; the
	// dependency order must make all replicas agree on the final value.
	c := newEPCluster(t, 3, 2*time.Millisecond)
	c.sim.At(time.Millisecond, func() { c.replicas[0].Submit(w(1, 1, 7, 1)) })
	// Second write after the first committed: strict dependency.
	c.sim.At(100*time.Millisecond, func() { c.replicas[1].Submit(w(2, 1, 7, 2)) })
	c.sim.RunUntil(500 * time.Millisecond)
	for i, st := range c.stores {
		if got := st.Read(7); len(got) != 1 || got[0] != 2 {
			t.Fatalf("replica %d: key 7 = %v, want [2]", i, got)
		}
	}
}

func TestConcurrentInterferenceAgreement(t *testing.T) {
	// Truly concurrent conflicting writes: both may take the slow path;
	// replicas must still converge to the same final value.
	c := newEPCluster(t, 3, 2*time.Millisecond)
	c.sim.At(time.Millisecond, func() { c.replicas[0].Submit(w(1, 1, 7, 1)) })
	c.sim.At(time.Millisecond, func() { c.replicas[1].Submit(w(2, 1, 7, 2)) })
	c.sim.RunUntil(time.Second)
	v0 := c.stores[0].Read(7)
	if len(v0) != 1 {
		t.Fatalf("replica 0: key 7 missing")
	}
	for i, st := range c.stores {
		got := st.Read(7)
		if len(got) != 1 || got[0] != v0[0] {
			t.Fatalf("replica %d: key 7 = %v, replica 0 has %v", i, got, v0)
		}
	}
}

func TestReadsTravelThroughConsensus(t *testing.T) {
	c := newEPCluster(t, 3, 2*time.Millisecond)
	c.sim.At(time.Millisecond, func() { c.replicas[0].Submit(w(1, 1, 3, 9)) })
	c.sim.At(100*time.Millisecond, func() {
		c.replicas[1].Submit(wire.Request{Client: 2, Seq: 1, Op: wire.OpRead, Key: 3})
	})
	c.sim.RunUntil(500 * time.Millisecond)
	reps := c.replies[1]
	if len(reps) != 1 || reps[0].Op != wire.OpRead {
		t.Fatalf("replica 1 replies = %v, want one read", reps)
	}
}

func TestBatchingCoalesces(t *testing.T) {
	c := newEPCluster(t, 3, 5*time.Millisecond)
	commits0 := 0
	c.replicas[0].cbs.OnCommit = func(ref wire.InstanceRef, b *wire.Batch) {
		if ref.Replica == 0 {
			commits0++
		}
	}
	// 10 requests inside one 5ms window -> one instance.
	for i := 0; i < 10; i++ {
		c.sim.At(time.Millisecond, func() { c.replicas[0].Submit(w(1, uint64(i+1), uint64(50+i), 1)) })
	}
	c.sim.RunUntil(200 * time.Millisecond)
	if commits0 != 1 {
		t.Fatalf("instances committed = %d, want 1 (batched)", commits0)
	}
}

func TestFastQuorumSizes(t *testing.T) {
	// EPaxos fast-path quorum is F + floor((F+1)/2) replicas including
	// the command leader; `replies` is what the leader must hear back.
	for _, tc := range []struct{ n, replies int }{
		{3, 1}, {5, 2}, {7, 4}, {9, 5},
	} {
		r := New(Config{Self: 0, Peers: make([]wire.NodeID, tc.n)}, nil, Callbacks{})
		if got := r.fastQuorum(); got != tc.replies {
			t.Errorf("fastQuorum(n=%d) = %d, want %d", tc.n, got, tc.replies)
		}
	}
}
