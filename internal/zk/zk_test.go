package zk

import (
	"testing"
	"time"

	"canopus/internal/core"
	"canopus/internal/lot"
	"canopus/internal/netsim"
	"canopus/internal/wire"
)

func TestTreeApplySemantics(t *testing.T) {
	tr := NewTree()
	apply := func(op WriteOp, path string, data []byte) {
		tr.ApplyWrite(&wire.Request{Op: wire.OpWrite, Key: PathKey(path), Val: EncodeWrite(op, path, data)})
	}
	apply(OpCreate, "/a", []byte("1"))
	apply(OpCreate, "/a", []byte("2")) // create-if-absent: no-op
	if got := tr.GetLocal("/a"); string(got.Data) != "1" || got.Version != 1 {
		t.Fatalf("/a = %q v%d", got.Data, got.Version)
	}
	apply(OpSet, "/a", []byte("3"))
	if got := tr.GetLocal("/a"); string(got.Data) != "3" || got.Version != 2 {
		t.Fatalf("/a after set = %q v%d", got.Data, got.Version)
	}
	apply(OpDeleteIfValue, "/a", []byte("nope")) // mismatch: no-op
	if tr.GetLocal("/a") == nil {
		t.Fatal("conditional delete fired on mismatch")
	}
	apply(OpDeleteIfValue, "/a", []byte("3"))
	if tr.GetLocal("/a") != nil {
		t.Fatal("conditional delete missed")
	}
	// Read through the consensus key space.
	apply(OpSet, "/b", []byte("bee"))
	if got := tr.Read(PathKey("/b")); string(got) != "bee" {
		t.Fatalf("Read = %q", got)
	}
}

func TestWatchFiresOnce(t *testing.T) {
	tr := NewTree()
	fired := 0
	tr.Watch("/w", func(n *ZNode) { fired++ })
	set := func(v string) {
		tr.ApplyWrite(&wire.Request{Op: wire.OpWrite, Key: PathKey("/w"), Val: EncodeWrite(OpSet, "/w", []byte(v))})
	}
	set("1")
	set("2")
	if fired != 1 {
		t.Fatalf("watch fired %d times, want 1 (one-shot)", fired)
	}
}

func TestSnapshotRebuild(t *testing.T) {
	tr := NewTree()
	for _, p := range []string{"/x", "/y", "/z"} {
		tr.ApplyWrite(&wire.Request{Op: wire.OpWrite, Key: PathKey(p), Val: EncodeWrite(OpSet, p, []byte(p))})
	}
	snap := tr.Snapshot()
	tr2 := NewTree()
	for i := range snap {
		tr2.ApplyWrite(&snap[i])
	}
	if tr2.Len() != 3 || string(tr2.GetLocal("/y").Data) != "/y" {
		t.Fatal("snapshot rebuild mismatch")
	}
}

func TestEncodeDecodeWrite(t *testing.T) {
	v := EncodeWrite(OpSet, "/some/path", []byte("data"))
	op, path, data, ok := DecodeWrite(v)
	if !ok || op != OpSet || path != "/some/path" || string(data) != "data" {
		t.Fatalf("decode = %v %q %q %v", op, path, data, ok)
	}
	if _, _, _, ok := DecodeWrite([]byte{1}); ok {
		t.Fatal("truncated write decoded")
	}
}

// TestZKCanopusEndToEnd runs the coordination layer over real Canopus
// consensus on the simulator: a lock race with linearizable verify.
func TestZKCanopusEndToEnd(t *testing.T) {
	sim := netsim.NewSim()
	topo := netsim.SingleDC(2, 3, netsim.Params{})
	runner := netsim.NewRunner(sim, topo, netsim.DefaultCosts(), 17)
	tree, _ := lot.New(lot.Config{SuperLeaves: [][]wire.NodeID{
		topo.RackMembers(0), topo.RackMembers(1),
	}})
	servers := make([]*Server, 6)
	for i := 0; i < 6; i++ {
		id := wire.NodeID(i)
		zt := NewTree()
		node := core.NewNode(core.Config{Tree: tree, Self: id}, zt, core.Callbacks{})
		srv := NewServer(zt, node, uint64(i)+1, true)
		node.SetOnReply(func(req *wire.Request, val []byte) { srv.Complete(req, val) })
		servers[i] = srv
		runner.Register(id, node)
	}
	winners := 0
	for _, i := range []int{0, 3, 5} {
		srv := servers[i]
		me := []byte{byte(i)}
		sim.At(time.Millisecond, func() {
			srv.Create("/lock", me, func(*ZNode) {
				srv.Get("/lock", func(n *ZNode) {
					if n != nil && len(n.Data) == 1 && n.Data[0] == me[0] {
						winners++
					}
				})
			})
		})
	}
	sim.RunUntil(2 * time.Second)
	if winners != 1 {
		t.Fatalf("winners = %d, want exactly 1", winners)
	}
}
