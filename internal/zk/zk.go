// Package zk is a small ZooKeeper-like coordination service with a
// pluggable atomic-broadcast engine, mirroring the paper's ZKCanopus:
// "a modified version of ZooKeeper that replaces Zab with Canopus"
// (§8). Backed by zab.Node it behaves like ZooKeeper (local,
// sequentially consistent reads); backed by core.Node it becomes
// ZKCanopus (linearizable reads through Canopus's read delay, no leader
// bottleneck).
//
// The data model is a flat tree of znodes addressed by slash-separated
// paths, supporting Create (no-op if present), Set, Delete,
// DeleteIfValue (conditional, for lock release), Get and Exists, plus
// local watches that fire when a committed write touches a path.
package zk

import (
	"encoding/binary"
	"hash/fnv"
	"sort"

	"canopus/internal/wire"
)

// WriteOp is a znode mutation kind, carried in the first byte of the
// consensus request value.
type WriteOp uint8

const (
	// OpCreate creates the znode if absent; applying to an existing
	// znode is a no-op (callers detect failure with a follow-up Get —
	// linearizable under ZKCanopus).
	OpCreate WriteOp = iota + 1
	// OpSet upserts the znode data and bumps its version.
	OpSet
	// OpDelete removes the znode unconditionally.
	OpDelete
	// OpDeleteIfValue removes the znode only if its data matches,
	// which is exactly what a lock holder needs to release safely.
	OpDeleteIfValue
)

// ZNode is one tree entry.
type ZNode struct {
	Path    string
	Data    []byte
	Version uint32
}

// PathKey hashes a znode path to the 64-bit key space the consensus
// engines order on (and take write leases on).
func PathKey(path string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(path))
	return h.Sum64()
}

// EncodeWrite packs a znode mutation into a consensus request value.
func EncodeWrite(op WriteOp, path string, data []byte) []byte {
	out := make([]byte, 0, 1+2+len(path)+len(data))
	out = append(out, byte(op))
	var l [2]byte
	binary.LittleEndian.PutUint16(l[:], uint16(len(path)))
	out = append(out, l[:]...)
	out = append(out, path...)
	return append(out, data...)
}

// DecodeWrite unpacks a znode mutation; ok is false on malformed input.
func DecodeWrite(v []byte) (op WriteOp, path string, data []byte, ok bool) {
	if len(v) < 3 {
		return 0, "", nil, false
	}
	op = WriteOp(v[0])
	n := int(binary.LittleEndian.Uint16(v[1:3]))
	if len(v) < 3+n {
		return 0, "", nil, false
	}
	path = string(v[3 : 3+n])
	data = v[3+n:]
	return op, path, data, true
}

// Tree is the replicated znode state machine. It implements the
// StateMachine interface of both consensus engines.
type Tree struct {
	byPath map[string]*ZNode
	byKey  map[uint64]*ZNode
	// watches are local (not replicated): path -> callbacks fired on the
	// next committed mutation of that path.
	watches map[string][]func(*ZNode)
}

// NewTree creates an empty znode tree.
func NewTree() *Tree {
	return &Tree{
		byPath:  make(map[string]*ZNode),
		byKey:   make(map[uint64]*ZNode),
		watches: make(map[string][]func(*ZNode)),
	}
}

// ApplyWrite implements the consensus StateMachine interface.
func (t *Tree) ApplyWrite(req *wire.Request) {
	op, path, data, ok := DecodeWrite(req.Val)
	if !ok {
		return
	}
	key := PathKey(path)
	n := t.byPath[path]
	switch op {
	case OpCreate:
		if n != nil {
			return // create of an existing znode: no-op
		}
		n = &ZNode{Path: path, Data: append([]byte(nil), data...), Version: 1}
		t.byPath[path] = n
		t.byKey[key] = n
	case OpSet:
		if n == nil {
			n = &ZNode{Path: path}
			t.byPath[path] = n
			t.byKey[key] = n
		}
		n.Data = append([]byte(nil), data...)
		n.Version++
	case OpDelete:
		if n == nil {
			return
		}
		delete(t.byPath, path)
		delete(t.byKey, key)
		n = nil
	case OpDeleteIfValue:
		if n == nil || string(n.Data) != string(data) {
			return
		}
		delete(t.byPath, path)
		delete(t.byKey, key)
		n = nil
	default:
		return
	}
	t.fireWatches(path, n)
}

func (t *Tree) fireWatches(path string, n *ZNode) {
	ws := t.watches[path]
	if len(ws) == 0 {
		return
	}
	delete(t.watches, path)
	for _, w := range ws {
		w(n)
	}
}

// Watch registers a one-shot local callback for the next committed
// mutation of path (nil argument = deleted).
func (t *Tree) Watch(path string, fn func(*ZNode)) {
	t.watches[path] = append(t.watches[path], fn)
}

// Read implements the consensus StateMachine read (keyed by path hash).
func (t *Tree) Read(key uint64) []byte {
	if n := t.byKey[key]; n != nil {
		return n.Data
	}
	return nil
}

// GetLocal returns the znode at path from local committed state.
func (t *Tree) GetLocal(path string) *ZNode { return t.byPath[path] }

// Len returns the number of znodes.
func (t *Tree) Len() int { return len(t.byPath) }

// Snapshot implements the join-protocol state transfer: a deterministic
// rebuild script.
func (t *Tree) Snapshot() []wire.Request {
	paths := make([]string, 0, len(t.byPath))
	for p := range t.byPath {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	out := make([]wire.Request, 0, len(paths))
	for _, p := range paths {
		n := t.byPath[p]
		out = append(out, wire.Request{
			Op:  wire.OpWrite,
			Key: PathKey(p),
			Val: EncodeWrite(OpSet, p, n.Data),
		})
	}
	return out
}

// Backend abstracts the consensus engine under a zk server: both
// core.Node (ZKCanopus) and zab.Node (ZooKeeper) satisfy it.
type Backend interface {
	Submit(req wire.Request)
}

// Server is one coordination-service node: a Backend ordering writes
// into a Tree, plus client-facing async operations. Completion callbacks
// fire from the engine's OnReply hook, which the caller must route to
// Complete.
type Server struct {
	tree    *Tree
	backend Backend

	// Linearizable reads: true routes Get through the consensus engine
	// (ZKCanopus); false reads local state immediately (ZooKeeper).
	linearizableReads bool

	client  uint64
	nextSeq uint64
	pending map[uint64]func(*ZNode)
}

// NewServer wires a server over an engine and its tree. client must be
// unique across the deployment (one per server is natural).
func NewServer(tree *Tree, backend Backend, client uint64, linearizableReads bool) *Server {
	return &Server{
		tree:              tree,
		backend:           backend,
		linearizableReads: linearizableReads,
		client:            client,
		pending:           make(map[uint64]func(*ZNode)),
	}
}

// Tree exposes the underlying znode tree (for watches and local reads).
func (s *Server) Tree() *Tree { return s.tree }

// Complete must be called from the engine's OnReply hook with this
// server's requests; it resolves the pending operation.
func (s *Server) Complete(req *wire.Request, val []byte) {
	if req.Client != s.client {
		return
	}
	cb, ok := s.pending[req.Seq]
	if !ok {
		return
	}
	delete(s.pending, req.Seq)
	if cb == nil {
		return
	}
	if req.Op == wire.OpRead {
		if val == nil {
			cb(nil)
			return
		}
		cb(&ZNode{Data: val})
		return
	}
	cb(s.tree.GetLocal(pathOf(req)))
}

func pathOf(req *wire.Request) string {
	_, path, _, ok := DecodeWrite(req.Val)
	if !ok {
		return ""
	}
	return path
}

func (s *Server) submitWrite(op WriteOp, path string, data []byte, done func(*ZNode)) {
	s.nextSeq++
	req := wire.Request{
		Client: s.client,
		Seq:    s.nextSeq,
		Op:     wire.OpWrite,
		Key:    PathKey(path),
		Val:    EncodeWrite(op, path, data),
	}
	s.pending[req.Seq] = done
	s.backend.Submit(req)
}

// Create creates path with data; done receives the znode as committed
// (which may be a prior creator's, mirroring ZooKeeper's NodeExists).
func (s *Server) Create(path string, data []byte, done func(*ZNode)) {
	s.submitWrite(OpCreate, path, data, done)
}

// Set upserts path's data.
func (s *Server) Set(path string, data []byte, done func(*ZNode)) {
	s.submitWrite(OpSet, path, data, done)
}

// Delete removes path unconditionally.
func (s *Server) Delete(path string, done func(*ZNode)) {
	s.submitWrite(OpDelete, path, nil, done)
}

// DeleteIfValue removes path only if its data equals data.
func (s *Server) DeleteIfValue(path string, data []byte, done func(*ZNode)) {
	s.submitWrite(OpDeleteIfValue, path, data, done)
}

// Get fetches path. Under ZKCanopus this is a linearizable read ordered
// by the consensus protocol; under ZooKeeper it returns local committed
// state immediately.
func (s *Server) Get(path string, done func(*ZNode)) {
	if !s.linearizableReads {
		done(s.tree.GetLocal(path))
		return
	}
	s.nextSeq++
	req := wire.Request{
		Client: s.client,
		Seq:    s.nextSeq,
		Op:     wire.OpRead,
		Key:    PathKey(path),
	}
	s.pending[req.Seq] = done
	s.backend.Submit(req)
}
