package netsim

import (
	"testing"
	"time"

	"canopus/internal/engine"
	"canopus/internal/wire"
)

// pingAt schedules a unicast Ping from a's env at virtual time at.
func pingAt(sim *Sim, m *echoMachine, at time.Duration, to wire.NodeID) {
	sim.At(at, func() { m.env.Send(to, &wire.Ping{From: m.env.ID()}) })
}

func faultPair(t *testing.T) (*Sim, *Runner, *echoMachine, *echoMachine) {
	t.Helper()
	sim := NewSim()
	topo := SingleDC(2, 1, Params{}) // two racks, so the pair crosses the aggregation layer
	r := NewRunner(sim, topo, DefaultCosts(), 1)
	a, b := &echoMachine{}, &echoMachine{}
	r.Register(0, a)
	r.Register(1, b)
	return sim, r, a, b
}

func TestPartitionCutsAndHeals(t *testing.T) {
	sim, r, a, b := faultPair(t)
	r.InstallFaults(FaultPlan{Partitions: []PartitionFault{{
		At: 10 * time.Millisecond, Heal: 30 * time.Millisecond,
		A: []wire.NodeID{0}, B: []wire.NodeID{1},
	}}}, nil)

	pingAt(sim, a, 5*time.Millisecond, 1)  // before the cut: delivered
	pingAt(sim, a, 15*time.Millisecond, 1) // during: dropped
	pingAt(sim, b, 20*time.Millisecond, 0) // both directions are cut
	pingAt(sim, a, 35*time.Millisecond, 1) // after heal: delivered

	sim.RunUntil(12 * time.Millisecond)
	if !r.Partitioned(0, 1) || !r.Partitioned(1, 0) {
		t.Fatal("partition not active at t=12ms")
	}
	sim.RunUntil(50 * time.Millisecond)
	if r.Partitioned(0, 1) {
		t.Fatal("partition did not heal")
	}
	if b.got != 2 {
		t.Fatalf("node 1 received %d messages, want 2 (pre-cut and post-heal)", b.got)
	}
	if a.got != 0 {
		t.Fatalf("node 0 received %d messages, want 0", a.got)
	}
}

func TestLatencySpikeDelaysDelivery(t *testing.T) {
	const extra = 40 * time.Millisecond
	sim, r, a, b := faultPair(t)
	r.InstallFaults(FaultPlan{Latencies: []LatencyFault{{
		At: 0, Until: 100 * time.Millisecond,
		From: []wire.NodeID{0}, To: []wire.NodeID{1}, Extra: extra,
	}}}, nil)
	pingAt(sim, a, time.Millisecond, 1)
	sim.RunUntil(extra - time.Millisecond)
	if b.got != 0 {
		t.Fatal("message arrived before the spike delay elapsed")
	}
	sim.RunUntil(extra + 10*time.Millisecond)
	if b.got != 1 {
		t.Fatalf("message never arrived: got=%d", b.got)
	}
	// Expired window: back to base latency.
	pingAt(sim, a, 110*time.Millisecond, 1)
	sim.RunUntil(115 * time.Millisecond)
	if b.got != 2 {
		t.Fatal("post-window message still delayed")
	}
}

func TestDropFaultIsProbabilisticAndDeterministic(t *testing.T) {
	run := func() int {
		sim := NewSim()
		topo := SingleDC(2, 1, Params{})
		r := NewRunner(sim, topo, DefaultCosts(), 7)
		a, b := &echoMachine{}, &echoMachine{}
		r.Register(0, a)
		r.Register(1, b)
		r.InstallFaults(FaultPlan{Drops: []DropFault{{
			At: 0, Until: 10 * time.Second,
			From: []wire.NodeID{0}, To: []wire.NodeID{1}, Prob: 0.5,
		}}}, nil)
		for i := 0; i < 200; i++ {
			pingAt(sim, a, time.Duration(i+1)*time.Millisecond, 1)
		}
		sim.RunUntil(time.Second)
		return b.got
	}
	got := run()
	if got < 50 || got > 150 {
		t.Fatalf("delivered %d of 200 at 50%% loss", got)
	}
	if again := run(); again != got {
		t.Fatalf("drop pattern not deterministic: %d vs %d", got, again)
	}
}

func TestCrashAndRestartViaPlan(t *testing.T) {
	sim, r, a, b := faultPair(t)
	var b2 *echoMachine
	r.InstallFaults(FaultPlan{Crashes: []CrashFault{{
		At: 10 * time.Millisecond, Node: 1, RestartAt: 30 * time.Millisecond,
	}}}, func(id wire.NodeID) engine.Machine {
		b2 = &echoMachine{}
		return b2
	})
	pingAt(sim, a, 15*time.Millisecond, 1) // while down: dropped
	pingAt(sim, a, 40*time.Millisecond, 1) // after restart: fresh machine receives
	sim.RunUntil(100 * time.Millisecond)
	if b.got != 0 {
		t.Fatalf("crashed machine received %d messages", b.got)
	}
	if b2 == nil || b2.got != 1 {
		t.Fatalf("restarted machine state: %+v", b2)
	}
	if !r.Alive(1) {
		t.Fatal("node 1 should be alive after restart")
	}
}

func TestEmpty(t *testing.T) {
	p := FaultPlan{Crashes: []CrashFault{{At: time.Second, Node: 2}}}
	if p.Empty() || !(&FaultPlan{}).Empty() {
		t.Fatal("Empty misclassifies")
	}
}
