package netsim

import (
	"testing"
	"time"

	"canopus/internal/engine"
	"canopus/internal/wire"
)

// pingAt schedules a unicast Ping from a's env at virtual time at.
func pingAt(sim *Sim, m *echoMachine, at time.Duration, to wire.NodeID) {
	sim.At(at, func() { m.env.Send(to, &wire.Ping{From: m.env.ID()}) })
}

func faultPair(t *testing.T) (*Sim, *Runner, *echoMachine, *echoMachine) {
	t.Helper()
	sim := NewSim()
	topo := SingleDC(2, 1, Params{}) // two racks, so the pair crosses the aggregation layer
	r := NewRunner(sim, topo, DefaultCosts(), 1)
	a, b := &echoMachine{}, &echoMachine{}
	r.Register(0, a)
	r.Register(1, b)
	return sim, r, a, b
}

func TestPartitionCutsAndHeals(t *testing.T) {
	sim, r, a, b := faultPair(t)
	r.InstallFaults(FaultPlan{Partitions: []PartitionFault{{
		At: 10 * time.Millisecond, Heal: 30 * time.Millisecond,
		A: []wire.NodeID{0}, B: []wire.NodeID{1},
	}}}, nil)

	pingAt(sim, a, 5*time.Millisecond, 1)  // before the cut: delivered
	pingAt(sim, a, 15*time.Millisecond, 1) // during: dropped
	pingAt(sim, b, 20*time.Millisecond, 0) // both directions are cut
	pingAt(sim, a, 35*time.Millisecond, 1) // after heal: delivered

	sim.RunUntil(12 * time.Millisecond)
	if !r.Partitioned(0, 1) || !r.Partitioned(1, 0) {
		t.Fatal("partition not active at t=12ms")
	}
	sim.RunUntil(50 * time.Millisecond)
	if r.Partitioned(0, 1) {
		t.Fatal("partition did not heal")
	}
	if b.got != 2 {
		t.Fatalf("node 1 received %d messages, want 2 (pre-cut and post-heal)", b.got)
	}
	if a.got != 0 {
		t.Fatalf("node 0 received %d messages, want 0", a.got)
	}
}

func TestLatencySpikeDelaysDelivery(t *testing.T) {
	const extra = 40 * time.Millisecond
	sim, r, a, b := faultPair(t)
	r.InstallFaults(FaultPlan{Latencies: []LatencyFault{{
		At: 0, Until: 100 * time.Millisecond,
		From: []wire.NodeID{0}, To: []wire.NodeID{1}, Extra: extra,
	}}}, nil)
	pingAt(sim, a, time.Millisecond, 1)
	sim.RunUntil(extra - time.Millisecond)
	if b.got != 0 {
		t.Fatal("message arrived before the spike delay elapsed")
	}
	sim.RunUntil(extra + 10*time.Millisecond)
	if b.got != 1 {
		t.Fatalf("message never arrived: got=%d", b.got)
	}
	// Expired window: back to base latency.
	pingAt(sim, a, 110*time.Millisecond, 1)
	sim.RunUntil(115 * time.Millisecond)
	if b.got != 2 {
		t.Fatal("post-window message still delayed")
	}
}

func TestDropFaultIsProbabilisticAndDeterministic(t *testing.T) {
	run := func() int {
		sim := NewSim()
		topo := SingleDC(2, 1, Params{})
		r := NewRunner(sim, topo, DefaultCosts(), 7)
		a, b := &echoMachine{}, &echoMachine{}
		r.Register(0, a)
		r.Register(1, b)
		r.InstallFaults(FaultPlan{Drops: []DropFault{{
			At: 0, Until: 10 * time.Second,
			From: []wire.NodeID{0}, To: []wire.NodeID{1}, Prob: 0.5,
		}}}, nil)
		for i := 0; i < 200; i++ {
			pingAt(sim, a, time.Duration(i+1)*time.Millisecond, 1)
		}
		sim.RunUntil(time.Second)
		return b.got
	}
	got := run()
	if got < 50 || got > 150 {
		t.Fatalf("delivered %d of 200 at 50%% loss", got)
	}
	if again := run(); again != got {
		t.Fatalf("drop pattern not deterministic: %d vs %d", got, again)
	}
}

func TestCrashAndRestartViaPlan(t *testing.T) {
	sim, r, a, b := faultPair(t)
	var b2 *echoMachine
	r.InstallFaults(FaultPlan{Crashes: []CrashFault{{
		At: 10 * time.Millisecond, Node: 1, RestartAt: 30 * time.Millisecond,
	}}}, func(id wire.NodeID) engine.Machine {
		b2 = &echoMachine{}
		return b2
	})
	pingAt(sim, a, 15*time.Millisecond, 1) // while down: dropped
	pingAt(sim, a, 40*time.Millisecond, 1) // after restart: fresh machine receives
	sim.RunUntil(100 * time.Millisecond)
	if b.got != 0 {
		t.Fatalf("crashed machine received %d messages", b.got)
	}
	if b2 == nil || b2.got != 1 {
		t.Fatalf("restarted machine state: %+v", b2)
	}
	if !r.Alive(1) {
		t.Fatal("node 1 should be alive after restart")
	}
}

func TestEmpty(t *testing.T) {
	p := FaultPlan{Crashes: []CrashFault{{At: time.Second, Node: 2}}}
	if p.Empty() || !(&FaultPlan{}).Empty() {
		t.Fatal("Empty misclassifies")
	}
}

func TestLeafPartitionKeepsIntraLeafLinks(t *testing.T) {
	sim := NewSim()
	topo := SingleDC(2, 2, Params{}) // racks {0,1} and {2,3}
	r := NewRunner(sim, topo, DefaultCosts(), 1)
	ms := make([]*echoMachine, 4)
	for i := range ms {
		ms[i] = &echoMachine{}
		r.Register(wire.NodeID(i), ms[i])
	}
	leaf, rest := []wire.NodeID{0, 1}, []wire.NodeID{2, 3}
	r.InstallFaults(FaultPlan{Partitions: []PartitionFault{
		LeafPartition(10*time.Millisecond, 30*time.Millisecond, leaf, rest),
	}}, nil)

	pingAt(sim, ms[0], 15*time.Millisecond, 1) // intra-leaf: stays up
	pingAt(sim, ms[0], 15*time.Millisecond, 2) // cross: cut
	pingAt(sim, ms[2], 15*time.Millisecond, 0) // cross, reverse: cut
	pingAt(sim, ms[2], 15*time.Millisecond, 3) // other leaf's intra: up
	pingAt(sim, ms[0], 35*time.Millisecond, 2) // post-heal: delivered

	sim.RunUntil(50 * time.Millisecond)
	if ms[1].got != 1 {
		t.Fatalf("intra-leaf delivery during cut: got %d, want 1", ms[1].got)
	}
	if ms[3].got != 1 {
		t.Fatalf("survivor-side intra delivery during cut: got %d, want 1", ms[3].got)
	}
	if ms[2].got != 1 {
		t.Fatalf("cross-leaf deliveries: got %d, want 1 (post-heal only)", ms[2].got)
	}
	if ms[0].got != 0 {
		t.Fatalf("reverse cross-leaf delivery during cut: got %d, want 0", ms[0].got)
	}
}

func TestLeafMajorityCrashPlanShape(t *testing.T) {
	members := []wire.NodeID{6, 7, 8}
	got := LeafMajorityCrash(2*time.Second, members, 4*time.Second)
	if len(got) != 2 {
		t.Fatalf("crashed %d of 3, want 2 (majority)", len(got))
	}
	for i, cf := range got {
		if cf.Node != members[i] {
			t.Fatalf("crash %d targets %v, want lowest IDs first (%v)", i, cf.Node, members[i])
		}
		if cf.At != 2*time.Second || cf.RestartAt != 4*time.Second {
			t.Fatalf("crash %d schedule (%v, %v), want (2s, 4s)", i, cf.At, cf.RestartAt)
		}
	}
	if n := len(LeafMajorityCrash(0, []wire.NodeID{0, 1, 2, 3, 4}, 0)); n != 3 {
		t.Fatalf("majority of 5 = %d, want 3", n)
	}
}

func TestLeafPowerLossPlanShape(t *testing.T) {
	members := []wire.NodeID{3, 4, 5}
	got := LeafPowerLoss(time.Second, members, 0)
	if len(got) != len(members) {
		t.Fatalf("crashed %d of %d, want the whole leaf", len(got), len(members))
	}
	for i, cf := range got {
		if cf.Node != members[i] || cf.At != time.Second || cf.RestartAt != 0 {
			t.Fatalf("crash %d = %+v, want node %v at 1s, no restart", i, cf, members[i])
		}
	}
}

func TestUniformWANDelayMatrix(t *testing.T) {
	m := UniformWANDelay(3, 10*time.Millisecond)
	if len(m) != 3 {
		t.Fatalf("%d rows, want 3", len(m))
	}
	for i := range m {
		for j := range m[i] {
			want := 10 * time.Millisecond
			if i == j {
				want = 0
			}
			if m[i][j] != want {
				t.Fatalf("m[%d][%d] = %v, want %v", i, j, m[i][j], want)
			}
		}
	}
}

func TestGeoWANDelayMatrix(t *testing.T) {
	class := []time.Duration{MetroOneWay, RegionalOneWay, IntercontinentalOneWay}
	m := GeoWANDelay(class)
	for i := range m {
		if m[i][i] != 0 {
			t.Fatalf("diagonal m[%d][%d] = %v, want 0", i, i, m[i][i])
		}
		for j := range m[i] {
			if m[i][j] != m[j][i] {
				t.Fatalf("asymmetric: m[%d][%d]=%v m[%d][%d]=%v", i, j, m[i][j], j, i, m[j][i])
			}
		}
	}
	if m[0][1] != RegionalOneWay {
		t.Fatalf("metro-regional = %v, want the larger class %v", m[0][1], RegionalOneWay)
	}
	if m[0][2] != IntercontinentalOneWay || m[1][2] != IntercontinentalOneWay {
		t.Fatalf("pairs with the transoceanic DC must pay its span: got %v, %v", m[0][2], m[1][2])
	}
}
