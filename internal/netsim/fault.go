package netsim

import (
	"math/rand"
	"time"

	"canopus/internal/engine"
	"canopus/internal/wire"
)

// Deterministic fault injection.
//
// A FaultPlan is a declarative schedule of network and node faults,
// executed on the simulation's virtual clock. Because every fault fires
// at a fixed virtual time and every probabilistic decision draws from a
// dedicated seeded source in deterministic event order, a run with the
// same seed and the same plan replays bit-identically — the property the
// chaos harness relies on to diff commit logs across replays.
//
// Network faults act at send time: a message crossing a cut or lossy
// pair is dropped before it is scheduled for delivery, and a message
// crossing a slowed pair has the extra delay added to its arrival time.
// Messages already in flight when a partition starts are delivered (they
// left the sender before the cut), matching how a real partition severs
// a path rather than erasing packets retroactively.

// PartitionFault cuts every link between node sets A and B, in both
// directions, from At until Heal (Heal == 0 means the partition never
// heals).
type PartitionFault struct {
	At   time.Duration
	Heal time.Duration
	A, B []wire.NodeID
}

// CrashFault crash-stops Node at At with total state loss. If RestartAt
// is non-zero and a restart factory was installed, the node comes back
// at RestartAt with a fresh machine (typically a protocol-level joiner).
type CrashFault struct {
	At        time.Duration
	Node      wire.NodeID
	RestartAt time.Duration
}

// LatencyFault adds Extra one-way delay to every message from a node in
// From to a node in To (directed), from At until Until. Nil From or To
// means "all nodes".
type LatencyFault struct {
	At, Until time.Duration
	From, To  []wire.NodeID
	Extra     time.Duration
}

// DropFault drops each message from a node in From to a node in To
// (directed) with probability Prob, from At until Until. Nil From or To
// means "all nodes". Overlapping drop windows on the same pair combine
// additively, capped at 1.
type DropFault struct {
	At, Until time.Duration
	From, To  []wire.NodeID
	Prob      float64
}

// LeafPartition cuts one super-leaf's members off from everyone else —
// the whole-leaf network fault the eviction protocol (internal/core
// leaf.go) is built for. Intra-leaf links stay up: the leaf keeps its
// reliable broadcast and discovers the cut only through failed fetches.
func LeafPartition(at, heal time.Duration, members, others []wire.NodeID) PartitionFault {
	return PartitionFault{At: at, Heal: heal, A: members, B: others}
}

// LeafMajorityCrash crash-stops a majority (⌈n/2⌉, lowest IDs first) of
// one super-leaf's members at `at`: the survivors lose their reliable
// broadcast quorum and stall, while the rest of the cluster loses the
// leaf's state. RestartAt (0 = never) applies to every crashed node.
func LeafMajorityCrash(at time.Duration, members []wire.NodeID, restartAt time.Duration) []CrashFault {
	n := (len(members) + 1) / 2
	out := make([]CrashFault, 0, n)
	for _, id := range members[:n] {
		out = append(out, CrashFault{At: at, Node: id, RestartAt: restartAt})
	}
	return out
}

// LeafPowerLoss crash-stops every member of one super-leaf at `at` — the
// rack lost power. RestartAt (0 = never) applies to all of them.
func LeafPowerLoss(at time.Duration, members []wire.NodeID, restartAt time.Duration) []CrashFault {
	out := make([]CrashFault, 0, len(members))
	for _, id := range members {
		out = append(out, CrashFault{At: at, Node: id, RestartAt: restartAt})
	}
	return out
}

// FaultPlan is a full fault schedule for one run.
type FaultPlan struct {
	Partitions []PartitionFault
	Crashes    []CrashFault
	Latencies  []LatencyFault
	Drops      []DropFault
}

// Empty reports whether the plan schedules nothing.
func (p *FaultPlan) Empty() bool {
	return len(p.Partitions) == 0 && len(p.Crashes) == 0 &&
		len(p.Latencies) == 0 && len(p.Drops) == 0
}

// pairFault is the live fault state of one directed (src,dst) pair.
type pairFault struct {
	cut   int // number of active partitions covering the pair
	extra time.Duration
	drop  float64
}

// faultState holds the runner's active network faults.
type faultState struct {
	pairs map[uint64]*pairFault
	rng   *rand.Rand // dedicated source: drops don't perturb node RNGs
}

func pairKey(from, to wire.NodeID) uint64 {
	return uint64(uint32(from))<<32 | uint64(uint32(to))
}

func (f *faultState) pair(from, to wire.NodeID) *pairFault {
	k := pairKey(from, to)
	p := f.pairs[k]
	if p == nil {
		p = &pairFault{}
		f.pairs[k] = p
	}
	return p
}

// admit decides whether a message from->to passes the current faults and
// returns the extra delay to apply. Called once per message at send time.
func (f *faultState) admit(from, to wire.NodeID) (ok bool, extra time.Duration) {
	p := f.pairs[pairKey(from, to)]
	if p == nil {
		return true, 0
	}
	if p.cut > 0 {
		return false, 0
	}
	if p.drop > 0 {
		prob := p.drop
		if prob > 1 {
			prob = 1
		}
		if f.rng.Float64() < prob {
			return false, 0
		}
	}
	return true, p.extra
}

// InstallFaults schedules plan on the runner's simulator. restart, when
// non-nil, builds the replacement machine for a crashed node whose
// CrashFault sets RestartAt; with a nil factory such nodes stay down.
// Call once, before running the simulation.
func (r *Runner) InstallFaults(plan FaultPlan, restart func(wire.NodeID) engine.Machine) {
	if r.faults == nil {
		r.faults = &faultState{
			pairs: make(map[uint64]*pairFault),
			// Offset keeps the drop stream independent of the node RNG
			// streams derived from the same seed.
			rng: rand.New(rand.NewSource(r.seed ^ 0x5eed_fa17)),
		}
	}
	f := r.faults
	for _, pf := range plan.Partitions {
		pf := pf
		r.Sim.At(pf.At, func() { f.setPartition(pf.A, pf.B, +1) })
		if pf.Heal > 0 {
			r.Sim.At(pf.Heal, func() { f.setPartition(pf.A, pf.B, -1) })
		}
	}
	for _, cf := range plan.Crashes {
		cf := cf
		r.Sim.At(cf.At, func() { r.Crash(cf.Node) })
		if cf.RestartAt > 0 && restart != nil {
			r.Sim.At(cf.RestartAt, func() { r.Restart(cf.Node, restart(cf.Node)) })
		}
	}
	for _, lf := range plan.Latencies {
		lf := lf
		r.Sim.At(lf.At, func() { f.forEachPair(r, lf.From, lf.To, func(p *pairFault) { p.extra += lf.Extra }) })
		if lf.Until > 0 {
			r.Sim.At(lf.Until, func() { f.forEachPair(r, lf.From, lf.To, func(p *pairFault) { p.extra -= lf.Extra }) })
		}
	}
	for _, df := range plan.Drops {
		df := df
		r.Sim.At(df.At, func() { f.forEachPair(r, df.From, df.To, func(p *pairFault) { p.drop += df.Prob }) })
		if df.Until > 0 {
			r.Sim.At(df.Until, func() { f.forEachPair(r, df.From, df.To, func(p *pairFault) { p.drop -= df.Prob }) })
		}
	}
}

// setPartition raises (delta=+1) or lowers (delta=-1) the cut count on
// every directed pair between A and B.
func (f *faultState) setPartition(a, b []wire.NodeID, delta int) {
	for _, x := range a {
		for _, y := range b {
			if x == y {
				continue
			}
			f.pair(x, y).cut += delta
			f.pair(y, x).cut += delta
		}
	}
}

// forEachPair applies fn to every directed (from,to) pair in from×to,
// defaulting nil sets to all nodes, skipping self-pairs.
func (f *faultState) forEachPair(r *Runner, from, to []wire.NodeID, fn func(*pairFault)) {
	if from == nil {
		from = r.allNodeIDs()
	}
	if to == nil {
		to = r.allNodeIDs()
	}
	for _, x := range from {
		for _, y := range to {
			if x == y {
				continue
			}
			fn(f.pair(x, y))
		}
	}
}

func (r *Runner) allNodeIDs() []wire.NodeID {
	out := make([]wire.NodeID, len(r.nodes))
	for i := range r.nodes {
		out[i] = wire.NodeID(i)
	}
	return out
}

// Partitioned reports whether messages from a to b are currently cut
// (exposed for tests and diagnostics).
func (r *Runner) Partitioned(a, b wire.NodeID) bool {
	if r.faults == nil {
		return false
	}
	p := r.faults.pairs[pairKey(a, b)]
	return p != nil && p.cut > 0
}
