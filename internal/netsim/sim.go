// Package netsim is a deterministic discrete-event network simulator.
//
// It provides three layers:
//
//   - Sim: a virtual clock and event queue.
//   - Topology: racks, datacenters and the links between them, with
//     per-link bandwidth (FIFO serialization) and propagation delay.
//   - Runner: hosts engine.Machine instances on topology nodes, models
//     per-node CPU service time, and implements engine.Env.
//
// The simulator reproduces the two effects the Canopus paper's evaluation
// hinges on: contention on oversubscribed aggregation/WAN links, and
// per-node CPU saturation (the coordinator bottleneck in centralized
// protocols). Given the same seed and inputs, a simulation is bit-for-bit
// reproducible — including under fault injection: a FaultPlan (fault.go)
// schedules partitions, crashes/restarts, latency spikes and
// probabilistic drops on the virtual clock, which internal/harness's
// chaos scenarios drive and replay. internal/transport is this package's
// live twin: the same engine.Machine instances served over real TCP.
package netsim

import (
	"container/heap"
	"time"
)

// Event is a scheduled callback.
type event struct {
	at  time.Duration
	seq uint64 // tie-breaker: FIFO among equal-time events
	fn  func()
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

// Sim is a virtual clock plus event queue. It is not safe for concurrent
// use; all protocol code runs on the single simulation goroutine.
type Sim struct {
	now    time.Duration
	seq    uint64
	events eventHeap
	nSteps uint64
}

// NewSim returns an empty simulation at time zero.
func NewSim() *Sim { return &Sim{} }

// Now returns the current virtual time.
func (s *Sim) Now() time.Duration { return s.now }

// Steps returns the number of events executed so far.
func (s *Sim) Steps() uint64 { return s.nSteps }

// At schedules fn to run at absolute virtual time at. Scheduling in the
// past runs the event at the current time (never before already-queued
// same-time events, preserving FIFO).
func (s *Sim) At(at time.Duration, fn func()) {
	if at < s.now {
		at = s.now
	}
	s.seq++
	heap.Push(&s.events, event{at: at, seq: s.seq, fn: fn})
}

// After schedules fn to run d from now.
func (s *Sim) After(d time.Duration, fn func()) { s.At(s.now+d, fn) }

// Step runs the next event, returning false if the queue is empty.
func (s *Sim) Step() bool {
	if len(s.events) == 0 {
		return false
	}
	e := heap.Pop(&s.events).(event)
	s.now = e.at
	s.nSteps++
	e.fn()
	return true
}

// RunUntil executes events until virtual time end (inclusive) or until
// the queue drains. The clock lands exactly on end.
func (s *Sim) RunUntil(end time.Duration) {
	for len(s.events) > 0 && s.events[0].at <= end {
		s.Step()
	}
	if s.now < end {
		s.now = end
	}
}

// RunUntilIdle executes events until none remain. Protocols with periodic
// timers never go idle; use RunUntil for those.
func (s *Sim) RunUntilIdle() {
	for s.Step() {
	}
}
