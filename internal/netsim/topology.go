package netsim

import (
	"fmt"
	"time"

	"canopus/internal/wire"
)

// Link is one unidirectional network link with a bandwidth-limited FIFO
// transmit queue and a fixed propagation delay. Serialization is modeled
// store-and-forward: a message occupies the link for size/bandwidth and
// then propagates for Delay.
type Link struct {
	Name      string
	Bandwidth float64 // bytes per second; 0 = infinite
	Delay     time.Duration

	busyUntil time.Duration
	bytes     uint64 // total bytes carried (for utilization reporting)
}

// Transmit queues size bytes on the link starting no earlier than now and
// returns the arrival time at the far end.
func (l *Link) Transmit(now time.Duration, size int) time.Duration {
	start := now
	if l.busyUntil > start {
		start = l.busyUntil
	}
	var ser time.Duration
	if l.Bandwidth > 0 {
		ser = time.Duration(float64(size) / l.Bandwidth * float64(time.Second))
	}
	l.busyUntil = start + ser
	l.bytes += uint64(size)
	return l.busyUntil + l.Delay
}

// BytesCarried returns the total bytes transmitted over the link.
func (l *Link) BytesCarried() uint64 { return l.bytes }

// Reset clears queue state and counters (used between measurement runs).
func (l *Link) Reset() { l.busyUntil = 0; l.bytes = 0 }

// NodeInfo places one protocol node in the physical topology.
type NodeInfo struct {
	ID   wire.NodeID
	DC   int
	Rack int // global rack index
}

// Params configures link speeds and delays for the topology builders.
// Zero values are replaced by defaults matching the paper's testbed
// (§8.1: 10 Gbps NICs and ToR links, 2×10 Gbps rack uplinks, Mellanox
// SX1012 switches; §8.2: EC2 c3.4xlarge across 7 regions).
type Params struct {
	NodeBandwidth   float64       // node NIC, bytes/s (default 10 Gbps)
	UplinkBandwidth float64       // rack ToR -> aggregation, bytes/s (default 2x10 Gbps)
	WANBandwidth    float64       // per DC pair per direction, bytes/s (default 2.5 Gbps)
	IntraRackDelay  time.Duration // NIC->ToR->NIC one-way (default 25us)
	InterRackDelay  time.Duration // additional ToR->agg->ToR one-way (default 50us)
	LoopbackDelay   time.Duration // self-send (default 5us)
	// WANDelay[i][j] is the one-way delay from DC i to DC j. Required for
	// multi-DC topologies.
	WANDelay [][]time.Duration
}

func (p *Params) fill() {
	if p.NodeBandwidth == 0 {
		p.NodeBandwidth = 10e9 / 8
	}
	if p.UplinkBandwidth == 0 {
		p.UplinkBandwidth = 20e9 / 8
	}
	if p.WANBandwidth == 0 {
		p.WANBandwidth = 2.5e9 / 8
	}
	if p.IntraRackDelay == 0 {
		p.IntraRackDelay = 25 * time.Microsecond
	}
	if p.InterRackDelay == 0 {
		p.InterRackDelay = 50 * time.Microsecond
	}
	if p.LoopbackDelay == 0 {
		p.LoopbackDelay = 5 * time.Microsecond
	}
}

// Emulated WAN latency classes: nominal one-way delays for common
// geographic spans, used to build WANDelay matrices without hand-picking
// per-pair numbers. They bracket the paper's Table 1 measurements (EC2,
// 7 regions): same-metro pairs at a few hundred microseconds up to
// transoceanic pairs above 100ms RTT.
const (
	// MetroOneWay: datacenters in one metropolitan area (<100 km).
	MetroOneWay = 500 * time.Microsecond
	// RegionalOneWay: one geographic region (e.g. US-East to US-Central).
	RegionalOneWay = 10 * time.Millisecond
	// ContinentalOneWay: across a continent (e.g. coast to coast).
	ContinentalOneWay = 35 * time.Millisecond
	// IntercontinentalOneWay: transoceanic (e.g. US to Europe or Asia).
	IntercontinentalOneWay = 75 * time.Millisecond
)

// UniformWANDelay builds a WANDelay matrix with the same one-way delay
// between every distinct DC pair (zero diagonal).
func UniformWANDelay(dcs int, oneWay time.Duration) [][]time.Duration {
	m := make([][]time.Duration, dcs)
	for i := range m {
		m[i] = make([]time.Duration, dcs)
		for j := range m[i] {
			if i != j {
				m[i][j] = oneWay
			}
		}
	}
	return m
}

// GeoWANDelay builds a WANDelay matrix from per-DC latency classes:
// class[i] is DC i's distance tier, and the delay between two DCs is the
// larger of their classes — a metro DC talking to an intercontinental
// one pays the intercontinental span. A symmetric, deterministic stand-in
// for a measured matrix when the test only needs "geo-scale" shape.
func GeoWANDelay(class []time.Duration) [][]time.Duration {
	m := make([][]time.Duration, len(class))
	for i := range m {
		m[i] = make([]time.Duration, len(class))
		for j := range m[i] {
			if i == j {
				continue
			}
			m[i][j] = class[i]
			if class[j] > m[i][j] {
				m[i][j] = class[j]
			}
		}
	}
	return m
}

// Topology is the physical network: nodes placed in racks and
// datacenters, and the directed links between them.
type Topology struct {
	Nodes  []NodeInfo
	params Params

	nodeUp   []*Link // node NIC transmit
	nodeDown []*Link // node NIC receive
	rackUp   []*Link // rack -> DC aggregation
	rackDown []*Link // DC aggregation -> rack
	// wan[i][j] is the link from DC i to DC j (nil on the diagonal).
	wan   [][]*Link
	racks int
	dcs   int
}

// SingleDC builds the paper's single-datacenter testbed: `racks` racks
// with `perRack` Canopus nodes each, dual-homed ToR switches feeding one
// aggregation switch (§8.1). With 3 racks and 3/5/7/9 nodes per rack the
// uplink oversubscription is 1.5/2.5/3.5/4.5, exactly the paper's setup.
func SingleDC(racks, perRack int, p Params) *Topology {
	p.fill()
	t := &Topology{params: p, racks: racks, dcs: 1}
	id := wire.NodeID(0)
	for r := 0; r < racks; r++ {
		for n := 0; n < perRack; n++ {
			t.Nodes = append(t.Nodes, NodeInfo{ID: id, DC: 0, Rack: r})
			id++
		}
	}
	t.buildLinks()
	return t
}

// MultiDC builds the paper's wide-area deployment: `dcs` datacenters of
// `perDC` nodes each (one rack per DC), with per-pair WAN links whose
// delays come from p.WANDelay (Table 1 in the paper).
func MultiDC(dcs, perDC int, p Params) *Topology {
	p.fill()
	if len(p.WANDelay) < dcs {
		panic(fmt.Sprintf("netsim: WANDelay matrix %d smaller than dc count %d", len(p.WANDelay), dcs))
	}
	t := &Topology{params: p, racks: dcs, dcs: dcs}
	id := wire.NodeID(0)
	for d := 0; d < dcs; d++ {
		for n := 0; n < perDC; n++ {
			t.Nodes = append(t.Nodes, NodeInfo{ID: id, DC: d, Rack: d})
			id++
		}
	}
	t.buildLinks()
	return t
}

func (t *Topology) buildLinks() {
	p := t.params
	t.nodeUp = make([]*Link, len(t.Nodes))
	t.nodeDown = make([]*Link, len(t.Nodes))
	for i := range t.Nodes {
		t.nodeUp[i] = &Link{
			Name:      fmt.Sprintf("n%d-up", i),
			Bandwidth: p.NodeBandwidth,
			Delay:     p.IntraRackDelay / 2,
		}
		t.nodeDown[i] = &Link{
			Name:      fmt.Sprintf("n%d-down", i),
			Bandwidth: p.NodeBandwidth,
			Delay:     p.IntraRackDelay / 2,
		}
	}
	t.rackUp = make([]*Link, t.racks)
	t.rackDown = make([]*Link, t.racks)
	for r := 0; r < t.racks; r++ {
		t.rackUp[r] = &Link{
			Name:      fmt.Sprintf("rack%d-up", r),
			Bandwidth: p.UplinkBandwidth,
			Delay:     p.InterRackDelay / 2,
		}
		t.rackDown[r] = &Link{
			Name:      fmt.Sprintf("rack%d-down", r),
			Bandwidth: p.UplinkBandwidth,
			Delay:     p.InterRackDelay / 2,
		}
	}
	if t.dcs > 1 {
		t.wan = make([][]*Link, t.dcs)
		for i := 0; i < t.dcs; i++ {
			t.wan[i] = make([]*Link, t.dcs)
			for j := 0; j < t.dcs; j++ {
				if i == j {
					continue
				}
				t.wan[i][j] = &Link{
					Name:      fmt.Sprintf("wan%d-%d", i, j),
					Bandwidth: p.WANBandwidth,
					Delay:     p.WANDelay[i][j],
				}
			}
		}
	}
}

// NumNodes returns the node count.
func (t *Topology) NumNodes() int { return len(t.Nodes) }

// RackMembers returns the node IDs in global rack r, in ID order.
func (t *Topology) RackMembers(r int) []wire.NodeID {
	var out []wire.NodeID
	for _, n := range t.Nodes {
		if n.Rack == r {
			out = append(out, n.ID)
		}
	}
	return out
}

// Racks returns the number of racks.
func (t *Topology) Racks() int { return t.racks }

// DCs returns the number of datacenters.
func (t *Topology) DCs() int { return t.dcs }

// path returns the ordered links a message crosses from src to dst.
// Same-node messages return nil (the loopback delay applies instead).
func (t *Topology) path(src, dst wire.NodeID) []*Link {
	if src == dst {
		return nil
	}
	a, b := t.Nodes[src], t.Nodes[dst]
	switch {
	case a.Rack == b.Rack:
		return []*Link{t.nodeUp[src], t.nodeDown[dst]}
	case a.DC == b.DC:
		return []*Link{t.nodeUp[src], t.rackUp[a.Rack], t.rackDown[b.Rack], t.nodeDown[dst]}
	default:
		return []*Link{t.nodeUp[src], t.rackUp[a.Rack], t.wan[a.DC][b.DC], t.rackDown[b.Rack], t.nodeDown[dst]}
	}
}

// transmit pushes size bytes from src to dst starting at now and returns
// the arrival time at dst.
func (t *Topology) transmit(now time.Duration, src, dst wire.NodeID, size int) time.Duration {
	if src == dst {
		return now + t.params.LoopbackDelay
	}
	at := now
	for _, l := range t.path(src, dst) {
		at = l.Transmit(at, size)
	}
	return at
}

// multicast models switch-assisted replication within a rack: the sender
// serializes once on its NIC, the ToR switch fans out, and each receiver
// pays its own download serialization. Destinations outside the sender's
// rack fall back to unicast.
func (t *Topology) multicast(now time.Duration, src wire.NodeID, dsts []wire.NodeID, size int) []time.Duration {
	arrivals := make([]time.Duration, len(dsts))
	upDone := t.nodeUp[src].Transmit(now, size)
	for i, dst := range dsts {
		switch {
		case dst == src:
			arrivals[i] = now + t.params.LoopbackDelay
		case t.Nodes[dst].Rack == t.Nodes[src].Rack:
			arrivals[i] = t.nodeDown[dst].Transmit(upDone, size)
		default:
			at := upDone
			a, b := t.Nodes[src], t.Nodes[dst]
			links := []*Link{t.rackUp[a.Rack]}
			if a.DC != b.DC {
				links = append(links, t.wan[a.DC][b.DC])
			}
			links = append(links, t.rackDown[b.Rack], t.nodeDown[dst])
			for _, l := range links {
				at = l.Transmit(at, size)
			}
			arrivals[i] = at
		}
	}
	return arrivals
}

// ResetLinks clears link queues and byte counters.
func (t *Topology) ResetLinks() {
	for _, l := range t.nodeUp {
		l.Reset()
	}
	for _, l := range t.nodeDown {
		l.Reset()
	}
	for _, l := range t.rackUp {
		l.Reset()
	}
	for _, l := range t.rackDown {
		l.Reset()
	}
	for _, row := range t.wan {
		for _, l := range row {
			if l != nil {
				l.Reset()
			}
		}
	}
}

// WANLink exposes the WAN link from DC i to DC j (nil when i==j or in a
// single-DC topology); used by tests and utilization reports.
func (t *Topology) WANLink(i, j int) *Link {
	if t.wan == nil {
		return nil
	}
	return t.wan[i][j]
}

// RackUplink exposes rack r's uplink for reporting.
func (t *Topology) RackUplink(r int) *Link { return t.rackUp[r] }
