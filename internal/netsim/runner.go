package netsim

import (
	"math/rand"
	"time"

	"canopus/internal/engine"
	"canopus/internal/wire"
)

// CostParams models per-node CPU service time. Nodes are single service
// queues: message sends, message receives and timer callbacks each occupy
// the node's CPU for a computed duration, and work queues FIFO behind the
// CPU. Saturating a node's CPU is what caps protocol throughput in the
// single-datacenter experiments, exactly as in the paper's testbed.
type CostParams struct {
	PerMsgSend  time.Duration // fixed cost to emit one message
	PerMsgRecv  time.Duration // fixed cost to ingest one message
	PerByteSend time.Duration // per wire byte on send (serialization, copies)
	PerByteRecv time.Duration // per wire byte on receive (parse, copies)
	PerReqRecv  time.Duration // per client request carried in a received message
	PerTimer    time.Duration // timer callback overhead
}

// DefaultCosts returns a calibration that reproduces the paper's
// per-node throughput envelope (≈100–150k client requests/s/node for
// Canopus including client handling charged by the workload layer).
func DefaultCosts() CostParams {
	return CostParams{
		PerMsgSend:  2 * time.Microsecond,
		PerMsgRecv:  3 * time.Microsecond,
		PerByteSend: 1 * time.Nanosecond,
		PerByteRecv: 1 * time.Nanosecond,
		PerReqRecv:  150 * time.Nanosecond,
		PerTimer:    time.Microsecond,
	}
}

// RequestsIn returns the number of client requests a message carries,
// used for per-request CPU accounting.
func RequestsIn(m wire.Message) int {
	switch v := m.(type) {
	case *wire.Proposal:
		n := 0
		for _, b := range v.Batches {
			n += b.Requests()
		}
		return n
	case *wire.PreAccept:
		if v.Batch != nil {
			return v.Batch.Requests()
		}
	case *wire.Commit:
		if v.Batch != nil {
			return v.Batch.Requests()
		}
	case *wire.ZabForward:
		if v.Batch != nil {
			return v.Batch.Requests()
		}
	case *wire.ZabPropose:
		if v.Batch != nil {
			return v.Batch.Requests()
		}
	case *wire.ZabInform:
		if v.Batch != nil {
			return v.Batch.Requests()
		}
	case *wire.RaftAppend:
		n := 0
		for i := range v.Entries {
			if v.Entries[i].Payload != nil {
				n += RequestsIn(v.Entries[i].Payload)
			}
		}
		return n
	}
	return 0
}

// NodeStats aggregates per-node traffic and CPU accounting.
type NodeStats struct {
	MsgsIn, MsgsOut   uint64
	BytesIn, BytesOut uint64
	CPUBusy           time.Duration
}

type simNode struct {
	id      wire.NodeID
	machine engine.Machine
	env     *simEnv
	alive   bool
	gen     uint32 // bumped on crash so in-flight work for the old incarnation is dropped
	cpuFree time.Duration
	rng     *rand.Rand
	stats   NodeStats
}

// Runner hosts protocol machines on a topology and drives them with
// simulated network and CPU delays. All machines run on the simulation
// goroutine; no locking is needed anywhere in protocol code.
type Runner struct {
	Sim    *Sim
	Topo   *Topology
	Costs  CostParams
	nodes  []*simNode
	seed   int64
	faults *faultState // nil until InstallFaults
}

// NewRunner creates a runner. Each node gets an independent random source
// derived from seed, so runs are reproducible.
func NewRunner(sim *Sim, topo *Topology, costs CostParams, seed int64) *Runner {
	r := &Runner{Sim: sim, Topo: topo, Costs: costs, seed: seed}
	r.nodes = make([]*simNode, topo.NumNodes())
	for i := range r.nodes {
		id := wire.NodeID(i)
		n := &simNode{
			id:    id,
			alive: true,
			rng:   rand.New(rand.NewSource(seed + int64(i)*7919)),
		}
		n.env = &simEnv{r: r, n: n}
		r.nodes[i] = n
	}
	return r
}

// Register installs machine m as node id and initializes it.
func (r *Runner) Register(id wire.NodeID, m engine.Machine) {
	n := r.nodes[id]
	n.machine = m
	m.Init(n.env)
}

// Alive reports whether node id is up.
func (r *Runner) Alive(id wire.NodeID) bool { return r.nodes[id].alive }

// Crash fails node id crash-stop: all queued and in-flight work addressed
// to the current incarnation is discarded.
func (r *Runner) Crash(id wire.NodeID) {
	n := r.nodes[id]
	n.alive = false
	n.gen++
}

// Restart brings node id back with a fresh machine (the paper's join
// protocol runs at the protocol layer; the runner only restores
// connectivity).
func (r *Runner) Restart(id wire.NodeID, m engine.Machine) {
	n := r.nodes[id]
	n.alive = true
	n.cpuFree = r.Sim.Now()
	n.machine = m
	m.Init(n.env)
}

// UseCPU charges d of CPU time to node id. The workload layer uses this
// to model client connection handling (reads served locally, request
// parsing, replies), which is part of every protocol's per-node budget.
func (r *Runner) UseCPU(id wire.NodeID, d time.Duration) {
	n := r.nodes[id]
	start := r.Sim.Now()
	if n.cpuFree > start {
		start = n.cpuFree
	}
	n.cpuFree = start + d
	n.stats.CPUBusy += d
}

// CPUBacklog returns how far node id's CPU queue extends past now; the
// workload layer uses it to detect saturation.
func (r *Runner) CPUBacklog(id wire.NodeID) time.Duration {
	n := r.nodes[id]
	if n.cpuFree <= r.Sim.Now() {
		return 0
	}
	return n.cpuFree - r.Sim.Now()
}

// Stats returns a copy of node id's accounting counters.
func (r *Runner) Stats(id wire.NodeID) NodeStats { return r.nodes[id].stats }

// send implements Env.Send for node n.
func (r *Runner) send(n *simNode, to wire.NodeID, m wire.Message) {
	if !n.alive {
		return
	}
	size := m.WireSize()
	start := r.Sim.Now()
	if n.cpuFree > start {
		start = n.cpuFree
	}
	cost := r.Costs.PerMsgSend + time.Duration(size)*r.Costs.PerByteSend
	n.cpuFree = start + cost
	n.stats.CPUBusy += cost
	n.stats.MsgsOut++
	n.stats.BytesOut += uint64(size)
	arrival := r.Topo.transmit(n.cpuFree, n.id, to, size)
	r.deliverAt(arrival, n.id, to, m, size)
}

// multicast implements Env.Multicast for node n: one send-side
// serialization, switch-assisted fan-out.
func (r *Runner) multicast(n *simNode, to []wire.NodeID, m wire.Message) {
	if !n.alive || len(to) == 0 {
		return
	}
	size := m.WireSize()
	start := r.Sim.Now()
	if n.cpuFree > start {
		start = n.cpuFree
	}
	cost := r.Costs.PerMsgSend + time.Duration(size)*r.Costs.PerByteSend
	n.cpuFree = start + cost
	n.stats.CPUBusy += cost
	n.stats.MsgsOut++
	n.stats.BytesOut += uint64(size)
	arrivals := r.Topo.multicast(n.cpuFree, n.id, to, size)
	for i, dst := range to {
		r.deliverAt(arrivals[i], n.id, dst, m, size)
	}
}

func (r *Runner) deliverAt(arrival time.Duration, from, to wire.NodeID, m wire.Message, size int) {
	if r.faults != nil {
		ok, extra := r.faults.admit(from, to)
		if !ok {
			return // partitioned or dropped
		}
		arrival += extra
	}
	dst := r.nodes[to]
	gen := dst.gen
	r.Sim.At(arrival, func() {
		if !dst.alive || dst.gen != gen {
			return // crashed (or restarted) receiver: packet dropped on the floor
		}
		start := r.Sim.Now()
		if dst.cpuFree > start {
			start = dst.cpuFree
		}
		cost := r.Costs.PerMsgRecv +
			time.Duration(size)*r.Costs.PerByteRecv +
			time.Duration(RequestsIn(m))*r.Costs.PerReqRecv
		dst.cpuFree = start + cost
		dst.stats.CPUBusy += cost
		dst.stats.MsgsIn++
		dst.stats.BytesIn += uint64(size)
		done := dst.cpuFree
		r.Sim.At(done, func() {
			if !dst.alive || dst.gen != gen {
				return
			}
			dst.machine.Recv(from, m)
		})
	})
}

// simEnv implements engine.Env for one node.
type simEnv struct {
	r *Runner
	n *simNode
}

func (e *simEnv) ID() wire.NodeID                            { return e.n.id }
func (e *simEnv) Now() time.Duration                         { return e.r.Sim.Now() }
func (e *simEnv) Rand() *rand.Rand                           { return e.n.rng }
func (e *simEnv) Send(to wire.NodeID, m wire.Message)        { e.r.send(e.n, to, m) }
func (e *simEnv) Multicast(to []wire.NodeID, m wire.Message) { e.r.multicast(e.n, to, m) }

func (e *simEnv) After(d time.Duration, tag engine.TimerTag) {
	n, r := e.n, e.r
	gen := n.gen
	r.Sim.After(d, func() {
		if !n.alive || n.gen != gen {
			return
		}
		start := r.Sim.Now()
		if n.cpuFree > start {
			start = n.cpuFree
		}
		n.cpuFree = start + r.Costs.PerTimer
		n.stats.CPUBusy += r.Costs.PerTimer
		done := n.cpuFree
		r.Sim.At(done, func() {
			if !n.alive || n.gen != gen {
				return
			}
			n.machine.Timer(tag)
		})
	})
}
