package netsim

import (
	"testing"
	"time"

	"canopus/internal/engine"
	"canopus/internal/wire"
)

func TestSimEventOrdering(t *testing.T) {
	s := NewSim()
	var got []int
	s.At(3*time.Millisecond, func() { got = append(got, 3) })
	s.At(time.Millisecond, func() { got = append(got, 1) })
	s.At(2*time.Millisecond, func() { got = append(got, 2) })
	s.At(2*time.Millisecond, func() { got = append(got, 22) }) // FIFO among equals
	s.RunUntilIdle()
	want := []int{1, 2, 22, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
	if s.Now() != 3*time.Millisecond {
		t.Fatalf("clock = %v", s.Now())
	}
}

func TestRunUntilStopsOnTime(t *testing.T) {
	s := NewSim()
	fired := false
	s.At(10*time.Millisecond, func() { fired = true })
	s.RunUntil(5 * time.Millisecond)
	if fired || s.Now() != 5*time.Millisecond {
		t.Fatalf("fired=%v now=%v", fired, s.Now())
	}
	s.RunUntil(20 * time.Millisecond)
	if !fired {
		t.Fatal("event never fired")
	}
}

func TestLinkSerialization(t *testing.T) {
	l := &Link{Bandwidth: 1000, Delay: time.Millisecond} // 1000 B/s
	// 100 bytes = 100ms serialization + 1ms propagation.
	a1 := l.Transmit(0, 100)
	if a1 != 101*time.Millisecond {
		t.Fatalf("first arrival %v", a1)
	}
	// Second message queues behind the first.
	a2 := l.Transmit(0, 100)
	if a2 != 201*time.Millisecond {
		t.Fatalf("queued arrival %v", a2)
	}
	if l.BytesCarried() != 200 {
		t.Fatalf("bytes = %d", l.BytesCarried())
	}
}

func TestPathsByTopology(t *testing.T) {
	topo := SingleDC(2, 2, Params{})
	if len(topo.path(0, 1)) != 2 {
		t.Fatalf("intra-rack path should be 2 links, got %d", len(topo.path(0, 1)))
	}
	if len(topo.path(0, 2)) != 4 {
		t.Fatalf("inter-rack path should be 4 links, got %d", len(topo.path(0, 2)))
	}
	wan := MultiDC(2, 2, Params{WANDelay: [][]time.Duration{
		{0, 50 * time.Millisecond}, {50 * time.Millisecond, 0},
	}})
	if len(wan.path(0, 2)) != 5 {
		t.Fatalf("WAN path should be 5 links, got %d", len(wan.path(0, 2)))
	}
	// WAN latency dominates the arrival time.
	at := wan.transmit(0, 0, 2, 100)
	if at < 50*time.Millisecond || at > 60*time.Millisecond {
		t.Fatalf("WAN arrival %v", at)
	}
}

// echoMachine replies to every Ping with its own Ping.
type echoMachine struct {
	env   engine.Env
	got   int
	reply bool
}

func (m *echoMachine) Init(env engine.Env)   { m.env = env }
func (m *echoMachine) Timer(engine.TimerTag) {}
func (m *echoMachine) Recv(from wire.NodeID, msg wire.Message) {
	m.got++
	if m.reply {
		m.env.Send(from, &wire.Ping{From: m.env.ID()})
	}
}

func TestRunnerDeliversWithCosts(t *testing.T) {
	sim := NewSim()
	topo := SingleDC(1, 2, Params{})
	r := NewRunner(sim, topo, DefaultCosts(), 1)
	a := &echoMachine{}
	b := &echoMachine{reply: true}
	r.Register(0, a)
	r.Register(1, b)
	sim.At(0, func() { a.env.Send(1, &wire.Ping{From: 0}) })
	sim.RunUntil(10 * time.Millisecond)
	if b.got != 1 || a.got != 1 {
		t.Fatalf("ping-pong failed: a=%d b=%d", a.got, b.got)
	}
	st := r.Stats(0)
	if st.MsgsOut != 1 || st.MsgsIn != 1 || st.CPUBusy == 0 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestCrashDropsTraffic(t *testing.T) {
	sim := NewSim()
	topo := SingleDC(1, 2, Params{})
	r := NewRunner(sim, topo, DefaultCosts(), 1)
	a := &echoMachine{}
	b := &echoMachine{}
	r.Register(0, a)
	r.Register(1, b)
	r.Crash(1)
	sim.At(0, func() { a.env.Send(1, &wire.Ping{From: 0}) })
	sim.RunUntil(10 * time.Millisecond)
	if b.got != 0 {
		t.Fatal("crashed node received a message")
	}
	// Restart with a fresh machine; new traffic flows.
	b2 := &echoMachine{}
	r.Restart(1, b2)
	sim.At(sim.Now(), func() { a.env.Send(1, &wire.Ping{From: 0}) })
	sim.RunUntil(20 * time.Millisecond)
	if b2.got != 1 {
		t.Fatal("restarted node did not receive")
	}
}

func TestUseCPUQueues(t *testing.T) {
	sim := NewSim()
	topo := SingleDC(1, 1, Params{})
	r := NewRunner(sim, topo, DefaultCosts(), 1)
	r.Register(0, &echoMachine{})
	r.UseCPU(0, 5*time.Millisecond)
	if got := r.CPUBacklog(0); got != 5*time.Millisecond {
		t.Fatalf("backlog = %v", got)
	}
	sim.RunUntil(10 * time.Millisecond)
	if got := r.CPUBacklog(0); got != 0 {
		t.Fatalf("backlog after drain = %v", got)
	}
}

func TestRequestsIn(t *testing.T) {
	b := &wire.Batch{NumRead: 3, NumWrite: 2}
	if got := RequestsIn(&wire.Proposal{Batches: []*wire.Batch{b, b}}); got != 10 {
		t.Fatalf("proposal requests = %d, want 10", got)
	}
	if got := RequestsIn(&wire.RaftAppend{Entries: []wire.RaftEntry{
		{Payload: &wire.Proposal{Batches: []*wire.Batch{b}}},
	}}); got != 5 {
		t.Fatalf("nested requests = %d, want 5", got)
	}
	if RequestsIn(&wire.Ping{}) != 0 {
		t.Fatal("ping has requests")
	}
}
