package lincheck

import "testing"

func TestSequentialHistory(t *testing.T) {
	ops := []Op{
		{Kind: OpWrite, Key: 1, Value: 5, Invoke: 0, Return: 1},
		{Kind: OpRead, Key: 1, Value: 5, Invoke: 2, Return: 3},
		{Kind: OpWrite, Key: 1, Value: 7, Invoke: 4, Return: 5},
		{Kind: OpRead, Key: 1, Value: 7, Invoke: 6, Return: 7},
	}
	if !Check(ops) {
		t.Fatal("valid sequential history rejected")
	}
}

func TestStaleReadRejected(t *testing.T) {
	ops := []Op{
		{Kind: OpWrite, Key: 1, Value: 5, Invoke: 0, Return: 1},
		{Kind: OpWrite, Key: 1, Value: 7, Invoke: 2, Return: 3},
		{Kind: OpRead, Key: 1, Value: 5, Invoke: 4, Return: 5}, // stale!
	}
	if Check(ops) {
		t.Fatal("stale read accepted")
	}
}

func TestConcurrentEitherOrder(t *testing.T) {
	// A read concurrent with a write may see either value.
	base := []Op{{Kind: OpWrite, Key: 1, Value: 5, Invoke: 0, Return: 10}}
	for _, v := range []uint64{0, 5} {
		ops := append(append([]Op(nil), base...), Op{Kind: OpRead, Key: 1, Value: v, Invoke: 1, Return: 9})
		if !Check(ops) {
			t.Fatalf("concurrent read of %d rejected", v)
		}
	}
	// But it cannot see a never-written value.
	ops := append(append([]Op(nil), base...), Op{Kind: OpRead, Key: 1, Value: 9, Invoke: 1, Return: 9})
	if Check(ops) {
		t.Fatal("phantom read accepted")
	}
}

func TestRealTimeOrderEnforced(t *testing.T) {
	// Write returns before the read invokes: the read MUST see it.
	ops := []Op{
		{Kind: OpWrite, Key: 1, Value: 5, Invoke: 0, Return: 1},
		{Kind: OpRead, Key: 1, Value: 0, Invoke: 5, Return: 6},
	}
	if Check(ops) {
		t.Fatal("read ignoring a completed write accepted")
	}
}

func TestKeysIndependent(t *testing.T) {
	ops := []Op{
		{Kind: OpWrite, Key: 1, Value: 5, Invoke: 0, Return: 1},
		{Kind: OpRead, Key: 2, Value: 0, Invoke: 2, Return: 3},
	}
	if !Check(ops) {
		t.Fatal("independent keys rejected")
	}
}
