// Package lincheck is a small linearizability checker for register
// histories (Wing & Gong's exhaustive search with memoization), used by
// the test suite to validate the §5 claim that Canopus totally orders
// reads and writes without disseminating reads.
package lincheck

import "sort"

// OpKind is read or write.
type OpKind uint8

const (
	// OpWrite writes Value to Key.
	OpWrite OpKind = iota
	// OpRead observes Value at Key (0 = key absent).
	OpRead
)

// Op is one completed operation with its real-time interval.
type Op struct {
	Kind   OpKind
	Key    uint64
	Value  uint64 // written value, or observed value for reads
	Invoke int64  // invocation time
	Return int64  // response time
}

// CheckKey decides whether the operations on a single key form a
// linearizable register history. Histories beyond ~15 concurrent ops per
// key become expensive; the tests keep contention windows small.
func CheckKey(ops []Op) bool {
	if len(ops) == 0 {
		return true
	}
	sorted := append([]Op(nil), ops...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Invoke < sorted[j].Invoke })
	n := len(sorted)
	if n > 62 {
		// The bitmask search tops out; split histories in tests instead.
		panic("lincheck: history too large")
	}
	type state struct {
		done  uint64
		value uint64
	}
	seen := make(map[state]bool)
	var search func(done uint64, value uint64) bool
	search = func(done uint64, value uint64) bool {
		if done == uint64(1)<<n-1 {
			return true
		}
		st := state{done, value}
		if seen[st] {
			return false
		}
		seen[st] = true
		// The earliest return among pending ops bounds which ops may
		// linearize next: an op can go next only if no pending op
		// returned before this op's invocation.
		minReturn := int64(1<<63 - 1)
		for i := 0; i < n; i++ {
			if done&(1<<i) == 0 && sorted[i].Return < minReturn {
				minReturn = sorted[i].Return
			}
		}
		for i := 0; i < n; i++ {
			if done&(1<<i) != 0 {
				continue
			}
			if sorted[i].Invoke > minReturn {
				break // sorted by invoke: nothing later can precede minReturn
			}
			op := sorted[i]
			switch op.Kind {
			case OpWrite:
				if search(done|1<<i, op.Value) {
					return true
				}
			case OpRead:
				if op.Value == value && search(done|1<<i, value) {
					return true
				}
			}
		}
		return false
	}
	return search(0, 0)
}

// Check partitions a mixed-key history by key and checks each
// independently (register semantics are per-key).
func Check(ops []Op) bool {
	byKey := make(map[uint64][]Op)
	for _, op := range ops {
		byKey[op.Key] = append(byKey[op.Key], op)
	}
	for _, kops := range byKey {
		if !CheckKey(kops) {
			return false
		}
	}
	return true
}
