package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Binary client protocol. canopus-server's client port speaks two
// protocols, distinguished by the first byte of the connection: the
// line-oriented text protocol ("GET 7\n") for interactive use, and this
// length-prefixed binary protocol for programs. The binary protocol is
// pipelined: a client may have any number of requests outstanding, and
// responses carry the request's correlation ID so they can complete out
// of submission order (within one connection the server preserves order,
// but clients must not rely on it).
//
// Connection preamble (client -> server): the 4 magic bytes of
// ClientMagic. The first byte is outside ASCII so the server can sniff
// binary vs text mode from one byte.
//
// Frames in both directions are [u32 length][payload], little-endian,
// where length counts payload bytes only:
//
//	request payload:  [u64 id][u8 op][u64 key][u32 vlen][vlen bytes]
//	response payload: [u64 id][u8 status][u32 vlen][vlen bytes]
//
// Statuses: OK (write acknowledged / read hit, value attached), Nil
// (read miss), Err (request rejected; value is a human-readable reason).

// ClientMagic is the binary-mode connection preamble.
var ClientMagic = [4]byte{0xC4, 'N', 'P', 0x01}

// Client response statuses.
const (
	ClientStatusOK  uint8 = 0 // success; reads carry the value
	ClientStatusNil uint8 = 1 // read of an absent key
	ClientStatusErr uint8 = 2 // rejected; value holds the reason
)

// MaxClientFrame bounds client protocol frame sizes in both directions.
const MaxClientFrame = 16 << 20

// ErrClientFrame is returned for malformed client protocol frames.
var ErrClientFrame = errors.New("wire: bad client frame")

// ClientRequest is one keyed operation on the binary client port. ID is
// the client-chosen correlation ID echoed in the response.
type ClientRequest struct {
	ID  uint64
	Op  Op
	Key uint64
	Val []byte // write payload; nil for reads
}

// ClientResponse answers one ClientRequest.
type ClientResponse struct {
	ID     uint64
	Status uint8
	Val    []byte
}

const clientReqFixed = 8 + 1 + 8 + 4 // id, op, key, vlen
const clientRespFixed = 8 + 1 + 4    // id, status, vlen

// AppendClientRequest appends q as a length-prefixed frame to b.
func AppendClientRequest(b []byte, q *ClientRequest) []byte {
	b = putU32(b, uint32(clientReqFixed+len(q.Val)))
	b = putU64(b, q.ID)
	b = putU8(b, uint8(q.Op))
	b = putU64(b, q.Key)
	return putBytes(b, q.Val)
}

// ParseClientRequest decodes one request payload (the bytes after the
// length prefix).
func ParseClientRequest(payload []byte) (ClientRequest, error) {
	r := &reader{b: payload}
	var q ClientRequest
	q.ID = r.u64()
	q.Op = Op(r.u8())
	q.Key = r.u64()
	q.Val = r.bytes()
	if r.err != nil || r.off != len(payload) {
		return ClientRequest{}, fmt.Errorf("%w: request (%d bytes)", ErrClientFrame, len(payload))
	}
	if q.Op != OpRead && q.Op != OpWrite {
		return ClientRequest{}, fmt.Errorf("%w: unknown op %d", ErrClientFrame, uint8(q.Op))
	}
	return q, nil
}

// AppendClientResponse appends resp as a length-prefixed frame to b.
func AppendClientResponse(b []byte, resp *ClientResponse) []byte {
	b = putU32(b, uint32(clientRespFixed+len(resp.Val)))
	b = putU64(b, resp.ID)
	b = putU8(b, resp.Status)
	return putBytes(b, resp.Val)
}

// ParseClientResponse decodes one response payload (the bytes after the
// length prefix).
func ParseClientResponse(payload []byte) (ClientResponse, error) {
	r := &reader{b: payload}
	var resp ClientResponse
	resp.ID = r.u64()
	resp.Status = r.u8()
	resp.Val = r.bytes()
	if r.err != nil || r.off != len(payload) {
		return ClientResponse{}, fmt.Errorf("%w: response (%d bytes)", ErrClientFrame, len(payload))
	}
	return resp, nil
}

// ClientFrameLen validates a frame length prefix read off the wire.
func ClientFrameLen(hdr [4]byte) (int, error) {
	n := binary.LittleEndian.Uint32(hdr[:])
	if n > MaxClientFrame {
		return 0, fmt.Errorf("%w: oversized frame (%d bytes)", ErrClientFrame, n)
	}
	return int(n), nil
}
